package emu

import (
	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/mem"
)

// LoadMem performs the memory read of an Alpha load operation at addr,
// applying the operation's width, extension, and (for LDx_U) address
// masking. It is shared by the interpreter and the translated-code
// executor so both agree bit-for-bit.
func LoadMem(m *mem.Memory, op alpha.Op, addr uint64) (uint64, error) {
	switch op {
	case alpha.OpLDBU:
		v, err := m.Read8(addr)
		return uint64(v), err
	case alpha.OpLDWU:
		v, err := m.Read16(addr)
		return uint64(v), err
	case alpha.OpLDL, alpha.OpLDLL:
		v, err := m.Read32(addr)
		return sext32(uint64(v)), err
	case alpha.OpLDQ, alpha.OpLDQL:
		return m.Read64(addr)
	case alpha.OpLDQU:
		return m.Read64(addr &^ 7)
	}
	panic(&SemanticsError{Func: "LoadMem", Op: op})
}

// StoreMem performs the memory write of an Alpha store operation.
// Store-conditionals are treated as plain stores (uniprocessor model);
// the caller materialises the success flag.
func StoreMem(m *mem.Memory, op alpha.Op, addr uint64, v uint64) error {
	switch op {
	case alpha.OpSTB:
		return m.Write8(addr, byte(v))
	case alpha.OpSTW:
		return m.Write16(addr, uint16(v))
	case alpha.OpSTL, alpha.OpSTLC:
		return m.Write32(addr, uint32(v))
	case alpha.OpSTQ, alpha.OpSTQC:
		return m.Write64(addr, v)
	case alpha.OpSTQU:
		return m.Write64(addr&^7, v)
	}
	panic(&SemanticsError{Func: "StoreMem", Op: op})
}

// MemWidth returns the access width in bytes of a load/store operation.
func MemWidth(op alpha.Op) uint8 {
	switch op {
	case alpha.OpLDBU, alpha.OpSTB:
		return 1
	case alpha.OpLDWU, alpha.OpSTW:
		return 2
	case alpha.OpLDL, alpha.OpLDLL, alpha.OpSTL, alpha.OpSTLC:
		return 4
	}
	return 8
}

package emu

import (
	"errors"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/mem"
)

func run(t *testing.T, src string, max int64) *CPU {
	t.Helper()
	cpu := New(mem.New())
	if err := cpu.LoadProgram(alphaasm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(max); err != nil {
		t.Fatalf("run: %v", err)
	}
	return cpu
}

func TestCountdownLoop(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	lda  a0, 10(zero)
	clr  v0
loop:
	addq v0, a0, v0
	subq a0, #1, a0
	bne  a0, loop
	call_pal halt
`, 1000)
	if cpu.Reg[alpha.RegV0] != 55 {
		t.Errorf("sum = %d, want 55", cpu.Reg[alpha.RegV0])
	}
	// 2 setup + 3*10 loop + 1 halt
	if cpu.InstCount != 33 {
		t.Errorf("InstCount = %d, want 33", cpu.InstCount)
	}
}

func TestMemoryOps(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	ldiq a0, 0x20000
	ldiq t0, 0x12345678
	stq  t0, 0(a0)
	ldq  t1, 0(a0)
	ldl  t2, 0(a0)
	ldwu t3, 0(a0)
	ldbu t4, 1(a0)
	stb  t0, 9(a0)
	ldbu t5, 9(a0)
	stw  t0, 16(a0)
	ldwu t6, 16(a0)
	stl  t0, 24(a0)
	ldl  t7, 24(a0)
	call_pal halt
`, 1000)
	r := func(reg alpha.Reg) uint64 { return cpu.Reg[reg] }
	if r(2) != 0x12345678 {
		t.Errorf("ldq = %#x", r(2))
	}
	if r(3) != 0x12345678 {
		t.Errorf("ldl = %#x", r(3))
	}
	if r(4) != 0x5678 {
		t.Errorf("ldwu = %#x", r(4))
	}
	if r(5) != 0x56 {
		t.Errorf("ldbu = %#x", r(5))
	}
	if r(6) != 0x78 {
		t.Errorf("stb/ldbu = %#x", r(6))
	}
	if r(7) != 0x5678 {
		t.Errorf("stw/ldwu = %#x", r(7))
	}
	if r(8) != 0x12345678 {
		t.Errorf("stl/ldl = %#x", r(8))
	}
}

func TestLDLSignExtends(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	ldiq a0, 0x20000
	ldiq t0, -2147483648 ; 0x80000000 sign-extended (stl truncates)
	stl  t0, 0(a0)
	ldl  t1, 0(a0)
	call_pal halt
`, 100)
	if cpu.Reg[2] != 0xFFFFFFFF80000000 {
		t.Errorf("ldl sign-extension = %#x", cpu.Reg[2])
	}
}

func TestCallReturn(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	lda  a0, 5(zero)
	bsr  double
	mov  v0, s0
	lda  a0, 21(zero)
	ldiq pv, double
	jsr  (pv)
	call_pal halt
double:
	addq a0, a0, v0
	ret
`, 1000)
	if cpu.Reg[alpha.RegS0] != 10 {
		t.Errorf("bsr call: s0 = %d, want 10", cpu.Reg[alpha.RegS0])
	}
	if cpu.Reg[alpha.RegV0] != 42 {
		t.Errorf("jsr call: v0 = %d, want 42", cpu.Reg[alpha.RegV0])
	}
}

func TestCMOV(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	lda t0, 1(zero)
	lda t1, 100(zero)
	lda t2, 200(zero)
	clr t3
	cmoveq t3, t1, v0   ; t3==0 -> v0=100
	cmoveq t0, t2, v0   ; t0!=0 -> unchanged
	call_pal halt
`, 100)
	if cpu.Reg[alpha.RegV0] != 100 {
		t.Errorf("cmov result = %d, want 100", cpu.Reg[alpha.RegV0])
	}
}

func TestSyscallConsoleAndExit(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	lda v0, 2(zero)     ; SysPutChar
	lda a0, 72(zero)    ; 'H'
	call_pal callsys
	lda a0, 105(zero)   ; 'i'
	call_pal callsys
	lda v0, 1(zero)     ; SysExit
	lda a0, 7(zero)
	call_pal callsys
`, 100)
	if got := cpu.ConsoleString(); got != "Hi" {
		t.Errorf("console = %q, want \"Hi\"", got)
	}
	if !cpu.Halted || cpu.ExitStatus != 7 {
		t.Errorf("halted=%v status=%d", cpu.Halted, cpu.ExitStatus)
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	lda  zero, 99(zero)
	addq zero, #7, t0
	call_pal halt
`, 100)
	if cpu.Reg[alpha.RegZero] != 0 {
		t.Errorf("r31 = %d, want 0", cpu.Reg[alpha.RegZero])
	}
	if cpu.Reg[1] != 7 {
		t.Errorf("t0 = %d, want 7", cpu.Reg[1])
	}
}

func TestPreciseTrapState(t *testing.T) {
	m := mem.New()
	m.Strict = true
	cpu := New(m)
	prog := alphaasm.MustAssemble(`
	.text 0x10000
start:
	lda  t0, 1(zero)
	lda  t1, 2(zero)
	ldiq a0, 0x900000     ; unmapped
	ldq  t2, 0(a0)        ; faults here
	lda  t3, 4(zero)
	call_pal halt
`)
	if err := cpu.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	err := cpu.Run(100)
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("expected trap, got %v", err)
	}
	// The ldq is the 5th instruction (ldiq is two).
	wantPC := uint64(0x10000 + 4*4)
	if trap.PC != wantPC {
		t.Errorf("trap PC = %#x, want %#x", trap.PC, wantPC)
	}
	var af *mem.AccessFault
	if !errors.As(trap, &af) || af.Addr != 0x900000 {
		t.Errorf("trap cause = %v", trap.Cause)
	}
	// State must be precise: everything before the fault retired, nothing
	// after.
	if cpu.Reg[1] != 1 || cpu.Reg[2] != 2 {
		t.Error("pre-fault registers lost")
	}
	if cpu.Reg[3] != 0 || cpu.Reg[4] != 0 {
		t.Error("post-fault register written")
	}
	if cpu.PC != wantPC {
		t.Errorf("PC = %#x, want faulting PC %#x", cpu.PC, wantPC)
	}
}

func TestIllegalInstructionTrap(t *testing.T) {
	m := mem.New()
	cpu := New(m)
	m.Map(0x1000, 8)
	// All-ones is not a valid encoding (opcode 0x3F is BGT; make opcode
	// 0x07 which is unassigned).
	if err := m.Write32(0x1000, 0x07<<26); err != nil {
		t.Fatal(err)
	}
	cpu.PC = 0x1000
	err := cpu.Step()
	var trap *Trap
	if !errors.As(err, &trap) || !errors.Is(trap, ErrIllegalInstruction) {
		t.Errorf("got %v, want illegal instruction trap", err)
	}
}

func TestUnsupportedFPTrap(t *testing.T) {
	m := mem.New()
	cpu := New(m)
	m.Map(0x1000, 8)
	if err := m.Write32(0x1000, 0x21<<26); err != nil { // ldg
		t.Fatal(err)
	}
	cpu.PC = 0x1000
	err := cpu.Step()
	if err == nil || !errors.Is(err, ErrUnsupported) {
		t.Errorf("got %v, want unsupported trap", err)
	}
}

func TestInstLimit(t *testing.T) {
	cpu := New(mem.New())
	prog := alphaasm.MustAssemble(`
	.text 0x1000
start:
	br start
`)
	if err := cpu.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(10); !errors.Is(err, ErrInstLimit) {
		t.Errorf("got %v, want ErrInstLimit", err)
	}
	if cpu.InstCount != 10 {
		t.Errorf("InstCount = %d, want 10", cpu.InstCount)
	}
}

func TestLoadLockStoreConditional(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	ldiq a0, 0x20000
	lda  t0, 5(zero)
	stq  t0, 0(a0)
	ldq_l t1, 0(a0)
	addq t1, #1, t1
	stq_c t1, 0(a0)
	ldq  t2, 0(a0)
	call_pal halt
`, 100)
	if cpu.Reg[2] != 1 {
		t.Errorf("stq_c success flag = %d, want 1", cpu.Reg[2])
	}
	if cpu.Reg[3] != 6 {
		t.Errorf("memory after ll/sc = %d, want 6", cpu.Reg[3])
	}
}

func TestRPCC(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	nop
	nop
	rpcc t0
	call_pal halt
`, 100)
	if cpu.Reg[1] != 2 {
		t.Errorf("rpcc = %d, want 2 (instructions before it)", cpu.Reg[1])
	}
}

func TestUnalignedAccessTrap(t *testing.T) {
	m := mem.New()
	cpu := New(m)
	prog := alphaasm.MustAssemble(`
	.text 0x10000
start:
	ldiq a0, 0x20001
	ldq  t0, 0(a0)
	call_pal halt
`)
	if err := cpu.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	err := cpu.Run(100)
	var af *mem.AlignmentFault
	if !errors.As(err, &af) {
		t.Errorf("got %v, want alignment fault", err)
	}
}

func TestLDQUIgnoresLowBits(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	ldiq a0, 0x20000
	ldiq t0, 0x55667788
	stl  t0, 0(a0)
	ldiq t0, 0x11223344
	stl  t0, 4(a0)
	ldq_u t1, 3(a0)      ; rounds down to 0x20000
	call_pal halt
`, 100)
	if cpu.Reg[2] != 0x1122334455667788 {
		t.Errorf("ldq_u = %#x", cpu.Reg[2])
	}
}

func TestBranchConditions(t *testing.T) {
	cpu := run(t, `
	.text 0x10000
start:
	clr   v0
	lda   t0, -1(zero)
	blt   t0, l1
	br    fail
l1:	lda   t1, 1(zero)
	bgt   t1, l2
	br    fail
l2:	blbs  t1, l3
	br    fail
l3:	blbc  t0, fail
	beq   zero, l4
	br    fail
l4:	bge   zero, l5
	br    fail
l5:	ble   zero, ok
	br    fail
fail:
	lda   v0, 1(zero)
ok:
	call_pal halt
`, 1000)
	if cpu.Reg[alpha.RegV0] != 0 {
		t.Error("branch condition test failed")
	}
}

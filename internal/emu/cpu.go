package emu

import (
	"errors"
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/mem"
)

// Trap is a precise architectural trap raised during interpretation or
// translated-code execution. PC is the V-ISA address of the faulting
// instruction.
type Trap struct {
	PC    uint64
	Cause error
}

func (t *Trap) Error() string { return fmt.Sprintf("trap at pc=%#x: %v", t.PC, t.Cause) }

// Unwrap exposes the underlying cause (e.g. *mem.AccessFault).
func (t *Trap) Unwrap() error { return t.Cause }

// Trap causes that are not memory faults.
var (
	ErrIllegalInstruction = errors.New("illegal instruction")
	ErrUnsupported        = errors.New("unsupported instruction (FP or PAL-reserved)")
	ErrBreakpoint         = errors.New("breakpoint")
	ErrBadSyscall         = errors.New("unknown system call")
)

// ErrInstLimit is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrInstLimit = errors.New("instruction limit reached")

// CPU is the architected state of an Alpha processor plus a little console
// for the PAL putchar surface. The zero value is not usable; call New.
type CPU struct {
	PC  uint64
	Reg [alpha.NumRegs]uint64
	Mem *mem.Memory

	Halted     bool
	ExitStatus uint64

	// InstCount counts architecturally executed (committed) instructions,
	// including NOPs.
	InstCount uint64

	// Console accumulates bytes written via SysPutChar.
	Console []byte

	// lockFlag models LDx_L/STx_C on a uniprocessor.
	lockFlag bool
	lockAddr uint64
}

// New returns a CPU with the given memory, PC 0, and all registers zero.
func New(m *mem.Memory) *CPU {
	return &CPU{Mem: m}
}

// LoadProgram copies an assembled program into memory and sets the PC to
// its entry point. Pages touched by the program are mapped, so they remain
// accessible in Strict mode.
func (c *CPU) LoadProgram(p *alphaprog.Program) error {
	for _, seg := range p.Segments {
		if err := c.Mem.Map(seg.Addr, uint64(len(seg.Data))); err != nil {
			return err
		}
		if err := c.Mem.Write8s(seg.Addr, seg.Data); err != nil {
			return err
		}
	}
	c.PC = p.Entry
	return nil
}

// ReadReg returns the value of r, respecting the hardwired zero register.
func (c *CPU) ReadReg(r alpha.Reg) uint64 {
	if r == alpha.RegZero {
		return 0
	}
	return c.Reg[r]
}

// WriteReg sets r to v; writes to the zero register are discarded.
func (c *CPU) WriteReg(r alpha.Reg, v uint64) {
	if r != alpha.RegZero {
		c.Reg[r] = v
	}
}

// FetchDecode fetches and decodes the instruction at PC without executing
// it.
func (c *CPU) FetchDecode() (alpha.Inst, error) {
	w, err := c.Mem.Read32(c.PC)
	if err != nil {
		return alpha.Inst{}, &Trap{PC: c.PC, Cause: err}
	}
	return alpha.Decode(alpha.Word(w)), nil
}

// Step fetches, decodes, and executes one instruction.
func (c *CPU) Step() error {
	inst, err := c.FetchDecode()
	if err != nil {
		return err
	}
	return c.Exec(inst)
}

// Run executes instructions until the CPU halts, a trap occurs, or max
// instructions have executed (ErrInstLimit). max <= 0 means no limit.
func (c *CPU) Run(max int64) error {
	for !c.Halted {
		if max > 0 && int64(c.InstCount) >= max {
			return ErrInstLimit
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Exec executes a single decoded instruction, updating PC and state. A
// returned error is always a *Trap; architected state is exactly the state
// before the faulting instruction (precise).
func (c *CPU) Exec(inst alpha.Inst) error {
	pc := c.PC
	next := pc + alpha.InstBytes

	switch {
	case inst.Op == alpha.OpInvalid:
		return &Trap{PC: pc, Cause: ErrIllegalInstruction}
	case inst.Op == alpha.OpUnsupported:
		return &Trap{PC: pc, Cause: ErrUnsupported}

	case inst.Op == alpha.OpCallPAL:
		if err := c.execPAL(inst, pc); err != nil {
			return err
		}

	case inst.Format == alpha.FormatMemory:
		if err := c.execMemory(inst, pc); err != nil {
			return err
		}

	case inst.Format == alpha.FormatOperate:
		b := c.ReadReg(inst.Rb)
		if inst.UseLit {
			b = uint64(inst.Lit)
		}
		if inst.IsCMOV() {
			if EvalCond(inst.Op, c.ReadReg(inst.Ra)) {
				c.WriteReg(inst.Rc, b)
			}
		} else {
			c.WriteReg(inst.Rc, EvalOp(inst.Op, c.ReadReg(inst.Ra), b))
		}

	case inst.Format == alpha.FormatBranch:
		if inst.Op == alpha.OpBR || inst.Op == alpha.OpBSR {
			c.WriteReg(inst.Ra, next)
			next = inst.BranchTarget(pc)
		} else if EvalCond(inst.Op, c.ReadReg(inst.Ra)) {
			next = inst.BranchTarget(pc)
		}

	case inst.Format == alpha.FormatMemJump:
		target := c.ReadReg(inst.Rb) &^ 3
		c.WriteReg(inst.Ra, next)
		next = target

	case inst.Format == alpha.FormatMemFunc:
		if inst.Op == alpha.OpRPCC {
			c.WriteReg(inst.Ra, c.InstCount)
		}
		// MB/WMB/TRAPB/EXCB: no effect on this uniprocessor model.

	default:
		return &Trap{PC: pc, Cause: ErrIllegalInstruction}
	}

	c.PC = next
	c.InstCount++
	return nil
}

func (c *CPU) execMemory(inst alpha.Inst, pc uint64) error {
	switch inst.Op {
	case alpha.OpLDA:
		c.WriteReg(inst.Ra, c.ReadReg(inst.Rb)+uint64(int64(inst.Disp)))
		return nil
	case alpha.OpLDAH:
		c.WriteReg(inst.Ra, c.ReadReg(inst.Rb)+uint64(int64(inst.Disp))<<16)
		return nil
	}
	addr := c.ReadReg(inst.Rb) + uint64(int64(inst.Disp))
	trap := func(err error) error { return &Trap{PC: pc, Cause: err} }
	switch inst.Op {
	case alpha.OpLDBU:
		v, err := c.Mem.Read8(addr)
		if err != nil {
			return trap(err)
		}
		c.WriteReg(inst.Ra, uint64(v))
	case alpha.OpLDWU:
		v, err := c.Mem.Read16(addr)
		if err != nil {
			return trap(err)
		}
		c.WriteReg(inst.Ra, uint64(v))
	case alpha.OpLDL:
		v, err := c.Mem.Read32(addr)
		if err != nil {
			return trap(err)
		}
		c.WriteReg(inst.Ra, sext32(uint64(v)))
	case alpha.OpLDQ:
		v, err := c.Mem.Read64(addr)
		if err != nil {
			return trap(err)
		}
		c.WriteReg(inst.Ra, v)
	case alpha.OpLDQU:
		v, err := c.Mem.Read64(addr &^ 7)
		if err != nil {
			return trap(err)
		}
		c.WriteReg(inst.Ra, v)
	case alpha.OpLDLL:
		v, err := c.Mem.Read32(addr)
		if err != nil {
			return trap(err)
		}
		c.lockFlag, c.lockAddr = true, addr
		c.WriteReg(inst.Ra, sext32(uint64(v)))
	case alpha.OpLDQL:
		v, err := c.Mem.Read64(addr)
		if err != nil {
			return trap(err)
		}
		c.lockFlag, c.lockAddr = true, addr
		c.WriteReg(inst.Ra, v)
	case alpha.OpSTB:
		if err := c.Mem.Write8(addr, byte(c.ReadReg(inst.Ra))); err != nil {
			return trap(err)
		}
	case alpha.OpSTW:
		if err := c.Mem.Write16(addr, uint16(c.ReadReg(inst.Ra))); err != nil {
			return trap(err)
		}
	case alpha.OpSTL:
		if err := c.Mem.Write32(addr, uint32(c.ReadReg(inst.Ra))); err != nil {
			return trap(err)
		}
	case alpha.OpSTQ:
		if err := c.Mem.Write64(addr, c.ReadReg(inst.Ra)); err != nil {
			return trap(err)
		}
	case alpha.OpSTQU:
		if err := c.Mem.Write64(addr&^7, c.ReadReg(inst.Ra)); err != nil {
			return trap(err)
		}
	case alpha.OpSTLC:
		ok := c.lockFlag && c.lockAddr == addr
		if ok {
			if err := c.Mem.Write32(addr, uint32(c.ReadReg(inst.Ra))); err != nil {
				return trap(err)
			}
		}
		c.lockFlag = false
		if ok {
			c.WriteReg(inst.Ra, 1)
		} else {
			c.WriteReg(inst.Ra, 0)
		}
	case alpha.OpSTQC:
		ok := c.lockFlag && c.lockAddr == addr
		if ok {
			if err := c.Mem.Write64(addr, c.ReadReg(inst.Ra)); err != nil {
				return trap(err)
			}
		}
		c.lockFlag = false
		if ok {
			c.WriteReg(inst.Ra, 1)
		} else {
			c.WriteReg(inst.Ra, 0)
		}
	default:
		return trap(ErrIllegalInstruction)
	}
	return nil
}

func (c *CPU) execPAL(inst alpha.Inst, pc uint64) error {
	switch inst.PALFn {
	case alpha.PALHalt:
		c.Halted = true
	case alpha.PALBpt:
		return &Trap{PC: pc, Cause: ErrBreakpoint}
	case alpha.PALCallSys:
		switch c.Reg[alpha.RegV0] {
		case alpha.SysExit:
			c.Halted = true
			c.ExitStatus = c.Reg[alpha.RegA0]
		case alpha.SysPutChar:
			c.Console = append(c.Console, byte(c.Reg[alpha.RegA0]))
		case alpha.SysGetTime:
			c.Reg[alpha.RegV0] = c.InstCount
		default:
			return &Trap{PC: pc, Cause: ErrBadSyscall}
		}
	default:
		return &Trap{PC: pc, Cause: ErrIllegalInstruction}
	}
	return nil
}

// ConsoleString returns the console output accumulated so far.
func (c *CPU) ConsoleString() string { return string(c.Console) }

// LockState returns the LDx_L/STx_C lock flag and locked address. It is
// architected state: a checkpoint taken between an LDx_L and its STx_C
// must preserve it for the conditional store to resolve identically.
func (c *CPU) LockState() (flag bool, addr uint64) { return c.lockFlag, c.lockAddr }

// SetLockState restores the lock flag and locked address (checkpoint
// restore).
func (c *CPU) SetLockState(flag bool, addr uint64) { c.lockFlag, c.lockAddr = flag, addr }

package emu

import (
	"testing"
	"testing/quick"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/mem"
)

// Property: EvalOp agrees with the full interpreter for every ALU
// operation over random operands — the helper the translated-code executor
// uses must be bit-identical to what the interpreter does.
func TestEvalOpMatchesInterpreter(t *testing.T) {
	ops := []alpha.Op{
		alpha.OpADDL, alpha.OpS4ADDL, alpha.OpS8ADDL, alpha.OpSUBL,
		alpha.OpS4SUBL, alpha.OpS8SUBL, alpha.OpADDQ, alpha.OpS4ADDQ,
		alpha.OpS8ADDQ, alpha.OpSUBQ, alpha.OpS4SUBQ, alpha.OpS8SUBQ,
		alpha.OpCMPEQ, alpha.OpCMPLT, alpha.OpCMPLE, alpha.OpCMPULT,
		alpha.OpCMPULE, alpha.OpCMPBGE, alpha.OpAND, alpha.OpBIC,
		alpha.OpBIS, alpha.OpORNOT, alpha.OpXOR, alpha.OpEQV,
		alpha.OpSLL, alpha.OpSRL, alpha.OpSRA,
		alpha.OpEXTBL, alpha.OpEXTWL, alpha.OpEXTLL, alpha.OpEXTQL,
		alpha.OpEXTWH, alpha.OpEXTLH, alpha.OpEXTQH,
		alpha.OpINSBL, alpha.OpINSWL, alpha.OpINSLL, alpha.OpINSQL,
		alpha.OpINSWH, alpha.OpINSLH, alpha.OpINSQH,
		alpha.OpMSKBL, alpha.OpMSKWL, alpha.OpMSKLL, alpha.OpMSKQL,
		alpha.OpMSKWH, alpha.OpMSKLH, alpha.OpMSKQH,
		alpha.OpZAP, alpha.OpZAPNOT, alpha.OpMULL, alpha.OpMULQ, alpha.OpUMULH,
	}
	m := mem.New()
	cpu := New(m)
	f := func(opIdx uint8, a, b uint64) bool {
		op := ops[int(opIdx)%len(ops)]
		// Run the real instruction: r3 = r1 op r2.
		w, err := alpha.EncodeOperateR(op, 1, 2, 3)
		if err != nil {
			return false
		}
		cpu.PC = 0x1000
		if err := m.Write32(0x1000, uint32(w)); err != nil {
			return false
		}
		cpu.Reg[1], cpu.Reg[2] = a, b
		if err := cpu.Step(); err != nil {
			return false
		}
		return cpu.Reg[3] == EvalOp(op, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: EvalCond agrees with the interpreter's branch decision.
func TestEvalCondMatchesInterpreter(t *testing.T) {
	ops := []alpha.Op{
		alpha.OpBEQ, alpha.OpBNE, alpha.OpBLT, alpha.OpBGE,
		alpha.OpBLE, alpha.OpBGT, alpha.OpBLBC, alpha.OpBLBS,
	}
	m := mem.New()
	cpu := New(m)
	f := func(opIdx uint8, v uint64) bool {
		op := ops[int(opIdx)%len(ops)]
		w, err := alpha.EncodeBranch(op, 1, 8)
		if err != nil {
			return false
		}
		cpu.PC = 0x1000
		if err := m.Write32(0x1000, uint32(w)); err != nil {
			return false
		}
		cpu.Reg[1] = v
		if err := cpu.Step(); err != nil {
			return false
		}
		taken := cpu.PC != 0x1004
		return taken == EvalCond(op, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

// Property: literal-form operate instructions zero-extend the 8-bit
// literal, matching EvalOp with the literal as the b operand.
func TestLiteralOperandMatches(t *testing.T) {
	m := mem.New()
	cpu := New(m)
	f := func(a uint64, lit uint8) bool {
		w, err := alpha.EncodeOperateL(alpha.OpSUBQ, 1, lit, 3)
		if err != nil {
			return false
		}
		cpu.PC = 0x1000
		if err := m.Write32(0x1000, uint32(w)); err != nil {
			return false
		}
		cpu.Reg[1] = a
		if err := cpu.Step(); err != nil {
			return false
		}
		return cpu.Reg[3] == a-uint64(lit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

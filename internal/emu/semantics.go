// Package emu implements a functional (instruction-accurate, not timed)
// interpreter for the Alpha integer subset. The interpreter is used by the
// co-designed VM for the interpret/profile stage, and its operate/branch
// semantic helpers are shared with the translated-code (I-ISA) executor so
// both execution modes agree bit-for-bit.
package emu

import (
	"math/bits"

	"github.com/ildp/accdbt/internal/alpha"
)

func sext32(v uint64) uint64 { return uint64(int64(int32(v))) }

// EV6FeatureMask is the AMASK architecture-extension mask this model
// reports: BWX (1), FIX (2), CIX (4), and MVI (0x100).
const EV6FeatureMask = 0x107

// shiftPair implements the Alpha EXT/INS/MSK "high" shift amount
// (64 - 8*bn) mod 64.
func highShift(bn uint64) uint { return uint((64 - 8*(bn&7)) & 63) }

func byteMask(zapBits uint64) uint64 {
	var m uint64
	for i := uint(0); i < 8; i++ {
		if zapBits&(1<<i) != 0 {
			m |= 0xFF << (8 * i)
		}
	}
	return m
}

// EvalOp computes the result of an operate-format operation on operand
// values a (Ra) and b (Rb or the zero-extended literal). For conditional
// moves use EvalCond plus the caller's select; EvalOp must not be called
// with CMOV operations.
func EvalOp(op alpha.Op, a, b uint64) uint64 {
	switch op {
	case alpha.OpADDL:
		return sext32(a + b)
	case alpha.OpS4ADDL:
		return sext32(a<<2 + b)
	case alpha.OpS8ADDL:
		return sext32(a<<3 + b)
	case alpha.OpSUBL:
		return sext32(a - b)
	case alpha.OpS4SUBL:
		return sext32(a<<2 - b)
	case alpha.OpS8SUBL:
		return sext32(a<<3 - b)
	case alpha.OpADDQ:
		return a + b
	case alpha.OpS4ADDQ:
		return a<<2 + b
	case alpha.OpS8ADDQ:
		return a<<3 + b
	case alpha.OpSUBQ:
		return a - b
	case alpha.OpS4SUBQ:
		return a<<2 - b
	case alpha.OpS8SUBQ:
		return a<<3 - b
	case alpha.OpCMPEQ:
		if a == b {
			return 1
		}
		return 0
	case alpha.OpCMPLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case alpha.OpCMPLE:
		if int64(a) <= int64(b) {
			return 1
		}
		return 0
	case alpha.OpCMPULT:
		if a < b {
			return 1
		}
		return 0
	case alpha.OpCMPULE:
		if a <= b {
			return 1
		}
		return 0
	case alpha.OpCMPBGE:
		var r uint64
		for i := uint(0); i < 8; i++ {
			if byte(a>>(8*i)) >= byte(b>>(8*i)) {
				r |= 1 << i
			}
		}
		return r
	case alpha.OpAND:
		return a & b
	case alpha.OpBIC:
		return a &^ b
	case alpha.OpBIS:
		return a | b
	case alpha.OpORNOT:
		return a | ^b
	case alpha.OpXOR:
		return a ^ b
	case alpha.OpEQV:
		return a ^ ^b
	case alpha.OpSLL:
		return a << (b & 63)
	case alpha.OpSRL:
		return a >> (b & 63)
	case alpha.OpSRA:
		return uint64(int64(a) >> (b & 63))
	case alpha.OpEXTBL:
		return (a >> (8 * (b & 7))) & 0xFF
	case alpha.OpEXTWL:
		return (a >> (8 * (b & 7))) & 0xFFFF
	case alpha.OpEXTLL:
		return (a >> (8 * (b & 7))) & 0xFFFFFFFF
	case alpha.OpEXTQL:
		return a >> (8 * (b & 7))
	case alpha.OpEXTWH:
		return (a << highShift(b)) & 0xFFFF
	case alpha.OpEXTLH:
		return (a << highShift(b)) & 0xFFFFFFFF
	case alpha.OpEXTQH:
		return a << highShift(b)
	case alpha.OpINSBL:
		return (a & 0xFF) << (8 * (b & 7))
	case alpha.OpINSWL:
		return (a & 0xFFFF) << (8 * (b & 7))
	case alpha.OpINSLL:
		return (a & 0xFFFFFFFF) << (8 * (b & 7))
	case alpha.OpINSQL:
		return a << (8 * (b & 7))
	case alpha.OpINSWH:
		return (a & 0xFFFF) >> highShift(b)
	case alpha.OpINSLH:
		return (a & 0xFFFFFFFF) >> highShift(b)
	case alpha.OpINSQH:
		return a >> highShift(b)
	case alpha.OpMSKBL:
		return a &^ (0xFF << (8 * (b & 7)))
	case alpha.OpMSKWL:
		return a &^ (0xFFFF << (8 * (b & 7)))
	case alpha.OpMSKLL:
		return a &^ (0xFFFFFFFF << (8 * (b & 7)))
	case alpha.OpMSKQL:
		return a &^ (^uint64(0) << (8 * (b & 7)))
	case alpha.OpMSKWH:
		return a &^ (0xFFFF >> highShift(b))
	case alpha.OpMSKLH:
		return a &^ (0xFFFFFFFF >> highShift(b))
	case alpha.OpMSKQH:
		return a &^ (^uint64(0) >> highShift(b))
	case alpha.OpZAP:
		return a &^ byteMask(b)
	case alpha.OpZAPNOT:
		return a & byteMask(b)
	case alpha.OpMULL:
		return sext32(a * b)
	case alpha.OpMULQ:
		return a * b
	case alpha.OpUMULH:
		hi, _ := bits.Mul64(a, b)
		return hi
	case alpha.OpAMASK:
		// EV6 implements BWX|FIX|CIX|MVI (bits 0,1,2,8): those bits of the
		// operand are cleared, telling software the features exist.
		return b &^ EV6FeatureMask
	case alpha.OpIMPLVER:
		// 2 = EV6 family.
		return 2
	case alpha.OpLDA:
		// Exposed so the translator can model address computation as an ALU
		// op: lda -> addq-like.
		return a + b
	}
	panic(&SemanticsError{Func: "EvalOp", Op: op})
}

// EvalCond evaluates the branch/CMOV condition of op against value v (the
// Ra operand of a branch, or the Ra operand of a conditional move).
func EvalCond(op alpha.Op, v uint64) bool {
	switch op {
	case alpha.OpBEQ, alpha.OpCMOVEQ:
		return v == 0
	case alpha.OpBNE, alpha.OpCMOVNE:
		return v != 0
	case alpha.OpBLT, alpha.OpCMOVLT:
		return int64(v) < 0
	case alpha.OpBGE, alpha.OpCMOVGE:
		return int64(v) >= 0
	case alpha.OpBLE, alpha.OpCMOVLE:
		return int64(v) <= 0
	case alpha.OpBGT, alpha.OpCMOVGT:
		return int64(v) > 0
	case alpha.OpBLBC, alpha.OpCMOVLBC:
		return v&1 == 0
	case alpha.OpBLBS, alpha.OpCMOVLBS:
		return v&1 == 1
	}
	panic(&SemanticsError{Func: "EvalCond", Op: op})
}

// IsALUOp reports whether op is handled by EvalOp.
func IsALUOp(op alpha.Op) bool {
	switch op {
	case alpha.OpADDL, alpha.OpS4ADDL, alpha.OpS8ADDL, alpha.OpSUBL,
		alpha.OpS4SUBL, alpha.OpS8SUBL, alpha.OpADDQ, alpha.OpS4ADDQ,
		alpha.OpS8ADDQ, alpha.OpSUBQ, alpha.OpS4SUBQ, alpha.OpS8SUBQ,
		alpha.OpCMPEQ, alpha.OpCMPLT, alpha.OpCMPLE, alpha.OpCMPULT,
		alpha.OpCMPULE, alpha.OpCMPBGE, alpha.OpAND, alpha.OpBIC,
		alpha.OpBIS, alpha.OpORNOT, alpha.OpXOR, alpha.OpEQV,
		alpha.OpSLL, alpha.OpSRL, alpha.OpSRA,
		alpha.OpEXTBL, alpha.OpEXTWL, alpha.OpEXTLL, alpha.OpEXTQL,
		alpha.OpEXTWH, alpha.OpEXTLH, alpha.OpEXTQH,
		alpha.OpINSBL, alpha.OpINSWL, alpha.OpINSLL, alpha.OpINSQL,
		alpha.OpINSWH, alpha.OpINSLH, alpha.OpINSQH,
		alpha.OpMSKBL, alpha.OpMSKWL, alpha.OpMSKLL, alpha.OpMSKQL,
		alpha.OpMSKWH, alpha.OpMSKLH, alpha.OpMSKQH,
		alpha.OpZAP, alpha.OpZAPNOT, alpha.OpMULL, alpha.OpMULQ, alpha.OpUMULH,
		alpha.OpAMASK, alpha.OpIMPLVER:
		return true
	}
	return false
}

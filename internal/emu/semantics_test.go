package emu

import (
	"testing"
	"testing/quick"

	"github.com/ildp/accdbt/internal/alpha"
)

func TestEvalOpArithmetic(t *testing.T) {
	tests := []struct {
		op      alpha.Op
		a, b    uint64
		want    uint64
		comment string
	}{
		{alpha.OpADDQ, 1, 2, 3, ""},
		{alpha.OpADDQ, ^uint64(0), 1, 0, "wraparound"},
		{alpha.OpADDL, 0x7FFFFFFF, 1, 0xFFFFFFFF80000000, "32-bit overflow sign-extends"},
		{alpha.OpSUBQ, 5, 7, ^uint64(1), "-2"},
		{alpha.OpSUBL, 0, 1, ^uint64(0), "-1 sign-extended"},
		{alpha.OpS4ADDQ, 3, 10, 22, ""},
		{alpha.OpS8ADDQ, 3, 10, 34, ""},
		{alpha.OpS4SUBQ, 3, 10, 2, ""},
		{alpha.OpS8SUBL, 1, 4, 4, ""},
		{alpha.OpMULQ, 7, 6, 42, ""},
		{alpha.OpMULL, 1 << 20, 1 << 20, 0, "low 32 bits zero"},
		{alpha.OpUMULH, 1 << 63, 4, 2, "high word"},
		{alpha.OpCMPEQ, 4, 4, 1, ""},
		{alpha.OpCMPEQ, 4, 5, 0, ""},
		{alpha.OpCMPLT, ^uint64(0), 0, 1, "-1 < 0 signed"},
		{alpha.OpCMPULT, ^uint64(0), 0, 0, "max > 0 unsigned"},
		{alpha.OpCMPLE, 3, 3, 1, ""},
		{alpha.OpCMPULE, 4, 3, 0, ""},
	}
	for _, tt := range tests {
		if got := EvalOp(tt.op, tt.a, tt.b); got != tt.want {
			t.Errorf("EvalOp(%v, %#x, %#x) = %#x, want %#x (%s)",
				tt.op, tt.a, tt.b, got, tt.want, tt.comment)
		}
	}
}

func TestEvalOpLogicalShift(t *testing.T) {
	tests := []struct {
		op   alpha.Op
		a, b uint64
		want uint64
	}{
		{alpha.OpAND, 0xF0F0, 0xFF00, 0xF000},
		{alpha.OpBIC, 0xF0F0, 0xFF00, 0x00F0},
		{alpha.OpBIS, 0xF0F0, 0x0F0F, 0xFFFF},
		{alpha.OpORNOT, 0, 0, ^uint64(0)},
		{alpha.OpXOR, 0xFF, 0x0F, 0xF0},
		{alpha.OpEQV, 0xFF, 0xFF, ^uint64(0)},
		{alpha.OpSLL, 1, 63, 1 << 63},
		{alpha.OpSLL, 1, 64, 1}, // shift count mod 64
		{alpha.OpSRL, 1 << 63, 63, 1},
		{alpha.OpSRA, 1 << 63, 63, ^uint64(0)},
		{alpha.OpSRA, 4, 1, 2},
		{alpha.OpZAPNOT, 0x1122334455667788, 0x0F, 0x55667788},
		{alpha.OpZAP, 0x1122334455667788, 0x0F, 0x1122334400000000},
	}
	for _, tt := range tests {
		if got := EvalOp(tt.op, tt.a, tt.b); got != tt.want {
			t.Errorf("EvalOp(%v, %#x, %#x) = %#x, want %#x", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEvalOpCMPBGE(t *testing.T) {
	// Classic strlen idiom: cmpbge zero, data -> bits set where bytes are 0.
	data := uint64(0x0041424300444546) // bytes: 46 45 44 00 43 42 41 00
	got := EvalOp(alpha.OpCMPBGE, 0, data)
	// byte i of zero (0) >= byte i of data iff data byte == 0: bytes 3 and 7.
	if got != 0x88 {
		t.Errorf("CMPBGE = %#x, want 0x88", got)
	}
}

func TestByteManipulation(t *testing.T) {
	v := uint64(0x8877665544332211)
	if got := EvalOp(alpha.OpEXTBL, v, 2); got != 0x33 {
		t.Errorf("EXTBL = %#x", got)
	}
	if got := EvalOp(alpha.OpEXTWL, v, 2); got != 0x4433 {
		t.Errorf("EXTWL = %#x", got)
	}
	if got := EvalOp(alpha.OpEXTLL, v, 4); got != 0x88776655 {
		t.Errorf("EXTLL = %#x", got)
	}
	if got := EvalOp(alpha.OpEXTQL, v, 0); got != v {
		t.Errorf("EXTQL bn=0 = %#x", got)
	}
	// EXTQH with bn=0 must return the value unchanged (mod-64 shift),
	// preserving the aligned-case unaligned-load idiom.
	if got := EvalOp(alpha.OpEXTQH, v, 0); got != v {
		t.Errorf("EXTQH bn=0 = %#x, want %#x", got, v)
	}
	if got := EvalOp(alpha.OpINSBL, 0xAB, 3); got != 0xAB000000 {
		t.Errorf("INSBL = %#x", got)
	}
	if got := EvalOp(alpha.OpMSKBL, v, 0); got != 0x8877665544332200 {
		t.Errorf("MSKBL = %#x", got)
	}
	if got := EvalOp(alpha.OpMSKQL, v, 0); got != 0 {
		t.Errorf("MSKQL bn=0 = %#x, want 0", got)
	}
}

// Property: the unaligned-store idiom (mskql/insql + mskqh/insqh applied to
// the same quad when the address is aligned) reproduces a plain store.
func TestUnalignedStoreIdiomProperty(t *testing.T) {
	f := func(memLo, val uint64, bnRaw uint8) bool {
		bn := uint64(bnRaw & 7)
		if bn != 0 {
			return true // only the aligned case collapses to one quad
		}
		lo := EvalOp(alpha.OpMSKQL, memLo, bn) | EvalOp(alpha.OpINSQL, val, bn)
		hi := EvalOp(alpha.OpMSKQH, lo, bn) | EvalOp(alpha.OpINSQH, val, bn)
		return hi == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EXTQL/EXTQH reassembly of an unaligned quadword recovers the
// original bytes for every byte offset.
func TestUnalignedLoadIdiomProperty(t *testing.T) {
	f := func(lo, hi uint64, bnRaw uint8) bool {
		bn := uint64(bnRaw & 7)
		// Bytes of the conceptual 16-byte buffer [lo, hi] starting at bn.
		var want uint64
		for i := uint64(0); i < 8; i++ {
			pos := bn + i
			var b byte
			if pos < 8 {
				b = byte(lo >> (8 * pos))
			} else {
				b = byte(hi >> (8 * (pos - 8)))
			}
			want |= uint64(b) << (8 * i)
		}
		var got uint64
		if bn == 0 {
			// Aligned: both ldq_u hit the same quad (lo).
			got = EvalOp(alpha.OpEXTQL, lo, bn) | EvalOp(alpha.OpEXTQH, lo, bn)
		} else {
			got = EvalOp(alpha.OpEXTQL, lo, bn) | EvalOp(alpha.OpEXTQH, hi, bn)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEvalCond(t *testing.T) {
	tests := []struct {
		op   alpha.Op
		v    uint64
		want bool
	}{
		{alpha.OpBEQ, 0, true}, {alpha.OpBEQ, 1, false},
		{alpha.OpBNE, 0, false}, {alpha.OpBNE, 5, true},
		{alpha.OpBLT, ^uint64(0), true}, {alpha.OpBLT, 0, false},
		{alpha.OpBGE, 0, true}, {alpha.OpBGE, ^uint64(0), false},
		{alpha.OpBLE, 0, true}, {alpha.OpBLE, 1, false},
		{alpha.OpBGT, 1, true}, {alpha.OpBGT, 0, false},
		{alpha.OpBLBC, 2, true}, {alpha.OpBLBC, 3, false},
		{alpha.OpBLBS, 3, true}, {alpha.OpBLBS, 2, false},
		{alpha.OpCMOVEQ, 0, true}, {alpha.OpCMOVGT, 7, true},
	}
	for _, tt := range tests {
		if got := EvalCond(tt.op, tt.v); got != tt.want {
			t.Errorf("EvalCond(%v, %#x) = %v, want %v", tt.op, tt.v, got, tt.want)
		}
	}
}

// Property: comparison results are always 0 or 1.
func TestCompareBooleanProperty(t *testing.T) {
	ops := []alpha.Op{alpha.OpCMPEQ, alpha.OpCMPLT, alpha.OpCMPLE, alpha.OpCMPULT, alpha.OpCMPULE}
	f := func(a, b uint64, i uint8) bool {
		v := EvalOp(ops[int(i)%len(ops)], a, b)
		return v == 0 || v == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsALUOp(t *testing.T) {
	if !IsALUOp(alpha.OpADDQ) || !IsALUOp(alpha.OpZAPNOT) || !IsALUOp(alpha.OpUMULH) {
		t.Error("ALU ops not recognised")
	}
	if IsALUOp(alpha.OpLDQ) || IsALUOp(alpha.OpBNE) || IsALUOp(alpha.OpCMOVEQ) || IsALUOp(alpha.OpJMP) {
		t.Error("non-ALU ops recognised as ALU")
	}
}

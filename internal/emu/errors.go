package emu

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
)

// SemanticsError reports a semantic-evaluation helper (EvalOp, EvalCond,
// LoadMem, StoreMem) invoked with an operation outside its domain. The
// helpers sit on the hottest executor paths, so they raise the error as a
// panic value rather than threading an error return through every ALU
// operation; vm.Run recovers the panic and surfaces it as an ordinary
// error at the VM boundary. A SemanticsError always indicates a malformed
// instruction — a corrupt fragment or a translator bug — never a
// condition of the guest program.
type SemanticsError struct {
	Func string   // the helper that was misused
	Op   alpha.Op // the out-of-domain operation
}

func (e *SemanticsError) Error() string {
	return fmt.Sprintf("emu: %s called with out-of-domain op %v", e.Func, e.Op)
}

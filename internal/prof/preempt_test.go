package prof

import "testing"

// TestPreemptFrame drives the preempt pseudo-frame through its full
// life cycle: a preemption mid-fragment closes the active frame and
// opens the preempt frame; Resume closes it; cycles retired while
// preempted are attributed to it; and conservation holds across the
// whole timeline.
func TestPreemptFrame(t *testing.T) {
	p := New(Config{})
	p.FragEnter(0, 0x2000, FragInfo{Insts: 4}, 0, 0)
	p.Retire(0, 1, 4, 1)
	p.Preempt(4, 3)
	// Cycles between preemption and resume (e.g. the checkpoint walk in
	// a timed harness) charge to the preempt frame, not a fragment.
	p.Retire(0, 5, 8, 0xFF)
	p.Resume(4, 3)
	p.FragEnter(1, 0x3000, FragInfo{Insts: 4}, 4, 3)
	p.Retire(0, 9, 12, 1)
	p.FragExit(ExitVM, 8, 6)
	p.Finish()

	pr := p.Profile()
	if pr.PreemptEntries != 1 {
		t.Errorf("PreemptEntries = %d, want 1", pr.PreemptEntries)
	}
	if pr.PreemptCycles == 0 {
		t.Error("no cycles attributed to the preempt frame")
	}
	if err := pr.CheckConservation(p.Clock() + 1); err != nil {
		t.Fatalf("conservation with preempt frame: %v", err)
	}
}

// TestFinishClosesDanglingPreemptFrame covers the
// checkpoint-and-discard path: a profiler finished while the preempt
// frame is still open (no Resume) must close it as a preemption, not a
// trap, and stay conservation-clean.
func TestFinishClosesDanglingPreemptFrame(t *testing.T) {
	p := New(Config{})
	p.FragEnter(0, 0x2000, FragInfo{Insts: 4}, 0, 0)
	p.Retire(0, 1, 4, 1)
	p.Preempt(4, 3)
	p.Retire(0, 5, 6, 0xFF)
	p.Finish()

	pr := p.Profile()
	if pr.PreemptEntries != 1 {
		t.Errorf("PreemptEntries = %d, want 1", pr.PreemptEntries)
	}
	if err := pr.CheckConservation(p.Clock() + 1); err != nil {
		t.Fatalf("conservation with dangling preempt frame: %v", err)
	}
	// Resume on a profiler with no open preempt frame is a no-op.
	p2 := New(Config{})
	p2.Resume(0, 0)
	p2.Finish()
}

package prof

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden exporter files")

// goldenFeed is a fixed miniature run exercising every event kind: two
// fragments chained directly, a software-prediction miss into dispatch,
// a dispatch hit, a translation, an eviction, and a final exit to the
// VM. Timestamps and counts are hand-picked so the golden files read
// like a real (tiny) profile.
func goldenFeed(p *Profiler) {
	infoA := FragInfo{Insts: 10, SrcInsts: 7, Strands: 2, MaxStrand: 5}
	infoB := FragInfo{Insts: 6, SrcInsts: 4, Strands: 1, MaxStrand: 3}

	p.Translate(0x10040, 7, 10, 140)
	p.FragEnter(1, 0x10040, infoA, 0, 0)
	p.Retire(0, 1, 2, 0)
	p.Retire(1, 2, 4, 1)
	p.Retire(0, 4, 6, 0)
	p.Chain(ChainDirect)
	p.FragEnter(2, 0x10080, infoB, 10, 7)
	p.Retire(1, 6, 8, 1)
	p.Retire(0, 8, 9, 0xFF)
	p.Chain(ChainSWPredMiss)
	p.EnterDispatch(16, 11)
	p.Retire(0, 9, 12, 0xFF)
	p.Chain(ChainDispatchHit)
	p.FragEnter(1, 0x10040, infoA, 36, 11)
	p.Retire(1, 12, 14, 1)
	p.Retire(0, 14, 16, 0)
	p.Evict(2, 0x10080)
	p.FragExit(ExitVM, 46, 18)
	p.Retire(0, 16, 18, 0xFF)
	p.Finish()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden; rerun with -update and review the diff\ngot:\n%s", name, got)
	}
}

func TestGoldenPerfetto(t *testing.T) {
	p := New(Config{})
	goldenFeed(p)

	var buf bytes.Buffer
	if err := p.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_trace.json", buf.Bytes())
}

func TestGoldenFolded(t *testing.T) {
	p := New(Config{})
	goldenFeed(p)

	pr := p.Profile()
	if err := pr.CheckConservation(p.Clock() + 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pr.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_folded.txt", buf.Bytes())
}

func TestGoldenHotTable(t *testing.T) {
	p := New(Config{})
	goldenFeed(p)

	var buf bytes.Buffer
	if err := p.Profile().WriteHotTable(&buf, 0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_hot.txt", buf.Bytes())
}

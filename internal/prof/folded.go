package prof

import (
	"fmt"
	"io"
	"sort"
)

// WriteFolded renders the cycle attribution as folded stacks, the line
// format consumed by standard flamegraph tools (flamegraph.pl, inferno,
// speedscope): semicolon-separated frames, a space, and the sample
// weight. Frames are `frag<ID>@<vstart>;acc<K>` — the fragment plus the
// accumulator (strand) whose instructions the cycles retired through —
// with `;nostrand` collecting accumulator-less instructions (stores,
// branches, chaining overhead) and top-level `dispatch` / `vm` rows for
// the pseudo-frames. Weights are cycles; when no timing model was
// attached (all cycles zero) fragment I-instruction counts are emitted
// instead so the output stays useful for functional-only runs.
func (pr *Profile) WriteFolded(w io.Writer) error {
	type line struct {
		stack  string
		weight int64
	}
	var lines []line
	add := func(stack string, weight int64) {
		if weight > 0 {
			lines = append(lines, line{stack, weight})
		}
	}

	useInsts := pr.TotalCycles == 0
	for i := range pr.Frags {
		f := &pr.Frags[i]
		base := fmt.Sprintf("frag%d@%#x", f.ID, f.VStart)
		if useInsts {
			add(base, int64(f.IInsts))
			continue
		}
		for acc, cyc := range f.AccCycles {
			if acc == accNone {
				add(base+";nostrand", cyc)
			} else {
				add(fmt.Sprintf("%s;acc%d", base, acc), cyc)
			}
		}
	}
	if useInsts {
		add("dispatch", int64(pr.DispatchIInsts))
	} else {
		add("dispatch", pr.DispatchCycles)
		add("vm", pr.VMCycles)
		add("recovery", pr.RecoveryCycles)
		add("preempt", pr.PreemptCycles)
	}

	sort.Slice(lines, func(i, j int) bool { return lines[i].stack < lines[j].stack })
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %d\n", l.stack, l.weight); err != nil {
			return err
		}
	}
	return nil
}

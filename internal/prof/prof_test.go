package prof

import (
	"reflect"
	"testing"
)

// feed drives a profiler with a small deterministic execution: frames
// entering and leaving with retiring records in between. Used by the
// ring and sampling tests; the golden exporter tests use goldenFeed.
func feed(p *Profiler, activations int) {
	clock := int64(0)
	info := FragInfo{Insts: 8, SrcInsts: 6, Strands: 2, MaxStrand: 4}
	var iTotal, vTotal uint64
	for a := 0; a < activations; a++ {
		id := int32(a % 3)
		p.FragEnter(id, 0x10000+uint64(id)*0x40, info, iTotal, vTotal)
		for k := 0; k < 4; k++ {
			clock += 2
			p.Retire(k%2, clock-1, clock, uint8(k%3))
			iTotal++
			vTotal++
		}
		p.Chain(ChainDirect)
	}
	p.FragExit(ExitVM, iTotal, vTotal)
	p.Finish()
}

func TestRingWraparound(t *testing.T) {
	p := New(Config{Capacity: 16})
	feed(p, 50) // 50 enters + 50 chains + exits/samples: far beyond 16

	evs := p.Events()
	if len(evs) != 16 {
		t.Fatalf("ring kept %d events, want capacity 16", len(evs))
	}
	if p.EventsRecorded() <= 16 {
		t.Fatalf("recorded %d events, want > capacity", p.EventsRecorded())
	}
	if got, want := p.EventsDropped(), p.EventsRecorded()-16; got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	// Oldest-first: timestamps never decrease, and the retained suffix is
	// the newest portion of the stream (its last event is the final exit).
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of order at %d: %d < %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
	if last := evs[len(evs)-1]; last.Kind != EvExit {
		t.Fatalf("last retained event is %v, want the final exit", last.Kind)
	}
}

func TestRingShortRunKeepsEverything(t *testing.T) {
	p := New(Config{Capacity: 1024})
	feed(p, 5)
	if p.EventsDropped() != 0 {
		t.Fatalf("short run dropped %d events", p.EventsDropped())
	}
	if got := p.EventsRecorded(); uint64(len(p.Events())) != got {
		t.Fatalf("Events() returned %d of %d recorded", len(p.Events()), got)
	}
}

// TestSamplingDeterministic checks two things: the same feed always
// records the same sampled events, and sampling never perturbs the
// aggregation (cycles, entries, instruction counts stay exact).
func TestSamplingDeterministic(t *testing.T) {
	full := New(Config{})
	s1 := New(Config{SampleEvery: 3})
	s2 := New(Config{SampleEvery: 3})
	feed(full, 30)
	feed(s1, 30)
	feed(s2, 30)

	e1, e2 := s1.Events(), s2.Events()
	if len(e1) != len(e2) {
		t.Fatalf("sampled runs recorded %d vs %d events", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("sampled event %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	if len(e1) >= len(full.Events()) {
		t.Fatalf("sampling 1/3 recorded %d events, full run %d", len(e1), len(full.Events()))
	}

	pf, ps := full.Profile(), s1.Profile()
	if pf.TotalCycles != ps.TotalCycles || pf.Activations != ps.Activations {
		t.Fatalf("sampling changed aggregation: %d/%d cycles, %d/%d activations",
			pf.TotalCycles, ps.TotalCycles, pf.Activations, ps.Activations)
	}
	if len(pf.Frags) != len(ps.Frags) {
		t.Fatalf("sampling changed fragment count: %d vs %d", len(pf.Frags), len(ps.Frags))
	}
	for i := range pf.Frags {
		if !reflect.DeepEqual(pf.Frags[i], ps.Frags[i]) {
			t.Fatalf("fragment %d aggregate differs under sampling:\n%+v\n%+v", i, pf.Frags[i], ps.Frags[i])
		}
	}
}

func TestNilProfilerIsNoop(t *testing.T) {
	var p *Profiler
	p.FragEnter(0, 0x1000, FragInfo{}, 0, 0)
	p.EnterDispatch(0, 0)
	p.Chain(ChainDirect)
	p.FragExit(ExitVM, 0, 0)
	p.Retire(0, 1, 2, 0)
	p.Translate(0x1000, 1, 2, 3)
	p.Evict(0, 0x1000)
	p.Finish()
	if p.Events() != nil || p.EventsRecorded() != 0 || p.Clock() != -1 {
		t.Fatal("nil profiler retained state")
	}
	pr := p.Profile()
	if pr.TotalCycles != 0 || len(pr.Frags) != 0 {
		t.Fatal("nil profiler produced a non-empty profile")
	}
}

func TestConservationWithVMFrame(t *testing.T) {
	p := New(Config{})
	// Records before any fragment entry land on the VM pseudo-frame.
	p.Retire(0, 4, 5, 0xFF)
	p.FragEnter(0, 0x2000, FragInfo{Insts: 4}, 0, 0)
	p.Retire(0, 9, 10, 1)
	p.FragExit(ExitVM, 4, 3)
	p.Retire(0, 11, 12, 0xFF)
	p.Finish()

	pr := p.Profile()
	if err := pr.CheckConservation(p.Clock() + 1); err != nil {
		t.Fatal(err)
	}
	if pr.VMCycles == 0 {
		t.Fatal("pre-fragment and post-fragment records were not charged to the VM frame")
	}
}

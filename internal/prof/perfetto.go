package prof

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event / Perfetto JSON export. The emitted file follows
// the "JSON Array Format" object flavour understood by both
// chrome://tracing and ui.perfetto.dev:
//
//   - pid 1 ("vm") / tid 1 carries fragment and dispatch activations as
//     complete ("X") duration events, chain verdicts as instant ("i")
//     events, and chain edges between activations as flow ("s"/"f")
//     pairs;
//   - pid 2 ("pe") has one counter ("C") track per processing element,
//     sampled at every activation boundary with the instructions the PE
//     retired during that activation;
//   - translations and evictions appear as instant events on the VM
//     track.
//
// Timestamps are simulated cycles presented as microseconds (the
// trace-event "ts"/"dur" unit), so 1 cycle renders as 1 µs.

// traceEvent is one trace-event entry; field order is fixed by the
// struct, making the output deterministic for golden tests.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant-event scope
	ID   *uint64        `json:"id,omitempty"` // flow-event binding
	BP   string         `json:"bp,omitempty"` // flow end binding point
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	pidVM = 1
	pidPE = 2
	tidVM = 1
)

func frameName(frag int32, vstart uint64) string {
	switch frag {
	case FrameDispatch:
		return "dispatch"
	case FrameVM:
		return "vm"
	case FrameRecovery:
		return "recovery"
	case FramePreempt:
		return "preempt"
	}
	return fmt.Sprintf("frag %d @%#x", frag, vstart)
}

// WritePerfetto renders the ring buffer as Chrome trace-event JSON.
func (p *Profiler) WritePerfetto(w io.Writer) error {
	events := p.Events()
	out := []traceEvent{
		{Name: "process_name", Ph: "M", PID: pidVM, TID: tidVM,
			Args: map[string]any{"name": "vm"}},
		{Name: "thread_name", Ph: "M", PID: pidVM, TID: tidVM,
			Args: map[string]any{"name": "fragments"}},
		{Name: "process_name", Ph: "M", PID: pidPE, TID: 0,
			Args: map[string]any{"name": "pe"}},
	}
	peSeen := map[int16]bool{}

	// Open activation while walking (the ring may start mid-stream after
	// wraparound, so an exit without a matching enter is skipped).
	type openSpan struct {
		ok     bool
		ts     int64
		frag   int32
		vstart uint64
	}
	var open openSpan
	var flowID uint64
	pendingFlow := false
	var flowTS int64
	var flowKind ChainKind

	closeSpan := func(end int64) {
		if !open.ok {
			return
		}
		dur := end - open.ts
		if dur < 0 {
			dur = 0
		}
		out = append(out, traceEvent{
			Name: frameName(open.frag, open.vstart), Ph: "X",
			TS: open.ts, Dur: &dur, PID: pidVM, TID: tidVM,
			Args: map[string]any{"frag": open.frag, "vstart": fmt.Sprintf("%#x", open.vstart)},
		})
		open.ok = false
	}

	for _, e := range events {
		switch e.Kind {
		case EvEnter:
			closeSpan(e.TS)
			if pendingFlow {
				// Emit the chain edge as a start/finish flow pair, now
				// that both endpoints are known (a dangling start would
				// leave the trace unbalanced).
				flowID++
				id := flowID
				out = append(out, traceEvent{
					Name: flowKind.String(), Ph: "s", TS: flowTS,
					PID: pidVM, TID: tidVM, ID: &id, Cat: "chain",
				})
				out = append(out, traceEvent{
					Name: flowKind.String(), Ph: "f", TS: e.TS,
					PID: pidVM, TID: tidVM, ID: &id, BP: "e", Cat: "chain",
				})
				pendingFlow = false
			}
			open = openSpan{ok: true, ts: e.TS, frag: e.Frag, vstart: e.VStart}
		case EvExit:
			closeSpan(e.TS)
			pendingFlow = false
		case EvChain:
			kind := ChainKind(e.Arg)
			out = append(out, traceEvent{
				Name: kind.String(), Ph: "i", TS: e.TS, PID: pidVM, TID: tidVM, S: "t",
				Args: map[string]any{"from": frameName(e.Frag, e.VStart)},
			})
			switch kind {
			case ChainDirect, ChainSWPredMiss, ChainRASHit, ChainDispatchHit:
				// These lead into another frame: edge pending until the
				// matching enter event.
				pendingFlow, flowTS, flowKind = true, e.TS, kind
			}
		case EvTranslate:
			out = append(out, traceEvent{
				Name: "translate", Ph: "i", TS: e.TS, PID: pidVM, TID: tidVM, S: "t",
				Args: map[string]any{"vstart": fmt.Sprintf("%#x", e.VStart), "cost": e.Arg},
			})
		case EvEvict:
			out = append(out, traceEvent{
				Name: "evict", Ph: "i", TS: e.TS, PID: pidVM, TID: tidVM, S: "t",
				Args: map[string]any{"frag": e.Frag, "vstart": fmt.Sprintf("%#x", e.VStart)},
			})
		case EvStoreHit:
			out = append(out, traceEvent{
				Name: "store_hit", Ph: "i", TS: e.TS, PID: pidVM, TID: tidVM, S: "t",
				Args: map[string]any{"vstart": fmt.Sprintf("%#x", e.VStart), "shared": e.Arg == 1},
			})
		case EvPESample:
			if !peSeen[e.PE] {
				peSeen[e.PE] = true
				out = append(out, traceEvent{
					Name: "thread_name", Ph: "M", PID: pidPE, TID: int(e.PE),
					Args: map[string]any{"name": fmt.Sprintf("pe%d insts", e.PE)},
				})
			}
			out = append(out, traceEvent{
				Name: fmt.Sprintf("pe%d insts", e.PE), Ph: "C", TS: e.TS,
				PID: pidPE, TID: int(e.PE),
				Args: map[string]any{"insts": e.Arg},
			})
		}
	}
	closeSpan(p.Clock())

	// A run with no fragment activations (the no-DBT baseline) still has
	// a timeline: one VM span covering the whole interpreted stream.
	if len(events) == 0 && p.Clock() >= 0 {
		dur := p.Clock()
		out = append(out, traceEvent{
			Name: frameName(FrameVM, KeyVM), Ph: "X",
			TS: 0, Dur: &dur, PID: pidVM, TID: tidVM,
			Args: map[string]any{"frag": FrameVM, "vstart": fmt.Sprintf("%#x", KeyVM)},
		})
	}

	doc := struct {
		TraceEvents     []traceEvent   `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}{
		TraceEvents:     out,
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"clock":          "simulated cycles (1 cycle = 1us)",
			"events_dropped": p.EventsDropped(),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ValidateTrace parses data as Chrome trace-event JSON and checks the
// structural invariants the exporters guarantee: a non-empty event
// array, every event carrying a name/phase/pid, non-negative timestamps
// and durations, and flow start/finish pairing.
func ValidateTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   *int64  `json:"ts"`
			Dur  *int64  `json:"dur"`
			PID  *int    `json:"pid"`
			ID   *uint64 `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("prof: trace JSON does not parse: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("prof: trace has no events")
	}
	flows := map[uint64]int{}
	spans := 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.PID == nil {
			return fmt.Errorf("prof: event %d missing name/ph/pid", i)
		}
		switch e.Ph {
		case "M":
			// metadata events carry no timestamp requirements
		case "X":
			spans++
			if e.TS == nil || *e.TS < 0 {
				return fmt.Errorf("prof: span event %d has bad ts", i)
			}
			if e.Dur == nil || *e.Dur < 0 {
				return fmt.Errorf("prof: span event %d has bad dur", i)
			}
		case "s":
			if e.ID == nil {
				return fmt.Errorf("prof: flow start %d missing id", i)
			}
			flows[*e.ID]++
		case "f":
			if e.ID == nil {
				return fmt.Errorf("prof: flow finish %d missing id", i)
			}
			flows[*e.ID]--
		case "i", "C":
			if e.TS == nil || *e.TS < 0 {
				return fmt.Errorf("prof: event %d has bad ts", i)
			}
		default:
			return fmt.Errorf("prof: event %d has unknown phase %q", i, e.Ph)
		}
	}
	if spans == 0 {
		return fmt.Errorf("prof: trace has no fragment spans")
	}
	for id, n := range flows {
		if n != 0 {
			return fmt.Errorf("prof: flow %d unbalanced (%+d)", id, n)
		}
	}
	return nil
}

// Package prof is the cycle-level execution tracer and hot-fragment
// profiler of the reproduction. The VM reports frame transitions
// (fragment entered/left, shared dispatch entered, translation,
// eviction) and chain-transition verdicts (software-prediction and
// dual-RAS hits/misses, dispatch-table runs), while the timing models
// report every retired record with its processing element and retire
// cycle. From those two feeds the profiler maintains:
//
//   - a cycle-exact attribution of the run's total cycles to fragments,
//     the shared dispatch routine, and non-translated execution (the
//     deltas between consecutive retire cycles are charged to whichever
//     frame is active, so per-frame cycle totals always sum to the
//     timing model's total cycle count);
//   - per-fragment aggregates: entries, I-/V-instructions, cycle spans,
//     exit-reason and chain-kind breakdowns, per-accumulator (strand)
//     cycles, and per-PE instruction occupancy; and
//   - a bounded ring buffer of timestamped events for timeline export
//     (Chrome trace-event / Perfetto JSON and folded flamegraph stacks),
//     with optional activation sampling so tracing stays cheap on long
//     runs.
//
// A nil *Profiler is a valid "profiling disabled" profiler: every hook
// is a no-op, so instrumented code attaches one unconditionally.
// Profiling never changes simulation results — the profiler only
// observes the VM and timing models. A Profiler belongs to one run (one
// VM plus its sink); it is not safe for concurrent use.
package prof

import (
	"github.com/ildp/accdbt/internal/metrics"
)

// ChainKind classifies a fragment-to-fragment (or fragment-to-dispatch)
// control transfer, mirroring the paper's chaining schemes (§4.3).
type ChainKind uint8

const (
	// ChainDirect is a patched direct branch between fragments (§3.2).
	ChainDirect ChainKind = iota
	// ChainSWPredHit / Miss are software jump-prediction verdicts: a hit
	// falls through inside the fragment, a miss enters dispatch.
	ChainSWPredHit
	ChainSWPredMiss
	// ChainRASHit / Miss are dual-address return-address-stack verdicts.
	ChainRASHit
	ChainRASMiss
	// ChainDispatchHit / Miss are dispatch-table lookups: a hit enters
	// the found fragment, a miss exits to the VM.
	ChainDispatchHit
	ChainDispatchMiss

	numChainKinds = int(ChainDispatchMiss) + 1
)

var chainKindNames = [numChainKinds]string{
	"direct", "sw_pred.hit", "sw_pred.miss", "ras.hit", "ras.miss",
	"dispatch.hit", "dispatch.miss",
}

// String returns the lower-case chain-kind name.
func (k ChainKind) String() string {
	if int(k) < len(chainKindNames) {
		return chainKindNames[k]
	}
	return "chain?"
}

// ExitKind classifies how a frame activation ended.
type ExitKind uint8

const (
	// ExitChain left via a chained transfer into another fragment.
	ExitChain ExitKind = iota
	// ExitDispatch entered the shared dispatch routine.
	ExitDispatch
	// ExitVM returned control to the VM (call-translator exit or
	// dispatch miss).
	ExitVM
	// ExitTrap aborted on a precise trap.
	ExitTrap
	// ExitRecover was cut short by a recovery episode: an injected or
	// detected fault at a fragment entry sent control to the recovery
	// pseudo-frame instead of the next fragment.
	ExitRecover
	// ExitPreempt was cut short by a preemption: a deadline/stop request
	// or budget exhaustion stopped the run at a V-instruction boundary.
	ExitPreempt

	numExitKinds = int(ExitPreempt) + 1
)

var exitKindNames = [numExitKinds]string{"chain", "dispatch", "vm", "trap", "recover", "preempt"}

// String returns the lower-case exit-kind name.
func (k ExitKind) String() string {
	if int(k) < len(exitKindNames) {
		return exitKindNames[k]
	}
	return "exit?"
}

// Pseudo-frame keys. Real fragments are keyed by their V-ISA start
// address, which is always far above these values.
const (
	// KeyDispatch aggregates cycles spent in the shared dispatch routine.
	KeyDispatch uint64 = 1
	// KeyVM aggregates cycles retired outside any fragment (the
	// interpreted stream of the no-DBT baseline).
	KeyVM uint64 = 2
	// KeyRecovery aggregates cycles (and spans) attributed to recovery
	// episodes — fragment invalidation, retranslation backoff, and
	// interpreter fallback after an injected or detected fault. Recovery
	// work is modelled in Alpha instructions (vm.Stats.RecoveryCost), so
	// this frame usually carries entries but few cycles; it exists so the
	// cycle-conservation invariant holds across recoveries.
	KeyRecovery uint64 = 3
	// KeyPreempt aggregates preemption boundaries: a deadline/stop
	// request or budget exhaustion stopping the run. Like recovery it
	// usually carries entries but few cycles — it exists so cycle
	// conservation holds across preempted (and later resumed) runs.
	KeyPreempt uint64 = 4
)

// numAccSlots is 8 accumulators plus one slot for acc-less instructions.
const (
	numAccSlots = 9
	accNone     = numAccSlots - 1
)

// FragInfo is the static shape of a fragment, registered on first entry.
type FragInfo struct {
	Insts        int  // I-instructions in the fragment
	SrcInsts     int  // V-ISA instructions translated
	Strands      int  // strands formed (0 for straightened code)
	MaxStrand    int  // longest strand in instructions
	Straightened bool // straightened-Alpha fragment
}

// FragAgg is the running aggregate for one frame (fragment or pseudo).
type FragAgg struct {
	ID     int32 // latest fragment ID seen for this V-start
	VStart uint64
	Info   FragInfo

	Entries uint64
	Cycles  int64  // retire-cycle deltas attributed while active
	IInsts  uint64 // I-instructions executed while active
	VInsts  uint64 // V-ISA instructions retired while active

	Exits  [numExitKinds]uint64
	Chains [numChainKinds]uint64 // chain verdicts observed while active

	// AccCycles attributes the frame's cycles to the accumulator
	// (strand) of each retiring instruction; the last slot collects
	// accumulator-less instructions.
	AccCycles [numAccSlots]int64

	// PEInsts counts instructions retired per processing element while
	// this frame was active (grown on demand).
	PEInsts []uint64

	SpanMin, SpanMax int64 // shortest / longest activation in cycles
}

// EvKind identifies a ring-buffer event.
type EvKind uint8

const (
	EvEnter     EvKind = iota // fragment activation begins; Arg = entry chain kind (-1 at episode start)
	EvExit                    // frame activation ends; Arg = ExitKind
	EvChain                   // chain verdict; Arg = ChainKind
	EvTranslate               // superblock translated; Arg = cost work units
	EvEvict                   // fragment evicted on a cache flush
	EvPESample                // per-PE instruction count since the frame opened; Arg = count
	EvStoreHit                // superblock satisfied from the shared fragment store; Arg = 1 if shared
)

var evKindNames = [...]string{"enter", "exit", "chain", "translate", "evict", "pe_sample",
	"store_hit"}

// String returns the lower-case event-kind name.
func (k EvKind) String() string {
	if int(k) < len(evKindNames) {
		return evKindNames[k]
	}
	return "ev?"
}

// Event is one timestamped trace event in the ring buffer.
type Event struct {
	Kind   EvKind
	TS     int64 // retire-cycle clock at emission
	Frag   int32 // fragment ID (-1 for dispatch, -2 for the VM frame)
	PE     int16 // processing element (EvPESample), else -1
	VStart uint64
	Arg    int64
}

// Frame IDs used in ring events for pseudo-frames.
const (
	FrameDispatch int32 = -1
	FrameVM       int32 = -2
	FrameRecovery int32 = -3
	FramePreempt  int32 = -4
)

// Config sizes the profiler.
type Config struct {
	// Capacity bounds the event ring buffer (default 65536 events).
	Capacity int
	// SampleEvery records ring events for every Nth frame activation
	// (default 1 = all). Aggregation is always exact regardless of the
	// sampling rate, and sampling is deterministic: it depends only on
	// the activation count, never on time.
	SampleEvery int
}

// Profiler collects execution traces and fragment profiles. See the
// package comment for the data it maintains; construct with New.
type Profiler struct {
	cfg Config

	// clock is the last retire cycle seen from the timing model; -1
	// before the first record so that attributing deltas over the whole
	// run sums exactly to the model's Cycles (= lastRetire + 1).
	clock int64

	frames map[uint64]*FragAgg
	cur    *FragAgg // active frame (nil before the first enter)
	curTS  int64    // clock at activation start

	pendingExit  ExitKind // exit reason for the current frame when the next enter closes it
	pendingChain int64    // chain kind that will lead into the next frame (-1 none)

	// iBase / vBase are the VM's translated I-/V-instruction totals at
	// the current activation's start; deltas flush to the closing frame.
	iBase, vBase uint64

	activations uint64
	armed       bool // ring events recorded for the current activation

	// peSince counts per-PE instructions retired during the current
	// activation (flushed to ring PE samples and the frame aggregate at
	// close).
	peSince []uint64

	// spanHist feeds p50/p95/p99 activation-span summaries.
	spanHist *metrics.Histogram

	// ring buffer
	ring   []Event
	pushed uint64 // total events ever pushed

	retires  uint64 // records seen from the timing model
	finished bool
}

// New returns an enabled profiler.
func New(cfg Config) *Profiler {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 16
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	return &Profiler{
		cfg:          cfg,
		clock:        -1,
		frames:       map[uint64]*FragAgg{},
		pendingChain: -1,
		spanHist:     metrics.NewHistogram(),
	}
}

// Enabled reports whether the profiler collects anything.
func (p *Profiler) Enabled() bool { return p != nil }

func (p *Profiler) push(e Event) {
	if e.TS < 0 {
		e.TS = 0 // the clock is -1 until the first record retires
	}
	if len(p.ring) < p.cfg.Capacity {
		p.ring = append(p.ring, e)
	} else {
		p.ring[p.pushed%uint64(p.cfg.Capacity)] = e
	}
	p.pushed++
}

// Events returns the retained ring events oldest-first.
func (p *Profiler) Events() []Event {
	if p == nil || p.pushed == 0 {
		return nil
	}
	out := make([]Event, 0, len(p.ring))
	if p.pushed <= uint64(len(p.ring)) {
		return append(out, p.ring...)
	}
	head := int(p.pushed % uint64(len(p.ring)))
	out = append(out, p.ring[head:]...)
	return append(out, p.ring[:head]...)
}

// EventsRecorded returns how many events were pushed into the ring, and
// EventsDropped how many of those the bounded ring has overwritten.
func (p *Profiler) EventsRecorded() uint64 {
	if p == nil {
		return 0
	}
	return p.pushed
}

// EventsDropped returns the number of events overwritten by the ring.
func (p *Profiler) EventsDropped() uint64 {
	if p == nil || p.pushed <= uint64(len(p.ring)) {
		return 0
	}
	return p.pushed - uint64(len(p.ring))
}

// frame returns (creating if needed) the aggregate for a frame key.
func (p *Profiler) frame(key uint64, id int32, vstart uint64) *FragAgg {
	f := p.frames[key]
	if f == nil {
		f = &FragAgg{ID: id, VStart: vstart}
		p.frames[key] = f
	}
	f.ID = id // fragment IDs restart after a cache flush; keep the latest
	return f
}

// closeFrame ends the current activation with the given reason.
func (p *Profiler) closeFrame(reason ExitKind, iTotal, vTotal uint64) {
	f := p.cur
	if f == nil {
		return
	}
	f.Exits[reason]++
	span := p.clock - p.curTS
	if span < 0 {
		span = 0
	}
	if f.Entries == 1 || span < f.SpanMin {
		f.SpanMin = span
	}
	if span > f.SpanMax {
		f.SpanMax = span
	}
	p.spanHist.Observe(float64(span))
	p.flushIVTotals(iTotal, vTotal)
	if p.armed {
		frag := f.ID
		if f.VStart == KeyDispatch {
			frag = FrameDispatch
		} else if f.VStart == KeyVM {
			frag = FrameVM
		} else if f.VStart == KeyRecovery {
			frag = FrameRecovery
		} else if f.VStart == KeyPreempt {
			frag = FramePreempt
		}
		for pe, n := range p.peSince {
			if n != 0 {
				p.push(Event{Kind: EvPESample, TS: p.clock, Frag: frag,
					VStart: f.VStart, PE: int16(pe), Arg: int64(n)})
			}
		}
		p.push(Event{Kind: EvExit, TS: p.clock, Frag: frag, VStart: f.VStart,
			Arg: int64(reason)})
	}
	for pe := range p.peSince {
		p.peSince[pe] = 0
	}
	p.cur = nil
}

func (p *Profiler) flushIVTotals(iTotal, vTotal uint64) {
	if p.cur == nil {
		return
	}
	if iTotal >= p.iBase {
		p.cur.IInsts += iTotal - p.iBase
	}
	if vTotal >= p.vBase {
		p.cur.VInsts += vTotal - p.vBase
	}
	p.iBase, p.vBase = iTotal, vTotal
}

// open starts a new activation of the frame keyed by key.
func (p *Profiler) open(key uint64, id int32, vstart uint64, iTotal, vTotal uint64) *FragAgg {
	f := p.frame(key, id, vstart)
	f.Entries++
	p.cur = f
	p.curTS = p.clock
	p.iBase, p.vBase = iTotal, vTotal
	p.activations++
	p.armed = (p.activations-1)%uint64(p.cfg.SampleEvery) == 0
	return f
}

// FragEnter begins an activation of fragment id at vstart. info is the
// fragment's static shape (cheap to recompute; retained on first entry).
// iTotal/vTotal are the VM's running translated I- and V-instruction
// totals, used to attribute instruction deltas to the closing frame.
func (p *Profiler) FragEnter(id int32, vstart uint64, info FragInfo, iTotal, vTotal uint64) {
	if p == nil {
		return
	}
	entryChain := p.pendingChain
	p.pendingChain = -1
	p.closeFrame(p.pendingExit, iTotal, vTotal)
	p.pendingExit = ExitChain
	f := p.open(vstart, id, vstart, iTotal, vTotal)
	if f.Info == (FragInfo{}) {
		f.Info = info
	}
	if p.armed {
		p.push(Event{Kind: EvEnter, TS: p.clock, Frag: id, VStart: vstart, Arg: entryChain, PE: -1})
	}
}

// EnterDispatch begins an activation of the shared dispatch routine; the
// current fragment's activation closes with an ExitDispatch reason.
func (p *Profiler) EnterDispatch(iTotal, vTotal uint64) {
	if p == nil {
		return
	}
	entryChain := p.pendingChain
	p.pendingChain = -1
	p.closeFrame(ExitDispatch, iTotal, vTotal)
	p.pendingExit = ExitChain
	p.open(KeyDispatch, FrameDispatch, KeyDispatch, iTotal, vTotal)
	if p.armed {
		p.push(Event{Kind: EvEnter, TS: p.clock, Frag: FrameDispatch, VStart: KeyDispatch,
			Arg: entryChain, PE: -1})
	}
}

// EnterRecovery begins an activation of the recovery pseudo-frame: the
// current fragment's activation (if any) closes with an ExitRecover
// reason, and cycles retired until the next fragment entry are
// attributed to recovery, keeping the conservation invariant intact.
func (p *Profiler) EnterRecovery(iTotal, vTotal uint64) {
	if p == nil {
		return
	}
	entryChain := p.pendingChain
	p.pendingChain = -1
	p.closeFrame(ExitRecover, iTotal, vTotal)
	p.pendingExit = ExitChain
	p.open(KeyRecovery, FrameRecovery, KeyRecovery, iTotal, vTotal)
	if p.armed {
		p.push(Event{Kind: EvEnter, TS: p.clock, Frag: FrameRecovery, VStart: KeyRecovery,
			Arg: entryChain, PE: -1})
	}
}

// Preempt begins an activation of the preempt pseudo-frame: the current
// frame (fragment, dispatch, or recovery) closes with an ExitPreempt
// reason, and any cycles retired between the stop decision and Finish
// are attributed to preemption, keeping the conservation invariant
// intact. Finish closes the frame with ExitPreempt rather than
// ExitTrap, so a preempted run is distinguishable from a crashed one.
func (p *Profiler) Preempt(iTotal, vTotal uint64) {
	if p == nil {
		return
	}
	entryChain := p.pendingChain
	p.pendingChain = -1
	p.closeFrame(ExitPreempt, iTotal, vTotal)
	p.pendingExit = ExitChain
	p.open(KeyPreempt, FramePreempt, KeyPreempt, iTotal, vTotal)
	if p.armed {
		p.push(Event{Kind: EvEnter, TS: p.clock, Frag: FramePreempt, VStart: KeyPreempt,
			Arg: entryChain, PE: -1})
	}
}

// Resume closes a dangling preempt frame after a checkpoint restore, so
// a profiler that outlives the preemption (same-VM resume) re-opens
// cleanly at the next fragment entry. A no-op unless the preempt frame
// is the open frame.
func (p *Profiler) Resume(iTotal, vTotal uint64) {
	if p == nil {
		return
	}
	if p.cur != nil && p.cur.VStart == KeyPreempt {
		p.pendingChain = -1
		p.closeFrame(ExitPreempt, iTotal, vTotal)
		p.pendingExit = ExitChain
	}
}

// FragExit ends the current activation and returns control to the VM.
// When the open frame is the recovery pseudo-frame the call is a no-op:
// a recovery episode outlives the translated-code activation it cut
// short and closes only at the next frame entry (or Finish), so the
// exit-to-VM path that follows a mid-episode recovery leaves it open.
func (p *Profiler) FragExit(reason ExitKind, iTotal, vTotal uint64) {
	if p == nil {
		return
	}
	if p.cur != nil && p.cur.VStart == KeyRecovery {
		return
	}
	p.pendingChain = -1
	p.closeFrame(reason, iTotal, vTotal)
	p.pendingExit = ExitChain
}

// Chain records a chain-transition verdict on the current frame. For
// transitions that enter another frame the VM calls Chain first, then
// FragEnter / EnterDispatch; the kind is also attached to the next
// enter event as the edge label.
func (p *Profiler) Chain(kind ChainKind) {
	if p == nil {
		return
	}
	if p.cur != nil {
		p.cur.Chains[kind]++
	}
	p.pendingChain = int64(kind)
	if p.armed {
		frag := int32(-1)
		var vstart uint64
		if p.cur != nil {
			frag = p.cur.ID
			vstart = p.cur.VStart
		}
		p.push(Event{Kind: EvChain, TS: p.clock, Frag: frag, VStart: vstart,
			Arg: int64(kind), PE: -1})
	}
}

// Translate records a superblock translation (always ring-recorded;
// translations are rare).
func (p *Profiler) Translate(vstart uint64, srcInsts, outInsts int, cost int64) {
	if p == nil {
		return
	}
	_ = srcInsts
	_ = outInsts
	p.push(Event{Kind: EvTranslate, TS: p.clock, Frag: -1, VStart: vstart, Arg: cost, PE: -1})
}

// StoreHit records a superblock satisfied from the shared fragment
// store instead of being translated (always ring-recorded, like
// translations; shared marks a hit on an artifact some other session
// translated or that was loaded from disk).
func (p *Profiler) StoreHit(vstart uint64, shared bool) {
	if p == nil {
		return
	}
	var arg int64
	if shared {
		arg = 1
	}
	p.push(Event{Kind: EvStoreHit, TS: p.clock, Frag: -1, VStart: vstart, Arg: arg, PE: -1})
}

// Evict records a fragment eviction (cache flush).
func (p *Profiler) Evict(id int32, vstart uint64) {
	if p == nil {
		return
	}
	p.push(Event{Kind: EvEvict, TS: p.clock, Frag: id, VStart: vstart, PE: -1})
}

// Retire is the timing-model feed: one retired record on processing
// element pe with the given issue and retire cycles, tagged with the
// instruction's accumulator (strand), or 0xFF when it has none. The
// delta from the previously seen retire cycle is attributed to the
// active frame, so per-frame cycles always sum to total cycles.
func (p *Profiler) Retire(pe int, issue, retire int64, acc uint8) {
	if p == nil {
		return
	}
	_ = issue
	p.retires++
	delta := retire - p.clock
	if delta < 0 {
		delta = 0
	}
	p.clock = retire

	f := p.cur
	if f == nil {
		// Records outside any fragment: the interpreted stream of the
		// no-DBT baseline, charged to the VM pseudo-frame.
		f = p.frame(KeyVM, FrameVM, KeyVM)
		if f.Entries == 0 {
			f.Entries = 1
		}
	}
	f.Cycles += delta
	slot := accNone
	if acc < accNone {
		slot = int(acc)
	}
	f.AccCycles[slot] += delta
	for pe >= len(f.PEInsts) {
		f.PEInsts = append(f.PEInsts, 0)
	}
	f.PEInsts[pe]++
	for pe >= len(p.peSince) {
		p.peSince = append(p.peSince, 0)
	}
	p.peSince[pe]++
}

// Finish closes any dangling activation (a trap or budget exhaustion can
// end a run mid-fragment). Idempotent.
func (p *Profiler) Finish() {
	if p == nil || p.finished {
		return
	}
	p.finished = true
	if p.cur != nil {
		reason := ExitTrap
		if p.cur.VStart == KeyPreempt {
			reason = ExitPreempt
		}
		p.closeFrame(reason, p.iBase, p.vBase)
	}
}

// Clock returns the last retire cycle seen (-1 before any record).
func (p *Profiler) Clock() int64 {
	if p == nil {
		return -1
	}
	return p.clock
}

// Retires returns the number of records fed by the timing model.
func (p *Profiler) Retires() uint64 {
	if p == nil {
		return 0
	}
	return p.retires
}

// SpanQuantile returns the q-quantile of fragment activation spans in
// cycles (bucket-interpolated; see metrics.Histogram.Quantile).
func (p *Profiler) SpanQuantile(q float64) float64 {
	if p == nil {
		return 0
	}
	return p.spanHist.Quantile(q)
}

package prof

import (
	"fmt"
	"io"
	"sort"
)

// Profile is a point-in-time summary of the profiler's aggregation: the
// hot-fragment table plus the pseudo-frame totals.
type Profile struct {
	// Frags holds one entry per distinct fragment V-start, sorted by
	// cycles descending (I-instructions break ties, then V-start for
	// determinism).
	Frags []FragAgg

	// DispatchCycles / VMCycles are the pseudo-frame totals: cycles in
	// the shared dispatch routine and cycles retired outside translated
	// code.
	DispatchCycles int64
	VMCycles       int64

	// DispatchIInsts counts dispatch-routine instructions executed;
	// DispatchChains the table-lookup verdicts observed in dispatch.
	DispatchIInsts uint64
	DispatchChains [numChainKinds]uint64

	// RecoveryCycles / RecoveryEntries are the recovery pseudo-frame
	// totals: activations of (and cycles attributed to) fault-recovery
	// episodes. Zero unless fault injection or self-healing is active.
	RecoveryCycles  int64
	RecoveryEntries uint64

	// PreemptCycles / PreemptEntries are the preempt pseudo-frame
	// totals: one entry per deadline/stop/budget preemption. Zero on
	// undisturbed runs.
	PreemptCycles  int64
	PreemptEntries uint64

	// TotalCycles is the sum of every frame's cycles. With a timing
	// model attached it equals the model's reported total exactly.
	TotalCycles int64

	Activations uint64

	// SpanP50/P95/P99 summarise fragment activation spans in cycles.
	SpanP50, SpanP95, SpanP99 float64

	EventsRecorded, EventsDropped uint64
}

// Profile snapshots the aggregation (closing any dangling activation).
func (p *Profiler) Profile() *Profile {
	if p == nil {
		return &Profile{}
	}
	p.Finish()
	return p.snapshot()
}

// LiveProfile snapshots the aggregation mid-run, without finishing the
// profiler: the dangling activation (if any) stays open, so the run
// continues undisturbed and later snapshots keep accumulating. Cycles
// of the open activation are included up to the last retired record;
// its instruction deltas flush only when it closes, so a live snapshot
// slightly undercounts the active fragment. The snapshot is a deep
// copy and must be taken on the goroutine driving the profiler (the VM
// run loop — see vm.Config.Poll); the *Profile it returns is immutable
// and safe to hand to other goroutines.
func (p *Profiler) LiveProfile() *Profile {
	if p == nil {
		return &Profile{}
	}
	return p.snapshot()
}

// snapshot builds a Profile from the current frame aggregates.
func (p *Profiler) snapshot() *Profile {
	out := &Profile{}
	for key, f := range p.frames {
		switch key {
		case KeyDispatch:
			out.DispatchCycles = f.Cycles
			out.DispatchIInsts = f.IInsts
			out.DispatchChains = f.Chains
		case KeyVM:
			out.VMCycles = f.Cycles
		case KeyRecovery:
			out.RecoveryCycles = f.Cycles
			out.RecoveryEntries = f.Entries
		case KeyPreempt:
			out.PreemptCycles = f.Cycles
			out.PreemptEntries = f.Entries
		default:
			// Deep-copy the per-PE slice: the aggregate keeps growing after
			// a live snapshot, and the snapshot must never alias memory the
			// run loop still writes.
			cp := *f
			cp.PEInsts = append([]uint64(nil), f.PEInsts...)
			out.Frags = append(out.Frags, cp)
		}
		out.TotalCycles += f.Cycles
	}
	sort.Slice(out.Frags, func(i, j int) bool {
		a, b := &out.Frags[i], &out.Frags[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.IInsts != b.IInsts {
			return a.IInsts > b.IInsts
		}
		return a.VStart < b.VStart
	})
	out.Activations = p.activations
	out.SpanP50 = p.SpanQuantile(0.50)
	out.SpanP95 = p.SpanQuantile(0.95)
	out.SpanP99 = p.SpanQuantile(0.99)
	out.EventsRecorded = p.EventsRecorded()
	out.EventsDropped = p.EventsDropped()
	return out
}

// CheckConservation verifies that the per-frame cycle totals sum to the
// timing model's total cycle count, and that the hot table is sorted.
func (pr *Profile) CheckConservation(totalCycles int64) error {
	if pr.TotalCycles != totalCycles {
		return fmt.Errorf("prof: frame cycles sum to %d, timing model reports %d",
			pr.TotalCycles, totalCycles)
	}
	for i := 1; i < len(pr.Frags); i++ {
		if pr.Frags[i].Cycles > pr.Frags[i-1].Cycles {
			return fmt.Errorf("prof: hot table not sorted at row %d (%d > %d)",
				i, pr.Frags[i].Cycles, pr.Frags[i-1].Cycles)
		}
	}
	return nil
}

// WriteHotTable renders the top-N fragment rows as an aligned text
// table, followed by the pseudo-frame and span-quantile summary.
func (pr *Profile) WriteHotTable(w io.Writer, topN int) error {
	if topN <= 0 || topN > len(pr.Frags) {
		topN = len(pr.Frags)
	}
	total := pr.TotalCycles
	if total == 0 {
		total = 1
	}
	if _, err := fmt.Fprintf(w, "%5s  %-12s %9s %12s %6s %12s %7s %7s  %-22s\n",
		"frag", "vstart", "entries", "cycles", "cyc%", "I-insts", "strand", "maxlen",
		"exits (chain/disp/vm/trap)"); err != nil {
		return err
	}
	for _, f := range pr.Frags[:topN] {
		_, err := fmt.Fprintf(w, "%5d  %-12s %9d %12d %5.1f%% %12d %7d %7d  %d/%d/%d/%d\n",
			f.ID, fmt.Sprintf("%#x", f.VStart), f.Entries, f.Cycles,
			100*float64(f.Cycles)/float64(total), f.IInsts,
			f.Info.Strands, f.Info.MaxStrand,
			f.Exits[ExitChain], f.Exits[ExitDispatch], f.Exits[ExitVM], f.Exits[ExitTrap])
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"\nframes: %d fragments + dispatch (%d cycles, %d insts) + vm (%d cycles)\n"+
			"cycles: %d total across frames; %d activations\n"+
			"span quantiles (cycles/activation): p50 %.0f, p95 %.0f, p99 %.0f\n"+
			"trace events: %d recorded, %d overwritten by the ring\n",
		len(pr.Frags), pr.DispatchCycles, pr.DispatchIInsts, pr.VMCycles,
		pr.TotalCycles, pr.Activations,
		pr.SpanP50, pr.SpanP95, pr.SpanP99,
		pr.EventsRecorded, pr.EventsDropped)
	if err == nil && pr.RecoveryEntries > 0 {
		_, err = fmt.Fprintf(w, "recovery: %d episodes (%d cycles attributed)\n",
			pr.RecoveryEntries, pr.RecoveryCycles)
	}
	if err == nil && pr.PreemptEntries > 0 {
		_, err = fmt.Fprintf(w, "preempt: %d boundaries (%d cycles attributed)\n",
			pr.PreemptEntries, pr.PreemptCycles)
	}
	return err
}

// ChainTotals sums the chain-verdict counters over all frames,
// including the dispatch pseudo-frame.
func (pr *Profile) ChainTotals() [numChainKinds]uint64 {
	out := pr.DispatchChains
	for i := range pr.Frags {
		for k, n := range pr.Frags[i].Chains {
			out[k] += n
		}
	}
	return out
}

// WriteChainSummary renders the chain-kind totals one per line.
func (pr *Profile) WriteChainSummary(w io.Writer) error {
	totals := pr.ChainTotals()
	for k, n := range totals {
		if n == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-14s %12d\n", ChainKind(k), n); err != nil {
			return err
		}
	}
	return nil
}

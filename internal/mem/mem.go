// Package mem provides the sparse, little-endian, 64-bit byte-addressable
// memory used by both the Alpha interpreter and the translated-code
// executor. Pages are allocated lazily. In Strict mode, accesses to
// unmapped pages raise an AccessFault, which the VM turns into a precise
// trap; in relaxed mode pages are materialised on demand (convenient for
// tests).
package mem

import "fmt"

// Page geometry.
const (
	PageBits = 12
	PageSize = 1 << PageBits
	pageMask = PageSize - 1
)

// AccessFault reports an access to unmapped memory (Strict mode only).
type AccessFault struct {
	Addr  uint64
	Write bool
}

func (f *AccessFault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("memory access fault: %s of unmapped address %#x", kind, f.Addr)
}

// ResourceFault reports an allocation that would exceed the memory's
// page Limit: a governed guest tried to grow its resident set past its
// cap. The VM turns it into a precise trap at the faulting V-PC, so a
// memory-bombing guest dies with a typed error at a replayable point
// instead of taking the host process down.
type ResourceFault struct {
	Addr  uint64
	Write bool
	Pages int // pages resident when the allocation was refused
	Limit int // the cap that was hit
}

func (f *ResourceFault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("memory resource fault: %s at %#x would exceed page limit (%d/%d pages)",
		kind, f.Addr, f.Pages, f.Limit)
}

// AlignmentFault reports a misaligned access.
type AlignmentFault struct {
	Addr uint64
	Size int
}

func (f *AlignmentFault) Error() string {
	return fmt.Sprintf("alignment fault: %d-byte access at %#x", f.Size, f.Addr)
}

// Memory is a sparse paged memory. The zero value is a usable relaxed-mode
// memory.
type Memory struct {
	pages map[uint64]*[PageSize]byte
	// Strict, when true, makes access to unmapped pages fault rather than
	// allocate.
	Strict bool
	// Limit, when positive, caps the number of resident pages: an access
	// that would allocate page Limit+1 raises a ResourceFault instead.
	// Zero means ungoverned. LoadSnapshot is exempt — restoring a
	// checkpoint reinstates exactly the pages it recorded.
	Limit int
}

// New returns an empty relaxed-mode memory.
func New() *Memory { return &Memory{pages: map[uint64]*[PageSize]byte{}} }

func (m *Memory) page(addr uint64, write bool, allocate bool) (*[PageSize]byte, error) {
	if m.pages == nil {
		m.pages = map[uint64]*[PageSize]byte{}
	}
	pn := addr >> PageBits
	p, ok := m.pages[pn]
	if !ok {
		if m.Strict && !allocate {
			return nil, &AccessFault{Addr: addr, Write: write}
		}
		if m.Limit > 0 && len(m.pages) >= m.Limit {
			return nil, &ResourceFault{Addr: addr, Write: write, Pages: len(m.pages), Limit: m.Limit}
		}
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p, nil
}

// Map ensures [addr, addr+size) is mapped (zero-filled), regardless of
// Strict mode. It fails with a ResourceFault when mapping would exceed
// the page Limit; pages mapped before the fault stay mapped.
func (m *Memory) Map(addr, size uint64) error {
	if size == 0 {
		return nil
	}
	for pn := addr >> PageBits; pn <= (addr+size-1)>>PageBits; pn++ {
		if _, err := m.page(pn<<PageBits, true, true); err != nil {
			return err
		}
	}
	return nil
}

// Mapped reports whether addr falls on a mapped page.
func (m *Memory) Mapped(addr uint64) bool {
	_, ok := m.pages[addr>>PageBits]
	return ok
}

// PageCount returns the number of mapped pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// Equal reports whether two memories hold identical contents. A page
// mapped in one memory but not the other compares equal when it is
// all-zero (lazy allocation means the set of mapped pages depends on
// the access pattern, not just on the stored data), and returns the
// first differing address otherwise.
func Equal(a, b *Memory) (bool, uint64) {
	zero := [PageSize]byte{}
	pageEq := func(pa, pb *[PageSize]byte) (bool, uint64) {
		if pa == nil {
			pa = &zero
		}
		if pb == nil {
			pb = &zero
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return false, uint64(i)
			}
		}
		return true, 0
	}
	for pn, pa := range a.pages {
		if ok, off := pageEq(pa, b.pages[pn]); !ok {
			return false, pn<<PageBits + off
		}
	}
	for pn, pb := range b.pages {
		if _, seen := a.pages[pn]; seen {
			continue
		}
		if ok, off := pageEq(nil, pb); !ok {
			return false, pn<<PageBits + off
		}
	}
	return true, 0
}

// Snapshot returns a deep copy of every mapped page, keyed by page
// number. Together with Strict it is the memory's complete state:
// LoadSnapshot on a fresh Memory reproduces the contents bit for bit.
func (m *Memory) Snapshot() map[uint64][PageSize]byte {
	out := make(map[uint64][PageSize]byte, len(m.pages))
	for pn, p := range m.pages {
		out[pn] = *p
	}
	return out
}

// LoadSnapshot replaces the memory's contents with the snapshot: every
// page in the snapshot becomes mapped with the given bytes, and every
// previously mapped page not in the snapshot is unmapped. The snapshot
// is copied, so later writes to the memory do not alias it.
func (m *Memory) LoadSnapshot(pages map[uint64][PageSize]byte) {
	m.pages = make(map[uint64]*[PageSize]byte, len(pages))
	for pn, data := range pages {
		p := data
		m.pages[pn] = &p
	}
}

// Read8s copies n bytes starting at addr into a fresh slice.
func (m *Memory) Read8s(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := m.Read8(addr + uint64(i))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// Write8s stores b at addr.
func (m *Memory) Write8s(addr uint64, b []byte) error {
	for i, v := range b {
		if err := m.Write8(addr+uint64(i), v); err != nil {
			return err
		}
	}
	return nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint64) (byte, error) {
	p, err := m.page(addr, false, false)
	if err != nil {
		return 0, err
	}
	return p[addr&pageMask], nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v byte) error {
	p, err := m.page(addr, true, false)
	if err != nil {
		return err
	}
	p[addr&pageMask] = v
	return nil
}

// read reads a naturally-aligned little-endian value of the given size.
func (m *Memory) read(addr uint64, size int) (uint64, error) {
	if addr&uint64(size-1) != 0 {
		return 0, &AlignmentFault{Addr: addr, Size: size}
	}
	p, err := m.page(addr, false, false)
	if err != nil {
		return 0, err
	}
	off := addr & pageMask
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(p[off+uint64(i)])
	}
	return v, nil
}

// write stores a naturally-aligned little-endian value of the given size.
func (m *Memory) write(addr uint64, size int, v uint64) error {
	if addr&uint64(size-1) != 0 {
		return &AlignmentFault{Addr: addr, Size: size}
	}
	p, err := m.page(addr, true, false)
	if err != nil {
		return err
	}
	off := addr & pageMask
	for i := 0; i < size; i++ {
		p[off+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

// Read16 loads an aligned little-endian 16-bit value.
func (m *Memory) Read16(addr uint64) (uint16, error) {
	v, err := m.read(addr, 2)
	return uint16(v), err
}

// Read32 loads an aligned little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) (uint32, error) {
	v, err := m.read(addr, 4)
	return uint32(v), err
}

// Read64 loads an aligned little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	return m.read(addr, 8)
}

// Write16 stores an aligned little-endian 16-bit value.
func (m *Memory) Write16(addr uint64, v uint16) error { return m.write(addr, 2, uint64(v)) }

// Write32 stores an aligned little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) error { return m.write(addr, 4, uint64(v)) }

// Write64 stores an aligned little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) error { return m.write(addr, 8, v) }

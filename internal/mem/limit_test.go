package mem

import (
	"errors"
	"testing"
)

// TestLimitGovernsAllocation checks that a governed memory refuses the
// allocation that would exceed its page limit, with a typed
// ResourceFault, while accesses to already-resident pages keep working.
func TestLimitGovernsAllocation(t *testing.T) {
	m := New()
	m.Limit = 2
	if err := m.Write8(0*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write8(1*PageSize, 2); err != nil {
		t.Fatal(err)
	}
	err := m.Write8(2*PageSize, 3)
	var rf *ResourceFault
	if !errors.As(err, &rf) {
		t.Fatalf("third page allocation: got %v, want *ResourceFault", err)
	}
	if rf.Addr != 2*PageSize || !rf.Write || rf.Pages != 2 || rf.Limit != 2 {
		t.Fatalf("fault fields = %+v", rf)
	}
	// Resident pages stay usable after the fault.
	if v, err := m.Read8(0); err != nil || v != 1 {
		t.Fatalf("resident page read = %d, %v", v, err)
	}
	if _, err := m.Read8(3 * PageSize); !errors.As(err, &rf) {
		t.Fatalf("read past limit: got %v, want *ResourceFault", err)
	}
	if !rf.Write {
		// reads report Write=false
	} else {
		t.Fatalf("read fault reported Write=true")
	}
	if m.PageCount() != 2 {
		t.Fatalf("PageCount = %d, want 2", m.PageCount())
	}
}

// TestMapRespectsLimit checks Map's error return and its partial-map
// semantics: pages mapped before the fault stay mapped.
func TestMapRespectsLimit(t *testing.T) {
	m := New()
	m.Limit = 3
	if err := m.Map(0, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	err := m.Map(0x100000, 2*PageSize)
	var rf *ResourceFault
	if !errors.As(err, &rf) {
		t.Fatalf("over-limit map: got %v, want *ResourceFault", err)
	}
	if m.PageCount() != 3 {
		t.Fatalf("PageCount after partial map = %d, want 3", m.PageCount())
	}
	if !m.Mapped(0x100000) {
		t.Fatal("first page of failed map should be mapped")
	}
}

// TestLoadSnapshotExemptFromLimit checks that checkpoint restore is not
// governed: a snapshot with more pages than the limit still loads (the
// limit then applies to further growth).
func TestLoadSnapshotExemptFromLimit(t *testing.T) {
	src := New()
	if err := src.Map(0, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	dst := New()
	dst.Limit = 2
	dst.LoadSnapshot(src.Snapshot())
	if dst.PageCount() != 4 {
		t.Fatalf("PageCount after restore = %d, want 4", dst.PageCount())
	}
	var rf *ResourceFault
	if err := dst.Write8(0x900000, 1); !errors.As(err, &rf) {
		t.Fatalf("growth after over-limit restore: got %v, want *ResourceFault", err)
	}
}

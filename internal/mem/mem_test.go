package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	if err := m.Write64(0x1000, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v64, err := m.Read64(0x1000)
	if err != nil || v64 != 0x1122334455667788 {
		t.Errorf("Read64 = %#x, %v", v64, err)
	}
	v32, err := m.Read32(0x1000)
	if err != nil || v32 != 0x55667788 {
		t.Errorf("Read32 low = %#x, %v", v32, err)
	}
	v32, err = m.Read32(0x1004)
	if err != nil || v32 != 0x11223344 {
		t.Errorf("Read32 high = %#x, %v", v32, err)
	}
	v16, err := m.Read16(0x1000)
	if err != nil || v16 != 0x7788 {
		t.Errorf("Read16 = %#x, %v", v16, err)
	}
	b, err := m.Read8(0x1007)
	if err != nil || b != 0x11 {
		t.Errorf("Read8 = %#x, %v", b, err)
	}
}

func TestAlignmentFaults(t *testing.T) {
	m := New()
	if _, err := m.Read64(0x1001); err == nil {
		t.Error("unaligned Read64 did not fault")
	} else {
		var af *AlignmentFault
		if !errors.As(err, &af) || af.Addr != 0x1001 || af.Size != 8 {
			t.Errorf("wrong fault %v", err)
		}
	}
	if err := m.Write32(0x1002, 0); err == nil {
		t.Error("unaligned Write32 did not fault")
	}
	if err := m.Write16(0x1001, 0); err == nil {
		t.Error("unaligned Write16 did not fault")
	}
	// Byte accesses never alignment-fault.
	if _, err := m.Read8(0x1003); err != nil {
		t.Errorf("byte read faulted: %v", err)
	}
}

func TestStrictMode(t *testing.T) {
	m := New()
	m.Strict = true
	if _, err := m.Read64(0x5000); err == nil {
		t.Fatal("strict read of unmapped page did not fault")
	} else {
		var af *AccessFault
		if !errors.As(err, &af) || af.Write {
			t.Errorf("wrong fault %v", err)
		}
	}
	if err := m.Write64(0x5000, 1); err == nil {
		t.Fatal("strict write of unmapped page did not fault")
	} else {
		var af *AccessFault
		if !errors.As(err, &af) || !af.Write {
			t.Errorf("wrong fault %v", err)
		}
	}
	m.Map(0x5000, 16)
	if err := m.Write64(0x5000, 42); err != nil {
		t.Fatalf("write after Map: %v", err)
	}
	v, err := m.Read64(0x5000)
	if err != nil || v != 42 {
		t.Errorf("read after Map = %d, %v", v, err)
	}
	if !m.Mapped(0x5000) || m.Mapped(0x100000) {
		t.Error("Mapped() wrong")
	}
}

func TestMapSpansPages(t *testing.T) {
	m := New()
	m.Strict = true
	m.Map(PageSize-8, 16) // spans two pages
	if err := m.Write64(PageSize-8, 1); err != nil {
		t.Errorf("first page: %v", err)
	}
	if err := m.Write64(PageSize, 2); err != nil {
		t.Errorf("second page: %v", err)
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
	m.Map(0x9000, 0) // zero-size map is a no-op
	if m.PageCount() != 2 {
		t.Errorf("PageCount after empty Map = %d, want 2", m.PageCount())
	}
}

func TestCrossPageBytes(t *testing.T) {
	m := New()
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	addr := uint64(PageSize - 4)
	if err := m.Write8s(addr, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read8s(addr, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("cross-page bytes: got % x want % x", got, data)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if err := m.Write8(0x10, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := m.Read8(0x10)
	if err != nil || b != 0xAB {
		t.Errorf("zero-value memory: %#x, %v", b, err)
	}
}

// Property: Write64 then Read64 round-trips at any aligned address.
func TestRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64) bool {
		addr &^= 7
		if err := m.Write64(addr, v); err != nil {
			return false
		}
		got, err := m.Read64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: byte decomposition agrees with Write64 (little-endian).
func TestEndiannessProperty(t *testing.T) {
	m := New()
	f := func(v uint64) bool {
		if err := m.Write64(0x4000, v); err != nil {
			return false
		}
		for i := uint64(0); i < 8; i++ {
			b, err := m.Read8(0x4000 + i)
			if err != nil || b != byte(v>>(8*i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotRoundTrip proves Snapshot/LoadSnapshot carry the complete
// memory state: every mapped page (including all-zero ones, whose
// mapped-ness is architected in Strict mode) survives the round trip,
// and the snapshot is a deep copy — mutating the source afterwards must
// not leak into a memory restored from it.
func TestSnapshotRoundTrip(t *testing.T) {
	src := New()
	src.Strict = true
	src.Map(0x1000, 64) // mapped but all-zero
	src.Map(0x4000, PageSize)
	src.Map(2*PageSize, PageSize)
	if err := src.Write64(0x4008, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatal(err)
	}
	if err := src.Write8(3*PageSize-1, 0x7F); err != nil { // last byte of a page
		t.Fatal(err)
	}
	snap := src.Snapshot()

	dst := New()
	dst.Strict = true
	dst.LoadSnapshot(snap)
	if ok, addr := Equal(src, dst); !ok {
		t.Fatalf("restored memory differs at %#x", addr)
	}
	if !dst.Mapped(0x1000) {
		t.Error("all-zero mapped page lost by the round trip")
	}
	if _, err := dst.Read8(0x100000); !errors.As(err, new(*AccessFault)) {
		t.Errorf("unmapped read after restore: err = %v, want *AccessFault", err)
	}

	// Deep-copy both directions: writes to the source after Snapshot and
	// to the destination after LoadSnapshot must not alias.
	if err := src.Write64(0x4008, 1); err != nil {
		t.Fatal(err)
	}
	v, err := dst.Read64(0x4008)
	if err != nil || v != 0xDEADBEEFCAFEF00D {
		t.Errorf("snapshot aliases source pages: read %#x, %v", v, err)
	}
	if err := dst.Write8(0x1000, 9); err != nil {
		t.Fatal(err)
	}
	if b, _ := src.Read8(0x1000); b != 0 {
		t.Error("LoadSnapshot aliases the snapshot map's pages")
	}
}

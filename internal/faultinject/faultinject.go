// Package faultinject is a deterministic, seed-driven fault injector for
// chaos-testing the co-designed VM's recovery machinery. It decides — at
// well-defined decision points the VM consults it from — whether to
// corrupt an installed fragment, fail or poison a translation, force a
// mid-run cache flush, raise a spurious trap at a fragment entry, or
// shrink the code cache so capacity pressure evicts under execution.
//
// The injector only *decides and corrupts*; the VM applies the fault and
// performs the recovery (see vm.Config.Faults). Every decision comes from
// a splitmix64 stream seeded by Config.Seed, so a fault schedule is a
// pure function of the seed: replaying a seed replays the exact same
// faults at the exact same decision points, which is what lets the
// differential chaos oracle (internal/experiments) demand bit-identical
// architected state against a pure-interpreter run.
package faultinject

import (
	"fmt"
	"strings"

	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/translate"
)

// Kind is one fault class.
type Kind uint8

const (
	// KindNone is the no-fault decision.
	KindNone Kind = iota
	// KindBitFlip corrupts a random field of a random installed fragment
	// (instruction stream or PEI table). Recovery: the paranoid entry
	// re-check detects the tampering, invalidates the fragment, and falls
	// back to interpretation.
	KindBitFlip
	// KindFailTranslate makes the next translation fail with an injected
	// error. Recovery: retranslate-with-backoff, then quarantine.
	KindFailTranslate
	// KindPoisonTranslate corrupts the next translation result before it
	// is installed. Recovery: the install-time verifier rejects it and
	// the VM treats it as a failed translation.
	KindPoisonTranslate
	// KindEvict flushes the whole translation cache at a fragment entry —
	// including entries reached from *inside* translated code, so stale
	// fragment links are exercised. Recovery: dispatch/lookup misses
	// retranslate; stale links exit to the VM.
	KindEvict
	// KindSpuriousTrap raises a spurious (non-architectural) trap at a
	// fragment entry. Recovery: the entry is abandoned and the VM
	// interprets from the same V-PC; no state is lost.
	KindSpuriousTrap
	// KindShrinkCache halves the code-cache capacity (floored at 4 KiB),
	// so subsequent installs flush under pressure.
	KindShrinkCache

	numKinds
)

// NumKinds is the number of injectable fault kinds (excluding KindNone).
const NumKinds = int(numKinds) - 1

var kindNames = [numKinds]string{
	"none", "bitflip", "fail_translate", "poison_translate",
	"evict", "spurious_trap", "shrink_cache",
}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName parses a kind name as printed by String.
func KindByName(name string) (Kind, error) {
	for k := Kind(1); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, nil
		}
	}
	return KindNone, fmt.Errorf("faultinject: unknown fault kind %q", name)
}

// AllKinds returns every injectable kind.
func AllKinds() []Kind {
	out := make([]Kind, 0, NumKinds)
	for k := Kind(1); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// entryKinds and translateKinds partition the kinds by the decision point
// they can fire at.
var entryKinds = []Kind{KindBitFlip, KindEvict, KindSpuriousTrap, KindShrinkCache}
var translateKinds = []Kind{KindFailTranslate, KindPoisonTranslate}

// Counts is the number of faults applied, by kind.
type Counts [numKinds]uint64

// Total returns the total applied faults.
func (c Counts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// String renders the non-zero counts, e.g. "bitflip=3 evict=1".
func (c Counts) String() string {
	var parts []string
	for k := Kind(1); k < numKinds; k++ {
		if c[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, c[k]))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// ErrInjected is the cause attached to injected translation failures, so
// recovery accounting can tell injected faults from genuine ones.
type ErrInjected struct {
	Kind Kind
	Seq  uint64 // fault sequence number within the schedule
}

func (e *ErrInjected) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault #%d", e.Kind, e.Seq)
}

// Config parameterises a fault schedule.
type Config struct {
	// Seed selects the schedule; equal seeds produce equal schedules.
	Seed uint64
	// EntryRate is the mean fragment entries between entry-point faults
	// (bitflip/evict/spurious/shrink). Default 64.
	EntryRate int
	// TranslateRate is the mean translations between translation faults
	// (fail/poison). Default 8 — translations are much rarer than entries.
	TranslateRate int
	// Kinds restricts the schedule to the listed kinds (nil = all).
	Kinds []Kind
	// MaxFaults caps the number of faults applied (0 = unlimited).
	MaxFaults int
}

// Injector is one deterministic fault schedule. It is not safe for
// concurrent use; a nil *Injector is a valid "injection disabled"
// injector (every decision returns KindNone).
type Injector struct {
	cfg     Config
	rng     uint64
	enabled [numKinds]bool

	decisions uint64
	applied   Counts
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	if cfg.EntryRate <= 0 {
		cfg.EntryRate = 64
	}
	if cfg.TranslateRate <= 0 {
		cfg.TranslateRate = 8
	}
	in := &Injector{cfg: cfg, rng: cfg.Seed}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	for _, k := range kinds {
		if k > KindNone && k < numKinds {
			in.enabled[k] = true
		}
	}
	return in
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.rng += 0x9E3779B97F4A7C15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// decide draws one decision: fire with probability 1/rate, choosing
// uniformly among the enabled members of pool.
func (in *Injector) decide(rate int, pool []Kind) Kind {
	if in == nil {
		return KindNone
	}
	in.decisions++
	if in.cfg.MaxFaults > 0 && in.applied.Total() >= uint64(in.cfg.MaxFaults) {
		return KindNone
	}
	draw := in.next()
	if draw%uint64(rate) != 0 {
		return KindNone
	}
	var candidates []Kind
	for _, k := range pool {
		if in.enabled[k] {
			candidates = append(candidates, k)
		}
	}
	if len(candidates) == 0 {
		return KindNone
	}
	return candidates[in.next()%uint64(len(candidates))]
}

// EntryFault is consulted at every fragment entry (top-level and chained)
// and returns the fault to apply there, or KindNone.
func (in *Injector) EntryFault() Kind { return in.decide(in.entryRate(), entryKinds) }

// TranslateFault is consulted once per superblock translation and returns
// the fault to apply to it, or KindNone.
func (in *Injector) TranslateFault() Kind { return in.decide(in.translateRate(), translateKinds) }

func (in *Injector) entryRate() int {
	if in == nil {
		return 1
	}
	return in.cfg.EntryRate
}

func (in *Injector) translateRate() int {
	if in == nil {
		return 1
	}
	return in.cfg.TranslateRate
}

// Applied records that the VM actually applied a fault of the given kind
// (a decision whose application found no viable site is not counted) and
// returns the injected-fault sequence number.
func (in *Injector) Applied(k Kind) uint64 {
	if in == nil || k == KindNone || k >= numKinds {
		return 0
	}
	in.applied[k]++
	return in.applied.Total()
}

// Counts returns the faults applied so far, by kind.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.applied
}

// Decisions returns the number of decision points consulted.
func (in *Injector) Decisions() uint64 {
	if in == nil {
		return 0
	}
	return in.decisions
}

// PickFragment chooses the corruption target among n installed fragments
// (-1 when the cache is empty).
func (in *Injector) PickFragment(n int) int {
	if in == nil || n <= 0 {
		return -1
	}
	return int(in.next() % uint64(n))
}

// CorruptFragment flips one field of the fragment — a single-bit
// perturbation of a random instruction field or PEI-table entry — and
// returns whether a change was made. The change is always detectable by
// the VM's paranoid entry re-check (any byte of the installed image
// differs from the install-time pristine copy), which is what makes the
// fault recoverable before the corrupted code can execute.
func (in *Injector) CorruptFragment(f *tcache.Fragment) bool {
	if in == nil || f == nil || len(f.Insts) == 0 {
		return false
	}
	sites := len(f.Insts) + len(f.PEI)
	site := int(in.next() % uint64(sites))
	if site >= len(f.Insts) {
		f.PEI[site-len(f.Insts)] ^= 1 << (in.next() % 48)
		return true
	}
	inst := &f.Insts[site]
	switch in.next() % 6 {
	case 0:
		inst.VAddr ^= 1 << (in.next() % 48)
	case 1:
		inst.Disp ^= 1 << (in.next() % 16)
	case 2:
		inst.Dest ^= 1 << (in.next() % 5)
	case 3:
		inst.Op ^= 1 << (in.next() % 6)
	case 4:
		inst.VPC ^= 1 << (in.next() % 48)
	default:
		inst.Acc ^= 1 << (in.next() % 3)
	}
	return true
}

// CorruptResult perturbs a translation result before installation the
// same way CorruptFragment perturbs an installed fragment, plus a
// size-accounting corruption so even metadata-only damage is provable by
// the install-time verifier.
func (in *Injector) CorruptResult(res *translate.Result) bool {
	if in == nil || res == nil || len(res.Insts) == 0 {
		return false
	}
	if res.Straightened {
		// Straightened fragments carry no I-ISA invariants for the
		// verifier to reject; poison is not applicable.
		return false
	}
	switch in.next() % 3 {
	case 0:
		// Corrupt the recorded code size: rule E5 (size-class) fires.
		res.CodeBytes += 2
	case 1:
		// Truncate the PEI table: rule P1 fires.
		if len(res.PEI) == 0 {
			res.CodeBytes += 2
			break
		}
		res.PEI = res.PEI[:len(res.PEI)-1]
		if len(res.PEIRecover) > 0 {
			res.PEIRecover = res.PEIRecover[:len(res.PEIRecover)-1]
		}
	default:
		// Break the set-VPC prologue: rule C1 fires.
		if len(res.Insts) == 0 {
			res.CodeBytes += 2
			break
		}
		res.Insts[0].VAddr += 4
	}
	return true
}

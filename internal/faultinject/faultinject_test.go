package faultinject

import (
	"testing"

	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/translate"
)

// drawSchedule replays n entry and translate decisions and returns them.
func drawSchedule(cfg Config, n int) []Kind {
	in := New(cfg)
	out := make([]Kind, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, in.EntryFault(), in.TranslateFault())
	}
	return out
}

func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{Seed: 12345, EntryRate: 4, TranslateRate: 2}
	a := drawSchedule(cfg, 500)
	b := drawSchedule(cfg, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between replays: %v vs %v", i, a[i], b[i])
		}
	}
	c := drawSchedule(Config{Seed: 54321, EntryRate: 4, TranslateRate: 2}, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestKindFiltering(t *testing.T) {
	in := New(Config{Seed: 7, EntryRate: 2, TranslateRate: 2,
		Kinds: []Kind{KindBitFlip}})
	for i := 0; i < 2000; i++ {
		if k := in.EntryFault(); k != KindNone && k != KindBitFlip {
			t.Fatalf("entry decision %d produced filtered-out kind %v", i, k)
		}
		if k := in.TranslateFault(); k != KindNone {
			t.Fatalf("translate decision %d fired %v with no translate kinds enabled", i, k)
		}
	}
}

func TestMaxFaultsCap(t *testing.T) {
	in := New(Config{Seed: 9, EntryRate: 2, MaxFaults: 5})
	fired := 0
	for i := 0; i < 5000; i++ {
		if k := in.EntryFault(); k != KindNone {
			in.Applied(k)
			fired++
		}
	}
	if fired != 5 {
		t.Errorf("applied %d faults, cap is 5", fired)
	}
	if got := in.Counts().Total(); got != 5 {
		t.Errorf("Counts().Total() = %d, want 5", got)
	}
}

func TestKindNameRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := KindByName(k.String())
		if err != nil {
			t.Errorf("KindByName(%q): %v", k, err)
		}
		if got != k {
			t.Errorf("KindByName(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := KindByName("meteor_strike"); err == nil {
		t.Error("KindByName accepted an unknown name")
	}
	if _, err := KindByName("none"); err == nil {
		t.Error("KindByName accepted the non-injectable \"none\"")
	}
}

func TestCorruptFragmentAlwaysChanges(t *testing.T) {
	in := New(Config{Seed: 3})
	for trial := 0; trial < 200; trial++ {
		f := &tcache.Fragment{
			Insts: []ildp.Inst{
				{Kind: ildp.KindSetVPC, VAddr: 0x1000},
				{Kind: ildp.KindALU, VAddr: 0x1004, Disp: 8, VPC: 0x1004},
				{Kind: ildp.KindBranch, VAddr: 0x1008, VPC: 0x1008},
			},
			PEI: []uint64{0x1004},
		}
		before := append([]ildp.Inst(nil), f.Insts...)
		beforePEI := append([]uint64(nil), f.PEI...)
		if !in.CorruptFragment(f) {
			t.Fatalf("trial %d: CorruptFragment declined a corruptible fragment", trial)
		}
		changed := len(f.PEI) != len(beforePEI)
		for i := range beforePEI {
			if f.PEI[i] != beforePEI[i] {
				changed = true
			}
		}
		for i := range before {
			if f.Insts[i] != before[i] {
				changed = true
			}
		}
		if !changed {
			t.Fatalf("trial %d: CorruptFragment reported a change but nothing differs", trial)
		}
	}
}

func TestCorruptResultSkipsStraightened(t *testing.T) {
	in := New(Config{Seed: 3})
	res := &translate.Result{Straightened: true,
		Insts: []ildp.Inst{{Kind: ildp.KindALU}}}
	if in.CorruptResult(res) {
		t.Error("CorruptResult poisoned a straightened fragment the verifier cannot reject")
	}
}

package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// KillResumeSpec describes one kill-and-resume differential run: the
// workload executes once on a pure Alpha interpreter (the oracle), then
// on the DBT VM with seed-chosen preemption points. At each point the VM
// is stopped through the Stop hook, checkpointed, the checkpoint is
// encoded/decoded (with determinism and canonical-identity checks), and
// execution resumes in a completely fresh VM — cold translation cache,
// empty trace counters, zeroed RAS and accumulators. The run passes only
// if the final architected state is bit-identical to the oracle's and
// the cumulative Stats reconcile across segments.
type KillResumeSpec struct {
	Workload *workload.Spec
	Machine  Machine

	// Seed drives the kill schedule: the number of kills (1..Kills) and
	// the retired-V-instruction counts at which they fire.
	Seed uint64

	// Kills bounds the kills per run (0 or 1 = exactly one).
	Kills int

	// MaxV is a safety budget per segment (0 = run to completion).
	MaxV int64

	// Timing attaches a fresh timing model and profiler to every
	// segment and checks cycle conservation — including the preempt
	// pseudo-frame — segment by segment.
	Timing  bool
	Metrics *metrics.Registry

	// Store, when non-nil, attaches a shared fragment store to every
	// segment's VM. Each resumed segment boots with a cold private
	// translation cache but a warm store, so superblocks the schedule
	// re-encounters translate once per run instead of once per segment.
	// The final architected state must stay bit-identical to the
	// store-less run — the store changes where artifacts live, never
	// what they compute.
	Store *fragstore.Store

	// Tune and Attach are the observability hooks shared with RunSpec,
	// invoked for every segment: Tune receives the segment's final VM
	// configuration before construction, Attach the booted (or
	// restored) VM before it runs. Neither may change translation
	// semantics.
	Tune   func(*vm.Config)
	Attach func(*vm.VM)
}

// KillResumeOutcome is the result of one kill-and-resume run.
type KillResumeOutcome struct {
	Spec KillResumeSpec

	Kills       int      // preemptions actually taken
	Segments    int      // VM instances run (Kills+1 unless the run halted early)
	KillTargets []uint64 // retired-V-instruction counts the schedule aimed at
	CkptBytes   int      // size of the last checkpoint encoding

	// VM is the final cumulative Stats, carried across segments through
	// the checkpoint counters.
	VM vm.Stats

	// Mismatch is empty when the resumed run's final architected state
	// is bit-identical to the oracle's and the accounting reconciles;
	// otherwise it names the first divergence found.
	Mismatch string
}

// splitmix64 advances *state and returns the next value of the sequence
// — the same tiny deterministic generator the fault injector uses, kept
// local so kill schedules never shift when other packages change.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RunKillResume executes one kill-and-resume differential run. A
// non-nil error means the run could not be compared (assembly failure,
// an unexpected VM error, a non-deterministic or non-idempotent
// checkpoint encoding, or a broken cycle-conservation invariant); a
// final-state divergence is not an error — it is reported in
// Outcome.Mismatch.
func RunKillResume(spec KillResumeSpec) (*KillResumeOutcome, error) {
	prog, err := spec.Workload.Program()
	if err != nil {
		return nil, err
	}

	// The oracle: the same program, purely interpreted, never disturbed.
	oracle := emu.New(mem.New())
	if err := oracle.LoadProgram(prog); err != nil {
		return nil, err
	}
	if err := oracle.Run(spec.MaxV); err != nil {
		return nil, fmt.Errorf("kill-resume oracle (%s): %w", spec.Workload.Name, err)
	}
	total := oracle.InstCount
	if total < 2 {
		return nil, fmt.Errorf("kill-resume: workload %s too short to kill (%d insts)",
			spec.Workload.Name, total)
	}

	// The kill schedule: 1..Kills distinct retirement counts in
	// [1, total-1], so every kill lands strictly inside the run.
	maxKills := spec.Kills
	if maxKills <= 0 {
		maxKills = 1
	}
	rng := spec.Seed
	nk := 1 + int(splitmix64(&rng)%uint64(maxKills))
	if uint64(nk) > total-1 {
		nk = int(total - 1)
	}
	targetSet := map[uint64]bool{}
	for len(targetSet) < nk {
		targetSet[1+splitmix64(&rng)%(total-1)] = true
	}
	targets := make([]uint64, 0, len(targetSet))
	for tgt := range targetSet {
		targets = append(targets, tgt)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	out := &KillResumeOutcome{Spec: spec, KillTargets: targets}

	var st *checkpoint.State // nil = first segment boots from the program image
	ti := 0
	for {
		cfg := vm.DefaultConfig()
		cfg.Metrics = spec.Metrics
		cfg.Store = spec.Store
		var p *prof.Profiler
		if spec.Timing {
			p = prof.New(prof.Config{})
			cfg.Prof = p
		}
		ooo, ildpM, err := attachMachine(&cfg, spec.Machine, spec.Timing, p)
		if err != nil {
			return nil, err
		}
		// The stop hook captures the VM pointer (assigned below — vm.New
		// copies cfg, so the closure must not capture a Stats value) and
		// this segment's target; -1 disarms the hook for the final
		// segment.
		var vv *vm.VM
		target := int64(-1)
		if ti < len(targets) {
			target = int64(targets[ti])
		}
		cfg.Stop = func() bool {
			return target >= 0 && int64(vv.Stats.TotalVInsts()) >= target
		}
		if tune := spec.Tune; tune != nil {
			tune(&cfg)
		}
		vv = vm.New(mem.New(), cfg)
		if st == nil {
			if err := vv.LoadProgram(prog); err != nil {
				return nil, err
			}
		} else {
			vv.Restore(st)
		}
		if attach := spec.Attach; attach != nil {
			attach(vv)
		}
		out.Segments++

		runErr := vv.Run(spec.MaxV)

		if spec.Timing {
			var cycles int64
			if ooo != nil {
				cycles = ooo.Finish().Cycles
			}
			if ildpM != nil {
				cycles = ildpM.Finish().Cycles
			}
			p.Finish()
			if err := p.Profile().CheckConservation(cycles); err != nil {
				return nil, fmt.Errorf("kill-resume seed %d segment %d: %w",
					spec.Seed, out.Segments, err)
			}
		}

		if runErr == nil {
			// The segment ran to completion (a kill target can go unhit
			// when the program halts inside a translated fragment that
			// retired past it).
			out.VM = vv.Stats
			out.Mismatch = diffState(vv.CPU(), oracle)
			if out.Mismatch == "" && out.VM.TotalVInsts() != total {
				out.Mismatch = fmt.Sprintf("retired V-insts: got %d, want %d (oracle)",
					out.VM.TotalVInsts(), total)
			}
			if out.Mismatch == "" && out.VM.Preemptions != uint64(out.Kills) {
				out.Mismatch = fmt.Sprintf("Stats.Preemptions = %d after %d kills",
					out.VM.Preemptions, out.Kills)
			}
			break
		}

		var pe *vm.PreemptError
		if !errors.As(runErr, &pe) {
			return nil, fmt.Errorf("kill-resume seed %d, %s on %v: unexpected error: %w",
				spec.Seed, spec.Workload.Name, spec.Machine, runErr)
		}
		if pe.PC != vv.CPU().PC {
			return nil, fmt.Errorf("kill-resume seed %d: preempt PC %#x != architected PC %#x",
				spec.Seed, pe.PC, vv.CPU().PC)
		}
		out.Kills++

		// Checkpoint, and hold the encoding to its contract: encoding is
		// deterministic, and Encode(Decode(b)) == b. The next segment
		// restores from the *decoded* state so the full serialization
		// path is what actually carries execution forward.
		b1 := checkpoint.Encode(vv.Checkpoint())
		if b2 := checkpoint.Encode(vv.Checkpoint()); !bytes.Equal(b1, b2) {
			return nil, fmt.Errorf("kill-resume seed %d: checkpoint encoding not deterministic", spec.Seed)
		}
		dec, err := checkpoint.Decode(b1)
		if err != nil {
			return nil, fmt.Errorf("kill-resume seed %d: decoding own checkpoint: %w", spec.Seed, err)
		}
		if !bytes.Equal(checkpoint.Encode(dec), b1) {
			return nil, fmt.Errorf("kill-resume seed %d: Encode(Decode(b)) != b", spec.Seed)
		}
		out.CkptBytes = len(b1)
		st = dec

		// Fragments retire in bulk, so the segment may have run past
		// several targets at once; every target at or below the restored
		// retirement count is already behind us.
		for ti < len(targets) && targets[ti] <= vv.Stats.TotalVInsts() {
			ti++
		}
	}

	if spec.Metrics != nil {
		out.VM.Publish(spec.Metrics)
	}
	return out, nil
}

package experiments

import (
	"math"

	"github.com/ildp/accdbt/internal/stats"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// VarianceRow reports the sensitivity of the headline Table 2 metrics to
// the workloads' pseudo-random datasets: the same kernels are regenerated
// with perturbed data seeds and the across-seed spread is measured. Small
// spreads mean the reproduction's conclusions are properties of the
// kernels' structure, not of one lucky dataset.
type VarianceRow struct {
	Seed     uint64
	DynB     float64 // mean basic-ISA dynamic expansion over all workloads
	DynM     float64
	CopyPctB float64
	CopyPctM float64
}

// Variance runs Table 2 across datasets. Seed 0 is the canonical dataset.
func Variance(scale, hotThreshold int, seeds []uint64) []VarianceRow {
	var rows []VarianceRow
	for _, seed := range seeds {
		var db, dm, cb, cm []float64
		for _, name := range workload.Names() {
			w, err := workload.ByNameSeeded(name, scale, seed)
			if err != nil {
				panic(err)
			}
			basic := MustRun(RunSpec{Workload: w, Machine: ILDPBasic,
				Chain: translate.SWPredRAS, HotThreshold: hotThreshold})
			mod := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
				Chain: translate.SWPredRAS, HotThreshold: hotThreshold})
			db = append(db, ratio(basic.VM.TransIInsts, basic.VM.TransVInsts))
			dm = append(dm, ratio(mod.VM.TransIInsts, mod.VM.TransVInsts))
			cb = append(cb, 100*ratio(basic.VM.CopiesExecuted, basic.VM.TransIInsts))
			cm = append(cm, 100*ratio(mod.VM.CopiesExecuted, mod.VM.TransIInsts))
		}
		rows = append(rows, VarianceRow{
			Seed: seed,
			DynB: stats.Mean(db), DynM: stats.Mean(dm),
			CopyPctB: stats.Mean(cb), CopyPctM: stats.Mean(cm),
		})
	}
	return rows
}

// Spread returns (max-min)/mean of a metric across the rows.
func Spread(rows []VarianceRow, metric func(VarianceRow) float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	min, max, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, r := range rows {
		v := metric(r)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean := sum / float64(len(rows))
	if mean == 0 {
		return 0
	}
	return (max - min) / mean
}

// FormatVariance renders the dataset-sensitivity study.
func FormatVariance(rows []VarianceRow) string {
	t := stats.NewTable(
		"Dataset sensitivity: Table 2 means across perturbed data seeds",
		"seed", "dyn B", "dyn M", "copy% B", "copy% M")
	for _, r := range rows {
		t.Row(int64(r.Seed), r.DynB, r.DynM, r.CopyPctB, r.CopyPctM)
	}
	t.Row("spread",
		Spread(rows, func(r VarianceRow) float64 { return r.DynB }),
		Spread(rows, func(r VarianceRow) float64 { return r.DynM }),
		Spread(rows, func(r VarianceRow) float64 { return r.CopyPctB }),
		Spread(rows, func(r VarianceRow) float64 { return r.CopyPctM }))
	return t.String()
}

package experiments

import (
	"testing"

	"github.com/ildp/accdbt/internal/stats"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// The experiment tests encode the paper's qualitative findings — who wins,
// in which direction, and roughly by how much — over the synthetic
// workloads at test scale. Thresholds are deliberately loose: they assert
// orderings and coarse magnitudes, not exact numbers.

const (
	testScale     = 1
	testThreshold = 25
)

func TestTable2Shape(t *testing.T) {
	rows := Table2(testScale, testThreshold)
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	var db, dm, cb, cm, ov []float64
	for _, r := range rows {
		// Basic must expand more than modified, for every benchmark.
		if r.RelDynB <= r.RelDynM {
			t.Errorf("%s: basic %.2f <= modified %.2f dynamic expansion", r.Bench, r.RelDynB, r.RelDynM)
		}
		// Copy share: basic far above modified (17.7%% vs 3.1%% in the paper).
		if r.CopyPctB <= r.CopyPctM {
			t.Errorf("%s: basic copy%% %.1f <= modified %.1f", r.Bench, r.CopyPctB, r.CopyPctM)
		}
		if r.RelStaticB <= 1.0 || r.RelStaticM <= 1.0 {
			t.Errorf("%s: static expansion below 1.0 (B=%.2f M=%.2f)", r.Bench, r.RelStaticB, r.RelStaticM)
		}
		// Modified static footprint beats basic overall despite wider
		// encodings (copies saved vs bits added can tie on copy-light
		// benchmarks, so allow a small per-benchmark tolerance).
		if r.RelStaticM > r.RelStaticB*1.03 {
			t.Errorf("%s: modified static %.2f >> basic %.2f", r.Bench, r.RelStaticM, r.RelStaticB)
		}
		db = append(db, r.RelDynB)
		dm = append(dm, r.RelDynM)
		cb = append(cb, r.CopyPctB)
		cm = append(cm, r.CopyPctM)
		ov = append(ov, r.Overhead)
	}
	// Averages in the paper's ballpark (basic 1.60, modified 1.36, copies
	// 17.7/3.1, overhead ~1125): our denser kernels amplify expansion, so
	// allow generous bands while still rejecting nonsense.
	if m := stats.Mean(dm); m < 1.1 || m > 1.9 {
		t.Errorf("modified dynamic expansion mean %.2f outside [1.1, 1.9]", m)
	}
	if m := stats.Mean(db); m < 1.4 || m > 2.6 {
		t.Errorf("basic dynamic expansion mean %.2f outside [1.4, 2.6]", m)
	}
	if m := stats.Mean(cm); m > 16 {
		t.Errorf("modified copy%% mean %.1f too high", m)
	}
	if m := stats.Mean(cb); m < 15 || m > 45 {
		t.Errorf("basic copy%% mean %.1f outside [15, 45]", m)
	}
	if m := stats.Mean(ov); m < 500 || m > 2200 {
		t.Errorf("translation overhead mean %.0f outside O(1000)", m)
	}
}

func TestFig4Shape(t *testing.T) {
	rows := Fig4(testScale, testThreshold)
	var np, sp, ras []float64
	for _, r := range rows {
		np = append(np, r.NoPred)
		sp = append(sp, r.SWPred)
		ras = append(ras, r.SWPredRAS)
	}
	// no_pred must mispredict substantially more than sw_pred on average;
	// the dual-address RAS must be at least as good as sw_pred overall.
	if stats.Mean(np) < 1.2*stats.Mean(sp) {
		t.Errorf("no_pred (%.1f) not clearly worse than sw_pred (%.1f)",
			stats.Mean(np), stats.Mean(sp))
	}
	if stats.Mean(ras) > 1.15*stats.Mean(sp) {
		t.Errorf("sw_pred.ras (%.1f) worse than sw_pred (%.1f)",
			stats.Mean(ras), stats.Mean(sp))
	}
	// The indirect-heavy stand-ins show the dramatic gap.
	for _, r := range rows {
		if r.Bench == "vortex" || r.Bench == "eon" {
			if r.NoPred < 3*r.SWPredRAS {
				t.Errorf("%s: no_pred %.1f should dwarf sw_pred.ras %.1f",
					r.Bench, r.NoPred, r.SWPredRAS)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	rows := Fig5(testScale, testThreshold)
	var np, sp, ras []float64
	for _, r := range rows {
		// Expansion is monotone across chaining modes for every benchmark.
		if r.NoPred < r.SWPred-1e-9 || r.SWPred < r.SWPredRAS-1e-9 {
			t.Errorf("%s: expansion not monotone: %.2f %.2f %.2f",
				r.Bench, r.NoPred, r.SWPred, r.SWPredRAS)
		}
		np = append(np, r.NoPred)
		sp = append(sp, r.SWPred)
		ras = append(ras, r.SWPredRAS)
		// Return-heavy vortex shows the RAS benefit most.
		if r.Bench == "vortex" && r.SWPred < 1.15*r.SWPredRAS {
			t.Errorf("vortex: RAS should cut return chaining (%.2f vs %.2f)",
				r.SWPred, r.SWPredRAS)
		}
	}
	if stats.Mean(ras) < 1.0 || stats.Mean(ras) > 1.6 {
		t.Errorf("sw_pred.ras expansion mean %.2f outside [1.0, 1.6]", stats.Mean(ras))
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(testScale, testThreshold)
	var origRAS, strRAS, strNo []float64
	for _, r := range rows {
		origRAS = append(origRAS, r.OrigRAS)
		strRAS = append(strRAS, r.StraightRAS)
		strNo = append(strNo, r.StraightNoRAS)
	}
	gOrig := stats.GeoMean(origRAS)
	gStrRAS := stats.GeoMean(strRAS)
	gStrNo := stats.GeoMean(strNo)
	// Straightened with the dual RAS performs about the same as original
	// with RAS (within 15%), and beats straightened without RAS.
	if gStrRAS < 0.85*gOrig {
		t.Errorf("straightened+RAS %.2f should be near original %.2f", gStrRAS, gOrig)
	}
	if gStrRAS < gStrNo {
		t.Errorf("RAS did not help straightened code: %.2f vs %.2f", gStrRAS, gStrNo)
	}
}

func TestFig7Shape(t *testing.T) {
	rows := Fig7(testScale, testThreshold)
	for _, r := range rows {
		total := 0.0
		for _, f := range r.Fractions {
			total += f
		}
		if total < 0.99 || total > 1.01 {
			t.Errorf("%s: fractions sum to %.3f", r.Bench, total)
		}
		g := r.GlobalFraction()
		if g <= 0 || g >= 0.95 {
			t.Errorf("%s: global fraction %.2f implausible", r.Bench, g)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(testScale, testThreshold)
	var orig, str, basic, mod, native []float64
	for _, r := range rows {
		orig = append(orig, r.Original)
		str = append(str, r.Straight)
		basic = append(basic, r.Basic)
		mod = append(mod, r.Modified)
		native = append(native, r.NativeIISA)
		// Basic never beats modified on the same hardware.
		if r.Basic > r.Modified*1.02 {
			t.Errorf("%s: basic IPC %.2f beats modified %.2f", r.Bench, r.Basic, r.Modified)
		}
	}
	gOrig, gStr := stats.GeoMean(orig), stats.GeoMean(str)
	gBasic, gMod := stats.GeoMean(basic), stats.GeoMean(mod)
	gNative := stats.GeoMean(native)
	if gBasic > gMod {
		t.Errorf("basic geomean %.2f beats modified %.2f", gBasic, gMod)
	}
	// Straightened superscalar is near original (code straightening plus
	// chaining roughly cancel, §4.3/Fig 6).
	if gStr < 0.8*gOrig || gStr > 1.2*gOrig {
		t.Errorf("straightened %.2f vs original %.2f outside band", gStr, gOrig)
	}
	// The modified accumulator ISA pays an IPC cost against the
	// straightened superscalar (15%% in the paper; our denser kernels
	// amplify it) but stays within striking distance.
	if gMod > gStr {
		t.Errorf("modified %.2f should not beat the ideal OoO %.2f", gMod, gStr)
	}
	if gMod < 0.5*gStr {
		t.Errorf("modified %.2f lost more than half of %.2f", gMod, gStr)
	}
	// The native I-ISA IPC is much higher than the V-ISA IPC: the
	// expansion offsets it (§4.5).
	if gNative < 1.2*gMod {
		t.Errorf("native I-ISA IPC %.2f should clearly exceed V-ISA IPC %.2f", gNative, gMod)
	}
}

func TestFig9Shape(t *testing.T) {
	rows := Fig9(testScale, testThreshold)
	var a8, base, sd, c2, p6, p4 []float64
	for _, r := range rows {
		a8 = append(a8, r.Acc8)
		base = append(base, r.Base)
		sd = append(sd, r.SmallD)
		c2 = append(c2, r.Comm2)
		p6 = append(p6, r.PE6)
		p4 = append(p4, r.PE4)
	}
	g := stats.GeoMean
	// Eight accumulators help a little (the paper reports 11%).
	if g(a8) < g(base)*0.99 {
		t.Errorf("8 accumulators (%.2f) should not lose to 4 (%.2f)", g(a8), g(base))
	}
	// A quarter-size D-cache barely matters for these kernels.
	if g(sd) < 0.85*g(base) {
		t.Errorf("8KB D$ (%.2f) lost too much vs 32KB (%.2f)", g(sd), g(base))
	}
	// Two-cycle wire latency costs a modest amount (3.4%% in the paper;
	// our tighter loop-carried chains amplify it).
	if g(c2) >= g(base) || g(c2) < 0.7*g(base) {
		t.Errorf("2-cycle comm %.2f vs base %.2f outside expected band", g(c2), g(base))
	}
	// PE scaling: 6 PEs hold up fairly well; 4 PEs lag clearly (18%% in
	// the paper).
	if g(p6) < g(p4) {
		t.Errorf("6 PEs (%.2f) should beat 4 PEs (%.2f)", g(p6), g(p4))
	}
	if g(p4) > 0.95*g(base) {
		t.Errorf("4 PEs (%.2f) should clearly lag 8 PEs (%.2f)", g(p4), g(base))
	}
}

func TestOverheadShape(t *testing.T) {
	rows := Overhead(testScale, testThreshold)
	var per []float64
	for _, r := range rows {
		if r.Fragments == 0 {
			t.Errorf("%s: no fragments", r.Bench)
		}
		per = append(per, r.PerInst)
	}
	m := stats.Mean(per)
	// The paper's average is 1,125 Alpha instructions per translated
	// instruction — a quarter of DAISY's 4,000+.
	if m < 600 || m > 2000 {
		t.Errorf("overhead mean %.0f not O(1000)", m)
	}
	if m > 4000 {
		t.Errorf("overhead %.0f is VLIW-class; the whole point is to be below it", m)
	}
}

func TestRunSpecErrors(t *testing.T) {
	w, err := workload.ByName("gzip", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(RunSpec{Workload: w, Machine: Machine(99)}); err == nil {
		t.Error("bad machine accepted")
	}
}

func TestFormatters(t *testing.T) {
	// Smoke-test every formatter renders non-empty output with the bench
	// names present.
	w := FormatTable2(Table2(testScale, testThreshold))
	if len(w) == 0 {
		t.Error("empty table2")
	}
	for _, f := range []string{
		FormatFig4(Fig4(testScale, testThreshold)),
		FormatFig5(Fig5(testScale, testThreshold)),
		FormatOverhead(Overhead(testScale, testThreshold)),
	} {
		if len(f) < 100 {
			t.Errorf("formatter output too short: %q", f)
		}
	}
	_ = translate.SWPredRAS
}

package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// TestProfilerEquivalence proves the acceptance criterion that profiling
// never changes simulation results: for every machine, a run with the
// profiler attached must produce bit-identical VM statistics, timing
// results, and PE distribution to the same run without it.
func TestProfilerEquivalence(t *testing.T) {
	wl, err := workload.ByName("gzip", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mach := range []Machine{Original, Straightened, ILDPBasic, ILDPModified} {
		spec := RunSpec{
			Workload: wl, Machine: mach, Chain: translate.SWPredRAS,
			Timing: true,
		}
		base, err := Run(spec)
		if err != nil {
			t.Fatalf("%v baseline: %v", mach, err)
		}

		spec.Prof = prof.New(prof.Config{Capacity: 1 << 12, SampleEvery: 2})
		profiled, err := Run(spec)
		if err != nil {
			t.Fatalf("%v profiled: %v", mach, err)
		}

		if !reflect.DeepEqual(base.VM, profiled.VM) {
			t.Errorf("%v: VM stats differ with profiling enabled:\n%+v\n%+v",
				mach, base.VM, profiled.VM)
		}
		if base.Timing != profiled.Timing {
			t.Errorf("%v: timing results differ with profiling enabled:\n%+v\n%+v",
				mach, base.Timing, profiled.Timing)
		}
		if !reflect.DeepEqual(base.PEDist, profiled.PEDist) {
			t.Errorf("%v: PE distribution differs with profiling enabled", mach)
		}
	}
}

// TestProfilerConservation checks the other acceptance criterion on real
// runs: the profile's per-frame cycle totals sum exactly to the timing
// model's cycle count, the hot table is sorted, and the exported trace
// passes schema validation — for both chain-heavy and return-heavy
// workloads and for a wrapped ring.
func TestProfilerConservation(t *testing.T) {
	for _, tc := range []struct {
		wl    string
		chain translate.ChainMode
		cap   int
	}{
		{"gzip", translate.SWPredRAS, 0},
		{"eon", translate.SWPredRAS, 1 << 10}, // returns + tiny ring (wraparound)
		{"perlbmk", translate.NoPred, 0},      // dispatch-dominated
	} {
		wl, err := workload.ByName(tc.wl, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := prof.New(prof.Config{Capacity: tc.cap})
		out, err := Run(RunSpec{
			Workload: wl, Machine: ILDPModified, Chain: tc.chain,
			Timing: true, Prof: p,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.wl, err)
		}

		pr := p.Profile()
		if len(pr.Frags) == 0 {
			t.Fatalf("%s: no fragments profiled", tc.wl)
		}
		if err := pr.CheckConservation(out.Timing.Cycles); err != nil {
			t.Errorf("%s: %v", tc.wl, err)
		}
		if pr.Frags[0].Entries == 0 || pr.Frags[0].Cycles <= 0 {
			t.Errorf("%s: hottest fragment has empty aggregates: %+v", tc.wl, pr.Frags[0])
		}

		var buf bytes.Buffer
		if err := p.WritePerfetto(&buf); err != nil {
			t.Fatalf("%s: %v", tc.wl, err)
		}
		if err := prof.ValidateTrace(buf.Bytes()); err != nil {
			t.Errorf("%s: %v", tc.wl, err)
		}

		var folded bytes.Buffer
		if err := pr.WriteFolded(&folded); err != nil {
			t.Fatalf("%s: %v", tc.wl, err)
		}
		if folded.Len() == 0 {
			t.Errorf("%s: folded output is empty", tc.wl)
		}
	}
}

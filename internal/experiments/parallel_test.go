package experiments

import (
	"runtime"
	"sync"
	"testing"

	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/workload"
)

// TestPerWorkloadOrderAndBound checks that perWorkload preserves
// workload order in its results and never runs more than GOMAXPROCS
// evaluations at once.
func TestPerWorkloadOrderAndBound(t *testing.T) {
	limit := runtime.GOMAXPROCS(0)
	var mu sync.Mutex
	running, peak := 0, 0

	got := perWorkload(1, func(w *workload.Spec) string {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		defer func() {
			mu.Lock()
			running--
			mu.Unlock()
		}()
		return w.Name
	})

	specs := workload.All(1)
	if len(got) != len(specs) {
		t.Fatalf("got %d results, want %d", len(got), len(specs))
	}
	for i, w := range specs {
		if got[i] != w.Name {
			t.Errorf("result %d = %q, want %q (order not preserved)", i, got[i], w.Name)
		}
	}
	if peak > limit {
		t.Errorf("peak concurrency %d exceeds GOMAXPROCS %d", peak, limit)
	}
}

// TestPerWorkloadWallTimeMetrics checks the per-workload wall times land
// in the attached registry.
func TestPerWorkloadWallTimeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	perWorkload(1, func(w *workload.Spec) struct{} { return struct{}{} })

	gauges := reg.GaugesWithPrefix("experiments.wall_ms.")
	if want := len(workload.All(1)); len(gauges) != want {
		t.Errorf("got %d wall-time gauges, want %d", len(gauges), want)
	}
	for name, v := range gauges {
		if v < 0 {
			t.Errorf("%s = %v, want >= 0", name, v)
		}
	}
	snap := reg.Snapshot()
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "experiments.workload_wall_ms" {
			found = true
			if int(h.Count) != len(workload.All(1)) {
				t.Errorf("histogram count = %d, want %d", h.Count, len(workload.All(1)))
			}
		}
	}
	if !found {
		t.Error("experiments.workload_wall_ms histogram missing")
	}
}

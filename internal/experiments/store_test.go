package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/ildp/accdbt/internal/fragstore"
)

// TestChaosStoreBitIdentical pins the chaos/store contract: a
// fault-injected VM bypasses the shared store entirely, so attaching
// one changes nothing — not the verdict, not a single counter — and
// the store stays empty (injected corruption never becomes a shared
// artifact).
func TestChaosStoreBitIdentical(t *testing.T) {
	wl := chaosWorkload(t)
	machines := []Machine{Original, Straightened, ILDPBasic, ILDPModified}
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	store := fragstore.New()
	for s := 0; s < seeds; s++ {
		seed := uint64(1000 + s)
		m := machines[s%len(machines)]
		t.Run(fmt.Sprintf("seed%d-%v", seed, m), func(t *testing.T) {
			spec := ChaosSpec{
				Workload: wl, Machine: m, Seed: seed,
				EntryRate: 16, TranslateRate: 4,
				MaxV: 20_000_000,
			}
			plain, err := RunChaos(spec)
			if err != nil {
				t.Fatal(err)
			}
			spec.Store = store
			stored, err := RunChaos(spec)
			if err != nil {
				t.Fatal(err)
			}
			checkChaosOutcome(t, stored)
			if !reflect.DeepEqual(plain.VM, stored.VM) {
				t.Errorf("stats diverged with store attached:\nplain:  %+v\nstored: %+v",
					plain.VM, stored.VM)
			}
			if plain.Faults != stored.Faults || plain.Decisions != stored.Decisions {
				t.Errorf("fault schedule shifted with store attached: %v/%d vs %v/%d",
					plain.Faults, plain.Decisions, stored.Faults, stored.Decisions)
			}
		})
	}
	if store.Len() != 0 {
		t.Errorf("chaos runs published %d artifacts into the shared store", store.Len())
	}
}

// TestKillResumeSharedStore runs the kill-and-resume sweep with one
// store shared across every seed and segment. Correctness must not
// move (every run still bit-identical to the oracle), and because each
// resumed segment reboots with a cold private cache but a warm shared
// store, the runs after the first must hit artifacts published by
// their predecessors.
func TestKillResumeSharedStore(t *testing.T) {
	wl := chaosWorkload(t)
	machines := []Machine{Original, Straightened, ILDPBasic, ILDPModified}
	seeds := 8
	if testing.Short() {
		seeds = 4
	}
	store := fragstore.New()
	var hits, kills uint64
	for s := 0; s < seeds; s++ {
		seed := uint64(5000 + s)
		m := machines[s%len(machines)]
		t.Run(fmt.Sprintf("seed%d-%v", seed, m), func(t *testing.T) {
			out, err := RunKillResume(KillResumeSpec{
				Workload: wl, Machine: m, Seed: seed, Kills: 3,
				MaxV:  20_000_000,
				Store: store,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.Mismatch != "" {
				t.Fatalf("seed %d on %v (%d kills at %v): %s",
					seed, m, out.Kills, out.KillTargets, out.Mismatch)
			}
			hits += out.VM.StoreHits
			kills += uint64(out.Kills)
		})
	}
	if kills == 0 {
		t.Error("sweep never killed a run; the schedule is miscalibrated")
	}
	// Machines repeat across seeds, so identically-configured later runs
	// re-encounter earlier runs' superblocks through the store.
	if hits == 0 {
		t.Error("no run ever hit the shared store")
	}
	if store.Len() == 0 {
		t.Error("sweep published no artifacts")
	}
	st := store.Stats()
	if int(st.Misses) != store.Len() {
		t.Errorf("%d misses for %d entries — a superblock was translated twice", st.Misses, store.Len())
	}
}

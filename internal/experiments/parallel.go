package experiments

import (
	"runtime"
	"sync"
	"time"

	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/workload"
)

// metricsReg, when set via SetMetrics, receives per-workload wall-time
// gauges and the workload wall-time histogram from perWorkload, so slow
// kernels are visible in experiment reports.
var (
	metricsMu  sync.Mutex
	metricsReg *metrics.Registry
)

// SetMetrics attaches a registry to the experiment drivers. Per-workload
// wall time accumulates into "experiments.wall_ms.<bench>" gauges and
// the "experiments.workload_wall_ms" histogram. Pass nil to detach.
func SetMetrics(reg *metrics.Registry) {
	metricsMu.Lock()
	metricsReg = reg
	metricsMu.Unlock()
}

// currentMetrics returns the attached registry (possibly nil).
func currentMetrics() *metrics.Registry {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	return metricsReg
}

// perWorkload evaluates f over all workloads concurrently, preserving
// order. Every run is deterministic, so parallelism never changes
// results — it only makes regenerating the full evaluation fast. The
// number of simultaneously running evaluations is bounded by
// GOMAXPROCS: one goroutine per workload with no cap oversubscribes the
// machine once callers nest sweeps, and the timing-model runs are
// memory-hungry enough for that to thrash.
func perWorkload[T any](scale int, f func(*workload.Spec) T) []T {
	specs := workload.All(scale)
	out := make([]T, len(specs))
	limit := runtime.GOMAXPROCS(0)
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i, w := range specs {
		wg.Add(1)
		go func(i int, w *workload.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			out[i] = f(w)
			if reg := currentMetrics(); reg != nil {
				ms := float64(time.Since(start)) / float64(time.Millisecond)
				reg.Gauge("experiments.wall_ms." + w.Name).Add(ms)
				reg.Histogram("experiments.workload_wall_ms").Observe(ms)
			}
		}(i, w)
	}
	wg.Wait()
	return out
}

package experiments

import (
	"sync"

	"github.com/ildp/accdbt/internal/workload"
)

// perWorkload evaluates f over all workloads concurrently, preserving
// order. Every run is deterministic, so parallelism never changes
// results — it only makes regenerating the full evaluation fast.
func perWorkload[T any](scale int, f func(*workload.Spec) T) []T {
	specs := workload.All(scale)
	out := make([]T, len(specs))
	var wg sync.WaitGroup
	for i, w := range specs {
		wg.Add(1)
		go func(i int, w *workload.Spec) {
			defer wg.Done()
			out[i] = f(w)
		}(i, w)
	}
	wg.Wait()
	return out
}

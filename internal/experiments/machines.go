package experiments

import (
	"fmt"
	"math"

	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/uarch"
	"github.com/ildp/accdbt/internal/vm"
)

// attachMachine configures cfg for one of the paper's four machines and,
// when timing is requested, builds and attaches the matching timing
// model (and profiler). It returns whichever model was attached; at most
// one of the two results is non-nil. Shared by the chaos and
// kill-and-resume harnesses so every differential run models machines
// identically.
func attachMachine(cfg *vm.Config, m Machine, timing bool, p *prof.Profiler) (*uarch.OoO, *uarch.ILDP, error) {
	var ooo *uarch.OoO
	var ildpM *uarch.ILDP
	switch m {
	case Original:
		// No DBT: the VM never translates, so the run is pure
		// interpretation timed through the interpreter sink.
		cfg.HotThreshold = math.MaxInt32
		if timing {
			ooo = uarch.NewOoO(uarch.DefaultOoO())
			cfg.InterpSink = ooo
		}
	case Straightened:
		cfg.Straighten = true
		if timing {
			mc := uarch.DefaultOoO()
			mc.UseHWRAS = false
			mc.DualRASTrace = true
			ooo = uarch.NewOoO(mc)
			cfg.Sink = ooo
		}
	case ILDPBasic, ILDPModified:
		cfg.Form = ildp.Basic
		if m == ILDPModified {
			cfg.Form = ildp.Modified
		}
		if timing {
			mc := uarch.DefaultILDP()
			mc.DualRASTrace = true
			mc.CacheOpts.Replicas = mc.PEs
			ildpM = uarch.NewILDP(mc)
			cfg.Sink = ildpM
		}
	default:
		return nil, nil, fmt.Errorf("experiments: unknown machine %v", m)
	}
	if p != nil {
		if ooo != nil {
			ooo.SetProfiler(p)
		}
		if ildpM != nil {
			ildpM.SetProfiler(p)
		}
	}
	return ooo, ildpM, nil
}

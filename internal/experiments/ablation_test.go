package experiments

import (
	"testing"

	"github.com/ildp/accdbt/internal/stats"
)

func TestFusionAblation(t *testing.T) {
	rows := Fusion(testScale, testThreshold)
	var se, fe, si, fi []float64
	for _, r := range rows {
		// Fusion can only remove instructions, never add them.
		if r.FusedExpand > r.SplitExpand+1e-9 {
			t.Errorf("%s: fusion increased expansion (%.2f -> %.2f)",
				r.Bench, r.SplitExpand, r.FusedExpand)
		}
		// Static footprint shrinks too (fewer instructions beats the wider
		// displaced-memory encodings).
		if r.FusedStaticB > r.SplitStaticB+1e-9 {
			t.Errorf("%s: fusion grew static code (%.2f -> %.2f)",
				r.Bench, r.SplitStaticB, r.FusedStaticB)
		}
		se = append(se, r.SplitExpand)
		fe = append(fe, r.FusedExpand)
		si = append(si, r.SplitIPC)
		fi = append(fi, r.FusedIPC)
	}
	// The paper conjectures a meaningful instruction-count reduction; the
	// memory-heavy stand-ins must show it in aggregate.
	if stats.Mean(fe) > 0.97*stats.Mean(se) {
		t.Errorf("fusion barely reduced expansion: %.3f vs %.3f",
			stats.Mean(fe), stats.Mean(se))
	}
	// And the IPC should not get worse overall.
	if stats.GeoMean(fi) < 0.98*stats.GeoMean(si) {
		t.Errorf("fusion hurt IPC: %.2f vs %.2f", stats.GeoMean(fi), stats.GeoMean(si))
	}
	// mcf (pointer chasing with displacements) benefits the most.
	for _, r := range rows {
		if r.Bench == "mcf" && r.FusedExpand > 0.85*r.SplitExpand {
			t.Errorf("mcf should benefit strongly from fusion: %.2f -> %.2f",
				r.SplitExpand, r.FusedExpand)
		}
	}
}

func TestThresholdAblation(t *testing.T) {
	rows := Threshold(testScale, []int{5, 50, 200})
	if len(rows) != 3 {
		t.Fatal("wrong row count")
	}
	// Lower thresholds translate a larger fraction at a higher per-V-inst
	// translation cost.
	if !(rows[0].TransFraction >= rows[1].TransFraction &&
		rows[1].TransFraction >= rows[2].TransFraction) {
		t.Errorf("translated fraction not monotone: %+v", rows)
	}
	if !(rows[0].CostShare >= rows[1].CostShare && rows[1].CostShare >= rows[2].CostShare) {
		t.Errorf("cost share not monotone: %+v", rows)
	}
	for _, r := range rows {
		if r.TransFraction < 0.5 {
			t.Errorf("threshold %d: translated fraction %.2f too low", r.Threshold, r.TransFraction)
		}
	}
}

func TestSuperblockAblation(t *testing.T) {
	rows := Superblock(testScale, testThreshold, []int{25, 200})
	if len(rows) != 2 {
		t.Fatal("wrong row count")
	}
	// Tiny superblocks cannot be faster than the baseline size.
	if rows[0].IPC > 1.1*rows[1].IPC {
		t.Errorf("25-inst superblocks (%.2f IPC) beat 200 (%.2f)", rows[0].IPC, rows[1].IPC)
	}
	for _, r := range rows {
		if r.Fragments == 0 {
			t.Errorf("size %d: no fragments", r.MaxSize)
		}
	}
}

func TestVMCost(t *testing.T) {
	rows := VMCost(testScale, 50)
	if len(rows) != 12 {
		t.Fatal("row count")
	}
	var perSrc []float64
	for _, r := range rows {
		if r.InterpInsts == 0 || r.TransVInsts == 0 {
			t.Errorf("%s: empty mode split", r.Bench)
		}
		perSrc = append(perSrc, r.InterpPerSrc)
	}
	// §4.1: threshold 50 at ~20 instructions per interpretation is about
	// 1,000 target instructions per source instruction.
	m := stats.Mean(perSrc)
	if m < 600 || m > 2500 {
		t.Errorf("interpretation cost per source instruction %.0f, want ~1000", m)
	}
}

func TestRASSweep(t *testing.T) {
	rows := RASSweep(testScale, testThreshold, []int{2, 16})
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	// A 2-entry RAS cannot beat a 16-entry RAS on nested calls.
	if rows[0].HitRate > rows[1].HitRate+1e-9 {
		t.Errorf("hit rate not monotone: %.2f vs %.2f", rows[0].HitRate, rows[1].HitRate)
	}
	if rows[0].IPC > rows[1].IPC*1.02 {
		t.Errorf("small RAS should not win: %.2f vs %.2f", rows[0].IPC, rows[1].IPC)
	}
	if rows[1].HitRate < 0.9 {
		t.Errorf("16-entry RAS hit rate %.2f too low on call-heavy kernels", rows[1].HitRate)
	}
}

func TestVarianceAcrossSeeds(t *testing.T) {
	rows := Variance(testScale, testThreshold, []uint64{0, 1, 2})
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	// Perturbed datasets must actually perturb something...
	if rows[0].DynB == rows[1].DynB && rows[0].CopyPctB == rows[1].CopyPctB &&
		rows[0].DynM == rows[1].DynM {
		t.Error("seeds produced identical statistics; seeding is not wired through")
	}
	// ...but the headline metrics are structural: spread stays small and
	// the Basic > Modified ordering holds for every dataset.
	if sp := Spread(rows, func(r VarianceRow) float64 { return r.DynM }); sp > 0.15 {
		t.Errorf("modified expansion spread %.3f too large across datasets", sp)
	}
	for _, r := range rows {
		if r.DynB <= r.DynM {
			t.Errorf("seed %d: basic %.2f <= modified %.2f", r.Seed, r.DynB, r.DynM)
		}
		if r.CopyPctB <= r.CopyPctM {
			t.Errorf("seed %d: copy%% ordering broken", r.Seed)
		}
	}
}

package experiments

import (
	"github.com/ildp/accdbt/internal/stats"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// VMCostRow quantifies the §4.1/§4.2 overhead discussion for one
// benchmark: interpretation (~20 Alpha instructions per interpreted
// instruction, ~1000 per source instruction at threshold 50) and
// translation (~1125 per translated instruction) as shares of total work.
type VMCostRow struct {
	Bench          string
	InterpInsts    uint64
	TransVInsts    uint64
	InterpCost     int64
	TranslateCost  int64
	OverheadPerV   float64 // (interp + translate) cost per retired V-inst
	InterpPerSrc   float64 // interpretation cost per translated source inst
	BreakEvenVInst float64 // V-insts needed to amortise the VM overhead at 1 unit/inst
}

// VMCost runs the overhead analysis over all workloads.
func VMCost(scale, hotThreshold int) []VMCostRow {
	var rows []VMCostRow
	for _, w := range workload.All(scale) {
		out := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
			Chain: translate.SWPredRAS, HotThreshold: hotThreshold})
		s := out.VM
		row := VMCostRow{
			Bench:         w.Name,
			InterpInsts:   s.InterpInsts,
			TransVInsts:   s.TransVInsts,
			InterpCost:    s.InterpCost(),
			TranslateCost: s.TranslateCost,
		}
		total := float64(s.TotalVInsts())
		if total > 0 {
			row.OverheadPerV = float64(s.VMOverhead()) / total
		}
		if s.SrcInstsTranslated > 0 {
			row.InterpPerSrc = float64(s.InterpCost()) / float64(s.SrcInstsTranslated)
		}
		row.BreakEvenVInst = float64(s.VMOverhead())
		rows = append(rows, row)
	}
	return rows
}

// FormatVMCost renders the overhead analysis.
func FormatVMCost(rows []VMCostRow) string {
	t := stats.NewTable(
		"VM software overhead (§4.1-4.2): interpretation + translation",
		"bench", "interp insts", "trans V-insts", "interp cost", "xlate cost", "ovh/V-inst", "interp/src")
	var ov, ips []float64
	for _, r := range rows {
		t.Row(r.Bench, int64(r.InterpInsts), int64(r.TransVInsts),
			r.InterpCost, r.TranslateCost, r.OverheadPerV, r.InterpPerSrc)
		ov = append(ov, r.OverheadPerV)
		ips = append(ips, r.InterpPerSrc)
	}
	t.Row("Avg.", "", "", "", "", stats.Mean(ov), stats.Mean(ips))
	return t.String()
}

// RASRow is one dual-address-RAS size point (extension ablation: the paper
// proposes the structure but does not size it).
type RASRow struct {
	Size    int
	HitRate float64 // over the call/return-heavy stand-ins
	IPC     float64 // geomean over eon + vortex
	ExpandR float64 // mean dynamic expansion over eon + vortex
}

// RASSweep sizes the dual-address RAS on the return-heavy workloads.
func RASSweep(scale, hotThreshold int, sizes []int) []RASRow {
	benches := []string{"eon", "vortex"}
	var rows []RASRow
	for _, size := range sizes {
		var hits, total uint64
		var ipcs, expands []float64
		for _, name := range benches {
			w, err := workload.ByName(name, scale)
			if err != nil {
				panic(err)
			}
			out := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
				Chain: translate.SWPredRAS, Timing: true,
				HotThreshold: hotThreshold, RASSize: size})
			hits += out.VM.RASHits
			total += out.VM.RASHits + out.VM.RASMisses
			ipcs = append(ipcs, out.Timing.IPC())
			expands = append(expands, ratio(out.VM.TransIInsts, out.VM.TransVInsts))
		}
		row := RASRow{Size: size, IPC: stats.GeoMean(ipcs), ExpandR: stats.Mean(expands)}
		if total > 0 {
			row.HitRate = float64(hits) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatRASSweep renders the RAS sizing ablation.
func FormatRASSweep(rows []RASRow) string {
	t := stats.NewTable(
		"Ablation: dual-address RAS size (eon + vortex, modified ISA)",
		"entries", "hit rate", "IPC", "expansion")
	for _, r := range rows {
		t.Row(r.Size, r.HitRate, r.IPC, r.ExpandR)
	}
	return t.String()
}

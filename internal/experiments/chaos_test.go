package experiments

import (
	"fmt"
	"testing"

	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// chaosWorkload returns the soak workload: small enough that hundreds of
// faulted runs stay fast, busy enough that fragments chain, return, and
// dispatch.
func chaosWorkload(t *testing.T) *workload.Spec {
	t.Helper()
	wl, err := workload.ByName("gzip", 1)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// checkChaosOutcome asserts the differential verdict plus the recovery
// accounting invariants: every applied fault of a kind maps to exactly
// one recovery event of the matching class, and the modelled recovery
// cost is the episode count times the per-event constant.
func checkChaosOutcome(t *testing.T, out *ChaosOutcome) {
	t.Helper()
	if out.Mismatch != "" {
		t.Fatalf("seed %d on %v: architected state diverged: %s (faults applied: %s)",
			out.Spec.Seed, out.Spec.Machine, out.Mismatch, out.Faults)
	}
	st, c := out.VM, out.Faults
	if st.ReverifyFails != c[faultinject.KindBitFlip] {
		t.Errorf("ReverifyFails = %d, bitflips applied = %d",
			st.ReverifyFails, c[faultinject.KindBitFlip])
	}
	if st.SpuriousTraps != c[faultinject.KindSpuriousTrap] {
		t.Errorf("SpuriousTraps = %d, spurious traps applied = %d",
			st.SpuriousTraps, c[faultinject.KindSpuriousTrap])
	}
	if st.ForcedEvicts != c[faultinject.KindEvict] {
		t.Errorf("ForcedEvicts = %d, evicts applied = %d",
			st.ForcedEvicts, c[faultinject.KindEvict])
	}
	if st.CacheShrinks != c[faultinject.KindShrinkCache] {
		t.Errorf("CacheShrinks = %d, shrinks applied = %d",
			st.CacheShrinks, c[faultinject.KindShrinkCache])
	}
	if want := c[faultinject.KindFailTranslate] + c[faultinject.KindPoisonTranslate]; st.TransFailures != want {
		t.Errorf("TransFailures = %d, injected translation faults = %d",
			st.TransFailures, want)
	}
	if want := int64(st.Recoveries()) * vm.RecoveryCostPerEvent; st.RecoveryCost != want {
		t.Errorf("RecoveryCost = %d, want %d (%d episodes)",
			st.RecoveryCost, want, st.Recoveries())
	}
	if st.Recoveries() > 0 && st.FallbackInsts == 0 {
		t.Error("recoveries happened but no instructions were attributed to fallback")
	}
}

// TestChaosSoak is the differential chaos oracle's combined-kind sweep:
// many seeds, every fault kind enabled, cycling through all four
// machines. Every run must finish bit-identical to the pure-interpreter
// oracle with its recovery counters reconciling against the injected
// fault counts. Together with TestChaosPerKind this exercises well over
// 50 distinct seeds in full mode.
func TestChaosSoak(t *testing.T) {
	wl := chaosWorkload(t)
	machines := []Machine{Original, Straightened, ILDPBasic, ILDPModified}
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	sawFault := false
	for s := 0; s < seeds; s++ {
		seed := uint64(1000 + s)
		m := machines[s%len(machines)]
		t.Run(fmt.Sprintf("seed%d-%v", seed, m), func(t *testing.T) {
			out, err := RunChaos(ChaosSpec{
				Workload: wl, Machine: m, Seed: seed,
				EntryRate: 16, TranslateRate: 4,
				MaxV: 20_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			checkChaosOutcome(t, out)
			if out.Faults.Total() > 0 {
				sawFault = true
			}
		})
	}
	if !sawFault {
		t.Error("soak applied no faults at all; the schedule rates are miscalibrated")
	}
}

// TestChaosPerKind isolates each fault kind on the modified-ISA machine
// (the full accumulator pipeline, where recovery is hardest), asserting
// the oracle holds and that the isolated kind actually fired.
func TestChaosPerKind(t *testing.T) {
	wl := chaosWorkload(t)
	perKind := 4
	if testing.Short() {
		perKind = 1
	}
	for _, k := range faultinject.AllKinds() {
		for s := 0; s < perKind; s++ {
			seed := uint64(9000 + 100*int(k) + s)
			t.Run(fmt.Sprintf("%v-seed%d", k, seed), func(t *testing.T) {
				// TranslateRate 1 faults every translation: the soak
				// workload forms only a couple of superblocks, so anything
				// sparser can miss them all, and rate 1 drives the
				// backoff-to-quarantine path on every seed.
				out, err := RunChaos(ChaosSpec{
					Workload: wl, Machine: ILDPModified, Seed: seed,
					Kinds:     []faultinject.Kind{k},
					EntryRate: 8, TranslateRate: 1,
					MaxV: 20_000_000,
				})
				if err != nil {
					t.Fatal(err)
				}
				checkChaosOutcome(t, out)
				if out.Faults[k] == 0 {
					t.Errorf("isolated kind %v never fired (%d decisions)", k, out.Decisions)
				}
				for _, other := range faultinject.AllKinds() {
					if other != k && out.Faults[other] != 0 {
						t.Errorf("kind %v fired %d times in a %v-only schedule",
							other, out.Faults[other], k)
					}
				}
			})
		}
	}
}

// TestChaosConservationTimed attaches the timing models and the profiler
// to faulted runs and checks the cycle-conservation invariant still
// holds with recovery pseudo-frames in the attribution, and that the
// recovery frame's entry count equals the VM's recovery episode count.
func TestChaosConservationTimed(t *testing.T) {
	wl := chaosWorkload(t)
	for _, m := range []Machine{Straightened, ILDPBasic, ILDPModified} {
		t.Run(m.String(), func(t *testing.T) {
			p := prof.New(prof.Config{})
			out, err := RunChaos(ChaosSpec{
				Workload: wl, Machine: m, Seed: 424242,
				EntryRate: 8, TranslateRate: 2,
				MaxV: 20_000_000, Timing: true, Prof: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			checkChaosOutcome(t, out)
			pr := p.Profile()
			if err := pr.CheckConservation(out.Timing.Cycles); err != nil {
				t.Errorf("cycle conservation broke under chaos: %v", err)
			}
			if got, want := pr.RecoveryEntries, out.VM.Recoveries(); got != want {
				t.Errorf("profiler recorded %d recovery episodes, VM counted %d", got, want)
			}
			if out.VM.Recoveries() == 0 {
				t.Errorf("seed produced no recoveries on %v; pick a livelier seed", m)
			}
		})
	}
}

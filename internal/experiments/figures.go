package experiments

import (
	"fmt"

	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/stats"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// Fig4Row is one benchmark's branch/jump mispredictions per 1000
// instructions under the three chaining implementations, against the
// original code (paper Fig. 4, measured on the code-straightening-only
// simulator).
type Fig4Row struct {
	Bench     string
	Original  float64
	NoPred    float64
	SWPred    float64
	SWPredRAS float64
}

// Fig4 reproduces the chaining-method misprediction comparison.
func Fig4(scale, hotThreshold int) []Fig4Row {
	return perWorkload(scale, func(w *workload.Spec) Fig4Row {
		orig := MustRun(RunSpec{Workload: w, Machine: Original, Timing: true,
			HotThreshold: hotThreshold})
		row := Fig4Row{Bench: w.Name, Original: orig.Timing.MispredictsPer1000()}
		for _, ch := range []translate.ChainMode{translate.NoPred, translate.SWPred, translate.SWPredRAS} {
			out := MustRun(RunSpec{Workload: w, Machine: Straightened, Chain: ch,
				Timing: true, HotThreshold: hotThreshold})
			per := out.Timing.MispredictsPer1000()
			switch ch {
			case translate.NoPred:
				row.NoPred = per
			case translate.SWPred:
				row.SWPred = per
			case translate.SWPredRAS:
				row.SWPredRAS = per
			}
		}
		return row
	})
}

// FormatFig4 renders the Fig. 4 series.
func FormatFig4(rows []Fig4Row) string {
	t := stats.NewTable(
		"Figure 4. Branch/jump mispredictions per 1000 instructions",
		"bench", "original", "no_pred", "sw_pred.no_ras", "sw_pred.ras")
	var o, n, s, r []float64
	for _, row := range rows {
		t.Row(row.Bench, row.Original, row.NoPred, row.SWPred, row.SWPredRAS)
		o = append(o, row.Original)
		n = append(n, row.NoPred)
		s = append(s, row.SWPred)
		r = append(r, row.SWPredRAS)
	}
	t.Row("Avg.", stats.Mean(o), stats.Mean(n), stats.Mean(s), stats.Mean(r))
	return t.String()
}

// Fig5Row is one benchmark's dynamic instruction-count expansion from
// chaining on straightened Alpha (paper Fig. 5).
type Fig5Row struct {
	Bench     string
	NoPred    float64
	SWPred    float64
	SWPredRAS float64
}

// Fig5 reproduces the relative-instruction-count figure.
func Fig5(scale, hotThreshold int) []Fig5Row {
	return perWorkload(scale, func(w *workload.Spec) Fig5Row {
		row := Fig5Row{Bench: w.Name}
		for _, ch := range []translate.ChainMode{translate.NoPred, translate.SWPred, translate.SWPredRAS} {
			out := MustRun(RunSpec{Workload: w, Machine: Straightened, Chain: ch,
				HotThreshold: hotThreshold})
			rel := ratio(out.VM.TransIInsts, out.VM.TransVInsts)
			switch ch {
			case translate.NoPred:
				row.NoPred = rel
			case translate.SWPred:
				row.SWPred = rel
			case translate.SWPredRAS:
				row.SWPredRAS = rel
			}
		}
		return row
	})
}

// FormatFig5 renders the Fig. 5 series.
func FormatFig5(rows []Fig5Row) string {
	t := stats.NewTable(
		"Figure 5. Relative instruction count (straightened Alpha / original)",
		"bench", "no_pred", "sw_pred.no_ras", "sw_pred.ras")
	var n, s, r []float64
	for _, row := range rows {
		t.Row(row.Bench, row.NoPred, row.SWPred, row.SWPredRAS)
		n = append(n, row.NoPred)
		s = append(s, row.SWPred)
		r = append(r, row.SWPredRAS)
	}
	t.Row("Avg.", stats.Mean(n), stats.Mean(s), stats.Mean(r))
	return t.String()
}

// Fig6Row is one benchmark's IPC for the code-straightening study (paper
// Fig. 6): original and straightened code, with and without return address
// stack support.
type Fig6Row struct {
	Bench         string
	OrigNoRAS     float64
	OrigRAS       float64
	StraightNoRAS float64
	StraightRAS   float64
}

// Fig6 reproduces the code-straightening / RAS IPC study.
func Fig6(scale, hotThreshold int) []Fig6Row {
	return perWorkload(scale, func(w *workload.Spec) Fig6Row {
		row := Fig6Row{Bench: w.Name}
		row.OrigNoRAS = MustRun(RunSpec{Workload: w, Machine: Original,
			Timing: true, NoHWRAS: true, HotThreshold: hotThreshold}).Timing.IPC()
		row.OrigRAS = MustRun(RunSpec{Workload: w, Machine: Original,
			Timing: true, HotThreshold: hotThreshold}).Timing.IPC()
		row.StraightNoRAS = MustRun(RunSpec{Workload: w, Machine: Straightened,
			Chain: translate.SWPred, Timing: true, HotThreshold: hotThreshold}).Timing.IPC()
		row.StraightRAS = MustRun(RunSpec{Workload: w, Machine: Straightened,
			Chain: translate.SWPredRAS, Timing: true, HotThreshold: hotThreshold}).Timing.IPC()
		return row
	})
}

// FormatFig6 renders the Fig. 6 series.
func FormatFig6(rows []Fig6Row) string {
	t := stats.NewTable(
		"Figure 6. IPC impact of code straightening and hardware RAS",
		"bench", "orig/noRAS", "orig/RAS", "straight/noRAS", "straight/RAS")
	var a, b, c, d []float64
	for _, row := range rows {
		t.Row(row.Bench, row.OrigNoRAS, row.OrigRAS, row.StraightNoRAS, row.StraightRAS)
		a = append(a, row.OrigNoRAS)
		b = append(b, row.OrigRAS)
		c = append(c, row.StraightNoRAS)
		d = append(d, row.StraightRAS)
	}
	t.Row("GeoMean", stats.GeoMean(a), stats.GeoMean(b), stats.GeoMean(c), stats.GeoMean(d))
	return t.String()
}

// Fig7Row is one benchmark's output register usage breakdown (paper
// Fig. 7), as fractions of dynamic value-producing instructions.
type Fig7Row struct {
	Bench     string
	Fractions map[ildp.UsageClass]float64
}

// fig7Classes is the paper's legend order.
var fig7Classes = []ildp.UsageClass{
	ildp.UsageNoUser, ildp.UsageNoUserGlobal, ildp.UsageLocal,
	ildp.UsageLocalGlobal, ildp.UsageTemp, ildp.UsageComm, ildp.UsageLiveOut,
}

// Fig7 reproduces the output-usage ("globalness") statistics.
func Fig7(scale, hotThreshold int) []Fig7Row {
	return perWorkload(scale, func(w *workload.Spec) Fig7Row {
		out := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
			Chain: translate.SWPredRAS, HotThreshold: hotThreshold})
		var total uint64
		for _, c := range fig7Classes {
			total += out.VM.UsageDyn[c]
		}
		row := Fig7Row{Bench: w.Name, Fractions: map[ildp.UsageClass]float64{}}
		for _, c := range fig7Classes {
			row.Fractions[c] = ratio(out.VM.UsageDyn[c], total)
		}
		return row
	})
}

// GlobalFraction returns the fraction of values needing latency-critical
// GPR writes (live-out + communication), the paper's ~25% headline.
func (r *Fig7Row) GlobalFraction() float64 {
	return r.Fractions[ildp.UsageLiveOut] + r.Fractions[ildp.UsageComm]
}

// FormatFig7 renders the Fig. 7 series.
func FormatFig7(rows []Fig7Row) string {
	t := stats.NewTable(
		"Figure 7. Output register usage (fractions of producing instructions)",
		"bench", "no-user", "nouser>gbl", "local", "local>gbl", "temp", "comm", "liveout", "global%")
	for _, row := range rows {
		t.Row(row.Bench,
			row.Fractions[ildp.UsageNoUser], row.Fractions[ildp.UsageNoUserGlobal],
			row.Fractions[ildp.UsageLocal], row.Fractions[ildp.UsageLocalGlobal],
			row.Fractions[ildp.UsageTemp], row.Fractions[ildp.UsageComm],
			row.Fractions[ildp.UsageLiveOut], 100*row.GlobalFraction())
	}
	return t.String()
}

// Fig8Row is one benchmark's IPC across the four machines plus the native
// I-ISA IPC of the modified form (paper Fig. 8; 8 PEs, 32KB D$, 0-cycle
// communication latency).
type Fig8Row struct {
	Bench      string
	Original   float64
	Straight   float64
	Basic      float64
	Modified   float64
	NativeIISA float64
}

// Fig8 reproduces the headline IPC comparison.
func Fig8(scale, hotThreshold int) []Fig8Row {
	return perWorkload(scale, func(w *workload.Spec) Fig8Row {
		row := Fig8Row{Bench: w.Name}
		row.Original = MustRun(RunSpec{Workload: w, Machine: Original,
			Timing: true, HotThreshold: hotThreshold}).Timing.IPC()
		row.Straight = MustRun(RunSpec{Workload: w, Machine: Straightened,
			Chain: translate.SWPredRAS, Timing: true, HotThreshold: hotThreshold}).Timing.IPC()
		row.Basic = MustRun(RunSpec{Workload: w, Machine: ILDPBasic,
			Chain: translate.SWPredRAS, Timing: true, PEs: 8, HotThreshold: hotThreshold}).Timing.IPC()
		mod := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
			Chain: translate.SWPredRAS, Timing: true, PEs: 8, HotThreshold: hotThreshold})
		row.Modified = mod.Timing.IPC()
		row.NativeIISA = mod.Timing.NativeIPC()
		return row
	})
}

// FormatFig8 renders the Fig. 8 series.
func FormatFig8(rows []Fig8Row) string {
	t := stats.NewTable(
		"Figure 8. IPC comparison (V-ISA instructions per cycle)",
		"bench", "orig SS", "straightened", "ILDP basic", "ILDP modified", "native I-ISA")
	var o, s, bs, md, ni []float64
	for _, row := range rows {
		t.Row(row.Bench, row.Original, row.Straight, row.Basic, row.Modified, row.NativeIISA)
		o = append(o, row.Original)
		s = append(s, row.Straight)
		bs = append(bs, row.Basic)
		md = append(md, row.Modified)
		ni = append(ni, row.NativeIISA)
	}
	t.Row("GeoMean", stats.GeoMean(o), stats.GeoMean(s), stats.GeoMean(bs),
		stats.GeoMean(md), stats.GeoMean(ni))
	return t.String()
}

// Fig9Row is one benchmark's modified-ISA ILDP IPC across machine
// parameters (paper Fig. 9).
type Fig9Row struct {
	Bench  string
	Acc8   float64 // 8 logical accumulators, 8 PEs
	Base   float64 // 4 accumulators, 8 PEs, 32KB D$, 0-cycle comm
	SmallD float64 // 8KB D$
	Comm2  float64 // 2-cycle global wire latency
	PE6    float64
	PE4    float64
}

// Fig9 reproduces the machine-parameter sensitivity sweep.
func Fig9(scale, hotThreshold int) []Fig9Row {
	return perWorkload(scale, func(w *workload.Spec) Fig9Row {
		base := RunSpec{Workload: w, Machine: ILDPModified,
			Chain: translate.SWPredRAS, Timing: true, PEs: 8, HotThreshold: hotThreshold}
		run := func(mut func(*RunSpec)) float64 {
			s := base
			mut(&s)
			return MustRun(s).Timing.IPC()
		}
		return Fig9Row{
			Bench:  w.Name,
			Acc8:   run(func(s *RunSpec) { s.NumAcc = 8 }),
			Base:   run(func(s *RunSpec) {}),
			SmallD: run(func(s *RunSpec) { s.SmallD = true }),
			Comm2:  run(func(s *RunSpec) { s.CommLat = 2 }),
			PE6:    run(func(s *RunSpec) { s.PEs = 6 }),
			PE4:    run(func(s *RunSpec) { s.PEs = 4 }),
		}
	})
}

// FormatFig9 renders the Fig. 9 series.
func FormatFig9(rows []Fig9Row) string {
	t := stats.NewTable(
		"Figure 9. IPC variation over machine parameters (modified ISA)",
		"bench", "8 acc", "base(4a/8PE/32K/0c)", "8KB D$", "2-cyc comm", "6 PE", "4 PE")
	var a8, ba, sd, c2, p6, p4 []float64
	for _, row := range rows {
		t.Row(row.Bench, row.Acc8, row.Base, row.SmallD, row.Comm2, row.PE6, row.PE4)
		a8 = append(a8, row.Acc8)
		ba = append(ba, row.Base)
		sd = append(sd, row.SmallD)
		c2 = append(c2, row.Comm2)
		p6 = append(p6, row.PE6)
		p4 = append(p4, row.PE4)
	}
	t.Row("GeoMean", stats.GeoMean(a8), stats.GeoMean(ba), stats.GeoMean(sd),
		stats.GeoMean(c2), stats.GeoMean(p6), stats.GeoMean(p4))
	return t.String()
}

// OverheadRow is one benchmark's translation overhead (§4.2).
type OverheadRow struct {
	Bench       string
	PerInst     float64 // Alpha instructions per translated Alpha instruction
	Fragments   int
	SrcInsts    int64
	CopyPercent float64 // share of overhead spent copying structures
}

// Overhead reproduces the §4.2 translation-overhead measurement.
func Overhead(scale, hotThreshold int) []OverheadRow {
	return perWorkload(scale, func(w *workload.Spec) OverheadRow {
		out := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
			Chain: translate.SWPredRAS, HotThreshold: hotThreshold})
		return OverheadRow{
			Bench:     w.Name,
			PerInst:   float64(out.VM.TranslateCost) / float64(out.VM.SrcInstsTranslated),
			Fragments: out.VM.Fragments,
			SrcInsts:  out.VM.SrcInstsTranslated,
		}
	})
}

// FormatOverhead renders the §4.2 table.
func FormatOverhead(rows []OverheadRow) string {
	t := stats.NewTable(
		"Translation overhead (Alpha instructions to translate one Alpha instruction, §4.2)",
		"bench", "insts/inst", "fragments", "src insts")
	var per []float64
	for _, row := range rows {
		t.Row(row.Bench, row.PerInst, row.Fragments, fmt.Sprint(row.SrcInsts))
		per = append(per, row.PerInst)
	}
	t.Row("Avg.", stats.Mean(per), "", "")
	return t.String()
}

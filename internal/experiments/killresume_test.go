package experiments

import (
	"fmt"
	"testing"
)

// TestKillResumeSweep is the acceptance sweep: many seeds cycling
// through all four machines, each run killed 1-3 times at seed-chosen
// points, checkpointed, and resumed into a fresh VM. Every run must
// finish bit-identical to the uninterrupted pure-interpreter oracle
// with the cumulative Stats reconciling across segments.
func TestKillResumeSweep(t *testing.T) {
	wl := chaosWorkload(t)
	machines := []Machine{Original, Straightened, ILDPBasic, ILDPModified}
	seeds := 56
	if testing.Short() {
		seeds = 8
	}
	kills := 0
	for s := 0; s < seeds; s++ {
		seed := uint64(5000 + s)
		m := machines[s%len(machines)]
		t.Run(fmt.Sprintf("seed%d-%v", seed, m), func(t *testing.T) {
			out, err := RunKillResume(KillResumeSpec{
				Workload: wl, Machine: m, Seed: seed, Kills: 3,
				MaxV: 20_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.Mismatch != "" {
				t.Fatalf("seed %d on %v (%d kills at %v): %s",
					seed, m, out.Kills, out.KillTargets, out.Mismatch)
			}
			if out.Kills > 0 && out.CkptBytes == 0 {
				t.Error("killed run recorded no checkpoint size")
			}
			if out.Segments != out.Kills+1 {
				t.Errorf("Segments = %d, want Kills+1 = %d", out.Segments, out.Kills+1)
			}
			kills += out.Kills
		})
	}
	if kills == 0 {
		t.Error("sweep never killed a run; the schedule is miscalibrated")
	}
}

// TestKillResumeTimed attaches the timing models: each segment gets a
// fresh profiler and machine model, and RunKillResume itself checks
// cycle conservation — with the preempt pseudo-frame in the attribution
// — segment by segment. A conservation break surfaces as an error.
func TestKillResumeTimed(t *testing.T) {
	wl := chaosWorkload(t)
	for _, m := range []Machine{Straightened, ILDPBasic, ILDPModified} {
		t.Run(m.String(), func(t *testing.T) {
			sawKill := false
			for s := 0; s < 3; s++ {
				out, err := RunKillResume(KillResumeSpec{
					Workload: wl, Machine: m, Seed: uint64(7100 + s), Kills: 2,
					MaxV: 20_000_000, Timing: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if out.Mismatch != "" {
					t.Fatalf("seed %d: %s", 7100+s, out.Mismatch)
				}
				if out.Kills > 0 {
					sawKill = true
				}
			}
			if !sawKill {
				t.Errorf("no timed run on %v was ever killed", m)
			}
		})
	}
}

package experiments

import (
	"github.com/ildp/accdbt/internal/stats"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// The ablation drivers evaluate the design choices DESIGN.md calls out and
// the extensions the paper proposes but does not implement.

// FusionRow compares split vs fused memory operations (§4.5: "One way to
// deal with this instruction count expansion is to not split memory
// instructions into two").
type FusionRow struct {
	Bench        string
	SplitExpand  float64 // I-insts per V-inst, address computation split out
	FusedExpand  float64 // with displacements kept in the memory instruction
	SplitIPC     float64
	FusedIPC     float64
	SplitStaticB float64 // static code expansion
	FusedStaticB float64
}

// Fusion runs the §4.5 unsplit-memory-operation ablation on the modified
// ISA.
func Fusion(scale, hotThreshold int) []FusionRow {
	var rows []FusionRow
	for _, w := range workload.All(scale) {
		base := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
			Chain: translate.SWPredRAS, Timing: true, HotThreshold: hotThreshold})
		fused := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
			Chain: translate.SWPredRAS, Timing: true, FuseMem: true, HotThreshold: hotThreshold})
		rows = append(rows, FusionRow{
			Bench:        w.Name,
			SplitExpand:  ratio(base.VM.TransIInsts, base.VM.TransVInsts),
			FusedExpand:  ratio(fused.VM.TransIInsts, fused.VM.TransVInsts),
			SplitIPC:     base.Timing.IPC(),
			FusedIPC:     fused.Timing.IPC(),
			SplitStaticB: ratio(uint64(base.VM.StaticCodeBytes), uint64(base.VM.StaticSrcBytes)),
			FusedStaticB: ratio(uint64(fused.VM.StaticCodeBytes), uint64(fused.VM.StaticSrcBytes)),
		})
	}
	return rows
}

// FormatFusion renders the fusion ablation.
func FormatFusion(rows []FusionRow) string {
	t := stats.NewTable(
		"Ablation: unsplit memory operations (§4.5 extension, modified ISA)",
		"bench", "expand split", "expand fused", "IPC split", "IPC fused", "static split", "static fused")
	var es, ef, is, ifu []float64
	for _, r := range rows {
		t.Row(r.Bench, r.SplitExpand, r.FusedExpand, r.SplitIPC, r.FusedIPC,
			r.SplitStaticB, r.FusedStaticB)
		es = append(es, r.SplitExpand)
		ef = append(ef, r.FusedExpand)
		is = append(is, r.SplitIPC)
		ifu = append(ifu, r.FusedIPC)
	}
	t.Row("Avg/GeoM", stats.Mean(es), stats.Mean(ef), stats.GeoMean(is), stats.GeoMean(ifu), "", "")
	return t.String()
}

// ThresholdRow sweeps the hot-trace threshold: lower thresholds translate
// more (and sooner) at higher translation cost per retired instruction.
type ThresholdRow struct {
	Threshold     int
	TransFraction float64 // V-insts retired in translated mode
	CostShare     float64 // translation work units per total V-inst
	Fragments     float64 // mean fragments per workload
}

// Threshold sweeps the interpret/translate threshold over all workloads.
func Threshold(scale int, thresholds []int) []ThresholdRow {
	var rows []ThresholdRow
	for _, thr := range thresholds {
		var frac, cost, frags []float64
		for _, w := range workload.All(scale) {
			out := MustRun(RunSpec{Workload: w, Machine: ILDPModified,
				Chain: translate.SWPredRAS, HotThreshold: thr})
			frac = append(frac, float64(out.VM.TransVInsts)/float64(out.VM.TotalVInsts()))
			cost = append(cost, float64(out.VM.TranslateCost)/float64(out.VM.TotalVInsts()))
			frags = append(frags, float64(out.VM.Fragments))
		}
		rows = append(rows, ThresholdRow{
			Threshold:     thr,
			TransFraction: stats.Mean(frac),
			CostShare:     stats.Mean(cost),
			Fragments:     stats.Mean(frags),
		})
	}
	return rows
}

// FormatThreshold renders the threshold sweep.
func FormatThreshold(rows []ThresholdRow) string {
	t := stats.NewTable(
		"Ablation: hot-trace threshold (the paper uses 50)",
		"threshold", "translated frac", "xlate cost / V-inst", "fragments")
	for _, r := range rows {
		t.Row(r.Threshold, r.TransFraction, r.CostShare, r.Fragments)
	}
	return t.String()
}

// SuperblockRow sweeps the maximum superblock size (§4.1: the paper found
// 50 "not large enough to provide performance benefits from code
// straightening"; 200 is the baseline).
type SuperblockRow struct {
	MaxSize   int
	IPC       float64 // geomean straightened-superscalar IPC
	Fragments float64
	Exits     float64 // mean VM exits (shorter blocks exit more)
}

// Superblock sweeps the maximum superblock size on the straightened
// machine.
func Superblock(scale, hotThreshold int, sizes []int) []SuperblockRow {
	var rows []SuperblockRow
	for _, size := range sizes {
		var ipc, frags, exits []float64
		for _, w := range workload.All(scale) {
			out := MustRun(RunSpec{Workload: w, Machine: Straightened,
				Chain: translate.SWPredRAS, Timing: true,
				HotThreshold: hotThreshold, MaxSB: size})
			ipc = append(ipc, out.Timing.IPC())
			frags = append(frags, float64(out.VM.Fragments))
			exits = append(exits, float64(out.VM.Exits))
		}
		rows = append(rows, SuperblockRow{
			MaxSize:   size,
			IPC:       stats.GeoMean(ipc),
			Fragments: stats.Mean(frags),
			Exits:     stats.Mean(exits),
		})
	}
	return rows
}

// FormatSuperblock renders the superblock-size sweep.
func FormatSuperblock(rows []SuperblockRow) string {
	t := stats.NewTable(
		"Ablation: maximum superblock size (§4.1; the paper uses 200)",
		"max size", "straightened IPC", "fragments", "VM exits")
	for _, r := range rows {
		t.Row(r.MaxSize, r.IPC, r.Fragments, r.Exits)
	}
	return t.String()
}

package experiments

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/uarch"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// ChaosSpec describes one differential chaos run: the workload executes
// twice, once on a pure Alpha interpreter (the oracle) and once on the
// DBT VM with a deterministic fault injector attached and every
// self-healing mechanism forced on (install-time verification, paranoid
// entry re-checks, retranslate-with-backoff / quarantine). The run
// passes only if the faulted VM finishes with architected state
// bit-identical to the oracle: registers, PC, halt/exit status, console
// output, and all of memory.
type ChaosSpec struct {
	Workload *workload.Spec
	Machine  Machine

	// Seed selects the fault schedule (see faultinject.Config.Seed).
	Seed uint64
	// Kinds restricts injection to the listed fault kinds (nil = all).
	Kinds []faultinject.Kind
	// EntryRate / TranslateRate / MaxFaults parameterise the schedule;
	// zero values take the faultinject defaults.
	EntryRate     int
	TranslateRate int
	MaxFaults     int

	// MaxV is a safety budget on both runs (0 = run to completion).
	// Exhausting it is reported as an error, never as a verdict: the
	// oracle only compares completed runs.
	MaxV int64

	// Timing attaches the machine's timing model (and Prof, if set, to
	// both the VM and the model) so cycle conservation can be checked
	// across recovery pseudo-frames.
	Timing  bool
	Metrics *metrics.Registry
	Prof    *prof.Profiler

	// Store, when non-nil, attaches a shared fragment store to the VM.
	// A fault-injected VM bypasses the store entirely (see vm.Config),
	// so the run must be bit-identical with and without one — the field
	// exists precisely so tests can pin that invariant.
	Store *fragstore.Store

	// Tune and Attach are the observability hooks shared with RunSpec:
	// Tune receives the final VM configuration before construction,
	// Attach the loaded VM before it runs. Neither may change
	// translation semantics — the oracle comparison would catch it.
	Tune   func(*vm.Config)
	Attach func(*vm.VM)
}

// ChaosOutcome is the result of one differential chaos run.
type ChaosOutcome struct {
	Spec      ChaosSpec
	VM        vm.Stats
	Timing    uarch.Result
	Faults    faultinject.Counts // faults actually applied, by kind
	Decisions uint64             // injector decision points consulted

	// Mismatch is empty when the faulted run's final architected state is
	// bit-identical to the oracle's; otherwise it names the first
	// divergence found.
	Mismatch string
}

// RunChaos executes one differential chaos run. A non-nil error means
// the run could not be compared (assembly failure, an unrecovered fault
// aborting the VM, or the budget expiring); a state divergence is not an
// error — it is reported in Outcome.Mismatch so harnesses can show the
// seed and fault schedule that produced it.
func RunChaos(spec ChaosSpec) (*ChaosOutcome, error) {
	prog, err := spec.Workload.Program()
	if err != nil {
		return nil, err
	}

	// The oracle: the same program, purely interpreted.
	oracle := emu.New(mem.New())
	if err := oracle.LoadProgram(prog); err != nil {
		return nil, err
	}
	if err := oracle.Run(spec.MaxV); err != nil {
		return nil, fmt.Errorf("chaos oracle (%s): %w", spec.Workload.Name, err)
	}

	cfg := vm.DefaultConfig()
	cfg.Verify = true
	cfg.Paranoid = true
	cfg.SelfHeal = true
	cfg.Metrics = spec.Metrics
	cfg.Prof = spec.Prof
	cfg.Store = spec.Store
	cfg.Faults = &faultinject.Config{
		Seed:          spec.Seed,
		EntryRate:     spec.EntryRate,
		TranslateRate: spec.TranslateRate,
		Kinds:         spec.Kinds,
		MaxFaults:     spec.MaxFaults,
	}

	ooo, ildpM, err := attachMachine(&cfg, spec.Machine, spec.Timing, spec.Prof)
	if err != nil {
		return nil, err
	}

	if tune := spec.Tune; tune != nil {
		tune(&cfg)
	}
	v := vm.New(mem.New(), cfg)
	if err := v.LoadProgram(prog); err != nil {
		return nil, err
	}
	if attach := spec.Attach; attach != nil {
		attach(v)
	}
	if err := v.Run(spec.MaxV); err != nil {
		return nil, fmt.Errorf("chaos: seed %d, %s on %v: unrecovered fault: %w",
			spec.Seed, spec.Workload.Name, spec.Machine, err)
	}

	out := &ChaosOutcome{Spec: spec, VM: v.Stats}
	if ooo != nil {
		out.Timing = ooo.Finish()
	}
	if ildpM != nil {
		out.Timing = ildpM.Finish()
	}
	spec.Prof.Finish()
	out.Faults = v.Injector().Counts()
	out.Decisions = v.Injector().Decisions()
	out.Mismatch = diffState(v.CPU(), oracle)
	if spec.Metrics != nil {
		out.VM.Publish(spec.Metrics)
	}
	return out, nil
}

// diffState compares the faulted run's final architected state against
// the oracle's and returns the first divergence ("" when bit-identical).
func diffState(got, want *emu.CPU) string {
	if got.Halted != want.Halted {
		return fmt.Sprintf("halted: got %v, want %v", got.Halted, want.Halted)
	}
	if got.ExitStatus != want.ExitStatus {
		return fmt.Sprintf("exit status: got %d, want %d", got.ExitStatus, want.ExitStatus)
	}
	if got.PC != want.PC {
		return fmt.Sprintf("PC: got %#x, want %#x", got.PC, want.PC)
	}
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if got.Reg[r] != want.Reg[r] {
			return fmt.Sprintf("R%d: got %#x, want %#x", r, got.Reg[r], want.Reg[r])
		}
	}
	if got.ConsoleString() != want.ConsoleString() {
		return fmt.Sprintf("console: got %q, want %q", got.ConsoleString(), want.ConsoleString())
	}
	if ok, addr := mem.Equal(got.Mem, want.Mem); !ok {
		return fmt.Sprintf("memory differs at %#x", addr)
	}
	return ""
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): translated-code statistics (Table 2), translation
// overhead (§4.2), chaining-method mispredictions and instruction-count
// expansion (Figs. 4-5), code-straightening IPC (Fig. 6), output-usage
// statistics (Fig. 7), the headline IPC comparison (Fig. 8), and the
// machine-parameter sensitivity sweep (Fig. 9).
package experiments

import (
	"fmt"
	"math"

	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/uarch"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// Machine selects one of the four simulated machines of §4.1.
type Machine uint8

const (
	// Original: native Alpha on the out-of-order superscalar (no DBT).
	Original Machine = iota
	// Straightened: the code-straightening-only DBT on the superscalar.
	Straightened
	// ILDPBasic: the basic accumulator ISA on the ILDP microarchitecture.
	ILDPBasic
	// ILDPModified: the modified accumulator ISA on the ILDP
	// microarchitecture.
	ILDPModified
)

var machineNames = [...]string{"original", "straightened", "ildp-basic", "ildp-modified"}

func (m Machine) String() string {
	if int(m) < len(machineNames) {
		return machineNames[m]
	}
	return "machine?"
}

// RunSpec describes one simulation run.
type RunSpec struct {
	Workload *workload.Spec
	Machine  Machine
	Chain    translate.ChainMode
	NumAcc   int   // accumulators (default 4)
	PEs      int   // ILDP processing elements (default 8)
	CommLat  int64 // ILDP global wire latency (default 0)
	SmallD   bool  // 8KB 2-way D-cache instead of 32KB 4-way
	FuseMem  bool  // §4.5 extension: unsplit memory operations
	NoHWRAS  bool  // disable the conventional RAS (Fig. 6 variants)
	Timing   bool  // attach the timing model
	MaxV     int64 // V-instruction budget (0 = run to completion)

	HotThreshold int // default 50 (the paper's threshold)
	MaxSB        int // maximum superblock size (default 200)
	RASSize      int // dual-address RAS entries (default 16)

	// Metrics, when non-nil, receives the run's fragment lifecycle
	// events during execution plus the aggregate VM statistics and (for
	// timed runs) the timing-model summary at the end. Collection never
	// changes simulation results.
	Metrics *metrics.Registry

	// Prof, when non-nil, is attached to both the VM and the timing
	// model so the run's fragment activity and cycle attribution land in
	// one execution profile. Profiling never changes simulation results.
	Prof *prof.Profiler

	// Tune, when non-nil, receives the fully built VM configuration
	// immediately before the VM is constructed. It is the attachment
	// point for observability hooks (vm.Config.Poll) and must not
	// change translation semantics.
	Tune func(*vm.Config)

	// Attach, when non-nil, receives the constructed VM after the
	// program is loaded and before it runs, on the goroutine that will
	// run it — where telemetry sessions install their probes.
	Attach func(*vm.VM)
}

// Outcome is the result of one run.
type Outcome struct {
	Spec   RunSpec
	VM     vm.Stats
	Timing uarch.Result
	PEDist []float64
}

// Run executes one simulation.
func Run(spec RunSpec) (*Outcome, error) {
	if spec.NumAcc <= 0 {
		spec.NumAcc = ildp.DefaultAccumulators
	}
	if spec.PEs <= 0 {
		spec.PEs = 8
	}
	if spec.HotThreshold <= 0 {
		spec.HotThreshold = vm.DefaultHotThreshold
	}

	prog, err := spec.Workload.Program()
	if err != nil {
		return nil, err
	}

	cfg := vm.DefaultConfig()
	cfg.Chain = spec.Chain
	cfg.NumAcc = spec.NumAcc
	cfg.HotThreshold = spec.HotThreshold
	cfg.FuseMemOps = spec.FuseMem
	cfg.Metrics = spec.Metrics
	cfg.Prof = spec.Prof
	if spec.MaxSB > 0 {
		cfg.MaxSuperblock = spec.MaxSB
	}
	if spec.RASSize > 0 {
		cfg.RASSize = spec.RASSize
	}

	var ooo *uarch.OoO
	var ildpM *uarch.ILDP

	switch spec.Machine {
	case Original:
		// No DBT: interpret everything; the timing model sees the native
		// Alpha stream.
		cfg.HotThreshold = math.MaxInt32
		if spec.Timing {
			mc := uarch.DefaultOoO()
			mc.UseHWRAS = !spec.NoHWRAS
			ooo = uarch.NewOoO(mc)
			cfg.InterpSink = ooo
		}
	case Straightened:
		cfg.Straighten = true
		if spec.Timing {
			mc := uarch.DefaultOoO()
			mc.UseHWRAS = false
			mc.DualRASTrace = spec.Chain == translate.SWPredRAS && !spec.NoHWRAS
			if spec.NoHWRAS && spec.Chain == translate.SWPredRAS {
				// Fig. 6's "straightened without RAS" pairs sw_pred chaining
				// with no return prediction; callers normally pass SWPred.
				mc.DualRASTrace = false
			}
			ooo = uarch.NewOoO(mc)
			cfg.Sink = ooo
		}
	case ILDPBasic, ILDPModified:
		cfg.Form = ildp.Basic
		if spec.Machine == ILDPModified {
			cfg.Form = ildp.Modified
		}
		if spec.Timing {
			mc := uarch.DefaultILDP()
			mc.PEs = spec.PEs
			mc.CommLat = spec.CommLat
			mc.DualRASTrace = spec.Chain == translate.SWPredRAS
			mc.CacheOpts.Replicas = spec.PEs
			if spec.SmallD {
				mc.CacheOpts.DSizeBytes = 8 << 10
				mc.CacheOpts.DWays = 2
			}
			ildpM = uarch.NewILDP(mc)
			cfg.Sink = ildpM
		}
	default:
		return nil, fmt.Errorf("experiments: unknown machine %v", spec.Machine)
	}

	if spec.Prof != nil {
		if ooo != nil {
			ooo.SetProfiler(spec.Prof)
		}
		if ildpM != nil {
			ildpM.SetProfiler(spec.Prof)
		}
	}

	if tune := spec.Tune; tune != nil {
		tune(&cfg)
	}
	v := vm.New(mem.New(), cfg)
	if err := v.LoadProgram(prog); err != nil {
		return nil, err
	}
	if attach := spec.Attach; attach != nil {
		attach(v)
	}
	if err := v.Run(spec.MaxV); err != nil {
		return nil, fmt.Errorf("%s on %v: %w", spec.Workload.Name, spec.Machine, err)
	}

	out := &Outcome{Spec: spec, VM: v.Stats}
	if ooo != nil {
		out.Timing = ooo.Finish()
	}
	if ildpM != nil {
		out.Timing = ildpM.Finish()
		out.PEDist = ildpM.PEDistribution()
	}
	spec.Prof.Finish()
	if spec.Metrics != nil {
		out.VM.Publish(spec.Metrics)
		if spec.Timing {
			prefix := "uarch.ildp"
			if ooo != nil {
				prefix = "uarch.ooo"
			}
			out.Timing.Publish(spec.Metrics, prefix)
		}
	}
	return out, nil
}

// MustRun is Run for drivers where errors are programming bugs.
func MustRun(spec RunSpec) *Outcome {
	out, err := Run(spec)
	if err != nil {
		panic(err)
	}
	return out
}

package experiments

import (
	"github.com/ildp/accdbt/internal/stats"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// Table2Row is one benchmark's translated-instruction statistics (paper
// Table 2): dynamic instruction expansion and copy percentage for the
// Basic (B) and Modified (M) ISAs, static code-size expansion, and the
// translation overhead in Alpha instructions per translated instruction.
type Table2Row struct {
	Bench      string
	RelDynB    float64
	RelDynM    float64
	CopyPctB   float64
	CopyPctM   float64
	RelStaticB float64
	RelStaticM float64
	Overhead   float64
}

// Table2 reproduces the paper's Table 2 over all workloads.
func Table2(scale int, hotThreshold int) []Table2Row {
	return perWorkload(scale, func(w *workload.Spec) Table2Row {
		basic := MustRun(RunSpec{
			Workload: w, Machine: ILDPBasic, Chain: translate.SWPredRAS,
			HotThreshold: hotThreshold,
		})
		mod := MustRun(RunSpec{
			Workload: w, Machine: ILDPModified, Chain: translate.SWPredRAS,
			HotThreshold: hotThreshold,
		})
		row := Table2Row{Bench: w.Name}
		// Dynamic expansion: I-ISA instructions executed per V-ISA
		// instruction retired, both measured over translated-code
		// execution (NOPs are removed by translation and excluded from
		// the V-ISA counts, as in the paper).
		row.RelDynB = ratio(basic.VM.TransIInsts, basic.VM.TransVInsts)
		row.RelDynM = ratio(mod.VM.TransIInsts, mod.VM.TransVInsts)
		row.CopyPctB = 100 * ratio(basic.VM.CopiesExecuted, basic.VM.TransIInsts)
		row.CopyPctM = 100 * ratio(mod.VM.CopiesExecuted, mod.VM.TransIInsts)
		row.RelStaticB = ratio(uint64(basic.VM.StaticCodeBytes), uint64(basic.VM.StaticSrcBytes))
		row.RelStaticM = ratio(uint64(mod.VM.StaticCodeBytes), uint64(mod.VM.StaticSrcBytes))
		row.Overhead = float64(mod.VM.TranslateCost) / float64(mod.VM.SrcInstsTranslated)
		return row
	})
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// FormatTable2 renders Table 2 with the paper's averages row.
func FormatTable2(rows []Table2Row) string {
	t := stats.NewTable(
		"Table 2. Translated instruction statistics",
		"bench", "dyn B", "dyn M", "copy% B", "copy% M", "static B", "static M", "xlate inst")
	var db, dm, cb, cm, sb, sm, ov []float64
	for _, r := range rows {
		t.Row(r.Bench, r.RelDynB, r.RelDynM, r.CopyPctB, r.CopyPctM,
			r.RelStaticB, r.RelStaticM, r.Overhead)
		db = append(db, r.RelDynB)
		dm = append(dm, r.RelDynM)
		cb = append(cb, r.CopyPctB)
		cm = append(cm, r.CopyPctM)
		sb = append(sb, r.RelStaticB)
		sm = append(sm, r.RelStaticM)
		ov = append(ov, r.Overhead)
	}
	t.Row("Avg.", stats.Mean(db), stats.Mean(dm), stats.Mean(cb), stats.Mean(cm),
		stats.Mean(sb), stats.Mean(sm), stats.Mean(ov))
	return t.String()
}

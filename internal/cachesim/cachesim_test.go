package cachesim

import "testing"

func TestHitAfterMiss(t *testing.T) {
	memory := &Memory{Latency: 72, Burst: 4}
	c := New("D$", 32<<10, 64, 4, 2, LRU, memory)
	lat := c.Access(0x1000, false)
	if lat != 2+72+4 {
		t.Errorf("cold miss latency = %d, want 78", lat)
	}
	lat = c.Access(0x1000, false)
	if lat != 2 {
		t.Errorf("hit latency = %d, want 2", lat)
	}
	// Same line, different word: still a hit.
	if lat = c.Access(0x1038, false); lat != 2 {
		t.Errorf("same-line hit latency = %d", lat)
	}
	if c.Misses != 1 || c.Accesses != 3 {
		t.Errorf("misses=%d accesses=%d", c.Misses, c.Accesses)
	}
}

func TestLRUEviction(t *testing.T) {
	memory := &Memory{Latency: 10}
	// 2 sets x 2 ways x 64B = 256B cache.
	c := New("tiny", 256, 64, 2, 1, LRU, memory)
	// Three blocks in the same set: stride = sets*64 = 128.
	a, b, d := uint64(0), uint64(128*2), uint64(128*4)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // refresh a
	c.Access(d, false) // evicts b
	if lat := c.Access(a, false); lat != 1 {
		t.Error("a was evicted, want LRU to keep it")
	}
	if lat := c.Access(b, false); lat == 1 {
		t.Error("b should have been evicted")
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	h := NewHierarchy(DefaultOptions())
	// First access: L1 miss + L2 miss + memory.
	lat := h.D[0].Access(0x5000, false)
	if lat != 2+8+72+4 {
		t.Errorf("L1+L2+mem = %d, want 86", lat)
	}
	// L1 hit.
	if lat = h.D[0].Access(0x5000, false); lat != 2 {
		t.Errorf("L1 hit = %d", lat)
	}
	// Evict from tiny range is hard with 32KB; instead check L2 hit path:
	// a different line in the same L2 line (128B) but different L1 line
	// (64B): L1 miss, L2 hit.
	if lat = h.D[0].Access(0x5040, false); lat != 2+8 {
		t.Errorf("L1 miss L2 hit = %d, want 10", lat)
	}
}

func TestReplicatedDCaches(t *testing.T) {
	h := NewHierarchy(Options{DSizeBytes: 8 << 10, DWays: 2, Replicas: 8})
	if len(h.D) != 8 {
		t.Fatalf("replicas = %d", len(h.D))
	}
	// Each replica misses independently.
	h.D[0].Access(0x100, false)
	if lat := h.D[1].Access(0x100, false); lat == 2 {
		t.Error("replica 1 hit without filling")
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	mk := func() *Cache {
		return New("r", 256, 64, 2, 1, Random, &Memory{Latency: 5})
	}
	seq := []uint64{0, 256, 512, 0, 768, 256, 1024, 0}
	run := func() (uint64, int64) {
		c := mk()
		var total int64
		for _, a := range seq {
			total += c.Access(a, false)
		}
		return c.Misses, total
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 || t1 != t2 {
		t.Error("random replacement is not deterministic across runs")
	}
}

func TestICacheDirectMapped(t *testing.T) {
	h := NewHierarchy(DefaultOptions())
	// Direct-mapped 32KB, 128B lines: 256 sets. Two addresses 32KB apart
	// conflict.
	h.I.Access(0x0, false)
	h.I.Access(32<<10, false)
	if lat := h.I.Access(0x0, false); lat == 0 {
		t.Error("direct-mapped conflict should have evicted")
	}
}

// Package cachesim models the memory hierarchy of Table 1: per-level
// set-associative caches with LRU or random replacement feeding a
// fixed-latency memory. Accesses return total latency in cycles; the
// timing models add it to load/store execution.
package cachesim

// Replacement policy.
type Policy uint8

const (
	LRU Policy = iota
	Random
)

// Cache is one cache level.
type Cache struct {
	name     string
	lineBits uint
	sets     int
	ways     int
	latency  int64
	policy   Policy
	lines    []line
	next     Level // next level (L2 or memory)
	rng      uint64

	Accesses uint64
	Misses   uint64
}

type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

// Level is anything that can service a miss.
type Level interface {
	Access(addr uint64, write bool) int64
}

// Memory is the fixed-latency DRAM model (72-cycle latency, 64-bit wide,
// 4-cycle burst: a 64-byte line transfer costs 72 + 8*4/2... modelled as
// latency + burst cycles per line).
type Memory struct {
	Latency int64
	Burst   int64

	Accesses uint64
}

// Access implements Level.
func (m *Memory) Access(addr uint64, write bool) int64 {
	m.Accesses++
	return m.Latency + m.Burst
}

// DefaultMemory returns the paper's 72-cycle, 4-cycle-burst memory.
func DefaultMemory() *Memory { return &Memory{Latency: 72, Burst: 4} }

// New builds a cache level. size and lineSize are in bytes.
func New(name string, size, lineSize, ways int, latency int64, policy Policy, next Level) *Cache {
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	sets := size / lineSize / ways
	if sets <= 0 {
		panic("cachesim: bad geometry for " + name)
	}
	return &Cache{
		name:     name,
		lineBits: lineBits,
		sets:     sets,
		ways:     ways,
		latency:  latency,
		policy:   policy,
		lines:    make([]line, sets*ways),
		next:     next,
		rng:      0x9E3779B97F4A7C15,
	}
}

func (c *Cache) set(addr uint64) ([]line, uint64) {
	block := addr >> c.lineBits
	s := int(block) % c.sets
	return c.lines[s*c.ways : (s+1)*c.ways], block
}

func (c *Cache) victim(set []line) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	if c.policy == Random {
		// xorshift64 for deterministic "random" replacement.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(len(set)))
	}
	v := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[v].lru {
			v = i
		}
	}
	return v
}

// Access implements Level: it returns the total latency to service the
// access, filling on a miss.
func (c *Cache) Access(addr uint64, write bool) int64 {
	c.Accesses++
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.Accesses
			return c.latency
		}
	}
	c.Misses++
	lat := c.latency
	if c.next != nil {
		lat += c.next.Access(addr, write)
	}
	v := c.victim(set)
	set[v] = line{valid: true, tag: tag, lru: c.Accesses}
	return lat
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy bundles the Table 1 memory system for one simulated machine.
type Hierarchy struct {
	I   *Cache
	D   []*Cache // one per PE when replicated; a single entry otherwise
	L2  *Cache
	Mem *Memory
}

// Options configures a hierarchy.
type Options struct {
	DSizeBytes int // 32 KB or 8 KB
	DWays      int // 4 or 2
	Replicas   int // 1 for shared; number of PEs when replicated
}

// DefaultOptions is the superscalar configuration: shared 32KB 4-way D$.
func DefaultOptions() Options { return Options{DSizeBytes: 32 << 10, DWays: 4, Replicas: 1} }

// NewHierarchy builds I/D/L2/memory per Table 1.
func NewHierarchy(opt Options) *Hierarchy {
	memory := DefaultMemory()
	l2 := New("L2", 1<<20, 128, 4, 8, Random, memory)
	h := &Hierarchy{
		I:   New("I$", 32<<10, 128, 1, 0, LRU, l2),
		L2:  l2,
		Mem: memory,
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 1
	}
	for i := 0; i < opt.Replicas; i++ {
		h.D = append(h.D, New("D$", opt.DSizeBytes, 64, opt.DWays, 2, Random, l2))
	}
	return h
}

package tcache

import (
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/translate"
)

func res(vstart uint64, insts ...ildp.Inst) *translate.Result {
	return &translate.Result{VStart: vstart, Insts: insts}
}

func alu() ildp.Inst {
	return ildp.Inst{
		Kind: ildp.KindALU, Op: alpha.OpADDQ, Acc: 0, WritesAcc: true,
		SrcA: ildp.AccSrc(), SrcB: ildp.ImmSrc(1),
		Dest: alpha.RegZero, Frag: ildp.NoFrag,
	}
}

func exitTo(v uint64) ildp.Inst {
	return ildp.Inst{
		Kind: ildp.KindCallTrans, VAddr: v,
		Acc: ildp.NoAcc, Dest: alpha.RegZero, Frag: ildp.NoFrag,
	}
}

func condExitTo(v uint64) ildp.Inst {
	return ildp.Inst{
		Kind: ildp.KindCallTransCond, Op: alpha.OpBNE, SrcA: ildp.AccSrc(), Acc: 0,
		VAddr: v, Dest: alpha.RegZero, Frag: ildp.NoFrag,
	}
}

func TestInstallAndLookup(t *testing.T) {
	c := New(ildp.Modified)
	f, err := c.Install(res(0x1000, alu(), exitTo(0x2000)))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup(0x1000); got != f {
		t.Error("Lookup did not find installed fragment")
	}
	if c.Lookup(0x2000) != nil {
		t.Error("Lookup found a phantom fragment")
	}
	if c.Frag(f.ID) != f || c.Frag(999) != nil || c.Frag(ildp.NoFrag) != nil {
		t.Error("Frag lookup wrong")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	if _, err := c.Install(res(0x1000, alu(), exitTo(0x3000))); err == nil {
		t.Error("duplicate install accepted")
	}
}

func TestIAddrLayout(t *testing.T) {
	c := New(ildp.Modified)
	f, err := c.Install(res(0x1000, alu(), alu(), exitTo(0x2000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.IAddrs) != 3 || len(f.Sizes) != 3 {
		t.Fatalf("layout arrays wrong: %d/%d", len(f.IAddrs), len(f.Sizes))
	}
	for i := 1; i < len(f.IAddrs); i++ {
		if f.IAddrs[i] != f.IAddrs[i-1]+uint64(f.Sizes[i-1]) {
			t.Errorf("IAddr %d not contiguous", i)
		}
	}
	// Fragments start after the dispatch routine.
	_, daddrs := c.Dispatch()
	if f.IAddr <= daddrs[len(daddrs)-1] {
		t.Error("fragment overlaps dispatch routine")
	}
}

func TestForwardPatch(t *testing.T) {
	c := New(ildp.Modified)
	// Fragment A exits to 0x2000, which is not yet translated.
	fa, err := c.Install(res(0x1000, alu(), condExitTo(0x2000), exitTo(0x3000)))
	if err != nil {
		t.Fatal(err)
	}
	if fa.Insts[1].Kind != ildp.KindCallTransCond {
		t.Fatal("exit should be call-translator before patching")
	}
	// Installing B at 0x2000 patches A's exit.
	fb, err := c.Install(res(0x2000, alu(), exitTo(0x4000)))
	if err != nil {
		t.Fatal(err)
	}
	if fa.Insts[1].Kind != ildp.KindCondBranch || fa.Insts[1].Frag != fb.ID {
		t.Errorf("exit not patched: %s", fa.Insts[1].String())
	}
	if c.Patches == 0 {
		t.Error("patch counter not incremented")
	}
}

func TestBackwardLinkAtInstall(t *testing.T) {
	c := New(ildp.Modified)
	fb, err := c.Install(res(0x2000, alu(), exitTo(0x9000)))
	if err != nil {
		t.Fatal(err)
	}
	// A fragment whose exit targets the already-installed B links
	// immediately.
	fa, err := c.Install(res(0x1000, alu(), exitTo(0x2000)))
	if err != nil {
		t.Fatal(err)
	}
	if fa.Insts[1].Kind != ildp.KindBranch || fa.Insts[1].Frag != fb.ID {
		t.Errorf("exit not linked at install: %s", fa.Insts[1].String())
	}
}

func TestSelfLink(t *testing.T) {
	c := New(ildp.Modified)
	// A loop fragment whose conditional exit targets its own start.
	f, err := c.Install(res(0x1000, alu(), condExitTo(0x1000), exitTo(0x2000)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Insts[1].Kind != ildp.KindCondBranch || f.Insts[1].Frag != f.ID {
		t.Errorf("self-link failed: %s", f.Insts[1].String())
	}
}

func TestDispatchRoutineShape(t *testing.T) {
	c := New(ildp.Basic)
	insts, addrs := c.Dispatch()
	if len(insts) != DispatchLen {
		t.Fatalf("dispatch is %d instructions, want %d", len(insts), DispatchLen)
	}
	if len(addrs) != len(insts) {
		t.Fatal("address array mismatch")
	}
	if insts[len(insts)-1].Kind != ildp.KindJumpInd {
		t.Error("dispatch must end in an indirect jump")
	}
	for i := 0; i < len(insts)-1; i++ {
		if insts[i].IsControl() {
			t.Errorf("dispatch body inst %d is control", i)
		}
	}
}

func TestStraightenedLayoutUses4Bytes(t *testing.T) {
	c := New(ildp.Modified)
	r := res(0x1000, alu(), alu(), exitTo(0x2000))
	r.Straightened = true
	f, err := c.Install(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range f.Sizes {
		if s != 4 {
			t.Errorf("straightened inst %d has size %d, want 4", i, s)
		}
	}
}

func TestCodeBytes(t *testing.T) {
	c := New(ildp.Modified)
	r := res(0x1000, alu(), exitTo(0x2000))
	r.CodeBytes = 42
	if _, err := c.Install(r); err != nil {
		t.Fatal(err)
	}
	if c.CodeBytes() != 42 {
		t.Errorf("CodeBytes = %d, want 42", c.CodeBytes())
	}
}

func TestCapacityFlush(t *testing.T) {
	c := New(ildp.Modified)
	c.SetCapacity(64)
	r1 := res(0x1000, alu(), exitTo(0x2000))
	r1.CodeBytes = 40
	if _, err := c.Install(r1); err != nil {
		t.Fatal(err)
	}
	r2 := res(0x2000, alu(), exitTo(0x3000))
	r2.CodeBytes = 40
	f2, err := c.Install(r2) // 40+40 > 64: flush first
	if err != nil {
		t.Fatal(err)
	}
	if c.Flushes != 1 {
		t.Errorf("flushes = %d, want 1", c.Flushes)
	}
	if c.Lookup(0x1000) != nil {
		t.Error("flushed fragment still resolvable")
	}
	if got := c.Lookup(0x2000); got != f2 {
		t.Error("post-flush install not resolvable")
	}
	if f2.ID != 0 {
		t.Errorf("post-flush IDs should restart: got %d", f2.ID)
	}
	// Reinstalling the flushed start address must work (second chance).
	r1b := res(0x1000, alu(), exitTo(0x2000))
	r1b.CodeBytes = 10
	f1b, err := c.Install(r1b)
	if err != nil {
		t.Fatal(err)
	}
	if f1b.Insts[1].Kind != ildp.KindBranch || f1b.Insts[1].Frag != f2.ID {
		t.Error("post-flush linking broken")
	}
}

func TestFlushKeepsDispatch(t *testing.T) {
	c := New(ildp.Basic)
	before, beforeAddrs := c.Dispatch()
	c.Flush()
	after, afterAddrs := c.Dispatch()
	if len(before) != len(after) || beforeAddrs[0] != afterAddrs[0] {
		t.Error("flush disturbed the dispatch routine")
	}
	// New fragments still land after dispatch.
	f, err := c.Install(res(0x1000, alu(), exitTo(0x2000)))
	if err != nil {
		t.Fatal(err)
	}
	if f.IAddr <= afterAddrs[len(afterAddrs)-1] {
		t.Error("post-flush fragment overlaps dispatch")
	}
}

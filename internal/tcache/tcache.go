// Package tcache implements the translation cache of the co-designed VM:
// fragment storage with I-address layout, the PC translation lookup table,
// fragment linking (patching call-translator exits into direct branches
// once their targets are translated), and the shared dispatch routine.
package tcache

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/translate"
)

// Base is the I-address where the translation cache starts; the dispatch
// routine occupies the first bytes.
const Base uint64 = 0x4000_0000

// DispatchLen is the dispatch routine length in instructions, including
// its final indirect jump (§3.2: "The dispatch code takes 20
// instructions").
const DispatchLen = 20

// Fragment is one translated superblock installed in the cache.
type Fragment struct {
	ID     int32
	VStart uint64
	Insts  []ildp.Inst

	// IAddr is the fragment's base I-address; IAddrs the per-instruction
	// addresses (laid out by encoded size for I-cache modelling).
	IAddr  uint64
	IAddrs []uint64
	Sizes  []uint8

	PEI        []uint64
	PEIRecover [][]translate.RegAcc

	// Strands, ExitLive, and EndLive carry the translation metadata the
	// static fragment verifier checks installed code against (see
	// translate.Result for their semantics). Strands is nil for
	// straightened fragments.
	Strands  []int
	ExitLive [][]alpha.Reg
	EndLive  []alpha.Reg

	SrcCount  int
	CodeBytes int
	SrcBytes  int

	// ExecCount counts entries into this fragment.
	ExecCount uint64

	// Straightened marks a code-straightening-only fragment (see
	// translate.Result.Straightened).
	Straightened bool

	// StoreKey is the content address of the shared fragment-store
	// artifact this fragment was installed from (all zero when the
	// fragment was translated privately, without a store). The key is
	// kept as raw bytes — not a fragstore type — because provenance is
	// the only thing the per-VM cache knows about the store: chain
	// links, patched exits, and shadow copies in this Fragment are
	// private mutations of a cloned instruction stream, never of the
	// store's immutable entry.
	StoreKey [32]byte

	// Shared marks a fragment whose translation was produced by a
	// different session (or loaded from a persisted store) and reached
	// this VM as a shared-store hit.
	Shared bool

	// pristineInsts / pristinePEI are install-time deep copies of the
	// mutable fragment image, maintained when the cache's shadow mode is
	// on (see EnableShadow). Legitimate post-install mutation — exit
	// patching — updates the shadow in lockstep, so any divergence means
	// the installed code was tampered with after install.
	pristineInsts []ildp.Inst
	pristinePEI   []uint64

	// strand statistics, computed lazily for the profiler.
	strandN, strandMax int
	strandsDone        bool
}

// snapshotPristine captures the fragment's current instruction stream and
// PEI table as the integrity baseline.
func (f *Fragment) snapshotPristine() {
	f.pristineInsts = append([]ildp.Inst(nil), f.Insts...)
	f.pristinePEI = append([]uint64(nil), f.PEI...)
}

// IntegrityOK compares the installed fragment against its install-time
// pristine copy; any difference — a single flipped bit in any
// instruction field or PEI entry — reports false. Always true when
// shadow mode is off (no baseline to compare against). The comparison is
// the VM's paranoid-mode entry check: unlike the static verifier it
// catches semantics-preserving-looking corruption (immediates,
// displacements) and covers straightened fragments, which carry no
// I-ISA invariants.
func (f *Fragment) IntegrityOK() bool {
	if f.pristineInsts == nil {
		return true
	}
	if len(f.Insts) != len(f.pristineInsts) || len(f.PEI) != len(f.pristinePEI) {
		return false
	}
	for i := range f.Insts {
		if f.Insts[i] != f.pristineInsts[i] {
			return false
		}
	}
	for i := range f.PEI {
		if f.PEI[i] != f.pristinePEI[i] {
			return false
		}
	}
	return true
}

// StrandStats returns the number of strands in the fragment and the
// longest strand's length in instructions (0, 0 for straightened code).
// Computed once and memoized; fragments are immutable after install
// apart from exit-patching, which does not change strand structure.
func (f *Fragment) StrandStats() (n, maxLen int) {
	if !f.strandsDone {
		f.strandsDone = true
		lens := map[int]int{}
		for _, s := range f.Strands {
			if s >= 0 {
				lens[s]++
			}
		}
		f.strandN = len(lens)
		for _, l := range lens {
			if l > f.strandMax {
				f.strandMax = l
			}
		}
	}
	return f.strandN, f.strandMax
}

// Cache is the translation cache. It is unbounded, as in the paper (§4.1:
// SPEC-sized programs fit comfortably; management overhead is negligible).
type Cache struct {
	form     ildp.Form
	frags    []*Fragment
	byVPC    map[uint64]int32
	next     uint64
	pending  map[uint64][]patchSite // V-target -> unlinked exit sites
	dispatch []ildp.Inst
	dispAddr []uint64

	// Patches counts call-translator exits converted to direct branches.
	Patches int

	// Invalidates counts single-fragment invalidations (recovery path).
	Invalidates int

	// shadow, when true, keeps a pristine copy of every installed
	// fragment for runtime integrity re-checks (vm paranoid mode).
	shadow bool

	// capacity is the flush threshold in code bytes (0 = unbounded, the
	// paper's configuration); Flushes counts whole-cache flushes.
	capacity int
	// Flushes counts whole-cache flushes triggered by the capacity limit.
	Flushes int

	// reg, when non-nil, receives install/chain/evict lifecycle events
	// and cache-level counters (nil = metrics disabled, zero cost).
	reg *metrics.Registry

	// prof, when non-nil, receives eviction events for the execution
	// tracer (nil = profiling disabled, zero cost).
	prof *prof.Profiler
}

type patchSite struct {
	frag int32
	idx  int
}

// New creates an empty cache for the given ISA form and builds the shared
// dispatch routine.
func New(form ildp.Form) *Cache {
	c := &Cache{
		form:    form,
		byVPC:   map[uint64]int32{},
		pending: map[uint64][]patchSite{},
		next:    Base,
	}
	c.buildDispatch()
	return c
}

// buildDispatch synthesises the 20-instruction shared dispatch routine: a
// hash of the V-ISA target, a two-probe table walk, tag compare, and the
// final register-indirect jump into the predicted fragment. The routine is
// modelled instruction-by-instruction so that fetch, execution bandwidth,
// and the (poorly predictable) final indirect jump cost what they cost on
// both microarchitectures; its table lookup is performed functionally by
// the executor at the final jump.
func (c *Cache) buildDispatch() {
	mk := func(kind ildp.Kind, op alpha.Op, ldst bool) ildp.Inst {
		inst := ildp.Inst{
			Kind: kind, Op: op,
			SrcA: ildp.GPRSrc(ildp.RegJTarget), SrcB: ildp.ImmSrc(0),
			Acc: 0, WritesAcc: kind == ildp.KindALU || kind == ildp.KindLoad,
			Dest: alpha.RegZero, Frag: ildp.NoFrag,
			Class: ildp.ClassChain,
		}
		_ = ldst
		return inst
	}
	// 19 work instructions + the final indirect jump.
	ops := []alpha.Op{
		alpha.OpSRL, alpha.OpXOR, alpha.OpAND, alpha.OpSLL, alpha.OpADDQ,
		alpha.OpSRL, alpha.OpXOR, alpha.OpAND, alpha.OpS8ADDQ, alpha.OpADDQ,
		alpha.OpADDQ, alpha.OpXOR, alpha.OpAND, alpha.OpADDQ, alpha.OpSLL,
		alpha.OpADDQ, alpha.OpXOR, alpha.OpBIS, alpha.OpADDQ,
	}
	for _, op := range ops {
		inst := mk(ildp.KindDispatchOp, op, false)
		c.dispatch = append(c.dispatch, inst)
	}
	c.dispatch = append(c.dispatch, ildp.Inst{
		Kind: ildp.KindJumpInd, SrcA: ildp.GPRSrc(ildp.RegJTarget),
		Acc: ildp.NoAcc, Dest: alpha.RegZero, Frag: ildp.NoFrag,
		Class: ildp.ClassChain,
	})
	for i := range c.dispatch {
		c.dispAddr = append(c.dispAddr, c.next)
		c.next += uint64(c.dispatch[i].EncodedSize(c.form))
	}
	// Round up to a line-ish boundary.
	c.next = (c.next + 63) &^ 63
}

// Dispatch returns the dispatch routine instructions and their I-addresses.
func (c *Cache) Dispatch() ([]ildp.Inst, []uint64) { return c.dispatch, c.dispAddr }

// Lookup returns the fragment translated from the given V-ISA address, or
// nil (the PC translation lookup table of Fig. 3).
func (c *Cache) Lookup(vpc uint64) *Fragment {
	if id, ok := c.byVPC[vpc]; ok {
		return c.frags[id]
	}
	return nil
}

// Frag returns a fragment by ID.
func (c *Cache) Frag(id int32) *Fragment {
	if id < 0 || int(id) >= len(c.frags) {
		return nil
	}
	return c.frags[id]
}

// Len returns the number of fragment ID slots, including slots emptied
// by Invalidate; iterate with Frag and skip nil.
func (c *Cache) Len() int { return len(c.frags) }

// Live returns the number of fragments currently installed.
func (c *Cache) Live() int {
	n := 0
	for _, f := range c.frags {
		if f != nil {
			n++
		}
	}
	return n
}

// CodeBytes returns the total encoded bytes of installed fragments.
func (c *Cache) CodeBytes() int {
	n := 0
	for _, f := range c.frags {
		if f != nil {
			n += f.CodeBytes
		}
	}
	return n
}

// Occupancy is a point-in-time summary of the cache's population and
// lifetime management counters, built for the telemetry plane's session
// introspection (DESIGN.md §13). It is a plain value: take it on the
// VM's goroutine (the cache is not safe for concurrent use) and hand it
// to whoever wants it.
type Occupancy struct {
	// Slots is the number of fragment ID slots ever allocated (including
	// slots emptied by Invalidate); Live the fragments currently
	// installed.
	Slots int `json:"slots"`
	Live  int `json:"live"`
	// CodeBytes is the encoded size of installed fragments; Capacity the
	// flush threshold (0 = unbounded).
	CodeBytes int `json:"code_bytes"`
	Capacity  int `json:"capacity,omitempty"`
	// PendingLinks counts exit sites still waiting for their targets to
	// be translated.
	PendingLinks int `json:"pending_links"`
	// Patches, Invalidates, and Flushes are the lifetime counters of the
	// same names.
	Patches     int `json:"patches"`
	Invalidates int `json:"invalidates,omitempty"`
	Flushes     int `json:"flushes,omitempty"`
}

// Occupancy summarises the cache's current population and counters.
func (c *Cache) Occupancy() Occupancy {
	pending := 0
	for _, sites := range c.pending {
		pending += len(sites)
	}
	return Occupancy{
		Slots:        c.Len(),
		Live:         c.Live(),
		CodeBytes:    c.CodeBytes(),
		Capacity:     c.capacity,
		PendingLinks: pending,
		Patches:      c.Patches,
		Invalidates:  c.Invalidates,
		Flushes:      c.Flushes,
	}
}

// SetCapacity sets a code-byte budget; installing past it flushes the
// whole cache first (Dynamo-style preemptive flush, §4.1). Zero restores
// the paper's unbounded configuration.
func (c *Cache) SetCapacity(bytes int) { c.capacity = bytes }

// Capacity returns the current code-byte budget (0 = unbounded).
func (c *Cache) Capacity() int { return c.capacity }

// EnableShadow turns on pristine shadow copies for subsequently
// installed fragments, the baseline for Fragment.IntegrityOK. Costs one
// extra copy of each fragment's instructions and PEI table.
func (c *Cache) EnableShadow() { c.shadow = true }

// SetMetrics attaches a metrics registry; the cache emits install,
// chain, and evict fragment lifecycle events into it. A nil registry
// disables emission (the default).
func (c *Cache) SetMetrics(reg *metrics.Registry) { c.reg = reg }

// SetProfiler attaches an execution profiler; the cache reports
// fragment evictions into it. A nil profiler disables emission.
func (c *Cache) SetProfiler(p *prof.Profiler) { c.prof = p }

// Flush evicts every fragment (the dispatch routine survives). Pending
// links are dropped; the VM re-translates on the next hot trace, which
// also gives sub-optimal early fragments a second chance — the paper notes
// there may be a performance cost in NOT occasionally flushing.
func (c *Cache) Flush() {
	if c.reg != nil {
		for _, f := range c.frags {
			if f == nil {
				continue
			}
			c.reg.Event(metrics.Event{Kind: metrics.EventEvict, Frag: f.ID,
				VStart: f.VStart, CodeBytes: f.CodeBytes, Detail: "capacity flush"})
		}
		c.reg.Counter("tcache.flushes").Inc()
		c.reg.Counter("tcache.evicted_fragments").Add(uint64(c.Live()))
	}
	if c.prof != nil {
		for _, f := range c.frags {
			if f == nil {
				continue
			}
			c.prof.Evict(f.ID, f.VStart)
		}
	}
	c.frags = c.frags[:0]
	c.byVPC = map[uint64]int32{}
	c.pending = map[uint64][]patchSite{}
	// Lay new fragments out after the dispatch routine again.
	c.next = c.dispAddr[len(c.dispAddr)-1] + 64
	c.next = (c.next + 63) &^ 63
	c.Flushes++
}

// Reset returns the cache to its post-New state: no fragments, no
// pending links, lifecycle counters zeroed, and the next I-address
// recomputed exactly as construction laid it out. Unlike Flush it emits
// no evict events and counts no flush — it is the cold start of a
// checkpoint restore, where translation state was never architected and
// is simply rebuilt, not evicted.
func (c *Cache) Reset() {
	c.frags = nil
	c.byVPC = map[uint64]int32{}
	c.pending = map[uint64][]patchSite{}
	last := len(c.dispatch) - 1
	c.next = c.dispAddr[last] + uint64(c.dispatch[last].EncodedSize(c.form))
	c.next = (c.next + 63) &^ 63
	c.Patches = 0
	c.Invalidates = 0
	c.Flushes = 0
}

// Install places a translation into the cache: it assigns I-addresses,
// links the new fragment's exits against already-translated targets, and
// patches other fragments' pending exits that were waiting for this
// fragment's start address.
func (c *Cache) Install(res *translate.Result) (*Fragment, error) {
	if c.capacity > 0 && c.CodeBytes()+res.CodeBytes > c.capacity && len(c.frags) > 0 {
		c.Flush()
	}
	if _, dup := c.byVPC[res.VStart]; dup {
		return nil, fmt.Errorf("tcache: duplicate fragment for %#x", res.VStart)
	}
	f := &Fragment{
		ID:           int32(len(c.frags)),
		VStart:       res.VStart,
		Insts:        res.Insts,
		PEI:          res.PEI,
		PEIRecover:   res.PEIRecover,
		Strands:      res.Strands,
		ExitLive:     res.ExitLive,
		EndLive:      res.EndLive,
		SrcCount:     res.SrcCount,
		CodeBytes:    res.CodeBytes,
		SrcBytes:     res.SrcBytes,
		Straightened: res.Straightened,
		IAddr:        c.next,
	}
	form := c.form
	for i := range f.Insts {
		size := f.Insts[i].EncodedSize(form)
		if f.Straightened {
			size = alpha.InstBytes
		}
		f.IAddrs = append(f.IAddrs, c.next)
		f.Sizes = append(f.Sizes, uint8(size))
		c.next += uint64(size)
	}
	c.next = (c.next + 63) &^ 63

	c.frags = append(c.frags, f)
	c.byVPC[f.VStart] = f.ID
	c.reg.Event(metrics.Event{Kind: metrics.EventInstall, Frag: f.ID,
		VStart: f.VStart, OutInsts: len(f.Insts), CodeBytes: f.CodeBytes})
	c.reg.Counter("tcache.installs").Inc()
	c.reg.Counter("tcache.code_bytes").Add(uint64(f.CodeBytes))

	// Link this fragment's own exits against existing fragments.
	for i := range f.Insts {
		inst := &f.Insts[i]
		if !inst.IsExit() {
			continue
		}
		if tgt := c.Lookup(inst.VAddr); tgt != nil {
			c.patch(f, i, tgt.ID)
		} else if inst.VAddr != 0 {
			c.pending[inst.VAddr] = append(c.pending[inst.VAddr], patchSite{frag: f.ID, idx: i})
		}
	}

	// Patch pending exits elsewhere that target this fragment.
	for _, site := range c.pending[f.VStart] {
		if g := c.Frag(site.frag); g != nil {
			c.patch(g, site.idx, f.ID)
		}
	}
	delete(c.pending, f.VStart)
	if c.shadow {
		f.snapshotPristine()
	}
	return f, nil
}

// InstallShared installs a translation obtained from the shared
// fragment store, recording its provenance (content address and
// whether the artifact came from another session). res must be a
// private copy of the store's entry (fragstore.CloneForInstall):
// Install aliases res.Insts into the fragment and exit patching
// mutates it in place, which must never touch the store's immutable
// artifact.
func (c *Cache) InstallShared(res *translate.Result, key [32]byte, shared bool) (*Fragment, error) {
	f, err := c.Install(res)
	if err != nil {
		return nil, err
	}
	f.StoreKey = key
	f.Shared = shared
	return f, nil
}

// Invalidate removes a single fragment from the cache (the recovery path
// for corruption detected at runtime): the lookup-table entry is
// dropped, exits in other fragments that were patched to branch directly
// into it revert to call-translator exits (and re-queue as pending
// links, so a retranslation re-chains them), and its own pending links
// are discarded. The ID slot stays allocated — dangling references from
// the dual-address RAS resolve to nil and miss — so fragment IDs remain
// stable. Returns false when id does not name a live fragment.
func (c *Cache) Invalidate(id int32) bool {
	f := c.Frag(id)
	if f == nil {
		return false
	}
	if cur, ok := c.byVPC[f.VStart]; ok && cur == id {
		delete(c.byVPC, f.VStart)
	}
	// Drop pending link sites owned by the dead fragment.
	for v, sites := range c.pending {
		keep := sites[:0]
		for _, s := range sites {
			if s.frag != id {
				keep = append(keep, s)
			}
		}
		if len(keep) == 0 {
			delete(c.pending, v)
		} else {
			c.pending[v] = keep
		}
	}
	// Un-patch direct branches into the dead fragment and re-queue them.
	for _, g := range c.frags {
		if g == nil || g.ID == id {
			continue
		}
		for i := range g.Insts {
			inst := &g.Insts[i]
			if inst.Frag != id {
				continue
			}
			switch inst.Kind {
			case ildp.KindCondBranch:
				inst.Kind = ildp.KindCallTransCond
			case ildp.KindBranch:
				inst.Kind = ildp.KindCallTrans
			default:
				continue
			}
			inst.Frag = ildp.NoFrag
			if g.pristineInsts != nil && i < len(g.pristineInsts) {
				g.pristineInsts[i] = *inst
			}
			c.pending[inst.VAddr] = append(c.pending[inst.VAddr],
				patchSite{frag: g.ID, idx: i})
		}
	}
	c.frags[id] = nil
	c.Invalidates++
	c.reg.Event(metrics.Event{Kind: metrics.EventEvict, Frag: id,
		VStart: f.VStart, CodeBytes: f.CodeBytes, Detail: "invalidated"})
	c.reg.Counter("tcache.invalidates").Inc()
	c.prof.Evict(id, f.VStart)
	return true
}

// patch converts a call-translator exit into a direct branch to the target
// fragment (§3.2: "the DBT system replaces the call-translator-if-
// condition-is-met instruction with a normal conditional branch").
func (c *Cache) patch(f *Fragment, idx int, target int32) {
	inst := &f.Insts[idx]
	switch inst.Kind {
	case ildp.KindCallTransCond:
		inst.Kind = ildp.KindCondBranch
	case ildp.KindCallTrans:
		inst.Kind = ildp.KindBranch
	case ildp.KindCondBranch, ildp.KindBranch:
		// already patched kind; only the link was missing
	default:
		return
	}
	inst.Frag = target
	if f.pristineInsts != nil && idx < len(f.pristineInsts) {
		// Patching is the one legitimate post-install mutation; keep the
		// integrity baseline in lockstep.
		f.pristineInsts[idx] = *inst
	}
	c.Patches++
	c.reg.Event(metrics.Event{Kind: metrics.EventChain, Frag: f.ID,
		VStart: f.VStart, Detail: fmt.Sprintf("exit %d -> frag %d", idx, target)})
	c.reg.Counter("tcache.patches").Inc()
}

// Package bpred implements the branch prediction structures of Table 1: a
// g-share conditional predictor (16K entries, 12-bit global history), a
// 512-entry 4-way set-associative branch target buffer, and an 8-entry
// hardware return address stack. The co-designed dual-address RAS is
// architectural and lives in the VM; the timing models consume its hit/miss
// outcomes from the trace.
package bpred

// GShare is a global-history XOR-indexed table of 2-bit saturating
// counters.
type GShare struct {
	table   []uint8
	history uint32
	bits    uint
	mask    uint32

	Lookups     uint64
	Mispredicts uint64
}

// NewGShare builds a predictor with the given table size (entries, a power
// of two) and history length in bits.
func NewGShare(entries int, historyBits uint) *GShare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: gshare entries must be a power of two")
	}
	g := &GShare{
		table: make([]uint8, entries),
		bits:  historyBits,
		mask:  uint32(entries - 1),
	}
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

// DefaultGShare returns the paper's 16K-entry, 12-bit-history predictor.
func DefaultGShare() *GShare { return NewGShare(16384, 12) }

func (g *GShare) index(pc uint64) uint32 {
	return (uint32(pc>>2) ^ (g.history & ((1 << g.bits) - 1))) & g.mask
}

// Predict returns the predicted direction for the branch at pc without
// updating any state.
func (g *GShare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update records the actual outcome, trains the counter, and shifts the
// global history. It returns whether the pre-update prediction was
// correct.
func (g *GShare) Update(pc uint64, taken bool) bool {
	idx := g.index(pc)
	pred := g.table[idx] >= 2
	if taken && g.table[idx] < 3 {
		g.table[idx]++
	} else if !taken && g.table[idx] > 0 {
		g.table[idx]--
	}
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.Lookups++
	correct := pred == taken
	if !correct {
		g.Mispredicts++
	}
	return correct
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	sets    int
	ways    int
	entries []btbEntry // sets*ways

	Lookups uint64
	Hits    uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// NewBTB builds a BTB with the given total entries and associativity.
func NewBTB(entries, ways int) *BTB {
	if entries%ways != 0 {
		panic("bpred: BTB entries must divide by ways")
	}
	return &BTB{sets: entries / ways, ways: ways, entries: make([]btbEntry, entries)}
}

// DefaultBTB returns the paper's 512-entry, 4-way BTB.
func DefaultBTB() *BTB { return NewBTB(512, 4) }

func (b *BTB) set(pc uint64) []btbEntry {
	s := int(pc>>2) % b.sets
	return b.entries[s*b.ways : (s+1)*b.ways]
}

// Predict returns the predicted target for the control instruction at pc.
func (b *BTB) Predict(pc uint64) (uint64, bool) {
	b.Lookups++
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			b.Hits++
			return set[i].target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc. clock orders LRU.
func (b *BTB) Update(pc, target uint64, clock uint64) {
	set := b.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].target = target
			set[i].lru = clock
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{valid: true, tag: pc, target: target, lru: clock}
}

// RAS is a conventional hardware return address stack (circular,
// overwrite on overflow).
type RAS struct {
	buf []uint64
	top int
	n   int
}

// NewRAS builds a RAS with the given depth.
func NewRAS(depth int) *RAS { return &RAS{buf: make([]uint64, depth)} }

// DefaultRAS returns the paper's 8-entry RAS.
func DefaultRAS() *RAS { return NewRAS(8) }

// Push records a return address.
func (r *RAS) Push(addr uint64) {
	r.buf[r.top] = addr
	r.top = (r.top + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Pop predicts the next return target; ok is false when empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.n == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.n--
	return r.buf[r.top], true
}

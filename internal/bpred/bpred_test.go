package bpred

import (
	"testing"
	"testing/quick"
)

func TestGShareLearnsLoop(t *testing.T) {
	g := DefaultGShare()
	pc := uint64(0x1000)
	// Warm-up: a loop branch taken 9 of 10 times.
	misses := 0
	for iter := 0; iter < 100; iter++ {
		for i := 0; i < 10; i++ {
			taken := i != 9
			if !g.Update(pc, taken) && iter > 10 {
				misses++
			}
		}
	}
	// A history-based predictor should learn the 10-iteration pattern
	// nearly perfectly after warm-up.
	if misses > 200 {
		t.Errorf("gshare missed %d times on a periodic pattern", misses)
	}
}

func TestGShareAlwaysTaken(t *testing.T) {
	g := DefaultGShare()
	miss := 0
	for i := 0; i < 1000; i++ {
		if !g.Update(0x4000, true) {
			miss++
		}
	}
	// Until the 12-bit history saturates at all-ones the branch visits a
	// fresh counter each time, so up to ~2x history-length training misses
	// are expected; after warm-up it must be perfect.
	if miss > 25 {
		t.Errorf("always-taken branch missed %d times during warm-up", miss)
	}
	missAfterWarm := 0
	for i := 0; i < 1000; i++ {
		if !g.Update(0x4000, true) {
			missAfterWarm++
		}
	}
	if missAfterWarm != 0 {
		t.Errorf("warm always-taken branch missed %d times", missAfterWarm)
	}
	if g.Lookups != 2000 {
		t.Errorf("lookups = %d, want 2000", g.Lookups)
	}
}

func TestGShareBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size did not panic")
		}
	}()
	NewGShare(1000, 12)
}

func TestBTBHitAfterUpdate(t *testing.T) {
	b := DefaultBTB()
	if _, ok := b.Predict(0x2000); ok {
		t.Error("cold BTB hit")
	}
	b.Update(0x2000, 0x3000, 1)
	tgt, ok := b.Predict(0x2000)
	if !ok || tgt != 0x3000 {
		t.Errorf("predict = %#x, %v", tgt, ok)
	}
	// Retrain with a new target.
	b.Update(0x2000, 0x4000, 2)
	tgt, _ = b.Predict(0x2000)
	if tgt != 0x4000 {
		t.Errorf("retrained target = %#x", tgt)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets x 2 ways
	// Three branches mapping to the same set (stride = sets*4 bytes).
	pcs := []uint64{0x1000, 0x1000 + 16, 0x1000 + 32}
	for i, pc := range pcs {
		b.Update(pc, pc+0x100, uint64(i))
	}
	hits := 0
	for _, pc := range pcs {
		if _, ok := b.Predict(pc); ok {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("2-way set should retain exactly 2 of 3 conflicting entries, got %d", hits)
	}
}

func TestRASLIFO(t *testing.T) {
	r := DefaultRAS()
	for i := uint64(1); i <= 3; i++ {
		r.Push(i * 0x100)
	}
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want*0x100 {
			t.Errorf("pop = %#x, %v; want %#x", got, ok, want*0x100)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	// Newest four survive: 6,5,4,3.
	for _, want := range []uint64{6, 5, 4, 3} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("pop = %d, want %d", got, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS deeper than capacity")
	}
}

// Property: Predict never mutates state (two calls agree, and Update's
// return value matches the preceding Predict).
func TestPredictPureProperty(t *testing.T) {
	g := DefaultGShare()
	f := func(pc uint64, taken bool) bool {
		p1 := g.Predict(pc)
		p2 := g.Predict(pc)
		if p1 != p2 {
			return false
		}
		correct := g.Update(pc, taken)
		return correct == (p1 == taken)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

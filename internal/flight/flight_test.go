package flight

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// testBundle records a real governed failure: the membomb guest run
// under a page cap until its resource trap.
func testBundle(t *testing.T, maxPages int, faults *faultinject.Config) (*Bundle, *vm.VM) {
	t.Helper()
	spec, err := workload.ByName("membomb", 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.MustProgram()
	cfg := vm.DefaultConfig()
	cfg.MaxPages = maxPages
	cfg.HotThreshold = 4
	if faults != nil {
		cfg.Faults = faults
		cfg.Verify = true
		cfg.Paranoid = true
		cfg.SelfHeal = true
	}
	m := mem.New()
	v := vm.New(m, cfg)
	if err := v.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	runErr := v.Run(0)
	kind, failure := Classify(runErr)
	if !failure {
		t.Fatalf("membomb did not fail: %v", runErr)
	}
	var progBuf bytes.Buffer
	if err := prog.Save(&progBuf); err != nil {
		t.Fatal(err)
	}
	return &Bundle{
		Kind:     kind,
		VPC:      v.CPU().PC,
		Cause:    runErr.Error(),
		Config:   CaptureConfig(cfg),
		Faults:   faults,
		Program:  progBuf.Bytes(),
		Counters: v.Checkpoint().Counters,
		Events:   []string{"test membomb", "governed at " + runErr.Error()},
	}, v
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b, _ := testBundle(t, 64, &faultinject.Config{
		Seed: 7, Kinds: []faultinject.Kind{faultinject.KindBitFlip}, MaxFaults: 3,
	})
	enc := Encode(b)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Kind != b.Kind || got.VPC != b.VPC || got.Cause != b.Cause {
		t.Fatalf("header round trip: %+v", got)
	}
	if got.Config != b.Config {
		t.Fatalf("config round trip: %+v vs %+v", got.Config, b.Config)
	}
	if got.Faults == nil || got.Faults.Seed != 7 || len(got.Faults.Kinds) != 1 ||
		got.Faults.Kinds[0] != faultinject.KindBitFlip || got.Faults.MaxFaults != 3 {
		t.Fatalf("faults round trip: %+v", got.Faults)
	}
	if !bytes.Equal(got.Program, b.Program) {
		t.Fatal("program bytes diverge")
	}
	if len(got.Events) != 2 || got.Events[0] != b.Events[0] {
		t.Fatalf("events round trip: %v", got.Events)
	}
	for name, v := range b.Counters {
		if v != 0 && got.Counters[name] != v {
			t.Fatalf("counter %s: %d vs %d", name, got.Counters[name], v)
		}
	}
	// Canonical: Encode(Decode(enc)) == enc.
	if !bytes.Equal(Encode(got), enc) {
		t.Fatal("Encode(Decode(b)) != b")
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	b, _ := testBundle(t, 64, nil)
	enc := Encode(b)

	if _, err := Decode([]byte("NOTABNDL" + string(enc[8:]))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := Decode(enc[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 1
	if _, err := Decode(flipped); !errors.Is(err, ErrChecksum) {
		t.Errorf("bit flip: %v", err)
	}
	trailing := append(append([]byte(nil), enc...), 0xFF)
	if _, err := Decode(trailing); err == nil {
		t.Error("trailing byte accepted")
	}
	var e *Error
	if _, err := Decode(flipped); !errors.As(err, &e) {
		t.Error("decode failure is not a *Error")
	}
}

// TestReplayResourceKill is the acceptance criterion: a recorded
// resource-governance failure replays to the bit-identical failure —
// same kind, same V-PC, same counters.
func TestReplayResourceKill(t *testing.T) {
	b, _ := testBundle(t, 64, nil)
	if b.Kind != KindResource {
		t.Fatalf("bundle kind = %s, want %s", b.Kind, KindResource)
	}
	dec, err := Decode(Encode(b))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(dec)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := res.Matches(dec); err != nil {
		t.Fatalf("replay diverges: %v", err)
	}
}

// TestReplayFromCheckpoint replays a failing segment that starts from a
// mid-run checkpoint, the serve-shaped bundle: run the bomb for a
// budget-bounded prefix, checkpoint, then record the failing remainder.
func TestReplayFromCheckpoint(t *testing.T) {
	spec, err := workload.ByName("membomb", 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.MustProgram()
	cfg := vm.DefaultConfig()
	cfg.MaxPages = 96
	cfg.HotThreshold = 4

	// Segment 1: run a prefix, preempted by budget before the bomb loop
	// turns hot (a hot loop self-chains past the outer-loop budget
	// check, so the prefix must stay interpreted).
	v1 := vm.New(mem.New(), cfg)
	if err := v1.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := v1.Run(20); !errors.Is(err, vm.ErrBudget) {
		t.Fatalf("prefix run: %v", err)
	}
	seg := checkpoint.Encode(v1.Checkpoint())

	// Segment 2: restore and run to the governed failure.
	v2 := vm.New(mem.New(), cfg)
	st, err := checkpoint.Decode(seg)
	if err != nil {
		t.Fatal(err)
	}
	v2.Restore(st)
	runErr := v2.Run(0)
	kind, failure := Classify(runErr)
	if !failure || kind != KindResource {
		t.Fatalf("segment 2: kind=%s err=%v", kind, runErr)
	}
	b := &Bundle{
		Kind:       kind,
		VPC:        v2.CPU().PC,
		Cause:      runErr.Error(),
		Config:     CaptureConfig(cfg),
		Checkpoint: seg,
		Counters:   v2.Checkpoint().Counters,
	}
	res, err := Replay(b)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := res.Matches(b); err != nil {
		t.Fatalf("replay diverges: %v", err)
	}
}

// TestMatchesDetectsDivergence checks Matches is not vacuous.
func TestMatchesDetectsDivergence(t *testing.T) {
	b, _ := testBundle(t, 64, nil)
	res, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	res.VPC ^= 4
	if err := res.Matches(b); err == nil {
		t.Error("V-PC divergence not detected")
	}
	res.VPC ^= 4
	res.Kind = KindTrap
	if err := res.Matches(b); err == nil {
		t.Error("kind divergence not detected")
	}
	res.Kind = b.Kind
	res.Counters["stats.InterpInsts"]++
	if err := res.Matches(b); err == nil {
		t.Error("counter divergence not detected")
	}
}

// TestReplayWithFaultSchedule replays a failure recorded under VM-level
// chaos: the injected fault schedule is part of the bundle, so the
// replay draws the identical faults.
func TestReplayWithFaultSchedule(t *testing.T) {
	fc := &faultinject.Config{Seed: 11, EntryRate: 16}
	b, _ := testBundle(t, 64, fc)
	dec, err := Decode(Encode(b))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(dec)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := res.Matches(dec); err != nil {
		t.Fatalf("replay under chaos diverges: %v", err)
	}
}

// TestBundleRequiresStateSource checks the canonical guard: a bundle
// with neither program nor checkpoint is rejected at decode.
func TestBundleRequiresStateSource(t *testing.T) {
	b := &Bundle{Kind: KindTrap, Config: CaptureConfig(vm.DefaultConfig())}
	if _, err := Decode(Encode(b)); !errors.Is(err, ErrCanonical) {
		t.Fatalf("state-less bundle: %v", err)
	}
}

// Package flight is the crash-repro flight recorder (DESIGN.md §15): on
// any session or run failure — a guest trap, a resource-governance
// kill, budget exhaustion, a quarantined panic, or an injected I/O fault
// — the system emits a versioned, CRC-guarded bundle holding everything
// a deterministic re-execution needs: the guest image, the translation
// and governance config fingerprint, the VM fault-injection schedule (if
// chaos was active), the checkpoint the failing segment started from,
// the flattened counters at failure, and an informational event tail.
//
// Replay reconstructs the VM from the bundle and re-executes the failing
// segment; Matches then demands the bit-identical failure — same kind,
// same V-PC, same execution counters — which is what turns "a guest died
// in production" into an executable, checkable artifact
// (`ildpchaos -replay BUNDLE`).
//
// The on-disk format follows the repo's canonical-codec discipline
// (docs/FORMAT.md): fixed-width little-endian fields, sorted nonzero
// counters, a CRC-64/ECMA trailer verified before structural parsing,
// typed *Error decode failures, and Encode(Decode(b)) == b for every
// accepted b.
package flight

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"sort"

	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/vm"
)

// Version is the current bundle format version.
const Version = 1

// magic identifies a flight-recorder bundle stream.
var magic = [8]byte{'A', 'C', 'C', 'D', 'B', 'T', 'F', 'R'}

// Failure kinds recorded in Bundle.Kind and produced by Classify.
const (
	// KindTrap is a precise guest trap (access, alignment, arithmetic).
	KindTrap = "trap"
	// KindResource is a page-limit governance kill: a precise trap whose
	// cause is *mem.ResourceFault.
	KindResource = "resource"
	// KindBudget is cumulative V-instruction budget exhaustion.
	KindBudget = "budget"
	// KindCrash is a panic quarantined by a crash barrier.
	KindCrash = "crash"
	// KindIOFault is a host-side persistence failure (spill, checkpoint,
	// or cache I/O). The guest itself did not fail: Replay verifies the
	// recorded architected state instead of re-executing.
	KindIOFault = "io_fault"
	// KindDone is a clean halt — never bundled, but Classify and Replay
	// report it so a non-reproducing failure is loudly visible.
	KindDone = "done"
	// KindError is any other terminal error.
	KindError = "error"
)

// VMConfig is the translation + governance fingerprint a replay needs
// to rebuild the exact VM. It deliberately excludes hooks, sinks,
// metrics, and the shared store: none of them change architected
// behaviour (the store only dedups translation work), and excluding
// them keeps bundles self-contained.
type VMConfig struct {
	Form           ildp.Form
	NumAcc         int
	Chain          translate.ChainMode
	Straighten     bool
	FuseMemOps     bool
	TCacheBytes    int
	MaxPages       int
	Verify         bool
	SemCheck       bool
	Paranoid       bool
	SelfHeal       bool
	RetryBudget    int
	WatchdogWindow int64
	HotThreshold   int
	MaxSuperblock  int
	RASSize        int
}

// CaptureConfig extracts the replay fingerprint from a live vm.Config.
func CaptureConfig(cfg vm.Config) VMConfig {
	return VMConfig{
		Form:           cfg.Form,
		NumAcc:         cfg.NumAcc,
		Chain:          cfg.Chain,
		Straighten:     cfg.Straighten,
		FuseMemOps:     cfg.FuseMemOps,
		TCacheBytes:    cfg.TCacheBytes,
		MaxPages:       cfg.MaxPages,
		Verify:         cfg.Verify,
		SemCheck:       cfg.SemCheck,
		Paranoid:       cfg.Paranoid,
		SelfHeal:       cfg.SelfHeal,
		RetryBudget:    cfg.RetryBudget,
		WatchdogWindow: cfg.WatchdogWindow,
		HotThreshold:   cfg.HotThreshold,
		MaxSuperblock:  cfg.MaxSuperblock,
		RASSize:        cfg.RASSize,
	}
}

// VM expands the fingerprint back into a vm.Config (hooks and sinks
// nil).
func (c VMConfig) VM() vm.Config {
	return vm.Config{
		Form:           c.Form,
		NumAcc:         c.NumAcc,
		Chain:          c.Chain,
		Straighten:     c.Straighten,
		FuseMemOps:     c.FuseMemOps,
		TCacheBytes:    c.TCacheBytes,
		MaxPages:       c.MaxPages,
		Verify:         c.Verify,
		SemCheck:       c.SemCheck,
		Paranoid:       c.Paranoid,
		SelfHeal:       c.SelfHeal,
		RetryBudget:    c.RetryBudget,
		WatchdogWindow: c.WatchdogWindow,
		HotThreshold:   c.HotThreshold,
		MaxSuperblock:  c.MaxSuperblock,
		RASSize:        c.RASSize,
	}
}

// Bundle is one recorded failure. Program or Checkpoint (or both) must
// be present: Replay restores the checkpoint when it has one, else
// boots the program from its image.
type Bundle struct {
	// Kind is the failure class (Kind* constants).
	Kind string
	// VPC is the architected V-PC at failure — the trap PC for precise
	// traps, the boundary PC otherwise.
	VPC uint64
	// Cause is the human-readable failure cause.
	Cause string
	// Config is the replay fingerprint.
	Config VMConfig
	// Faults is the VM-level fault-injection schedule active during the
	// failing run, nil when chaos was off. Replaying it reproduces the
	// exact same injected faults (they are a pure function of the seed).
	Faults *faultinject.Config
	// Budget is the V-instruction cap the failing segment ran under
	// (vm.Run's argument; 0 = unlimited). Essential for KindBudget.
	Budget int64
	// Program is the alphaprog image (may be nil when Checkpoint is
	// set — a resumed session's memory lives in its checkpoint).
	Program []byte
	// Checkpoint is the encoded architected state the failing segment
	// started from; nil means the segment booted from Program.
	Checkpoint []byte
	// Counters is the flattened VM accounting at the moment of failure
	// (vm.Checkpoint().Counters). Matches compares it modulo the
	// store-dependent exclusions.
	Counters map[string]uint64
	// Events is the informational event tail (admission, quanta, the
	// failure line). Never compared.
	Events []string
}

// Decode failure causes, matched with errors.Is against the returned
// *Error.
var (
	ErrBadMagic  = errors.New("bad magic")
	ErrVersion   = errors.New("unsupported version")
	ErrTruncated = errors.New("truncated")
	ErrChecksum  = errors.New("checksum mismatch")
	ErrCanonical = errors.New("non-canonical encoding")
	ErrTrailing  = errors.New("trailing bytes after checksum")
)

// Error is the typed decode failure: the byte offset where decoding
// stopped, the failure class (one of the Err sentinels), and detail.
type Error struct {
	Off    int
	Cause  error
	Detail string
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("flight: %v at offset %d", e.Cause, e.Off)
	}
	return fmt.Sprintf("flight: %v at offset %d: %s", e.Cause, e.Off, e.Detail)
}

// Unwrap exposes the failure class for errors.Is.
func (e *Error) Unwrap() error { return e.Cause }

var crcTable = crc64.MakeTable(crc64.ECMA)

// flag bits of the encoded config flags byte.
const (
	flagStraighten = 1 << 0
	flagFuseMemOps = 1 << 1
	flagVerify     = 1 << 2
	flagSemCheck   = 1 << 3
	flagParanoid   = 1 << 4
	flagSelfHeal   = 1 << 5
	flagsKnown     = flagStraighten | flagFuseMemOps | flagVerify |
		flagSemCheck | flagParanoid | flagSelfHeal
)

// Encode serializes the bundle. The output is deterministic: encoding
// the same bundle twice yields identical bytes.
func Encode(b *Bundle) []byte {
	var out []byte
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	u64 := func(v uint64) { out = binary.LittleEndian.AppendUint64(out, v) }
	blob := func(data []byte) { u32(uint32(len(data))); out = append(out, data...) }

	out = append(out, magic[:]...)
	u32(Version)
	out = append(out, byte(len(b.Kind)))
	out = append(out, b.Kind...)
	u64(b.VPC)
	blob([]byte(b.Cause))

	c := b.Config
	out = append(out, byte(c.Form), byte(c.Chain))
	u32(uint32(c.NumAcc))
	var flags byte
	if c.Straighten {
		flags |= flagStraighten
	}
	if c.FuseMemOps {
		flags |= flagFuseMemOps
	}
	if c.Verify {
		flags |= flagVerify
	}
	if c.SemCheck {
		flags |= flagSemCheck
	}
	if c.Paranoid {
		flags |= flagParanoid
	}
	if c.SelfHeal {
		flags |= flagSelfHeal
	}
	out = append(out, flags)
	u64(uint64(c.TCacheBytes))
	u64(uint64(c.MaxPages))
	u32(uint32(c.RetryBudget))
	u64(uint64(c.WatchdogWindow))
	u32(uint32(c.HotThreshold))
	u32(uint32(c.MaxSuperblock))
	u32(uint32(c.RASSize))

	if f := b.Faults; f != nil {
		out = append(out, 1)
		u64(f.Seed)
		u32(uint32(f.EntryRate))
		u32(uint32(f.TranslateRate))
		u32(uint32(f.MaxFaults))
		out = append(out, byte(len(f.Kinds)))
		for _, k := range f.Kinds {
			out = append(out, byte(k))
		}
	} else {
		out = append(out, 0)
	}

	u64(uint64(b.Budget))
	blob(b.Program)
	blob(b.Checkpoint)

	names := make([]string, 0, len(b.Counters))
	for name, v := range b.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	u32(uint32(len(names)))
	for _, name := range names {
		out = append(out, byte(len(name)))
		out = append(out, name...)
		u64(b.Counters[name])
	}

	u32(uint32(len(b.Events)))
	for _, ev := range b.Events {
		blob([]byte(ev))
	}

	u64(crc64.Checksum(out, crcTable))
	return out
}

// decoder is a bounds-checked little-endian reader over the stream.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) fail(cause error, format string, args ...any) *Error {
	return &Error{Off: d.off, Cause: cause, Detail: fmt.Sprintf(format, args...)}
}

func (d *decoder) take(n int, what string) ([]byte, *Error) {
	if n < 0 || len(d.b)-d.off < n {
		return nil, d.fail(ErrTruncated, "%s wants %d bytes, %d remain", what, n, len(d.b)-d.off)
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *decoder) u8(what string) (byte, *Error) {
	b, err := d.take(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u32(what string) (uint32, *Error) {
	b, err := d.take(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64(what string) (uint64, *Error) {
	b, err := d.take(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) blob(what string) ([]byte, *Error) {
	n, err := d.u32(what + " length")
	if err != nil {
		return nil, err
	}
	return d.take(int(n), what)
}

// Decode parses a bundle stream. Any malformation — truncation, a
// flipped bit (caught by the checksum), a version skew, non-canonical
// ordering, or trailing garbage — returns a typed *Error and a nil
// Bundle; a non-nil Bundle is always complete and internally
// consistent.
func Decode(b []byte) (*Bundle, error) {
	d := &decoder{b: b}

	m, derr := d.take(len(magic), "magic")
	if derr != nil {
		return nil, derr
	}
	if [8]byte(m) != magic {
		d.off = 0
		return nil, d.fail(ErrBadMagic, "got %q", m)
	}
	// The checksum is verified before any structural parsing so that a
	// flipped bit anywhere reports ErrChecksum, not a misleading
	// structural error — and so a torn bundle file is never half-parsed.
	if len(b) < len(magic)+4+8 {
		return nil, d.fail(ErrTruncated, "stream shorter than header+checksum")
	}
	payload, trailer := b[:len(b)-8], b[len(b)-8:]
	if got, want := binary.LittleEndian.Uint64(trailer), crc64.Checksum(payload, crcTable); got != want {
		d.off = len(payload)
		return nil, d.fail(ErrChecksum, "got %#x, want %#x", got, want)
	}
	d.b = payload

	ver, derr := d.u32("version")
	if derr != nil {
		return nil, derr
	}
	if ver != Version {
		return nil, d.fail(ErrVersion, "got %d, support %d", ver, Version)
	}

	bu := &Bundle{Counters: map[string]uint64{}}
	kindLen, derr := d.u8("kind length")
	if derr != nil {
		return nil, derr
	}
	if kindLen == 0 {
		return nil, d.fail(ErrCanonical, "empty kind")
	}
	kindB, derr := d.take(int(kindLen), "kind")
	if derr != nil {
		return nil, derr
	}
	bu.Kind = string(kindB)
	if bu.VPC, derr = d.u64("vpc"); derr != nil {
		return nil, derr
	}
	cause, derr := d.blob("cause")
	if derr != nil {
		return nil, derr
	}
	bu.Cause = string(cause)

	form, derr := d.u8("form")
	if derr != nil {
		return nil, derr
	}
	chain, derr := d.u8("chain")
	if derr != nil {
		return nil, derr
	}
	bu.Config.Form = ildp.Form(form)
	bu.Config.Chain = translate.ChainMode(chain)
	numAcc, derr := d.u32("num acc")
	if derr != nil {
		return nil, derr
	}
	bu.Config.NumAcc = int(numAcc)
	flags, derr := d.u8("config flags")
	if derr != nil {
		return nil, derr
	}
	if flags&^byte(flagsKnown) != 0 {
		return nil, d.fail(ErrCanonical, "unknown flag bits %#x", flags&^byte(flagsKnown))
	}
	bu.Config.Straighten = flags&flagStraighten != 0
	bu.Config.FuseMemOps = flags&flagFuseMemOps != 0
	bu.Config.Verify = flags&flagVerify != 0
	bu.Config.SemCheck = flags&flagSemCheck != 0
	bu.Config.Paranoid = flags&flagParanoid != 0
	bu.Config.SelfHeal = flags&flagSelfHeal != 0
	tcb, derr := d.u64("tcache bytes")
	if derr != nil {
		return nil, derr
	}
	bu.Config.TCacheBytes = int(tcb)
	mp, derr := d.u64("max pages")
	if derr != nil {
		return nil, derr
	}
	bu.Config.MaxPages = int(mp)
	rb, derr := d.u32("retry budget")
	if derr != nil {
		return nil, derr
	}
	bu.Config.RetryBudget = int(rb)
	wd, derr := d.u64("watchdog window")
	if derr != nil {
		return nil, derr
	}
	bu.Config.WatchdogWindow = int64(wd)
	ht, derr := d.u32("hot threshold")
	if derr != nil {
		return nil, derr
	}
	bu.Config.HotThreshold = int(ht)
	msb, derr := d.u32("max superblock")
	if derr != nil {
		return nil, derr
	}
	bu.Config.MaxSuperblock = int(msb)
	ras, derr := d.u32("ras size")
	if derr != nil {
		return nil, derr
	}
	bu.Config.RASSize = int(ras)

	havefaults, derr := d.u8("faults present")
	if derr != nil {
		return nil, derr
	}
	switch havefaults {
	case 0:
	case 1:
		f := &faultinject.Config{}
		if f.Seed, derr = d.u64("fault seed"); derr != nil {
			return nil, derr
		}
		er, derr := d.u32("entry rate")
		if derr != nil {
			return nil, derr
		}
		f.EntryRate = int(er)
		tr, derr := d.u32("translate rate")
		if derr != nil {
			return nil, derr
		}
		f.TranslateRate = int(tr)
		mf, derr := d.u32("max faults")
		if derr != nil {
			return nil, derr
		}
		f.MaxFaults = int(mf)
		nk, derr := d.u8("fault kind count")
		if derr != nil {
			return nil, derr
		}
		for i := 0; i < int(nk); i++ {
			kb, derr := d.u8("fault kind")
			if derr != nil {
				return nil, derr
			}
			f.Kinds = append(f.Kinds, faultinject.Kind(kb))
		}
		bu.Faults = f
	default:
		return nil, d.fail(ErrCanonical, "faults-present byte %d", havefaults)
	}

	budget, derr := d.u64("budget")
	if derr != nil {
		return nil, derr
	}
	bu.Budget = int64(budget)
	prog, derr := d.blob("program")
	if derr != nil {
		return nil, derr
	}
	if len(prog) > 0 {
		bu.Program = append([]byte(nil), prog...)
	}
	ckpt, derr := d.blob("checkpoint")
	if derr != nil {
		return nil, derr
	}
	if len(ckpt) > 0 {
		bu.Checkpoint = append([]byte(nil), ckpt...)
	}
	if bu.Program == nil && bu.Checkpoint == nil {
		return nil, d.fail(ErrCanonical, "bundle has neither program nor checkpoint")
	}

	nCounters, derr := d.u32("counter count")
	if derr != nil {
		return nil, derr
	}
	if int64(nCounters)*10 > int64(len(d.b)-d.off) {
		return nil, d.fail(ErrTruncated, "%d counters cannot fit in %d bytes", nCounters, len(d.b)-d.off)
	}
	prevName := ""
	for i := uint32(0); i < nCounters; i++ {
		nameLen, derr := d.u8("counter name length")
		if derr != nil {
			return nil, derr
		}
		if nameLen == 0 {
			return nil, d.fail(ErrCanonical, "empty counter name")
		}
		nameB, derr := d.take(int(nameLen), "counter name")
		if derr != nil {
			return nil, derr
		}
		name := string(nameB)
		if i > 0 && name <= prevName {
			return nil, d.fail(ErrCanonical, "counter %q not sorted after %q", name, prevName)
		}
		prevName = name
		v, derr := d.u64("counter value")
		if derr != nil {
			return nil, derr
		}
		if v == 0 {
			return nil, d.fail(ErrCanonical, "zero-valued counter %q", name)
		}
		bu.Counters[name] = v
	}

	nEvents, derr := d.u32("event count")
	if derr != nil {
		return nil, derr
	}
	if int64(nEvents)*4 > int64(len(d.b)-d.off) {
		return nil, d.fail(ErrTruncated, "%d events cannot fit in %d bytes", nEvents, len(d.b)-d.off)
	}
	for i := uint32(0); i < nEvents; i++ {
		ev, derr := d.blob("event")
		if derr != nil {
			return nil, derr
		}
		bu.Events = append(bu.Events, string(ev))
	}

	if d.off != len(d.b) {
		return nil, d.fail(ErrTrailing, "%d bytes", len(d.b)-d.off)
	}
	return bu, nil
}

// Classify maps a terminal vm.Run error to its failure kind. The bool
// reports whether the outcome is bundle-worthy (a failure, not a clean
// halt or an ordinary preemption).
func Classify(err error) (kind string, failure bool) {
	switch {
	case err == nil:
		return KindDone, false
	case func() bool { var rf *mem.ResourceFault; return errors.As(err, &rf) }():
		return KindResource, true
	case func() bool { var tr *emu.Trap; return errors.As(err, &tr) }():
		return KindTrap, true
	case errors.Is(err, vm.ErrBudget):
		return KindBudget, true
	case errors.Is(err, vm.ErrPreempted):
		return KindError, false
	default:
		return KindError, true
	}
}

// Result is the outcome of a Replay.
type Result struct {
	// Kind is the failure class the re-execution reached.
	Kind string
	// VPC is the architected V-PC at the re-executed failure.
	VPC uint64
	// Cause is the re-executed failure's error text.
	Cause string
	// Counters is the flattened VM accounting at the re-executed
	// failure.
	Counters map[string]uint64
}

// storeDependent names the counters excluded from Matches: the shared
// fragment store dedups translation work across sessions, so a replay
// without the neighbouring sessions legitimately translates more (or
// less) than the original run did. Everything architecturally
// meaningful — retirement, traps, recoveries, fragment entries — is
// store-independent and compared exactly.
var storeDependent = map[string]bool{
	"stats.StoreHits":       true,
	"stats.StoreMisses":     true,
	"stats.StoreSharedHits": true,
	"stats.TranslateCost":   true,
}

// Replay re-executes the bundle's failing segment: it rebuilds the VM
// from the config fingerprint (and fault schedule), restores the
// checkpoint (or boots the program), runs under the recorded budget
// with a crash barrier, and classifies the outcome. KindIOFault
// bundles record a host-side failure, not a guest one, so Replay
// verifies the recorded architected state instead of running.
func Replay(b *Bundle) (*Result, error) {
	if b.Kind == "" {
		return nil, errors.New("flight: bundle has no kind")
	}
	m := mem.New()
	cfg := b.Config.VM()
	cfg.Faults = b.Faults
	v := vm.New(m, cfg)
	if len(b.Checkpoint) > 0 {
		st, err := checkpoint.Decode(b.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("flight: bundle checkpoint: %w", err)
		}
		v.Restore(st)
	} else {
		prog, err := alphaprog.Load(bytes.NewReader(b.Program))
		if err != nil {
			return nil, fmt.Errorf("flight: bundle program: %w", err)
		}
		if err := v.LoadProgram(prog); err != nil {
			return nil, fmt.Errorf("flight: load program: %w", err)
		}
	}

	res := &Result{}
	if b.Kind == KindIOFault {
		// Host-side failure: the recorded state is the evidence. Verify
		// it reconstructs exactly (the checkpoint CRC already proved the
		// bytes; this proves the bundle's own fields agree with them).
		res.Kind = KindIOFault
		res.VPC = v.CPU().PC
		res.Counters = v.Checkpoint().Counters
		return res, nil
	}

	runErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				res.Kind = KindCrash
				res.Cause = fmt.Sprintf("panic: %v", r)
				err = nil
			}
		}()
		return v.Run(b.Budget)
	}()
	if res.Kind != KindCrash {
		kind, _ := Classify(runErr)
		res.Kind = kind
		if runErr != nil {
			res.Cause = runErr.Error()
		}
	}
	res.VPC = v.CPU().PC
	res.Counters = v.Checkpoint().Counters
	return res, nil
}

// Matches checks that a replay reproduced the recorded failure: same
// kind, same V-PC, and identical counters modulo the store-dependent
// exclusions. A nil return is the bit-identical verdict; otherwise the
// error names the first divergence.
func (r *Result) Matches(b *Bundle) error {
	if r.Kind != b.Kind {
		return fmt.Errorf("flight: kind diverges: replay %s, bundle %s", r.Kind, b.Kind)
	}
	if r.VPC != b.VPC {
		return fmt.Errorf("flight: V-PC diverges: replay %#x, bundle %#x", r.VPC, b.VPC)
	}
	names := map[string]bool{}
	for name := range r.Counters {
		names[name] = true
	}
	for name := range b.Counters {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		if storeDependent[name] {
			continue
		}
		if got, want := r.Counters[name], b.Counters[name]; got != want {
			return fmt.Errorf("flight: counter %s diverges: replay %d, bundle %d", name, got, want)
		}
	}
	return nil
}

package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/workload"
)

// Default sweep points for the parameterised ablations. `ildpbench` uses
// the same values for its text and -json modes so the two always agree.
var (
	// DefaultThresholdSweep is the hot-trace threshold ablation's sweep.
	DefaultThresholdSweep = []int{5, 10, 25, 50, 100, 200}
	// DefaultSuperblockSweep is the maximum-superblock-size sweep.
	DefaultSuperblockSweep = []int{25, 50, 100, 200}
	// DefaultRASSweep is the dual-address RAS size sweep.
	DefaultRASSweep = []int{2, 4, 8, 16, 32}
	// DefaultVarianceSeeds are the perturbed data seeds of the dataset
	// sensitivity study (seed 0 is the canonical dataset).
	DefaultVarianceSeeds = []uint64{0, 1, 2, 3, 4}
)

// RunOptions parameterises Run.
type RunOptions struct {
	// Scale is the workload scale factor (loop trip multiplier).
	Scale int
	// Threshold is the hot-trace threshold (the paper uses 50).
	Threshold int
	// Experiments lists the experiment IDs to run, in order. Use
	// ExperimentIDs() for all of them. "table1" is static hardware
	// parameters, not a measurement, and is not a valid ID here.
	Experiments []string
	// Metrics, when non-nil, collects per-workload wall times (surfaced
	// as the report's Timings) and the drivers' lifecycle metrics. When
	// nil Run makes a private registry so Timings are still populated.
	Metrics *metrics.Registry
}

// Run executes the requested experiments and assembles the versioned
// report that `ildpbench -json` emits. The Records are deterministic for
// a fixed (scale, threshold); Timings are wall-clock and are not.
func Run(opts RunOptions) (*Report, error) {
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	if opts.Threshold < 1 {
		opts.Threshold = 50
	}
	if len(opts.Experiments) == 0 {
		opts.Experiments = ExperimentIDs()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	experiments.SetMetrics(reg)
	defer experiments.SetMetrics(nil)

	var recs []Record
	for _, exp := range opts.Experiments {
		switch exp {
		case "table2":
			recs = append(recs, table2Records(experiments.Table2(opts.Scale, opts.Threshold))...)
		case "overhead":
			recs = append(recs, overheadRecords(experiments.Overhead(opts.Scale, opts.Threshold))...)
		case "fig4":
			recs = append(recs, fig4Records(experiments.Fig4(opts.Scale, opts.Threshold))...)
		case "fig5":
			recs = append(recs, fig5Records(experiments.Fig5(opts.Scale, opts.Threshold))...)
		case "fig6":
			recs = append(recs, fig6Records(experiments.Fig6(opts.Scale, opts.Threshold))...)
		case "fig7":
			recs = append(recs, fig7Records(experiments.Fig7(opts.Scale, opts.Threshold))...)
		case "fig8":
			recs = append(recs, fig8Records(experiments.Fig8(opts.Scale, opts.Threshold))...)
		case "fig9":
			recs = append(recs, fig9Records(experiments.Fig9(opts.Scale, opts.Threshold))...)
		case "fusion":
			recs = append(recs, fusionRecords(experiments.Fusion(opts.Scale, opts.Threshold))...)
		case "threshold":
			recs = append(recs, thresholdRecords(experiments.Threshold(opts.Scale, DefaultThresholdSweep))...)
		case "superblock":
			recs = append(recs, superblockRecords(experiments.Superblock(opts.Scale, opts.Threshold, DefaultSuperblockSweep))...)
		case "vmcost":
			recs = append(recs, vmcostRecords(experiments.VMCost(opts.Scale, opts.Threshold))...)
		case "ras":
			recs = append(recs, rasRecords(experiments.RASSweep(opts.Scale, opts.Threshold, DefaultRASSweep))...)
		case "variance":
			recs = append(recs, varianceRecords(experiments.Variance(opts.Scale, opts.Threshold, DefaultVarianceSeeds))...)
		default:
			return nil, fmt.Errorf("report: unknown experiment %q", exp)
		}
	}

	r := &Report{
		Schema: SchemaVersion,
		Meta: Meta{
			Generator:   "ildpbench",
			Scale:       opts.Scale,
			Threshold:   opts.Threshold,
			Chain:       "sw_pred.ras",
			NumAcc:      ildp.DefaultAccumulators,
			Experiments: append([]string(nil), opts.Experiments...),
			Workloads:   workload.Names(),
		},
		Records: recs,
		Timings: timingsFrom(reg),
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// timingsFrom extracts the per-workload wall times that the experiment
// drivers accumulate into "experiments.wall_ms.<bench>" gauges.
func timingsFrom(reg *metrics.Registry) []Timing {
	const prefix = "experiments.wall_ms."
	gauges := reg.GaugesWithPrefix(prefix)
	names := make([]string, 0, len(gauges))
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Timing
	for _, name := range names {
		out = append(out, Timing{
			Name:   strings.TrimPrefix(name, prefix),
			Millis: gauges[name],
		})
	}
	return out
}

// rec builds one cell record, resolving the unit from the table
// definitions so emitted units can't drift from defs.go.
func rec(exp, series, bench string, v float64) Record {
	unit := ""
	if d, ok := defFor(exp); ok {
		for _, c := range d.cols {
			if c.key == series {
				unit = c.unit
				break
			}
		}
	}
	return Record{Exp: exp, Series: series, Bench: bench, Value: v, Unit: unit}
}

func table2Records(rows []experiments.Table2Row) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("table2", "dyn_b", r.Bench, r.RelDynB),
			rec("table2", "dyn_m", r.Bench, r.RelDynM),
			rec("table2", "copy_pct_b", r.Bench, r.CopyPctB),
			rec("table2", "copy_pct_m", r.Bench, r.CopyPctM),
			rec("table2", "static_b", r.Bench, r.RelStaticB),
			rec("table2", "static_m", r.Bench, r.RelStaticM),
			rec("table2", "xlate_inst", r.Bench, r.Overhead),
		)
	}
	return out
}

func overheadRecords(rows []experiments.OverheadRow) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("overhead", "insts_per_inst", r.Bench, r.PerInst),
			rec("overhead", "fragments", r.Bench, float64(r.Fragments)),
			rec("overhead", "src_insts", r.Bench, float64(r.SrcInsts)),
		)
	}
	return out
}

func fig4Records(rows []experiments.Fig4Row) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("fig4", "original", r.Bench, r.Original),
			rec("fig4", "no_pred", r.Bench, r.NoPred),
			rec("fig4", "sw_pred_no_ras", r.Bench, r.SWPred),
			rec("fig4", "sw_pred_ras", r.Bench, r.SWPredRAS),
		)
	}
	return out
}

func fig5Records(rows []experiments.Fig5Row) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("fig5", "no_pred", r.Bench, r.NoPred),
			rec("fig5", "sw_pred_no_ras", r.Bench, r.SWPred),
			rec("fig5", "sw_pred_ras", r.Bench, r.SWPredRAS),
		)
	}
	return out
}

func fig6Records(rows []experiments.Fig6Row) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("fig6", "orig_no_ras", r.Bench, r.OrigNoRAS),
			rec("fig6", "orig_ras", r.Bench, r.OrigRAS),
			rec("fig6", "straight_no_ras", r.Bench, r.StraightNoRAS),
			rec("fig6", "straight_ras", r.Bench, r.StraightRAS),
		)
	}
	return out
}

func fig7Records(rows []experiments.Fig7Row) []Record {
	var out []Record
	for i := range rows {
		r := &rows[i]
		out = append(out,
			rec("fig7", "no_user", r.Bench, r.Fractions[ildp.UsageNoUser]),
			rec("fig7", "no_user_global", r.Bench, r.Fractions[ildp.UsageNoUserGlobal]),
			rec("fig7", "local", r.Bench, r.Fractions[ildp.UsageLocal]),
			rec("fig7", "local_global", r.Bench, r.Fractions[ildp.UsageLocalGlobal]),
			rec("fig7", "temp", r.Bench, r.Fractions[ildp.UsageTemp]),
			rec("fig7", "comm", r.Bench, r.Fractions[ildp.UsageComm]),
			rec("fig7", "liveout", r.Bench, r.Fractions[ildp.UsageLiveOut]),
			rec("fig7", "global_pct", r.Bench, 100*r.GlobalFraction()),
		)
	}
	return out
}

func fig8Records(rows []experiments.Fig8Row) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("fig8", "original", r.Bench, r.Original),
			rec("fig8", "straightened", r.Bench, r.Straight),
			rec("fig8", "ildp_basic", r.Bench, r.Basic),
			rec("fig8", "ildp_modified", r.Bench, r.Modified),
			rec("fig8", "native_iisa", r.Bench, r.NativeIISA),
		)
	}
	return out
}

func fig9Records(rows []experiments.Fig9Row) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("fig9", "acc8", r.Bench, r.Acc8),
			rec("fig9", "base", r.Bench, r.Base),
			rec("fig9", "small_d", r.Bench, r.SmallD),
			rec("fig9", "comm2", r.Bench, r.Comm2),
			rec("fig9", "pe6", r.Bench, r.PE6),
			rec("fig9", "pe4", r.Bench, r.PE4),
		)
	}
	return out
}

func fusionRecords(rows []experiments.FusionRow) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("fusion", "expand_split", r.Bench, r.SplitExpand),
			rec("fusion", "expand_fused", r.Bench, r.FusedExpand),
			rec("fusion", "ipc_split", r.Bench, r.SplitIPC),
			rec("fusion", "ipc_fused", r.Bench, r.FusedIPC),
			rec("fusion", "static_split", r.Bench, r.SplitStaticB),
			rec("fusion", "static_fused", r.Bench, r.FusedStaticB),
		)
	}
	return out
}

func thresholdRecords(rows []experiments.ThresholdRow) []Record {
	var out []Record
	for _, r := range rows {
		bench := fmt.Sprint(r.Threshold)
		out = append(out,
			rec("threshold", "trans_fraction", bench, r.TransFraction),
			rec("threshold", "cost_share", bench, r.CostShare),
			rec("threshold", "fragments", bench, r.Fragments),
		)
	}
	return out
}

func superblockRecords(rows []experiments.SuperblockRow) []Record {
	var out []Record
	for _, r := range rows {
		bench := fmt.Sprint(r.MaxSize)
		out = append(out,
			rec("superblock", "ipc", bench, r.IPC),
			rec("superblock", "fragments", bench, r.Fragments),
			rec("superblock", "exits", bench, r.Exits),
		)
	}
	return out
}

func vmcostRecords(rows []experiments.VMCostRow) []Record {
	var out []Record
	for _, r := range rows {
		out = append(out,
			rec("vmcost", "interp_insts", r.Bench, float64(r.InterpInsts)),
			rec("vmcost", "trans_v_insts", r.Bench, float64(r.TransVInsts)),
			rec("vmcost", "interp_cost", r.Bench, float64(r.InterpCost)),
			rec("vmcost", "xlate_cost", r.Bench, float64(r.TranslateCost)),
			rec("vmcost", "ovh_per_v", r.Bench, r.OverheadPerV),
			rec("vmcost", "interp_per_src", r.Bench, r.InterpPerSrc),
		)
	}
	return out
}

func rasRecords(rows []experiments.RASRow) []Record {
	var out []Record
	for _, r := range rows {
		bench := fmt.Sprint(r.Size)
		out = append(out,
			rec("ras", "hit_rate", bench, r.HitRate),
			rec("ras", "ipc", bench, r.IPC),
			rec("ras", "expansion", bench, r.ExpandR),
		)
	}
	return out
}

func varianceRecords(rows []experiments.VarianceRow) []Record {
	var out []Record
	for _, r := range rows {
		bench := fmt.Sprint(r.Seed)
		out = append(out,
			rec("variance", "dyn_b", bench, r.DynB),
			rec("variance", "dyn_m", bench, r.DynM),
			rec("variance", "copy_pct_b", bench, r.CopyPctB),
			rec("variance", "copy_pct_m", bench, r.CopyPctM),
		)
	}
	return out
}

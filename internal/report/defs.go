package report

import (
	"github.com/ildp/accdbt/internal/stats"
)

// aggKind selects the aggregate-row function for one column.
type aggKind uint8

const (
	aggNone   aggKind = iota // blank cell in the aggregate row
	aggMean                  // arithmetic mean
	aggGeo                   // geometric mean
	aggSpread                // (max-min)/mean, the variance study's row
)

// columnDef describes one series of an experiment: its stable record
// key, the rendered column header, the unit recorded on emitted cells,
// how the aggregate row summarises it, and whether values are integral
// counts (rendered without decimals).
type columnDef struct {
	key     string
	header  string
	unit    string
	agg     aggKind
	integer bool
}

// tableDef describes one experiment's table: ID, rendered title, the
// row-key column header, the aggregate-row label ("" = no aggregate
// row), and the columns in render order. The same definitions drive the
// emitter (record building), the validator, and the renderer, so the
// three cannot drift apart.
type tableDef struct {
	exp       string
	title     string
	rowHeader string
	aggLabel  string
	cols      []columnDef
	// external marks an experiment measured by an external driver
	// (ildpload's serving benchmark) rather than report.Run: its
	// records validate and render like any other, but ExperimentIDs
	// omits it so `ildpbench -experiment=all` doesn't try to run it.
	external bool
}

// tableDefs lists every experiment in canonical render order.
var tableDefs = []tableDef{
	{
		exp:       "table2",
		title:     "Table 2. Translated instruction statistics",
		rowHeader: "bench",
		aggLabel:  "Avg.",
		cols: []columnDef{
			{key: "dyn_b", header: "dyn B", unit: "ratio", agg: aggMean},
			{key: "dyn_m", header: "dyn M", unit: "ratio", agg: aggMean},
			{key: "copy_pct_b", header: "copy% B", unit: "percent", agg: aggMean},
			{key: "copy_pct_m", header: "copy% M", unit: "percent", agg: aggMean},
			{key: "static_b", header: "static B", unit: "ratio", agg: aggMean},
			{key: "static_m", header: "static M", unit: "ratio", agg: aggMean},
			{key: "xlate_inst", header: "xlate inst", unit: "insts", agg: aggMean},
		},
	},
	{
		exp:       "overhead",
		title:     "Translation overhead (Alpha instructions to translate one Alpha instruction, §4.2)",
		rowHeader: "bench",
		aggLabel:  "Avg.",
		cols: []columnDef{
			{key: "insts_per_inst", header: "insts/inst", unit: "insts", agg: aggMean},
			{key: "fragments", header: "fragments", unit: "count", agg: aggNone, integer: true},
			{key: "src_insts", header: "src insts", unit: "insts", agg: aggNone, integer: true},
		},
	},
	{
		exp:       "fig4",
		title:     "Figure 4. Branch/jump mispredictions per 1000 instructions",
		rowHeader: "bench",
		aggLabel:  "Avg.",
		cols: []columnDef{
			{key: "original", header: "original", unit: "per1000", agg: aggMean},
			{key: "no_pred", header: "no_pred", unit: "per1000", agg: aggMean},
			{key: "sw_pred_no_ras", header: "sw_pred.no_ras", unit: "per1000", agg: aggMean},
			{key: "sw_pred_ras", header: "sw_pred.ras", unit: "per1000", agg: aggMean},
		},
	},
	{
		exp:       "fig5",
		title:     "Figure 5. Relative instruction count (straightened Alpha / original)",
		rowHeader: "bench",
		aggLabel:  "Avg.",
		cols: []columnDef{
			{key: "no_pred", header: "no_pred", unit: "ratio", agg: aggMean},
			{key: "sw_pred_no_ras", header: "sw_pred.no_ras", unit: "ratio", agg: aggMean},
			{key: "sw_pred_ras", header: "sw_pred.ras", unit: "ratio", agg: aggMean},
		},
	},
	{
		exp:       "fig6",
		title:     "Figure 6. IPC impact of code straightening and hardware RAS",
		rowHeader: "bench",
		aggLabel:  "GeoMean",
		cols: []columnDef{
			{key: "orig_no_ras", header: "orig/noRAS", unit: "ipc", agg: aggGeo},
			{key: "orig_ras", header: "orig/RAS", unit: "ipc", agg: aggGeo},
			{key: "straight_no_ras", header: "straight/noRAS", unit: "ipc", agg: aggGeo},
			{key: "straight_ras", header: "straight/RAS", unit: "ipc", agg: aggGeo},
		},
	},
	{
		exp:       "fig7",
		title:     "Figure 7. Output register usage (fractions of producing instructions)",
		rowHeader: "bench",
		cols: []columnDef{
			{key: "no_user", header: "no-user", unit: "fraction"},
			{key: "no_user_global", header: "nouser>gbl", unit: "fraction"},
			{key: "local", header: "local", unit: "fraction"},
			{key: "local_global", header: "local>gbl", unit: "fraction"},
			{key: "temp", header: "temp", unit: "fraction"},
			{key: "comm", header: "comm", unit: "fraction"},
			{key: "liveout", header: "liveout", unit: "fraction"},
			{key: "global_pct", header: "global%", unit: "percent"},
		},
	},
	{
		exp:       "fig8",
		title:     "Figure 8. IPC comparison (V-ISA instructions per cycle)",
		rowHeader: "bench",
		aggLabel:  "GeoMean",
		cols: []columnDef{
			{key: "original", header: "orig SS", unit: "ipc", agg: aggGeo},
			{key: "straightened", header: "straightened", unit: "ipc", agg: aggGeo},
			{key: "ildp_basic", header: "ILDP basic", unit: "ipc", agg: aggGeo},
			{key: "ildp_modified", header: "ILDP modified", unit: "ipc", agg: aggGeo},
			{key: "native_iisa", header: "native I-ISA", unit: "ipc", agg: aggGeo},
		},
	},
	{
		exp:       "fig9",
		title:     "Figure 9. IPC variation over machine parameters (modified ISA)",
		rowHeader: "bench",
		aggLabel:  "GeoMean",
		cols: []columnDef{
			{key: "acc8", header: "8 acc", unit: "ipc", agg: aggGeo},
			{key: "base", header: "base(4a/8PE/32K/0c)", unit: "ipc", agg: aggGeo},
			{key: "small_d", header: "8KB D$", unit: "ipc", agg: aggGeo},
			{key: "comm2", header: "2-cyc comm", unit: "ipc", agg: aggGeo},
			{key: "pe6", header: "6 PE", unit: "ipc", agg: aggGeo},
			{key: "pe4", header: "4 PE", unit: "ipc", agg: aggGeo},
		},
	},
	{
		exp:       "fusion",
		title:     "Ablation: unsplit memory operations (§4.5 extension, modified ISA)",
		rowHeader: "bench",
		aggLabel:  "Avg/GeoM",
		cols: []columnDef{
			{key: "expand_split", header: "expand split", unit: "ratio", agg: aggMean},
			{key: "expand_fused", header: "expand fused", unit: "ratio", agg: aggMean},
			{key: "ipc_split", header: "IPC split", unit: "ipc", agg: aggGeo},
			{key: "ipc_fused", header: "IPC fused", unit: "ipc", agg: aggGeo},
			{key: "static_split", header: "static split", unit: "ratio", agg: aggNone},
			{key: "static_fused", header: "static fused", unit: "ratio", agg: aggNone},
		},
	},
	{
		exp:       "threshold",
		title:     "Ablation: hot-trace threshold (the paper uses 50)",
		rowHeader: "threshold",
		cols: []columnDef{
			{key: "trans_fraction", header: "translated frac", unit: "fraction"},
			{key: "cost_share", header: "xlate cost / V-inst", unit: "insts"},
			{key: "fragments", header: "fragments", unit: "count"},
		},
	},
	{
		exp:       "superblock",
		title:     "Ablation: maximum superblock size (§4.1; the paper uses 200)",
		rowHeader: "max size",
		cols: []columnDef{
			{key: "ipc", header: "straightened IPC", unit: "ipc"},
			{key: "fragments", header: "fragments", unit: "count"},
			{key: "exits", header: "VM exits", unit: "count"},
		},
	},
	{
		exp:       "vmcost",
		title:     "VM software overhead (§4.1-4.2): interpretation + translation",
		rowHeader: "bench",
		aggLabel:  "Avg.",
		cols: []columnDef{
			{key: "interp_insts", header: "interp insts", unit: "insts", agg: aggNone, integer: true},
			{key: "trans_v_insts", header: "trans V-insts", unit: "insts", agg: aggNone, integer: true},
			{key: "interp_cost", header: "interp cost", unit: "insts", agg: aggNone, integer: true},
			{key: "xlate_cost", header: "xlate cost", unit: "insts", agg: aggNone, integer: true},
			{key: "ovh_per_v", header: "ovh/V-inst", unit: "insts", agg: aggMean},
			{key: "interp_per_src", header: "interp/src", unit: "insts", agg: aggMean},
		},
	},
	{
		exp:       "ras",
		title:     "Ablation: dual-address RAS size (eon + vortex, modified ISA)",
		rowHeader: "entries",
		cols: []columnDef{
			{key: "hit_rate", header: "hit rate", unit: "fraction"},
			{key: "ipc", header: "IPC", unit: "ipc"},
			{key: "expansion", header: "expansion", unit: "ratio"},
		},
	},
	{
		exp:       "variance",
		title:     "Dataset sensitivity: Table 2 means across perturbed data seeds",
		rowHeader: "seed",
		aggLabel:  "spread",
		cols: []columnDef{
			{key: "dyn_b", header: "dyn B", unit: "ratio", agg: aggSpread},
			{key: "dyn_m", header: "dyn M", unit: "ratio", agg: aggSpread},
			{key: "copy_pct_b", header: "copy% B", unit: "percent", agg: aggSpread},
			{key: "copy_pct_m", header: "copy% M", unit: "percent", agg: aggSpread},
		},
	},
	{
		exp:       "serve",
		title:     "Serving benchmark: multi-tenant scheduler throughput and quantum latency (ildpload)",
		rowHeader: "scenario",
		external:  true,
		cols: []columnDef{
			{key: "sessions", header: "sessions", unit: "count", integer: true},
			{key: "workers", header: "workers", unit: "count", integer: true},
			{key: "sessions_per_sec", header: "sess/s", unit: "persec"},
			{key: "quantum_p50_ms", header: "q p50 ms", unit: "ms"},
			{key: "quantum_p99_ms", header: "q p99 ms", unit: "ms"},
			{key: "wait_p99_ms", header: "wait p99 ms", unit: "ms"},
			{key: "quanta_per_session", header: "quanta/sess", unit: "count"},
		},
	},
}

// defFor returns the table definition for an experiment ID.
func defFor(exp string) (tableDef, bool) {
	for _, d := range tableDefs {
		if d.exp == exp {
			return d, true
		}
	}
	return tableDef{}, false
}

// ExperimentIDs returns every experiment ID report.Run can execute, in
// canonical order; externally-measured experiments (the ildpload
// serving benchmark) are omitted.
func ExperimentIDs() []string {
	out := make([]string, 0, len(tableDefs))
	for _, d := range tableDefs {
		if !d.external {
			out = append(out, d.exp)
		}
	}
	return out
}

// aggregate reduces a column's values per its aggregate kind.
func aggregate(kind aggKind, xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	switch kind {
	case aggMean:
		return stats.Mean(xs), true
	case aggGeo:
		return stats.GeoMean(xs), true
	case aggSpread:
		min, max, sum := xs[0], xs[0], 0.0
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
			sum += x
		}
		mean := sum / float64(len(xs))
		if mean == 0 {
			return 0, true
		}
		return (max - min) / mean, true
	default:
		return 0, false
	}
}

// Package report defines the machine-readable experiment report that
// `ildpbench -json` emits and `ildpreport` consumes: a versioned schema
// with one record per paper table/figure cell plus run metadata, a
// deterministic JSON encoding, table definitions shared by the emitter
// and the renderer, and the regeneration of EXPERIMENTS.md's generated
// block and the BENCH_experiments.json trajectory file.
//
// The point of the package is that "the reproduction's shape matches
// the paper" stops being prose: every cell of §4's tables and figures
// is a diffable record that CI can regenerate, validate against the
// schema, and compare against the committed documents.
package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// SchemaVersion is the current report schema. Consumers reject reports
// with a different version rather than guessing at field semantics.
const SchemaVersion = 1

// Meta describes the run that produced a report: everything needed to
// reproduce it with `ildpbench`.
type Meta struct {
	// Generator names the producing tool ("ildpbench").
	Generator string `json:"generator"`
	// Scale is the workload scale factor (loop trip multiplier).
	Scale int `json:"scale"`
	// Threshold is the hot-trace threshold (the paper uses 50).
	Threshold int `json:"threshold"`
	// Chain is the default chaining mode of the runs ("sw_pred.ras").
	Chain string `json:"chain"`
	// NumAcc is the default logical accumulator count (4).
	NumAcc int `json:"num_acc"`
	// Experiments lists the experiment IDs included, in run order.
	Experiments []string `json:"experiments"`
	// Workloads lists the benchmark stand-ins evaluated.
	Workloads []string `json:"workloads"`
}

// Record is one table/figure cell: experiment, series (column), bench
// (row), and the measured value. Units are documentation; aggregation
// rules live in the table definitions (defs.go).
type Record struct {
	// Exp is the experiment ID ("table2", "fig4", ... "variance").
	Exp string `json:"exp"`
	// Series is the stable column key within the experiment.
	Series string `json:"series"`
	// Bench is the row key: a workload name, or a sweep point rendered
	// as a string ("5", "25", "0").
	Bench string `json:"bench"`
	// Value is the measured cell value.
	Value float64 `json:"value"`
	// Unit documents the value's unit ("ratio", "ipc", "per1000",
	// "percent", "fraction", "insts", "count").
	Unit string `json:"unit"`
}

// Timing is one per-workload wall-clock measurement. Timings are
// machine-dependent and are excluded from document regeneration, the
// trajectory file, and golden comparisons; they exist so slow kernels
// are visible in the raw report.
type Timing struct {
	Name   string  `json:"name"`
	Millis float64 `json:"millis"`
}

// Report is a versioned machine-readable experiment report.
type Report struct {
	Schema  int      `json:"schema"`
	Meta    Meta     `json:"meta"`
	Records []Record `json:"records"`
	// Timings carries per-workload wall times (non-deterministic; see
	// Timing). Omitted from comparisons.
	Timings []Timing `json:"timings,omitempty"`
}

// Encode writes the report as indented JSON with a trailing newline.
// Encoding a decoded report reproduces the input byte-for-byte (the
// schema round-trip property the tests pin down).
func (r *Report) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// EncodeBytes returns the canonical JSON encoding of the report.
func (r *Report) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a report and validates it against the schema.
func Decode(data []byte) (*Report, error) {
	var r Report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("report: parse: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks the report against the schema: version, metadata
// sanity, and that every record names a defined experiment and series
// with a finite value. It does not require every experiment to be
// present (partial runs are valid reports).
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("report: schema %d, want %d", r.Schema, SchemaVersion)
	}
	if r.Meta.Generator == "" {
		return fmt.Errorf("report: missing meta.generator")
	}
	if r.Meta.Scale < 1 {
		return fmt.Errorf("report: meta.scale %d < 1", r.Meta.Scale)
	}
	if r.Meta.Threshold < 1 {
		return fmt.Errorf("report: meta.threshold %d < 1", r.Meta.Threshold)
	}
	if len(r.Records) == 0 {
		return fmt.Errorf("report: no records")
	}
	type colSet map[string]bool
	defs := map[string]colSet{}
	for _, d := range tableDefs {
		set := colSet{}
		for _, c := range d.cols {
			set[c.key] = true
		}
		defs[d.exp] = set
	}
	for i, rec := range r.Records {
		cols, ok := defs[rec.Exp]
		if !ok {
			return fmt.Errorf("report: record %d: unknown experiment %q", i, rec.Exp)
		}
		if !cols[rec.Series] {
			return fmt.Errorf("report: record %d: unknown series %q for %q", i, rec.Series, rec.Exp)
		}
		if rec.Bench == "" {
			return fmt.Errorf("report: record %d: empty bench", i)
		}
		if math.IsNaN(rec.Value) || math.IsInf(rec.Value, 0) {
			return fmt.Errorf("report: record %d (%s/%s/%s): non-finite value",
				i, rec.Exp, rec.Series, rec.Bench)
		}
	}
	// Within one experiment every series must cover the same benches:
	// a missing cell means the emitter and renderer disagree.
	byExp := map[string]map[string][]string{}
	for _, rec := range r.Records {
		if byExp[rec.Exp] == nil {
			byExp[rec.Exp] = map[string][]string{}
		}
		byExp[rec.Exp][rec.Series] = append(byExp[rec.Exp][rec.Series], rec.Bench)
	}
	for exp, series := range byExp {
		var want string
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			benches := append([]string(nil), series[k]...)
			sort.Strings(benches)
			got := fmt.Sprint(benches)
			if want == "" {
				want = got
			} else if got != want {
				return fmt.Errorf("report: experiment %q: series %q covers different benches than its siblings", exp, k)
			}
		}
	}
	return nil
}

// recordsFor returns the records of one experiment, in report order.
func (r *Report) recordsFor(exp string) []Record {
	var out []Record
	for _, rec := range r.Records {
		if rec.Exp == exp {
			out = append(out, rec)
		}
	}
	return out
}

// experiments returns the distinct experiment IDs present, in the
// canonical definition order.
func (r *Report) experiments() []string {
	present := map[string]bool{}
	for _, rec := range r.Records {
		present[rec.Exp] = true
	}
	var out []string
	for _, d := range tableDefs {
		if present[d.exp] {
			out = append(out, d.exp)
		}
	}
	return out
}

package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRun produces the deterministic part of a scale-1 table2 report
// (Timings are wall-clock and excluded from golden comparisons).
func goldenRun(t *testing.T) *Report {
	t.Helper()
	r, err := Run(RunOptions{Scale: 1, Threshold: 50, Experiments: []string{"table2"}})
	if err != nil {
		t.Fatal(err)
	}
	r.Timings = nil
	return r
}

// TestGoldenReport pins the emitted JSON and the rendered block for a
// fixed (scale, threshold): the report pipeline must stay byte-stable.
// Regenerate the files with UPDATE_GOLDEN=1 go test ./internal/report/.
func TestGoldenReport(t *testing.T) {
	r := goldenRun(t)
	gotJSON, err := r.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	gotBlock := []byte(r.RenderBlock("testdata"))

	jsonPath := filepath.Join("testdata", "table2-scale1.json")
	blockPath := filepath.Join("testdata", "table2-scale1.block")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(blockPath, gotBlock, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden files updated")
		return
	}

	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("report JSON differs from %s (regenerate with UPDATE_GOLDEN=1 if intended)", jsonPath)
	}
	wantBlock, err := os.ReadFile(blockPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBlock, wantBlock) {
		t.Errorf("rendered block differs from %s (regenerate with UPDATE_GOLDEN=1 if intended)", blockPath)
	}
}

// TestRoundTrip checks emit → parse → re-emit is the identity on bytes.
func TestRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "table2-scale1.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("decode+encode is not the identity")
	}
}

func validReport() *Report {
	return &Report{
		Schema: SchemaVersion,
		Meta:   Meta{Generator: "test", Scale: 1, Threshold: 50, Chain: "sw_pred.ras", NumAcc: 4},
		Records: []Record{
			{Exp: "table2", Series: "dyn_b", Bench: "gzip", Value: 1.7, Unit: "ratio"},
			{Exp: "table2", Series: "dyn_m", Bench: "gzip", Value: 1.2, Unit: "ratio"},
		},
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"schema", func(r *Report) { r.Schema = 99 }, "schema"},
		{"generator", func(r *Report) { r.Meta.Generator = "" }, "generator"},
		{"scale", func(r *Report) { r.Meta.Scale = 0 }, "scale"},
		{"unknown exp", func(r *Report) { r.Records[0].Exp = "fig99" }, "unknown experiment"},
		{"unknown series", func(r *Report) { r.Records[0].Series = "nope" }, "unknown series"},
		{"empty bench", func(r *Report) { r.Records[0].Bench = "" }, "empty bench"},
		{"coverage", func(r *Report) { r.Records[1].Bench = "gcc" }, "different benches"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			tc.mut(r)
			err := r.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
	if err := validReport().Validate(); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode([]byte(`{"schema":1,"bogus":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestSpliceAndCheckDoc(t *testing.T) {
	r := validReport()
	doc := []byte("# Title\n\n" + BeginMarker + "\nold\n" + EndMarker + "\n\ntail\n")
	block := r.RenderBlock("x.json")
	spliced, err := SpliceDoc(doc, block)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(spliced, []byte("# Title\n\n"+BeginMarker)) ||
		!bytes.HasSuffix(spliced, []byte("\ntail\n")) {
		t.Errorf("splice damaged surrounding text:\n%s", spliced)
	}
	if err := CheckDoc(spliced, r, "x.json"); err != nil {
		t.Errorf("freshly spliced doc reported stale: %v", err)
	}
	if err := CheckDoc(spliced, r, "other.json"); err == nil {
		t.Error("changed source not detected")
	}
	if err := CheckDoc(doc, r, "x.json"); err == nil {
		t.Error("stale doc not detected")
	}
	if _, err := SpliceDoc([]byte("no markers"), block); err == nil {
		t.Error("missing markers not detected")
	}
	if _, err := SpliceDoc(append(spliced, doc...), block); err == nil {
		t.Error("duplicate blocks not detected")
	}
}

func TestTrajectoryIdempotent(t *testing.T) {
	r := validReport()
	first, err := UpdateTrajectory(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	second, err := UpdateTrajectory(first, r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("applying the same report twice changed the trajectory")
	}
	// A different configuration appends rather than replaces.
	r2 := validReport()
	r2.Meta.Scale = 2
	third, err := UpdateTrajectory(second, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(third, []byte(`"scale": 1`)) || !bytes.Contains(third, []byte(`"scale": 2`)) {
		t.Errorf("expected both configurations present:\n%s", third)
	}
	h := Headline(r)
	if h["table2.dyn_b"] != 1.7 {
		t.Errorf("headline table2.dyn_b = %v, want 1.7", h["table2.dyn_b"])
	}
}

func TestExperimentIDsMatchDefs(t *testing.T) {
	ids := ExperimentIDs()
	internal := 0
	for _, d := range tableDefs {
		if !d.external {
			internal++
		}
	}
	if len(ids) != internal {
		t.Fatalf("ExperimentIDs has %d entries, want %d non-external defs", len(ids), internal)
	}
	seen := map[string]bool{}
	for _, d := range tableDefs {
		if seen[d.exp] {
			t.Errorf("duplicate experiment %q", d.exp)
		}
		seen[d.exp] = true
		keys := map[string]bool{}
		for _, c := range d.cols {
			if keys[c.key] {
				t.Errorf("%s: duplicate series %q", d.exp, c.key)
			}
			keys[c.key] = true
			if c.unit == "" {
				t.Errorf("%s/%s: missing unit", d.exp, c.key)
			}
		}
		if d.aggLabel == "" {
			for _, c := range d.cols {
				if c.agg != aggNone {
					t.Errorf("%s/%s: aggregate rule without aggregate row", d.exp, c.key)
				}
			}
		}
	}
}

package serve

import (
	"fmt"
	"testing"
	"time"

	"github.com/ildp/accdbt/internal/workload"
)

// TestDifferentialSoak is the PR's acceptance criterion: ≥200 sessions
// scheduled across ≥8 concurrent workers, the quantum sized so every
// session is forcibly preempted (checkpoint → encode → decode → restore
// into a fresh VM) multiple times, and every final architected state
// compared bit-for-bit — registers, PC, exit status, console, memory —
// against an uninterrupted single-VM pure-interpreter run of the same
// image. Any scheduler, checkpoint, or shared-store bug that perturbs a
// single guest-visible bit fails the test with the first diverging
// field. Tenants rotate so quota accounting churns too.
func TestDifferentialSoak(t *testing.T) {
	sessionsN := 200
	if testing.Short() {
		sessionsN = 48
	}
	s := testServer(t, Options{
		Workers:       8,
		QuantumVInsts: 15_000, // the smallest workload (~55k V-insts) preempts ≥ 3×
		MaxSessions:   sessionsN,
	})
	names := workload.Names()
	type job struct {
		sess *Session
		name string
		seed uint64
	}
	jobs := make([]job, 0, sessionsN)
	for i := 0; i < sessionsN; i++ {
		name := names[i%len(names)]
		seed := uint64(i/len(names)) % 4 // 48 distinct programs, oracles cached
		sess := submitWorkload(t, s, name, 1, seed, fmt.Sprintf("tenant-%d", i%7))
		jobs = append(jobs, job{sess, name, seed})
	}
	preempted := 0
	for _, j := range jobs {
		waitDone(t, j.sess, 300*time.Second)
		if got := j.sess.StateNow(); got != StateDone {
			t.Fatalf("session %s (%s seed=%d): state %s: %s",
				j.sess.ID, j.name, j.seed, got, j.sess.Err())
		}
		v := j.sess.view()
		if v.Quanta < 2 {
			t.Errorf("session %s (%s): only %d quanta — preemption never forced",
				j.sess.ID, j.name, v.Quanta)
		} else {
			preempted++
		}
		checkFinal(t, j.sess, oracle(t, j.name, 1, j.seed))
	}
	st := s.Stats()
	if st.Completed != uint64(sessionsN) {
		t.Errorf("completed = %d, want %d", st.Completed, sessionsN)
	}
	t.Logf("soak: %d sessions, %d preempted ≥ once, %d quanta, quantum p50/p99 = %.2f/%.2f ms",
		sessionsN, preempted, st.Quanta, st.QuantumP50ms, st.QuantumP99ms)
}

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/workload"
)

// testServer builds a server with small, preemption-heavy defaults and
// closes it with the test.
func testServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.QuantumVInsts == 0 {
		opts.QuantumVInsts = 20_000 // every scale-1 workload needs several quanta
	}
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

// oracleCache memoizes uninterrupted pure-interpreter runs per
// (workload, scale, seed); the soak reuses them across sessions.
var oracleCache sync.Map

// oracle returns the final CPU of an uninterrupted interpreter run.
func oracle(t *testing.T, name string, scale int, seed uint64) *emu.CPU {
	t.Helper()
	key := fmt.Sprintf("%s/%d/%d", name, scale, seed)
	if c, ok := oracleCache.Load(key); ok {
		return c.(*emu.CPU)
	}
	spec, err := workload.ByNameSeeded(name, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Program()
	if err != nil {
		t.Fatal(err)
	}
	cpu := emu.New(mem.New())
	if err := cpu.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(100_000_000); err != nil {
		t.Fatalf("oracle %s: %v", key, err)
	}
	oracleCache.Store(key, cpu)
	return cpu
}

// waitDone blocks until the session settles or the deadline expires.
func waitDone(t *testing.T, sess *Session, timeout time.Duration) {
	t.Helper()
	select {
	case <-sess.Done():
	case <-time.After(timeout):
		t.Fatalf("session %s stuck in state %s after %v", sess.ID, sess.StateNow(), timeout)
	}
}

// checkFinal decodes the session's final checkpoint and compares every
// architected field bit-for-bit against the oracle CPU.
func checkFinal(t *testing.T, sess *Session, want *emu.CPU) {
	t.Helper()
	final := sess.FinalCheckpoint()
	if final == nil {
		t.Fatalf("session %s (%s): no final checkpoint: %s", sess.ID, sess.StateNow(), sess.Err())
	}
	st, err := checkpoint.Decode(final)
	if err != nil {
		t.Fatalf("session %s: final checkpoint undecodable: %v", sess.ID, err)
	}
	if st.Halted != want.Halted || st.ExitStatus != want.ExitStatus {
		t.Fatalf("session %s: halted/exit = %v/%d, want %v/%d",
			sess.ID, st.Halted, st.ExitStatus, want.Halted, want.ExitStatus)
	}
	if st.PC != want.PC {
		t.Fatalf("session %s: PC = %#x, want %#x", sess.ID, st.PC, want.PC)
	}
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if st.Reg[r] != want.Reg[r] {
			t.Fatalf("session %s: R%d = %#x, want %#x", sess.ID, r, st.Reg[r], want.Reg[r])
		}
	}
	if string(st.Console) != want.ConsoleString() {
		t.Fatalf("session %s: console = %q, want %q", sess.ID, st.Console, want.ConsoleString())
	}
	m := mem.New()
	m.LoadSnapshot(st.Pages)
	if ok, addr := mem.Equal(m, want.Mem); !ok {
		t.Fatalf("session %s: memory differs at %#x", sess.ID, addr)
	}
}

// submitWorkload admits a named workload through the Go API.
func submitWorkload(t *testing.T, s *Server, name string, scale int, seed uint64, tenant string) *Session {
	t.Helper()
	spec, err := workload.ByNameSeeded(name, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Program()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.Submit(prog, tenant, name)
	if err != nil {
		t.Fatalf("submit %s: %v", name, err)
	}
	return sess
}

// TestSessionLifecycle runs one guest to completion across forced
// preemptions and proves its final state bit-identical to the
// uninterrupted interpreter oracle.
func TestSessionLifecycle(t *testing.T) {
	s := testServer(t, Options{Workers: 2, QuantumVInsts: 10_000})
	sess := submitWorkload(t, s, "gap", 1, 0, "t0")
	waitDone(t, sess, 60*time.Second)
	if got := sess.StateNow(); got != StateDone {
		t.Fatalf("state = %s (%s), want done", got, sess.Err())
	}
	v := sess.view()
	if v.Quanta < 2 {
		t.Errorf("quanta = %d, want ≥ 2 (preemption never fired)", v.Quanta)
	}
	if !v.Halted {
		t.Errorf("halted = false, want true")
	}
	checkFinal(t, sess, oracle(t, "gap", 1, 0))
	if got := s.Stats().Completed; got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

// TestHTTPAPI drives the full HTTP surface: submit by workload name and
// by raw image, long-poll to completion, fetch the final checkpoint,
// list, stats, kill, and the telemetry fall-through.
func TestHTTPAPI(t *testing.T) {
	s := testServer(t, Options{Workers: 2, QuantumVInsts: 10_000})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Submit by workload name.
	resp, err := http.Post(srv.URL+"/sessions?workload=gap", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Long-poll until done.
	deadline := time.Now().Add(60 * time.Second)
	for v.State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck: %+v", v)
		}
		resp, err := http.Get(srv.URL + "/sessions/" + v.ID + "?wait=2000")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.State.Terminal() && v.State != StateDone {
			t.Fatalf("session ended %s: %s", v.State, v.Error)
		}
	}

	// The final checkpoint decodes and matches the oracle.
	resp, err = http.Get(srv.URL + "/sessions/" + v.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, raw)
	}
	st, err := checkpoint.Decode(raw)
	if err != nil {
		t.Fatalf("checkpoint decode: %v", err)
	}
	want := oracle(t, "gap", 1, 0)
	if st.ExitStatus != want.ExitStatus || !st.Halted {
		t.Errorf("checkpoint exit = %v/%d, want true/%d", st.Halted, st.ExitStatus, want.ExitStatus)
	}

	// Submit the same program as a raw image body.
	spec, _ := workload.ByName("gap", 1)
	prog, err := spec.Program()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prog.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/sessions", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var v2 View
	if err := json.NewDecoder(resp.Body).Decode(&v2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || v2.Name != "image" {
		t.Fatalf("image submit: %d %+v", resp.StatusCode, v2)
	}

	// List shows both; stats counts them; /metrics still serves (the
	// plane fall-through) and includes scheduler series.
	resp, err = http.Get(srv.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var views []View
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 2 {
		t.Fatalf("list: %d sessions, want 2", len(views))
	}
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Admitted != 2 {
		t.Errorf("stats.admitted = %d, want 2", stats.Admitted)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "serve_admitted") {
		t.Errorf("/metrics missing scheduler series:\n%.400s", mb)
	}

	// Unknown session is a JSON 404.
	resp, err = http.Get(srv.URL + "/sessions/9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d, want 404", resp.StatusCode)
	}
}

// TestDrainResume is the graceful-shutdown acceptance path: drain a
// server with sessions still in flight, assert every unfinished session
// spilled with a meta sidecar, then resume them on a fresh server and
// prove they complete bit-identical to the oracle.
func TestDrainResume(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Workers: 2, QuantumVInsts: 5_000, SpillDir: dir})
	defer s.Close()

	names := []string{"gap", "bzip2", "mcf"}
	for _, name := range names {
		submitWorkload(t, s, name, 1, 0, "t0")
	}
	// Let the scheduler make some progress, then drain mid-run.
	waitQuanta(t, s, 2, 30*time.Second)
	spilled, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if spilled == 0 {
		t.Fatal("drain spilled 0 sessions; expected in-flight work (quantum too large?)")
	}
	if !s.Draining() {
		t.Error("Draining() = false after Drain")
	}
	if _, err := s.Submit(nil, "t0", "late"); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain: %v, want ErrDraining", err)
	}

	// A successor server picks the spill directory up.
	s2 := New(Options{Workers: 2, QuantumVInsts: 5_000, SpillDir: dir})
	defer s2.Close()
	resumed, corrupt, err := s2.Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != spilled || corrupt != 0 {
		t.Fatalf("resume = (%d, %d), want (%d, 0)", resumed, corrupt, spilled)
	}
	// Every resumed session runs to completion with the oracle's state.
	for _, v := range s2.SessionViews() {
		sess, err := s2.Session(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, sess, 60*time.Second)
		if got := sess.StateNow(); got != StateDone {
			t.Fatalf("resumed session %s (%s): state %s: %s", v.ID, v.Name, got, sess.Err())
		}
		checkFinal(t, sess, oracle(t, v.Name, 1, 0))
	}
	// Consumed spills leave no files behind.
	left, _ := countSpillFiles(dir)
	if left != 0 {
		t.Errorf("%d spill files left after resume", left)
	}
}

// waitQuanta blocks until the scheduler has executed at least n quanta.
func waitQuanta(t *testing.T, s *Server, n uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for s.reg.Counter("serve.quanta").Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler executed %d quanta, want ≥ %d",
				s.reg.Counter("serve.quanta").Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/workload"
)

// maxImageBytes bounds a submitted program image; anything larger is a
// 413, not an allocation.
const maxImageBytes = 16 << 20

// apiError is the JSON error envelope of every non-2xx response.
type apiError struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the service's HTTP API: session lifecycle under
// /sessions, scheduler stats under /stats, and the telemetry plane
// (/metrics, /events, /vms, /healthz, /readyz) on every other path.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleSubmit)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("GET /sessions/{id}", s.handleSession)
	mux.HandleFunc("GET /sessions/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleKill)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("/", s.plane.Handler())
	return mux
}

// handleSubmit admits a session. The program comes either from the
// request body (an alphaprog image) or, with ?workload=NAME[&scale=N]
// [&seed=N], from the built-in workload generators. The tenant is the
// X-Tenant header (or ?tenant=); empty means the anonymous tenant.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = r.URL.Query().Get("tenant")
	}
	var prog *alphaprog.Program
	name := "image"
	if wl := r.URL.Query().Get("workload"); wl != "" {
		scale := 1
		if v, err := strconv.Atoi(r.URL.Query().Get("scale")); err == nil && v > 0 {
			scale = v
		}
		seed := uint64(0)
		if v, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64); err == nil {
			seed = v
		}
		spec, err := workload.ByNameSeeded(wl, scale, seed)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad workload", err.Error())
			return
		}
		prog, err = spec.Program()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad workload", err.Error())
			return
		}
		name = wl
	} else {
		body := http.MaxBytesReader(w, r.Body, maxImageBytes)
		p, err := alphaprog.Load(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad image", err.Error())
			return
		}
		prog = p
	}
	sess, err := s.Submit(prog, tenant, name)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue_full", err.Error())
		case errors.Is(err, ErrTenantQuota):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "tenant_quota", err.Error())
		default:
			writeError(w, http.StatusInternalServerError, "submit", err.Error())
		}
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, sess.view())
}

// handleList returns every session in admission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.SessionViews())
}

// handleSession returns one session, optionally long-polling:
// ?wait=MILLIS blocks (bounded) until the session reaches a terminal
// state, so a client can submit-and-wait without spinning.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no_session", err.Error())
		return
	}
	if ms, err := strconv.Atoi(r.URL.Query().Get("wait")); err == nil && ms > 0 {
		timer := time.NewTimer(time.Duration(ms) * time.Millisecond)
		defer timer.Stop()
		select {
		case <-sess.Done():
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, sess.view())
}

// handleCheckpoint serves the final encoded architected state of a
// completed session — the bytes the differential harnesses decode and
// compare bit-for-bit against an uninterrupted interpreter run. A
// session that is still live (or ended without a final checkpoint) is
// a 409.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no_session", err.Error())
		return
	}
	final := sess.FinalCheckpoint()
	if final == nil {
		writeError(w, http.StatusConflict, "not_finished",
			"session has no final checkpoint (state "+string(sess.StateNow())+")")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(final)
}

// handleKill requests termination; the session settles StateKilled at
// its next V-instruction boundary (mid-quantum) or next dequeue.
func (s *Server) handleKill(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no_session", err.Error())
		return
	}
	sess.Kill()
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, sess.view())
}

// handleStats serves the scheduler snapshot.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the JSON error envelope with the given status.
func writeError(w http.ResponseWriter, code int, kind, reason string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: kind, Reason: reason})
}

package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ildp/accdbt/internal/checkpoint"
)

// countSpillFiles counts .ckpt + .json files in a spill directory.
func countSpillFiles(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ckpt") || strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}

// TestKillMidQuantum kills a session while its quantum is executing;
// the Stop hook must preempt at the next V-instruction boundary and the
// session must settle StateKilled without disturbing a sibling.
func TestKillMidQuantum(t *testing.T) {
	// One worker and a huge quantum: the victim occupies the worker
	// until the kill flag preempts it.
	s := testServer(t, Options{Workers: 1, QuantumVInsts: 1 << 40})
	victim := submitWorkload(t, s, "vpr", 50, 0, "t0")
	sibling := submitWorkload(t, s, "gap", 1, 0, "t0")

	// Wait until the victim is actually running, then kill it.
	deadline := time.Now().Add(30 * time.Second)
	for victim.StateNow() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("victim never ran (state %s)", victim.StateNow())
		}
		time.Sleep(time.Millisecond)
	}
	victim.Kill()
	waitDone(t, victim, 30*time.Second)
	if got := victim.StateNow(); got != StateKilled {
		t.Fatalf("victim state = %s (%s), want killed", got, victim.Err())
	}
	waitDone(t, sibling, 60*time.Second)
	if got := sibling.StateNow(); got != StateDone {
		t.Fatalf("sibling state = %s (%s), want done", got, sibling.Err())
	}
	checkFinal(t, sibling, oracle(t, "gap", 1, 0))
	if got := s.Stats().Killed; got != 1 {
		t.Errorf("killed = %d, want 1", got)
	}
}

// TestResumeCorruptCheckpoint feeds Resume a spill directory whose
// checkpoint bytes are corrupted: the typed checkpoint error must
// surface as that session's failure (a 409-style outcome), counted as
// corrupt, while the server keeps admitting and completing other work.
func TestResumeCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// A plausible spill set: valid meta, checkpoint with a flipped bit.
	valid := checkpoint.Encode(&checkpoint.State{PC: 0x1000})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x40 // damage the CRC trailer
	if err := os.WriteFile(filepath.Join(dir, "7.ckpt"), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "7.json"),
		[]byte(`{"id":"7","tenant":"t0","name":"gap","quanta":3,"v_insts":15000}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s := testServer(t, Options{Workers: 1, SpillDir: dir})
	resumed, corruptN, err := s.Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 || corruptN != 1 {
		t.Fatalf("resume = (%d, %d), want (0, 1)", resumed, corruptN)
	}
	views := s.SessionViews()
	if len(views) != 1 {
		t.Fatalf("sessions = %d, want 1", len(views))
	}
	sess, _ := s.Session(views[0].ID)
	if got := sess.StateNow(); got != StateFailed {
		t.Fatalf("corrupt-resume state = %s, want failed", got)
	}
	_, derr := checkpoint.Decode(corrupt)
	var ckErr *checkpoint.Error
	if !errors.As(derr, &ckErr) {
		t.Fatalf("test invariant broken: corruption produced %v, not a typed checkpoint error", derr)
	}
	if !strings.Contains(sess.Err(), "checkpoint:") {
		t.Errorf("failure cause %q does not name the checkpoint error", sess.Err())
	}
	// The server is not poisoned: new work admits and completes.
	next := submitWorkload(t, s, "gap", 1, 0, "t0")
	waitDone(t, next, 60*time.Second)
	if got := next.StateNow(); got != StateDone {
		t.Fatalf("post-corruption session state = %s (%s), want done", got, next.Err())
	}
}

// TestQuotaRejectThenReadmit rejects a tenant at its quota, then
// re-admits it once its live session finishes — the full 429-then-200
// client story.
func TestQuotaRejectThenReadmit(t *testing.T) {
	s := testServer(t, Options{Workers: 2, QuantumVInsts: 10_000, TenantQuota: 1})
	first := submitWorkload(t, s, "gap", 1, 0, "tenant-a")
	if _, err := s.Submit(nil, "tenant-a", "over"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota submit: %v, want ErrTenantQuota", err)
	}
	// A different tenant is unaffected.
	other := submitWorkload(t, s, "gap", 1, 1, "tenant-b")
	waitDone(t, first, 60*time.Second)
	// The quota slot freed: tenant-a re-admits successfully.
	second := submitWorkload(t, s, "bzip2", 1, 0, "tenant-a")
	waitDone(t, second, 60*time.Second)
	waitDone(t, other, 60*time.Second)
	checkFinal(t, second, oracle(t, "bzip2", 1, 0))
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestQueueFull rejects admission beyond MaxSessions with ErrQueueFull.
func TestQueueFull(t *testing.T) {
	s := testServer(t, Options{Workers: 1, QuantumVInsts: 1 << 40, MaxSessions: 2})
	a := submitWorkload(t, s, "vpr", 1, 0, "t0")
	b := submitWorkload(t, s, "parser", 1, 0, "t0")
	if _, err := s.Submit(nil, "t0", "over"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: %v, want ErrQueueFull", err)
	}
	waitDone(t, a, 60*time.Second)
	waitDone(t, b, 60*time.Second)
	// Capacity freed: admission works again.
	c := submitWorkload(t, s, "gap", 1, 0, "t0")
	waitDone(t, c, 60*time.Second)
}

// TestCrashBarrier panics inside one session's quantum and proves the
// blast radius is that session alone: it lands StateCrashed with the
// panic as its cause, the worker survives, and siblings complete
// bit-identical to their oracles.
func TestCrashBarrier(t *testing.T) {
	s := testServer(t, Options{Workers: 1, QuantumVInsts: 10_000})
	// The hook is read by workers only after a session flows through the
	// run-queue channel, so setting it before the first Submit is safe.
	s.hookQuantum = func(sess *Session) {
		if sess.Name == "bzip2" {
			panic("translator bug: impossible accumulator state")
		}
	}
	sibling := submitWorkload(t, s, "gap", 1, 0, "t0")
	bomb := submitWorkload(t, s, "bzip2", 1, 0, "t0")

	waitDone(t, bomb, 30*time.Second)
	if got := bomb.StateNow(); got != StateCrashed {
		t.Fatalf("bomb state = %s, want crashed", got)
	}
	if !strings.Contains(bomb.Err(), "impossible accumulator state") {
		t.Errorf("crash cause %q lost the panic value", bomb.Err())
	}
	waitDone(t, sibling, 60*time.Second)
	if got := sibling.StateNow(); got != StateDone {
		t.Fatalf("sibling state = %s (%s), want done", got, sibling.Err())
	}
	checkFinal(t, sibling, oracle(t, "gap", 1, 0))
	if got := s.Stats().Crashed; got != 1 {
		t.Errorf("crashed = %d, want 1", got)
	}
}

// TestShedCold forces the resident-checkpoint bound so cold sessions
// spill to disk mid-run, and proves spilled-and-reloaded sessions still
// finish bit-identical to the oracle.
func TestShedCold(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, Options{
		Workers: 1, QuantumVInsts: 5_000, MaxResident: 1, SpillDir: dir,
	})
	names := []string{"gap", "bzip2", "mcf", "twolf"}
	var sessions []*Session
	for _, name := range names {
		sessions = append(sessions, submitWorkload(t, s, name, 1, 0, "t0"))
	}
	for i, sess := range sessions {
		waitDone(t, sess, 120*time.Second)
		if got := sess.StateNow(); got != StateDone {
			t.Fatalf("session %s state = %s (%s), want done", sess.ID, got, sess.Err())
		}
		checkFinal(t, sess, oracle(t, names[i], 1, 0))
	}
	if got := s.reg.Counter("serve.spills").Load(); got == 0 {
		t.Error("no shedding spills with MaxResident=1 and 4 concurrent sessions")
	}
	if got := s.reg.Counter("serve.spill_loads").Load(); got == 0 {
		t.Error("no spill loads: shed checkpoints never resumed from disk")
	}
}

// TestSessionBudget fails a session that exhausts its cumulative
// V-instruction budget across quanta.
func TestSessionBudget(t *testing.T) {
	s := testServer(t, Options{Workers: 1, QuantumVInsts: 5_000, SessionVBudget: 12_000})
	sess := submitWorkload(t, s, "gap", 1, 0, "t0") // needs ~55k V-insts
	waitDone(t, sess, 30*time.Second)
	if got := sess.StateNow(); got != StateFailed {
		t.Fatalf("state = %s, want failed", got)
	}
	if !strings.Contains(sess.Err(), "budget") {
		t.Errorf("failure cause %q does not mention the budget", sess.Err())
	}
	v := sess.view()
	if v.Quanta < 2 {
		t.Errorf("quanta = %d, want ≥ 2 (budget should outlive the first quantum)", v.Quanta)
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/telemetry"
	"github.com/ildp/accdbt/internal/vm"
)

// worker pulls runnable sessions off the queue and runs them for one
// quantum each until the server drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case sess := <-s.runq:
			s.runQuantum(sess)
		}
	}
}

// runQuantum executes one scheduler quantum for sess: restore (or
// boot), run until the quantum's V-instruction deadline, a wall-clock
// safety timer, a kill, a drain, or a terminal event, then checkpoint
// and requeue — or settle a terminal state. A panic anywhere inside the
// quantum is quarantined into StateCrashed by the deferred barrier; it
// never unwinds into the worker loop, so sibling sessions and the
// server survive translator or executor bugs in one guest.
func (s *Server) runQuantum(sess *Session) {
	defer func() {
		if r := recover(); r != nil {
			s.crashSession(sess, r)
		}
	}()

	if sess.kill.Load() {
		s.finishSession(sess, StateKilled, "killed by client", nil)
		return
	}
	if s.opts.SessionWall > 0 {
		sess.mu.Lock()
		expired := time.Since(sess.admitted) > s.opts.SessionWall
		sess.mu.Unlock()
		if expired {
			s.failSession(sess, "session wall-clock timeout")
			return
		}
	}

	if s.hookQuantum != nil {
		s.hookQuantum(sess)
	}

	// Load the architected state to resume from: nil for a first
	// quantum (boot from the program image), an encoded checkpoint
	// otherwise — possibly read back from a shedding spill. A
	// checkpoint that no longer decodes is a typed failure of this
	// session only.
	st, err := s.loadState(sess)
	if err != nil {
		s.failSession(sess, "checkpoint: "+err.Error())
		return
	}

	sess.mu.Lock()
	sess.state = StateRunning
	startV := sess.vinsts
	wait := time.Since(sess.enqueued)
	sess.mu.Unlock()
	s.reg.Histogram("serve.wait_ms").Observe(float64(wait.Microseconds()) / 1000)

	cfg := vm.DefaultConfig()
	cfg.SelfHeal = true
	cfg.Store = s.store
	cfg.Metrics = sess.reg
	cfg.Poll = sess.tsess.Poll

	var vv *vm.VM
	target := int64(startV) + s.opts.QuantumVInsts
	cfg.Stop = func() bool {
		return s.draining.Load() || sess.kill.Load() || sess.desched.Load() ||
			int64(vv.Stats.TotalVInsts()) >= target
	}

	vv = vm.New(mem.New(), cfg)
	if st == nil {
		if err := vv.LoadProgram(sess.prog); err != nil {
			s.failSession(sess, "load: "+err.Error())
			return
		}
	} else {
		vv.Restore(st)
	}

	probe := telemetry.ProbeVM(vv, nil)
	sess.tsess.SetProbe(probe)
	sess.tsess.Unpark()

	var wallTimer *time.Timer
	if s.opts.QuantumWall > 0 {
		wallTimer = time.AfterFunc(s.opts.QuantumWall, func() { sess.desched.Store(true) })
		defer wallTimer.Stop()
	}

	quantumStart := time.Now()
	runErr := vv.Run(s.opts.SessionVBudget)
	elapsed := time.Since(quantumStart)
	if wallTimer != nil {
		wallTimer.Stop()
	}
	// Clear the safety flag before the session can be requeued; a timer
	// that fired between Stop and here only costs one short next quantum.
	sess.desched.Store(false)
	s.reg.Counter("serve.quanta").Inc()
	s.reg.Histogram("serve.quantum_ms").Observe(float64(elapsed.Microseconds()) / 1000)

	// Deschedule: push the boundary snapshot to the plane so scrapes
	// see the parked state instantly, then settle the outcome.
	sess.tsess.Publish(probe())
	sess.tsess.Park()

	ck := vv.Checkpoint()
	enc := checkpoint.Encode(ck)
	sess.mu.Lock()
	sess.quanta++
	sess.vinsts = vv.Stats.TotalVInsts()
	sess.lastRun = time.Now()
	sess.mu.Unlock()

	switch {
	case runErr == nil:
		sess.mu.Lock()
		sess.halted = ck.Halted
		sess.exitCode = ck.ExitStatus
		sess.console = string(ck.Console)
		sess.mu.Unlock()
		s.finishSession(sess, StateDone, "", enc)
	case errors.Is(runErr, vm.ErrBudget):
		s.failSession(sess, "v-instruction budget exhausted")
	case errors.Is(runErr, vm.ErrPreempted):
		if sess.kill.Load() {
			s.finishSession(sess, StateKilled, "killed by client", nil)
			return
		}
		// Ordinary quantum expiry (or drain): park the checkpoint and
		// requeue. Under drain the worker loop exits next iteration and
		// Drain spills the ready set from the session table.
		sess.mu.Lock()
		sess.state = StateReady
		sess.ckpt = enc
		sess.spilled = false
		sess.enqueued = time.Now()
		sess.mu.Unlock()
		s.mu.Lock()
		s.resident++
		s.mu.Unlock()
		s.reg.Counter("serve.preempts").Inc()
		s.enqueue(sess)
		s.shedCold()
	default:
		// A guest trap (or an unrecovered VM failure with SelfHeal
		// exhausted) is this session's problem alone.
		var trap *emu.Trap
		if errors.As(runErr, &trap) {
			s.failSession(sess, "trap: "+trap.Error())
		} else {
			s.failSession(sess, runErr.Error())
		}
	}
	s.updateGauges()
}

// loadState returns the checkpoint to resume sess from: nil for a
// first quantum, the decoded in-memory checkpoint, or the decoded
// shedding spill (read back and deleted).
func (s *Server) loadState(sess *Session) (*checkpoint.State, error) {
	sess.mu.Lock()
	enc, spilled := sess.ckpt, sess.spilled
	sess.ckpt = nil
	sess.spilled = false
	sess.mu.Unlock()
	if spilled {
		raw, err := os.ReadFile(s.spillPath(sess.ID))
		if err != nil {
			return nil, err
		}
		os.Remove(s.spillPath(sess.ID))
		s.reg.Counter("serve.spill_loads").Inc()
		enc = raw
	} else if enc != nil {
		s.mu.Lock()
		s.resident--
		s.mu.Unlock()
	}
	if enc == nil {
		return nil, nil
	}
	return checkpoint.Decode(enc)
}

// shedCold enforces MaxResident: while more checkpoints sit in memory
// than allowed, the coldest ready session (least recently run — the one
// least likely to be re-scheduled soon) is written to the spill
// directory and its in-memory bytes are released. Overload therefore
// degrades by slowing cold sessions' resumes, never by refusing to
// checkpoint a hot one.
func (s *Server) shedCold() {
	if s.opts.MaxResident <= 0 || s.opts.SpillDir == "" {
		return
	}
	for {
		s.mu.Lock()
		if s.resident <= s.opts.MaxResident {
			s.mu.Unlock()
			return
		}
		var coldest *Session
		var coldestAt time.Time
		for _, sess := range s.sessions {
			sess.mu.Lock()
			candidate := sess.state == StateReady && !sess.spilled && sess.ckpt != nil
			at := sess.lastRun
			sess.mu.Unlock()
			if candidate && (coldest == nil || at.Before(coldestAt)) {
				coldest, coldestAt = sess, at
			}
		}
		s.mu.Unlock()
		if coldest == nil {
			return
		}
		if err := s.spillSession(coldest); err != nil {
			s.log.Error("shed spill failed", "session", coldest.ID, "err", err)
			return
		}
	}
}

// spillSession writes a ready session's checkpoint to disk and drops
// the in-memory copy.
func (s *Server) spillSession(sess *Session) error {
	if err := os.MkdirAll(s.opts.SpillDir, 0o755); err != nil {
		return err
	}
	sess.mu.Lock()
	if sess.state != StateReady || sess.spilled || sess.ckpt == nil {
		sess.mu.Unlock()
		return nil
	}
	enc := sess.ckpt
	sess.mu.Unlock()
	if err := os.WriteFile(s.spillPath(sess.ID), enc, 0o644); err != nil {
		return err
	}
	sess.mu.Lock()
	sess.ckpt = nil
	sess.spilled = true
	sess.mu.Unlock()
	s.mu.Lock()
	s.resident--
	s.mu.Unlock()
	s.reg.Counter("serve.spills").Inc()
	return nil
}

// spillPath is the on-disk checkpoint location for a session ID.
func (s *Server) spillPath(id string) string {
	return filepath.Join(s.opts.SpillDir, id+".ckpt")
}

// spillForDrain persists one unfinished session for a successor server:
// its checkpoint bytes (captured now for sessions that never ran) plus
// the JSON meta sidecar Resume reads back.
func (s *Server) spillForDrain(sess *Session) error {
	sess.mu.Lock()
	enc, spilled := sess.ckpt, sess.spilled
	quanta, vinsts := sess.quanta, sess.vinsts
	sess.mu.Unlock()
	if !spilled && enc == nil {
		// Admitted but never scheduled: boot the VM just far enough to
		// have an architected state worth spilling — load the image and
		// checkpoint before the first instruction.
		vv := vm.New(mem.New(), vm.DefaultConfig())
		if err := vv.LoadProgram(sess.prog); err != nil {
			return err
		}
		enc = checkpoint.Encode(vv.Checkpoint())
	}
	if enc != nil {
		if err := os.WriteFile(s.spillPath(sess.ID), enc, 0o644); err != nil {
			return err
		}
	} // else: already on disk from a shedding spill
	meta, err := json.Marshal(spillMeta{
		ID: sess.ID, Tenant: sess.Tenant, Name: sess.Name,
		Quanta: quanta, VInsts: vinsts,
	})
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.opts.SpillDir, sess.ID+".json"), meta, 0o644)
}

// readSpillMeta parses one drain sidecar.
func readSpillMeta(path string) (*spillMeta, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var meta spillMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, err
	}
	if meta.ID == "" {
		return nil, fmt.Errorf("spill meta %s: missing id", path)
	}
	return &meta, nil
}

// finishSession settles a terminal state, releasing the session's
// admission slot, closing its done channel, and finishing its plane
// registration. final, when non-nil, is the encoded final checkpoint
// served on /sessions/{id}/checkpoint and compared bit-for-bit by the
// differential harnesses.
func (s *Server) finishSession(sess *Session, st State, msg string, final []byte) {
	sess.mu.Lock()
	if sess.state.Terminal() {
		sess.mu.Unlock()
		return
	}
	sess.state = st
	sess.errMsg = msg
	sess.final = final
	hadResident := sess.ckpt != nil
	hadSpill := sess.spilled
	sess.ckpt = nil
	sess.spilled = false
	done := sess.done
	sess.mu.Unlock()
	if hadSpill {
		os.Remove(s.spillPath(sess.ID))
	}

	s.mu.Lock()
	s.live--
	s.byTenant[sess.Tenant]--
	if s.byTenant[sess.Tenant] <= 0 {
		delete(s.byTenant, sess.Tenant)
	}
	if hadResident {
		s.resident--
	}
	s.mu.Unlock()

	switch st {
	case StateDone:
		s.reg.Counter("serve.completed").Inc()
	case StateFailed:
		s.reg.Counter("serve.failed").Inc()
	case StateKilled:
		s.reg.Counter("serve.killed").Inc()
	case StateCrashed:
		s.reg.Counter("serve.crashed").Inc()
	}
	// The plane session gets a final marker; its cached snapshot (the
	// last published quantum boundary) remains the served state.
	sess.tsess.Finish()
	close(done)
	s.updateGauges()
	if msg != "" {
		s.log.Info("session finished", "session", sess.ID, "state", string(st), "cause", msg)
	} else {
		s.log.Info("session finished", "session", sess.ID, "state", string(st))
	}
}

// failSession settles StateFailed with a cause.
func (s *Server) failSession(sess *Session, msg string) {
	s.finishSession(sess, StateFailed, msg, nil)
}

// crashSession is the crash barrier's landing: the panic value becomes
// the quarantined session's failure cause.
func (s *Server) crashSession(sess *Session, r any) {
	s.log.Error("session crashed", "session", sess.ID, "panic", fmt.Sprint(r))
	s.finishSession(sess, StateCrashed, fmt.Sprintf("panic: %v", r), nil)
}

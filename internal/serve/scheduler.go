package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/flight"
	"github.com/ildp/accdbt/internal/iofs"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/telemetry"
	"github.com/ildp/accdbt/internal/vm"
)

// worker pulls runnable sessions off the queue and runs them for one
// quantum each until the server drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case sess := <-s.runq:
			s.runQuantum(sess)
		}
	}
}

// runQuantum executes one scheduler quantum for sess: restore (or
// boot), run until the quantum's V-instruction deadline, a wall-clock
// safety timer, a kill, a drain, or a terminal event, then checkpoint
// and requeue — or settle a terminal state. A panic anywhere inside the
// quantum is quarantined into StateCrashed by the deferred barrier; it
// never unwinds into the worker loop, so sibling sessions and the
// server survive translator or executor bugs in one guest.
func (s *Server) runQuantum(sess *Session) {
	// segRaw is the encoded checkpoint this quantum resumed from (nil on
	// a boot quantum); the crash barrier and the failure paths bundle it
	// so the failing segment can be replayed from its exact start state.
	var segRaw []byte
	defer func() {
		if r := recover(); r != nil {
			s.emitBundle(sess, &flight.Bundle{
				Kind:       flight.KindCrash,
				Cause:      fmt.Sprintf("panic: %v", r),
				Config:     flight.CaptureConfig(s.quantumConfig()),
				Budget:     s.opts.SessionVBudget,
				Program:    s.progBytes(sess),
				Checkpoint: segRaw,
				Events:     []string{"panic quarantined by the crash barrier"},
			})
			s.crashSession(sess, r)
		}
	}()

	if sess.kill.Load() {
		s.finishSession(sess, StateKilled, "killed by client", nil)
		return
	}
	if s.opts.SessionWall > 0 {
		sess.mu.Lock()
		expired := time.Since(sess.admitted) > s.opts.SessionWall
		sess.mu.Unlock()
		if expired {
			s.failSession(sess, "session wall-clock timeout")
			return
		}
	}

	if s.hookQuantum != nil {
		s.hookQuantum(sess)
	}

	// Load the architected state to resume from: nil for a first
	// quantum (boot from the program image), an encoded checkpoint
	// otherwise — possibly read back from a shedding spill. A
	// checkpoint that no longer decodes is a typed failure of this
	// session only.
	st, raw, err := s.loadState(sess)
	if err != nil {
		s.failSession(sess, "checkpoint: "+err.Error())
		return
	}
	segRaw = raw

	sess.mu.Lock()
	sess.state = StateRunning
	startV := sess.vinsts
	wait := time.Since(sess.enqueued)
	sess.mu.Unlock()
	s.reg.Histogram("serve.wait_ms").Observe(float64(wait.Microseconds()) / 1000)

	cfg := s.quantumConfig()
	cfg.Store = s.store
	cfg.Metrics = sess.reg
	cfg.Poll = sess.tsess.Poll

	var vv *vm.VM
	target := int64(startV) + s.opts.QuantumVInsts
	cfg.Stop = func() bool {
		return s.draining.Load() || sess.kill.Load() || sess.desched.Load() ||
			int64(vv.Stats.TotalVInsts()) >= target
	}

	vv = vm.New(mem.New(), cfg)
	if st == nil {
		if err := vv.LoadProgram(sess.prog); err != nil {
			s.failSession(sess, "load: "+err.Error())
			return
		}
	} else {
		vv.Restore(st)
	}

	probe := telemetry.ProbeVM(vv, nil)
	sess.tsess.SetProbe(probe)
	sess.tsess.Unpark()

	var wallTimer *time.Timer
	if s.opts.QuantumWall > 0 {
		wallTimer = time.AfterFunc(s.opts.QuantumWall, func() { sess.desched.Store(true) })
		defer wallTimer.Stop()
	}

	quantumStart := time.Now()
	runErr := vv.Run(s.opts.SessionVBudget)
	elapsed := time.Since(quantumStart)
	if wallTimer != nil {
		wallTimer.Stop()
	}
	// Clear the safety flag before the session can be requeued; a timer
	// that fired between Stop and here only costs one short next quantum.
	sess.desched.Store(false)
	s.reg.Counter("serve.quanta").Inc()
	s.reg.Histogram("serve.quantum_ms").Observe(float64(elapsed.Microseconds()) / 1000)

	// Deschedule: push the boundary snapshot to the plane so scrapes
	// see the parked state instantly, then settle the outcome.
	sess.tsess.Publish(probe())
	sess.tsess.Park()

	ck := vv.Checkpoint()
	enc := checkpoint.Encode(ck)
	sess.mu.Lock()
	sess.quanta++
	sess.vinsts = vv.Stats.TotalVInsts()
	sess.pages = vv.Pages()
	sess.lastRun = time.Now()
	quanta := sess.quanta
	sess.mu.Unlock()

	// bundleFor shapes this quantum's failure into a flight-recorder
	// bundle: the segment-start state, the config fingerprint, and the
	// architected position and counters at the failure.
	bundleFor := func(kind string, cause string) *flight.Bundle {
		b := &flight.Bundle{
			Kind:       kind,
			VPC:        vv.CPU().PC,
			Cause:      cause,
			Config:     flight.CaptureConfig(cfg),
			Budget:     s.opts.SessionVBudget,
			Checkpoint: segRaw,
			Counters:   ck.Counters,
			Events: []string{
				fmt.Sprintf("session %s tenant %q name %q", sess.ID, sess.Tenant, sess.Name),
				fmt.Sprintf("quantum %d, %d v-insts retired", quanta, vv.Stats.TotalVInsts()),
				"failure: " + cause,
			},
		}
		if segRaw == nil {
			b.Program = s.progBytes(sess)
		}
		return b
	}

	switch {
	case runErr == nil:
		sess.mu.Lock()
		sess.halted = ck.Halted
		sess.exitCode = ck.ExitStatus
		sess.console = string(ck.Console)
		sess.mu.Unlock()
		s.finishSession(sess, StateDone, "", enc)
	case errors.Is(runErr, vm.ErrBudget):
		s.emitBundle(sess, bundleFor(flight.KindBudget, runErr.Error()))
		s.failSession(sess, "v-instruction budget exhausted")
	case errors.Is(runErr, vm.ErrPreempted):
		if sess.kill.Load() {
			s.finishSession(sess, StateKilled, "killed by client", nil)
			return
		}
		if msg := s.tenantPageOverage(sess); msg != "" {
			// The tenant's resident-page sum crossed its quota during
			// this quantum: the session that pushed it over dies typed at
			// the boundary. No bundle — the kill is a cross-session
			// policy decision, not a replayable guest failure.
			s.reg.Counter("serve.resource_kills").Inc()
			s.failSession(sess, msg)
			break
		}
		// Ordinary quantum expiry (or drain): park the checkpoint and
		// requeue. Under drain the worker loop exits next iteration and
		// Drain spills the ready set from the session table.
		sess.mu.Lock()
		sess.state = StateReady
		sess.ckpt = enc
		sess.spilled = false
		sess.enqueued = time.Now()
		sess.mu.Unlock()
		s.mu.Lock()
		s.resident++
		s.mu.Unlock()
		s.reg.Counter("serve.preempts").Inc()
		s.enqueue(sess)
		s.shedCold()
	default:
		// A guest trap (or an unrecovered VM failure with SelfHeal
		// exhausted) is this session's problem alone. Resource-governor
		// traps are classified apart from ordinary guest traps so the
		// kill shows up in resource accounting.
		var rf *mem.ResourceFault
		var trap *emu.Trap
		switch {
		case errors.As(runErr, &rf):
			s.reg.Counter("serve.resource_kills").Inc()
			s.emitBundle(sess, bundleFor(flight.KindResource, runErr.Error()))
			s.failSession(sess, "resource: "+runErr.Error())
		case errors.As(runErr, &trap):
			s.emitBundle(sess, bundleFor(flight.KindTrap, runErr.Error()))
			s.failSession(sess, "trap: "+trap.Error())
		default:
			s.emitBundle(sess, bundleFor(flight.KindError, runErr.Error()))
			s.failSession(sess, runErr.Error())
		}
	}
	s.updateGauges()
}

// quantumConfig is the VM configuration every quantum runs under and
// every recorded bundle fingerprints; hooks and sinks are attached by
// runQuantum itself.
func (s *Server) quantumConfig() vm.Config {
	cfg := vm.DefaultConfig()
	cfg.SelfHeal = true
	cfg.MaxPages = s.opts.SessionMaxPages
	return cfg
}

// progBytes serialises the session's program image for a bundle; nil
// for resumed sessions (their memory lives in the checkpoint) or if the
// image fails to encode.
func (s *Server) progBytes(sess *Session) []byte {
	if sess.prog == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := sess.prog.Save(&buf); err != nil {
		return nil
	}
	return buf.Bytes()
}

// tenantPageOverage reports a non-empty kill message when sess's tenant
// has grown past its resident-page quota.
func (s *Server) tenantPageOverage(sess *Session) string {
	if s.opts.TenantPageQuota <= 0 {
		return ""
	}
	s.mu.Lock()
	total := s.tenantPagesLocked(sess.Tenant)
	s.mu.Unlock()
	if total <= s.opts.TenantPageQuota {
		return ""
	}
	return fmt.Sprintf("resource: tenant %q resident pages %d exceed quota %d",
		sess.Tenant, total, s.opts.TenantPageQuota)
}

// loadState returns the checkpoint to resume sess from: nil for a
// first quantum, the decoded in-memory checkpoint, or the decoded
// shedding spill (read back and deleted). It also returns the raw
// encoded bytes for the flight recorder. A spill the filesystem tears
// or truncates never parses — the checkpoint CRC rejects it — so the
// error is always typed, never silent corruption.
func (s *Server) loadState(sess *Session) (*checkpoint.State, []byte, error) {
	sess.mu.Lock()
	enc, spilled := sess.ckpt, sess.spilled
	sess.ckpt = nil
	sess.spilled = false
	sess.mu.Unlock()
	if spilled {
		raw, err := s.fs.ReadFile(s.spillPath(sess.ID))
		if err != nil {
			s.noteIOFault("spill read", sess.ID, err)
			return nil, nil, err
		}
		s.fs.Remove(s.spillPath(sess.ID))
		s.reg.Counter("serve.spill_loads").Inc()
		enc = raw
	} else if enc != nil {
		s.mu.Lock()
		s.resident--
		s.mu.Unlock()
	}
	if enc == nil {
		return nil, nil, nil
	}
	st, err := checkpoint.Decode(enc)
	if err != nil {
		return nil, nil, err
	}
	return st, enc, nil
}

// shedCold enforces MaxResident: while more checkpoints sit in memory
// than allowed, the coldest ready session (least recently run — the one
// least likely to be re-scheduled soon) is written to the spill
// directory and its in-memory bytes are released. Overload therefore
// degrades by slowing cold sessions' resumes, never by refusing to
// checkpoint a hot one.
func (s *Server) shedCold() {
	if s.opts.MaxResident <= 0 || s.opts.SpillDir == "" {
		return
	}
	for {
		s.mu.Lock()
		if s.resident <= s.opts.MaxResident {
			s.mu.Unlock()
			return
		}
		var coldest *Session
		var coldestAt time.Time
		for _, sess := range s.sessions {
			sess.mu.Lock()
			candidate := sess.state == StateReady && !sess.spilled && sess.ckpt != nil
			at := sess.lastRun
			sess.mu.Unlock()
			if candidate && (coldest == nil || at.Before(coldestAt)) {
				coldest, coldestAt = sess, at
			}
		}
		s.mu.Unlock()
		if coldest == nil {
			return
		}
		if err := s.spillSession(coldest); err != nil {
			// Shedding failure is non-fatal: the checkpoint stays
			// resident (the atomic write never clobbered anything) and
			// the session runs on; only the pressure-relief is lost.
			s.noteIOFault("shed spill", coldest.ID, err)
			return
		}
	}
}

// spillSession writes a ready session's checkpoint to disk — via the
// write-temp/fsync/rename protocol, so a fault mid-write never leaves
// a torn file at the spill path — and drops the in-memory copy.
func (s *Server) spillSession(sess *Session) error {
	if err := s.fs.MkdirAll(s.opts.SpillDir, 0o755); err != nil {
		return err
	}
	sess.mu.Lock()
	if sess.state != StateReady || sess.spilled || sess.ckpt == nil {
		sess.mu.Unlock()
		return nil
	}
	enc := sess.ckpt
	sess.mu.Unlock()
	if err := iofs.AtomicWriteFile(s.fs, s.spillPath(sess.ID), enc, 0o644); err != nil {
		return err
	}
	sess.mu.Lock()
	sess.ckpt = nil
	sess.spilled = true
	sess.mu.Unlock()
	s.mu.Lock()
	s.resident--
	s.mu.Unlock()
	s.reg.Counter("serve.spills").Inc()
	return nil
}

// spillPath is the on-disk checkpoint location for a session ID.
func (s *Server) spillPath(id string) string {
	return filepath.Join(s.opts.SpillDir, id+".ckpt")
}

// spillForDrain persists one unfinished session for a successor server:
// its checkpoint bytes (captured now for sessions that never ran) plus
// the JSON meta sidecar Resume reads back.
func (s *Server) spillForDrain(sess *Session) error {
	sess.mu.Lock()
	enc, spilled := sess.ckpt, sess.spilled
	quanta, vinsts := sess.quanta, sess.vinsts
	sess.mu.Unlock()
	if !spilled && enc == nil {
		// Admitted but never scheduled: boot the VM just far enough to
		// have an architected state worth spilling — load the image and
		// checkpoint before the first instruction.
		vv := vm.New(mem.New(), vm.DefaultConfig())
		if err := vv.LoadProgram(sess.prog); err != nil {
			return err
		}
		enc = checkpoint.Encode(vv.Checkpoint())
	}
	if enc != nil {
		if err := iofs.AtomicWriteFile(s.fs, s.spillPath(sess.ID), enc, 0o644); err != nil {
			return err
		}
	} // else: already on disk from a shedding spill
	// The sidecar is written second: a crash or fault between the two
	// writes leaves a checkpoint no sidecar names, which the successor's
	// Resume counts as an orphan and sweeps — never a half-adopted
	// session.
	meta, err := json.Marshal(spillMeta{
		ID: sess.ID, Tenant: sess.Tenant, Name: sess.Name,
		Quanta: quanta, VInsts: vinsts,
	})
	if err != nil {
		return err
	}
	return iofs.AtomicWriteFile(s.fs, filepath.Join(s.opts.SpillDir, sess.ID+".json"), meta, 0o644)
}

// readSpillMeta parses one drain sidecar.
func readSpillMeta(fsys iofs.FS, path string) (*spillMeta, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var meta spillMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, err
	}
	if meta.ID == "" {
		return nil, fmt.Errorf("spill meta %s: missing id", path)
	}
	return &meta, nil
}

// finishSession settles a terminal state, releasing the session's
// admission slot, closing its done channel, and finishing its plane
// registration. final, when non-nil, is the encoded final checkpoint
// served on /sessions/{id}/checkpoint and compared bit-for-bit by the
// differential harnesses.
func (s *Server) finishSession(sess *Session, st State, msg string, final []byte) {
	sess.mu.Lock()
	if sess.state.Terminal() {
		sess.mu.Unlock()
		return
	}
	sess.state = st
	sess.errMsg = msg
	sess.final = final
	hadResident := sess.ckpt != nil
	hadSpill := sess.spilled
	sess.ckpt = nil
	sess.spilled = false
	done := sess.done
	sess.mu.Unlock()
	if hadSpill {
		s.fs.Remove(s.spillPath(sess.ID))
	}

	s.mu.Lock()
	s.live--
	s.byTenant[sess.Tenant]--
	if s.byTenant[sess.Tenant] <= 0 {
		delete(s.byTenant, sess.Tenant)
	}
	if hadResident {
		s.resident--
	}
	s.mu.Unlock()

	switch st {
	case StateDone:
		s.reg.Counter("serve.completed").Inc()
	case StateFailed:
		s.reg.Counter("serve.failed").Inc()
	case StateKilled:
		s.reg.Counter("serve.killed").Inc()
	case StateCrashed:
		s.reg.Counter("serve.crashed").Inc()
	}
	// The plane session gets a final marker; its cached snapshot (the
	// last published quantum boundary) remains the served state.
	sess.tsess.Finish()
	close(done)
	s.updateGauges()
	if msg != "" {
		s.log.Info("session finished", "session", sess.ID, "state", string(st), "cause", msg)
	} else {
		s.log.Info("session finished", "session", sess.ID, "state", string(st))
	}
}

// failSession settles StateFailed with a cause.
func (s *Server) failSession(sess *Session, msg string) {
	s.finishSession(sess, StateFailed, msg, nil)
}

// crashSession is the crash barrier's landing: the panic value becomes
// the quarantined session's failure cause.
func (s *Server) crashSession(sess *Session, r any) {
	s.log.Error("session crashed", "session", sess.ID, "panic", fmt.Sprint(r))
	s.finishSession(sess, StateCrashed, fmt.Sprintf("panic: %v", r), nil)
}

// noteIOFault counts and logs one failed persistence operation. Every
// such failure is a session-local, typed degradation — the scheduler
// and sibling sessions run on.
func (s *Server) noteIOFault(op, id string, err error) {
	s.reg.Counter("serve.io_faults").Inc()
	s.log.Warn("persistence fault", "op", op, "session", id, "err", err)
}

// emitBundle writes a flight-recorder bundle for a failing session to
// BundleDir. Recording is best-effort evidence capture: a bundle that
// cannot be written (including under injected I/O faults — the write
// goes through the same filesystem) is logged and dropped, never
// allowed to turn one failure into two.
func (s *Server) emitBundle(sess *Session, b *flight.Bundle) {
	if s.opts.BundleDir == "" {
		return
	}
	if len(b.Program) == 0 && len(b.Checkpoint) == 0 {
		return // no state source; nothing a replay could execute
	}
	if err := s.fs.MkdirAll(s.opts.BundleDir, 0o755); err != nil {
		s.noteIOFault("bundle dir", sess.ID, err)
		return
	}
	path := filepath.Join(s.opts.BundleDir, sess.ID+".bundle")
	if err := iofs.AtomicWriteFile(s.fs, path, flight.Encode(b), 0o644); err != nil {
		s.noteIOFault("bundle write", sess.ID, err)
		return
	}
	s.reg.Counter("serve.bundles").Inc()
	s.log.Info("flight bundle recorded", "session", sess.ID, "kind", b.Kind, "path", path)
}

// bundleDrainFailure records an io_fault bundle for a session whose
// drain spill failed: the resident checkpoint bytes are the evidence —
// the exact architected state the fault prevented from reaching disk.
func (s *Server) bundleDrainFailure(sess *Session, cause error) {
	if s.opts.BundleDir == "" {
		return
	}
	sess.mu.Lock()
	enc := sess.ckpt
	sess.mu.Unlock()
	if enc == nil {
		return
	}
	st, err := checkpoint.Decode(enc)
	if err != nil {
		return
	}
	s.emitBundle(sess, &flight.Bundle{
		Kind:       flight.KindIOFault,
		VPC:        st.PC,
		Cause:      cause.Error(),
		Config:     flight.CaptureConfig(s.quantumConfig()),
		Budget:     s.opts.SessionVBudget,
		Checkpoint: enc,
		Counters:   st.Counters,
		Events: []string{
			fmt.Sprintf("session %s tenant %q name %q", sess.ID, sess.Tenant, sess.Name),
			"drain spill failed: " + cause.Error(),
		},
	})
}

package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/telemetry"
)

// State is a session's position in the scheduler lifecycle.
type State string

// Session lifecycle states. A session moves queued → running → ready
// (checkpointed between quanta, possibly spilled to disk) and around
// again until it reaches one of the terminal states: done (guest
// exited), failed (trap, budget, timeout, or a bad checkpoint), killed
// (client DELETE), or crashed (runtime panic quarantined by the crash
// barrier).
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateReady   State = "ready"
	StateDone    State = "done"
	StateFailed  State = "failed"
	StateKilled  State = "killed"
	StateCrashed State = "crashed"
)

// Terminal reports whether st is an end state.
func (st State) Terminal() bool {
	switch st {
	case StateDone, StateFailed, StateKilled, StateCrashed:
		return true
	}
	return false
}

// Session is one admitted guest program. The scheduler owns all
// mutable fields under mu; the kill and desched flags are the only
// words written from other goroutines while a quantum runs (they are
// read by the VM's Stop hook at V-instruction boundaries).
type Session struct {
	// ID is the server-assigned session identifier.
	ID string
	// Tenant is the admission-quota bucket the session counts against.
	Tenant string
	// Name labels the session (workload name or "image").
	Name string

	// prog is the program image; nil for sessions resumed from a spill
	// directory, whose memory image lives entirely in the checkpoint.
	prog *alphaprog.Program

	// kill is set by DELETE /sessions/{id}; the Stop hook observes it
	// mid-quantum and the worker converts it to StateKilled.
	kill atomic.Bool
	// desched is armed by the quantum wall-clock safety timer.
	desched atomic.Bool

	// reg is the session's private metrics registry, tapped by the
	// telemetry plane; tsess is its plane registration.
	reg   *metrics.Registry
	tsess *telemetry.Session

	mu       sync.Mutex
	state    State
	errMsg   string
	ckpt     []byte // encoded checkpoint between quanta (nil when spilled or unstarted)
	spilled  bool   // checkpoint lives at spillPath instead of ckpt
	final    []byte // final checkpoint once terminal
	quanta   int
	vinsts   uint64 // cumulative V-instructions retired
	pages    int    // guest-resident pages at the last quantum boundary
	halted   bool
	exitCode uint64
	console  string
	admitted time.Time
	enqueued time.Time // last enqueue, for the wait histogram
	lastRun  time.Time // last quantum end, for cold-first shedding
	done     chan struct{}
}

// View is the JSON shape of a session returned by the HTTP API.
type View struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant,omitempty"`
	Name       string `json:"name"`
	State      State  `json:"state"`
	Error      string `json:"error,omitempty"`
	Quanta     int    `json:"quanta"`
	VInsts     uint64 `json:"v_insts"`
	Pages      int    `json:"pages"`
	Halted     bool   `json:"halted"`
	ExitStatus uint64 `json:"exit_status"`
	Console    string `json:"console,omitempty"`
	Spilled    bool   `json:"spilled,omitempty"`
}

// view snapshots the session for the HTTP API.
func (s *Session) view() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return View{
		ID:         s.ID,
		Tenant:     s.Tenant,
		Name:       s.Name,
		State:      s.state,
		Error:      s.errMsg,
		Quanta:     s.quanta,
		VInsts:     s.vinsts,
		Pages:      s.pages,
		Halted:     s.halted,
		ExitStatus: s.exitCode,
		Console:    s.console,
		Spilled:    s.spilled,
	}
}

// StateNow returns the session's current lifecycle state.
func (s *Session) StateNow() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Err returns the failure message of a failed or crashed session.
func (s *Session) Err() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

// Done returns a channel closed when the session reaches a terminal
// state; long-poll handlers and tests wait on it.
func (s *Session) Done() <-chan struct{} { return s.done }

// FinalCheckpoint returns the encoded final architected state, or nil
// while the session is still live. The slice is owned by the session;
// callers must not modify it.
func (s *Session) FinalCheckpoint() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.final
}

// Kill requests termination: mid-quantum the Stop hook preempts at the
// next V-instruction boundary, otherwise the next dequeue discards the
// session. The transition to StateKilled is reported by the scheduler,
// not here.
func (s *Session) Kill() { s.kill.Store(true) }

// Package serve is the multi-tenant VM service: an admission-controlled
// run queue in front of a bounded worker pool that round-robins
// preemptible guest sessions, one scheduler quantum at a time. The
// co-designed VM's checkpoint contract (DESIGN.md §11) makes a quantum
// cheap and safe: a session is descheduled by encoding its complete
// architected state, and resumed by restoring it into a fresh VM whose
// concealed state — translation cache, counters, RAS — is rebuilt on
// demand, with the process-wide fragment store ensuring hot superblocks
// still translate only once per server. DESIGN.md §14 documents the
// state machine, overload policy, and drain protocol.
package serve

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/iofs"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/telemetry"
)

// Admission-control sentinels. The HTTP layer maps them to typed
// rejections: ErrQueueFull and ErrTenantQuota are 429s (retryable —
// capacity frees as sessions finish), ErrDraining is a 503 (this
// instance is going away; retry against its successor).
var (
	ErrQueueFull   = errors.New("serve: run queue full")
	ErrTenantQuota = errors.New("serve: tenant quota exceeded")
	ErrDraining    = errors.New("serve: draining, not admitting")
)

// ErrNoSession is returned for lookups of unknown session IDs.
var ErrNoSession = errors.New("serve: no such session")

// Default scheduling parameters.
const (
	// DefaultQuantumVInsts is the scheduler quantum in V-instructions.
	// Small enough that a dozen runnable sessions all make visible
	// progress each second, large enough to amortize VM entry/exit.
	DefaultQuantumVInsts = 50_000
	// DefaultMaxSessions bounds concurrently-admitted live sessions
	// (and therefore the run-queue depth).
	DefaultMaxSessions = 1024
)

// Options configures a Server.
type Options struct {
	// Workers is the worker-pool size; 0 derives it from GOMAXPROCS.
	Workers int
	// QuantumVInsts is the scheduler quantum in V-instructions
	// (default DefaultQuantumVInsts).
	QuantumVInsts int64
	// MaxSessions bounds live (non-terminal) sessions; admission beyond
	// it is rejected with ErrQueueFull (default DefaultMaxSessions).
	MaxSessions int
	// TenantQuota bounds live sessions per tenant; 0 is unlimited.
	TenantQuota int
	// SessionVBudget caps a session's cumulative V-instructions across
	// all quanta; exhaustion fails the session. 0 is unlimited.
	SessionVBudget int64
	// SessionWall caps a session's wall-clock lifetime from admission;
	// a session past its deadline fails at its next quantum boundary.
	// 0 is unlimited.
	SessionWall time.Duration
	// QuantumWall is a per-quantum wall-clock safety net: a timer that
	// forces descheduling even if the guest is cheap per V-inst. 0
	// disables it (the V-inst quantum still preempts).
	QuantumWall time.Duration
	// MaxResident bounds checkpoints held in memory; beyond it the
	// coldest ready sessions spill to SpillDir. 0 is unlimited.
	MaxResident int
	// SpillDir receives overload spills and the drain checkpoint set.
	// Required when MaxResident > 0 or Drain must preserve sessions.
	SpillDir string
	// FS is the filesystem every persistence path goes through — spill,
	// drain, resume, and bundle writes. nil means the durable host
	// filesystem (iofs.OS); the disk-chaos harnesses inject an
	// iofs.Faulty here (DESIGN.md §15).
	FS iofs.FS
	// BundleDir, when set, receives a flight-recorder crash-repro
	// bundle (internal/flight) for failed sessions: guest traps,
	// resource kills, budget exhaustion, quarantined panics, and drain
	// spills lost to I/O faults. Empty disables recording.
	BundleDir string
	// SessionMaxPages caps each session's guest-resident pages
	// (vm.Config.MaxPages): the offending guest dies with a precise,
	// typed resource trap at its faulting V-PC while siblings run on.
	// 0 is ungoverned.
	SessionMaxPages int
	// TenantPageQuota bounds the sum of last-observed resident pages
	// across a tenant's live sessions. Admission past the quota is
	// rejected with ErrTenantQuota; a running tenant that grows past it
	// has the session whose quantum pushed it over failed, typed, at
	// that quantum boundary. 0 is unlimited.
	TenantPageQuota int
	// Plane is the telemetry plane sessions register with; nil creates
	// a private one (owned and closed by the server).
	Plane *telemetry.Plane
	// Store is the shared fragment store; nil creates a private one.
	// Sharing it across sessions means a hot superblock is translated
	// once per server, not once per quantum.
	Store *fragstore.Store
	// Logger receives scheduler diagnostics; nil discards them.
	Logger *slog.Logger
}

// Server schedules admitted sessions over the worker pool.
type Server struct {
	opts     Options
	plane    *telemetry.Plane
	ownPlane bool
	store    *fragstore.Store
	log      *slog.Logger
	reg      *metrics.Registry // scheduler instruments, registered on the plane
	fs       iofs.FS           // every persistence path goes through this

	draining atomic.Bool // preempts running quanta and rejects admissions

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // admission order, for listing
	byTenant map[string]int
	nextID   int
	live     int // non-terminal sessions
	resident int // in-memory checkpoints (ready, not spilled)

	runq chan *Session
	quit chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once

	// hookQuantum, when set by tests, runs on the worker goroutine at
	// the top of every quantum — the crash-barrier tests panic in it.
	hookQuantum func(*Session)
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QuantumVInsts <= 0 {
		opts.QuantumVInsts = DefaultQuantumVInsts
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		opts:     opts,
		plane:    opts.Plane,
		store:    opts.Store,
		log:      log,
		reg:      metrics.NewRegistry(),
		fs:       iofs.Default(opts.FS),
		sessions: make(map[string]*Session),
		byTenant: make(map[string]int),
		runq:     make(chan *Session, opts.MaxSessions),
		quit:     make(chan struct{}),
	}
	if s.plane == nil {
		s.plane = telemetry.New(telemetry.Options{Logger: log})
		s.ownPlane = true
	}
	if s.store == nil {
		s.store = fragstore.New()
	}
	// The scheduler's own instruments render on /metrics as a parked
	// pseudo-session: no VM ever publishes a snapshot for it, so the
	// exposition skips the vm.* section and renders only the registry.
	sched := s.plane.Register(telemetry.SessionConfig{
		Name: "scheduler", Registry: s.reg, Store: s.store,
	})
	sched.Park()
	s.plane.SetReady(true)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Plane returns the telemetry plane sessions register with.
func (s *Server) Plane() *telemetry.Plane { return s.plane }

// Registry returns the scheduler's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Submit admits a program image as a new session, or rejects it with
// ErrDraining, ErrQueueFull, or ErrTenantQuota.
func (s *Server) Submit(prog *alphaprog.Program, tenant, name string) (*Session, error) {
	if s.draining.Load() {
		s.reg.Counter("serve.rejected.draining").Inc()
		return nil, ErrDraining
	}
	s.mu.Lock()
	if s.live >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.reg.Counter("serve.rejected.full").Inc()
		return nil, ErrQueueFull
	}
	if s.opts.TenantQuota > 0 && s.byTenant[tenant] >= s.opts.TenantQuota {
		s.mu.Unlock()
		s.reg.Counter("serve.rejected.quota").Inc()
		return nil, ErrTenantQuota
	}
	if s.opts.TenantPageQuota > 0 && s.tenantPagesLocked(tenant) >= s.opts.TenantPageQuota {
		s.mu.Unlock()
		s.reg.Counter("serve.rejected.pages").Inc()
		return nil, fmt.Errorf("%w: tenant %q holds its page quota (%d pages)",
			ErrTenantQuota, tenant, s.opts.TenantPageQuota)
	}
	s.nextID++
	sess := &Session{
		ID:       strconv.Itoa(s.nextID),
		Tenant:   tenant,
		Name:     name,
		prog:     prog,
		reg:      metrics.NewRegistry(),
		state:    StateQueued,
		admitted: time.Now(),
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	s.sessions[sess.ID] = sess
	s.order = append(s.order, sess.ID)
	s.byTenant[tenant]++
	s.live++
	s.mu.Unlock()

	sess.tsess = s.plane.Register(telemetry.SessionConfig{
		Name: name + " #" + sess.ID, Workload: name, Registry: sess.reg,
	})
	sess.tsess.Park() // no VM until the first quantum
	s.reg.Counter("serve.admitted").Inc()
	s.updateGauges()
	s.enqueue(sess)
	s.log.Info("session admitted", "session", sess.ID, "tenant", tenant, "name", name)
	return sess, nil
}

// enqueue appends the session to the run queue. The queue is sized to
// MaxSessions and every live session occupies at most one slot, so the
// send cannot block; the fallback fails the session loudly rather than
// deadlocking a worker if that invariant is ever broken.
func (s *Server) enqueue(sess *Session) {
	select {
	case s.runq <- sess:
	default:
		s.failSession(sess, "scheduler invariant broken: run queue overflow")
	}
}

// tenantPagesLocked sums the last-observed guest-resident pages across
// a tenant's live sessions — the quantity TenantPageQuota governs.
// The caller holds s.mu.
func (s *Server) tenantPagesLocked(tenant string) int {
	total := 0
	for _, sess := range s.sessions {
		if sess.Tenant != tenant {
			continue
		}
		sess.mu.Lock()
		if !sess.state.Terminal() {
			total += sess.pages
		}
		sess.mu.Unlock()
	}
	return total
}

// Session looks up a session by ID.
func (s *Server) Session(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, ErrNoSession
	}
	return sess, nil
}

// SessionViews lists every session in admission order.
func (s *Server) SessionViews() []View {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	m := s.sessions
	views := make([]*Session, 0, len(ids))
	for _, id := range ids {
		if sess, ok := m[id]; ok {
			views = append(views, sess)
		}
	}
	s.mu.Unlock()
	out := make([]View, len(views))
	for i, sess := range views {
		out[i] = sess.view()
	}
	return out
}

// Stats is the scheduler snapshot served on /stats and consumed by the
// load driver.
type Stats struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	Live       int    `json:"live"`
	Admitted   uint64 `json:"admitted"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Killed     uint64 `json:"killed"`
	Crashed    uint64 `json:"crashed"`
	Rejected   uint64 `json:"rejected"`
	Quanta     uint64 `json:"quanta"`
	Spills     uint64 `json:"spills"`
	// ResourceKills counts sessions failed by the page governor: a
	// per-session MaxPages trap or a tenant page-quota boundary kill.
	ResourceKills uint64 `json:"resource_kills"`
	// IOFaults counts persistence operations (spill, load, drain,
	// bundle) that failed; each is a typed, session-local degradation.
	IOFaults uint64 `json:"io_faults"`
	// Bundles counts flight-recorder bundles written to BundleDir.
	Bundles uint64 `json:"bundles"`
	// PagesResident is the current sum of last-observed guest pages
	// across live sessions.
	PagesResident int     `json:"pages_resident"`
	QuantumP50ms  float64 `json:"quantum_p50_ms"`
	QuantumP95ms  float64 `json:"quantum_p95_ms"`
	QuantumP99ms  float64 `json:"quantum_p99_ms"`
	WaitP50ms     float64 `json:"wait_p50_ms"`
	WaitP99ms     float64 `json:"wait_p99_ms"`
}

// Stats snapshots the scheduler counters and latency quantiles.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	live := s.live
	var pages int
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if !sess.state.Terminal() {
			pages += sess.pages
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	qh := s.reg.Histogram("serve.quantum_ms")
	wh := s.reg.Histogram("serve.wait_ms")
	rejected := s.reg.Counter("serve.rejected.full").Load() +
		s.reg.Counter("serve.rejected.quota").Load() +
		s.reg.Counter("serve.rejected.pages").Load() +
		s.reg.Counter("serve.rejected.draining").Load()
	return Stats{
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.runq),
		Live:          live,
		Admitted:      s.reg.Counter("serve.admitted").Load(),
		Completed:     s.reg.Counter("serve.completed").Load(),
		Failed:        s.reg.Counter("serve.failed").Load(),
		Killed:        s.reg.Counter("serve.killed").Load(),
		Crashed:       s.reg.Counter("serve.crashed").Load(),
		Rejected:      rejected,
		Quanta:        s.reg.Counter("serve.quanta").Load(),
		Spills:        s.reg.Counter("serve.spills").Load(),
		ResourceKills: s.reg.Counter("serve.resource_kills").Load(),
		IOFaults:      s.reg.Counter("serve.io_faults").Load(),
		Bundles:       s.reg.Counter("serve.bundles").Load(),
		PagesResident: pages,
		QuantumP50ms:  qh.Quantile(0.50),
		QuantumP95ms:  qh.Quantile(0.95),
		QuantumP99ms:  qh.Quantile(0.99),
		WaitP50ms:     wh.Quantile(0.50),
		WaitP99ms:     wh.Quantile(0.99),
	}
}

// updateGauges refreshes the scheduler gauges from the session table.
func (s *Server) updateGauges() {
	s.mu.Lock()
	var queued, running, ready, spilled, pages int
	for _, sess := range s.sessions {
		sess.mu.Lock()
		switch sess.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateReady:
			ready++
			if sess.spilled {
				spilled++
			}
		}
		if !sess.state.Terminal() {
			pages += sess.pages
		}
		sess.mu.Unlock()
	}
	live := s.live
	s.mu.Unlock()
	s.reg.Gauge("serve.queue_depth").Set(float64(len(s.runq)))
	s.reg.Gauge("serve.sessions_queued").Set(float64(queued))
	s.reg.Gauge("serve.sessions_running").Set(float64(running))
	s.reg.Gauge("serve.sessions_ready").Set(float64(ready))
	s.reg.Gauge("serve.sessions_spilled").Set(float64(spilled))
	s.reg.Gauge("serve.sessions_live").Set(float64(live))
	s.reg.Gauge("serve.pages_resident").Set(float64(pages))
}

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain executes the graceful-shutdown protocol: stop admitting (new
// submissions get ErrDraining, /readyz flips to 503), preempt every
// running quantum at its next V-instruction boundary, stop the worker
// pool, and checkpoint every unfinished session into SpillDir — each as
// <id>.ckpt plus an <id>.json meta sidecar — so a restarted server can
// Resume them. Sessions that never ran a quantum are booted just far
// enough to capture their initial architected state. Drain returns the
// number of sessions spilled.
func (s *Server) Drain() (int, error) {
	if !s.draining.CompareAndSwap(false, true) {
		return 0, nil
	}
	s.plane.SetReady(false)
	close(s.quit)
	s.wg.Wait()

	s.mu.Lock()
	var pending []*Session
	for _, id := range s.order {
		sess := s.sessions[id]
		sess.mu.Lock()
		terminal := sess.state.Terminal()
		sess.mu.Unlock()
		if !terminal {
			pending = append(pending, sess)
		}
	}
	s.mu.Unlock()

	if len(pending) == 0 {
		return 0, nil
	}
	if s.opts.SpillDir == "" {
		return 0, fmt.Errorf("serve: %d sessions in flight but no spill dir configured", len(pending))
	}
	if err := s.fs.MkdirAll(s.opts.SpillDir, 0o755); err != nil {
		return 0, err
	}
	spilled := 0
	for _, sess := range pending {
		if err := s.spillForDrain(sess); err != nil {
			s.noteIOFault("drain spill", sess.ID, err)
			s.bundleDrainFailure(sess, err)
			s.failSession(sess, "drain spill: "+err.Error())
			continue
		}
		spilled++
	}
	s.log.Info("drained", "spilled", spilled)
	return spilled, nil
}

// Close shuts the server down without the spill protocol: workers stop
// and, when the plane is server-owned, the plane closes too. Tests and
// in-process embedders use it; production shutdown goes through Drain.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.draining.CompareAndSwap(false, true) {
			close(s.quit)
		}
		s.wg.Wait()
		if s.ownPlane {
			s.plane.Close()
		}
	})
}

// spillMeta is the JSON sidecar describing one spilled session.
type spillMeta struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	Quanta int    `json:"quanta"`
	VInsts uint64 `json:"v_insts"`
}

// Resume re-admits every session spilled into dir by a previous Drain.
// A checkpoint that fails to decode (truncated, corrupted, wrong
// version — any typed checkpoint error) becomes a session admitted
// directly into StateFailed carrying the decode error, mirroring a 409:
// the client sees exactly why its session is gone, and the server keeps
// serving. A checkpoint without its JSON sidecar — the wreckage of a
// drain that crashed between its two writes — is counted as an orphan
// (serve.resume.orphans) and swept, as are interrupted atomic-write
// temporaries. Resume returns (resumed, corrupt) counts.
func (s *Server) Resume(dir string) (int, int, error) {
	metas, err := s.fs.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, 0, err
	}
	sort.Strings(metas)
	sidecars := make(map[string]bool, len(metas))
	for _, m := range metas {
		sidecars[m] = true
	}
	resumed, corrupt := 0, 0
	for _, metaPath := range metas {
		meta, err := readSpillMeta(s.fs, metaPath)
		if err != nil {
			s.log.Error("resume: bad meta", "path", metaPath, "err", err)
			corrupt++
			continue
		}
		raw, err := s.fs.ReadFile(filepath.Join(dir, meta.ID+".ckpt"))
		var decodeErr error
		if err != nil {
			decodeErr = err
		} else if _, err := checkpoint.Decode(raw); err != nil {
			decodeErr = err
		}
		sess := s.adopt(meta, raw, decodeErr)
		if decodeErr != nil {
			corrupt++
			s.reg.Counter("serve.resume.corrupt").Inc()
			s.log.Warn("resume: corrupt checkpoint", "session", sess.ID, "err", decodeErr)
			continue
		}
		resumed++
		s.reg.Counter("serve.resume.sessions").Inc()
		// The checkpoint now lives in memory under a fresh session ID;
		// consume the spill files so a later drain of this server can't
		// collide with (or double-resume) the previous generation's.
		s.fs.Remove(filepath.Join(dir, meta.ID+".ckpt"))
		s.fs.Remove(metaPath)
	}
	// Orphan sweep: a drain interrupted between its checkpoint write and
	// its sidecar write leaves a .ckpt no sidecar names. There is no
	// session identity to adopt it under, so it is counted and removed —
	// never silently accumulated, never parsed.
	if cks, err := s.fs.Glob(filepath.Join(dir, "*.ckpt")); err == nil {
		sort.Strings(cks)
		for _, p := range cks {
			id := strings.TrimSuffix(filepath.Base(p), ".ckpt")
			if sidecars[filepath.Join(dir, id+".json")] {
				continue // corrupt pair left in place above, not an orphan
			}
			s.reg.Counter("serve.resume.orphans").Inc()
			s.log.Warn("resume: orphan checkpoint without sidecar", "path", p)
			s.fs.Remove(p)
		}
	}
	// Interrupted atomic writes leave .tmp files; they were never
	// renamed into place, so they name nothing and are swept.
	if tmps, err := s.fs.Glob(filepath.Join(dir, "*"+iofs.TempSuffix)); err == nil {
		for _, p := range tmps {
			s.fs.Remove(p)
		}
	}
	s.updateGauges()
	return resumed, corrupt, nil
}

// adopt registers a spilled session under a fresh ID. With a decode
// error it lands terminal (StateFailed); otherwise it enqueues with the
// spilled checkpoint resident in memory.
func (s *Server) adopt(meta *spillMeta, ckpt []byte, decodeErr error) *Session {
	s.mu.Lock()
	s.nextID++
	sess := &Session{
		ID:       strconv.Itoa(s.nextID),
		Tenant:   meta.Tenant,
		Name:     meta.Name,
		reg:      metrics.NewRegistry(),
		state:    StateQueued,
		admitted: time.Now(),
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	sess.quanta = meta.Quanta
	sess.vinsts = meta.VInsts
	sess.ckpt = ckpt
	s.sessions[sess.ID] = sess
	s.order = append(s.order, sess.ID)
	s.byTenant[sess.Tenant]++
	s.live++
	if ckpt != nil {
		s.resident++
	}
	s.mu.Unlock()
	sess.tsess = s.plane.Register(telemetry.SessionConfig{
		Name: sess.Name + " #" + sess.ID + " (resumed)", Workload: sess.Name, Registry: sess.reg,
	})
	sess.tsess.Park()
	if decodeErr != nil {
		s.failSession(sess, "checkpoint: "+decodeErr.Error())
		return sess
	}
	s.reg.Counter("serve.admitted").Inc()
	s.enqueue(sess)
	return sess
}

package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ildp/accdbt/internal/flight"
	"github.com/ildp/accdbt/internal/iofs"
	"github.com/ildp/accdbt/internal/workload"
)

// TestIOChaosSoak is the hostile-disk acceptance criterion: many seeds
// of injectable I/O faults (ENOSPC, EIO, torn writes, partial reads,
// rename failures) aimed at the spill path while sessions are forced
// through it (MaxResident=1 spills on every preemption). The invariant
// under every schedule: a session either completes bit-identical to
// the uninterrupted interpreter oracle, or fails with a typed cause —
// no torn file is ever parsed as state, no session is silently lost,
// and sibling sessions never observe a neighbour's disk fault.
func TestIOChaosSoak(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	names := []string{"gap", "bzip2", "mcf"}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			faulty := iofs.NewFaulty(iofs.OS{}, iofs.Config{Seed: uint64(seed), Rate: 3})
			s := testServer(t, Options{
				Workers:       2,
				QuantumVInsts: 10_000,
				MaxResident:   1,
				SpillDir:      t.TempDir(),
				FS:            faulty,
			})
			type job struct {
				sess *Session
				name string
				seed uint64
			}
			var jobs []job
			for i, name := range names {
				ds := uint64((seed + i) % 4)
				jobs = append(jobs, job{submitWorkload(t, s, name, 1, ds, "t0"), name, ds})
			}
			done, failed := 0, 0
			for _, j := range jobs {
				waitDone(t, j.sess, 120*time.Second)
				switch st := j.sess.StateNow(); st {
				case StateDone:
					done++
					checkFinal(t, j.sess, oracle(t, j.name, 1, j.seed))
				case StateFailed:
					failed++
					if j.sess.Err() == "" {
						t.Errorf("session %s failed without a typed cause", j.sess.ID)
					}
				default:
					t.Errorf("session %s lost in state %s", j.sess.ID, st)
				}
			}
			t.Logf("seed %d: %d done, %d failed typed; faults applied: %s",
				seed, done, failed, faulty.Counts())
		})
	}
}

// TestDrainSpillFaultsTyped starves the drain protocol of disk: every
// write fails with ENOSPC. Drain must still complete — each pending
// session becomes a typed drain-spill failure, counted as an I/O
// fault, and the server settles instead of hanging or crashing.
func TestDrainSpillFaultsTyped(t *testing.T) {
	faulty := iofs.NewFaulty(iofs.OS{}, iofs.Config{
		Seed: 1, Rate: 1, Kinds: []iofs.Kind{iofs.KindNoSpace},
	})
	s := testServer(t, Options{
		Workers:       2,
		QuantumVInsts: 5_000,
		SpillDir:      t.TempDir(),
		BundleDir:     t.TempDir(),
		FS:            faulty,
	})
	var sessions []*Session
	for _, name := range []string{"gzip", "vpr", "parser"} {
		sessions = append(sessions, submitWorkload(t, s, name, 1, 0, "t0"))
	}
	waitQuanta(t, s, 2, 30*time.Second)
	spilled, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if spilled != 0 {
		t.Errorf("drain spilled %d sessions with every write failing", spilled)
	}
	for _, sess := range sessions {
		waitDone(t, sess, 30*time.Second)
		switch sess.StateNow() {
		case StateDone: // finished before the drain; unaffected
		case StateFailed:
			if !strings.HasPrefix(sess.Err(), "drain spill:") {
				t.Errorf("session %s: cause %q, want a typed drain-spill failure",
					sess.ID, sess.Err())
			}
		default:
			t.Errorf("session %s lost in state %s", sess.ID, sess.StateNow())
		}
	}
	if st := s.Stats(); st.IOFaults == 0 {
		t.Error("no I/O faults counted under a full-ENOSPC drain")
	}
}

// TestResumeOrphanSweep reproduces the wreckage of a drain that died
// between its two writes — a checkpoint with no sidecar — plus an
// interrupted atomic-write temporary, and checks Resume counts and
// sweeps both while resuming the healthy pair bit-identically.
func TestResumeOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Workers: 1, QuantumVInsts: 5_000, SpillDir: dir})
	defer s1.Close()
	submitWorkload(t, s1, "vortex", 1, 0, "t0")
	waitQuanta(t, s1, 1, 30*time.Second)
	if spilled, err := s1.Drain(); err != nil || spilled != 1 {
		t.Fatalf("drain = (%d, %v), want (1, nil)", spilled, err)
	}
	pairs, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(pairs) != 1 {
		t.Fatalf("drain left %d checkpoints, want 1", len(pairs))
	}
	// The orphan is a valid checkpoint no sidecar names.
	raw, err := os.ReadFile(pairs[0])
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "999.ckpt")
	if err := os.WriteFile(orphan, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "888.ckpt"+iofs.TempSuffix)
	if err := os.WriteFile(stray, []byte("interrupted atomic write"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := testServer(t, Options{Workers: 1, QuantumVInsts: 5_000, SpillDir: dir})
	resumed, corrupt, err := s2.Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 || corrupt != 0 {
		t.Fatalf("resume = (%d, %d), want (1, 0)", resumed, corrupt)
	}
	if got := s2.Registry().Counter("serve.resume.orphans").Load(); got != 1 {
		t.Errorf("orphans counted = %d, want 1", got)
	}
	for _, p := range []string{orphan, stray} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s not swept", p)
		}
	}
	for _, v := range s2.SessionViews() {
		sess, err := s2.Session(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, sess, 60*time.Second)
		if sess.StateNow() != StateDone {
			t.Fatalf("resumed session %s: state %s: %s", v.ID, sess.StateNow(), sess.Err())
		}
		checkFinal(t, sess, oracle(t, "vortex", 1, 0))
	}
}

// TestMembombGovernedSiblings is the resource-governance acceptance
// criterion: a guest that strides stores across fresh pages is killed
// with a typed resource failure at its page cap, while sibling
// sessions of other tenants complete bit-identical to their oracles.
// The kill also emits a flight bundle that replays to the identical
// failure — same kind, same V-PC, same counters.
func TestMembombGovernedSiblings(t *testing.T) {
	bundleDir := t.TempDir()
	s := testServer(t, Options{
		Workers:         2,
		QuantumVInsts:   10_000,
		SessionMaxPages: 64,
		BundleDir:       bundleDir,
	})
	bomb := submitWorkload(t, s, "membomb", 1, 0, "bomber")
	type sib struct {
		sess *Session
		name string
	}
	sibs := []sib{
		{submitWorkload(t, s, "gzip", 1, 0, "calm"), "gzip"},
		{submitWorkload(t, s, "gap", 1, 0, "calm"), "gap"},
	}
	waitDone(t, bomb, 60*time.Second)
	if bomb.StateNow() != StateFailed {
		t.Fatalf("membomb state %s: %s", bomb.StateNow(), bomb.Err())
	}
	if !strings.HasPrefix(bomb.Err(), "resource:") {
		t.Errorf("membomb cause %q, want a typed resource failure", bomb.Err())
	}
	for _, sb := range sibs {
		waitDone(t, sb.sess, 60*time.Second)
		if sb.sess.StateNow() != StateDone {
			t.Fatalf("sibling %s state %s: %s", sb.name, sb.sess.StateNow(), sb.sess.Err())
		}
		checkFinal(t, sb.sess, oracle(t, sb.name, 1, 0))
	}
	st := s.Stats()
	if st.ResourceKills != 1 {
		t.Errorf("resource kills = %d, want 1", st.ResourceKills)
	}
	if st.Bundles != 1 {
		t.Errorf("bundles = %d, want 1", st.Bundles)
	}

	// The recorded bundle replays to the bit-identical failure.
	raw, err := os.ReadFile(filepath.Join(bundleDir, bomb.ID+".bundle"))
	if err != nil {
		t.Fatalf("bundle not written: %v", err)
	}
	b, err := flight.Decode(raw)
	if err != nil {
		t.Fatalf("bundle decode: %v", err)
	}
	if b.Kind != flight.KindResource {
		t.Fatalf("bundle kind %s, want %s", b.Kind, flight.KindResource)
	}
	res, err := flight.Replay(b)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := res.Matches(b); err != nil {
		t.Fatalf("replay diverges from recorded failure: %v", err)
	}
}

// TestTenantPageQuotaAdmission checks the admission side of the tenant
// page quota: a tenant already holding its quota of resident pages is
// rejected 429-style with ErrTenantQuota while other tenants admit.
func TestTenantPageQuotaAdmission(t *testing.T) {
	s := testServer(t, Options{Workers: 1, TenantPageQuota: 10})
	// Plant a live session already holding the quota; it is never
	// enqueued, so the scheduler leaves its page accounting alone.
	s.mu.Lock()
	fake := &Session{ID: "fake", Tenant: "greedy", state: StateReady,
		pages: 10, done: make(chan struct{})}
	s.sessions["fake"] = fake
	s.live++
	s.mu.Unlock()

	spec, err := workload.ByName("gap", 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.MustProgram()
	if _, err := s.Submit(prog, "greedy", "gap"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota admission: %v, want ErrTenantQuota", err)
	}
	if got := s.Registry().Counter("serve.rejected.pages").Load(); got != 1 {
		t.Errorf("page rejections = %d, want 1", got)
	}
	sess, err := s.Submit(prog, "modest", "gap")
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	waitDone(t, sess, 60*time.Second)
	if sess.StateNow() != StateDone {
		t.Fatalf("modest tenant's session: %s: %s", sess.StateNow(), sess.Err())
	}
}

// TestTenantPageQuotaBoundaryKill checks the enforcement side: a
// tenant whose resident pages grow past the quota has the offending
// session failed, typed, at the quantum boundary that observed it.
func TestTenantPageQuotaBoundaryKill(t *testing.T) {
	s := testServer(t, Options{Workers: 1, QuantumVInsts: 1_000, TenantPageQuota: 100})
	bomb := submitWorkload(t, s, "membomb", 1, 0, "t0")
	waitDone(t, bomb, 60*time.Second)
	if bomb.StateNow() != StateFailed {
		t.Fatalf("membomb state %s: %s", bomb.StateNow(), bomb.Err())
	}
	if !strings.HasPrefix(bomb.Err(), "resource: tenant") {
		t.Errorf("cause %q, want a typed tenant page-quota kill", bomb.Err())
	}
	if got := s.Stats().ResourceKills; got != 1 {
		t.Errorf("resource kills = %d, want 1", got)
	}
}

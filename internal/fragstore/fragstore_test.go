package fragstore_test

import (
	"bytes"
	"errors"
	"hash/crc64"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/translate"
)

func mustEnc(w alpha.Word, err error) alpha.Word {
	if err != nil {
		panic(err)
	}
	return w
}

// testSB builds a max-size-terminated superblock from raw words.
func testSB(base uint64, words ...alpha.Word) *translate.Superblock {
	sb := &translate.Superblock{StartPC: base, End: translate.EndMaxSize}
	pc := base
	for _, w := range words {
		sb.Insts = append(sb.Insts, translate.SBInst{PC: pc, Inst: alpha.Decode(w)})
		pc += alpha.InstBytes
	}
	sb.NextPC = pc
	return sb
}

// aluSB is a pure dependence chain.
func aluSB() *translate.Superblock {
	return testSB(0x10000,
		mustEnc(alpha.EncodeOperateR(alpha.OpADDQ, 0, 1, 2)),
		mustEnc(alpha.EncodeOperateL(alpha.OpSUBQ, 2, 3, 3)),
		mustEnc(alpha.EncodeOperateR(alpha.OpXOR, 3, 0, 4)),
		mustEnc(alpha.EncodeOperateL(alpha.OpADDQ, 4, 9, 5)),
	)
}

// memSB is a load/compute/store loop body ending in a taken backward
// branch.
func memSB() *translate.Superblock {
	sb := testSB(0x20000,
		mustEnc(alpha.EncodeMem(alpha.OpLDQ, 1, 2, 0)),
		mustEnc(alpha.EncodeOperateR(alpha.OpADDQ, 0, 1, 0)),
		mustEnc(alpha.EncodeMem(alpha.OpSTQ, 0, 2, 8)),
		mustEnc(alpha.EncodeOperateL(alpha.OpSUBQ, 3, 1, 3)),
		mustEnc(alpha.EncodeBranch(alpha.OpBNE, 3, -5)),
	)
	sb.End = translate.EndBackward
	sb.Insts[len(sb.Insts)-1].Taken = true
	sb.NextPC = sb.StartPC + uint64(len(sb.Insts))*alpha.InstBytes
	return sb
}

// cmovSB exercises conditional moves.
func cmovSB() *translate.Superblock {
	return testSB(0x30000,
		mustEnc(alpha.EncodeOperateL(alpha.OpCMPLT, 4, 10, 5)),
		mustEnc(alpha.EncodeOperateR(alpha.OpCMOVNE, 5, 6, 4)),
		mustEnc(alpha.EncodeOperateR(alpha.OpXOR, 4, 7, 4)),
	)
}

func accCfg(form ildp.Form, chain translate.ChainMode) fragstore.Config {
	return fragstore.Config{Translate: translate.Config{
		Form: form, NumAcc: ildp.DefaultAccumulators, Chain: chain,
	}}
}

func straightCfg() fragstore.Config {
	return fragstore.Config{
		Straighten: true,
		Translate:  translate.Config{Chain: translate.SWPredRAS},
	}
}

// translateFn returns the Do callback for cfg.
func translateFn(sb *translate.Superblock, cfg fragstore.Config) func() (*translate.Result, error) {
	return func() (*translate.Result, error) {
		if cfg.Straighten {
			return translate.Straighten(sb, cfg.Translate.Chain)
		}
		return translate.Translate(sb, cfg.Translate)
	}
}

// put translates sb under cfg through the store and returns its key.
func put(t testing.TB, s *fragstore.Store, sb *translate.Superblock, cfg fragstore.Config) fragstore.Key {
	t.Helper()
	key, content, err := fragstore.KeyOf(sb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Do(key, content, t, translateFn(sb, cfg)); err != nil {
		t.Fatal(err)
	}
	return key
}

// populate fills a store with a mix of accumulator and straightened
// translations across forms and chain modes.
func populate(t testing.TB) *fragstore.Store {
	t.Helper()
	s := fragstore.New()
	for _, sb := range []*translate.Superblock{aluSB(), memSB(), cmovSB()} {
		put(t, s, sb, accCfg(ildp.Modified, translate.SWPredRAS))
		put(t, s, sb, accCfg(ildp.Basic, translate.NoPred))
		put(t, s, sb, straightCfg())
	}
	return s
}

func TestKeyOf(t *testing.T) {
	sb := aluSB()
	cfg := accCfg(ildp.Modified, translate.SWPredRAS)

	k1, c1, err := fragstore.KeyOf(sb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k2, c2, err := fragstore.KeyOf(aluSB(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || !bytes.Equal(c1, c2) {
		t.Fatal("KeyOf is not deterministic")
	}

	if k3, _, _ := fragstore.KeyOf(memSB(), cfg); k3 == k1 {
		t.Fatal("different superblocks share a key")
	}
	other := cfg
	other.Translate.Form = ildp.Basic
	if k4, _, _ := fragstore.KeyOf(sb, other); k4 == k1 {
		t.Fatal("different forms share a key")
	}
	other = cfg
	other.Translate.Chain = translate.NoPred
	if k5, _, _ := fragstore.KeyOf(sb, other); k5 == k1 {
		t.Fatal("different chain modes share a key")
	}
	if k6, _, _ := fragstore.KeyOf(sb, straightCfg()); k6 == k1 {
		t.Fatal("straightened and accumulator translations share a key")
	}

	// Straightening ignores form, accumulator count, and memory fusion:
	// those fields must be canonicalised out of the address.
	sc1 := straightCfg()
	sc2 := straightCfg()
	sc2.Translate.Form = ildp.Basic
	sc2.Translate.NumAcc = ildp.MaxAccumulators
	sc2.Translate.FuseMemOps = true
	ks1, _, _ := fragstore.KeyOf(sb, sc1)
	ks2, _, _ := fragstore.KeyOf(sb, sc2)
	if ks1 != ks2 {
		t.Fatal("straightening configs that differ only in ignored fields must share a key")
	}
}

func TestDoSingleflight(t *testing.T) {
	s := fragstore.New()
	sb := memSB()
	cfg := accCfg(ildp.Modified, translate.SWPredRAS)
	key, content, err := fragstore.KeyOf(sb, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var translations atomic.Int64
	var wg sync.WaitGroup
	results := make([]*translate.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, _, err := s.Do(key, content, i, func() (*translate.Result, error) {
				translations.Add(1)
				return translate.Translate(sb, cfg.Translate)
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if n := translations.Load(); n != 1 {
		t.Fatalf("%d callers ran %d translations, want exactly 1", callers, n)
	}
	for i, res := range results {
		if res != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != callers-1 || st.SharedHits != callers-1 {
		t.Fatalf("stats %+v, want 1 miss, %d hits all shared", st, callers-1)
	}

	// A second Do by the translating caller is a hit but not a shared
	// one; by anyone else, shared.
	if _, hit, shared, _ := s.Do(key, content, 0, nil); !hit || !shared {
		t.Fatalf("hit=%v shared=%v for a non-creator caller", hit, shared)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	s := fragstore.New()
	sb := aluSB()
	cfg := accCfg(ildp.Modified, translate.SWPredRAS)
	key, content, err := fragstore.KeyOf(sb, cfg)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected translate fault")
	if _, _, _, err := s.Do(key, content, t, func() (*translate.Result, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want %v", err, boom)
	}
	if s.Len() != 0 {
		t.Fatal("failed translation was cached")
	}

	// The failure is not sticky: the next attempt translates again.
	res, hit, _, err := s.Do(key, content, t, translateFn(sb, cfg))
	if err != nil || hit || res == nil {
		t.Fatalf("retry after failure: res=%v hit=%v err=%v", res, hit, err)
	}
}

func TestDrop(t *testing.T) {
	s := fragstore.New()
	key := put(t, s, aluSB(), accCfg(ildp.Modified, translate.SWPredRAS))
	if s.Get(key) == nil {
		t.Fatal("entry not visible after Do")
	}
	if !s.Drop(key) {
		t.Fatal("Drop missed a present entry")
	}
	if s.Get(key) != nil || s.Len() != 0 {
		t.Fatal("entry still visible after Drop")
	}
	if s.Drop(key) {
		t.Fatal("Drop reported a vanished entry present")
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := populate(t)
	enc := s.Encode()

	s2, rep, err := fragstore.Decode(enc, fragstore.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped() != 0 || rep.Loaded != s.Len() || rep.Entries != s.Len() {
		t.Fatalf("load report %v, want all %d entries loaded", rep, s.Len())
	}
	if rep.Skipped == 0 || rep.Verified == 0 {
		t.Fatalf("load report %v: want both verified and skipped entries", rep)
	}
	if !bytes.Equal(s2.Encode(), enc) {
		t.Fatal("Encode(Decode(b)) != b")
	}
	if got := s2.Stats().Loaded; got != uint64(rep.Loaded) {
		t.Fatalf("store Loaded counter %d, want %d", got, rep.Loaded)
	}

	// Loading twice into the same bytes is idempotent.
	s3, rep3, err := fragstore.Decode(enc, fragstore.LoadOptions{})
	if err != nil || rep3.Dropped() != 0 {
		t.Fatalf("second decode: %v %v", rep3, err)
	}
	if !bytes.Equal(s3.Encode(), enc) {
		t.Fatal("second decode does not round-trip")
	}
}

func TestDecodeSemCheck(t *testing.T) {
	s := populate(t)
	enc := s.Encode()
	_, rep, err := fragstore.Decode(enc, fragstore.LoadOptions{SemCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped() != 0 {
		t.Fatalf("semcheck dropped genuine translations: %v", rep)
	}
	if rep.Proved != rep.Verified {
		t.Fatalf("proved %d of %d accumulator entries", rep.Proved, rep.Verified)
	}
}

func TestEmptyStoreRoundTrip(t *testing.T) {
	enc := fragstore.New().Encode()
	s, rep, err := fragstore.Decode(enc, fragstore.LoadOptions{})
	if err != nil || rep.Entries != 0 {
		t.Fatalf("decode empty store: %v %v", rep, err)
	}
	if !bytes.Equal(s.Encode(), enc) {
		t.Fatal("empty store does not round-trip")
	}
}

// --- corrupt-stream tests ----------------------------------------------

var testCRC = crc64.MakeTable(crc64.ECMA)

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// span locates one entry body inside an encoded stream.
type span struct{ off, n int }

// entrySpans walks the stream structure and returns every entry body.
func entrySpans(t *testing.T, b []byte) []span {
	t.Helper()
	off := 8 + 4 + 4 + 4
	var out []span
	for s := 0; s < fragstore.NumShards; s++ {
		count := int(leU32(b[off:]))
		off += 4
		for i := 0; i < count; i++ {
			n := int(leU32(b[off:]))
			off += 4
			out = append(out, span{off, n})
			off += n + 8
		}
	}
	if off != len(b)-8 {
		t.Fatalf("stream walk ended at %d, trailer at %d", off, len(b)-8)
	}
	return out
}

func fixEntryCRC(b []byte, sp span) {
	putU64(b[sp.off+sp.n:], crc64.Checksum(b[sp.off:sp.off+sp.n], testCRC))
}

func fixFileCRC(b []byte) {
	putU64(b[len(b)-8:], crc64.Checksum(b[:len(b)-8], testCRC))
}

func TestDecodeCorruptFile(t *testing.T) {
	enc := populate(t).Encode()

	check := func(name string, b []byte, want error) {
		t.Helper()
		_, _, err := fragstore.Decode(b, fragstore.LoadOptions{})
		if !errors.Is(err, want) {
			t.Fatalf("%s: err = %v, want %v", name, err, want)
		}
		var fe *fragstore.Error
		if !errors.As(err, &fe) {
			t.Fatalf("%s: err %T is not *fragstore.Error", name, err)
		}
	}

	check("empty", nil, fragstore.ErrTruncated)
	check("short", enc[:12], fragstore.ErrTruncated)

	bad := bytes.Clone(enc)
	bad[0] ^= 0xFF
	check("magic", bad, fragstore.ErrBadMagic)

	bad = bytes.Clone(enc)
	bad[8] = 0xEE // version field
	check("version", bad, fragstore.ErrVersion)

	bad = bytes.Clone(enc)
	bad[len(bad)/2] ^= 0x10
	check("flip", bad, fragstore.ErrChecksum)

	// Bytes wedged between the last entry and the trailer, trailer
	// recomputed so only structure can catch them.
	bad = append(bytes.Clone(enc[:len(enc)-8]), 0, 0, 0, 0)
	bad = append(bad, make([]byte, 8)...)
	fixFileCRC(bad)
	check("trailing", bad, fragstore.ErrTrailing)
}

func TestDecodeDropsCorruptEntry(t *testing.T) {
	s := populate(t)
	total := s.Len()
	enc := s.Encode()
	spans := entrySpans(t, enc)

	// Flip one byte deep in the first entry's body and repair only the
	// file trailer: the entry CRC catches it, the rest of the file loads.
	bad := bytes.Clone(enc)
	sp := spans[0]
	bad[sp.off+sp.n-1] ^= 0x40
	fixFileCRC(bad)
	st, rep, err := fragstore.Decode(bad, fragstore.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedCRC != 1 || rep.Loaded != total-1 || st.Len() != total-1 {
		t.Fatalf("entry-CRC corruption: %v (store %d), want 1 CRC drop, %d loaded",
			rep, st.Len(), total-1)
	}

	// Flip a content byte (superblock record) and repair both CRCs: the
	// key no longer hashes the content record.
	bad = bytes.Clone(enc)
	sp = spans[1]
	bad[sp.off+40] ^= 0x01 // inside the content record, past the 32-byte key
	fixEntryCRC(bad, sp)
	fixFileCRC(bad)
	_, rep, err = fragstore.Decode(bad, fragstore.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedKey != 1 || rep.Loaded != total-1 {
		t.Fatalf("key corruption: %v, want 1 key drop, %d loaded", rep, total-1)
	}

	// Truncate an entry body (shrink its length field and cut a byte):
	// the body parse fails and the entry is dropped as malformed, while
	// the file structure stays intact.
	sp = spans[0]
	const cut = 1
	bad = bytes.Clone(enc[:sp.off+sp.n-cut])   // body minus one byte
	bad = append(bad, enc[sp.off+sp.n:]...)    // entry CRC and the rest
	putU32(bad[sp.off-4:], uint32(sp.n-cut))   // shrink length field
	fixEntryCRC(bad, span{sp.off, sp.n - cut}) // entry CRC over short body
	fixFileCRC(bad)
	_, rep, err = fragstore.Decode(bad, fragstore.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedMalformed != 1 || rep.Loaded != total-1 {
		t.Fatalf("truncated entry: %v, want 1 malformed drop, %d loaded", rep, total-1)
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// TestLoadReportMidEntryTruncation pins down the LoadReport accounting
// contract under the two ways a cache file loses bytes mid-entry.
//
// A torn file — the prefix a crashed or faulted writer leaves behind —
// must be rejected whole with a typed error, never half-parsed: the
// whole-file CRC (or the truncated-trailer check) fires before any
// entry is admitted. A file that is intact at the transport layer but
// carries internally truncated entries must instead degrade per entry:
// each damaged entry is dropped and counted, every healthy entry loads,
// and Entries always reconciles with Loaded + Dropped().
func TestLoadReportMidEntryTruncation(t *testing.T) {
	s := populate(t)
	total := s.Len()
	enc := s.Encode()
	spans := entrySpans(t, enc)
	if len(spans) < 3 {
		t.Fatalf("want >= 3 entries to corrupt independently, have %d", len(spans))
	}

	// Every prefix that ends inside an entry is a torn file: typed
	// rejection, nil store, nothing admitted.
	for i, sp := range spans {
		cut := sp.off + sp.n/2
		st, _, err := fragstore.Decode(enc[:cut], fragstore.LoadOptions{})
		if st != nil || err == nil {
			t.Fatalf("entry %d: torn prefix of %d bytes parsed (err %v)", i, cut, err)
		}
		var fe *fragstore.Error
		if !errors.As(err, &fe) {
			t.Fatalf("entry %d: torn prefix error %T is not typed", i, err)
		}
		if !errors.Is(err, fragstore.ErrTruncated) && !errors.Is(err, fragstore.ErrChecksum) {
			t.Fatalf("entry %d: torn prefix error %v is neither truncation nor checksum", i, err)
		}
	}

	// Two independently damaged entries in one transport-intact file:
	// truncate one body (length field and entry CRC repaired, so only
	// structural parsing can object) and bit-flip another without
	// repairing its entry CRC. Both drops are counted under their own
	// cause, all other entries load, and the totals reconcile.
	sp := spans[2]
	const cut = 3
	bad := bytes.Clone(enc[:sp.off+sp.n-cut])
	bad = append(bad, enc[sp.off+sp.n:]...)
	putU32(bad[sp.off-4:], uint32(sp.n-cut))
	fixEntryCRC(bad, span{sp.off, sp.n - cut})
	bad[spans[0].off+spans[0].n/2] ^= 0x20 // before spans[2]: offset unshifted
	fixFileCRC(bad)

	st, rep, err := fragstore.Decode(bad, fragstore.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedMalformed != 1 || rep.DroppedCRC != 1 {
		t.Fatalf("drops = %v, want 1 malformed + 1 CRC", rep)
	}
	if rep.Entries != total || rep.Loaded != total-2 || rep.Dropped() != 2 {
		t.Fatalf("accounting does not reconcile: %v (total %d)", rep, total)
	}
	if st.Len() != rep.Loaded {
		t.Fatalf("store holds %d entries, report says %d loaded", st.Len(), rep.Loaded)
	}

	// The survivors are genuinely intact: the degraded store re-encodes
	// into a file that loads cleanly with nothing further dropped.
	st2, rep2, err := fragstore.Decode(st.Encode(), fragstore.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Dropped() != 0 || st2.Len() != st.Len() {
		t.Fatalf("survivors reload dirty: %v (%d entries)", rep2, st2.Len())
	}
}

// TestDecodeDropsUnprovableEntry corrupts a fragment's instruction
// stream in a way every checksum accepts — the result record is not
// covered by the content key, and the entry CRC is recomputed — so only
// load-time re-verification can reject it.
func TestDecodeDropsUnprovableEntry(t *testing.T) {
	s := populate(t)
	total := s.Len()
	enc := s.Encode()

	bad := bytes.Clone(enc)
	mutated := false
	for _, sp := range entrySpans(t, bad) {
		body := bad[sp.off : sp.off+sp.n]
		if body[32] != 0 { // config record flags: skip straightened entries
			continue
		}
		// Walk to the result record's instruction array.
		const keyCfg = 32 + 5
		nSB := int(leU32(body[keyCfg+8+1+8:]))
		resOff := keyCfg + 21 + 21*nSB
		if body[resOff+9] != 0 { // straightened result flag
			continue
		}
		instOff := resOff + 8 + 1 + 1 + 32 + 8 + 64 + 4
		nInsts := int(leU32(body[instOff-4:]))
		for i := 0; i < nInsts; i++ {
			rec := body[instOff+i*54:]
			if rec[4]&1 == 1 { // WritesAcc: point it at an impossible accumulator
				rec[3] = 0x1E
				mutated = true
			}
		}
		if mutated {
			fixEntryCRC(bad, sp)
			break
		}
	}
	if !mutated {
		t.Fatal("no accumulator-writing instruction found to corrupt")
	}
	fixFileCRC(bad)

	st, rep, err := fragstore.Decode(bad, fragstore.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedVerify != 1 || rep.Loaded != total-1 {
		t.Fatalf("unprovable entry: %v, want 1 verify drop, %d loaded", rep, total-1)
	}
	if st.Len() != total-1 {
		t.Fatalf("store holds %d entries, want %d", st.Len(), total-1)
	}
}

func FuzzFragstoreDecode(f *testing.F) {
	s := fragstore.New()
	for _, sb := range []*translate.Superblock{aluSB(), memSB()} {
		put(f, s, sb, accCfg(ildp.Modified, translate.SWPredRAS))
		put(f, s, sb, straightCfg())
	}
	enc := s.Encode()
	f.Add(enc)
	f.Add(fragstore.New().Encode())
	short := bytes.Clone(enc[:len(enc)/2])
	f.Add(short)
	flip := bytes.Clone(enc)
	flip[len(flip)/3] ^= 0x80
	f.Add(flip)

	f.Fuzz(func(t *testing.T, b []byte) {
		st, rep, err := fragstore.Decode(b, fragstore.LoadOptions{})
		if err != nil {
			var fe *fragstore.Error
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %T is not *fragstore.Error", err)
			}
			return
		}
		re := st.Encode()
		if rep.Dropped() == 0 && !bytes.Equal(re, b) {
			t.Fatal("Encode(Decode(b)) != b for a drop-free accepted stream")
		}
		// Whatever survived must itself round-trip cleanly.
		st2, rep2, err := fragstore.Decode(re, fragstore.LoadOptions{})
		if err != nil || rep2.Dropped() != 0 {
			t.Fatalf("re-encoded stream does not reload: %v %v", rep2, err)
		}
		if !bytes.Equal(st2.Encode(), re) {
			t.Fatal("re-encoded stream is not a fixed point")
		}
	})
}

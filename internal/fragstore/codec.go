package fragstore

// On-disk format of the fragment store (docs/FORMAT.md specifies it
// byte for byte). The codec follows internal/checkpoint's discipline:
// fixed-width little-endian fields, sorted canonical ordering, CRC-64
// guards, typed *Error failures, and Encode(Decode(b)) == b for every
// stream Decode accepts without dropping an entry.
//
// The stream is guarded at two granularities. A whole-file CRC rejects
// transport corruption outright (Decode fails with ErrChecksum). Inside
// an intact file, each entry carries its own CRC, its content-record
// hash must reproduce its key, and its fragment must re-pass the static
// verifier — an entry failing any of those is dropped and counted in
// the LoadReport, never installed, while the rest of the file loads.

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/crc64"
	"sort"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/iverify"
	"github.com/ildp/accdbt/internal/semcheck"
	"github.com/ildp/accdbt/internal/translate"
)

// Version is the current fragment-store format version.
const Version = 1

// magic identifies a fragment-store stream.
var magic = [8]byte{'A', 'C', 'C', 'D', 'B', 'T', 'F', 'S'}

// Decode failure causes, matched with errors.Is against the returned
// *Error. These classify whole-file failures; per-entry corruption is
// not an error but a dropped entry counted in the LoadReport.
var (
	ErrBadMagic  = errors.New("bad magic")
	ErrVersion   = errors.New("unsupported version")
	ErrTruncated = errors.New("truncated")
	ErrChecksum  = errors.New("checksum mismatch")
	ErrCanonical = errors.New("non-canonical encoding")
	ErrTrailing  = errors.New("trailing bytes after checksum")
)

// Error is the typed decode failure: the byte offset where decoding
// stopped, the failure class (one of the Err sentinels), and detail.
type Error struct {
	Off    int
	Cause  error
	Detail string
}

// Error renders the failure with its offset and detail.
func (e *Error) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("fragstore: %v at offset %d", e.Cause, e.Off)
	}
	return fmt.Sprintf("fragstore: %v at offset %d: %s", e.Cause, e.Off, e.Detail)
}

// Unwrap exposes the failure class for errors.Is.
func (e *Error) Unwrap() error { return e.Cause }

var crcTable = crc64.MakeTable(crc64.ECMA)

// LoadOptions controls Decode's re-verification of loaded entries.
type LoadOptions struct {
	// SemCheck additionally re-proves every loaded accumulator fragment
	// symbolically equivalent to its stored source superblock
	// (internal/semcheck); entries with counterexamples are dropped.
	SemCheck bool
}

// LoadReport accounts for every entry of a decoded stream: each one is
// either admitted to the store or dropped for a counted reason.
type LoadReport struct {
	// Entries is the number of entries present in the stream; Loaded
	// the number admitted after re-verification.
	Entries int
	Loaded  int

	// Verified counts entries proved by the static fragment verifier;
	// Skipped counts straightened entries, which carry no I-ISA
	// invariants for it to check. Proved counts entries additionally
	// proved by semcheck (only when LoadOptions.SemCheck is set).
	Verified int
	Skipped  int
	Proved   int

	// Drop reasons: entry CRC mismatch, key does not hash its content
	// record, malformed entry body, static-verifier violation, semcheck
	// counterexample.
	DroppedCRC       int
	DroppedKey       int
	DroppedMalformed int
	DroppedVerify    int
	DroppedProve     int
}

// Dropped returns the total number of dropped entries.
func (r *LoadReport) Dropped() int {
	return r.DroppedCRC + r.DroppedKey + r.DroppedMalformed + r.DroppedVerify + r.DroppedProve
}

// String renders the report as a one-line summary.
func (r *LoadReport) String() string {
	return fmt.Sprintf("%d entries: %d loaded (%d verified, %d skipped, %d proved), %d dropped (crc %d, key %d, malformed %d, verify %d, prove %d)",
		r.Entries, r.Loaded, r.Verified, r.Skipped, r.Proved, r.Dropped(),
		r.DroppedCRC, r.DroppedKey, r.DroppedMalformed, r.DroppedVerify, r.DroppedProve)
}

// Encode serializes the store's completed entries into the versioned,
// CRC-guarded stream of docs/FORMAT.md. The output is canonical:
// entries sort by key within their shard, all integers are fixed-width
// little-endian, and encoding the same entries always yields identical
// bytes. Entries whose translation is still in flight are skipped.
func (s *Store) Encode() []byte {
	type flat struct {
		key     Key
		content []byte
		res     *translate.Result
	}
	var perShard [NumShards][]flat
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			select {
			case <-e.ready:
			default:
				continue
			}
			if e.err != nil {
				continue
			}
			perShard[i] = append(perShard[i], flat{k, e.content, e.res})
		}
		sh.mu.Unlock()
		sort.Slice(perShard[i], func(a, b int) bool {
			return bytes.Compare(perShard[i][a].key[:], perShard[i][b].key[:]) < 0
		})
		total += len(perShard[i])
	}

	var b []byte
	b = append(b, magic[:]...)
	b = le32(b, Version)
	b = le32(b, NumShards)
	b = le32(b, uint32(total))
	for i := range perShard {
		b = le32(b, uint32(len(perShard[i])))
		for _, f := range perShard[i] {
			body := make([]byte, 0, len(f.key)+len(f.content)+resultRecLen(f.res))
			body = append(body, f.key[:]...)
			body = append(body, f.content...)
			body = appendResult(body, f.res)
			b = le32(b, uint32(len(body)))
			b = append(b, body...)
			b = le64(b, crc64.Checksum(body, crcTable))
		}
	}
	b = le64(b, crc64.Checksum(b, crcTable))
	return b
}

// Decode rebuilds a store from an Encode stream. Whole-file damage —
// bad magic, unknown version, truncation, file-checksum mismatch,
// non-canonical structure — fails with a typed *Error and no store.
// Within an intact file, every entry is independently validated (entry
// CRC, key-to-content hash, structural well-formedness) and re-proved
// by the static fragment verifier (plus semcheck when opts.SemCheck is
// set) before it becomes visible; entries failing any check are dropped
// and counted in the LoadReport, which is returned even on error.
func Decode(b []byte, opts LoadOptions) (*Store, *LoadReport, error) {
	rep := &LoadReport{}
	const headerLen = 8 + 4 + 4 + 4
	if len(b) < headerLen+8 {
		return nil, rep, &Error{Off: len(b), Cause: ErrTruncated, Detail: "stream shorter than header and trailer"}
	}
	if !bytes.Equal(b[:8], magic[:]) {
		return nil, rep, &Error{Off: 0, Cause: ErrBadMagic}
	}
	d := &decoder{b: b, off: 8}
	ver, _ := d.u32()
	if ver != Version {
		return nil, rep, &Error{Off: 8, Cause: ErrVersion, Detail: fmt.Sprintf("version %d", ver)}
	}
	trailerOff := len(b) - 8
	sum := crc64.Checksum(b[:trailerOff], crcTable)
	if got := leU64(b[trailerOff:]); got != sum {
		return nil, rep, &Error{Off: trailerOff, Cause: ErrChecksum,
			Detail: fmt.Sprintf("file checksum %#x, computed %#x", got, sum)}
	}

	nShards, _ := d.u32()
	if nShards != NumShards {
		return nil, rep, &Error{Off: d.off - 4, Cause: ErrCanonical,
			Detail: fmt.Sprintf("%d shards, want %d", nShards, NumShards)}
	}
	total, _ := d.u32()

	s := New()
	counted := uint32(0)
	for shardIdx := 0; shardIdx < NumShards; shardIdx++ {
		count, ok := d.u32()
		if !ok {
			return nil, rep, d.fail(ErrTruncated, "shard count")
		}
		var prev Key
		for n := uint32(0); n < count; n++ {
			counted++
			bodyOff := d.off + 4
			bodyLen, ok := d.u32()
			if !ok {
				return nil, rep, d.fail(ErrTruncated, "entry length")
			}
			body, ok := d.take(int(bodyLen))
			if !ok {
				return nil, rep, d.fail(ErrTruncated, "entry body")
			}
			wantCRC, ok := d.u64()
			if !ok {
				return nil, rep, d.fail(ErrTruncated, "entry checksum")
			}
			rep.Entries++

			// Canonical placement checks use only the key prefix, so
			// they apply even to entries whose body is later dropped.
			if len(body) >= len(Key{}) {
				key := Key(body[:len(Key{})])
				if int(key[0])%NumShards != shardIdx {
					return nil, rep, &Error{Off: bodyOff, Cause: ErrCanonical,
						Detail: fmt.Sprintf("key %v in shard %d, belongs in %d", key, shardIdx, int(key[0])%NumShards)}
				}
				if n > 0 && bytes.Compare(key[:], prev[:]) <= 0 {
					return nil, rep, &Error{Off: bodyOff, Cause: ErrCanonical,
						Detail: fmt.Sprintf("key %v not strictly after %v", key, prev)}
				}
				prev = key
			}

			if crc64.Checksum(body, crcTable) != wantCRC {
				rep.DroppedCRC++
				continue
			}
			loadEntry(s, body, opts, rep)
		}
	}
	if counted != total {
		return nil, rep, &Error{Off: headerLen - 4, Cause: ErrCanonical,
			Detail: fmt.Sprintf("entry total %d, shard counts sum to %d", total, counted)}
	}
	if d.off != trailerOff {
		return nil, rep, &Error{Off: d.off, Cause: ErrTrailing,
			Detail: fmt.Sprintf("%d bytes before checksum", trailerOff-d.off)}
	}
	return s, rep, nil
}

// loadEntry validates one CRC-clean entry body and admits it to the
// store, or counts the drop reason in rep.
func loadEntry(s *Store, body []byte, opts LoadOptions, rep *LoadReport) {
	key, content, cfg, sb, res, ok := parseEntry(body)
	if !ok {
		rep.DroppedMalformed++
		return
	}
	if sha256.Sum256(content) != [sha256.Size]byte(key) {
		rep.DroppedKey++
		return
	}
	// Re-prove before the entry becomes visible: loaded artifacts are
	// never trusted on checksum alone.
	vrep := iverify.Verify(res, iverify.Config{
		Form:   cfg.Translate.Form,
		NumAcc: cfg.Translate.NumAcc,
		Chain:  cfg.Translate.Chain,
	})
	if !vrep.OK() {
		rep.DroppedVerify++
		return
	}
	if vrep.Skipped {
		rep.Skipped++
	} else {
		rep.Verified++
	}
	if opts.SemCheck && !res.Straightened {
		if !semcheck.Check(sb, res).OK() {
			rep.DroppedProve++
			return
		}
		rep.Proved++
	}
	s.insertLoaded(key, content, res)
	rep.Loaded++
}

// parseEntry parses an entry body: key ‖ content record (config record
// ‖ superblock record) ‖ result record. It reports ok=false for any
// structural violation — short fields, impossible enum values, length
// mismatch — without distinguishing causes; a malformed entry is
// dropped whatever the detail.
func parseEntry(body []byte) (key Key, content []byte, cfg Config, sb *translate.Superblock, res *translate.Result, ok bool) {
	d := &decoder{b: body}
	kb, ok1 := d.take(len(Key{}))
	if !ok1 {
		return key, nil, cfg, nil, nil, false
	}
	key = Key(kb)
	contentStart := d.off
	cfg, ok1 = parseConfigRec(d)
	if !ok1 {
		return key, nil, cfg, nil, nil, false
	}
	sb, ok1 = parseSuperblockRec(d)
	if !ok1 {
		return key, nil, cfg, nil, nil, false
	}
	content = body[contentStart:d.off]
	res, ok1 = parseResultRec(d)
	if !ok1 || d.off != len(body) {
		return key, nil, cfg, nil, nil, false
	}
	return key, content, cfg, sb, res, true
}

// parseConfigRec parses the canonical config record and enforces its
// normalisation: a straightening record must zero the fields
// straightening ignores, and every enum must be in range.
func parseConfigRec(d *decoder) (Config, bool) {
	rec, ok := d.take(configRecLen)
	if !ok {
		return Config{}, false
	}
	flags, form, numAcc, chain, fuse := rec[0], rec[1], rec[2], rec[3], rec[4]
	if flags > 1 || form > uint8(ildp.Modified) || chain > uint8(translate.SWPredRAS) || fuse > 1 {
		return Config{}, false
	}
	cfg := Config{
		Straighten: flags == 1,
		Translate: translate.Config{
			Form:       ildp.Form(form),
			NumAcc:     int(numAcc),
			Chain:      translate.ChainMode(chain),
			FuseMemOps: fuse == 1,
		},
	}
	if cfg.Straighten {
		if form != 0 || numAcc != 0 || fuse != 0 {
			return Config{}, false
		}
	} else if numAcc == 0 || int(numAcc) > ildp.MaxAccumulators {
		return Config{}, false
	}
	return cfg, true
}

// parseSuperblockRec parses the canonical superblock record
// (appendSuperblock's layout), rebuilding each instruction from its
// stored Alpha word.
func parseSuperblockRec(d *decoder) (*translate.Superblock, bool) {
	sb := &translate.Superblock{}
	var ok bool
	if sb.StartPC, ok = d.u64(); !ok {
		return nil, false
	}
	end, ok := d.u8()
	if !ok || end > uint8(translate.EndTrap) {
		return nil, false
	}
	sb.End = translate.EndKind(end)
	if sb.NextPC, ok = d.u64(); !ok {
		return nil, false
	}
	n, ok := d.u32()
	if !ok || n == 0 || int(n) > d.remaining()/sbInstRecLen {
		return nil, false
	}
	sb.Insts = make([]translate.SBInst, n)
	for i := range sb.Insts {
		si := &sb.Insts[i]
		si.PC, _ = d.u64()
		w, _ := d.u32()
		si.Inst = alpha.Decode(alpha.Word(w))
		flags, _ := d.u8()
		if flags > 1 {
			return nil, false
		}
		si.Taken = flags == 1
		if si.PredTarget, ok = d.u64(); !ok {
			return nil, false
		}
	}
	return sb, true
}

// resultRecLen sizes the result record for preallocation.
func resultRecLen(res *translate.Result) int {
	n := 8 + 1 + 1 + 8*4 + 8 + 8*8 + 4 + len(res.Insts)*instRecLen +
		4 + 8*len(res.PEI) + 4 + 4 + 4*len(res.Strands) + 4 + 1 + len(res.EndLive)
	for _, rec := range res.PEIRecover {
		n += 1 + 2*len(rec)
	}
	for _, regs := range res.ExitLive {
		n += 1 + len(regs)
	}
	return n
}

// instRecLen is the encoded size of one I-ISA instruction record.
const instRecLen = 1 + 2 + 1 + 1 + 10 + 10 + 1 + 1 + 4 + 8 + 8 + 4 + 1 + 1 + 1

// appendResult appends the result record: every field of
// translate.Result in fixed order, fixed width, with slice lengths
// prefixed, so decode-then-encode reproduces the bytes exactly.
func appendResult(b []byte, res *translate.Result) []byte {
	b = le64(b, res.VStart)
	b = append(b, byte(res.Form))
	var flags byte
	if res.Straightened {
		flags = 1
	}
	b = append(b, flags)
	b = le32(b, uint32(res.SrcCount))
	b = le32(b, uint32(res.NOPCount))
	b = le32(b, uint32(res.BranchElims))
	b = le32(b, uint32(res.CopyCount))
	b = le32(b, uint32(res.SpillCount))
	b = le32(b, uint32(res.ChainCount))
	b = le32(b, uint32(res.CodeBytes))
	b = le32(b, uint32(res.SrcBytes))
	b = le64(b, uint64(res.Cost))
	for _, u := range res.Usage {
		b = le64(b, uint64(u))
	}
	b = le32(b, uint32(len(res.Insts)))
	for i := range res.Insts {
		b = appendInst(b, &res.Insts[i])
	}
	b = le32(b, uint32(len(res.PEI)))
	for _, pc := range res.PEI {
		b = le64(b, pc)
	}
	b = le32(b, uint32(len(res.PEIRecover)))
	for _, rec := range res.PEIRecover {
		b = append(b, byte(len(rec)))
		for _, ra := range rec {
			b = append(b, byte(ra.Reg), byte(ra.Acc))
		}
	}
	b = le32(b, uint32(len(res.Strands)))
	for _, s := range res.Strands {
		b = le32(b, uint32(int32(s)))
	}
	b = le32(b, uint32(len(res.ExitLive)))
	for _, regs := range res.ExitLive {
		b = append(b, byte(len(regs)))
		for _, r := range regs {
			b = append(b, byte(r))
		}
	}
	b = append(b, byte(len(res.EndLive)))
	for _, r := range res.EndLive {
		b = append(b, byte(r))
	}
	return b
}

// appendInst appends one instruction record (instRecLen bytes).
func appendInst(b []byte, in *ildp.Inst) []byte {
	b = append(b, byte(in.Kind))
	b = append(b, byte(in.Op), byte(uint16(in.Op)>>8))
	b = append(b, byte(in.Acc))
	var flags byte
	if in.WritesAcc {
		flags = 1
	}
	b = append(b, flags)
	b = appendSrc(b, in.SrcA)
	b = appendSrc(b, in.SrcB)
	b = append(b, byte(in.Dest), byte(in.ArchDest))
	b = le32(b, uint32(in.Disp))
	b = le64(b, in.VPC)
	b = le64(b, in.VAddr)
	b = le32(b, uint32(in.Frag))
	b = append(b, byte(in.Class), byte(in.VCredit), byte(in.Usage))
	return b
}

// appendSrc appends one source-operand record (10 bytes).
func appendSrc(b []byte, s ildp.Src) []byte {
	b = append(b, byte(s.Kind), byte(s.Reg))
	return le64(b, uint64(s.Imm))
}

// parseResultRec parses the result record (appendResult's layout).
func parseResultRec(d *decoder) (*translate.Result, bool) {
	res := &translate.Result{}
	var ok bool
	if res.VStart, ok = d.u64(); !ok {
		return nil, false
	}
	form, ok := d.u8()
	if !ok || form > uint8(ildp.Modified) {
		return nil, false
	}
	res.Form = ildp.Form(form)
	flags, ok := d.u8()
	if !ok || flags > 1 {
		return nil, false
	}
	res.Straightened = flags == 1
	var v uint32
	for _, dst := range []*int{&res.SrcCount, &res.NOPCount, &res.BranchElims,
		&res.CopyCount, &res.SpillCount, &res.ChainCount, &res.CodeBytes, &res.SrcBytes} {
		if v, ok = d.u32(); !ok {
			return nil, false
		}
		*dst = int(v)
	}
	cost, ok := d.u64()
	if !ok {
		return nil, false
	}
	res.Cost = int64(cost)
	for i := range res.Usage {
		u, ok := d.u64()
		if !ok {
			return nil, false
		}
		res.Usage[i] = int64(u)
	}

	nInsts, ok := d.u32()
	if !ok || nInsts == 0 || int(nInsts) > d.remaining()/instRecLen {
		return nil, false
	}
	res.Insts = make([]ildp.Inst, nInsts)
	for i := range res.Insts {
		if !parseInst(d, &res.Insts[i]) {
			return nil, false
		}
	}

	nPEI, ok := d.u32()
	if !ok || int(nPEI) > d.remaining()/8 {
		return nil, false
	}
	if nPEI > 0 {
		res.PEI = make([]uint64, nPEI)
		for i := range res.PEI {
			res.PEI[i], _ = d.u64()
		}
	}

	nRec, ok := d.u32()
	if !ok || int(nRec) > d.remaining() {
		return nil, false
	}
	if nRec > 0 {
		res.PEIRecover = make([][]translate.RegAcc, nRec)
		for i := range res.PEIRecover {
			m, ok := d.u8()
			if !ok || int(m)*2 > d.remaining() {
				return nil, false
			}
			if m > 0 {
				rec := make([]translate.RegAcc, m)
				for j := range rec {
					r, _ := d.u8()
					a, ok := d.u8()
					if !ok || r >= alpha.NumRegs || int(a) >= ildp.MaxAccumulators {
						return nil, false
					}
					rec[j] = translate.RegAcc{Reg: alpha.Reg(r), Acc: ildp.AccID(a)}
				}
				res.PEIRecover[i] = rec
			}
		}
	}

	nStrands, ok := d.u32()
	if !ok || int(nStrands) > d.remaining()/4 {
		return nil, false
	}
	if nStrands > 0 {
		res.Strands = make([]int, nStrands)
		for i := range res.Strands {
			s, _ := d.u32()
			res.Strands[i] = int(int32(s))
		}
	}

	nExit, ok := d.u32()
	if !ok || int(nExit) > d.remaining() {
		return nil, false
	}
	if nExit > 0 {
		res.ExitLive = make([][]alpha.Reg, nExit)
		for i := range res.ExitLive {
			regs, ok := parseRegList(d)
			if !ok {
				return nil, false
			}
			res.ExitLive[i] = regs
		}
	}

	endLive, ok := parseRegList(d)
	if !ok {
		return nil, false
	}
	res.EndLive = endLive

	// The per-VM cache may only patch NoFrag exits and dispatch stubs;
	// a stored fragment referencing a concrete fragment ID would leak
	// one session's private cache layout into the shared artifact.
	for i := range res.Insts {
		if f := res.Insts[i].Frag; f != ildp.NoFrag && f != ildp.FragDispatch {
			return nil, false
		}
	}
	return res, true
}

// parseInst parses one instruction record.
func parseInst(d *decoder, in *ildp.Inst) bool {
	kind, ok := d.u8()
	if !ok {
		return false
	}
	in.Kind = ildp.Kind(kind)
	lo, _ := d.u8()
	hi, _ := d.u8()
	in.Op = alpha.Op(uint16(lo) | uint16(hi)<<8)
	acc, _ := d.u8()
	in.Acc = ildp.AccID(acc)
	flags, ok := d.u8()
	if !ok || flags > 1 {
		return false
	}
	in.WritesAcc = flags == 1
	if !parseSrc(d, &in.SrcA) || !parseSrc(d, &in.SrcB) {
		return false
	}
	dest, _ := d.u8()
	in.Dest = alpha.Reg(dest)
	archDest, _ := d.u8()
	in.ArchDest = alpha.Reg(archDest)
	disp, _ := d.u32()
	in.Disp = int32(disp)
	in.VPC, _ = d.u64()
	in.VAddr, _ = d.u64()
	frag, _ := d.u32()
	in.Frag = int32(frag)
	class, _ := d.u8()
	in.Class = ildp.Class(class)
	credit, _ := d.u8()
	in.VCredit = credit
	usage, ok := d.u8()
	if !ok {
		return false
	}
	in.Usage = ildp.UsageClass(usage)
	return true
}

// parseSrc parses one source-operand record.
func parseSrc(d *decoder, s *ildp.Src) bool {
	kind, _ := d.u8()
	reg, _ := d.u8()
	imm, ok := d.u64()
	if !ok {
		return false
	}
	s.Kind = ildp.SrcKind(kind)
	s.Reg = alpha.Reg(reg)
	s.Imm = int64(imm)
	return true
}

// parseRegList parses a u8-counted register list; zero count yields nil.
func parseRegList(d *decoder) ([]alpha.Reg, bool) {
	m, ok := d.u8()
	if !ok || int(m) > d.remaining() {
		return nil, false
	}
	if m == 0 {
		return nil, true
	}
	regs := make([]alpha.Reg, m)
	for i := range regs {
		r, _ := d.u8()
		if r >= alpha.NumRegs {
			return nil, false
		}
		regs[i] = alpha.Reg(r)
	}
	return regs, true
}

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) take(n int) ([]byte, bool) {
	if n < 0 || d.remaining() < n {
		return nil, false
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v, true
}

func (d *decoder) u8() (uint8, bool) {
	v, ok := d.take(1)
	if !ok {
		return 0, false
	}
	return v[0], true
}

func (d *decoder) u32() (uint32, bool) {
	v, ok := d.take(4)
	if !ok {
		return 0, false
	}
	return uint32(v[0]) | uint32(v[1])<<8 | uint32(v[2])<<16 | uint32(v[3])<<24, true
}

func (d *decoder) u64() (uint64, bool) {
	v, ok := d.take(8)
	if !ok {
		return 0, false
	}
	return leU64(v), true
}

func leU64(v []byte) uint64 {
	return uint64(v[0]) | uint64(v[1])<<8 | uint64(v[2])<<16 | uint64(v[3])<<24 |
		uint64(v[4])<<32 | uint64(v[5])<<40 | uint64(v[6])<<48 | uint64(v[7])<<56
}

// fail builds a truncation-class error at the current offset.
func (d *decoder) fail(cause error, detail string) *Error {
	return &Error{Off: d.off, Cause: cause, Detail: detail}
}

// Package fragstore implements the process-wide, content-addressed
// fragment store of the two-level translation-cache design: translated
// superblocks as immutable, shareable artifacts.
//
// Translation is a pure function of (superblock bytes, translation
// configuration) — the co-designed VM contract keeps no hidden inputs —
// so a fragment can be addressed by the SHA-256 of a canonical encoding
// of exactly those two things and shared by every VM in the process.
// The store is sharded NumShards ways by the first key byte, each shard
// behind its own mutex, so concurrent VMs contend only when their keys
// collide in a shard. Do is a per-key singleflight: however many VMs
// race on a key, exactly one runs the translator; the rest block and
// share the result.
//
// Entries are immutable. Per-VM state — chain links, patched exits,
// call-site lists, the dual-address RAS, pristine shadow copies, cache
// layout — lives in each VM's tcache, which installs a private copy of
// the instruction stream (see CloneForInstall) and holds the store
// entry's read-only slices by reference. Invalidation, quarantine, and
// eviction therefore never touch the store: a VM that distrusts its
// copy of a fragment drops its own reference and the shared artifact
// stays pristine for everyone else.
//
// The store persists: Encode serializes every entry into a versioned,
// CRC-guarded byte stream (docs/FORMAT.md specifies it byte for byte)
// and Decode rebuilds a store from one. Loaded artifacts are never
// trusted: every entry is re-proved by the static fragment verifier
// (internal/iverify) — and optionally by the symbolic equivalence
// prover (internal/semcheck) against its stored source superblock —
// before it becomes visible; corrupt or unprovable entries are dropped
// and counted, not installed.
package fragstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/translate"
)

// NumShards is the number of independently locked shards. Keys map to
// shards by their first byte, which SHA-256 distributes uniformly.
const NumShards = 64

// Key is the content address of a translated fragment: the SHA-256 of
// the entry's canonical content record (config record ‖ superblock
// record, see docs/FORMAT.md §3-§4). Equal keys imply byte-identical
// translation inputs, and therefore — translation being pure —
// identical translation outputs.
type Key [sha256.Size]byte

// String renders the key as abbreviated hex, for logs and diagnostics.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// Config identifies the translation-configuration half of a content
// address: the translator's own Config plus the mode switch between the
// accumulator translator and the code-straightening translator.
type Config struct {
	// Translate carries the fields translate.Config.Fingerprint folds
	// into the address. Ignored fields of a straightening configuration
	// (form, accumulator count, memory fusion) are canonicalised to zero
	// so equivalent configurations share entries.
	Translate translate.Config

	// Straighten selects the code-straightening-only translator.
	Straighten bool
}

// configRecLen is the encoded size of a config record.
const configRecLen = 1 + translate.FingerprintLen

// record returns the canonical config record: a flags byte (bit 0 =
// straighten) followed by the translate.Config fingerprint, with the
// fields straightening ignores zeroed.
func (c Config) record() [configRecLen]byte {
	tc := c.Translate
	if c.Straighten {
		tc = translate.Config{Chain: tc.Chain}
	}
	fp := tc.Fingerprint()
	var r [configRecLen]byte
	if c.Straighten {
		r[0] = 1
	}
	copy(r[1:], fp[:])
	return r
}

// KeyOf computes the content address of translating sb under cfg, and
// returns the canonical content record the key hashes (the config
// record followed by the superblock record) for reuse by Do and the
// codec. It fails only when an instruction of the superblock has no
// canonical Alpha encoding; such a superblock cannot be content-
// addressed and the caller must translate it privately.
func KeyOf(sb *translate.Superblock, cfg Config) (Key, []byte, error) {
	rec := cfg.record()
	content := make([]byte, 0, configRecLen+superblockRecLen(sb))
	content = append(content, rec[:]...)
	content, err := appendSuperblock(content, sb)
	if err != nil {
		return Key{}, nil, err
	}
	return Key(sha256.Sum256(content)), content, nil
}

// superblockRecLen sizes the superblock record for preallocation.
func superblockRecLen(sb *translate.Superblock) int {
	return 8 + 1 + 8 + 4 + len(sb.Insts)*sbInstRecLen
}

// sbInstRecLen is the encoded size of one superblock instruction record.
const sbInstRecLen = 8 + 4 + 1 + 8

// appendSuperblock appends the canonical superblock record to b: start
// PC, end kind, continuation PC, and one fixed-width record per
// collected instruction (PC, canonical Alpha word, taken flag,
// predicted indirect target). The record is the "superblock bytes" half
// of a content address, so it must be a pure function of the collected
// trace — alpha.Encode provides the canonical word spelling.
func appendSuperblock(b []byte, sb *translate.Superblock) ([]byte, error) {
	b = le64(b, sb.StartPC)
	b = append(b, byte(sb.End))
	b = le64(b, sb.NextPC)
	b = le32(b, uint32(len(sb.Insts)))
	for i := range sb.Insts {
		si := &sb.Insts[i]
		w, err := alpha.Encode(si.Inst)
		if err != nil {
			return nil, fmt.Errorf("fragstore: superblock %#x inst %d: %w", sb.StartPC, i, err)
		}
		b = le64(b, si.PC)
		b = le32(b, uint32(w))
		var flags byte
		if si.Taken {
			flags = 1
		}
		b = append(b, flags)
		b = le64(b, si.PredTarget)
	}
	return b, nil
}

// CloneForInstall returns a copy of res whose instruction slice is
// private to the caller. The instruction stream is the only part of a
// translation the per-VM cache mutates after install (exit patching and
// un-patching write the Kind and Frag fields in place); every other
// slice — PEI tables, recovery maps, strands, liveness — is read-only
// at runtime and stays shared with the store's immutable entry.
func CloneForInstall(res *translate.Result) *translate.Result {
	out := *res
	out.Insts = append([]ildp.Inst(nil), res.Insts...)
	return &out
}

// entry is one immutable store entry. res and err are written exactly
// once, before ready closes; readers synchronise on ready.
type entry struct {
	ready   chan struct{}
	res     *translate.Result
	err     error
	content []byte // config record ‖ superblock record, immutable
	creator any    // token of the session that translated it; nil for loaded entries
}

// shard is one lock domain of the store. The hit/miss counters are
// per-shard so the telemetry plane can expose how evenly the
// first-byte sharding spreads both occupancy and traffic.
type shard struct {
	mu sync.Mutex
	m  map[Key]*entry

	hits   atomic.Uint64
	misses atomic.Uint64
}

// Store is the process-wide shared fragment store. A Store is safe for
// concurrent use by any number of VMs; the zero value is not usable —
// construct with New or Decode.
type Store struct {
	shards [NumShards]shard

	hits       atomic.Uint64
	misses     atomic.Uint64
	sharedHits atomic.Uint64
	loaded     atomic.Uint64
	dropped    atomic.Uint64
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = map[Key]*entry{}
	}
	return s
}

// shardOf maps a key to its shard by the first key byte.
func (s *Store) shardOf(k Key) *shard { return &s.shards[int(k[0])%NumShards] }

// Do returns the translation stored under key, translating it at most
// once per process: on a miss the calling goroutine inserts an
// in-flight entry and runs fn; concurrent callers of the same key block
// until the result is published and share it. content is the canonical
// content record KeyOf returned for key; caller is an opaque session
// token used only to classify hits (a hit on an entry some other
// session created — or one loaded from disk — counts as shared).
//
// The returned result is the store's immutable artifact: callers that
// install it must install a private copy (CloneForInstall). A failed fn
// publishes nothing — the in-flight entry is removed so a later attempt
// retries — and its error is returned to every caller that raced on it.
func (s *Store) Do(key Key, content []byte, caller any,
	fn func() (*translate.Result, error)) (res *translate.Result, hit, shared bool, err error) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, false, e.err
		}
		s.hits.Add(1)
		sh.hits.Add(1)
		shared = e.creator != caller
		if shared {
			s.sharedHits.Add(1)
		}
		return e.res, true, shared, nil
	}
	e := &entry{ready: make(chan struct{}), content: content, creator: caller}
	sh.m[key] = e
	sh.mu.Unlock()

	res, err = fn()
	if err != nil {
		e.err = err
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
		close(e.ready)
		return nil, false, false, err
	}
	e.res = res
	close(e.ready)
	s.misses.Add(1)
	sh.misses.Add(1)
	return res, false, false, nil
}

// Get returns the translation stored under key, or nil. Unlike Do it
// never blocks on an in-flight translation and never counts a hit or
// miss; it exists for inspection and tests.
func (s *Store) Get(key Key) *translate.Result {
	sh := s.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	select {
	case <-e.ready:
	default:
		return nil // still translating
	}
	if e.err != nil {
		return nil
	}
	return e.res
}

// Drop removes the entry stored under key, reporting whether one was
// present. Dropping is advisory: callers that already hold the entry's
// result keep a valid immutable artifact; only future lookups miss. The
// load path uses the same mechanism implicitly — corrupt or unprovable
// entries are never inserted — so Drop is needed only by external
// quarantine policies and tests.
func (s *Store) Drop(key Key) bool {
	sh := s.shardOf(key)
	sh.mu.Lock()
	_, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	if ok {
		s.dropped.Add(1)
	}
	return ok
}

// Len returns the number of completed entries in the store.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			select {
			case <-e.ready:
				if e.err == nil {
					n++
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats is a snapshot of the store's lifetime counters.
type Stats struct {
	// Entries is the number of completed entries currently stored.
	Entries int
	// Hits counts Do calls that found a completed or in-flight entry;
	// SharedHits the subset whose entry was created by a different
	// session (or loaded from disk). Misses counts Do calls that ran
	// the translator.
	Hits, Misses, SharedHits uint64
	// Loaded counts entries admitted by Decode after re-verification;
	// Dropped counts entries removed by Drop.
	Loaded, Dropped uint64
}

// String renders the snapshot as a one-line summary.
func (st Stats) String() string {
	return fmt.Sprintf("%d entries, %d hits (%d shared), %d misses, %d loaded, %d dropped",
		st.Entries, st.Hits, st.SharedHits, st.Misses, st.Loaded, st.Dropped)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Entries:    s.Len(),
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		SharedHits: s.sharedHits.Load(),
		Loaded:     s.loaded.Load(),
		Dropped:    s.dropped.Load(),
	}
}

// ShardStat is the telemetry view of one store shard: how many
// completed entries it holds and how much singleflight traffic it has
// absorbed. Shards are addressed by the first key byte, so with
// SHA-256 keys both columns should stay near-uniform; a hot shard
// means contention on one mutex.
type ShardStat struct {
	// Shard is the shard index in [0, NumShards).
	Shard int `json:"shard"`
	// Entries is the number of completed entries currently stored.
	Entries int `json:"entries"`
	// Hits and Misses count Do calls resolved by (respectively run
	// through the translator into) this shard.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// ShardStats returns a per-shard occupancy and traffic snapshot, one
// row per shard in index order. Safe for concurrent use; each shard is
// read under its own lock, so the snapshot is per-shard (not globally)
// consistent.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, NumShards)
	for i := range s.shards {
		sh := &s.shards[i]
		n := 0
		sh.mu.Lock()
		for _, e := range sh.m {
			select {
			case <-e.ready:
				if e.err == nil {
					n++
				}
			default:
			}
		}
		sh.mu.Unlock()
		out[i] = ShardStat{
			Shard:   i,
			Entries: n,
			Hits:    sh.hits.Load(),
			Misses:  sh.misses.Load(),
		}
	}
	return out
}

// insertLoaded adds a decoded, re-verified entry (Decode's admission
// path). Loaded entries carry a nil creator, so any session's first hit
// on one counts as shared.
func (s *Store) insertLoaded(key Key, content []byte, res *translate.Result) {
	e := &entry{ready: make(chan struct{}), content: content, res: res}
	close(e.ready)
	sh := s.shardOf(key)
	sh.mu.Lock()
	if _, dup := sh.m[key]; !dup {
		sh.m[key] = e
		s.loaded.Add(1)
	}
	sh.mu.Unlock()
}

// le32 and le64 append fixed-width little-endian integers.
func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %f, want 4", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-9 {
		t.Errorf("GeoMean(5) = %f", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %f, want 0", got)
	}
	// Non-positive values are ignored, not poisoned.
	if got := GeoMean([]float64{0, -1, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean with non-positives = %f, want 4", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Mean = %f", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

// Property: GeoMean <= Mean for positive inputs (AM-GM inequality).
func TestAMGMProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T", "name", "x", "y")
	tb.Row("alpha", 1.2345, 100.0)
	tb.Row("b", 0.5, 12.34)
	out := tb.String()
	if !strings.Contains(out, "T\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	// Columns align: every row has the same rendered width.
	w := len(lines[1])
	for _, l := range lines[3:] {
		if len(l) != w {
			t.Errorf("misaligned row %q (want width %d)", l, w)
		}
	}
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "100") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
}

// Package stats provides the small numeric and text-table helpers used by
// the experiment drivers to print the paper's tables and figure series.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs (ignoring non-positive values).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table accumulates rows and renders an aligned text table.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	numeric []bool
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; cells are formatted with %v, floats with 2-3
// significant decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			switch {
			case v == 0:
				row[i] = "0"
			case math.Abs(v) >= 100:
				row[i] = fmt.Sprintf("%.0f", v)
			case math.Abs(v) >= 10:
				row[i] = fmt.Sprintf("%.1f", v)
			default:
				row[i] = fmt.Sprintf("%.2f", v)
			}
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

package iverify

import (
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/translate"
)

// checkChaining proves the fragment's control scaffolding is well formed
// (§3.2, §3.4): the set-VPC prologue names the fragment's V-ISA entry, the
// fragment ends — and only ends — with an unconditional transfer, the exit
// stubs agree with the configured chaining mode, the VM's jump-target
// register is latched before any transfer into the shared dispatch
// routine, and every fragment link is either a dispatch transfer, an
// unlinked translator exit, or a patched link to an installed fragment
// whose V-ISA start matches the transfer's target.
func (k *checker) checkChaining() {
	c := k.c
	n := len(c.Insts)
	if n == 0 {
		k.rep.add(RulePrologue, -1, "empty fragment")
		return
	}

	// C1: set-VPC prologue. The VM relies on the committed V-PC for trap
	// reporting between fragment entry and the first PEI, so the first
	// instruction must establish it — and nothing later may move it
	// (intra-fragment V-addresses come from the PEI table).
	if first := &c.Insts[0]; first.Kind != ildp.KindSetVPC {
		k.rep.add(RulePrologue, 0, "fragment begins with %v, not set-vpc", first.Kind)
	} else if first.VAddr != c.VStart {
		k.rep.add(RulePrologue, 0,
			"set-vpc establishes V %#x, fragment translates V %#x", first.VAddr, c.VStart)
	}
	for i := 1; i < n; i++ {
		if c.Insts[i].Kind == ildp.KindSetVPC {
			k.rep.add(RulePrologue, i, "set-vpc in the fragment body")
		}
	}

	// C2: exactly one unconditional transfer, as the last instruction.
	switch last := &c.Insts[n-1]; last.Kind {
	case ildp.KindBranch, ildp.KindCallTrans:
	default:
		k.rep.add(RuleTerminator, n-1,
			"fragment ends with %v, not an unconditional transfer", last.Kind)
	}
	for i := 0; i < n-1; i++ {
		switch c.Insts[i].Kind {
		case ildp.KindBranch, ildp.KindCallTrans:
			k.rep.add(RuleTerminator, i,
				"unconditional %v in the fragment body leaves unreachable code",
				c.Insts[i].Kind)
		case ildp.KindJumpInd, ildp.KindDispatchOp:
			k.rep.add(RuleTerminator, i,
				"%v belongs to the dispatch routine, not to translated fragments",
				c.Insts[i].Kind)
		}
	}

	// C3: chain-mode conformance of the exit stubs.
	for i := 0; i < n; i++ {
		inst := &c.Insts[i]
		switch inst.Kind {
		case ildp.KindLoadETA:
			if k.cfg.Chain == translate.NoPred {
				k.rep.add(RuleChainMode, i,
					"load-eta stub under %v chaining, which never predicts", k.cfg.Chain)
			}
		case ildp.KindJumpRet:
			if k.cfg.Chain != translate.SWPredRAS {
				k.rep.add(RuleChainMode, i,
					"ret-dualras requires the dual-address RAS; %v chaining is configured",
					k.cfg.Chain)
			} else if i+1 >= n || c.Insts[i+1].Kind != ildp.KindBranch ||
				c.Insts[i+1].Frag != ildp.FragDispatch {
				k.rep.add(RuleChainMode, i,
					"ret-dualras is not followed by the dispatch fall-through branch")
			}
		case ildp.KindPushRAS:
			if k.cfg.Chain != translate.SWPredRAS {
				k.rep.add(RuleChainMode, i,
					"push-dual-ras requires the dual-address RAS; %v chaining is configured",
					k.cfg.Chain)
			} else if i == 0 || c.Insts[i-1].Kind != ildp.KindSaveVRA ||
				c.Insts[i-1].VAddr != inst.VAddr {
				k.rep.add(RuleChainMode, i,
					"push-dual-ras %#x does not pair with a preceding save-vra", inst.VAddr)
			}
		case ildp.KindSaveVRA:
			if k.cfg.Chain == translate.SWPredRAS &&
				(i+1 >= n || c.Insts[i+1].Kind != ildp.KindPushRAS ||
					c.Insts[i+1].VAddr != inst.VAddr) {
				// An unpushed return address makes every return through it a
				// guaranteed RAS miss — legal for a predictor, but it means
				// the translation silently lost the §3.4 mechanism.
				k.rep.add(RuleChainMode, i,
					"save-vra %#x has no matching push-dual-ras", inst.VAddr)
			}
		}
	}

	// C4: the dispatch routine dispatches on the jump-target register;
	// reaching it with a stale latch redirects execution to whatever
	// target the previous indirect jump had. A ret-dualras latches on the
	// RAS-miss path, so it counts as a latch for its fall-through branch.
	latched := false
	for i := 0; i < n; i++ {
		inst := &c.Insts[i]
		if inst.Frag == ildp.FragDispatch && !latched &&
			(inst.Kind == ildp.KindBranch || inst.Kind == ildp.KindCondBranch) {
			k.rep.add(RuleJTarget, i,
				"transfer to dispatch before the jump-target register is latched")
		}
		if inst.GPRWrite() == ildp.RegJTarget || inst.Kind == ildp.KindJumpRet {
			latched = true
		}
	}

	// C5: fragment links.
	for i := 0; i < n; i++ {
		inst := &c.Insts[i]
		if !inst.IsControl() {
			continue
		}
		switch inst.Kind {
		case ildp.KindCallTrans, ildp.KindCallTransCond, ildp.KindJumpRet:
			if inst.Frag != ildp.NoFrag {
				k.rep.add(RuleFragLink, i,
					"%v carries fragment link %d; transfers out of translated code are unlinked",
					inst.Kind, inst.Frag)
			}
		case ildp.KindBranch, ildp.KindCondBranch:
			switch {
			case inst.Frag == ildp.FragDispatch:
			case inst.Frag >= 0:
				if k.cfg.ResolveFrag == nil {
					break
				}
				if vstart, ok := k.cfg.ResolveFrag(inst.Frag); !ok {
					k.rep.add(RuleFragLink, i, "links to nonexistent fragment %d", inst.Frag)
				} else if vstart != inst.VAddr {
					k.rep.add(RuleFragLink, i,
						"links to fragment %d translating V %#x; the transfer targets V %#x",
						inst.Frag, vstart, inst.VAddr)
				}
			default:
				// A linked branch kind with NoFrag would spin in the VM: the
				// patcher rewrites the kind and the link together.
				k.rep.add(RuleFragLink, i,
					"%v carries invalid fragment link %d", inst.Kind, inst.Frag)
			}
		}
	}
}

package iverify_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/iverify"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// spillProg interleaves six three-instruction dependence chains inside a
// hot loop. All six strands are live simultaneously, so the four-entry
// accumulator file must terminate strands early and reload them — the
// spill/reload shapes the D3 rule exists for.
const spillProg = `
	.text 0x10000
start:
	ldiq  s0, 100
	clr   t0
	clr   t1
	clr   t2
	clr   t3
	clr   t4
	clr   t5
spin:
	addq  t0, #1, t0
	addq  t1, #2, t1
	addq  t2, #3, t2
	addq  t3, #4, t3
	addq  t4, #5, t4
	addq  t5, #6, t5
	xor   t0, #7, t0
	xor   t1, #7, t1
	xor   t2, #7, t2
	xor   t3, #7, t3
	xor   t4, #7, t4
	xor   t5, #7, t5
	addq  t0, #1, t0
	addq  t1, #1, t1
	addq  t2, #1, t2
	addq  t3, #1, t3
	addq  t4, #1, t4
	addq  t5, #1, t5
	subq  s0, #1, s0
	bne   s0, spin
	addq  t0, t1, v0
	lda   v0, 1(zero)
	lda   a0, 0(zero)
	call_pal callsys
`

// mixProg exercises the chaining shapes: a jump-table indirect loop
// (jump-target latches and load-ETA stubs), recursion (save-VRA /
// push-dual-ras pairs and ret-dualras), loads, stores, and a conditional
// move.
const mixProg = `
	.data 0x20000
tab:
	.quad 3, 1, 4, 1, 5, 9
res:
	.space 32
	.data 0x20800
jtab:
	.quad jt0, jt1, jt2, jt3

	.text 0x10000
start:
	ldiq  sp, 0x80000
	ldiq  s0, 60
	clr   s2
iloop:
	and   s0, #3, t0
	ldiq  t1, jtab
	s8addq t0, t1, t1
	ldq   t2, 0(t1)
	jmp   (t2)
jt0:
	addq  s2, #1, s2
	br    idone
jt1:
	addq  s2, #2, s2
	br    idone
jt2:
	addq  s2, #3, s2
	br    idone
jt3:
	addq  s2, #5, s2
idone:
	subq  s0, #1, s0
	bne   s0, iloop
	ldiq  t5, res
	stq   s2, 0(t5)
	; max-scan loop with a conditional move, run hot by an outer loop
	ldiq  s3, 8
souter:
	ldiq  a0, tab
	lda   a1, 6(zero)
	clr   v0
	clr   s1
sloop:
	ldq   t0, 0(a0)
	addq  v0, t0, v0
	cmplt s1, t0, t1
	cmovne t1, t0, s1
	lda   a0, 8(a0)
	subq  a1, #1, a1
	bne   a1, sloop
	subq  s3, #1, s3
	bne   s3, souter
	ldiq  t5, res
	stq   v0, 8(t5)
	stq   s1, 16(t5)
	; recursion
	lda   a0, 9(zero)
	bsr   fib
	ldiq  t5, res
	stq   v0, 24(t5)
	lda   v0, 1(zero)
	lda   a0, 0(zero)
	call_pal callsys

fib:
	cmplt a0, #2, t0
	beq   t0, fibrec
	mov   a0, v0
	ret
fibrec:
	stq   ra, -8(sp)
	stq   a0, -16(sp)
	lda   sp, -16(sp)
	subq  a0, #1, a0
	bsr   fib
	ldq   a0, 0(sp)
	stq   v0, 0(sp)
	subq  a0, #2, a0
	bsr   fib
	ldq   t0, 0(sp)
	addq  v0, t0, v0
	lda   sp, 16(sp)
	ldq   ra, -8(sp)
	ret
`

// entry is one harvested fragment plus the configuration it was
// translated under.
type entry struct {
	label string
	frag  *tcache.Fragment
	cfg   iverify.Config // carries the harvesting cache's ResolveFrag
}

var (
	corpusOnce sync.Once
	corpusVal  []entry
	corpusErr  error
)

// corpus harvests translated fragments from real VM runs across both ISA
// forms, all three chain modes, and both accumulator-file sizes: the two
// local programs under the full 12-configuration matrix, plus three
// workloads under the form x chain matrix at the default file size.
func corpus(t testing.TB) []entry {
	corpusOnce.Do(func() { corpusVal, corpusErr = buildCorpus() })
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	if len(corpusVal) == 0 {
		t.Fatal("corpus: no fragments harvested")
	}
	return corpusVal
}

func buildCorpus() ([]entry, error) {
	forms := []ildp.Form{ildp.Basic, ildp.Modified}
	chains := []translate.ChainMode{translate.NoPred, translate.SWPred, translate.SWPredRAS}

	var out []entry
	harvest := func(name string, v *vm.VM, cfg vm.Config) {
		tc := v.TCache()
		resolve := func(id int32) (uint64, bool) {
			f := tc.Frag(id)
			if f == nil {
				return 0, false
			}
			return f.VStart, true
		}
		for id := int32(0); int(id) < tc.Len(); id++ {
			f := tc.Frag(id)
			out = append(out, entry{
				label: fmt.Sprintf("%s/%v/%v/acc%d/frag%d@%#x",
					name, cfg.Form, cfg.Chain, cfg.NumAcc, id, f.VStart),
				frag: f,
				cfg: iverify.Config{
					Form: cfg.Form, NumAcc: cfg.NumAcc, Chain: cfg.Chain,
					ResolveFrag: resolve,
				},
			})
		}
	}

	// The local programs: the full 12-configuration matrix. These come
	// first so mutation searches hit the spill-heavy fragments early.
	progs := []struct {
		name, src string
	}{{"spill", spillProg}, {"mix", mixProg}}
	for _, p := range progs {
		for _, form := range forms {
			for _, chain := range chains {
				for _, acc := range []int{ildp.DefaultAccumulators, ildp.MaxAccumulators} {
					cfg := vm.DefaultConfig()
					cfg.Form, cfg.Chain, cfg.NumAcc = form, chain, acc
					cfg.HotThreshold = 5
					v := vm.New(mem.New(), cfg)
					if err := v.LoadProgram(alphaasm.MustAssemble(p.src)); err != nil {
						return nil, fmt.Errorf("%s: %v", p.name, err)
					}
					if err := v.Run(10_000_000); err != nil && !errors.Is(err, vm.ErrBudget) {
						return nil, fmt.Errorf("%s/%v/%v: %v", p.name, form, chain, err)
					}
					if v.TCache().Len() == 0 {
						return nil, fmt.Errorf("%s/%v/%v: no fragments translated", p.name, form, chain)
					}
					harvest(p.name, v, cfg)
				}
			}
		}
	}

	// Workload fragments: translator output over generated code far more
	// varied than the hand-written programs.
	for _, name := range []string{"gzip", "perlbmk", "eon"} {
		spec, err := workload.ByName(name, 1)
		if err != nil {
			return nil, err
		}
		prog := spec.MustProgram()
		for _, form := range forms {
			for _, chain := range chains {
				cfg := vm.DefaultConfig()
				cfg.Form, cfg.Chain = form, chain
				cfg.HotThreshold = 10
				v := vm.New(mem.New(), cfg)
				if err := v.LoadProgram(prog); err != nil {
					return nil, fmt.Errorf("%s: %v", name, err)
				}
				if err := v.Run(300_000); err != nil && !errors.Is(err, vm.ErrBudget) {
					return nil, fmt.Errorf("%s/%v/%v: %v", name, form, chain, err)
				}
				harvest(name, v, cfg)
			}
		}
	}
	return out, nil
}

// TestRuleTable pins the verifier's rule taxonomy: 18 rules with unique
// identifiers and a paper reference each (DESIGN.md renders this table).
func TestRuleTable(t *testing.T) {
	rules := iverify.Rules()
	if len(rules) != 18 {
		t.Fatalf("Rules() lists %d rules, want 18", len(rules))
	}
	ids := map[string]bool{}
	names := map[string]bool{}
	for _, r := range rules {
		if ids[r.ID()] || names[r.String()] {
			t.Errorf("rule %v: duplicate id/name %q/%q", r, r.ID(), r.String())
		}
		ids[r.ID()], names[r.String()] = true, true
		if !strings.Contains(r.PaperRef(), "§") {
			t.Errorf("rule %v has no paper reference", r)
		}
	}
	for _, prefix := range []string{"E", "D", "P", "C"} {
		found := false
		for id := range ids {
			if strings.HasPrefix(id, prefix) {
				found = true
			}
		}
		if !found {
			t.Errorf("no rules in group %s", prefix)
		}
	}
}

// TestCorpusClean requires every harvested fragment — across forms, chain
// modes, file sizes, and with fragment links resolved against the cache
// that installed them — to verify without violations.
func TestCorpusClean(t *testing.T) {
	seenForm := map[ildp.Form]bool{}
	seenChain := map[translate.ChainMode]bool{}
	seenAcc := map[int]bool{}
	for _, e := range corpus(t) {
		rep := iverify.Check(iverify.FromFragment(e.frag), e.cfg)
		if rep.Skipped {
			t.Errorf("%s: unexpectedly skipped", e.label)
			continue
		}
		if !rep.OK() {
			t.Errorf("%s:\n%s", e.label, rep)
		}
		seenForm[e.cfg.Form] = true
		seenChain[e.cfg.Chain] = true
		seenAcc[e.cfg.NumAcc] = true
	}
	if len(seenForm) != 2 || len(seenChain) != 3 || len(seenAcc) != 2 {
		t.Errorf("corpus coverage: forms=%d chains=%d accs=%d, want 2/3/2",
			len(seenForm), len(seenChain), len(seenAcc))
	}
	t.Logf("verified %d fragments clean", len(corpus(t)))
}

// TestMutationsFireExactly proves each rule has teeth: for every targeted
// corruption there is a corpus fragment where applying it makes the
// verifier report that rule — and only that rule. Link checking is
// disabled for the mutated copies (several corruptions fabricate
// instructions whose links have no installed target).
func TestMutationsFireExactly(t *testing.T) {
	entries := corpus(t)
	for _, m := range iverify.Mutations() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			for _, e := range entries {
				c := iverify.FromFragment(e.frag)
				cfg := e.cfg
				cfg.ResolveFrag = nil
				if !m.Apply(c, cfg) {
					continue
				}
				rep := iverify.Check(c, cfg)
				if rep.OK() {
					t.Fatalf("%s: corruption applied on %s but the report is clean", m.Name, e.label)
				}
				rules := rep.Rules()
				if len(rules) != 1 || rules[0] != m.Rule {
					t.Fatalf("%s on %s: fired %v, want exactly [%v]\n%s",
						m.Name, e.label, rules, m.Rule, rep)
				}
				if !strings.Contains(rep.String(), "["+m.Rule.ID()+" ") {
					t.Fatalf("%s: report does not carry the %s tag:\n%s", m.Name, m.Rule.ID(), rep)
				}
				return
			}
			t.Errorf("%s (%v): no applicable site in a %d-fragment corpus",
				m.Name, m.Rule, len(entries))
		})
	}
}

// TestCorruptionDoesNotLeakIntoCorpus guards the mutation engine itself:
// applying a mutation works on a copy, so re-checking the original
// fragment afterwards must still come out clean.
func TestCorruptionDoesNotLeakIntoCorpus(t *testing.T) {
	entries := corpus(t)
	e := entries[0]
	for _, m := range iverify.Mutations() {
		c := iverify.FromFragment(e.frag)
		cfg := e.cfg
		cfg.ResolveFrag = nil
		m.Apply(c, cfg)
	}
	if rep := iverify.Check(iverify.FromFragment(e.frag), e.cfg); !rep.OK() {
		t.Fatalf("mutations corrupted the underlying fragment:\n%s", rep)
	}
}

// TestVerifySkipsStraightened: straightened fragments carry V-ISA code
// with none of the I-ISA invariants; the verifier must report them
// skipped rather than flooding diagnostics.
func TestVerifySkipsStraightened(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.Straighten = true
	cfg.HotThreshold = 5
	v := vm.New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(spillProg)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(10_000_000); err != nil && !errors.Is(err, vm.ErrBudget) {
		t.Fatal(err)
	}
	tc := v.TCache()
	if tc.Len() == 0 {
		t.Fatal("no straightened fragments translated")
	}
	for id := int32(0); int(id) < tc.Len(); id++ {
		rep := iverify.Check(iverify.FromFragment(tc.Frag(id)), iverify.Config{})
		if !rep.Skipped || !rep.OK() {
			t.Fatalf("straightened fragment %d: skipped=%v ok=%v", id, rep.Skipped, rep.OK())
		}
	}
}

// TestViolationFormat pins the diagnostic format the CLI and the VM's
// paranoid mode print.
func TestViolationFormat(t *testing.T) {
	v := iverify.Violation{Rule: iverify.RuleGPRSources, Index: 12, Detail: "two register sources"}
	got := v.String()
	want := "[E1 gpr-sources §2.2] #12: two register sources"
	if got != want {
		t.Errorf("Violation.String() = %q, want %q", got, want)
	}
	v.Index = -1
	if !strings.Contains(v.String(), "fragment:") {
		t.Errorf("fragment-level violation renders as %q", v.String())
	}
}

// FuzzTranslate feeds arbitrary decodable instruction sequences through
// superblock translation and requires every successful translation to
// verify clean — the translator and the verifier are written against the
// same invariants by construction, so any disagreement is a bug in one of
// them.
func FuzzTranslate(f *testing.F) {
	seed := func(words ...uint32) []byte {
		var b []byte
		for _, w := range words {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		return b
	}
	mustEnc := func(w alpha.Word, err error) uint32 {
		if err != nil {
			f.Fatal(err)
		}
		return uint32(w)
	}
	// A load/add/store/branch loop body.
	f.Add(uint8(0), seed(
		mustEnc(alpha.EncodeMem(alpha.OpLDQ, 1, 2, 0)),
		mustEnc(alpha.EncodeOperateR(alpha.OpADDQ, 0, 1, 0)),
		mustEnc(alpha.EncodeMem(alpha.OpSTQ, 0, 2, 8)),
		mustEnc(alpha.EncodeOperateL(alpha.OpSUBQ, 3, 1, 3)),
		mustEnc(alpha.EncodeBranch(alpha.OpBNE, 3, -5)),
	))
	// A call and an indirect return.
	f.Add(uint8(3), seed(
		mustEnc(alpha.EncodeBranch(alpha.OpBSR, 26, 2)),
		mustEnc(alpha.EncodeOperateR(alpha.OpBIS, 9, 9, 0)),
		mustEnc(alpha.EncodeJump(alpha.OpRET, 31, 26, 0)),
	))
	// A conditional move between two ALU ops.
	f.Add(uint8(5), seed(
		mustEnc(alpha.EncodeOperateL(alpha.OpCMPLT, 4, 10, 5)),
		mustEnc(alpha.EncodeOperateR(alpha.OpCMOVNE, 5, 6, 4)),
		mustEnc(alpha.EncodeOperateR(alpha.OpXOR, 4, 7, 4)),
	))

	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		form := ildp.Basic
		if sel&1 != 0 {
			form = ildp.Modified
		}
		chain := translate.ChainMode((sel >> 1) % 3)
		numAcc := ildp.DefaultAccumulators
		if sel&8 != 0 {
			numAcc = ildp.MaxAccumulators
		}

		const base = uint64(0x10000)
		sb := &translate.Superblock{StartPC: base, End: translate.EndMaxSize}
		pc := base
		for i := 0; i+4 <= len(data) && len(sb.Insts) < 64; i += 4 {
			w := alpha.Word(uint32(data[i]) | uint32(data[i+1])<<8 |
				uint32(data[i+2])<<16 | uint32(data[i+3])<<24)
			inst := alpha.Decode(w)
			if inst.Op == alpha.OpInvalid || inst.Op == alpha.OpUnsupported ||
				inst.Op == alpha.OpCallPAL {
				break
			}
			rec := translate.SBInst{PC: pc, Inst: inst}
			if inst.IsCondBranch() {
				rec.Taken = inst.Ra&1 != 0
			}
			if inst.IsIndirect() {
				rec.PredTarget = base + 0x400
			}
			sb.Insts = append(sb.Insts, rec)
			pc += alpha.InstBytes
			if inst.IsIndirect() {
				sb.End = translate.EndIndirect
				break
			}
		}
		if len(sb.Insts) == 0 {
			return
		}
		sb.NextPC = pc

		tcfg := translate.Config{Form: form, NumAcc: numAcc, Chain: chain}
		res, err := translate.Translate(sb, tcfg)
		if err != nil {
			return // untranslatable input is the interpreter's problem
		}
		rep := iverify.Verify(res, iverify.Config{Form: form, NumAcc: numAcc, Chain: chain})
		if !rep.OK() {
			t.Fatalf("translation of %d V-instructions fails verification (%v/%v/%d accs):\n%s",
				len(sb.Insts), form, chain, numAcc, rep)
		}
	})
}

// BenchmarkVerify measures verification throughput over the harvested
// corpus (the cost the VM's paranoid mode adds per translation).
func BenchmarkVerify(b *testing.B) {
	entries := corpus(b)
	insts := 0
	for _, e := range entries {
		insts += len(e.frag.Insts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			rep := iverify.Check(iverify.FromFragment(e.frag), e.cfg)
			if !rep.OK() {
				b.Fatal(rep)
			}
		}
	}
	b.ReportMetric(float64(len(entries)*b.N)/b.Elapsed().Seconds(), "frags/s")
	b.ReportMetric(float64(insts*b.N)/b.Elapsed().Seconds(), "insts/s")
}

package iverify

import (
	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

// checkEncoding proves every instruction is individually encodable in the
// I-ISA: the one-GPR/one-accumulator source restriction that keeps the
// instruction formats at 16/32 bits (§2.2), accumulator specifiers that fit
// the configured file, accumulator operands bound before use, legal size
// classes summing to the recorded fragment size (§2.3), and the per-form
// destination-specifier discipline.
func (k *checker) checkEncoding() {
	total := 0
	for i := range k.c.Insts {
		inst := &k.c.Insts[i]

		// E1: at most one GPR among the sources (§2.2). A second register
		// specifier does not fit the 16/32-bit formats and, in hardware,
		// would need a second register-file read port on the strand's
		// processing element.
		if n := inst.NumGPRSources(); n > 1 {
			k.rep.add(RuleGPRSources, i, "%v names %d GPR sources (%v, %v)",
				inst.Kind, n, inst.SrcA, inst.SrcB)
		}

		// E2: at most one accumulator among the sources; the CMOV select is
		// the documented exception (condition in the accumulator plus the
		// old value re-read).
		if n := inst.NumAccSources(); n > 1 && inst.Kind != ildp.KindCMOV {
			k.rep.add(RuleAccSources, i, "%v names %d accumulator sources", inst.Kind, n)
		}

		// E3: the accumulator specifier must address the configured file.
		if inst.Acc != ildp.NoAcc && int(inst.Acc) >= k.cfg.NumAcc {
			k.rep.add(RuleAccRange, i, "accumulator A%d out of range (%d configured)",
				inst.Acc, k.cfg.NumAcc)
		}

		// E4: an instruction that reads or writes its accumulator must have
		// one bound; NoAcc is the absence marker, not an operand.
		if (inst.ReadsAcc() || inst.WritesAcc) && inst.Acc == ildp.NoAcc {
			verb := "reads"
			if inst.WritesAcc {
				verb = "writes"
			}
			k.rep.add(RuleAccBinding, i, "%v %s an accumulator but none is bound",
				inst.Kind, verb)
		}

		// E5: each instruction is a 16-, 32-, or 64-bit form (§2.3).
		sz := inst.EncodedSize(k.cfg.Form)
		switch sz {
		case 2, 4, 8:
		default:
			k.rep.add(RuleSizeClass, i, "%v has no %d-byte encoding", inst.Kind, sz)
		}
		total += sz

		// E6: destination-specifier discipline. The Basic form has no
		// destination field in producing instructions — architected state
		// moves through explicit copies (save-VRA writes a GPR directly;
		// CMOV republishes its destination). The Modified form requires the
		// embedded destination to be the architected register the result
		// represents (§2.3) — a mismatched specifier silently corrupts the
		// register file.
		switch k.cfg.Form {
		case ildp.Basic:
			if inst.ProducesResult() &&
				inst.Kind != ildp.KindSaveVRA && inst.Kind != ildp.KindCMOV &&
				inst.Dest != alpha.RegZero {
				k.rep.add(RuleFormDest, i,
					"basic-form %v carries destination specifier R%d", inst.Kind, inst.Dest)
			}
		case ildp.Modified:
			if inst.ProducesResult() &&
				inst.ArchDest != alpha.RegZero && int(inst.ArchDest) < alpha.NumRegs &&
				inst.Dest != inst.ArchDest {
				k.rep.add(RuleFormDest, i,
					"%v destination specifier R%d does not match architected result R%d",
					inst.Kind, inst.Dest, inst.ArchDest)
			}
		}
	}

	// E5 (fragment level): the recorded fragment size must equal the sum of
	// the per-instruction size classes, or static-code-size statistics and
	// the I-cache model are charged for the wrong footprint.
	if k.c.CodeBytes != 0 && total != k.c.CodeBytes {
		k.rep.add(RuleSizeClass, -1, "encoded sizes sum to %d bytes, fragment records %d",
			total, k.c.CodeBytes)
	}
}

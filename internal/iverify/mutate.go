package iverify

import (
	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/translate"
)

// Mutation is one rule-targeted fragment corruption, used to prove the
// verifier's rules actually fire: Apply corrupts the fragment so that
// Check reports the target rule — and only that rule. Apply is
// self-verifying: it tries candidate sites and keeps the first whose
// corrupted fragment yields exactly {Rule}; it returns false when the
// fragment offers no viable site (e.g. a Modified-form fragment for a
// Basic-form-only rule), leaving the fragment unchanged.
type Mutation struct {
	Name  string
	Rule  Rule
	Apply func(c *Code, cfg Config) bool
}

// scratch registers used as corruption targets; like the translator's
// spill scratches they are VM-private, so they collide with nothing
// architected.
const (
	mutGPR   = ildp.ScratchBase + 9
	mutGPR2  = ildp.ScratchBase + 11
	mutGPR3  = ildp.ScratchBase + 12
	mutDest  = ildp.ScratchBase + 10
	mutFrag  = int32(7)
	mutPairR = alpha.Reg(5)
)

// clone deep-copies the fragment so rejected candidate corruptions leave
// the original untouched.
func (c *Code) clone() *Code {
	d := *c
	d.Insts = append([]ildp.Inst(nil), c.Insts...)
	if c.Strands != nil {
		d.Strands = append([]int(nil), c.Strands...)
	}
	d.PEI = append([]uint64(nil), c.PEI...)
	d.PEIRecover = make([][]translate.RegAcc, len(c.PEIRecover))
	for i := range c.PEIRecover {
		d.PEIRecover[i] = append([]translate.RegAcc(nil), c.PEIRecover[i]...)
	}
	if c.ExitLive != nil {
		d.ExitLive = make([][]alpha.Reg, len(c.ExitLive))
		for i := range c.ExitLive {
			d.ExitLive[i] = append([]alpha.Reg(nil), c.ExitLive[i]...)
		}
	}
	if c.EndLive != nil {
		d.EndLive = append([]alpha.Reg(nil), c.EndLive...)
	}
	return &d
}

// fixSize recomputes the recorded fragment size after a structural edit,
// so only the intended rule sees the corruption.
func fixSize(c *Code, cfg Config) {
	c.CodeBytes = 0
	for i := range c.Insts {
		c.CodeBytes += c.Insts[i].EncodedSize(cfg.Form)
	}
}

// firesExactly reports whether the fragment violates the target rule and
// no other.
func firesExactly(c *Code, cfg Config, rule Rule) bool {
	rules := Check(c, cfg).Rules()
	return len(rules) == 1 && rules[0] == rule
}

// search tries sites 0..n-1: mutate edits the clone for a site (returning
// false to skip it) and the first edit that fires exactly the target rule
// is committed to c.
func search(c *Code, cfg Config, rule Rule, n int, mutate func(d *Code, site int) bool) bool {
	for site := 0; site < n; site++ {
		d := c.clone()
		if !mutate(d, site) {
			continue
		}
		if firesExactly(d, cfg, rule) {
			*c = *d
			return true
		}
	}
	return false
}

// pureReader reports whether the instruction reads an in-range
// accumulator without writing one — corrupting its Acc field perturbs no
// downstream dataflow, so the corruption is observable in isolation.
func pureReader(inst *ildp.Inst, cfg Config) bool {
	return !inst.WritesAcc && inst.Acc != ildp.NoAcc && int(inst.Acc) < cfg.NumAcc &&
		(inst.NumAccSources() > 0 || inst.ImplicitAccRead())
}

// accOwners returns, per instruction index, the accumulator-ownership
// state just before that instruction (a row per instruction, a slot per
// accumulator; ownerNone when undefined).
func accOwners(c *Code, cfg Config) [][]int {
	owners := make([][]int, len(c.Insts))
	cur := make([]int, cfg.NumAcc)
	for i := range cur {
		cur[i] = ownerNone
	}
	for i := range c.Insts {
		owners[i] = append([]int(nil), cur...)
		inst := &c.Insts[i]
		if inst.WritesAcc && inst.Acc != ildp.NoAcc && int(inst.Acc) < cfg.NumAcc {
			if s := c.Strands[i]; s >= 0 {
				cur[inst.Acc] = s
			} else {
				cur[inst.Acc] = ownerForeign
			}
		}
	}
	return owners
}

// inAccStates returns, per instruction index, the accumulator-only
// architected-register set just before that instruction.
func inAccStates(c *Code) []map[alpha.Reg]ildp.AccID {
	states := make([]map[alpha.Reg]ildp.AccID, len(c.Insts))
	inAcc := map[alpha.Reg]ildp.AccID{}
	lost := map[alpha.Reg]bool{}
	for i := range c.Insts {
		m := make(map[alpha.Reg]ildp.AccID, len(inAcc))
		for r, a := range inAcc {
			m[r] = a
		}
		states[i] = m
		applyStateEffects(&c.Insts[i], inAcc, lost)
	}
	return states
}

// spliceInst removes instruction i, keeping the strand annotations
// aligned.
func spliceInst(c *Code, i int) {
	c.Insts = append(c.Insts[:i], c.Insts[i+1:]...)
	if c.Strands != nil {
		c.Strands = append(c.Strands[:i], c.Strands[i+1:]...)
	}
}

// insertInst inserts inst at position i with a strand-less annotation.
func insertInst(c *Code, i int, inst ildp.Inst) {
	c.Insts = append(c.Insts, ildp.Inst{})
	copy(c.Insts[i+1:], c.Insts[i:])
	c.Insts[i] = inst
	if c.Strands != nil {
		c.Strands = append(c.Strands, 0)
		copy(c.Strands[i+1:], c.Strands[i:])
		c.Strands[i] = -1
	}
}

// Mutations returns one targeted corruption per verifier rule, in rule
// order.
func Mutations() []Mutation {
	return []Mutation{
		{Name: "second-gpr-source", Rule: RuleGPRSources, Apply: mutGPRSources},
		{Name: "second-acc-source", Rule: RuleAccSources, Apply: mutAccSources},
		{Name: "acc-beyond-file", Rule: RuleAccRange, Apply: mutAccRange},
		{Name: "unbound-acc", Rule: RuleAccBinding, Apply: mutAccBinding},
		{Name: "wrong-code-bytes", Rule: RuleSizeClass, Apply: mutSizeClass},
		{Name: "wrong-dest-specifier", Rule: RuleFormDest, Apply: mutFormDest},
		{Name: "read-undefined-acc", Rule: RuleAccUndefined, Apply: mutAccUndefined},
		{Name: "cross-strand-read", Rule: RuleStrandBleed, Apply: mutStrandBleed},
		{Name: "reload-wrong-home", Rule: RuleSpillRestore, Apply: mutSpillRestore},
		{Name: "truncated-pei-table", Rule: RulePEITable, Apply: mutPEITable},
		{Name: "corrupt-recovery-entry", Rule: RuleStateRecover, Apply: mutStateRecover},
		{Name: "drop-state-copy", Rule: RuleStateLost, Apply: mutStateLost},
		{Name: "read-stale-register", Rule: RuleStaleRead, Apply: mutStaleRead},
		{Name: "wrong-entry-vpc", Rule: RulePrologue, Apply: mutPrologue},
		{Name: "trailing-branch", Rule: RuleTerminator, Apply: mutTerminator},
		{Name: "ras-stub-mismatch", Rule: RuleChainMode, Apply: mutChainMode},
		{Name: "drop-jtarget-latch", Rule: RuleJTarget, Apply: mutJTarget},
		{Name: "linked-translator-exit", Rule: RuleFragLink, Apply: mutFragLink},
	}
}

// E1: give an accumulator-reading instruction a second GPR source by
// rewriting its accumulator operand into a register read.
func mutGPRSources(c *Code, cfg Config) bool {
	return search(c, cfg, RuleGPRSources, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if inst.NumGPRSources() != 1 || inst.NumAccSources() == 0 {
			return false
		}
		if inst.SrcA.Kind == ildp.SrcAcc {
			inst.SrcA = ildp.GPRSrc(mutGPR)
		} else {
			inst.SrcB = ildp.GPRSrc(mutGPR)
		}
		fixSize(d, cfg)
		return true
	})
}

// E2: give a single-accumulator instruction a second accumulator source.
// Both specifiers name the instruction's own accumulator, so the
// dataflow rules stay satisfied and only the encoding rule can object.
func mutAccSources(c *Code, cfg Config) bool {
	return search(c, cfg, RuleAccSources, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if inst.Kind == ildp.KindCMOV || inst.NumAccSources() != 1 {
			return false
		}
		if inst.SrcA.Kind == ildp.SrcAcc {
			inst.SrcB = ildp.AccSrc()
		} else {
			inst.SrcA = ildp.AccSrc()
		}
		fixSize(d, cfg)
		return true
	})
}

// E3: point a pure accumulator reader past the configured file.
func mutAccRange(c *Code, cfg Config) bool {
	return search(c, cfg, RuleAccRange, len(c.Insts), func(d *Code, i int) bool {
		if !pureReader(&d.Insts[i], cfg) {
			return false
		}
		d.Insts[i].Acc = ildp.AccID(cfg.NumAcc)
		return true
	})
}

// E4: strip the accumulator binding from a pure accumulator reader.
func mutAccBinding(c *Code, cfg Config) bool {
	return search(c, cfg, RuleAccBinding, len(c.Insts), func(d *Code, i int) bool {
		if !pureReader(&d.Insts[i], cfg) {
			return false
		}
		d.Insts[i].Acc = ildp.NoAcc
		return true
	})
}

// E5: record a fragment size the per-instruction size classes cannot sum
// to.
func mutSizeClass(c *Code, cfg Config) bool {
	return search(c, cfg, RuleSizeClass, 1, func(d *Code, _ int) bool {
		fixSize(d, cfg)
		d.CodeBytes += 2
		return true
	})
}

// E6: break the destination-specifier discipline — a Basic-form producer
// that smuggles in a destination field, or a Modified-form producer whose
// specifier disagrees with the architected result register.
func mutFormDest(c *Code, cfg Config) bool {
	return search(c, cfg, RuleFormDest, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if !inst.ProducesResult() {
			return false
		}
		if cfg.Form == ildp.Basic {
			if inst.Kind == ildp.KindSaveVRA || inst.Kind == ildp.KindCMOV ||
				inst.Dest != alpha.RegZero {
				return false
			}
			inst.Dest = mutDest
		} else {
			if inst.ArchDest == alpha.RegZero || int(inst.ArchDest) >= alpha.NumRegs ||
				inst.Dest != inst.ArchDest {
				return false
			}
			inst.Dest = (inst.ArchDest + 1) % alpha.RegZero
		}
		fixSize(d, cfg)
		return true
	})
}

// D1: redirect a pure accumulator reader to an accumulator nothing has
// defined yet.
func mutAccUndefined(c *Code, cfg Config) bool {
	if c.Strands == nil {
		return false
	}
	owners := accOwners(c, cfg)
	return search(c, cfg, RuleAccUndefined, len(c.Insts)*cfg.NumAcc, func(d *Code, site int) bool {
		i, a := site/cfg.NumAcc, site%cfg.NumAcc
		if !pureReader(&d.Insts[i], cfg) || owners[i][a] != ownerNone {
			return false
		}
		d.Insts[i].Acc = ildp.AccID(a)
		return true
	})
}

// D2: redirect a pure accumulator reader to an accumulator currently
// owned by a different strand.
func mutStrandBleed(c *Code, cfg Config) bool {
	if c.Strands == nil {
		return false
	}
	owners := accOwners(c, cfg)
	return search(c, cfg, RuleStrandBleed, len(c.Insts)*cfg.NumAcc, func(d *Code, site int) bool {
		i, a := site/cfg.NumAcc, site%cfg.NumAcc
		if !pureReader(&d.Insts[i], cfg) {
			return false
		}
		if own := owners[i][a]; own == ownerNone || own == d.Strands[i] {
			return false
		}
		d.Insts[i].Acc = ildp.AccID(a)
		return true
	})
}

// D3: make a strand reload read back a register other than the one its
// value was spilled to.
func mutSpillRestore(c *Code, cfg Config) bool {
	if c.Strands == nil {
		return false
	}
	return search(c, cfg, RuleSpillRestore, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if inst.Kind != ildp.KindCopyFromGPR || d.Strands[i] < 0 ||
			inst.SrcA.Kind != ildp.SrcGPR {
			return false
		}
		// Only a resumption of an already-seen strand is a reload.
		reload := false
		for j := 0; j < i; j++ {
			if d.Strands[j] == d.Strands[i] {
				reload = true
				break
			}
		}
		if !reload {
			return false
		}
		wrong := alpha.Reg(mutGPR2)
		if inst.SrcA.Reg == wrong {
			wrong = mutGPR3
		}
		inst.SrcA.Reg = wrong
		return true
	})
}

// P1: drop the last PEI point from every table, as a translator that
// forgot to log a potentially excepting instruction would.
func mutPEITable(c *Code, cfg Config) bool {
	if len(c.PEI) == 0 {
		return false
	}
	return search(c, cfg, RulePEITable, 1, func(d *Code, _ int) bool {
		d.PEI = d.PEI[:len(d.PEI)-1]
		if len(d.PEIRecover) > 0 {
			d.PEIRecover = d.PEIRecover[:len(d.PEIRecover)-1]
		}
		if len(d.ExitLive) > 0 {
			d.ExitLive = d.ExitLive[:len(d.ExitLive)-1]
		}
		return true
	})
}

// P2: corrupt one recovery entry — drop a pair the trap hardware needs,
// or (when every entry is empty, as in the Modified form) invent a pair
// that would restore a stale accumulator value over live state.
func mutStateRecover(c *Code, cfg Config) bool {
	n := len(c.PEIRecover)
	return search(c, cfg, RuleStateRecover, 2*n, func(d *Code, site int) bool {
		k, inject := site%n, site >= n
		if inject {
			d.PEIRecover[k] = append(d.PEIRecover[k],
				translate.RegAcc{Reg: mutPairR, Acc: 0})
			return true
		}
		if len(d.PEIRecover[k]) == 0 {
			return false
		}
		d.PEIRecover[k] = d.PEIRecover[k][:len(d.PEIRecover[k])-1]
		return true
	})
}

// P3: delete a Basic-form state-maintenance copy and rebuild the recovery
// table to match, leaving a window where an architected value is in no
// accumulator and not in the register file — precisely the corruption
// the recovery-table check alone cannot see.
func mutStateLost(c *Code, cfg Config) bool {
	return search(c, cfg, RuleStateLost, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if inst.Kind != ildp.KindCopyToGPR || inst.Class != ildp.ClassCopy ||
			inst.Dest == alpha.RegZero || int(inst.Dest) >= alpha.NumRegs {
			return false
		}
		spliceInst(d, i)
		d.PEIRecover = recoverTable(d.Insts)
		fixSize(d, cfg)
		return true
	})
}

// P4: redirect a register source at an architected register whose current
// value lives in an accumulator, so the instruction would read the stale
// register-file copy.
func mutStaleRead(c *Code, cfg Config) bool {
	states := inAccStates(c)
	return search(c, cfg, RuleStaleRead, len(c.Insts)*alpha.NumRegs, func(d *Code, site int) bool {
		i, r := site/alpha.NumRegs, alpha.Reg(site%alpha.NumRegs)
		if _, ok := states[i][r]; !ok {
			return false
		}
		inst := &d.Insts[i]
		if inst.Kind == ildp.KindCopyFromGPR {
			return false // reloads are the D3 rule's territory
		}
		switch {
		case inst.SrcA.Kind == ildp.SrcGPR && inst.SrcA.Reg != alpha.RegZero:
			inst.SrcA.Reg = r
		case inst.SrcB.Kind == ildp.SrcGPR && inst.SrcB.Reg != alpha.RegZero:
			inst.SrcB.Reg = r
		default:
			return false
		}
		return true
	})
}

// C1: make the set-VPC prologue claim the wrong fragment entry address.
func mutPrologue(c *Code, cfg Config) bool {
	return search(c, cfg, RulePrologue, 1, func(d *Code, _ int) bool {
		if len(d.Insts) == 0 || d.Insts[0].Kind != ildp.KindSetVPC {
			return false
		}
		d.Insts[0].VAddr += 4
		return true
	})
}

// C2: append a second unconditional transfer, making the original
// terminator unreachable body code.
func mutTerminator(c *Code, cfg Config) bool {
	return search(c, cfg, RuleTerminator, 1, func(d *Code, _ int) bool {
		insertInst(d, len(d.Insts), ildp.Inst{
			Kind: ildp.KindBranch, Acc: ildp.NoAcc,
			Dest: alpha.RegZero, ArchDest: alpha.RegZero,
			Frag: 0, Class: ildp.ClassChain,
		})
		fixSize(d, cfg)
		return true
	})
}

// C3: desynchronise the exit stubs from the chain mode — remove a
// push-dual-ras under SWPredRAS, or plant one under a mode with no RAS.
func mutChainMode(c *Code, cfg Config) bool {
	if cfg.Chain == translate.SWPredRAS {
		return search(c, cfg, RuleChainMode, len(c.Insts), func(d *Code, i int) bool {
			if d.Insts[i].Kind != ildp.KindPushRAS {
				return false
			}
			spliceInst(d, i)
			fixSize(d, cfg)
			return true
		})
	}
	return search(c, cfg, RuleChainMode, len(c.Insts), func(d *Code, i int) bool {
		if i == 0 {
			return false // never before the prologue
		}
		insertInst(d, i, ildp.Inst{
			Kind: ildp.KindPushRAS, Acc: ildp.NoAcc,
			Dest: alpha.RegZero, ArchDest: alpha.RegZero,
			Frag: ildp.NoFrag, VAddr: 0x123, Class: ildp.ClassChain,
		})
		fixSize(d, cfg)
		return true
	})
}

// C4: retarget the jump-target latch at a scratch register, so dispatch
// transfers run on a stale latch.
func mutJTarget(c *Code, cfg Config) bool {
	return search(c, cfg, RuleJTarget, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if inst.Dest != ildp.RegJTarget {
			return false
		}
		inst.Dest = mutGPR3
		fixSize(d, cfg)
		return true
	})
}

// C5: attach a fragment link to a translator exit, which must leave
// translated code unconditionally.
func mutFragLink(c *Code, cfg Config) bool {
	return search(c, cfg, RuleFragLink, len(c.Insts), func(d *Code, i int) bool {
		switch d.Insts[i].Kind {
		case ildp.KindCallTrans, ildp.KindCallTransCond:
		default:
			return false
		}
		if d.Insts[i].Frag != ildp.NoFrag {
			return false
		}
		d.Insts[i].Frag = mutFrag
		return true
	})
}

// SemanticMutation is a fragment corruption every structural rule
// accepts: the mutated fragment still satisfies all encoding, dataflow,
// precise-state, and chaining invariants, yet computes something other
// than its source superblock — exactly the class of translator bug only
// the symbolic equivalence prover (internal/semcheck) can catch. Apply
// is self-verifying against the structural rules: it commits the first
// candidate site whose corrupted fragment the verifier still fully
// accepts, and returns false when the fragment offers no such site.
type SemanticMutation struct {
	Name  string
	Apply func(c *Code, cfg Config) bool
}

// SemanticMutations returns the structurally-invisible corruptions.
func SemanticMutations() []SemanticMutation {
	return []SemanticMutation{
		{Name: "swap-alu-operands", Apply: mutSwapOperands},
		{Name: "off-by-one-literal", Apply: mutLiteral},
		{Name: "skew-mem-displacement", Apply: mutDisplacement},
		{Name: "wrong-strand-source", Apply: mutStrandSource},
	}
}

// semSearch is search's semantic twin: the committed site must leave the
// fragment fully acceptable to every structural rule.
func semSearch(c *Code, cfg Config, n int, mutate func(d *Code, site int) bool) bool {
	for site := 0; site < n; site++ {
		d := c.clone()
		if !mutate(d, site) {
			continue
		}
		if Check(d, cfg).OK() {
			*c = *d
			return true
		}
	}
	return false
}

// valueObservable reports whether a value produced at instruction i
// provably reaches a compared observation point: either the architected
// destination register is never written again (so the final register
// state carries it), or the written accumulator is copied to such a
// register before being overwritten. Conservative — it only admits
// sites where a semantic change is guaranteed visible at some exit.
func valueObservable(c *Code, i int) bool {
	inst := &c.Insts[i]
	if archDestLivesOut(c, i+1, inst.Dest) {
		return true
	}
	if !inst.WritesAcc {
		return false
	}
	a := inst.Acc
	for j := i + 1; j < len(c.Insts); j++ {
		nxt := &c.Insts[j]
		if readsAcc(nxt, a) {
			switch nxt.Kind {
			case ildp.KindLoad, ildp.KindStore:
				// The address (and any stored value) term is compared
				// directly at every exit.
				return true
			case ildp.KindCopyToGPR:
				if archDestLivesOut(c, j+1, nxt.Dest) {
					return true
				}
			default:
				// The consumer folds the value into its own result;
				// follow that result instead.
				if valueObservable(c, j) {
					return true
				}
			}
		}
		if overwritesAcc(nxt, a) {
			return false
		}
	}
	return false
}

// readsAcc reports whether the instruction reads accumulator a.
func readsAcc(inst *ildp.Inst, a ildp.AccID) bool {
	if inst.Acc != a {
		return false
	}
	switch inst.Kind {
	case ildp.KindCopyToGPR:
		return true
	case ildp.KindCMOV:
		return inst.SrcA.Kind != ildp.SrcGPR || inst.SrcB.Kind == ildp.SrcAcc
	}
	return inst.SrcA.Kind == ildp.SrcAcc || inst.SrcB.Kind == ildp.SrcAcc
}

// archDestLivesOut reports whether r is an architected register no
// instruction at or after index j writes.
func archDestLivesOut(c *Code, j int, r alpha.Reg) bool {
	if r == alpha.RegZero || int(r) >= alpha.NumRegs {
		return false
	}
	for ; j < len(c.Insts); j++ {
		if writesGPR(&c.Insts[j], r) {
			return false
		}
	}
	return true
}

func writesGPR(inst *ildp.Inst, r alpha.Reg) bool {
	switch inst.Kind {
	case ildp.KindALU, ildp.KindCMOV, ildp.KindLoad,
		ildp.KindCopyToGPR, ildp.KindSaveVRA:
		return inst.Dest == r
	}
	return false
}

func overwritesAcc(inst *ildp.Inst, a ildp.AccID) bool {
	if inst.WritesAcc && inst.Acc == a {
		return true
	}
	switch inst.Kind {
	case ildp.KindCopyFromGPR, ildp.KindLoadETA:
		return inst.Acc == a
	}
	return false
}

// sameSrc reports syntactically identical operand specifiers.
func sameSrc(a, b ildp.Src) bool {
	return a.Kind == b.Kind && a.Reg == b.Reg && a.Imm == b.Imm
}

// S1: swap the operands of a non-commutative core ALU instruction. The
// operand counts, accumulator dataflow, and encoding class are all
// unchanged, but a-b becomes b-a.
func mutSwapOperands(c *Code, cfg Config) bool {
	nonCommutative := map[alpha.Op]bool{
		alpha.OpSUBQ: true, alpha.OpSUBL: true,
		alpha.OpCMPLT: true, alpha.OpCMPLE: true,
		alpha.OpCMPULT: true, alpha.OpCMPULE: true,
		alpha.OpSLL: true, alpha.OpSRL: true, alpha.OpSRA: true,
		alpha.OpBIC: true, alpha.OpORNOT: true,
	}
	return semSearch(c, cfg, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if inst.Kind != ildp.KindALU || inst.Class != ildp.ClassCore ||
			!nonCommutative[inst.Op] || sameSrc(inst.SrcA, inst.SrcB) {
			return false
		}
		// One operand must be an immediate: two register-file or
		// accumulator operands can transiently hold equal values, which
		// would make the swap a semantic no-op.
		if inst.SrcA.Kind != ildp.SrcImm && inst.SrcB.Kind != ildp.SrcImm {
			return false
		}
		if !valueObservable(d, i) {
			return false
		}
		inst.SrcA, inst.SrcB = inst.SrcB, inst.SrcA
		return true
	})
}

// S2: nudge an ALU immediate by one — the classic off-by-one a decoder
// or constant pool could introduce with no structural trace.
func mutLiteral(c *Code, cfg Config) bool {
	return semSearch(c, cfg, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if inst.Kind != ildp.KindALU || inst.Class != ildp.ClassCore ||
			inst.SrcB.Kind != ildp.SrcImm {
			return false
		}
		if !valueObservable(d, i) {
			return false
		}
		inst.SrcB.Imm++
		return true
	})
}

// S3: skew a memory displacement by one quadword. Loads observe the
// wrong address term directly; stores write the right value to the
// wrong place. Always observable: the prover compares every memory
// access's address.
func mutDisplacement(c *Code, cfg Config) bool {
	return semSearch(c, cfg, len(c.Insts), func(d *Code, i int) bool {
		inst := &d.Insts[i]
		if inst.Class != ildp.ClassCore ||
			(inst.Kind != ildp.KindLoad && inst.Kind != ildp.KindStore) {
			return false
		}
		inst.Disp += 8
		return true
	})
}

// S4: repoint an accumulator-loading copy at the wrong architected
// register — the two-GPR-repair or strand-start copy now feeds the
// strand from a different live value. Register liveness and strand
// structure are untouched, so only term equivalence can object.
func mutStrandSource(c *Code, cfg Config) bool {
	return semSearch(c, cfg, len(c.Insts)*int(alpha.NumRegs), func(d *Code, site int) bool {
		i, r := site/int(alpha.NumRegs), alpha.Reg(site%int(alpha.NumRegs))
		inst := &d.Insts[i]
		if inst.Kind != ildp.KindCopyFromGPR || inst.SrcA.Kind != ildp.SrcGPR ||
			int(inst.SrcA.Reg) >= alpha.NumRegs {
			return false
		}
		if r == alpha.RegZero || r == inst.SrcA.Reg {
			return false
		}
		if !valueObservable(d, i) {
			return false
		}
		inst.SrcA.Reg = r
		return true
	})
}

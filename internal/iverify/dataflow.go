package iverify

import (
	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

// Accumulator-ownership markers for the dataflow walk.
const (
	ownerNone    = -1 // no definition yet (fragment-entry accumulator values are garbage)
	ownerForeign = -2 // written by a strand-less instruction (never emitted by the translator)
)

// dstate tracks one strand through the dataflow walk.
type dstate struct {
	seen      bool      // the strand has executed at least one instruction
	home      alpha.Reg // GPR holding a copy of the strand's current value
	homeValid bool
	homeIdx   int // instruction index that established the copy
}

// checkDataflow runs a linear abstract interpretation of the accumulator
// file over the fragment, proving the §3.3 strand discipline: every
// accumulator read sees a value produced by the reader's own strand
// (D1/D2), and every spill/reload pair moves the spilled strand's own,
// unclobbered value (D3). Inter-strand communication must go through
// GPRs; an accumulator read that crosses strands would be a
// steering-dependent value — correct only by accident of allocation.
//
// The walk needs the per-instruction strand annotations; fragments
// without them (none produced by this translator) are not checked.
func (k *checker) checkDataflow() {
	c := k.c
	if c.Strands == nil || len(c.Strands) != len(c.Insts) {
		return
	}
	numAcc := k.cfg.NumAcc
	accOwner := make([]int, numAcc)
	for i := range accOwner {
		accOwner[i] = ownerNone
	}
	states := map[int]*dstate{}
	get := func(s int) *dstate {
		st := states[s]
		if st == nil {
			st = &dstate{home: alpha.RegZero}
			states[s] = st
		}
		return st
	}
	var lastWrite [ildp.NumGPR]int // last instruction writing each GPR
	for i := range lastWrite {
		lastWrite[i] = -1
	}

	for i := range c.Insts {
		inst := &c.Insts[i]
		s := c.Strands[i]
		// Out-of-range and unbound accumulator operands are E3/E4
		// violations; the dataflow walk only reasons about operands that
		// actually address the file.
		inRange := inst.Acc != ildp.NoAcc && int(inst.Acc) < numAcc

		if inRange && (inst.NumAccSources() > 0 || inst.ImplicitAccRead()) {
			a := int(inst.Acc)
			switch owner := accOwner[a]; {
			case s < 0:
				k.rep.add(RuleStrandBleed, i,
					"strand-less %v reads A%d", inst.Kind, a)
			case owner == ownerNone:
				k.rep.add(RuleAccUndefined, i,
					"%v (strand %d) reads A%d before any definition", inst.Kind, s, a)
			case owner != s:
				k.rep.add(RuleStrandBleed, i,
					"%v (strand %d) reads A%d, which holds strand %d's value",
					inst.Kind, s, a, owner)
			}
		}

		// D3: a copy-from-GPR resuming an already-seen strand is a reload
		// after a premature termination; it must read back the value the
		// strand saved, from a register nothing has since overwritten.
		// (A copy-from-GPR opening a strand is a two-GPR repair, not a
		// reload.)
		if inst.Kind == ildp.KindCopyFromGPR && s >= 0 {
			if st := states[s]; st != nil && st.seen {
				switch src := inst.SrcA; {
				case !st.homeValid:
					k.rep.add(RuleSpillRestore, i,
						"reload of strand %d, but the strand has no saved copy", s)
				case src.Kind != ildp.SrcGPR || src.Reg != st.home:
					k.rep.add(RuleSpillRestore, i,
						"reload of strand %d reads %v; the strand's value was saved to R%d",
						s, src, st.home)
				case int(st.home) < ildp.NumGPR && lastWrite[st.home] > st.homeIdx:
					k.rep.add(RuleSpillRestore, i,
						"reload of strand %d from R%d, which #%d overwrote after the save",
						s, st.home, lastWrite[st.home])
				}
			}
		}

		if inst.WritesAcc && inRange {
			if s >= 0 {
				accOwner[inst.Acc] = s
				st := get(s)
				st.seen = true
				switch {
				case inst.Kind == ildp.KindCopyFromGPR && st.homeValid &&
					inst.SrcA.Kind == ildp.SrcGPR && inst.SrcA.Reg == st.home:
					// Reload: the saved copy still matches the accumulator,
					// so a second termination needs no second save.
				case inst.Dest != alpha.RegZero:
					// Modified form: the destination specifier is a
					// simultaneous save.
					st.home, st.homeValid, st.homeIdx = inst.Dest, true, i
				default:
					st.home, st.homeValid = alpha.RegZero, false
				}
			} else {
				accOwner[inst.Acc] = ownerForeign
			}
		}
		if inst.Kind == ildp.KindCopyToGPR && s >= 0 {
			st := get(s)
			st.seen = true
			st.home, st.homeValid, st.homeIdx = inst.Dest, true, i
		}
		if w := inst.GPRWrite(); w != alpha.RegZero && int(w) < ildp.NumGPR {
			lastWrite[w] = i
		}
	}
}

// Package iverify statically verifies translated I-ISA fragments against
// the structural invariants of Kim & Smith (CGO 2003). The translator is
// trusted to *establish* these invariants; this package proves — without
// executing the fragment — that a given translation actually obeys them,
// so every future translator change can be checked mechanically.
//
// Four groups of rules are checked, by four independent passes:
//
//   - Encoding legality (E1..E6, §2.2/§2.3): at most one GPR and one
//     accumulator source per instruction (conditional-move select
//     excepted), accumulator operands within the configured file, valid
//     16/32/64-bit size classes, and the per-form destination-specifier
//     discipline.
//   - Accumulator dataflow (D1..D3, §3.3): a linear-scan abstract
//     interpretation proving every accumulator read is dominated by a
//     definition of the same strand, that no value bleeds between
//     strands through an accumulator, and that spill/reload pairs
//     restore the spilled strand's own value.
//   - Precise-state completeness (P1..P4, §2.2): at every potentially
//     excepting instruction, side exit, and the fragment end, the
//     current value of every architected register the fragment has
//     defined is recoverable — present in the register file, or (Basic
//     form) mapped by the PEI recovery table to the accumulator that
//     holds it.
//   - Chaining well-formedness (C1..C5, §3.2/§3.4): the set-VPC
//     prologue, a terminating unconditional transfer, exit stubs that
//     match the configured chain mode, the jump-target latch before
//     dispatch jumps, and well-formed fragment links.
//
// Fragments produced by the code-straightening-only translator are not
// subject to the I-ISA invariants and are reported as skipped.
package iverify

import (
	"fmt"
	"strings"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/translate"
)

// Rule identifies one verifier rule.
type Rule uint8

const (
	RuleGPRSources Rule = iota + 1 // E1
	RuleAccSources                 // E2
	RuleAccRange                   // E3
	RuleAccBinding                 // E4
	RuleSizeClass                  // E5
	RuleFormDest                   // E6

	RuleAccUndefined // D1
	RuleStrandBleed  // D2
	RuleSpillRestore // D3

	RulePEITable     // P1
	RuleStateRecover // P2
	RuleStateLost    // P3
	RuleStaleRead    // P4

	RulePrologue   // C1
	RuleTerminator // C2
	RuleChainMode  // C3
	RuleJTarget    // C4
	RuleFragLink   // C5

	numRules
)

// ruleInfo carries the rule's short identifier, name, and the paper
// section it encodes (also rendered as a table in DESIGN.md).
var ruleInfo = [numRules]struct {
	id, name, paper string
}{
	RuleGPRSources:   {"E1", "gpr-sources", "§2.2"},
	RuleAccSources:   {"E2", "acc-sources", "§2.2"},
	RuleAccRange:     {"E3", "acc-range", "§3.3"},
	RuleAccBinding:   {"E4", "acc-binding", "§2.2"},
	RuleSizeClass:    {"E5", "size-class", "§2.3"},
	RuleFormDest:     {"E6", "form-dest", "§2.2/§2.3"},
	RuleAccUndefined: {"D1", "acc-undefined", "§3.3"},
	RuleStrandBleed:  {"D2", "strand-bleed", "§3.3"},
	RuleSpillRestore: {"D3", "spill-restore", "§3.3"},
	RulePEITable:     {"P1", "pei-table", "§2.2"},
	RuleStateRecover: {"P2", "state-recover", "§2.2"},
	RuleStateLost:    {"P3", "state-lost", "§2.2"},
	RuleStaleRead:    {"P4", "stale-read", "§2.2"},
	RulePrologue:     {"C1", "prologue", "§3.2"},
	RuleTerminator:   {"C2", "terminator", "§3.2"},
	RuleChainMode:    {"C3", "chain-mode", "§3.4"},
	RuleJTarget:      {"C4", "jtarget-latch", "§3.4"},
	RuleFragLink:     {"C5", "frag-link", "§3.2"},
}

// ID returns the rule's short identifier, e.g. "E1".
func (r Rule) ID() string {
	if r > 0 && r < numRules {
		return ruleInfo[r].id
	}
	return fmt.Sprintf("R%d", uint8(r))
}

// String returns the rule's name, e.g. "gpr-sources".
func (r Rule) String() string {
	if r > 0 && r < numRules {
		return ruleInfo[r].name
	}
	return fmt.Sprintf("rule(%d)", uint8(r))
}

// PaperRef returns the paper section the rule encodes.
func (r Rule) PaperRef() string {
	if r > 0 && r < numRules {
		return ruleInfo[r].paper
	}
	return "?"
}

// Rules lists every verifier rule.
func Rules() []Rule {
	rules := make([]Rule, 0, numRules-1)
	for r := Rule(1); r < numRules; r++ {
		rules = append(rules, r)
	}
	return rules
}

// Severity grades a violation.
type Severity uint8

const (
	SevError Severity = iota
	SevWarn
)

func (s Severity) String() string {
	if s == SevWarn {
		return "warn"
	}
	return "error"
}

// Violation is one structured diagnostic. Index is the offending
// instruction's position in the fragment, or -1 for fragment-level
// violations (table shape, missing terminator).
type Violation struct {
	Rule     Rule
	Index    int
	Severity Severity
	Detail   string
}

func (v *Violation) String() string {
	at := "fragment"
	if v.Index >= 0 {
		at = fmt.Sprintf("#%d", v.Index)
	}
	return fmt.Sprintf("[%s %s %s] %s: %s", v.Rule.ID(), v.Rule, v.Rule.PaperRef(), at, v.Detail)
}

// Report is the outcome of verifying one fragment.
type Report struct {
	VStart     uint64
	Insts      int
	Skipped    bool // straightened code carries no I-ISA invariants
	Violations []Violation
}

// OK reports whether no error-severity violation was found.
func (r *Report) OK() bool {
	for i := range r.Violations {
		if r.Violations[i].Severity == SevError {
			return false
		}
	}
	return true
}

// Rules returns the distinct rules violated, in rule order.
func (r *Report) Rules() []Rule {
	var seen [numRules]bool
	for i := range r.Violations {
		if rl := r.Violations[i].Rule; rl < numRules {
			seen[rl] = true
		}
	}
	var out []Rule
	for rl := Rule(1); rl < numRules; rl++ {
		if seen[rl] {
			out = append(out, rl)
		}
	}
	return out
}

// String formats the report, one line per violation.
func (r *Report) String() string {
	var b strings.Builder
	switch {
	case r.Skipped:
		fmt.Fprintf(&b, "fragment V %#x: skipped (straightened code)", r.VStart)
	case len(r.Violations) == 0:
		fmt.Fprintf(&b, "fragment V %#x: ok (%d instructions)", r.VStart, r.Insts)
	default:
		fmt.Fprintf(&b, "fragment V %#x: %d violation(s) in %d instructions",
			r.VStart, len(r.Violations), r.Insts)
		for i := range r.Violations {
			b.WriteString("\n  ")
			b.WriteString(r.Violations[i].String())
		}
	}
	return b.String()
}

func (r *Report) add(rule Rule, idx int, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Rule: rule, Index: idx, Severity: SevError,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Config parameterises verification with the translation configuration the
// fragment was produced under.
type Config struct {
	Form   ildp.Form
	NumAcc int // 0 means ildp.DefaultAccumulators
	Chain  translate.ChainMode

	// ResolveFrag, when non-nil, maps a fragment ID to the V-ISA start
	// address of the installed fragment, for checking patched links
	// against their recorded V-ISA targets. Unset, linked targets are
	// not checked.
	ResolveFrag func(id int32) (vstart uint64, ok bool)
}

// Code is the verifier's view of one translated fragment: the instruction
// stream plus the translation metadata the rules are checked against.
// Strands, ExitLive, and EndLive are optional; rules needing an absent
// input are skipped.
type Code struct {
	VStart uint64
	Insts  []ildp.Inst

	Strands    []int
	PEI        []uint64
	PEIRecover [][]translate.RegAcc
	ExitLive   [][]alpha.Reg
	EndLive    []alpha.Reg

	CodeBytes    int // 0 disables the encoded-size total check
	Straightened bool
}

// FromResult adapts a translation result for verification.
func FromResult(res *translate.Result) *Code {
	return &Code{
		VStart:       res.VStart,
		Insts:        res.Insts,
		Strands:      res.Strands,
		PEI:          res.PEI,
		PEIRecover:   res.PEIRecover,
		ExitLive:     res.ExitLive,
		EndLive:      res.EndLive,
		CodeBytes:    res.CodeBytes,
		Straightened: res.Straightened,
	}
}

// FromFragment adapts an installed translation-cache fragment for
// verification (fragment links may have been patched since translation;
// the rules accept both unlinked and linked exits).
func FromFragment(f *tcache.Fragment) *Code {
	return &Code{
		VStart:       f.VStart,
		Insts:        f.Insts,
		Strands:      f.Strands,
		PEI:          f.PEI,
		PEIRecover:   f.PEIRecover,
		ExitLive:     f.ExitLive,
		EndLive:      f.EndLive,
		CodeBytes:    f.CodeBytes,
		Straightened: f.Straightened,
	}
}

// Verify checks a translation result. It is the one-call form of
// FromResult + Check.
func Verify(res *translate.Result, cfg Config) *Report {
	return Check(FromResult(res), cfg)
}

// Check runs all verification passes over the fragment and returns the
// collected diagnostics.
func Check(c *Code, cfg Config) *Report {
	rep := &Report{VStart: c.VStart, Insts: len(c.Insts)}
	if c.Straightened {
		rep.Skipped = true
		return rep
	}
	if cfg.NumAcc <= 0 {
		cfg.NumAcc = ildp.DefaultAccumulators
	}
	k := &checker{c: c, cfg: cfg, rep: rep}
	k.checkEncoding()
	k.checkDataflow()
	k.checkPreciseState()
	k.checkChaining()
	return rep
}

// checker carries shared state across the verification passes.
type checker struct {
	c   *Code
	cfg Config
	rep *Report
}

// peiPoint mirrors the executor's PEI-table predicate: loads, stores, and
// (possibly patched) conditional branches translated from V-ISA
// instructions. Chain-class compare branches are not PEI points.
func peiPoint(inst *ildp.Inst) bool {
	if inst.Class != ildp.ClassCore {
		return false
	}
	switch inst.Kind {
	case ildp.KindLoad, ildp.KindStore, ildp.KindCallTransCond, ildp.KindCondBranch:
		return true
	}
	return false
}

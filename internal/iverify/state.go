package iverify

import (
	"sort"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/translate"
)

// checkPreciseState proves the fragment can always reconstruct precise
// architected state (§2.2). It re-derives, by an independent walk of the
// instruction stream, which architected registers' current values live
// only in an accumulator at each point, and checks that
//
//   - the PEI table covers exactly the potentially excepting points of
//     the stream, with matching V-ISA addresses and a recovery entry per
//     point (P1);
//   - each recovery entry agrees with the walk in both directions — a
//     recorded pair must name the accumulator that really holds the
//     register's current value, and every accumulator-only value must be
//     recorded, or the trap hardware materialises stale state (P2);
//   - no fragment-defined value is ever unrecoverable (neither in the
//     register file nor in any accumulator) at a PEI point or at the
//     fragment end (P3);
//   - no instruction reads an architected register from the register
//     file while its current value lives elsewhere (P4).
//
// In the Modified form every producer writes its destination GPR, so the
// walk's accumulator-only set stays empty and P2..P4 are vacuous — which
// is itself the §2.3 claim being verified.
func (k *checker) checkPreciseState() {
	c := k.c

	// P1: table shapes.
	peiCount := 0
	for i := range c.Insts {
		if peiPoint(&c.Insts[i]) {
			peiCount++
		}
	}
	if peiCount != len(c.PEI) {
		k.rep.add(RulePEITable, -1,
			"instruction stream has %d PEI points, table lists %d", peiCount, len(c.PEI))
	}
	if len(c.PEIRecover) != len(c.PEI) {
		k.rep.add(RulePEITable, -1,
			"recovery table has %d entries for %d PEI addresses",
			len(c.PEIRecover), len(c.PEI))
	}
	if c.ExitLive != nil && len(c.ExitLive) != len(c.PEI) {
		k.rep.add(RulePEITable, -1,
			"exit-live table has %d entries for %d PEI addresses",
			len(c.ExitLive), len(c.PEI))
	}
	for n, pairs := range c.PEIRecover {
		for _, p := range pairs {
			if int(p.Acc) >= k.cfg.NumAcc || p.Reg == alpha.RegZero ||
				int(p.Reg) >= alpha.NumRegs {
				k.rep.add(RulePEITable, -1,
					"recovery entry %d names invalid pair R%d <- A%d", n, p.Reg, p.Acc)
			}
		}
	}

	// The walk. inAcc maps an architected register to the accumulator
	// holding its only current copy; lost holds registers whose current
	// value is nowhere (the translation failed to save it before the
	// accumulator was reused).
	inAcc := map[alpha.Reg]ildp.AccID{}
	lost := map[alpha.Reg]bool{}
	reported := map[alpha.Reg]bool{} // one P3 diagnostic per register

	reportLost := func(idx int, live []alpha.Reg, where string) {
		var regs []alpha.Reg
		for r := range lost {
			if !reported[r] && (live == nil || containsReg(live, r)) {
				regs = append(regs, r)
			}
		}
		sort.Slice(regs, func(a, b int) bool { return regs[a] < regs[b] })
		for _, r := range regs {
			reported[r] = true
			k.rep.add(RuleStateLost, idx,
				"R%d's current value is in no accumulator and not in the register file at %s",
				r, where)
		}
	}

	peiIdx := 0
	for i := range c.Insts {
		inst := &c.Insts[i]

		// P4: register-file reads of stale registers, checked against the
		// pre-instruction state.
		var buf [2]alpha.Reg
		for _, r := range inst.GPRSources(buf[:0]) {
			if int(r) >= alpha.NumRegs {
				continue // VM-private scratch registers carry no architected state
			}
			if a, ok := inAcc[r]; ok {
				k.rep.add(RuleStaleRead, i,
					"%v reads R%d from the register file; its current value is in A%d",
					inst.Kind, r, a)
			} else if lost[r] {
				k.rep.add(RuleStaleRead, i,
					"%v reads R%d, whose current value was lost", inst.Kind, r)
			}
		}
		if inst.Kind == ildp.KindCMOV && inst.Dest != alpha.RegZero &&
			int(inst.Dest) < alpha.NumRegs {
			// A not-taken conditional move republishes the destination's
			// old value, so that value must be current in the register file.
			if a, ok := inAcc[inst.Dest]; ok {
				k.rep.add(RuleStaleRead, i,
					"conditional move republishes R%d; its current value is in A%d",
					inst.Dest, a)
			} else if lost[inst.Dest] {
				k.rep.add(RuleStaleRead, i,
					"conditional move republishes R%d, whose current value was lost",
					inst.Dest)
			}
		}

		if peiPoint(inst) {
			// P1: the table entry must record this instruction's V-address.
			if peiIdx < len(c.PEI) && c.PEI[peiIdx] != inst.VPC {
				k.rep.add(RulePEITable, i,
					"PEI entry %d records V %#x, instruction is from V %#x",
					peiIdx, c.PEI[peiIdx], inst.VPC)
			}
			// P2: the recovery entry must equal the walked accumulator-only
			// set. Snapshots describe the state before the instruction's
			// own effects, matching the trap semantics.
			if peiIdx < len(c.PEIRecover) {
				recorded := map[alpha.Reg]bool{}
				for _, p := range c.PEIRecover[peiIdx] {
					recorded[p.Reg] = true
					if a, ok := inAcc[p.Reg]; !ok {
						k.rep.add(RuleStateRecover, i,
							"recovery entry %d restores R%d from A%d, but the register file is current",
							peiIdx, p.Reg, p.Acc)
					} else if a != p.Acc {
						k.rep.add(RuleStateRecover, i,
							"recovery entry %d restores R%d from A%d; the value is in A%d",
							peiIdx, p.Reg, p.Acc, a)
					}
				}
				var missing []alpha.Reg
				for r := range inAcc {
					if !recorded[r] {
						missing = append(missing, r)
					}
				}
				sort.Slice(missing, func(a, b int) bool { return missing[a] < missing[b] })
				for _, r := range missing {
					k.rep.add(RuleStateRecover, i,
						"R%d is held only by A%d but missing from recovery entry %d",
						r, inAcc[r], peiIdx)
				}
			}
			// P3 at the PEI point.
			var live []alpha.Reg
			if c.ExitLive != nil && peiIdx < len(c.ExitLive) {
				live = c.ExitLive[peiIdx]
			}
			reportLost(i, live, "a PEI point")
			peiIdx++
		}

		applyStateEffects(inst, inAcc, lost)
	}

	// P3 at the fragment's final exit.
	reportLost(len(c.Insts)-1, c.EndLive, "the fragment end")
}

// applyStateEffects applies one instruction's effects to the
// accumulator-only architected-state mapping, mirroring the trap
// hardware's view: an accumulator write evicts whatever register the
// accumulator was holding (losing the value unless re-established), a
// Basic-form producer with no destination GPR parks its architected
// result in the accumulator, and any direct GPR write makes that
// register current in the register file.
func applyStateEffects(inst *ildp.Inst, inAcc map[alpha.Reg]ildp.AccID, lost map[alpha.Reg]bool) {
	if inst.WritesAcc && inst.Acc != ildp.NoAcc {
		for r, a := range inAcc {
			if a == inst.Acc {
				delete(inAcc, r)
				lost[r] = true
			}
		}
		if inst.ArchDest != alpha.RegZero && int(inst.ArchDest) < alpha.NumRegs &&
			inst.Dest == alpha.RegZero {
			inAcc[inst.ArchDest] = inst.Acc
			delete(lost, inst.ArchDest)
		}
	}
	if inst.Dest != alpha.RegZero && int(inst.Dest) < alpha.NumRegs {
		delete(inAcc, inst.Dest)
		delete(lost, inst.Dest)
	}
}

// recoverTable rebuilds the PEI recovery table for an instruction stream
// by the same walk the translator uses (exported to the mutation engine,
// which needs a consistent table after structural edits).
func recoverTable(insts []ildp.Inst) [][]translate.RegAcc {
	inAcc := map[alpha.Reg]ildp.AccID{}
	lost := map[alpha.Reg]bool{}
	var table [][]translate.RegAcc
	for i := range insts {
		inst := &insts[i]
		if peiPoint(inst) {
			var pairs []translate.RegAcc
			var regs []alpha.Reg
			for r := range inAcc {
				regs = append(regs, r)
			}
			sort.Slice(regs, func(a, b int) bool { return regs[a] < regs[b] })
			for _, r := range regs {
				pairs = append(pairs, translate.RegAcc{Reg: r, Acc: inAcc[r]})
			}
			table = append(table, pairs)
		}
		applyStateEffects(inst, inAcc, lost)
	}
	return table
}

func containsReg(regs []alpha.Reg, r alpha.Reg) bool {
	for _, x := range regs {
		if x == r {
			return true
		}
	}
	return false
}

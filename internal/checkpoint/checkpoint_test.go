package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"testing"

	"github.com/ildp/accdbt/internal/mem"
)

// sampleState builds a representative state: registers, console bytes,
// several counters, and a sparse memory image including an all-zero
// page (mapped-ness is architected in strict mode, so zero pages are
// kept).
func sampleState() *State {
	st := &State{
		PC:         0x1_2000,
		Halted:     false,
		ExitStatus: 0,
		InstCount:  123_456,
		LockFlag:   true,
		LockAddr:   0x8_0040,
		MemStrict:  false,
		Console:    []byte("hello\n"),
		Counters: map[string]uint64{
			"stats.InterpInsts":   98_765,
			"stats.TransVInsts":   24_691,
			"stats.RecoveryCost":  150,
			"stats.ClassCounts.0": 7,
		},
		Pages: map[uint64][mem.PageSize]byte{},
	}
	for i := range st.Reg {
		st.Reg[i] = uint64(i) * 0x0101_0101
	}
	var pg [mem.PageSize]byte
	for i := range pg {
		pg[i] = byte(i * 7)
	}
	st.Pages[0x12] = pg
	st.Pages[0x80] = [mem.PageSize]byte{} // all-zero but mapped
	st.Pages[0x13] = pg
	return st
}

func TestRoundTrip(t *testing.T) {
	st := sampleState()
	enc := Encode(st)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.PC != st.PC || got.Reg != st.Reg || got.Halted != st.Halted ||
		got.ExitStatus != st.ExitStatus || got.InstCount != st.InstCount ||
		got.LockFlag != st.LockFlag || got.LockAddr != st.LockAddr ||
		got.MemStrict != st.MemStrict {
		t.Errorf("scalar state did not round-trip: got %+v", got)
	}
	if !bytes.Equal(got.Console, st.Console) {
		t.Errorf("console: got %q, want %q", got.Console, st.Console)
	}
	if len(got.Counters) != len(st.Counters) {
		t.Fatalf("counters: got %d, want %d", len(got.Counters), len(st.Counters))
	}
	for name, v := range st.Counters {
		if got.Counters[name] != v {
			t.Errorf("counter %q: got %d, want %d", name, got.Counters[name], v)
		}
	}
	if len(got.Pages) != len(st.Pages) {
		t.Fatalf("pages: got %d, want %d", len(got.Pages), len(st.Pages))
	}
	for pn, pg := range st.Pages {
		if got.Pages[pn] != pg {
			t.Errorf("page %#x did not round-trip", pn)
		}
	}
}

// TestDeterministic encodes the same state twice (and a map-identical
// copy) and requires identical bytes — map iteration order must never
// leak into the stream.
func TestDeterministic(t *testing.T) {
	st := sampleState()
	a := Encode(st)
	for i := 0; i < 8; i++ {
		if !bytes.Equal(a, Encode(st)) {
			t.Fatal("repeated Encode of the same state differs")
		}
	}
	// A decoded copy re-encodes identically (canonical form).
	dec, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, Encode(dec)) {
		t.Fatal("Encode(Decode(b)) != b")
	}
}

// TestZeroCountersOmitted: zero-valued counters must not change the
// encoding, so accounting fields that happen to be zero cost nothing
// and states compare equal bytewise.
func TestZeroCountersOmitted(t *testing.T) {
	a := sampleState()
	b := sampleState()
	b.Counters["stats.Quarantines"] = 0
	if !bytes.Equal(Encode(a), Encode(b)) {
		t.Fatal("zero-valued counter changed the encoding")
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := Encode(sampleState())
	for n := 0; n < len(enc); n++ {
		st, err := Decode(enc[:n])
		if st != nil || err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", n, len(enc))
		}
		var ce *Error
		if !errors.As(err, &ce) {
			t.Fatalf("Decode of %d bytes returned untyped error %T: %v", n, err, err)
		}
	}
}

// TestDecodeBitFlips flips one bit in each of a spread of positions;
// every flip must fail cleanly (the CRC covers the whole payload, and
// flips in the trailer corrupt the CRC itself).
func TestDecodeBitFlips(t *testing.T) {
	enc := Encode(sampleState())
	step := len(enc)/97 + 1
	for pos := 0; pos < len(enc); pos += step {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 1 << bit
			st, err := Decode(mut)
			if st != nil || err == nil {
				t.Fatalf("flip at byte %d bit %d decoded successfully", pos, bit)
			}
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("flip at byte %d bit %d: untyped error %v", pos, bit, err)
			}
			if pos >= 8 && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadMagic) {
				t.Fatalf("flip at byte %d bit %d: want checksum failure, got %v", pos, bit, err)
			}
		}
	}
}

// TestDecodeVersionSkew rewrites the version field (fixing up the CRC)
// and requires a clean ErrVersion.
func TestDecodeVersionSkew(t *testing.T) {
	enc := Encode(sampleState())
	mut := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(mut[8:], Version+1)
	payload := mut[:len(mut)-8]
	binary.LittleEndian.PutUint64(mut[len(mut)-8:], crc64Checksum(payload))
	_, err := Decode(mut)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	enc := Encode(sampleState())
	mut := append([]byte(nil), enc...)
	mut[0] = 'X'
	if _, err := Decode(mut); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	enc := Encode(sampleState())
	mut := append(append([]byte(nil), enc...), 0)
	if _, err := Decode(mut); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestDecodeNonCanonical hand-builds streams violating the canonical
// rules and requires ErrCanonical for each.
func TestDecodeNonCanonical(t *testing.T) {
	unsorted := sampleState()
	enc := Encode(unsorted)
	// Swap the two sorted counter names in place: find the first two
	// counter entries and reverse their order, then fix the CRC.
	// Simpler: build a minimal stream by encoding a single-counter state
	// and splicing a duplicate entry in front.
	one := &State{Counters: map[string]uint64{"b": 1}}
	base := Encode(one)
	payload := base[:len(base)-8]
	// Locate the counter section: it is 4 (count) + 1 + 1 + 8 bytes
	// before the page count (4) at the end of the payload.
	ctrOff := len(payload) - 4 - (1 + 1 + 8) - 4
	var spliced []byte
	spliced = append(spliced, payload[:ctrOff]...)
	spliced = binary.LittleEndian.AppendUint32(spliced, 2)
	entry := func(name string, v uint64) {
		spliced = append(spliced, byte(len(name)))
		spliced = append(spliced, name...)
		spliced = binary.LittleEndian.AppendUint64(spliced, v)
	}
	entry("b", 1)
	entry("a", 1) // out of order
	spliced = binary.LittleEndian.AppendUint32(spliced, 0)
	spliced = binary.LittleEndian.AppendUint64(spliced, crc64Checksum(spliced))
	if _, err := Decode(spliced); !errors.Is(err, ErrCanonical) {
		t.Fatalf("unsorted counters: got %v, want ErrCanonical", err)
	}
	_ = enc
}

// crc64Checksum recomputes the trailer for hand-mutated streams.
func crc64Checksum(payload []byte) uint64 {
	return crc64.Checksum(payload, crc64.MakeTable(crc64.ECMA))
}

// Package checkpoint serializes the complete architected state of a run
// — CPU registers and PC, halt/exit/console state, the sparse memory
// image, and the VM's accounting counters — into a versioned,
// deterministic binary form.
//
// The format deliberately excludes every piece of concealed VM state:
// the translation cache, pristine shadow copies, chain links, trace
// counters, the dual-address RAS, and the accumulator file. The paper's
// co-designed VM keeps precise state only in V-ISA registers and memory
// (§2.2, §3.1); everything else is disposable and is rebuilt by
// re-translation after a restore, exactly as it was built the first
// time. DESIGN.md §11 argues why this preserves the concealed-state
// contract.
//
// Encoding is canonical: counters sort by name with zero values
// omitted, pages sort by page number, and all integers are fixed-width
// little-endian, so identical states always produce identical bytes. A
// CRC-64 trailer covers the whole payload. Decode enforces the
// canonical form, which makes Encode(Decode(b)) == b for every accepted
// b — the property the fuzz target pins down. Decoding never mutates
// any destination: it either returns a complete *State or a typed
// *Error, never a half-restored result.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"sort"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/mem"
)

// Version is the current checkpoint format version.
const Version = 1

// magic identifies a checkpoint stream.
var magic = [8]byte{'A', 'C', 'C', 'D', 'B', 'T', 'C', 'P'}

// State is the complete architected state of a run. It is plain data:
// building one never touches live VM structures, and applying one is
// the caller's (the VM's) responsibility.
type State struct {
	PC         uint64
	Reg        [alpha.NumRegs]uint64
	Halted     bool
	ExitStatus uint64
	InstCount  uint64

	// LockFlag / LockAddr are the LDx_L/STx_C lock state.
	LockFlag bool
	LockAddr uint64

	// MemStrict preserves the memory's fault-on-unmapped mode.
	MemStrict bool

	// Console is the PAL putchar output accumulated so far.
	Console []byte

	// Counters carries named accounting values (the VM's Stats,
	// flattened), so overhead and recovery bookkeeping reconcile across
	// kill/resume segments. Zero-valued entries are dropped by Encode.
	Counters map[string]uint64

	// Pages is the sparse memory image: every mapped page, including
	// all-zero ones — in strict mode, mapped-ness itself is architected
	// (an unmapped page faults where a zero page does not).
	Pages map[uint64][mem.PageSize]byte
}

// Decode failure causes, matched with errors.Is against the returned
// *Error.
var (
	ErrBadMagic  = errors.New("bad magic")
	ErrVersion   = errors.New("unsupported version")
	ErrTruncated = errors.New("truncated")
	ErrChecksum  = errors.New("checksum mismatch")
	ErrCanonical = errors.New("non-canonical encoding")
	ErrTrailing  = errors.New("trailing bytes after checksum")
)

// Error is the typed decode failure: the byte offset where decoding
// stopped, the failure class (one of the Err sentinels), and detail.
type Error struct {
	Off    int
	Cause  error
	Detail string
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("checkpoint: %v at offset %d", e.Cause, e.Off)
	}
	return fmt.Sprintf("checkpoint: %v at offset %d: %s", e.Cause, e.Off, e.Detail)
}

// Unwrap exposes the failure class for errors.Is.
func (e *Error) Unwrap() error { return e.Cause }

var crcTable = crc64.MakeTable(crc64.ECMA)

// flag bits in the encoded flags byte.
const (
	flagHalted    = 1 << 0
	flagLock      = 1 << 1
	flagMemStrict = 1 << 2
	flagsKnown    = flagHalted | flagLock | flagMemStrict
)

// maxCounterName bounds counter-name length (the length field is a
// byte; zero-length names are rejected as non-canonical).
const maxCounterName = 255

// Encode serializes the state. The output is deterministic: encoding
// the same state twice yields identical bytes.
func Encode(st *State) []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }

	b = append(b, magic[:]...)
	u32(Version)
	u64(st.PC)
	for _, r := range st.Reg {
		u64(r)
	}
	var flags byte
	if st.Halted {
		flags |= flagHalted
	}
	if st.LockFlag {
		flags |= flagLock
	}
	if st.MemStrict {
		flags |= flagMemStrict
	}
	b = append(b, flags)
	u64(st.ExitStatus)
	u64(st.InstCount)
	u64(st.LockAddr)

	u32(uint32(len(st.Console)))
	b = append(b, st.Console...)

	names := make([]string, 0, len(st.Counters))
	for name, v := range st.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	u32(uint32(len(names)))
	for _, name := range names {
		b = append(b, byte(len(name)))
		b = append(b, name...)
		u64(st.Counters[name])
	}

	pns := make([]uint64, 0, len(st.Pages))
	for pn := range st.Pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	u32(uint32(len(pns)))
	for _, pn := range pns {
		u64(pn)
		page := st.Pages[pn]
		b = append(b, page[:]...)
	}

	u64(crc64.Checksum(b, crcTable))
	return b
}

// decoder is a bounds-checked little-endian reader over the stream.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) fail(cause error, format string, args ...any) *Error {
	return &Error{Off: d.off, Cause: cause, Detail: fmt.Sprintf(format, args...)}
}

func (d *decoder) take(n int, what string) ([]byte, *Error) {
	if n < 0 || len(d.b)-d.off < n {
		return nil, d.fail(ErrTruncated, "%s wants %d bytes, %d remain", what, n, len(d.b)-d.off)
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *decoder) u8(what string) (byte, *Error) {
	b, err := d.take(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u32(what string) (uint32, *Error) {
	b, err := d.take(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64(what string) (uint64, *Error) {
	b, err := d.take(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Decode parses a checkpoint stream. Any malformation — truncation, a
// flipped bit (caught by the checksum), a version skew, non-canonical
// ordering, or trailing garbage — returns a typed *Error and a nil
// State; a non-nil State is always complete and internally consistent.
func Decode(b []byte) (*State, error) {
	d := &decoder{b: b}

	m, derr := d.take(len(magic), "magic")
	if derr != nil {
		return nil, derr
	}
	if [8]byte(m) != magic {
		d.off = 0
		return nil, d.fail(ErrBadMagic, "got %q", m)
	}
	// The checksum is verified before any structural parsing so that a
	// flipped bit anywhere reports ErrChecksum, not a misleading
	// structural error.
	if len(b) < len(magic)+4+8 {
		return nil, d.fail(ErrTruncated, "stream shorter than header+checksum")
	}
	payload, trailer := b[:len(b)-8], b[len(b)-8:]
	if got, want := binary.LittleEndian.Uint64(trailer), crc64.Checksum(payload, crcTable); got != want {
		d.off = len(payload)
		return nil, d.fail(ErrChecksum, "got %#x, want %#x", got, want)
	}
	d.b = payload

	ver, derr := d.u32("version")
	if derr != nil {
		return nil, derr
	}
	if ver != Version {
		return nil, d.fail(ErrVersion, "got %d, support %d", ver, Version)
	}

	st := &State{
		Counters: map[string]uint64{},
		Pages:    map[uint64][mem.PageSize]byte{},
	}
	if st.PC, derr = d.u64("pc"); derr != nil {
		return nil, derr
	}
	for i := range st.Reg {
		if st.Reg[i], derr = d.u64("reg"); derr != nil {
			return nil, derr
		}
	}
	flags, derr := d.u8("flags")
	if derr != nil {
		return nil, derr
	}
	if flags&^byte(flagsKnown) != 0 {
		return nil, d.fail(ErrCanonical, "unknown flag bits %#x", flags&^byte(flagsKnown))
	}
	st.Halted = flags&flagHalted != 0
	st.LockFlag = flags&flagLock != 0
	st.MemStrict = flags&flagMemStrict != 0
	if st.ExitStatus, derr = d.u64("exit status"); derr != nil {
		return nil, derr
	}
	if st.InstCount, derr = d.u64("inst count"); derr != nil {
		return nil, derr
	}
	if st.LockAddr, derr = d.u64("lock addr"); derr != nil {
		return nil, derr
	}

	conLen, derr := d.u32("console length")
	if derr != nil {
		return nil, derr
	}
	con, derr := d.take(int(conLen), "console")
	if derr != nil {
		return nil, derr
	}
	if conLen > 0 {
		st.Console = append([]byte(nil), con...)
	}

	nCounters, derr := d.u32("counter count")
	if derr != nil {
		return nil, derr
	}
	// Each counter entry is at least 1+1+8 bytes; reject counts the
	// remaining stream cannot possibly hold before allocating anything.
	if int64(nCounters)*10 > int64(len(d.b)-d.off) {
		return nil, d.fail(ErrTruncated, "%d counters cannot fit in %d bytes", nCounters, len(d.b)-d.off)
	}
	prevName := ""
	for i := uint32(0); i < nCounters; i++ {
		nameLen, derr := d.u8("counter name length")
		if derr != nil {
			return nil, derr
		}
		if nameLen == 0 {
			return nil, d.fail(ErrCanonical, "empty counter name")
		}
		nameB, derr := d.take(int(nameLen), "counter name")
		if derr != nil {
			return nil, derr
		}
		name := string(nameB)
		if i > 0 && name <= prevName {
			return nil, d.fail(ErrCanonical, "counter %q not sorted after %q", name, prevName)
		}
		prevName = name
		v, derr := d.u64("counter value")
		if derr != nil {
			return nil, derr
		}
		if v == 0 {
			return nil, d.fail(ErrCanonical, "zero-valued counter %q", name)
		}
		st.Counters[name] = v
	}

	nPages, derr := d.u32("page count")
	if derr != nil {
		return nil, derr
	}
	if int64(nPages)*(8+mem.PageSize) > int64(len(d.b)-d.off) {
		return nil, d.fail(ErrTruncated, "%d pages cannot fit in %d bytes", nPages, len(d.b)-d.off)
	}
	var prevPN uint64
	for i := uint32(0); i < nPages; i++ {
		pn, derr := d.u64("page number")
		if derr != nil {
			return nil, derr
		}
		if i > 0 && pn <= prevPN {
			return nil, d.fail(ErrCanonical, "page %#x not sorted after %#x", pn, prevPN)
		}
		prevPN = pn
		data, derr := d.take(mem.PageSize, "page data")
		if derr != nil {
			return nil, derr
		}
		st.Pages[pn] = [mem.PageSize]byte(data)
	}

	if d.off != len(d.b) {
		return nil, d.fail(ErrTrailing, "%d bytes", len(d.b)-d.off)
	}
	return st, nil
}

package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ildp/accdbt/internal/mem"
)

// FuzzCheckpointDecode pins the decoder's safety contract: arbitrary
// bytes — truncated, bit-flipped, version-skewed, or hostile — must
// either decode into a State whose re-encoding reproduces the input
// exactly (the canonical-form identity), or fail with the package's
// typed *Error. Never a panic, never an untyped error, never a partial
// result.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ACCDBTCP"))
	f.Add(Encode(&State{}))
	st := &State{
		PC:      0x2000,
		Halted:  true,
		Console: []byte("ok"),
		Counters: map[string]uint64{
			"stats.InterpInsts": 42,
			"stats.TransVInsts": 7,
		},
		Pages: map[uint64][mem.PageSize]byte{3: {1, 2, 3}},
	}
	st.Reg[5] = 0xdead_beef
	valid := Encode(st)
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // lost trailer byte
	f.Add(append(valid, 0))     // trailing garbage
	mut := append([]byte(nil), valid...)
	mut[9]++ // version skew (CRC now stale too)
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if got != nil {
				t.Fatal("Decode returned both a state and an error")
			}
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		if got == nil {
			t.Fatal("Decode returned neither state nor error")
		}
		if !bytes.Equal(Encode(got), data) {
			t.Fatalf("accepted stream is not canonical: Encode(Decode(b)) != b (%d bytes)", len(data))
		}
	})
}

package uarch

import (
	"github.com/ildp/accdbt/internal/cachesim"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/trace"
)

// ILDP is the accumulator-steered distributed microarchitecture timing
// model: a shared pipelined front-end feeds 4/6/8 processing elements,
// each an in-order issue FIFO with a local accumulator, a local copy of
// the GPRs, and (optionally) a replicated L1 data cache. Instructions are
// steered by accumulator number; inter-strand values communicated through
// GPRs pay the global wire latency when produced in a different PE.
// It implements trace.Sink.
type ILDP struct {
	cfg  Config
	hier *cachesim.Hierarchy
	fe   *frontEnd

	// Per-GPR readiness plus the PE that produced the value (for the
	// communication latency).
	gprReady [numGPRTrack]int64
	gprPE    [numGPRTrack]int8

	// Per-accumulator strand state: the PE its current strand occupies,
	// the completion cycle of the last value, and the issue horizon of the
	// strand occupying the logical accumulator (a new strand cannot rebind
	// the accumulator while the previous one is still issuing — the
	// structural hazard that makes more logical accumulators valuable).
	accPE    [numAccTrack]int8
	accReady [numAccTrack]int64
	accBusy  [numAccTrack]int64

	// Per-PE state.
	lastIssue []int64   // last issue cycle (1 issue per PE per cycle)
	fifo      [][]int64 // ring of issue cycles for FIFO occupancy
	fifoHead  []uint64
	steerRR   int
	peInsts   []uint64 // distribution statistics

	// Retirement (shared ROB).
	retire     []int64
	head       uint64
	lastRetire int64
	retBusy    bookRing

	storeDone map[uint64]int64

	// prof, when non-nil, receives every record's PE, issue, and retire
	// cycle for cycle attribution (nil = profiling disabled).
	prof *prof.Profiler

	res Result
}

// SetProfiler attaches an execution profiler fed with per-record retire
// timing. A nil profiler disables the feed.
func (m *ILDP) SetProfiler(p *prof.Profiler) { m.prof = p }

// NewILDP builds an ILDP model with the given configuration.
func NewILDP(cfg Config) *ILDP {
	if cfg.PEs <= 0 {
		cfg.PEs = 8
	}
	if cfg.FIFODepth <= 0 {
		cfg.FIFODepth = 16
	}
	hier := cachesim.NewHierarchy(cfg.CacheOpts)
	m := &ILDP{
		cfg:       cfg,
		hier:      hier,
		fe:        newFrontEnd(&cfg, hier.I),
		lastIssue: make([]int64, cfg.PEs),
		fifoHead:  make([]uint64, cfg.PEs),
		peInsts:   make([]uint64, cfg.PEs),
		retire:    make([]int64, cfg.ROB),
		retBusy:   newBookRing(),
		storeDone: map[uint64]int64{},
	}
	for i := 0; i < cfg.PEs; i++ {
		m.fifo = append(m.fifo, make([]int64, cfg.FIFODepth))
	}
	for i := range m.accPE {
		m.accPE[i] = -1
	}
	for i := range m.gprPE {
		m.gprPE[i] = -1
	}
	return m
}

// steer picks the processing element for an instruction: accumulator-based
// steering (§1.1) with dependence-aware placement of new strands — a
// strand whose first input is a GPR value follows that value's producer
// onto its PE, so inter-strand chains avoid the global wire latency; this
// is what lets the hierarchical ISA tolerate communication delay (§5).
// Strands with no live GPR input round-robin across PEs.
func (m *ILDP) steer(rec *trace.Rec) int {
	acc := rec.DstAcc
	if acc == trace.NoAcc {
		acc = rec.SrcAcc
	}
	if acc != trace.NoAcc {
		readsAcc := rec.SrcAcc != trace.NoAcc
		if !readsAcc || m.accPE[acc] < 0 {
			m.accPE[acc] = int8(m.newStrandPE(rec))
		}
		return int(m.accPE[acc])
	}
	// Accumulator-free instructions (GPR-only stores, saves, branches on
	// GPRs) follow their producer when it is still hot, else round-robin.
	return m.newStrandPE(rec)
}

// newStrandPE places a strand start: on the PE of a still-hot GPR source
// value when there is one, else round-robin.
func (m *ILDP) newStrandPE(rec *trace.Rec) int {
	for _, r := range rec.SrcReg {
		if r == trace.NoReg {
			continue
		}
		idx := gprIdx(r)
		if m.gprPE[idx] >= 0 && m.gprReady[idx]+m.cfg.CommLat > m.lastIssue[m.gprPE[idx]] {
			return int(m.gprPE[idx])
		}
	}
	pe := m.steerRR % m.cfg.PEs
	m.steerRR++
	return pe
}

// Append implements trace.Sink.
func (m *ILDP) Append(rec trace.Rec) {
	fc := m.fe.fetch(&rec)
	pe := m.steer(&rec)
	m.peInsts[pe]++

	// Rename/dispatch one stage after fetch; ROB and FIFO occupancy.
	disp := fc + 1
	if m.head >= uint64(m.cfg.ROB) {
		if oldest := m.retire[m.head%uint64(len(m.retire))]; oldest+1 > disp {
			disp = oldest + 1
		}
	}
	// The target FIFO must have a free slot: it drains one per issue.
	fifoRing := m.fifo[pe]
	if m.fifoHead[pe] >= uint64(len(fifoRing)) {
		if old := fifoRing[m.fifoHead[pe]%uint64(len(fifoRing))]; old+1 > disp {
			disp = old + 1
		}
	}
	// A strand start rebinds its logical accumulator: it must wait until
	// the previous strand holding the accumulator has drained its FIFO.
	if rec.DstAcc != trace.NoAcc && rec.SrcAcc == trace.NoAcc {
		if m.accBusy[rec.DstAcc] > disp {
			disp = m.accBusy[rec.DstAcc]
		}
	}

	// Operand readiness: accumulator values stay inside the PE;
	// GPR values pay the global communication latency when produced
	// elsewhere.
	ready := disp
	if rec.SrcAcc != trace.NoAcc {
		if t := m.accReady[rec.SrcAcc]; t > ready {
			ready = t
		}
	}
	for _, r := range rec.SrcReg {
		if r == trace.NoReg {
			continue
		}
		t := m.gprReady[gprIdx(r)]
		if m.gprPE[gprIdx(r)] >= 0 && int(m.gprPE[gprIdx(r)]) != pe {
			t += m.cfg.CommLat
		}
		if t > ready {
			ready = t
		}
	}

	// In-order issue from the PE's FIFO head: one per cycle, head-blocking.
	issue := ready
	if issue <= m.lastIssue[pe] {
		issue = m.lastIssue[pe] + 1
	}
	m.lastIssue[pe] = issue
	fifoRing[m.fifoHead[pe]%uint64(len(fifoRing))] = issue
	m.fifoHead[pe]++

	var done int64
	switch rec.Class {
	case trace.ClassNop:
		done = issue
	case trace.ClassLoad:
		d := m.hier.D[0]
		if len(m.hier.D) > 1 {
			d = m.hier.D[pe%len(m.hier.D)]
		}
		lat := d.Access(rec.MemAddr, false)
		m.res.DCacheStall += lat - 2
		done = issue + lat
		if sd, ok := m.storeDone[rec.MemAddr>>3]; ok && sd > done {
			done = sd
		}
	case trace.ClassStore:
		d := m.hier.D[0]
		if len(m.hier.D) > 1 {
			d = m.hier.D[pe%len(m.hier.D)]
		}
		d.Access(rec.MemAddr, true)
		done = issue + 1
		m.storeDone[rec.MemAddr>>3] = done
	case trace.ClassMul:
		done = issue + m.cfg.MulLat
	default:
		done = issue + 1
	}

	if rec.DstAcc != trace.NoAcc {
		m.accReady[rec.DstAcc] = done
		m.accPE[rec.DstAcc] = int8(pe)
	}
	// The logical accumulator's rename binding is held until this
	// instruction has entered its FIFO; a later strand reusing the name
	// stalls at dispatch until then.
	acc := rec.DstAcc
	if acc == trace.NoAcc {
		acc = rec.SrcAcc
	}
	if acc != trace.NoAcc {
		hold := disp + 1
		if issue-disp > 4 {
			// A deeply-stalled strand also delays rename reuse: the
			// steering table entry cannot be reassigned while the strand
			// head is blocking its FIFO.
			hold = issue - 3
		}
		if hold > m.accBusy[acc] {
			m.accBusy[acc] = hold
		}
	}
	if rec.DstReg != trace.NoReg {
		if rec.DstOperational {
			m.gprReady[gprIdx(rec.DstReg)] = done
			m.gprPE[gprIdx(rec.DstReg)] = int8(pe)
		}
		// Architected-state-only writes (Modified form) go to the shadow
		// file off the critical path and never feed the pipeline.
	}

	// In-order retirement.
	ret := done
	if ret <= m.lastRetire {
		ret = m.lastRetire
	}
	ret = m.retBusy.reserve(ret, uint16(m.cfg.Width))
	m.lastRetire = ret
	m.retire[m.head%uint64(len(m.retire))] = ret
	m.head++

	m.prof.Retire(pe, issue, ret, profAcc(&rec))

	m.res.Insts++
	m.res.VInsts += uint64(rec.VCredit)
	if rec.IsBranch() {
		if isEndOfRun(&rec) {
			m.res.Episodes++
			m.fe.drain(ret + 1)
			m.resetPipeline(ret)
			return
		}
		m.fe.resolve(&rec, fc, done)
	}
}

func (m *ILDP) resetPipeline(at int64) {
	for i := range m.gprReady {
		if m.gprReady[i] > at {
			m.gprReady[i] = at
		}
	}
	for i := range m.accReady {
		if m.accReady[i] > at {
			m.accReady[i] = at
		}
		if m.accBusy[i] > at {
			m.accBusy[i] = at
		}
		m.accPE[i] = -1
	}
	for i := 0; i < m.cfg.PEs; i++ {
		if m.lastIssue[i] > at {
			m.lastIssue[i] = at
		}
	}
	for k := range m.storeDone {
		delete(m.storeDone, k)
	}
}

// PEDistribution returns the fraction of instructions steered to each PE.
func (m *ILDP) PEDistribution() []float64 {
	total := uint64(0)
	for _, n := range m.peInsts {
		total += n
	}
	out := make([]float64, len(m.peInsts))
	if total == 0 {
		return out
	}
	for i, n := range m.peInsts {
		out[i] = float64(n) / float64(total)
	}
	return out
}

// Finish returns the accumulated timing result.
func (m *ILDP) Finish() Result {
	r := m.res
	r.Cycles = m.lastRetire + 1
	r.CondMispredicts = m.fe.condMiss
	r.TargetMispredicts = m.fe.targetMiss
	r.Misfetches = m.fe.misfetches
	r.Branches = m.fe.branches
	r.ICacheMisses = m.hier.I.Misses
	for _, d := range m.hier.D {
		r.DCacheMisses += d.Misses
	}
	r.L2Misses = m.hier.L2.Misses
	r.ICacheStall = m.fe.icacheStall
	r.RedirectLoss = m.fe.redirectLoss
	return r
}

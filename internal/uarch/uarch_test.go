package uarch

import (
	"testing"

	"github.com/ildp/accdbt/internal/trace"
)

func aluRec(pc uint64, src, dst uint8) trace.Rec {
	r := trace.Rec{
		PC: pc, Size: 4, Class: trace.ClassALU,
		SrcReg: [2]uint8{trace.NoReg, trace.NoReg},
		DstReg: dst, SrcAcc: trace.NoAcc, DstAcc: trace.NoAcc,
		DstOperational: dst != trace.NoReg,
		VCredit:        1,
	}
	if src != trace.NoReg {
		r.SrcReg[0] = src
	}
	return r
}

func feed(s trace.Sink, recs []trace.Rec) {
	for _, r := range recs {
		s.Append(r)
	}
}

func TestOoOIndependentALUReachesWidth(t *testing.T) {
	m := NewOoO(DefaultOoO())
	var recs []trace.Rec
	// 80000 independent instructions over a small code footprint, enough
	// to amortise the cold I-cache misses.
	for i := 0; i < 80000; i++ {
		recs = append(recs, aluRec(0x1000+uint64(i%512)*4, trace.NoReg, uint8(i%8)))
	}
	feed(m, recs)
	res := m.Finish()
	ipc := res.IPC()
	if ipc < 3.0 || ipc > 4.01 {
		t.Errorf("independent ALU IPC = %.2f, want close to width 4", ipc)
	}
}

func TestOoOSerialChainIPC1(t *testing.T) {
	m := NewOoO(DefaultOoO())
	var recs []trace.Rec
	for i := 0; i < 4000; i++ {
		recs = append(recs, aluRec(0x1000+uint64(i%512)*4, 1, 1)) // r1 <- f(r1)
	}
	feed(m, recs)
	res := m.Finish()
	ipc := res.IPC()
	if ipc > 1.05 {
		t.Errorf("serial chain IPC = %.2f, want <= 1", ipc)
	}
	if ipc < 0.8 {
		t.Errorf("serial chain IPC = %.2f, suspiciously low", ipc)
	}
}

func TestOoOMulLatency(t *testing.T) {
	mkTrace := func(class trace.Class) []trace.Rec {
		var recs []trace.Rec
		for i := 0; i < 2000; i++ {
			r := aluRec(0x1000+uint64(i%512)*4, 1, 1)
			r.Class = class
			recs = append(recs, r)
		}
		return recs
	}
	alu := NewOoO(DefaultOoO())
	feed(alu, mkTrace(trace.ClassALU))
	mul := NewOoO(DefaultOoO())
	feed(mul, mkTrace(trace.ClassMul))
	ra, rm := alu.Finish(), mul.Finish()
	if rm.Cycles < ra.Cycles*4 {
		t.Errorf("dependent multiplies (%d cycles) should be much slower than ALU (%d)",
			rm.Cycles, ra.Cycles)
	}
}

func TestOoOMispredictPenalty(t *testing.T) {
	// Alternating-direction branch with a random-looking pattern the
	// predictor cannot fully learn vs an always-taken branch.
	mk := func(pattern func(int) bool) Result {
		m := NewOoO(DefaultOoO())
		pcs := []uint64{0x1000, 0x2000}
		for i := 0; i < 20000; i++ {
			r := aluRec(pcs[i%2], trace.NoReg, uint8(i%4))
			r.Class = trace.ClassBranch
			r.Taken = pattern(i)
			if r.Taken {
				r.Target = r.PC + 64
			}
			m.Append(r)
		}
		return m.Finish()
	}
	lfsr := uint32(0xACE1)
	rand := func(int) bool {
		bit := (lfsr ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1
		lfsr = (lfsr >> 1) | (bit << 15)
		return bit == 1
	}
	easy := mk(func(int) bool { return true })
	hard := mk(rand)
	if hard.CondMispredicts < easy.CondMispredicts*5 {
		t.Errorf("random branches mispredicted %d, always-taken %d",
			hard.CondMispredicts, easy.CondMispredicts)
	}
	if hard.Cycles <= easy.Cycles {
		t.Errorf("mispredictions did not cost cycles: hard=%d easy=%d",
			hard.Cycles, easy.Cycles)
	}
}

func TestOoOLoadMissCost(t *testing.T) {
	mk := func(stride uint64) Result {
		m := NewOoO(DefaultOoO())
		for i := 0; i < 4000; i++ {
			r := aluRec(0x1000+uint64(i%512)*4, 1, 1)
			r.Class = trace.ClassLoad
			r.MemAddr = uint64(i) * stride
			r.MemWidth = 8
			m.Append(r)
		}
		return m.Finish()
	}
	hits := mk(8)     // sequential quads: mostly L1 hits
	misses := mk(128) // new L2 line every access
	if misses.Cycles < hits.Cycles*2 {
		t.Errorf("miss-heavy loads (%d cycles) should cost far more than hits (%d)",
			misses.Cycles, hits.Cycles)
	}
	if misses.DCacheMisses <= hits.DCacheMisses {
		t.Error("stride-128 should miss more than stride-8")
	}
}

func accRec(pc uint64, srcAcc, dstAcc uint8, srcReg, dstReg uint8, operational bool) trace.Rec {
	r := trace.Rec{
		PC: pc, Size: 2, Class: trace.ClassALU,
		SrcReg: [2]uint8{trace.NoReg, trace.NoReg},
		DstReg: dstReg, SrcAcc: srcAcc, DstAcc: dstAcc,
		DstOperational: operational && dstReg != trace.NoReg,
		VCredit:        1,
	}
	if srcReg != trace.NoReg {
		r.SrcReg[0] = srcReg
	}
	return r
}

func TestILDPParallelStrands(t *testing.T) {
	// K independent strands interleaved; with enough PEs they run in
	// parallel, with one PE they serialise.
	mk := func(pes, strands int) Result {
		cfg := DefaultILDP()
		cfg.PEs = pes
		cfg.CacheOpts.Replicas = pes
		m := NewILDP(cfg)
		pc := uint64(0x1000)
		for i := 0; i < 9000; i++ {
			acc := uint8(i % strands)
			// Mid-strand instruction: reads and writes its accumulator.
			r := accRec(pc, acc, acc, trace.NoReg, trace.NoReg, false)
			pc += 2
			if pc > 0x2000 {
				pc = 0x1000
			}
			m.Append(r)
		}
		return m.Finish()
	}
	one := mk(1, 4)
	four := mk(4, 4)
	if four.Cycles*2 >= one.Cycles {
		t.Errorf("4 PEs (%d cycles) should be much faster than 1 PE (%d) on 4 strands",
			four.Cycles, one.Cycles)
	}
}

func TestILDPCommunicationLatency(t *testing.T) {
	// Two long-lived strands pinned to different PEs by their accumulator
	// chains, exchanging values through GPRs every step: each cross-read
	// pays the global wire latency. (Strand starts follow their producers
	// under dependence-aware steering, so the coupling must be between
	// acc-pinned mid-strand instructions.)
	mk := func(comm int64) Result {
		cfg := DefaultILDP()
		cfg.PEs = 4
		cfg.CommLat = comm
		cfg.CacheOpts.Replicas = 4
		m := NewILDP(cfg)
		m.Append(accRec(0x1000, trace.NoAcc, 0, trace.NoReg, 1, true)) // strand X start
		m.Append(accRec(0x1002, trace.NoAcc, 1, trace.NoReg, 2, true)) // strand Y start
		for i := 0; i < 6000; i++ {
			pc := 0x1010 + uint64(i%512)*4
			m.Append(accRec(pc, 0, 0, 2, 1, true))   // X: reads Y's GPR
			m.Append(accRec(pc+2, 1, 1, 1, 2, true)) // Y: reads X's GPR
		}
		return m.Finish()
	}
	fast := mk(0)
	slow := mk(2)
	if slow.Cycles <= fast.Cycles {
		t.Errorf("2-cycle wire latency (%d cycles) should cost over 0-cycle (%d)",
			slow.Cycles, fast.Cycles)
	}
	// Roughly 3x (1 -> 3 cycles per hop).
	if float64(slow.Cycles) < 1.8*float64(fast.Cycles) {
		t.Errorf("comm latency underweighted: %d vs %d", slow.Cycles, fast.Cycles)
	}
}

func TestILDPAccChainStaysLocal(t *testing.T) {
	// A single long strand pays no communication latency regardless of
	// CommLat: accumulator values stay inside the PE.
	mk := func(comm int64) Result {
		cfg := DefaultILDP()
		cfg.PEs = 4
		cfg.CommLat = comm
		cfg.CacheOpts.Replicas = 4
		m := NewILDP(cfg)
		for i := 0; i < 5000; i++ {
			m.Append(accRec(0x1000+uint64(i%512)*2, 0, 0, trace.NoReg, trace.NoReg, false))
		}
		return m.Finish()
	}
	r0, r2 := mk(0), mk(2)
	diff := r2.Cycles - r0.Cycles
	if diff < 0 {
		diff = -diff
	}
	if diff > r0.Cycles/50 {
		t.Errorf("intra-strand chain should not pay wire latency: %d vs %d cycles",
			r0.Cycles, r2.Cycles)
	}
}

func TestILDPMorePEsHelp(t *testing.T) {
	// Eight independent latency-1 strands demand eight issue ports. With a
	// front end wide enough not to be the limiter, four PEs halve the
	// sustainable issue rate (the isolated-PE-count component of Fig. 9;
	// at the paper's 4-wide front end the effect appears only in bursts).
	mk := func(pes int) Result {
		cfg := DefaultILDP()
		cfg.Width = 8
		cfg.PEs = pes
		cfg.CacheOpts.Replicas = pes
		m := NewILDP(cfg)
		for i := 0; i < 12000; i++ {
			acc := uint8(i % 8)
			m.Append(accRec(0x1000+uint64(i%512)*2, acc, acc, trace.NoReg, trace.NoReg, false))
		}
		return m.Finish()
	}
	r4, r8 := mk(4), mk(8)
	if float64(r8.Cycles) > 0.75*float64(r4.Cycles) {
		t.Errorf("8 PEs (%d cycles) should clearly beat 4 PEs (%d) on 8 independent strands",
			r8.Cycles, r4.Cycles)
	}
}

func TestEndOfRunDrains(t *testing.T) {
	m := NewOoO(DefaultOoO())
	for i := 0; i < 100; i++ {
		m.Append(aluRec(0x1000+uint64(i)*4, 1, 1))
	}
	eor := trace.Rec{
		PC: 0x2000, Size: 4, Class: trace.ClassJump,
		SrcReg: [2]uint8{trace.NoReg, trace.NoReg},
		DstReg: trace.NoReg, SrcAcc: trace.NoAcc, DstAcc: trace.NoAcc,
		Taken: true, Target: 0,
	}
	m.Append(eor)
	for i := 0; i < 100; i++ {
		m.Append(aluRec(0x3000+uint64(i)*4, 2, 2))
	}
	res := m.Finish()
	if res.Episodes != 1 {
		t.Errorf("episodes = %d, want 1", res.Episodes)
	}
	// The second episode's first instruction fetches after the drain.
	if res.Cycles < 200 {
		t.Errorf("cycles = %d: two serial chains plus drain should exceed 200", res.Cycles)
	}
}

func TestPEDistributionBalanced(t *testing.T) {
	cfg := DefaultILDP()
	cfg.PEs = 4
	m := NewILDP(cfg)
	for i := 0; i < 8000; i++ {
		acc := uint8(i % 8)
		// Alternate strand starts and continuations.
		var r trace.Rec
		if i%2 == 0 {
			r = accRec(0x1000+uint64(i%512)*2, trace.NoAcc, acc, 1, trace.NoReg, false)
		} else {
			r = accRec(0x1000+uint64(i%512)*2, acc, acc, trace.NoReg, trace.NoReg, false)
		}
		m.Append(r)
	}
	dist := m.PEDistribution()
	for pe, frac := range dist {
		if frac < 0.1 || frac > 0.5 {
			t.Errorf("PE %d got %.2f of instructions; steering unbalanced %v", pe, frac, dist)
		}
	}
}

func TestStallAccounting(t *testing.T) {
	m := NewOoO(DefaultOoO())
	// Miss-heavy dependent loads: D-cache stall must dominate.
	for i := 0; i < 2000; i++ {
		r := aluRec(0x1000+uint64(i%512)*4, 1, 1)
		r.Class = trace.ClassLoad
		r.MemAddr = uint64(i) * 256
		r.MemWidth = 8
		m.Append(r)
	}
	res := m.Finish()
	if res.DCacheStall <= 0 {
		t.Error("no D-cache stall recorded for miss-heavy loads")
	}
	if res.ICacheStall <= 0 {
		t.Error("cold I-cache lines should have stalled fetch")
	}
	// Stall cycles must be a plausible share of total cycles.
	if res.DCacheStall > res.Cycles*2 {
		t.Errorf("D-stall %d exceeds plausibility vs %d cycles", res.DCacheStall, res.Cycles)
	}

	// Mispredict-heavy run: redirect losses appear.
	m2 := NewOoO(DefaultOoO())
	lfsr := uint32(0xBEEF)
	for i := 0; i < 5000; i++ {
		bit := (lfsr ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1
		lfsr = (lfsr >> 1) | (bit << 15)
		r := aluRec(0x1000, trace.NoReg, 1)
		r.Class = trace.ClassBranch
		r.Taken = bit == 1
		if r.Taken {
			r.Target = 0x1040
		}
		m2.Append(r)
	}
	res2 := m2.Finish()
	if res2.RedirectLoss <= 0 {
		t.Error("no redirect loss recorded for random branches")
	}
}

package uarch

// bookRing books per-cycle resource usage (function units, retire slots,
// per-PE issue ports). Slots are tagged with the cycle they describe, so
// reuse after wrap-around never sees stale counts.
type bookRing struct {
	cycle []int64
	count []uint16
}

const bookRingLen = 1 << 15

func newBookRing() bookRing {
	return bookRing{cycle: make([]int64, bookRingLen), count: make([]uint16, bookRingLen)}
}

// reserve returns the earliest cycle at or after want with spare capacity
// and books one unit of it.
func (b *bookRing) reserve(want int64, limit uint16) int64 {
	for {
		i := uint64(want) % bookRingLen
		if b.cycle[i] != want {
			b.cycle[i] = want
			b.count[i] = 0
		}
		if b.count[i] < limit {
			b.count[i]++
			return want
		}
		want++
	}
}

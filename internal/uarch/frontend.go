package uarch

import (
	"github.com/ildp/accdbt/internal/bpred"
	"github.com/ildp/accdbt/internal/cachesim"
	"github.com/ildp/accdbt/internal/trace"
)

const fetchLineBytes = 128 // I-cache line (Table 1)

// frontEnd models instruction fetch: up to Width instructions per cycle
// from one I-cache line, at most three sequential basic blocks per cycle,
// taken branches end the fetch group, 3-cycle redirects on mispredicts
// (execute-time) and misfetches (decode-time), and I-cache miss stalls.
type frontEnd struct {
	cfg *Config

	gshare *bpred.GShare
	btb    *bpred.BTB
	ras    *bpred.RAS
	icache *cachesim.Cache

	cycle   int64
	slots   int
	blocks  int
	line    uint64
	started bool

	breakPending bool
	nextAt       int64

	condMiss   uint64
	targetMiss uint64
	misfetches uint64
	branches   uint64
	clock      uint64

	icacheStall  int64
	redirectLoss int64
}

func newFrontEnd(cfg *Config, icache *cachesim.Cache) *frontEnd {
	return &frontEnd{
		cfg:    cfg,
		gshare: bpred.DefaultGShare(),
		btb:    bpred.DefaultBTB(),
		ras:    bpred.DefaultRAS(),
		icache: icache,
	}
}

// fetch returns the fetch cycle for rec.
func (f *frontEnd) fetch(rec *trace.Rec) int64 {
	newGroup := false
	switch {
	case !f.started:
		f.started = true
		newGroup = true
	case f.breakPending:
		if f.nextAt > f.cycle {
			f.cycle = f.nextAt
		} else {
			f.cycle++
		}
		f.breakPending = false
		f.nextAt = 0
		newGroup = true
	case f.slots >= f.cfg.Width:
		f.cycle++
		newGroup = true
	case rec.PC&^uint64(fetchLineBytes-1) != f.line:
		// Sequential fetch crossed an I-cache line: next cycle.
		f.cycle++
		newGroup = true
	}
	if newGroup {
		f.slots = 0
		f.blocks = 0
		f.line = rec.PC &^ uint64(fetchLineBytes-1)
		// I-cache access at group start; hits are pipelined (zero extra),
		// misses stall fetch.
		stall := f.icache.Access(f.line, false)
		f.cycle += stall
		f.icacheStall += stall
	}
	fc := f.cycle
	f.slots++
	return fc
}

// redirect schedules the next fetch group at the given cycle.
func (f *frontEnd) redirect(at int64) {
	f.breakPending = true
	if at > f.nextAt {
		f.nextAt = at
	}
}

// drain ends the current episode: the next fetch group starts after the
// pipeline has emptied.
func (f *frontEnd) drain(at int64) { f.redirect(at) }

// resolve applies branch prediction to a control-transfer record fetched
// at fc and executed (resolved) at done, scheduling any redirect.
func (f *frontEnd) resolve(rec *trace.Rec, fc, done int64) {
	f.branches++
	f.clock++
	pc := rec.PC

	endGroupTaken := func() {
		// Correctly-predicted taken branch: the target starts a new fetch
		// group next cycle.
		f.redirect(fc + 1)
	}
	mispredict := func(cond bool) {
		if cond {
			f.condMiss++
		} else {
			f.targetMiss++
		}
		f.redirectLoss += (done - fc) + f.cfg.RedirectLat
		f.redirect(done + f.cfg.RedirectLat)
	}
	misfetch := func() {
		f.misfetches++
		f.redirectLoss += f.cfg.RedirectLat
		f.redirect(fc + f.cfg.RedirectLat)
	}

	switch rec.Class {
	case trace.ClassBranch:
		correct := f.gshare.Update(pc, rec.Taken)
		if !correct {
			mispredict(true)
			return
		}
		if rec.Taken {
			tgt, ok := f.btb.Predict(pc)
			f.btb.Update(pc, rec.Target, f.clock)
			if !ok || tgt != rec.Target {
				misfetch()
				return
			}
			endGroupTaken()
			return
		}
		// Correct not-taken: another sequential basic block.
		f.blocks++
		if f.blocks >= 3 {
			f.redirect(fc + 1)
		}

	case trace.ClassJump, trace.ClassCall:
		if rec.Class == trace.ClassCall && f.cfg.UseHWRAS {
			f.ras.Push(pc + uint64(rec.Size))
		}
		tgt, ok := f.btb.Predict(pc)
		f.btb.Update(pc, rec.Target, f.clock)
		if !ok || tgt != rec.Target {
			if rec.Indirect {
				// The target register is only known at execute time.
				mispredict(false)
			} else {
				misfetch()
			}
			return
		}
		endGroupTaken()

	case trace.ClassRet:
		switch {
		case f.cfg.DualRASTrace:
			// The co-designed dual-address RAS is the fetch predictor; the
			// VM recorded whether it supplied the right target.
			if rec.PredHit {
				endGroupTaken()
			} else {
				mispredict(false)
			}
		case f.cfg.UseHWRAS:
			tgt, ok := f.ras.Pop()
			if ok && tgt == rec.Target && rec.Taken {
				endGroupTaken()
			} else {
				mispredict(false)
			}
		default:
			// No RAS: returns go through the BTB and usually miss.
			tgt, ok := f.btb.Predict(pc)
			f.btb.Update(pc, rec.Target, f.clock)
			if ok && tgt == rec.Target && rec.Taken {
				endGroupTaken()
			} else {
				mispredict(false)
			}
		}

	case trace.ClassInd:
		tgt, ok := f.btb.Predict(pc)
		f.btb.Update(pc, rec.Target, f.clock)
		if !ok || tgt != rec.Target {
			mispredict(false)
			return
		}
		endGroupTaken()
	}
}

package uarch

import (
	"testing"

	"github.com/ildp/accdbt/internal/cachesim"
	"github.com/ildp/accdbt/internal/trace"
)

func newFE(cfg Config) *frontEnd {
	hier := cachesim.NewHierarchy(cfg.CacheOpts)
	return newFrontEnd(&cfg, hier.I)
}

func brRec(pc uint64, class trace.Class, taken bool, target uint64) trace.Rec {
	return trace.Rec{
		PC: pc, Size: 4, Class: class,
		SrcReg: [2]uint8{trace.NoReg, trace.NoReg},
		DstReg: trace.NoReg, SrcAcc: trace.NoAcc, DstAcc: trace.NoAcc,
		Taken: taken, Target: target,
	}
}

func TestFetchGroupsWidthLimited(t *testing.T) {
	fe := newFE(DefaultOoO())
	// Warm the I-cache line first.
	fe.fetch(&trace.Rec{PC: 0x1000, Size: 4})
	base := fe.cycle
	cycles := map[int64]int{}
	for i := 1; i < 12; i++ {
		fc := fe.fetch(&trace.Rec{PC: 0x1000 + uint64(i)*4, Size: 4})
		cycles[fc-base]++
	}
	// Four per cycle after the first (which shared cycle 0 with 3 more).
	for c, n := range cycles {
		if n > 4 {
			t.Errorf("cycle %d fetched %d instructions", c, n)
		}
	}
}

func TestLineCrossingBreaksGroup(t *testing.T) {
	fe := newFE(DefaultOoO())
	fe.fetch(&trace.Rec{PC: 0x1078, Size: 4}) // near end of a 128B line
	fc1 := fe.fetch(&trace.Rec{PC: 0x107C, Size: 4})
	fc2 := fe.fetch(&trace.Rec{PC: 0x1080, Size: 4}) // next line
	if fc2 <= fc1 {
		t.Errorf("line crossing did not break the fetch group: %d -> %d", fc1, fc2)
	}
}

func TestCondMispredictRedirectsAfterExecute(t *testing.T) {
	fe := newFE(DefaultOoO())
	rec := brRec(0x1000, trace.ClassBranch, true, 0x2000)
	fc := fe.fetch(&rec)
	done := fc + 10
	fe.resolve(&rec, fc, done) // cold predictor: not-taken predicted, actual taken
	if fe.condMiss != 1 {
		t.Fatalf("condMiss = %d", fe.condMiss)
	}
	nrec := brRec(0x2000, trace.ClassBranch, false, 0)
	next := fe.fetch(&nrec)
	if next < done+fe.cfg.RedirectLat {
		t.Errorf("next fetch %d before redirect %d", next, done+fe.cfg.RedirectLat)
	}
}

func TestMisfetchRedirectsFromFetch(t *testing.T) {
	fe := newFE(DefaultOoO())
	// Train the direction but not the target... a taken branch with a cold
	// BTB is a misfetch. First warm gshare to predict taken.
	for i := 0; i < 8; i++ {
		rec := brRec(0x1000, trace.ClassBranch, true, 0x2000)
		fc := fe.fetch(&rec)
		fe.resolve(&rec, fc, fc+5)
		filler := brRec(0x2000, trace.ClassALU, false, 0)
		fe.fetch(&filler) // consume redirect
	}
	missBefore := fe.misfetches
	// A different PC, trained-taken history, cold BTB entry.
	rec := brRec(0x3000, trace.ClassBranch, true, 0x4000)
	fc := fe.fetch(&rec)
	fe.resolve(&rec, fc, fc+5)
	if fe.misfetches <= missBefore && fe.condMiss == 0 {
		t.Error("cold-BTB taken branch neither misfetched nor mispredicted")
	}
}

func TestIndirectCallMispredictsNotMisfetches(t *testing.T) {
	fe := newFE(DefaultOoO())
	rec := brRec(0x1000, trace.ClassCall, true, 0x5000)
	rec.Indirect = true
	fc := fe.fetch(&rec)
	fe.resolve(&rec, fc, fc+7)
	if fe.targetMiss != 1 || fe.misfetches != 0 {
		t.Errorf("indirect call: targetMiss=%d misfetch=%d; want execute-time mispredict",
			fe.targetMiss, fe.misfetches)
	}
	// Direct call with cold BTB is only a misfetch.
	fe2 := newFE(DefaultOoO())
	rec2 := brRec(0x1000, trace.ClassCall, true, 0x5000)
	fc2 := fe2.fetch(&rec2)
	fe2.resolve(&rec2, fc2, fc2+7)
	if fe2.misfetches != 1 || fe2.targetMiss != 0 {
		t.Errorf("direct call: misfetch=%d targetMiss=%d", fe2.misfetches, fe2.targetMiss)
	}
}

func TestHWRASPredictsReturns(t *testing.T) {
	cfg := DefaultOoO()
	cfg.UseHWRAS = true
	fe := newFE(cfg)
	// Call pushes pc+4; matching return predicts perfectly.
	call := brRec(0x1000, trace.ClassCall, true, 0x5000)
	fc := fe.fetch(&call)
	fe.resolve(&call, fc, fc+1) // misfetch (cold BTB) but pushes RAS
	ret := brRec(0x5010, trace.ClassRet, true, 0x1004)
	fc = fe.fetch(&ret)
	before := fe.targetMiss
	fe.resolve(&ret, fc, fc+1)
	if fe.targetMiss != before {
		t.Error("RAS-predicted return counted as mispredict")
	}
	// A return to somewhere else mispredicts.
	call2 := brRec(0x1000, trace.ClassCall, true, 0x5000)
	fc = fe.fetch(&call2)
	fe.resolve(&call2, fc, fc+1)
	wrong := brRec(0x5010, trace.ClassRet, true, 0x9999000)
	fc = fe.fetch(&wrong)
	fe.resolve(&wrong, fc, fc+1)
	if fe.targetMiss != before+1 {
		t.Error("wrong-target return not counted")
	}
}

func TestDualRASTraceUsesPredHit(t *testing.T) {
	cfg := DefaultILDP()
	fe := newFE(cfg)
	hit := brRec(0x1000, trace.ClassRet, true, 0x2000)
	hit.PredHit = true
	fc := fe.fetch(&hit)
	fe.resolve(&hit, fc, fc+1)
	if fe.targetMiss != 0 {
		t.Error("dual-RAS hit counted as mispredict")
	}
	miss := brRec(0x1010, trace.ClassRet, false, 0)
	fc = fe.fetch(&miss)
	fe.resolve(&miss, fc, fc+1)
	if fe.targetMiss != 1 {
		t.Error("dual-RAS miss not counted")
	}
}

func TestThreeBlockFetchLimit(t *testing.T) {
	fe := newFE(DefaultOoO())
	cfg := fe.cfg
	_ = cfg
	// Warm gshare for three not-taken branches at distinct PCs.
	pcs := []uint64{0x1000, 0x1008, 0x1010, 0x1018}
	for w := 0; w < 10; w++ {
		for _, pc := range pcs {
			rec := brRec(pc, trace.ClassBranch, false, 0)
			fc := fe.fetch(&rec)
			fe.resolve(&rec, fc, fc+1)
		}
		// Reset the group between warm-up rounds.
		fe.redirect(fe.cycle + 1)
	}
	// Now fetch four correctly-predicted not-taken branches in a row: the
	// fourth must start a new cycle (3 sequential basic blocks max).
	fe.redirect(fe.cycle + 2)
	var fcs []int64
	for _, pc := range pcs {
		rec := brRec(pc, trace.ClassBranch, false, 0)
		fc := fe.fetch(&rec)
		fe.resolve(&rec, fc, fc+1)
		fcs = append(fcs, fc)
	}
	if fcs[3] == fcs[2] {
		t.Errorf("fourth sequential block fetched in the same cycle: %v", fcs)
	}
}

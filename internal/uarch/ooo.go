package uarch

import (
	"github.com/ildp/accdbt/internal/cachesim"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/trace"
)

// OoO is the idealised out-of-order superscalar timing model ("original"
// and "code-straightening-only" machines). It implements trace.Sink.
type OoO struct {
	cfg  Config
	hier *cachesim.Hierarchy
	fe   *frontEnd

	regReady [regSpace]int64 // completion cycle of each register's value

	// retire ring: retireCycle of the last ROB entries, for window
	// occupancy and in-order retirement.
	retire     []int64
	head       uint64 // total instructions retired so far
	lastRetire int64

	// FU contention and retire bandwidth: cycle-tagged booking rings.
	fuBusy  bookRing
	retBusy bookRing

	// store-to-load dependences at 8-byte granularity.
	storeDone map[uint64]int64

	// prof, when non-nil, receives every record's issue and retire cycle
	// (the superscalar has no PEs; everything reports element 0).
	prof *prof.Profiler

	res Result
}

// SetProfiler attaches an execution profiler fed with per-record retire
// timing. A nil profiler disables the feed.
func (m *OoO) SetProfiler(p *prof.Profiler) { m.prof = p }

// NewOoO builds a superscalar model with the given configuration.
func NewOoO(cfg Config) *OoO {
	hier := cachesim.NewHierarchy(cfg.CacheOpts)
	return &OoO{
		cfg:       cfg,
		hier:      hier,
		fe:        newFrontEnd(&cfg, hier.I),
		retire:    make([]int64, cfg.ROB),
		fuBusy:    newBookRing(),
		retBusy:   newBookRing(),
		storeDone: map[uint64]int64{},
	}
}

// Append implements trace.Sink: schedule one committed instruction.
func (m *OoO) Append(rec trace.Rec) {
	fc := m.fe.fetch(&rec)

	// Dispatch one stage after fetch; wait for a ROB slot.
	disp := fc + 1
	if m.head >= uint64(m.cfg.ROB) {
		if oldest := m.retire[m.head%uint64(len(m.retire))]; oldest+1 > disp {
			disp = oldest + 1
		}
	}

	// Operand readiness.
	ready := disp
	for _, r := range rec.SrcReg {
		if r != trace.NoReg {
			if t := m.regReady[gprIdx(r)]; t > ready {
				ready = t
			}
		}
	}
	if rec.SrcAcc != trace.NoAcc {
		if t := m.regReady[accIdx(rec.SrcAcc)]; t > ready {
			ready = t
		}
	}

	// Issue: oldest-first through the shared FU pool.
	var issue, done int64
	switch rec.Class {
	case trace.ClassNop:
		issue = ready
		done = ready
	case trace.ClassLoad:
		issue = m.fuBusy.reserve(ready, uint16(m.cfg.FUs))
		lat := m.hier.D[0].Access(rec.MemAddr, false)
		m.res.DCacheStall += lat - 2
		done = issue + lat
		if sd, ok := m.storeDone[rec.MemAddr>>3]; ok && sd > done {
			done = sd
		}
	case trace.ClassStore:
		issue = m.fuBusy.reserve(ready, uint16(m.cfg.FUs))
		lat := m.hier.D[0].Access(rec.MemAddr, true)
		_ = lat // stores retire without waiting for the write to complete
		done = issue + 1
		m.storeDone[rec.MemAddr>>3] = done
	case trace.ClassMul:
		issue = m.fuBusy.reserve(ready, uint16(m.cfg.FUs))
		done = issue + m.cfg.MulLat
	default:
		issue = m.fuBusy.reserve(ready, uint16(m.cfg.FUs))
		done = issue + 1
	}

	// Destination availability.
	if rec.DstReg != trace.NoReg {
		m.regReady[gprIdx(rec.DstReg)] = done
	}
	if rec.DstAcc != trace.NoAcc {
		m.regReady[accIdx(rec.DstAcc)] = done
	}

	// In-order retirement with bandwidth Width.
	ret := done
	if ret <= m.lastRetire {
		ret = m.lastRetire
	}
	ret = m.retBusy.reserve(ret, uint16(m.cfg.Width))
	m.lastRetire = ret
	m.retire[m.head%uint64(len(m.retire))] = ret
	m.head++

	m.prof.Retire(0, issue, ret, profAcc(&rec))

	m.res.Insts++
	m.res.VInsts += uint64(rec.VCredit)
	if rec.IsBranch() {
		if isEndOfRun(&rec) {
			// Mode switch: drain and restart with an empty pipeline.
			m.res.Episodes++
			m.fe.drain(ret + 1)
			m.resetPipeline(ret)
			return
		}
		m.fe.resolve(&rec, fc, done)
	}
}

// resetPipeline clears in-flight state across a mode switch (register
// values are architectural and stay; timing readiness collapses to the
// drain point).
func (m *OoO) resetPipeline(at int64) {
	for i := range m.regReady {
		if m.regReady[i] > at {
			m.regReady[i] = at
		}
	}
	for k := range m.storeDone {
		delete(m.storeDone, k)
	}
}

// Finish returns the accumulated timing result.
func (m *OoO) Finish() Result {
	r := m.res
	r.Cycles = m.lastRetire + 1
	r.CondMispredicts = m.fe.condMiss
	r.TargetMispredicts = m.fe.targetMiss
	r.Misfetches = m.fe.misfetches
	r.Branches = m.fe.branches
	r.ICacheMisses = m.hier.I.Misses
	r.DCacheMisses = m.hier.D[0].Misses
	r.L2Misses = m.hier.L2.Misses
	r.ICacheStall = m.fe.icacheStall
	r.RedirectLoss = m.fe.redirectLoss
	return r
}

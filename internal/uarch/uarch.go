// Package uarch implements the two trace-driven timing models of the
// paper's evaluation (Table 1):
//
//   - OoO: an idealised 4-wide out-of-order superscalar (128-entry ROB and
//     issue window, oldest-first issue, four symmetric function units) that
//     runs the "original" Alpha traces and the code-straightened Alpha
//     traces; and
//   - ILDP: the accumulator-steered distributed microarchitecture (4/6/8
//     in-order FIFO processing elements, 0- or 2-cycle global communication
//     latency, optionally replicated L1 data caches) that runs the Basic
//     and Modified accumulator traces.
//
// Both share the fetch front-end (g-share + BTB + RAS prediction, up to
// four instructions and three sequential basic blocks per cycle, 3-cycle
// redirects) and in-order retirement. Models consume the committed
// instruction stream produced by the VM (package trace) and reconstruct
// timing; a record with Taken and a zero Target marks a mode-switch
// boundary where the pipeline drains and restarts empty (§4.1).
package uarch

import (
	"github.com/ildp/accdbt/internal/cachesim"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/trace"
)

// Config carries the machine parameters of Table 1.
type Config struct {
	Width       int   // fetch/decode/retire bandwidth (4)
	ROB         int   // reorder buffer entries (128)
	RedirectLat int64 // fetch redirection latency (3)
	MulLat      int64 // integer multiply latency (7)

	// OoO-specific.
	FUs int // symmetric function units (4)

	// ILDP-specific.
	PEs       int   // processing elements (4/6/8)
	CommLat   int64 // global communication latency (0/2)
	FIFODepth int   // per-PE issue FIFO depth

	// UseHWRAS enables the conventional hardware return address stack for
	// ClassRet records carrying V-ISA targets (native and straightened
	// traces). DualRASTrace instead trusts the PredHit flag produced by
	// the co-designed dual-address RAS (sw_pred.ras traces).
	UseHWRAS     bool
	DualRASTrace bool

	// Cache options.
	CacheOpts cachesim.Options
}

// DefaultOoO returns the paper's superscalar baseline configuration.
func DefaultOoO() Config {
	return Config{
		Width: 4, ROB: 128, RedirectLat: 3, MulLat: 7, FUs: 4,
		UseHWRAS:  true,
		CacheOpts: cachesim.DefaultOptions(),
	}
}

// DefaultILDP returns the paper's baseline ILDP configuration used in
// Fig. 8: 8 PEs, 32KB D-cache, zero-cycle communication latency.
func DefaultILDP() Config {
	return Config{
		Width: 4, ROB: 128, RedirectLat: 3, MulLat: 7,
		PEs: 8, CommLat: 0, FIFODepth: 16,
		DualRASTrace: true,
		CacheOpts:    cachesim.Options{DSizeBytes: 32 << 10, DWays: 4, Replicas: 8},
	}
}

// Result summarises a timing run.
type Result struct {
	Cycles int64
	Insts  uint64 // retired records (Alpha or I-ISA instructions)
	VInsts uint64 // V-ISA instructions retired (VCredit sum)

	CondMispredicts   uint64
	TargetMispredicts uint64
	Misfetches        uint64
	Branches          uint64

	ICacheMisses uint64
	DCacheMisses uint64
	L2Misses     uint64

	// Stall accounting: cycles fetch spent waiting on I-cache misses,
	// added load latency beyond an L1 hit, and cycles lost to redirects
	// (mispredicts + misfetches x their latencies).
	ICacheStall  int64
	DCacheStall  int64
	RedirectLoss int64

	Episodes uint64 // mode-switch boundaries observed
}

// IPC returns V-ISA instructions per cycle, the paper's headline metric.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.VInsts) / float64(r.Cycles)
}

// NativeIPC returns retired records per cycle (the "native I-ISA IPC" of
// Fig. 8's last bar).
func (r Result) NativeIPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// MispredictsPer1000 returns execute-time branch/jump mispredictions per
// thousand retired instructions (Fig. 4's metric).
func (r Result) MispredictsPer1000() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.CondMispredicts+r.TargetMispredicts) * 1000 / float64(r.Insts)
}

// Publish copies the timing summary into the registry under the given
// prefix (e.g. "uarch.ildp"): cycle/instruction counters, predictor and
// cache-miss counters, stall accounting, and the derived IPC and
// misprediction-rate gauges. No-op on a nil registry.
func (r Result) Publish(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	c := func(name string, v uint64) { reg.Counter(prefix + "." + name).Add(v) }
	c("cycles", uint64(r.Cycles))
	c("insts", r.Insts)
	c("v_insts", r.VInsts)
	c("cond_mispredicts", r.CondMispredicts)
	c("target_mispredicts", r.TargetMispredicts)
	c("misfetches", r.Misfetches)
	c("branches", r.Branches)
	c("icache_misses", r.ICacheMisses)
	c("dcache_misses", r.DCacheMisses)
	c("l2_misses", r.L2Misses)
	c("icache_stall_cycles", uint64(r.ICacheStall))
	c("dcache_stall_cycles", uint64(r.DCacheStall))
	c("redirect_loss_cycles", uint64(r.RedirectLoss))
	c("episodes", r.Episodes)
	reg.Gauge(prefix + ".ipc").Set(r.IPC())
	reg.Gauge(prefix + ".native_ipc").Set(r.NativeIPC())
	reg.Gauge(prefix + ".mispredicts_per_1000").Set(r.MispredictsPer1000())
}

// regSpace is the unified dependence-tracking register space: 64 GPRs
// (architected + VM scratch) followed by 8 accumulators.
const (
	numGPRTrack = 64
	numAccTrack = 8
	regSpace    = numGPRTrack + numAccTrack
)

func gprIdx(r uint8) int { return int(r) }
func accIdx(a uint8) int { return numGPRTrack + int(a) }

// isEndOfRun reports a mode-switch boundary record.
func isEndOfRun(rec *trace.Rec) bool {
	return rec.Taken && rec.Target == 0 && rec.IsBranch()
}

// profAcc returns the accumulator (strand) to attribute a record's
// cycles to in the execution profiler: the destination accumulator,
// else the source, else none.
func profAcc(rec *trace.Rec) uint8 {
	if rec.DstAcc != trace.NoAcc {
		return rec.DstAcc
	}
	return rec.SrcAcc
}

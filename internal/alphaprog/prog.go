// Package alphaprog defines the loadable program image shared between the
// assembler, workload generators, and the interpreter/VM.
package alphaprog

import "sort"

// Program is a memory image plus entry point.
type Program struct {
	Entry    uint64
	Segments []Segment
}

// Segment is a contiguous run of initialised bytes.
type Segment struct {
	Addr uint64
	Data []byte
}

// TotalBytes returns the total number of initialised bytes in the program.
func (p *Program) TotalBytes() int {
	n := 0
	for _, s := range p.Segments {
		n += len(s.Data)
	}
	return n
}

// Normalize sorts segments by address and reports whether any overlap.
func (p *Program) Normalize() bool {
	sort.Slice(p.Segments, func(i, j int) bool { return p.Segments[i].Addr < p.Segments[j].Addr })
	for i := 1; i < len(p.Segments); i++ {
		prev, cur := p.Segments[i-1], p.Segments[i]
		if prev.Addr+uint64(len(prev.Data)) > cur.Addr {
			return false
		}
	}
	return true
}

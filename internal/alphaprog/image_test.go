package alphaprog

import (
	"bytes"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	p := &Program{
		Entry: 0x10000,
		Segments: []Segment{
			{Addr: 0x10000, Data: []byte{1, 2, 3, 4}},
			{Addr: 0x20000, Data: []byte{5, 6}},
		},
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != p.Entry || len(got.Segments) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range p.Segments {
		if got.Segments[i].Addr != p.Segments[i].Addr ||
			!bytes.Equal(got.Segments[i].Data, p.Segments[i].Data) {
			t.Errorf("segment %d differs", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an image"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated after the header.
	p := &Program{Entry: 1, Segments: []Segment{{Addr: 0, Data: make([]byte, 100)}}}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:30]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated image accepted")
	}
}

func TestNormalizeDetectsOverlap(t *testing.T) {
	p := &Program{Segments: []Segment{
		{Addr: 0x100, Data: make([]byte, 16)},
		{Addr: 0x108, Data: make([]byte, 16)},
	}}
	if p.Normalize() {
		t.Error("overlap not detected")
	}
	q := &Program{Segments: []Segment{
		{Addr: 0x200, Data: make([]byte, 8)},
		{Addr: 0x100, Data: make([]byte, 8)},
	}}
	if !q.Normalize() {
		t.Error("disjoint segments rejected")
	}
	if q.Segments[0].Addr != 0x100 {
		t.Error("segments not sorted")
	}
	if q.TotalBytes() != 16 {
		t.Errorf("TotalBytes = %d", q.TotalBytes())
	}
}

package alphaprog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Image format: a trivial container for assembled programs so the command
// line tools can exchange them.
//
//	magic   [8]byte  "ACCDBT1\n"
//	entry   uint64
//	nseg    uint32
//	per segment: addr uint64, len uint32, data [len]byte
var imageMagic = [8]byte{'A', 'C', 'C', 'D', 'B', 'T', '1', '\n'}

// ErrBadImage reports a malformed program image.
var ErrBadImage = errors.New("alphaprog: bad image")

// Save serialises the program.
func (p *Program) Save(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(imageMagic[:])
	le := binary.LittleEndian
	var tmp [8]byte
	le.PutUint64(tmp[:], p.Entry)
	buf.Write(tmp[:])
	le.PutUint32(tmp[:4], uint32(len(p.Segments)))
	buf.Write(tmp[:4])
	for _, s := range p.Segments {
		le.PutUint64(tmp[:], s.Addr)
		buf.Write(tmp[:])
		le.PutUint32(tmp[:4], uint32(len(s.Data)))
		buf.Write(tmp[:4])
		buf.Write(s.Data)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Load deserialises a program image.
func Load(r io.Reader) (*Program, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 20 || !bytes.Equal(data[:8], imageMagic[:]) {
		return nil, fmt.Errorf("%w: missing magic", ErrBadImage)
	}
	le := binary.LittleEndian
	p := &Program{Entry: le.Uint64(data[8:])}
	n := int(le.Uint32(data[16:]))
	off := 20
	for i := 0; i < n; i++ {
		if off+12 > len(data) {
			return nil, fmt.Errorf("%w: truncated segment header", ErrBadImage)
		}
		addr := le.Uint64(data[off:])
		size := int(le.Uint32(data[off+8:]))
		off += 12
		if off+size > len(data) {
			return nil, fmt.Errorf("%w: truncated segment data", ErrBadImage)
		}
		p.Segments = append(p.Segments, Segment{Addr: addr, Data: append([]byte(nil), data[off:off+size]...)})
		off += size
	}
	if !p.Normalize() {
		return nil, fmt.Errorf("%w: overlapping segments", ErrBadImage)
	}
	return p, nil
}

package semcheck_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/iverify"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/semcheck"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// pressureProg keeps seven dependence chains live in a hot loop so the
// four-entry accumulator file spills and reloads (scratch-register term
// flow), and closes with stores whose values the prover must track
// through the whole loop body.
const pressureProg = `
	.text 0x10000
start:
	ldiq  s0, 80
	clr   t0
	clr   t1
	clr   t2
	clr   t3
	clr   t4
	clr   t5
	clr   t6
loop:
	addq  t0, #1, t0
	addq  t1, #2, t1
	addq  t2, #3, t2
	addq  t3, #4, t3
	addq  t4, #5, t4
	addq  t5, #6, t5
	addq  t6, #7, t6
	xor   t0, #15, t0
	xor   t1, #15, t1
	xor   t2, #15, t2
	xor   t3, #15, t3
	xor   t4, #15, t4
	xor   t5, #15, t5
	xor   t6, #15, t6
	subq  s0, #1, s0
	bne   s0, loop
	addq  t0, t1, v0
	addq  t2, t3, t0
	addq  v0, t0, v0
	ldiq  t5, 0x20000
	stq   v0, 0(t5)
	lda   v0, 1(zero)
	lda   a0, 0(zero)
	call_pal callsys
`

// controlProg exercises every chaining shape the prover models: a
// jump-table indirect (latch + load-ETA compare), recursion (save-VRA,
// RAS return), loads, stores, and conditional moves.
const controlProg = `
	.data 0x20000
vals:
	.quad 2, 7, 1, 8, 2, 8
out:
	.space 40
	.data 0x20800
jtab:
	.quad c0, c1, c2, c3

	.text 0x10000
start:
	ldiq  sp, 0x80000
	ldiq  s0, 48
	clr   s2
jloop:
	and   s0, #3, t0
	ldiq  t1, jtab
	s8addq t0, t1, t1
	ldq   t2, 0(t1)
	jmp   (t2)
c0:
	addq  s2, #1, s2
	br    jnext
c1:
	addq  s2, #3, s2
	br    jnext
c2:
	subq  s2, #1, s2
	br    jnext
c3:
	addq  s2, #7, s2
jnext:
	subq  s0, #1, s0
	bne   s0, jloop
	ldiq  t5, out
	stq   s2, 0(t5)
	ldiq  s3, 9
mouter:
	ldiq  a0, vals
	lda   a1, 6(zero)
	clr   v0
	clr   s1
mloop:
	ldq   t0, 0(a0)
	addq  v0, t0, v0
	cmplt s1, t0, t1
	cmovne t1, t0, s1
	lda   a0, 8(a0)
	subq  a1, #1, a1
	bne   a1, mloop
	subq  s3, #1, s3
	bne   s3, mouter
	ldiq  t5, out
	stq   v0, 8(t5)
	stq   s1, 16(t5)
	lda   a0, 7(zero)
	bsr   sum
	ldiq  t5, out
	stq   v0, 24(t5)
	lda   v0, 1(zero)
	lda   a0, 0(zero)
	call_pal callsys

sum:
	cmplt a0, #2, t0
	beq   t0, sumrec
	mov   a0, v0
	ret
sumrec:
	stq   ra, -8(sp)
	stq   a0, -16(sp)
	lda   sp, -16(sp)
	subq  a0, #1, a0
	bsr   sum
	ldq   a0, 0(sp)
	addq  v0, a0, v0
	lda   sp, 16(sp)
	ldq   ra, -8(sp)
	ret
`

// entry is one harvested fragment plus the memory image it was
// translated from (for source-superblock reconstruction) and the
// structural-verifier configuration (for the semantic mutations).
type entry struct {
	label string
	frag  *tcache.Fragment
	m     *mem.Memory
	vcfg  iverify.Config
}

func (e *entry) read(addr uint64) (alpha.Word, error) {
	w, err := e.m.Read32(addr)
	return alpha.Word(w), err
}

var (
	corpusOnce sync.Once
	corpusVal  []entry
	corpusErr  error
)

// corpus harvests fragments from real VM runs of the two local programs
// across both ISA forms, all three chain modes, and both accumulator
// file sizes, plus three generated workloads, keeping each run's memory
// image so its superblocks can be reconstructed.
func corpus(t testing.TB) []entry {
	corpusOnce.Do(func() { corpusVal, corpusErr = buildCorpus() })
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	if len(corpusVal) == 0 {
		t.Fatal("corpus: no fragments harvested")
	}
	return corpusVal
}

func buildCorpus() ([]entry, error) {
	forms := []ildp.Form{ildp.Basic, ildp.Modified}
	chains := []translate.ChainMode{translate.NoPred, translate.SWPred, translate.SWPredRAS}

	var out []entry
	harvest := func(name string, m *mem.Memory, v *vm.VM, cfg vm.Config) {
		tc := v.TCache()
		for id := int32(0); int(id) < tc.Len(); id++ {
			f := tc.Frag(id)
			out = append(out, entry{
				label: fmt.Sprintf("%s/%v/%v/acc%d/frag%d@%#x",
					name, cfg.Form, cfg.Chain, cfg.NumAcc, id, f.VStart),
				frag: f, m: m,
				vcfg: iverify.Config{Form: cfg.Form, NumAcc: cfg.NumAcc, Chain: cfg.Chain},
			})
		}
	}

	progs := []struct {
		name, src string
	}{{"pressure", pressureProg}, {"control", controlProg}}
	for _, p := range progs {
		for _, form := range forms {
			for _, chain := range chains {
				for _, acc := range []int{ildp.DefaultAccumulators, ildp.MaxAccumulators} {
					cfg := vm.DefaultConfig()
					cfg.Form, cfg.Chain, cfg.NumAcc = form, chain, acc
					cfg.HotThreshold = 5
					m := mem.New()
					v := vm.New(m, cfg)
					if err := v.LoadProgram(alphaasm.MustAssemble(p.src)); err != nil {
						return nil, fmt.Errorf("%s: %v", p.name, err)
					}
					if err := v.Run(10_000_000); err != nil && !errors.Is(err, vm.ErrBudget) {
						return nil, fmt.Errorf("%s/%v/%v: %v", p.name, form, chain, err)
					}
					if v.TCache().Len() == 0 {
						return nil, fmt.Errorf("%s/%v/%v: no fragments translated", p.name, form, chain)
					}
					harvest(p.name, m, v, cfg)
				}
			}
		}
	}

	for _, name := range []string{"gzip", "mcf", "vortex"} {
		spec, err := workload.ByName(name, 1)
		if err != nil {
			return nil, err
		}
		prog := spec.MustProgram()
		for _, form := range forms {
			for _, chain := range chains {
				cfg := vm.DefaultConfig()
				cfg.Form, cfg.Chain = form, chain
				cfg.HotThreshold = 10
				m := mem.New()
				v := vm.New(m, cfg)
				if err := v.LoadProgram(prog); err != nil {
					return nil, fmt.Errorf("%s: %v", name, err)
				}
				if err := v.Run(300_000); err != nil && !errors.Is(err, vm.ErrBudget) {
					return nil, fmt.Errorf("%s/%v/%v: %v", name, form, chain, err)
				}
				harvest(name, m, v, cfg)
			}
		}
	}
	return out, nil
}

// TestReconstructAndProve closes the full static loop with no help from
// the translator: each installed fragment's source superblock is
// reconstructed by decoding guest memory, then the fragment is proved
// equivalent to the reconstruction.
func TestReconstructAndProve(t *testing.T) {
	exits, finals := 0, 0
	for i := range corpus(t) {
		e := &corpus(t)[i]
		code := semcheck.FromFragment(e.frag)
		sb, err := semcheck.Reconstruct(e.read, code)
		if err != nil {
			t.Errorf("%s: %v", e.label, err)
			continue
		}
		if sb.StartPC != e.frag.VStart {
			t.Errorf("%s: reconstructed start %#x, want %#x", e.label, sb.StartPC, e.frag.VStart)
		}
		rep := semcheck.Prove(sb, code)
		if !rep.OK() {
			t.Errorf("%s:\n%s", e.label, rep)
		}
		exits += rep.Exits
		finals += rep.Finals
	}
	if exits == 0 || finals == 0 {
		t.Fatalf("no obligations discharged (%d exits, %d finals)", exits, finals)
	}
	t.Logf("%d fragments proved (%d side exits, %d finals)", len(corpus(t)), exits, finals)
}

// TestWorkloadsProveAll proves every fragment of every workload at the
// experiment scale, in the paper's three machine configurations, by
// running with the in-VM prover enabled: a single counterexample fails
// the run. This is the PR's headline claim — 100% of translations
// proved, zero counterexamples.
func TestWorkloadsProveAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload proving in -short mode")
	}
	type machine struct {
		name       string
		form       ildp.Form
		straighten bool
	}
	machines := []machine{
		{"modified", ildp.Modified, false},
		{"basic", ildp.Basic, false},
		{"straightened", ildp.Modified, true},
	}
	total := 0
	for _, name := range workload.Names() {
		spec, err := workload.ByName(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		prog := spec.MustProgram()
		for _, mc := range machines {
			cfg := vm.DefaultConfig()
			cfg.Form = mc.form
			cfg.Straighten = mc.straighten
			cfg.SemCheck = true
			cfg.HotThreshold = 50
			v := vm.New(mem.New(), cfg)
			if err := v.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			if err := v.Run(0); err != nil {
				t.Fatalf("%s/%s: %v", name, mc.name, err)
			}
			if v.Stats.FragsProved != v.Stats.Fragments {
				t.Errorf("%s/%s: %d fragments, only %d proved",
					name, mc.name, v.Stats.Fragments, v.Stats.FragsProved)
			}
			total += v.Stats.FragsProved
		}
	}
	if total == 0 {
		t.Fatal("no fragments proved across the workload suite")
	}
	t.Logf("proved %d fragments across %d workloads x %d machines",
		total, len(workload.Names()), len(machines))
}

// TestSemanticMutationsRejected pins the prover's reason to exist: each
// semantic-only corruption — accepted by all 18 structural verifier
// rules — must be rejected by the equivalence proof, every time it
// applies, with a counterexample naming real diverging terms.
func TestSemanticMutationsRejected(t *testing.T) {
	entries := corpus(t)
	for _, m := range iverify.SemanticMutations() {
		t.Run(m.Name, func(t *testing.T) {
			applied := 0
			for i := range entries {
				e := &entries[i]
				code := iverify.FromFragment(e.frag)
				if code.Straightened {
					continue // the structural verifier has no straightened rules
				}
				if !m.Apply(code, e.vcfg) {
					continue
				}
				applied++
				// The mutation is self-verifying: the structural rules
				// still accept. Re-check to keep that honest.
				if rep := iverify.Check(code, e.vcfg); !rep.OK() {
					t.Fatalf("%s: mutation is not structurally invisible:\n%s", e.label, rep)
				}
				sb, err := semcheck.Reconstruct(e.read, semcheck.FromFragment(e.frag))
				if err != nil {
					t.Fatalf("%s: %v", e.label, err)
				}
				mutated := &semcheck.Code{VStart: code.VStart, Insts: code.Insts,
					PEI: code.PEI, PEIRecover: code.PEIRecover}
				rep := semcheck.Prove(sb, mutated)
				if rep.OK() {
					t.Errorf("%s: prover accepted the %s corruption", e.label, m.Name)
				}
			}
			if applied == 0 {
				t.Fatalf("mutation %s found no applicable site in %d fragments",
					m.Name, len(entries))
			}
			t.Logf("%s: rejected at all %d sites", m.Name, applied)
		})
	}
}

// TestCounterexampleRendering pins the report format end to end: a
// literal nudged from 1 to 2 in a two-instruction superblock must
// produce exactly one register counterexample naming both term trees.
func TestCounterexampleRendering(t *testing.T) {
	sb := &translate.Superblock{
		StartPC: 0x10000,
		Insts: []translate.SBInst{
			{PC: 0x10000, Inst: alpha.Inst{Format: alpha.FormatOperate,
				Op: alpha.OpADDQ, Ra: 16, Rc: 3, UseLit: true, Lit: 1}},
			{PC: 0x10004, Inst: alpha.Inst{Format: alpha.FormatOperate,
				Op: alpha.OpSUBQ, Ra: 3, Rb: 17, Rc: 4}},
		},
		End:    translate.EndMaxSize,
		NextPC: 0x10008,
	}
	res, err := translate.Translate(sb, translate.Config{
		Form: ildp.Modified, NumAcc: ildp.DefaultAccumulators, Chain: translate.SWPredRAS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := semcheck.Check(sb, res); !rep.OK() {
		t.Fatalf("pristine translation did not prove:\n%s", rep)
	}

	for i := range res.Insts {
		inst := &res.Insts[i]
		if inst.Kind == ildp.KindALU && inst.Op == alpha.OpADDQ &&
			inst.SrcB.Kind == ildp.SrcImm && inst.SrcB.Imm == 1 {
			inst.SrcB.Imm = 2
			break
		}
	}
	rep := semcheck.Check(sb, res)
	if rep.OK() {
		t.Fatal("prover accepted the corrupted literal")
	}

	var lines []string
	for _, ce := range rep.Counterexamples {
		lines = append(lines, ce.String())
	}
	got := strings.Join(lines, "\n")
	want := "[reg r3 @ direct continuation to 0x10008] " +
		"alpha: (addq r16 #0x1) != frag: (addq r16 #0x2)\n" +
		"[reg r4 @ direct continuation to 0x10008] " +
		"alpha: (subq (addq r16 #0x1) r17) != frag: (subq (addq r16 #0x2) r17)"
	if got != want {
		t.Errorf("counterexample rendering drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !strings.Contains(rep.String(), "counterexample") {
		t.Errorf("report summary does not count counterexamples:\n%s", rep)
	}
}

// FuzzSemCheck drives decoded instruction soup through the translator
// and requires every successful translation to prove equivalent to its
// superblock: any counterexample is a translator or prover bug.
func FuzzSemCheck(f *testing.F) {
	seed := func(words ...uint32) []byte {
		var b []byte
		for _, w := range words {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		return b
	}
	mustEnc := func(w alpha.Word, err error) uint32 {
		if err != nil {
			f.Fatal(err)
		}
		return uint32(w)
	}
	f.Add(uint8(0), seed(
		mustEnc(alpha.EncodeMem(alpha.OpLDQ, 1, 2, 0)),
		mustEnc(alpha.EncodeOperateR(alpha.OpADDQ, 0, 1, 0)),
		mustEnc(alpha.EncodeMem(alpha.OpSTQ, 0, 2, 8)),
		mustEnc(alpha.EncodeOperateL(alpha.OpSUBQ, 3, 1, 3)),
		mustEnc(alpha.EncodeBranch(alpha.OpBNE, 3, -5)),
	))
	f.Add(uint8(3), seed(
		mustEnc(alpha.EncodeBranch(alpha.OpBSR, 26, 2)),
		mustEnc(alpha.EncodeOperateR(alpha.OpBIS, 9, 9, 0)),
		mustEnc(alpha.EncodeJump(alpha.OpRET, 31, 26, 0)),
	))
	f.Add(uint8(5), seed(
		mustEnc(alpha.EncodeOperateL(alpha.OpCMPLT, 4, 10, 5)),
		mustEnc(alpha.EncodeOperateR(alpha.OpCMOVNE, 5, 6, 4)),
		mustEnc(alpha.EncodeOperateR(alpha.OpXOR, 4, 7, 4)),
	))

	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		form := ildp.Basic
		if sel&1 != 0 {
			form = ildp.Modified
		}
		chain := translate.ChainMode((sel >> 1) % 3)
		numAcc := ildp.DefaultAccumulators
		if sel&8 != 0 {
			numAcc = ildp.MaxAccumulators
		}

		const base = uint64(0x10000)
		sb := &translate.Superblock{StartPC: base, End: translate.EndMaxSize}
		pc := base
		for i := 0; i+4 <= len(data) && len(sb.Insts) < 64; i += 4 {
			w := alpha.Word(uint32(data[i]) | uint32(data[i+1])<<8 |
				uint32(data[i+2])<<16 | uint32(data[i+3])<<24)
			inst := alpha.Decode(w)
			if inst.Op == alpha.OpInvalid || inst.Op == alpha.OpUnsupported ||
				inst.Op == alpha.OpCallPAL {
				break
			}
			rec := translate.SBInst{PC: pc, Inst: inst}
			if inst.IsCondBranch() {
				rec.Taken = inst.Ra&1 != 0
			}
			if inst.IsIndirect() {
				rec.PredTarget = base + 0x400
			}
			sb.Insts = append(sb.Insts, rec)
			pc += alpha.InstBytes
			if inst.IsIndirect() {
				sb.End = translate.EndIndirect
				break
			}
		}
		if len(sb.Insts) == 0 {
			return
		}
		sb.NextPC = pc

		var res *translate.Result
		var err error
		if sel&16 != 0 {
			res, err = translate.Straighten(sb, chain)
		} else {
			res, err = translate.Translate(sb, translate.Config{
				Form: form, NumAcc: numAcc, Chain: chain,
			})
		}
		if err != nil {
			return // untranslatable input is the interpreter's problem
		}
		if rep := semcheck.Check(sb, res); !rep.OK() {
			t.Fatalf("translation of %d insts (form %v, chain %v) not equivalent:\n%s",
				len(sb.Insts), form, chain, rep)
		}
	})
}

// BenchmarkProve reports prover throughput over the harvested corpus,
// comparable to the structural verifier's BenchmarkVerify.
func BenchmarkProve(b *testing.B) {
	entries := corpus(b)
	insts := 0
	type pair struct {
		sb   *translate.Superblock
		code *semcheck.Code
	}
	pairs := make([]pair, 0, len(entries))
	for i := range entries {
		e := &entries[i]
		insts += len(e.frag.Insts)
		code := semcheck.FromFragment(e.frag)
		sb, err := semcheck.Reconstruct(e.read, code)
		if err != nil {
			b.Fatal(err)
		}
		pairs = append(pairs, pair{sb, code})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			if rep := semcheck.Prove(p.sb, p.code); !rep.OK() {
				b.Fatal(rep)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(entries)*b.N)/b.Elapsed().Seconds(), "frags/s")
	b.ReportMetric(float64(insts*b.N)/b.Elapsed().Seconds(), "insts/s")
}

package semcheck

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/translate"
)

// storeRec is one symbolic memory write: the operation (which fixes
// width and any internal address masking), the unmasked address term,
// and the value term.
type storeRec struct {
	Op   alpha.Op
	Addr *Term
	Val  *Term
}

// exitRec is the machine state observable at one exit from the
// superblock or fragment: the (optional) exit condition, the V-ISA
// continuation address, the architected register file, and how much of
// the memory-effect lists had happened by then.
type exitRec struct {
	HasCond bool
	CondOp  alpha.Op
	Cond    *Term
	Target  *Term
	Regs    [alpha.NumRegs]*Term
	NLoads  int
	NStores int
	Assume  []assumption // fragment-side path constraints (empty on the Alpha side)
	VPC     uint64
	Where   string
}

// peiRec is the precise architected state at one potentially-excepting
// instruction, before the instruction's own effects. On the fragment
// side the register file is overlaid with the PEI-recovery pairs the
// trap machinery would materialise from accumulators.
type peiRec struct {
	VPC     uint64
	Regs    [alpha.NumRegs]*Term
	NLoads  int
	NStores int
}

// sides is the full symbolic denotation of one side of the proof.
type sides struct {
	exits  []exitRec // side exits, in program order
	finals []exitRec // fragment end alternatives (exactly one on the Alpha side)
	peis   []peiRec
	loads  []*Term
	stores []storeRec
}

// alphaWalk symbolically executes the superblock's recorded path,
// mirroring emu.CPU.Exec under the translator's execution model:
// LDx_L is a plain load, STx_C always succeeds and writes a 1 success
// flag, NOPs and straightened direct branches vanish, and the final
// indirect target is the masked register value.
type alphaWalk struct {
	b    *builder
	regs [alpha.NumRegs]*Term
	out  sides
}

func runAlpha(b *builder, sb *translate.Superblock) (*sides, error) {
	w := &alphaWalk{b: b}
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		w.regs[r] = b.initReg(r)
	}
	ended := false
	for si := range sb.Insts {
		rec := &sb.Insts[si]
		if ended {
			return nil, fmt.Errorf("semcheck: instruction at %#x after superblock end", rec.PC)
		}
		last := si == len(sb.Insts)-1
		done, err := w.step(sb, rec, last)
		if err != nil {
			return nil, err
		}
		ended = done
	}
	if sb.End != translate.EndIndirect {
		if ended {
			return nil, fmt.Errorf("semcheck: superblock ends indirect but End is %v", sb.End)
		}
		w.pushFinal(w.b.konst(sb.NextPC), "fragment end", nil)
	} else if !ended {
		return nil, fmt.Errorf("semcheck: End is indirect but no indirect instruction found")
	}
	return &w.out, nil
}

func (w *alphaWalk) read(r alpha.Reg) *Term { return w.regs[r] }

func (w *alphaWalk) write(r alpha.Reg, t *Term) {
	if r != alpha.RegZero {
		w.regs[r] = t
	}
}

// operandB is the Rb-or-literal operand of an operate-format
// instruction (the literal is zero-extended, as in emu).
func (w *alphaWalk) operandB(inst alpha.Inst) *Term {
	if inst.UseLit {
		return w.b.konst(uint64(inst.Lit))
	}
	return w.read(inst.Rb)
}

func (w *alphaWalk) snapshotPEI(vpc uint64) {
	w.out.peis = append(w.out.peis, peiRec{
		VPC: vpc, Regs: w.regs,
		NLoads: len(w.out.loads), NStores: len(w.out.stores),
	})
}

func (w *alphaWalk) pushExit(op alpha.Op, cond *Term, target uint64, vpc uint64) {
	w.out.exits = append(w.out.exits, exitRec{
		HasCond: true, CondOp: op, Cond: cond,
		Target: w.b.konst(target), Regs: w.regs,
		NLoads: len(w.out.loads), NStores: len(w.out.stores),
		VPC: vpc, Where: fmt.Sprintf("side exit @ %#x", vpc),
	})
}

func (w *alphaWalk) pushFinal(target *Term, where string, assume []assumption) {
	w.out.finals = append(w.out.finals, exitRec{
		Target: target, Regs: w.regs,
		NLoads: len(w.out.loads), NStores: len(w.out.stores),
		Assume: assume, Where: where,
	})
}

// step executes one recorded instruction; it returns true when the
// instruction ends the superblock (register-indirect jump).
func (w *alphaWalk) step(sb *translate.Superblock, rec *translate.SBInst, last bool) (bool, error) {
	inst := rec.Inst
	pc := rec.PC
	b := w.b

	if inst.IsNOP() {
		return false, nil
	}

	switch {
	case inst.Op == alpha.OpLDA || inst.Op == alpha.OpLDAH:
		imm := int64(inst.Disp)
		if inst.Op == alpha.OpLDAH {
			imm <<= 16
		}
		w.write(inst.Ra, b.op2(alpha.OpADDQ, w.read(inst.Rb), b.konst(uint64(imm))))

	case inst.Format == alpha.FormatOperate && inst.IsCMOV():
		cond := w.read(inst.Ra)
		val := w.operandB(inst)
		w.write(inst.Rc, b.ite(inst.Op, cond, val, w.read(inst.Rc)))

	case inst.Format == alpha.FormatOperate:
		w.write(inst.Rc, b.op2(inst.Op, w.read(inst.Ra), w.operandB(inst)))

	case inst.IsLoad():
		w.snapshotPEI(pc)
		addr := b.op2(alpha.OpADDQ, w.read(inst.Rb), b.konst(uint64(int64(inst.Disp))))
		// LDx_L behaves as a plain load under the uniprocessor model.
		val := b.load(inst.Op, addr, len(w.out.stores))
		w.out.loads = append(w.out.loads, val)
		w.write(inst.Ra, val)

	case inst.IsStore():
		w.snapshotPEI(pc)
		addr := b.op2(alpha.OpADDQ, w.read(inst.Rb), b.konst(uint64(int64(inst.Disp))))
		w.out.stores = append(w.out.stores, storeRec{Op: inst.Op, Addr: addr, Val: w.read(inst.Ra)})
		if inst.Op == alpha.OpSTLC || inst.Op == alpha.OpSTQC {
			// Store-conditional succeeds under the uniprocessor model.
			w.write(inst.Ra, b.konst(1))
		}

	case inst.IsCondBranch():
		w.snapshotPEI(pc)
		cond := w.read(inst.Ra)
		target := inst.BranchTarget(pc)
		if last && sb.End == translate.EndBackward {
			// Fragment-ending backward branch: the taken target is the
			// side exit; the fall-through is the fragment end (NextPC).
			w.pushExit(inst.Op, cond, target, pc)
			return false, nil
		}
		if rec.Taken {
			rop, err := reverseCond(inst.Op)
			if err != nil {
				return false, err
			}
			w.pushExit(rop, cond, pc+alpha.InstBytes, pc)
		} else {
			w.pushExit(inst.Op, cond, target, pc)
		}

	case inst.Op == alpha.OpBR && inst.Ra == alpha.RegZero:
		// Straightened away.

	case inst.Op == alpha.OpBR || inst.Op == alpha.OpBSR:
		w.write(inst.Ra, b.konst(pc+alpha.InstBytes))

	case inst.IsIndirect():
		// Read the target before writing the link register (jsr ra,(ra)
		// order, as in the interpreter).
		target := b.op2(alpha.OpBIC, w.read(inst.Rb), b.konst(3))
		w.write(inst.Ra, b.konst(pc+alpha.InstBytes))
		w.pushFinal(target, fmt.Sprintf("indirect @ %#x", pc), nil)
		return true, nil

	default:
		return false, fmt.Errorf("semcheck: unsupported instruction %v at %#x", inst.Op, pc)
	}
	return false, nil
}

// reverseCond mirrors the translator's condition reversal.
func reverseCond(op alpha.Op) (alpha.Op, error) {
	switch op {
	case alpha.OpBEQ:
		return alpha.OpBNE, nil
	case alpha.OpBNE:
		return alpha.OpBEQ, nil
	case alpha.OpBLT:
		return alpha.OpBGE, nil
	case alpha.OpBGE:
		return alpha.OpBLT, nil
	case alpha.OpBLE:
		return alpha.OpBGT, nil
	case alpha.OpBGT:
		return alpha.OpBLE, nil
	case alpha.OpBLBC:
		return alpha.OpBLBS, nil
	case alpha.OpBLBS:
		return alpha.OpBLBC, nil
	}
	return op, fmt.Errorf("semcheck: cannot reverse non-conditional %v", op)
}

package semcheck

import (
	"fmt"
	"strings"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/translate"
)

// Code is the prover's view of a translated fragment: enough to run the
// symbolic I-ISA frontend. Both translator results (pre-install) and
// installed fragments (possibly patched — patching preserves V-ISA exit
// targets) adapt to it.
type Code struct {
	VStart       uint64
	Insts        []ildp.Inst
	PEI          []uint64
	PEIRecover   [][]translate.RegAcc
	Straightened bool
}

// FromResult adapts a translation result.
func FromResult(res *translate.Result) *Code {
	return &Code{
		VStart: res.VStart, Insts: res.Insts,
		PEI: res.PEI, PEIRecover: res.PEIRecover,
		Straightened: res.Straightened,
	}
}

// FromFragment adapts an installed (possibly patched) fragment.
func FromFragment(f *tcache.Fragment) *Code {
	return &Code{
		VStart: f.VStart, Insts: f.Insts,
		PEI: f.PEI, PEIRecover: f.PEIRecover,
		Straightened: f.Straightened,
	}
}

// CEKind classifies counterexamples.
type CEKind uint8

const (
	CEStructure  CEKind = iota // a side could not be evaluated symbolically
	CEExitCount                // differing number of side exits
	CECond                     // side-exit condition operation or value differs
	CEExitTarget               // side-exit V-ISA target differs
	CERegister                 // architected register term differs at an exit
	CENextPC                   // fragment-end continuation address differs
	CEMemCount                 // memory-effect list lengths differ
	CEStore                    // store op/address/value differs
	CELoad                     // load op/address/ordering differs
	CEPEICount                 // differing number of potentially-excepting points
	CEPEI                      // precise-trap state differs at a PEI
)

var ceKindNames = [...]string{
	"structure", "exit-count", "cond", "exit-target", "reg", "next-pc",
	"mem-count", "store", "load", "pei-count", "pei",
}

func (k CEKind) String() string {
	if int(k) < len(ceKindNames) {
		return ceKindNames[k]
	}
	return fmt.Sprintf("CEKind(%d)", uint8(k))
}

// Counterexample is one typed divergence between the superblock's
// semantics and the fragment's: what diverged, where, and both term
// trees rendered for inspection.
type Counterexample struct {
	Kind  CEKind
	Where string    // which obligation: side exit, fragment end, PEI point
	Reg   alpha.Reg // diverging register, for CERegister/CEPEI
	Index int       // list index, for memory/exit-count kinds
	Alpha string    // rendered Alpha-side term (or count)
	Frag  string    // rendered fragment-side term (or count)
}

func (c Counterexample) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%v", c.Kind)
	if c.Kind == CERegister || c.Kind == CEPEI {
		fmt.Fprintf(&sb, " r%d", c.Reg)
	}
	if c.Where != "" {
		fmt.Fprintf(&sb, " @ %s", c.Where)
	}
	sb.WriteString("] ")
	fmt.Fprintf(&sb, "alpha: %s != frag: %s", c.Alpha, c.Frag)
	return sb.String()
}

// Report is the result of proving one fragment against its superblock.
type Report struct {
	VStart          uint64
	SrcInsts        int // superblock instructions (incl. NOPs)
	IInsts          int // fragment instructions
	Exits           int // proved side exits
	Finals          int // proved fragment-end alternatives
	Counterexamples []Counterexample
}

// OK reports whether every obligation was proved.
func (r *Report) OK() bool { return len(r.Counterexamples) == 0 }

func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("semcheck V %#x: proved (%d exits, %d ends)",
			r.VStart, r.Exits, r.Finals)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "semcheck V %#x: %d counterexamples\n", r.VStart, len(r.Counterexamples))
	for _, c := range r.Counterexamples {
		fmt.Fprintf(&sb, "  %s\n", c)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// prover carries the shared builder and accumulates counterexamples.
type prover struct {
	b   *builder
	rep *Report
}

func (p *prover) ce(c Counterexample) { p.rep.Counterexamples = append(p.rep.Counterexamples, c) }

// eq tests term equality under path assumptions: interned terms are
// pointer-equal when syntactically equal; otherwise both sides are
// rewritten under the assumptions (re-folding constants) and compared
// again.
func (p *prover) eq(x, y *Term, as []assumption) bool {
	if x == y {
		return true
	}
	if len(as) == 0 {
		return false
	}
	bind := bindings(as)
	memo := make(map[*Term]*Term)
	return p.b.subst(x, bind, memo) == p.b.subst(y, bind, memo)
}

// Prove symbolically runs the superblock and the fragment from a common
// initial state and checks every obligation: per side exit the
// condition, target, and architected register file; per fragment-end
// alternative the register file, full memory-effect lists, and next
// V-PC; and per potentially-excepting instruction the precise trap
// state. It never returns nil.
func Prove(sb *translate.Superblock, code *Code) *Report {
	rep := &Report{VStart: code.VStart, SrcInsts: len(sb.Insts), IInsts: len(code.Insts)}
	p := &prover{b: newBuilder(), rep: rep}

	av, err := runAlpha(p.b, sb)
	if err != nil {
		p.ce(Counterexample{Kind: CEStructure, Where: "superblock", Alpha: err.Error(), Frag: "-"})
		return rep
	}
	fv, err := runFrag(p.b, code)
	if err != nil {
		p.ce(Counterexample{Kind: CEStructure, Where: "fragment", Alpha: "-", Frag: err.Error()})
		return rep
	}

	p.compareExits(av, fv)
	p.comparePEIs(av, fv)
	p.compareMemory(av, fv)
	p.compareFinals(av, fv)

	rep.Exits = len(av.exits)
	rep.Finals = len(fv.finals)
	return rep
}

// Check proves a translation result against its source superblock.
func Check(sb *translate.Superblock, res *translate.Result) *Report {
	return Prove(sb, FromResult(res))
}

func (p *prover) compareExits(av, fv *sides) {
	if len(av.exits) != len(fv.exits) {
		p.ce(Counterexample{Kind: CEExitCount, Where: "side exits",
			Alpha: fmt.Sprint(len(av.exits)), Frag: fmt.Sprint(len(fv.exits))})
		return
	}
	for i := range av.exits {
		a, f := &av.exits[i], &fv.exits[i]
		where := a.Where
		if a.CondOp != f.CondOp || !p.eq(a.Cond, f.Cond, f.Assume) {
			p.ce(Counterexample{Kind: CECond, Where: where,
				Alpha: fmt.Sprintf("%v %s", a.CondOp, a.Cond),
				Frag:  fmt.Sprintf("%v %s", f.CondOp, f.Cond)})
		}
		if !p.eq(a.Target, f.Target, f.Assume) {
			p.ce(Counterexample{Kind: CEExitTarget, Where: where,
				Alpha: a.Target.String(), Frag: f.Target.String()})
		}
		p.compareRegs(CERegister, where, a.Regs, f.Regs, f.Assume)
		if a.NLoads != f.NLoads || a.NStores != f.NStores {
			p.ce(Counterexample{Kind: CEMemCount, Where: where,
				Alpha: fmt.Sprintf("%d loads/%d stores", a.NLoads, a.NStores),
				Frag:  fmt.Sprintf("%d loads/%d stores", f.NLoads, f.NStores)})
		}
	}
}

func (p *prover) compareRegs(kind CEKind, where string, a, f [alpha.NumRegs]*Term, as []assumption) {
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if r == alpha.RegZero {
			continue
		}
		if !p.eq(a[r], f[r], as) {
			p.ce(Counterexample{Kind: kind, Where: where, Reg: r,
				Alpha: a[r].String(), Frag: f[r].String()})
		}
	}
}

func (p *prover) comparePEIs(av, fv *sides) {
	if len(av.peis) != len(fv.peis) {
		p.ce(Counterexample{Kind: CEPEICount, Where: "PEI table",
			Alpha: fmt.Sprint(len(av.peis)), Frag: fmt.Sprint(len(fv.peis))})
		return
	}
	for i := range av.peis {
		a, f := &av.peis[i], &fv.peis[i]
		where := fmt.Sprintf("PEI #%d @ %#x", i, a.VPC)
		if a.VPC != f.VPC {
			p.ce(Counterexample{Kind: CEPEI, Where: fmt.Sprintf("PEI #%d", i),
				Alpha: fmt.Sprintf("vpc %#x", a.VPC), Frag: fmt.Sprintf("vpc %#x", f.VPC)})
			continue
		}
		p.compareRegs(CEPEI, where, a.Regs, f.Regs, nil)
		if a.NLoads != f.NLoads || a.NStores != f.NStores {
			p.ce(Counterexample{Kind: CEMemCount, Where: where,
				Alpha: fmt.Sprintf("%d loads/%d stores", a.NLoads, a.NStores),
				Frag:  fmt.Sprintf("%d loads/%d stores", f.NLoads, f.NStores)})
		}
	}
}

func (p *prover) compareMemory(av, fv *sides) {
	if len(av.stores) != len(fv.stores) {
		p.ce(Counterexample{Kind: CEMemCount, Where: "stores",
			Alpha: fmt.Sprint(len(av.stores)), Frag: fmt.Sprint(len(fv.stores))})
	} else {
		for i := range av.stores {
			a, f := &av.stores[i], &fv.stores[i]
			where := fmt.Sprintf("store #%d", i)
			if a.Op != f.Op || !p.eq(a.Addr, f.Addr, nil) {
				p.ce(Counterexample{Kind: CEStore, Where: where, Index: i,
					Alpha: fmt.Sprintf("%v %s", a.Op, a.Addr),
					Frag:  fmt.Sprintf("%v %s", f.Op, f.Addr)})
			} else if !p.eq(a.Val, f.Val, nil) {
				p.ce(Counterexample{Kind: CEStore, Where: where, Index: i,
					Alpha: a.Val.String(), Frag: f.Val.String()})
			}
		}
	}
	if len(av.loads) != len(fv.loads) {
		p.ce(Counterexample{Kind: CEMemCount, Where: "loads",
			Alpha: fmt.Sprint(len(av.loads)), Frag: fmt.Sprint(len(fv.loads))})
		return
	}
	for i := range av.loads {
		if !p.eq(av.loads[i], fv.loads[i], nil) {
			p.ce(Counterexample{Kind: CELoad, Where: fmt.Sprintf("load #%d", i), Index: i,
				Alpha: av.loads[i].String(), Frag: fv.loads[i].String()})
		}
	}
}

func (p *prover) compareFinals(av, fv *sides) {
	if len(av.finals) != 1 {
		p.ce(Counterexample{Kind: CEStructure, Where: "fragment end",
			Alpha: fmt.Sprintf("%d final exits", len(av.finals)), Frag: "-"})
		return
	}
	if len(fv.finals) == 0 {
		p.ce(Counterexample{Kind: CEStructure, Where: "fragment end",
			Alpha: "1 final exit", Frag: "no final exit"})
		return
	}
	a := &av.finals[0]
	for i := range fv.finals {
		f := &fv.finals[i]
		where := f.Where
		if !p.eq(a.Target, f.Target, f.Assume) {
			p.ce(Counterexample{Kind: CENextPC, Where: where,
				Alpha: a.Target.String(), Frag: f.Target.String()})
		}
		p.compareRegs(CERegister, where, a.Regs, f.Regs, f.Assume)
		if a.NLoads != f.NLoads || a.NStores != f.NStores {
			p.ce(Counterexample{Kind: CEMemCount, Where: where,
				Alpha: fmt.Sprintf("%d loads/%d stores", a.NLoads, a.NStores),
				Frag:  fmt.Sprintf("%d loads/%d stores", f.NLoads, f.NStores)})
		}
	}
}

// Package semcheck is a symbolic equivalence prover for translated
// fragments. It executes an Alpha superblock and its I-ISA translation
// over a shared term language — symbolic initial registers, memory as an
// ordered list of symbolic reads and writes, and bitvector operations
// with constant folding and normalization — and proves that at every
// exit both sides agree on the architected register file, the memory
// effect sequence, and the next V-ISA PC. Any disagreement is reported
// as a typed counterexample carrying both term trees.
//
// The proof is relative to the translator's execution model, which the
// repo's interpreter shares except for two documented assumptions (see
// DESIGN.md §12): LDx_L behaves as a plain load and STx_C always
// succeeds (uniprocessor lock model), and traps/PAL calls are assumed
// precise rather than proved (the PEI obligations check the recovery
// state the trap machinery would materialise).
package semcheck

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/emu"
)

// TermKind discriminates symbolic term nodes.
type TermKind uint8

const (
	TConst   TermKind = iota // literal 64-bit value (K)
	TReg                     // initial value of architected register K
	TScratch                 // initial value of VM scratch register K (32..63)
	TAcc                     // initial value of accumulator K
	TOp                      // EvalOp(Op, Args[0], Args[1])
	TLoad                    // memory read: Op width/extension, Args[0] address, K store epoch
	TITE                     // EvalCond(Op, Args[0]) ? Args[1] : Args[2]
)

// Term is one interned node of the shared term language. Terms are
// hash-consed by the builder, so two terms are semantically identical
// under the normalization rules iff they are pointer-equal.
type Term struct {
	Kind TermKind
	Op   alpha.Op
	K    uint64
	Args [3]*Term

	id uint32 // intern order; the canonical commutative sort key
}

// termKey identifies a term up to interning.
type termKey struct {
	kind       TermKind
	op         alpha.Op
	k          uint64
	a0, a1, a2 *Term
}

// builder interns terms and applies normalization at construction time.
// Both frontends of one proof share a builder, so equal computations
// reduce to pointer-equal terms.
type builder struct {
	interned map[termKey]*Term
	zero     *Term
}

func newBuilder() *builder {
	b := &builder{interned: make(map[termKey]*Term, 256)}
	b.zero = b.konst(0)
	return b
}

func (b *builder) intern(k termKey) *Term {
	if t, ok := b.interned[k]; ok {
		return t
	}
	t := &Term{Kind: k.kind, Op: k.op, K: k.k,
		Args: [3]*Term{k.a0, k.a1, k.a2}, id: uint32(len(b.interned))}
	b.interned[k] = t
	return t
}

func (b *builder) konst(v uint64) *Term {
	return b.intern(termKey{kind: TConst, k: v})
}

// initReg is the symbolic initial value of architected register r; the
// hardwired zero register is the constant 0.
func (b *builder) initReg(r alpha.Reg) *Term {
	if r == alpha.RegZero {
		return b.zero
	}
	return b.intern(termKey{kind: TReg, k: uint64(r)})
}

// initScratch is the symbolic initial value of VM scratch register r
// (I-ISA register number, 32..63). Scratch state persists across
// fragment entries, so its initial value is unconstrained.
func (b *builder) initScratch(r alpha.Reg) *Term {
	return b.intern(termKey{kind: TScratch, k: uint64(r)})
}

// initAcc is the symbolic initial value of accumulator i (stale state
// from whatever ran before this fragment).
func (b *builder) initAcc(i int) *Term {
	return b.intern(termKey{kind: TAcc, k: uint64(i)})
}

// load builds the symbolic result of a memory read at addr under the
// given store epoch (number of stores already performed). Two loads
// with the same op, address term, and epoch read the same value.
func (b *builder) load(op alpha.Op, addr *Term, epoch int) *Term {
	return b.intern(termKey{kind: TLoad, op: op, k: uint64(epoch), a0: addr})
}

// commutative reports ops for which operand order is canonicalized.
func commutative(op alpha.Op) bool {
	switch op {
	case alpha.OpADDQ, alpha.OpADDL, alpha.OpMULL, alpha.OpMULQ,
		alpha.OpUMULH, alpha.OpAND, alpha.OpBIS, alpha.OpXOR,
		alpha.OpEQV, alpha.OpCMPEQ:
		return true
	}
	return false
}

// op2 builds EvalOp(op, x, y) with normalization: lda canonicalizes to
// addq, constant operands fold through emu.EvalOp (so folding agrees
// with concrete execution by construction), identity operands vanish,
// and commutative operands are ordered canonically.
func (b *builder) op2(op alpha.Op, x, y *Term) *Term {
	if op == alpha.OpLDA {
		op = alpha.OpADDQ
	}
	if x.Kind == TConst && y.Kind == TConst && emu.IsALUOp(op) {
		return b.konst(emu.EvalOp(op, x.K, y.K))
	}
	// Identities valid on full 64-bit values only (the L-suffixed ops
	// re-sign-extend and must not be elided).
	if y.Kind == TConst && y.K == 0 {
		switch op {
		case alpha.OpADDQ, alpha.OpSUBQ, alpha.OpBIS, alpha.OpXOR,
			alpha.OpBIC, alpha.OpSLL, alpha.OpSRL, alpha.OpSRA:
			return x
		}
	}
	if x.Kind == TConst && x.K == 0 {
		switch op {
		case alpha.OpADDQ, alpha.OpBIS, alpha.OpXOR:
			return y
		}
	}
	if commutative(op) && y.id < x.id {
		x, y = y, x
	}
	return b.intern(termKey{kind: TOp, op: op, a0: x, a1: y})
}

// ite builds the conditional select EvalCond(op, cond) ? then : els
// (the CMOV semantics). A constant condition folds; identical branches
// collapse.
func (b *builder) ite(op alpha.Op, cond, then, els *Term) *Term {
	if cond.Kind == TConst {
		if emu.EvalCond(op, cond.K) {
			return then
		}
		return els
	}
	if then == els {
		return then
	}
	return b.intern(termKey{kind: TITE, op: op, a0: cond, a1: then, a2: els})
}

// subst rewrites t replacing each key term with its binding, re-folding
// through the normalizing constructors (so a substitution that makes
// operands constant folds all the way down). memo caches rewrites.
func (b *builder) subst(t *Term, bind map[*Term]*Term, memo map[*Term]*Term) *Term {
	if len(bind) == 0 {
		return t
	}
	if r, ok := bind[t]; ok {
		return r
	}
	if r, ok := memo[t]; ok {
		return r
	}
	var r *Term
	switch t.Kind {
	case TOp:
		r = b.op2(t.Op, b.subst(t.Args[0], bind, memo), b.subst(t.Args[1], bind, memo))
	case TITE:
		r = b.ite(t.Op, b.subst(t.Args[0], bind, memo),
			b.subst(t.Args[1], bind, memo), b.subst(t.Args[2], bind, memo))
	case TLoad:
		r = b.load(t.Op, b.subst(t.Args[0], bind, memo), int(t.K))
	default:
		r = t
	}
	memo[t] = r
	return r
}

// String renders the term as a compact s-expression for counterexample
// reports: (addq r16 #0x10), ldq[2]((addq r30 #0x8)), r5, s32, a3,
// (cmovne c ? t : e).
func (t *Term) String() string {
	var sb strings.Builder
	t.render(&sb, 0)
	return sb.String()
}

const maxRenderDepth = 12

func (t *Term) render(sb *strings.Builder, depth int) {
	if depth > maxRenderDepth {
		sb.WriteString("...")
		return
	}
	switch t.Kind {
	case TConst:
		fmt.Fprintf(sb, "#%#x", t.K)
	case TReg:
		fmt.Fprintf(sb, "r%d", t.K)
	case TScratch:
		fmt.Fprintf(sb, "s%d", t.K)
	case TAcc:
		fmt.Fprintf(sb, "a%d", t.K)
	case TOp:
		fmt.Fprintf(sb, "(%v ", t.Op)
		t.Args[0].render(sb, depth+1)
		sb.WriteByte(' ')
		t.Args[1].render(sb, depth+1)
		sb.WriteByte(')')
	case TLoad:
		fmt.Fprintf(sb, "%v[%d](", t.Op, t.K)
		t.Args[0].render(sb, depth+1)
		sb.WriteByte(')')
	case TITE:
		fmt.Fprintf(sb, "(%v ", t.Op)
		t.Args[0].render(sb, depth+1)
		sb.WriteString(" ? ")
		t.Args[1].render(sb, depth+1)
		sb.WriteString(" : ")
		t.Args[2].render(sb, depth+1)
		sb.WriteByte(')')
	}
}

// assumption is one path constraint a fragment exit is proved under:
// the term is known to equal the bound value on that path (e.g. the
// software-prediction compare fell through, so xor(target, eta) == 0
// and therefore target == eta).
type assumption struct {
	T  *Term
	To *Term
}

// bindings converts path assumptions to a substitution map.
func bindings(as []assumption) map[*Term]*Term {
	if len(as) == 0 {
		return nil
	}
	m := make(map[*Term]*Term, len(as))
	for _, a := range as {
		m[a.T] = a.To
	}
	return m
}

// notTakenAssumptions derives the substitutions implied by falling
// through a conditional branch: for beq/bne the condition value is
// pinned, and when it is xor(x, #c) the operand is pinned too.
func notTakenAssumptions(b *builder, op alpha.Op, cond *Term) []assumption {
	var as []assumption
	pin := func(t, to *Term) {
		as = append(as, assumption{T: t, To: to})
		if t.Kind == TOp && t.Op == alpha.OpXOR {
			x, y := t.Args[0], t.Args[1]
			if y.Kind == TConst && to.Kind == TConst {
				as = append(as, assumption{T: x, To: b.konst(to.K ^ y.K)})
			} else if x.Kind == TConst && to.Kind == TConst {
				as = append(as, assumption{T: y, To: b.konst(to.K ^ x.K)})
			}
		}
	}
	switch op {
	case alpha.OpBNE: // fell through: cond == 0
		pin(cond, b.zero)
	}
	return as
}

// sortedTerms returns the interned terms in id order (tests only).
func (b *builder) sortedTerms() []*Term {
	ts := make([]*Term, 0, len(b.interned))
	for _, t := range b.interned {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	return ts
}

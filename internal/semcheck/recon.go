package semcheck

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/translate"
)

// reconLimit bounds the decode walk (a superblock is at most a few
// hundred instructions; runaway walks indicate a corrupt fragment).
const reconLimit = 4096

// Reconstruct rebuilds the source superblock of a fragment by decoding
// guest memory from its V-start and replaying the recorded hot path the
// fragment encodes: every instruction the translator kept carries its
// V-PC, side exits carry their V-ISA targets (preserved by patching),
// and the branch sense is recovered by matching each decoded branch's
// condition against the emitted (possibly reversed) exit condition.
// read fetches one instruction word of guest memory.
func Reconstruct(read func(addr uint64) (alpha.Word, error), code *Code) (*translate.Superblock, error) {
	vpcs := sourceVPCs(code)
	if len(vpcs) == 0 {
		return nil, fmt.Errorf("semcheck: fragment at %#x has no source V-PCs", code.VStart)
	}
	exits := coreExits(code)
	predTarget, nextPC, hasNext := chainTargets(code)

	sb := &translate.Superblock{StartPC: code.VStart}
	pc := code.VStart
	k, e := 0, 0
	indirect := false

	for steps := 0; k < len(vpcs); steps++ {
		if steps > reconLimit {
			return nil, fmt.Errorf("semcheck: decode walk from %#x did not converge", code.VStart)
		}
		w, err := read(pc)
		if err != nil {
			return nil, fmt.Errorf("semcheck: reading %#x: %w", pc, err)
		}
		inst := alpha.Decode(w)
		rec := translate.SBInst{PC: pc, Inst: inst}

		if inst.IsNOP() {
			sb.Insts = append(sb.Insts, rec)
			pc += alpha.InstBytes
			continue
		}
		if inst.Op == alpha.OpBR && inst.Ra == alpha.RegZero {
			// Straightened away; follow the branch.
			sb.Insts = append(sb.Insts, rec)
			pc = inst.BranchTarget(pc)
			continue
		}
		if pc != vpcs[k] {
			return nil, fmt.Errorf("semcheck: decoded %v at %#x, expected source V-PC %#x",
				inst.Op, pc, vpcs[k])
		}
		k++

		switch {
		case inst.IsCondBranch():
			if e >= len(exits) {
				return nil, fmt.Errorf("semcheck: branch at %#x has no fragment exit", pc)
			}
			ex := exits[e]
			e++
			target := inst.BranchTarget(pc)
			switch ex.op {
			case inst.Op:
				// Condition kept: the exit is the taken target and the
				// recorded path fell through.
				if ex.vaddr != target {
					return nil, fmt.Errorf("semcheck: exit at %#x targets %#x, branch targets %#x",
						pc, ex.vaddr, target)
				}
				pc += alpha.InstBytes
			default:
				rop, err := reverseCond(inst.Op)
				if err != nil || ex.op != rop {
					return nil, fmt.Errorf("semcheck: exit condition %v at %#x matches neither %v nor its reverse",
						ex.op, pc, inst.Op)
				}
				if ex.vaddr != pc+alpha.InstBytes {
					return nil, fmt.Errorf("semcheck: reversed exit at %#x targets %#x, expected fall-through %#x",
						pc, ex.vaddr, pc+alpha.InstBytes)
				}
				rec.Taken = true
				pc = target
			}
			sb.Insts = append(sb.Insts, rec)

		case inst.IsIndirect():
			rec.PredTarget = predTarget
			sb.Insts = append(sb.Insts, rec)
			indirect = true

		case inst.Op == alpha.OpBR || inst.Op == alpha.OpBSR:
			sb.Insts = append(sb.Insts, rec)
			pc = inst.BranchTarget(pc)

		default:
			sb.Insts = append(sb.Insts, rec)
			pc += alpha.InstBytes
		}
	}

	if e != len(exits) {
		return nil, fmt.Errorf("semcheck: %d fragment exits unmatched by source branches", len(exits)-e)
	}
	if indirect {
		sb.End = translate.EndIndirect
		return sb, nil
	}
	if !hasNext {
		return nil, fmt.Errorf("semcheck: fragment at %#x has no continuation terminator", code.VStart)
	}
	// The walk replays any fragment-ending backward branch as
	// fall-through (Taken=false with the original condition), which is
	// observationally identical to the EndBackward encoding, so EndCycle
	// describes every non-indirect ending.
	sb.End = translate.EndCycle
	sb.NextPC = nextPC
	return sb, nil
}

// sourceVPCs returns the ordered distinct V-PCs of the fragment's
// source instructions.
func sourceVPCs(code *Code) []uint64 {
	var vpcs []uint64
	for i := range code.Insts {
		vpc := code.Insts[i].VPC
		if vpc == 0 {
			continue
		}
		if n := len(vpcs); n > 0 && vpcs[n-1] == vpc {
			continue
		}
		vpcs = append(vpcs, vpc)
	}
	return vpcs
}

type exitSite struct {
	op    alpha.Op
	vaddr uint64
}

// coreExits returns the fragment's core conditional exits in order
// (call-transfer conditionals, or direct links after patching).
func coreExits(code *Code) []exitSite {
	var exits []exitSite
	for i := range code.Insts {
		inst := &code.Insts[i]
		if inst.Class != ildp.ClassCore {
			continue
		}
		if inst.Kind == ildp.KindCallTransCond || inst.Kind == ildp.KindCondBranch {
			exits = append(exits, exitSite{op: inst.Op, vaddr: inst.VAddr})
		}
	}
	return exits
}

// chainTargets extracts the software-prediction target (last load-ETA)
// and the fall-off continuation address (trailing unconditional
// transfer with a V-ISA target).
func chainTargets(code *Code) (predTarget, nextPC uint64, hasNext bool) {
	for i := range code.Insts {
		if code.Insts[i].Kind == ildp.KindLoadETA {
			predTarget = code.Insts[i].VAddr
		}
	}
	if n := len(code.Insts); n > 0 {
		last := &code.Insts[n-1]
		if (last.Kind == ildp.KindCallTrans || last.Kind == ildp.KindBranch) &&
			last.Frag != ildp.FragDispatch {
			return predTarget, last.VAddr, true
		}
	}
	return predTarget, 0, false
}

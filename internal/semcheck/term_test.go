package semcheck

import (
	"strings"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
)

// Terms are hash-consed: two structurally equal terms built through the
// normalizing constructors must be the same pointer, and two distinct
// values must not.
func TestTermInterning(t *testing.T) {
	b := newBuilder()
	r1, r2 := b.initReg(1), b.initReg(2)

	if x, y := b.op2(alpha.OpADDQ, r1, r2), b.op2(alpha.OpADDQ, r1, r2); x != y {
		t.Errorf("identical sums interned separately: %v vs %v", x, y)
	}
	if x, y := b.op2(alpha.OpSUBQ, r1, r2), b.op2(alpha.OpSUBQ, r2, r1); x == y {
		t.Errorf("a-b and b-a interned together: %v", x)
	}
	if b.initReg(alpha.RegZero) != b.zero {
		t.Errorf("r31 is not the zero constant")
	}
}

// Commutative operators canonicalize their operand order, so either
// spelling is one term.
func TestTermCommutativity(t *testing.T) {
	b := newBuilder()
	r1, r2 := b.initReg(1), b.initReg(2)
	for _, op := range []alpha.Op{alpha.OpADDQ, alpha.OpBIS, alpha.OpXOR,
		alpha.OpAND, alpha.OpCMPEQ, alpha.OpMULQ} {
		if x, y := b.op2(op, r1, r2), b.op2(op, r2, r1); x != y {
			t.Errorf("%v: operand order not canonicalized: %v vs %v", op, x, y)
		}
	}
}

// Constant operands fold through the interpreter's own ALU evaluator,
// and the Alpha's 64-bit identities collapse.
func TestTermConstantFolding(t *testing.T) {
	b := newBuilder()
	r := b.initReg(5)

	if got := b.op2(alpha.OpADDQ, b.konst(2), b.konst(3)); got != b.konst(5) {
		t.Errorf("2+3 = %v, want #0x5", got)
	}
	if got := b.op2(alpha.OpSLL, b.konst(1), b.konst(4)); got != b.konst(16) {
		t.Errorf("1<<4 = %v, want #0x10", got)
	}
	// LDA is address arithmetic: it canonicalizes to ADDQ.
	if got := b.op2(alpha.OpLDA, r, b.konst(0)); got != r {
		t.Errorf("lda r5, 0 = %v, want r5", got)
	}
	if x, y := b.op2(alpha.OpLDA, r, b.konst(8)), b.op2(alpha.OpADDQ, r, b.konst(8)); x != y {
		t.Errorf("lda and addq denormalized: %v vs %v", x, y)
	}
	for _, op := range []alpha.Op{alpha.OpADDQ, alpha.OpSUBQ, alpha.OpBIS,
		alpha.OpXOR, alpha.OpBIC, alpha.OpSLL, alpha.OpSRL, alpha.OpSRA} {
		if got := b.op2(op, r, b.zero); got != r {
			t.Errorf("%v r5, 0 = %v, want r5", op, got)
		}
	}
	for _, op := range []alpha.Op{alpha.OpADDQ, alpha.OpBIS, alpha.OpXOR} {
		if got := b.op2(op, b.zero, r); got != r {
			t.Errorf("%v 0, r5 = %v, want r5", op, got)
		}
	}
}

// Conditional-move terms fold a constant condition and collapse when
// both branches agree.
func TestTermITE(t *testing.T) {
	b := newBuilder()
	r, s := b.initReg(5), b.initReg(6)

	if got := b.ite(alpha.OpCMOVNE, b.konst(1), r, s); got != r {
		t.Errorf("cmovne #1 selected %v, want r5", got)
	}
	if got := b.ite(alpha.OpCMOVNE, b.zero, r, s); got != s {
		t.Errorf("cmovne #0 selected %v, want r6", got)
	}
	if got := b.ite(alpha.OpCMOVEQ, b.initReg(7), r, r); got != r {
		t.Errorf("cmov with equal branches = %v, want r5", got)
	}
	sym := b.ite(alpha.OpCMOVLT, b.initReg(7), r, s)
	if sym.Kind != TITE {
		t.Errorf("symbolic cmov folded to %v", sym)
	}
}

// Loads are symbolic reads indexed by the store epoch: the same address
// read before and after a store must be distinct terms, and aliasing
// reads within one epoch must coincide.
func TestTermMemoryEpochs(t *testing.T) {
	b := newBuilder()
	addr := b.op2(alpha.OpADDQ, b.initReg(16), b.konst(16))

	before := b.load(alpha.OpLDQ, addr, 0)
	again := b.load(alpha.OpLDQ, addr, 0)
	after := b.load(alpha.OpLDQ, addr, 1)
	if before != again {
		t.Errorf("same-epoch aliasing loads differ: %v vs %v", before, again)
	}
	if before == after {
		t.Errorf("loads across a store epoch coincide: %v", before)
	}
	if b.load(alpha.OpLDL, addr, 0) == before {
		t.Errorf("loads of different widths coincide")
	}
}

// Substitution rebuilds through the normalizing constructors, so an
// assumption that pins a subterm to a constant folds the whole tree.
func TestTermSubstitution(t *testing.T) {
	b := newBuilder()
	x := b.initReg(3)
	sum := b.op2(alpha.OpADDQ, x, b.konst(5))

	memo := map[*Term]*Term{}
	got := b.subst(sum, map[*Term]*Term{x: b.konst(2)}, memo)
	if got != b.konst(7) {
		t.Errorf("subst(r3+5, r3=2) = %v, want #0x7", got)
	}
	// The fall-through assumption engine pins xor-compare operands.
	cmp := b.op2(alpha.OpXOR, x, b.konst(0x2000))
	as := notTakenAssumptions(b, alpha.OpBNE, cmp)
	bind := bindings(as)
	if got := b.subst(x, bind, map[*Term]*Term{}); got != b.konst(0x2000) {
		t.Errorf("bne fall-through did not pin r3: got %v", got)
	}
}

// Term rendering is the counterexample surface; pin its grammar.
func TestTermRendering(t *testing.T) {
	b := newBuilder()
	cases := []struct {
		t    *Term
		want string
	}{
		{b.konst(0x10), "#0x10"},
		{b.initReg(5), "r5"},
		{b.initScratch(33), "s33"},
		{b.initAcc(3), "a3"},
		{b.op2(alpha.OpSUBQ, b.initReg(16), b.konst(0x10)), "(subq r16 #0x10)"},
		{b.load(alpha.OpLDQ, b.initReg(9), 2), "ldq[2](r9)"},
		{b.ite(alpha.OpCMOVNE, b.initReg(1), b.initReg(2), b.initReg(3)),
			"(cmovne r1 ? r2 : r3)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("render = %q, want %q", got, c.want)
		}
	}

	// Deep trees truncate rather than exploding the report.
	deep := b.initReg(1)
	for i := 0; i < 40; i++ {
		deep = b.op2(alpha.OpSUBQ, deep, b.initReg(2))
	}
	if s := deep.String(); !strings.Contains(s, "...") {
		t.Errorf("deep term rendered in full: %d bytes", len(s))
	}
}

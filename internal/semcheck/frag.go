package semcheck

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/ildp"
)

// numIReg is the I-ISA register file size (architected + VM scratch).
const numIReg = ildp.NumGPR

// fragWalk symbolically executes a translated fragment, mirroring the
// VM's translated-code executor instruction by instruction. The walk is
// linear: conditional side exits record an exit obligation and continue
// on the fall-through path; the software-prediction compare records the
// dispatch alternative and continues under the fall-through assumption.
type fragWalk struct {
	b      *builder
	code   *Code
	regs   [numIReg]*Term
	acc    [ildp.MaxAccumulators]*Term
	assume []assumption
	peiIdx int
	dead   bool // a constant chain compare made the rest unreachable
	out    sides
}

func runFrag(b *builder, code *Code) (*sides, error) {
	w := &fragWalk{b: b, code: code}
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		w.regs[r] = b.initReg(r)
	}
	for r := alpha.Reg(alpha.NumRegs); r < numIReg; r++ {
		w.regs[r] = b.initScratch(r)
	}
	for i := range w.acc {
		w.acc[i] = b.initAcc(i)
	}
	for i := range code.Insts {
		inst := &code.Insts[i]
		if w.dead {
			break
		}
		done, err := w.step(i, inst)
		if err != nil {
			return nil, err
		}
		if done {
			if i != len(code.Insts)-1 {
				return nil, fmt.Errorf("semcheck: instruction #%d after fragment-ending #%d", i+1, i)
			}
			return &w.out, nil
		}
	}
	if w.dead {
		return &w.out, nil
	}
	return nil, fmt.Errorf("semcheck: fragment has no terminating control transfer")
}

func (w *fragWalk) readGPR(r alpha.Reg) *Term {
	if int(r) >= numIReg {
		return w.b.zero
	}
	return w.regs[r]
}

func (w *fragWalk) writeGPR(r alpha.Reg, t *Term) {
	if r == alpha.RegZero || int(r) >= numIReg {
		return
	}
	w.regs[r] = t
}

func (w *fragWalk) readSrc(inst *ildp.Inst, s ildp.Src) *Term {
	switch s.Kind {
	case ildp.SrcAcc:
		return w.acc[inst.Acc&7]
	case ildp.SrcGPR:
		return w.readGPR(s.Reg)
	case ildp.SrcImm:
		return w.b.konst(uint64(s.Imm))
	}
	return w.b.zero
}

// archRegs is the architected slice of the register file.
func (w *fragWalk) archRegs() (out [alpha.NumRegs]*Term) {
	copy(out[:], w.regs[:alpha.NumRegs])
	return out
}

func (w *fragWalk) pathAssume() []assumption {
	return append([]assumption(nil), w.assume...)
}

// notePEI records the precise-trap obligation at a potentially-
// excepting instruction: the architected register file with the
// PEI-recovery pairs materialised from accumulators, exactly as the
// VM's preciseTrap would construct it.
func (w *fragWalk) notePEI(inst *ildp.Inst) error {
	if w.peiIdx >= len(w.code.PEI) {
		return fmt.Errorf("semcheck: PEI table exhausted at I#%d (vpc %#x)", w.peiIdx, inst.VPC)
	}
	if w.code.PEI[w.peiIdx] != inst.VPC {
		return fmt.Errorf("semcheck: PEI table disagrees at entry %d: table %#x, instruction %#x",
			w.peiIdx, w.code.PEI[w.peiIdx], inst.VPC)
	}
	regs := w.archRegs()
	if w.peiIdx < len(w.code.PEIRecover) {
		for _, pair := range w.code.PEIRecover[w.peiIdx] {
			if pair.Reg != alpha.RegZero && pair.Reg < alpha.NumRegs {
				regs[pair.Reg] = w.acc[pair.Acc&7]
			}
		}
	}
	w.out.peis = append(w.out.peis, peiRec{
		VPC: inst.VPC, Regs: regs,
		NLoads: len(w.out.loads), NStores: len(w.out.stores),
	})
	w.peiIdx++
	return nil
}

func (w *fragWalk) pushFinal(target *Term, where string) {
	w.out.finals = append(w.out.finals, exitRec{
		Target: target, Regs: w.archRegs(),
		NLoads: len(w.out.loads), NStores: len(w.out.stores),
		Assume: w.pathAssume(), Where: where,
	})
}

// step executes one I-instruction; done reports a fragment-ending
// unconditional transfer.
func (w *fragWalk) step(i int, inst *ildp.Inst) (bool, error) {
	b := w.b
	isPEI := peiPoint(inst)
	if isPEI {
		if err := w.notePEI(inst); err != nil {
			return false, err
		}
	}

	switch inst.Kind {
	case ildp.KindALU:
		val := b.op2(inst.Op, w.readSrc(inst, inst.SrcA), w.readSrc(inst, inst.SrcB))
		if inst.WritesAcc {
			w.acc[inst.Acc&7] = val
		}
		if inst.Dest != alpha.RegZero {
			w.writeGPR(inst.Dest, val)
		}

	case ildp.KindCMOV:
		cond := w.acc[inst.Acc&7]
		if inst.SrcA.Kind == ildp.SrcGPR {
			cond = w.readGPR(inst.SrcA.Reg)
		}
		if inst.Dest != alpha.RegZero {
			sel := b.ite(inst.Op, cond, w.readSrc(inst, inst.SrcB), w.readGPR(inst.Dest))
			w.writeGPR(inst.Dest, sel)
		}

	case ildp.KindLoad:
		addr := b.op2(alpha.OpADDQ, w.readSrc(inst, inst.SrcA), b.konst(uint64(int64(inst.Disp))))
		val := b.load(inst.Op, addr, len(w.out.stores))
		w.out.loads = append(w.out.loads, val)
		if inst.WritesAcc {
			w.acc[inst.Acc&7] = val
		}
		if inst.Dest != alpha.RegZero {
			w.writeGPR(inst.Dest, val)
		}

	case ildp.KindStore:
		addr := b.op2(alpha.OpADDQ, w.readSrc(inst, inst.SrcA), b.konst(uint64(int64(inst.Disp))))
		w.out.stores = append(w.out.stores, storeRec{
			Op: inst.Op, Addr: addr, Val: w.readSrc(inst, inst.SrcB),
		})

	case ildp.KindCopyToGPR:
		w.writeGPR(inst.Dest, w.acc[inst.Acc&7])

	case ildp.KindCopyFromGPR:
		w.acc[inst.Acc&7] = w.readSrc(inst, inst.SrcA)

	case ildp.KindSetVPC:
		// Trap-recovery base register; no architected effect.

	case ildp.KindLoadETA:
		w.acc[inst.Acc&7] = b.konst(inst.VAddr)

	case ildp.KindSaveVRA:
		w.writeGPR(inst.Dest, b.konst(inst.VAddr))

	case ildp.KindPushRAS:
		// Prediction state only; both RAS outcomes are proved below.

	case ildp.KindCondBranch, ildp.KindCallTransCond:
		cond := w.readSrc(inst, inst.SrcA)
		if inst.Frag == ildp.FragDispatch {
			// Software-prediction verdict: taken enters the dispatch
			// routine at the latched target; fall-through pins the
			// compared values equal. A constant condition resolves the
			// verdict statically: an always-taken compare makes the
			// predicted continuation unreachable (degenerate targets).
			w.pushFinal(w.regs[ildp.RegJTarget],
				fmt.Sprintf("dispatch (prediction miss) @ %#x", inst.VPC))
			if cond.Kind == TConst {
				if emu.EvalCond(inst.Op, cond.K) {
					w.dead = true
				}
				break
			}
			w.assume = append(w.assume, notTakenAssumptions(b, inst.Op, cond)...)
			break
		}
		// Core side exit (possibly patched to a direct fragment link;
		// the V-ISA target is preserved in VAddr either way).
		w.out.exits = append(w.out.exits, exitRec{
			HasCond: true, CondOp: inst.Op, Cond: cond,
			Target: b.konst(inst.VAddr), Regs: w.archRegs(),
			NLoads: len(w.out.loads), NStores: len(w.out.stores),
			Assume: w.pathAssume(), VPC: inst.VPC,
			Where: fmt.Sprintf("side exit @ %#x", inst.VPC),
		})

	case ildp.KindBranch, ildp.KindCallTrans:
		if inst.Frag == ildp.FragDispatch {
			w.pushFinal(w.regs[ildp.RegJTarget],
				fmt.Sprintf("dispatch @ %#x", inst.VPC))
		} else {
			w.pushFinal(b.konst(inst.VAddr),
				fmt.Sprintf("direct continuation to %#x", inst.VAddr))
		}
		return true, nil

	case ildp.KindJumpRet:
		target := b.op2(alpha.OpBIC, w.readSrc(inst, inst.SrcA), b.konst(3))
		// RAS hit: enter (or exit at) the popped V address, which the
		// executor only takes when it equals the masked target.
		w.pushFinal(target, fmt.Sprintf("RAS return @ %#x", inst.VPC))
		// RAS miss: latch the target for dispatch and fall through.
		w.writeGPR(ildp.RegJTarget, target)

	default:
		return false, fmt.Errorf("semcheck: cannot execute %v at I#%d", inst.Kind, i)
	}
	return false, nil
}

// peiPoint mirrors the VM executor's potentially-excepting-instruction
// predicate.
func peiPoint(inst *ildp.Inst) bool {
	if inst.Class != ildp.ClassCore {
		return false
	}
	switch inst.Kind {
	case ildp.KindLoad, ildp.KindStore, ildp.KindCallTransCond, ildp.KindCondBranch:
		return true
	}
	return false
}

package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Counter("a").Add(5)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(2)
	r.Histogram("h").Observe(3)
	r.Event(Event{Kind: EventInstall})
	if got := r.Counter("a").Load(); got != 0 {
		t.Fatalf("nil counter Load = %d, want 0", got)
	}
	if got := r.Gauge("g").Load(); got != 0 {
		t.Fatalf("nil gauge Load = %v, want 0", got)
	}
	if got := r.Histogram("h").Count(); got != 0 {
		t.Fatalf("nil histogram Count = %d, want 0", got)
	}
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil registry Events = %v, want nil", ev)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Events) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vm.fragments")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("vm.fragments") != c {
		t.Fatal("same name returned a different counter")
	}

	g := r.Gauge("wall")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}

	h := r.Histogram("cost")
	for _, v := range []float64{1, 10, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1111 {
		t.Fatalf("histogram count/sum = %d/%v, want 4/1111", h.Count(), h.Sum())
	}
	hs := h.snapshot("cost")
	if hs.Min != 1 || hs.Max != 1000 || hs.Mean != 1111.0/4 {
		t.Fatalf("histogram snapshot min/max/mean = %v/%v/%v", hs.Min, hs.Max, hs.Mean)
	}
	var total uint64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Load(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestEventsSequencedAndCapped(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxEvents+10; i++ {
		r.Event(Event{Kind: EventInstall, Frag: int32(i)})
	}
	ev := r.Events()
	if len(ev) != maxEvents {
		t.Fatalf("kept %d events, want %d", len(ev), maxEvents)
	}
	for i, e := range ev {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if s := r.Snapshot(); s.EventsDropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.EventsDropped)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order differs from name order on purpose.
		r.Counter("z").Add(1)
		r.Counter("a").Add(2)
		r.Gauge("m").Set(3)
		r.Histogram("h").Observe(4)
		r.Event(Event{Kind: EventTranslate, VStart: 0x1000, SrcInsts: 7, Cost: 900})
		r.Event(Event{Kind: EventVerify, VStart: 0x1000, OK: true})
		return r
	}
	b1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("snapshots differ:\n%s\n%s", b1, b2)
	}
	if !strings.Contains(string(b1), `"kind":"translate"`) {
		t.Fatalf("event kind not serialized as string: %s", b1)
	}
	// Counters must be name-sorted.
	if ia, iz := strings.Index(string(b1), `"name":"a"`), strings.Index(string(b1), `"name":"z"`); ia > iz {
		t.Fatalf("counters not sorted by name: %s", b1)
	}
}

func TestEventKindRoundTrip(t *testing.T) {
	for k := EventTranslate; k <= EventEvict; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back EventKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %v", k, back)
		}
	}
	var bad EventKind
	if err := json.Unmarshal([]byte(`"bogus"`), &bad); err == nil {
		t.Fatal("unknown kind did not error")
	}
}

func TestGaugesWithPrefix(t *testing.T) {
	r := NewRegistry()
	r.Gauge("experiments.wall_ms.gzip").Set(12)
	r.Gauge("experiments.wall_ms.mcf").Set(34)
	r.Gauge("other").Set(56)
	got := r.GaugesWithPrefix("experiments.wall_ms.")
	if len(got) != 2 || got["experiments.wall_ms.gzip"] != 12 || got["experiments.wall_ms.mcf"] != 34 {
		t.Fatalf("GaugesWithPrefix = %v", got)
	}
}

package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Counter("a").Add(5)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(2)
	r.Histogram("h").Observe(3)
	r.Event(Event{Kind: EventInstall})
	if got := r.Counter("a").Load(); got != 0 {
		t.Fatalf("nil counter Load = %d, want 0", got)
	}
	if got := r.Gauge("g").Load(); got != 0 {
		t.Fatalf("nil gauge Load = %v, want 0", got)
	}
	if got := r.Histogram("h").Count(); got != 0 {
		t.Fatalf("nil histogram Count = %d, want 0", got)
	}
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil registry Events = %v, want nil", ev)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Events) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vm.fragments")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("vm.fragments") != c {
		t.Fatal("same name returned a different counter")
	}

	g := r.Gauge("wall")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}

	h := r.Histogram("cost")
	for _, v := range []float64{1, 10, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1111 {
		t.Fatalf("histogram count/sum = %d/%v, want 4/1111", h.Count(), h.Sum())
	}
	hs := h.snapshot("cost")
	if hs.Min != 1 || hs.Max != 1000 || hs.Mean != 1111.0/4 {
		t.Fatalf("histogram snapshot min/max/mean = %v/%v/%v", hs.Min, hs.Max, hs.Mean)
	}
	var total uint64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Load(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestEventsSequencedAndCapped(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxEvents+10; i++ {
		r.Event(Event{Kind: EventInstall, Frag: int32(i)})
	}
	ev := r.Events()
	if len(ev) != maxEvents {
		t.Fatalf("kept %d events, want %d", len(ev), maxEvents)
	}
	// The ring keeps the newest events: the 10 oldest were overwritten.
	for i, e := range ev {
		if want := i + 10; e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
		if e.Frag != int32(i+10) {
			t.Fatalf("event %d has frag %d, want %d", i, e.Frag, i+10)
		}
	}
	if s := r.Snapshot(); s.EventsDropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.EventsDropped)
	}
	if got := r.EventsDropped(); got != 10 {
		t.Fatalf("EventsDropped = %d, want 10", got)
	}
}

func TestEventsShortRunUnchanged(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Event(Event{Kind: EventInstall, Frag: int32(i)})
	}
	ev := r.Events()
	if len(ev) != 100 {
		t.Fatalf("kept %d events, want 100", len(ev))
	}
	for i, e := range ev {
		if e.Seq != i || e.Frag != int32(i) {
			t.Fatalf("event %d = seq %d frag %d", i, e.Seq, e.Frag)
		}
	}
	if got := r.EventsDropped(); got != 0 {
		t.Fatalf("EventsDropped = %d, want 0", got)
	}
}

func TestEventsRingWraparoundMultiple(t *testing.T) {
	r := NewRegistry()
	n := 3*maxEvents + 7
	for i := 0; i < n; i++ {
		r.Event(Event{Kind: EventInstall, Frag: int32(i)})
	}
	ev := r.Events()
	if len(ev) != maxEvents {
		t.Fatalf("kept %d events, want %d", len(ev), maxEvents)
	}
	first := n - maxEvents
	for i, e := range ev {
		if e.Seq != first+i {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, first+i)
		}
	}
	if got := r.EventsDropped(); got != uint64(first) {
		t.Fatalf("EventsDropped = %d, want %d", got, first)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// Uniform 1..1000: quantiles should land near q*1000 despite the
	// coarse 1-2-5 buckets (interpolation keeps the error inside one
	// bucket).
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	checks := []struct{ q, want, tol float64 }{
		{0, 1, 0}, {1, 1000, 0},
		{0.5, 500, 60}, {0.95, 950, 60}, {0.99, 990, 60},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", c.q, got, c.want, c.tol)
		}
	}
	// Quantiles are monotone in q and clamped to [min, max].
	prev := h.Quantile(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %v < %v", q, v, prev)
		}
		prev = v
	}

	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}

	// Single observation: every quantile is that value.
	one := NewHistogram()
	one.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 42 {
			t.Fatalf("single-value Quantile(%v) = %v, want 42", q, got)
		}
	}
}

// TestHistogramQuantileEdgeCases pins the boundary behaviour the sweep
// above cannot: out-of-range q clamps to min/max, a distribution
// confined to a single bucket interpolates strictly inside [min, max],
// and negative observations keep the same guarantees.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Out-of-range q on an empty histogram is still 0.
	empty := NewHistogram()
	for _, q := range []float64{-1, 0, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// All observations inside one 1-2-5 bucket (the (100, 200] bucket):
	// every quantile must stay within the observed [min, max], clamp to
	// min below q=0 and to max above q=1, and remain monotone.
	single := NewHistogram()
	for i := 0; i < 50; i++ {
		single.Observe(150 + float64(i%7))
	}
	if got := single.Quantile(-0.5); got != 150 {
		t.Errorf("Quantile(-0.5) = %v, want min 150", got)
	}
	if got := single.Quantile(0); got != 150 {
		t.Errorf("Quantile(0) = %v, want min 150", got)
	}
	if got := single.Quantile(1); got != 156 {
		t.Errorf("Quantile(1) = %v, want max 156", got)
	}
	if got := single.Quantile(1.5); got != 156 {
		t.Errorf("Quantile(1.5) = %v, want max 156", got)
	}
	prev := single.Quantile(0)
	for q := 0.1; q < 1.0; q += 0.1 {
		v := single.Quantile(q)
		if v < 150 || v > 156 {
			t.Errorf("single-bucket Quantile(%v) = %v, outside [150, 156]", q, v)
		}
		if v < prev {
			t.Errorf("single-bucket Quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}

	// Negative observations: min/max clamping must hold below zero too.
	neg := NewHistogram()
	neg.Observe(-10)
	neg.Observe(-5)
	if got := neg.Quantile(0); got != -10 {
		t.Errorf("negative Quantile(0) = %v, want -10", got)
	}
	if got := neg.Quantile(1); got != -5 {
		t.Errorf("negative Quantile(1) = %v, want -5", got)
	}
	if mid := neg.Quantile(0.5); mid < -10 || mid > -5 {
		t.Errorf("negative Quantile(0.5) = %v, outside [-10, -5]", mid)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order differs from name order on purpose.
		r.Counter("z").Add(1)
		r.Counter("a").Add(2)
		r.Gauge("m").Set(3)
		r.Histogram("h").Observe(4)
		r.Event(Event{Kind: EventTranslate, VStart: 0x1000, SrcInsts: 7, Cost: 900})
		r.Event(Event{Kind: EventVerify, VStart: 0x1000, OK: true})
		return r
	}
	b1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("snapshots differ:\n%s\n%s", b1, b2)
	}
	if !strings.Contains(string(b1), `"kind":"translate"`) {
		t.Fatalf("event kind not serialized as string: %s", b1)
	}
	// Counters must be name-sorted.
	if ia, iz := strings.Index(string(b1), `"name":"a"`), strings.Index(string(b1), `"name":"z"`); ia > iz {
		t.Fatalf("counters not sorted by name: %s", b1)
	}
}

func TestEventKindRoundTrip(t *testing.T) {
	for k := EventTranslate; k <= EventEvict; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back EventKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %v", k, back)
		}
	}
	var bad EventKind
	if err := json.Unmarshal([]byte(`"bogus"`), &bad); err == nil {
		t.Fatal("unknown kind did not error")
	}
}

func TestGaugesWithPrefix(t *testing.T) {
	r := NewRegistry()
	r.Gauge("experiments.wall_ms.gzip").Set(12)
	r.Gauge("experiments.wall_ms.mcf").Set(34)
	r.Gauge("other").Set(56)
	got := r.GaugesWithPrefix("experiments.wall_ms.")
	if len(got) != 2 || got["experiments.wall_ms.gzip"] != 12 || got["experiments.wall_ms.mcf"] != 34 {
		t.Fatalf("GaugesWithPrefix = %v", got)
	}
}

// TestSnapshotConcurrent is the -race stress test behind the telemetry
// plane's scrape path: 8 writer goroutines hammer every instrument kind
// plus the event ring (the VM side of a live run) while 4 snapshotters
// continuously call Snapshot, Events, the quantile accessors, and JSON
// marshalling (the HTTP side). The assertions are deliberately weak —
// monotonicity and well-formedness — because the point of the test is
// what the race detector sees, not the values.
func TestSnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	var tapped atomic.Uint64
	cancel := r.Subscribe(func(Event) { tapped.Add(1) })
	defer cancel()

	const writers, snapshotters, perWriter = 8, 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("vm.interp_insts")
			g := r.Gauge("vm.occupancy")
			h := r.Histogram("translate.cost_per_fragment")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				r.Counter("vm.trans_v_insts").Add(3)
				g.Add(0.5)
				h.Observe(float64(i % 97))
				r.Event(Event{Kind: EventTranslate, Frag: int32(w), VStart: uint64(i)})
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	for s := 0; s < snapshotters; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			var lastSeq uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				for _, h := range snap.Histograms {
					if h.Count > 0 && (h.Min > h.Max || h.Mean < h.Min || h.Mean > h.Max) {
						t.Errorf("histogram %s summary inconsistent: %+v", h.Name, h)
						return
					}
					r.Histogram(h.Name).Quantile(0.95)
				}
				if n := r.EventsRecorded(); n < lastSeq {
					t.Errorf("EventsRecorded went backwards: %d -> %d", lastSeq, n)
					return
				} else {
					lastSeq = n
				}
				if _, err := json.Marshal(r); err != nil {
					t.Errorf("marshal: %v", err)
					return
				}
				r.Events()
				r.EventsDropped()
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	const wantEvents = writers * perWriter
	if got := r.EventsRecorded(); got != wantEvents {
		t.Fatalf("EventsRecorded = %d, want %d", got, wantEvents)
	}
	if got := tapped.Load(); got != wantEvents {
		t.Fatalf("tap saw %d events, want %d", got, wantEvents)
	}
	if got := r.Counter("vm.interp_insts").Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if dropped := r.EventsDropped(); dropped != wantEvents-maxEvents {
		t.Fatalf("EventsDropped = %d, want %d", dropped, wantEvents-maxEvents)
	}
}

// TestSubscribeCancel pins the tap lifecycle: events before Subscribe
// and after cancel are not delivered, and cancelling twice is safe.
func TestSubscribeCancel(t *testing.T) {
	r := NewRegistry()
	r.Event(Event{Kind: EventTranslate})
	var got []Event
	cancel := r.Subscribe(func(e Event) { got = append(got, e) })
	r.Event(Event{Kind: EventInstall, Frag: 7})
	cancel()
	cancel()
	r.Event(Event{Kind: EventEvict})
	if len(got) != 1 || got[0].Kind != EventInstall || got[0].Seq != 1 {
		t.Fatalf("tap saw %+v, want exactly the seq-1 install event", got)
	}
	// A nil registry returns a usable no-op cancel.
	var nilReg *Registry
	nilReg.Subscribe(func(Event) {})()
}

package metrics

import (
	"encoding/json"
	"fmt"
)

// EventKind identifies a fragment lifecycle transition.
type EventKind uint8

// Fragment lifecycle kinds, in the order a fragment moves through the
// co-designed VM: a hot superblock is translated (§3.3), optionally
// statically verified (DESIGN.md §7), installed into the translation
// cache (§3.2), chained to other fragments as their targets translate
// (§3.2/§4.3), and evicted when a bounded cache flushes.
const (
	EventTranslate EventKind = iota
	EventVerify
	EventInstall
	EventChain
	EventEvict
	// EventFault marks an injected fault (chaos testing; Detail names the
	// fault kind), EventRecover the recovery episode that absorbed a
	// fault or failure, and EventQuarantine a superblock pinned to
	// interpret-only after exhausting its retranslation budget.
	EventFault
	EventRecover
	EventQuarantine
	// EventPreempt marks a run stopped at a V-instruction boundary by a
	// deadline/stop request or budget exhaustion (VStart carries the
	// precise V-PC), and EventResume a checkpoint restored into the VM
	// with a cold translation cache.
	EventPreempt
	EventResume
	// EventProve marks a symbolic equivalence proof of a translated
	// fragment against its source superblock (DESIGN.md §12); OK reports
	// whether every exit's semantics matched.
	EventProve
	// EventStoreHit marks a superblock satisfied from the shared
	// fragment store without translating (Detail distinguishes "shared"
	// hits on another session's artifact from "private" re-hits);
	// EventStoreLoad marks a persisted store decoded and re-verified
	// into the process (Detail carries the load report).
	EventStoreHit
	EventStoreLoad
)

var eventKindNames = [...]string{"translate", "verify", "install", "chain", "evict",
	"fault", "recover", "quarantine", "preempt", "resume", "prove",
	"store_hit", "store_load"}

// String returns the lower-case kind name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON serializes the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses a kind from its string name.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range eventKindNames {
		if name == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("metrics: unknown event kind %q", s)
}

// Event is one fragment lifecycle event. Seq is assigned by the
// registry at emission; the remaining fields are populated by the layer
// that observed the transition (zero values are omitted from JSON).
type Event struct {
	Kind EventKind `json:"kind"`
	Seq  int       `json:"seq"`

	// Frag is the translation-cache fragment ID (install/chain/evict);
	// -1 when the fragment is not yet installed.
	Frag int32 `json:"frag"`
	// VStart is the fragment's V-ISA entry address.
	VStart uint64 `json:"vstart"`

	// SrcInsts and OutInsts are the V-ISA instructions consumed and
	// I-ISA (or straightened Alpha) instructions produced (translate).
	SrcInsts int `json:"src_insts,omitempty"`
	OutInsts int `json:"out_insts,omitempty"`
	// CodeBytes is the encoded fragment size (translate/install/evict).
	CodeBytes int `json:"code_bytes,omitempty"`
	// Cost is the modelled translation overhead in Alpha-instruction
	// work units (translate).
	Cost int64 `json:"cost,omitempty"`

	// OK reports a verify outcome; Skipped marks straightened fragments
	// the verifier does not cover (verify).
	OK      bool `json:"ok,omitempty"`
	Skipped bool `json:"skipped,omitempty"`

	// Detail carries kind-specific context: the patched exit kind and
	// target fragment for chain events, the flush reason for evict.
	Detail string `json:"detail,omitempty"`
}

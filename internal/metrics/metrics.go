// Package metrics is the observability layer of the reproduction: typed
// counters, gauges, and histograms collected in a Registry, plus
// per-fragment lifecycle events (translate, verify, install, chain,
// evict) emitted by the VM and the translation cache.
//
// The design goal is near-zero cost when disabled. Every constructor on
// a nil *Registry returns a nil instrument, and every instrument method
// is a no-op on a nil receiver, so instrumented code holds instruments
// unconditionally and pays one nil check per operation when metrics are
// off. When enabled, counters and gauges are single atomic operations
// and histograms take a short mutex.
//
// A Registry serializes to JSON deterministically (instruments sorted by
// name, events in emission order), which is what `ildpvm -metrics` dumps
// and what the experiment report (internal/report) embeds as run
// timings. DESIGN.md §8 maps the metric names wired through the VM to
// the paper sections they reproduce.
package metrics

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are safe on
// a nil receiver (no-ops) and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set or accumulated. All methods are
// safe on a nil receiver and for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates delta into the gauge (compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into geometric buckets and tracks
// count, sum, min, and max. All methods are safe on a nil receiver and
// for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; len(buckets) = len(bounds)+1
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// defaultBounds covers nine decades (1e-2 .. 1e7) with a 1-2-5 ladder,
// wide enough for work units, instruction counts, and milliseconds.
func defaultBounds() []float64 {
	var b []float64
	for mag := -2; mag <= 7; mag++ {
		p := math.Pow(10, float64(mag))
		b = append(b, p, 2*p, 5*p)
	}
	return b
}

// NewHistogram returns a standalone histogram with the default bucket
// ladder, for callers (like the execution profiler) that want quantile
// summaries without a whole registry.
func NewHistogram() *Histogram {
	bounds := defaultBounds()
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) of the
// observed values by linear interpolation inside the bucket where the
// cumulative count crosses q·count. The estimate is clamped to the
// observed [min, max], which also gives the overflow bucket a finite
// upper edge. Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum float64
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next < target {
			cum = next
			continue
		}
		// The target rank falls in bucket i: (lo, hi].
		lo := h.min
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		v := lo + (hi-lo)*(target-cum)/float64(n)
		return v
	}
	return h.max
}

// snapshot returns the histogram summary under its lock.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
	}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	// Only non-empty buckets are serialized, to keep snapshots small.
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: n})
	}
	return s
}

// maxEvents caps the per-registry lifecycle event buffer. The buffer is
// a ring: past the cap the oldest events are overwritten and counted in
// the events_dropped field of the snapshot, so long runs keep the most
// recent window in constant memory.
const maxEvents = 8192

// Registry holds named instruments and the fragment lifecycle event
// stream. The zero value is not usable; construct with NewRegistry. A
// nil *Registry is a valid "metrics disabled" registry: all lookups
// return nil instruments and Event is a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   []Event // ring once len == maxEvents; eventSeq%maxEvents is the write slot
	eventSeq int     // total events ever emitted

	// taps is the live-subscriber list (see Subscribe). The slice is
	// copy-on-write: Subscribe and cancellation install a fresh slice
	// under mu, so Event can capture the current slice under mu and
	// invoke it after unlocking without racing mutation.
	taps    []tap
	tapsSeq int
}

// tap is one live event subscriber.
type tap struct {
	id int
	fn func(Event)
}

// Subscribe registers fn to be called with every subsequently emitted
// lifecycle event, after its sequence number is stamped and it is
// recorded in the ring. The returned cancel function removes the
// subscription (idempotent). On a nil registry Subscribe returns a
// no-op cancel and fn is never called.
//
// fn runs synchronously on the emitting goroutine — the VM's hot loop
// when the registry is attached to a running VM — so it must be fast
// and must never block; a subscriber that fans events out to slow
// consumers must buffer and drop on its own (see
// internal/telemetry.Broadcaster). fn must not call back into the
// registry's event API.
func (r *Registry) Subscribe(fn func(Event)) (cancel func()) {
	if r == nil || fn == nil {
		return func() {}
	}
	r.mu.Lock()
	r.tapsSeq++
	id := r.tapsSeq
	next := make([]tap, len(r.taps), len(r.taps)+1)
	copy(next, r.taps)
	r.taps = append(next, tap{id: id, fn: fn})
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		next := make([]tap, 0, len(r.taps))
		for _, t := range r.taps {
			if t.id != id {
				next = append(next, t)
			}
		}
		r.taps = next
	}
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter, or nil when
// the registry is disabled.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil when the
// registry is disabled.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram, or nil
// when the registry is disabled.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bounds := defaultBounds()
		h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Event appends a fragment lifecycle event, stamping its sequence
// number. No-op on a nil registry. The buffer is a bounded ring: past
// maxEvents each new event overwrites the oldest one, and the number of
// overwritten (dropped) events is reported by EventsDropped. Live
// subscribers (Subscribe) observe the stamped event after it is
// recorded, outside the registry lock.
func (r *Registry) Event(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.eventSeq
	if len(r.events) < maxEvents {
		r.events = append(r.events, e)
	} else {
		r.events[r.eventSeq%maxEvents] = e
	}
	r.eventSeq++
	taps := r.taps
	r.mu.Unlock()
	for _, t := range taps {
		t.fn(e)
	}
}

// eventsLocked returns the retained events oldest-first. Callers hold r.mu.
func (r *Registry) eventsLocked() []Event {
	out := make([]Event, 0, len(r.events))
	if r.eventSeq <= maxEvents {
		return append(out, r.events...)
	}
	head := r.eventSeq % maxEvents // oldest retained slot
	out = append(out, r.events[head:]...)
	return append(out, r.events[:head]...)
}

// Events returns a copy of the retained lifecycle events in emission
// order (nil on a disabled registry). Short runs (at most maxEvents
// events) see every event; longer runs see the most recent maxEvents,
// with EventsDropped counting the overwritten prefix.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.eventSeq == 0 {
		return nil
	}
	return r.eventsLocked()
}

// EventsRecorded returns how many lifecycle events were ever emitted
// into the registry, including any the bounded ring has since
// overwritten (0 on a disabled registry).
func (r *Registry) EventsRecorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(r.eventSeq)
}

// EventsDropped returns how many old events the ring has overwritten.
func (r *Registry) EventsDropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.eventSeq > maxEvents {
		return uint64(r.eventSeq - maxEvents)
	}
	return 0
}

// GaugesWithPrefix returns the name→value map of all gauges whose name
// starts with prefix (empty on a disabled registry).
func (r *Registry) GaugesWithPrefix(prefix string) map[string]float64 {
	out := map[string]float64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, g := range r.gauges {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out[name] = g.Load()
		}
	}
	return out
}

// NamedCounter is one counter in a snapshot.
type NamedCounter struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// NamedGauge is one gauge in a snapshot.
type NamedGauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Bucket is one non-empty histogram bucket; UpperBound is +Inf for the
// overflow bucket (serialized as the string "+Inf").
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the +Inf overflow bound as a string, since JSON
// has no infinity literal.
func (b Bucket) MarshalJSON() ([]byte, error) {
	type bucket struct {
		UpperBound any    `json:"le"`
		Count      uint64 `json:"count"`
	}
	var le any = b.UpperBound
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(bucket{UpperBound: le, Count: b.Count})
}

// HistogramSnapshot is one histogram in a snapshot.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time, JSON-serializable view of a registry,
// with instruments sorted by name for deterministic output.
type Snapshot struct {
	Counters      []NamedCounter      `json:"counters,omitempty"`
	Gauges        []NamedGauge        `json:"gauges,omitempty"`
	Histograms    []HistogramSnapshot `json:"histograms,omitempty"`
	Events        []Event             `json:"events,omitempty"`
	EventsDropped uint64              `json:"events_dropped,omitempty"`
}

// Snapshot captures the registry (empty snapshot on a nil registry).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedCounter{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedGauge{Name: name, Value: g.Load()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	if r.eventSeq > 0 {
		s.Events = r.eventsLocked()
	}
	if r.eventSeq > maxEvents {
		s.EventsDropped = uint64(r.eventSeq - maxEvents)
	}
	return s
}

// MarshalJSON serializes the registry as its snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

package ildp

import (
	"strings"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
)

func TestValidateRejectsTwoGPRs(t *testing.T) {
	i := Inst{
		Kind: KindALU, Op: alpha.OpADDQ, Acc: 0, WritesAcc: true,
		SrcA: GPRSrc(1), SrcB: GPRSrc(2),
	}
	if err := i.Validate(Basic); err == nil {
		t.Error("two-GPR instruction validated")
	}
}

func TestValidateRejectsTwoAccs(t *testing.T) {
	i := Inst{
		Kind: KindALU, Op: alpha.OpADDQ, Acc: 0, WritesAcc: true,
		SrcA: AccSrc(), SrcB: AccSrc(),
	}
	if err := i.Validate(Basic); err == nil {
		t.Error("two-accumulator instruction validated")
	}
	// The CMOV select is the documented exception.
	cmov := Inst{
		Kind: KindCMOV, Op: alpha.OpCMOVEQ, Acc: 0, WritesAcc: true,
		SrcA: AccSrc(), SrcB: AccSrc(), Dest: alpha.RegZero,
	}
	if err := cmov.Validate(Basic); err != nil {
		t.Errorf("CMOV exception rejected: %v", err)
	}
}

func TestValidateAccPresence(t *testing.T) {
	i := Inst{Kind: KindALU, Op: alpha.OpADDQ, Acc: NoAcc, WritesAcc: true}
	if err := i.Validate(Basic); err == nil {
		t.Error("acc-writing instruction without accumulator validated")
	}
	j := Inst{Kind: KindALU, Op: alpha.OpADDQ, Acc: NoAcc, SrcA: AccSrc()}
	if err := j.Validate(Basic); err == nil {
		t.Error("acc-reading instruction without accumulator validated")
	}
}

func TestValidateBasicFormNoDest(t *testing.T) {
	i := Inst{
		Kind: KindALU, Op: alpha.OpADDQ, Acc: 1, WritesAcc: true,
		SrcA: GPRSrc(3), SrcB: ImmSrc(1), Dest: 5,
	}
	if err := i.Validate(Basic); err == nil {
		t.Error("basic-form ALU with dest GPR validated")
	}
	if err := i.Validate(Modified); err != nil {
		t.Errorf("modified-form ALU with dest GPR rejected: %v", err)
	}
}

func TestEncodedSizes(t *testing.T) {
	regALU := Inst{Kind: KindALU, Op: alpha.OpXOR, Acc: 0, WritesAcc: true,
		SrcA: AccSrc(), SrcB: GPRSrc(1), Dest: alpha.RegZero}
	immALU := Inst{Kind: KindALU, Op: alpha.OpSUBQ, Acc: 1, WritesAcc: true,
		SrcA: GPRSrc(17), SrcB: ImmSrc(1), Dest: alpha.RegZero}
	load := Inst{Kind: KindLoad, Op: alpha.OpLDQ, Acc: 0, WritesAcc: true, SrcA: AccSrc(), Dest: alpha.RegZero}
	branch := Inst{Kind: KindCondBranch, Op: alpha.OpBNE, SrcA: AccSrc(), Acc: 1}
	setvpc := Inst{Kind: KindSetVPC, VAddr: 0x10000}

	if got := regALU.EncodedSize(Basic); got != 2 {
		t.Errorf("reg ALU basic = %d, want 2", got)
	}
	if got := immALU.EncodedSize(Basic); got != 4 {
		t.Errorf("imm ALU basic = %d, want 4", got)
	}
	if got := load.EncodedSize(Basic); got != 2 {
		t.Errorf("load basic = %d, want 2", got)
	}
	if got := branch.EncodedSize(Basic); got != 4 {
		t.Errorf("branch basic = %d, want 4", got)
	}
	if got := setvpc.EncodedSize(Basic); got != 8 {
		t.Errorf("setvpc basic = %d, want 8", got)
	}

	// Modified form: a 16-bit result-producing instruction with a dest GPR
	// grows to 32 bits.
	regALUMod := regALU
	regALUMod.Dest = 3
	if got := regALUMod.EncodedSize(Modified); got != 4 {
		t.Errorf("reg ALU modified+dest = %d, want 4", got)
	}
	// Without a dest (dead value) it stays 16-bit.
	if got := regALU.EncodedSize(Modified); got != 2 {
		t.Errorf("reg ALU modified no-dest = %d, want 2", got)
	}
	// A store produces no result; same size in both forms.
	store := Inst{Kind: KindStore, Op: alpha.OpSTQ, SrcA: AccSrc(), Acc: 0, SrcB: GPRSrc(4)}
	if store.EncodedSize(Basic) != store.EncodedSize(Modified) {
		t.Error("store size differs between forms")
	}
}

func TestReadsAccAndGPR(t *testing.T) {
	i := Inst{Kind: KindALU, Op: alpha.OpXOR, Acc: 0, WritesAcc: true,
		SrcA: AccSrc(), SrcB: GPRSrc(1)}
	if !i.ReadsAcc() {
		t.Error("ReadsAcc false for acc source")
	}
	if i.GPR() != 1 {
		t.Errorf("GPR() = %v, want r1", i.GPR())
	}
	cp := Inst{Kind: KindCopyToGPR, Acc: 2, Dest: 17}
	if !cp.ReadsAcc() {
		t.Error("copy-to-GPR must read its accumulator")
	}
	start := Inst{Kind: KindCopyFromGPR, Acc: 1, WritesAcc: true, SrcA: GPRSrc(9)}
	if start.ReadsAcc() {
		t.Error("copy-from-GPR must not read its accumulator")
	}
}

func TestControlPredicates(t *testing.T) {
	br := Inst{Kind: KindCondBranch, Op: alpha.OpBNE, Acc: 0, SrcA: AccSrc(), Frag: NoFrag}
	if !br.IsControl() || !br.IsExit() {
		t.Error("unlinked cond branch should be control+exit")
	}
	br.Frag = 7
	if br.IsExit() {
		t.Error("linked cond branch should not be an exit")
	}
	alu := Inst{Kind: KindALU, Op: alpha.OpADDQ, Acc: 0, WritesAcc: true, SrcA: AccSrc(), SrcB: ImmSrc(1)}
	if alu.IsControl() || alu.IsExit() {
		t.Error("ALU is not control")
	}
	ct := Inst{Kind: KindCallTrans, VAddr: 0x100}
	if !ct.IsControl() || !ct.IsExit() {
		t.Error("call-translator should be control+exit")
	}
}

func TestStringNotation(t *testing.T) {
	// The paper's Fig. 2 example row: R3 (A0) <- mem[R16].
	i := Inst{Kind: KindLoad, Op: alpha.OpLDBU, Acc: 0, WritesAcc: true,
		SrcA: GPRSrc(16), Dest: 3}
	if got := i.String(); got != "R3 (A0) <- mem[R16]" {
		t.Errorf("String() = %q", got)
	}
	// Basic form equivalent has no dest.
	i.Dest = alpha.RegZero
	if got := i.String(); got != "A0 <- mem[R16]" {
		t.Errorf("String() = %q", got)
	}
	alu := Inst{Kind: KindALU, Op: alpha.OpXOR, Acc: 0, WritesAcc: true,
		SrcA: AccSrc(), SrcB: GPRSrc(1), Dest: alpha.RegZero}
	if got := alu.String(); got != "A0 <- A0 xor R1" {
		t.Errorf("String() = %q", got)
	}
	if s := (&Inst{Kind: KindSetVPC, VAddr: 0x1234}).String(); !strings.Contains(s, "0x1234") {
		t.Errorf("setvpc String() = %q", s)
	}
}

func TestProducesResult(t *testing.T) {
	yes := []Kind{KindALU, KindCMOV, KindLoad, KindCopyFromGPR, KindSaveVRA, KindLoadETA}
	no := []Kind{KindStore, KindCondBranch, KindBranch, KindCallTrans, KindSetVPC, KindPushRAS, KindCopyToGPR}
	for _, k := range yes {
		if !(&Inst{Kind: k}).ProducesResult() {
			t.Errorf("%v should produce a result", k)
		}
	}
	for _, k := range no {
		if (&Inst{Kind: k}).ProducesResult() {
			t.Errorf("%v should not produce a result", k)
		}
	}
}

// Package ildp defines the accumulator-oriented implementation ISA (I-ISA)
// of the co-designed virtual machine, in both the Basic and Modified forms
// studied by Kim & Smith (CGO 2003).
//
// Instructions link chains of dependent operations ("strands") through a
// small set of accumulators; inter-strand communication goes through the
// general-purpose registers (GPRs). Each instruction may name at most one
// GPR and at most one accumulator among its sources (a conditional-move
// select, which carries its condition in a temp accumulator, is the single
// documented exception). In the Basic form, architected GPR state is
// maintained with explicit copy-to-GPR instructions; in the Modified form
// every result-producing instruction carries a destination GPR specifier,
// so no copies are needed for precise traps.
//
// The package models encoded instruction sizes (16-bit / 32-bit / special
// 64-bit forms) for static-code-size statistics and instruction-cache
// simulation, but instructions are otherwise represented structurally.
package ildp

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
)

// AccID identifies an accumulator (equivalently, a strand identifier in
// the Modified form).
type AccID uint8

// The I-ISA register file is larger than the 32 architected Alpha GPRs:
// registers 32..63 are private to the co-designed VM and invisible to
// V-ISA software. RegJTarget carries the V-ISA target address of an
// indirect jump into the shared dispatch routine; ScratchBase..NumGPR-1
// hold spilled temporaries.
const (
	NumGPR                = 64
	RegJTarget  alpha.Reg = 32
	ScratchBase alpha.Reg = 33
)

// NoAcc marks the absence of an accumulator operand.
const NoAcc AccID = 0xFF

// DefaultAccumulators is the number of logical accumulators used throughout
// the paper's evaluation (§4.1); MaxAccumulators is the Fig. 9 variant.
const (
	DefaultAccumulators = 4
	MaxAccumulators     = 8
)

// Form selects the I-ISA variant.
type Form uint8

const (
	// Basic is the original ISA of [Kim & Smith, ISCA 2002]: one GPR per
	// instruction, architected state maintained by explicit copy-to-GPR
	// instructions.
	Basic Form = iota
	// Modified embeds a destination GPR in every result-producing
	// instruction, eliminating state-maintenance copies (CGO 2003 §2.3).
	Modified
)

func (f Form) String() string {
	if f == Basic {
		return "basic"
	}
	return "modified"
}

// SrcKind classifies an instruction source operand.
type SrcKind uint8

const (
	SrcNone SrcKind = iota
	SrcAcc          // the instruction's own accumulator (strand value)
	SrcGPR          // a general-purpose register
	SrcImm          // an immediate
)

// Src is one source operand.
type Src struct {
	Kind SrcKind
	Reg  alpha.Reg // valid when Kind == SrcGPR
	Imm  int64     // valid when Kind == SrcImm
}

// Convenience constructors.
func AccSrc() Src            { return Src{Kind: SrcAcc} }
func GPRSrc(r alpha.Reg) Src { return Src{Kind: SrcGPR, Reg: r} }
func ImmSrc(v int64) Src     { return Src{Kind: SrcImm, Imm: v} }

func (s Src) String() string {
	switch s.Kind {
	case SrcNone:
		return "-"
	case SrcAcc:
		return "A"
	case SrcGPR:
		return "R" + fmt.Sprint(uint8(s.Reg))
	case SrcImm:
		return fmt.Sprintf("#%d", s.Imm)
	}
	return "?"
}

// Kind is the I-ISA instruction kind.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Computation.
	KindALU  // Acc <- SrcA op SrcB
	KindCMOV // Acc <- cond(tempAcc) ? SrcB : old value (see package comment)

	// Memory. The address comes from SrcA (accumulator or GPR); the I-ISA
	// performs no address arithmetic in memory instructions.
	KindLoad  // Acc <- mem[SrcA]
	KindStore // mem[SrcA] <- SrcB

	// Explicit copies (Basic form, spills, and strand starts).
	KindCopyToGPR   // Dest <- Acc
	KindCopyFromGPR // Acc <- SrcA(GPR)

	// Control transfer within translated code.
	KindCondBranch // if cond(SrcA): P <- Target
	KindBranch     // P <- Target

	// VM transitions.
	KindCallTransCond // if cond(SrcA): exit to translator for VTarget
	KindCallTrans     // exit to translator for VTarget

	// Indirect control.
	KindJumpRet // dual-address-RAS return: pop (V,I); if V==SrcA jump I, else fall through
	KindJumpInd // register-indirect jump into the dispatch table (dispatch tail)

	// Special co-designed VM instructions.
	KindSetVPC  // special register <- VAddr (first instruction of a fragment)
	KindLoadETA // Acc <- embedded translation-time target address (VAddr)
	KindSaveVRA // Dest <- embedded V-ISA return address (VAddr)
	KindPushRAS // push (VAddr, I-addr of following instruction's fragment link)

	// Synthetic marker for the shared dispatch routine body.
	KindDispatchOp // one instruction of dispatch code (lookup is magic at the tail)
)

var kindNames = map[Kind]string{
	KindInvalid: "invalid", KindALU: "alu", KindCMOV: "cmov",
	KindLoad: "load", KindStore: "store",
	KindCopyToGPR: "copy-to-gpr", KindCopyFromGPR: "copy-from-gpr",
	KindCondBranch: "cond-branch", KindBranch: "branch",
	KindCallTransCond: "call-translator-if", KindCallTrans: "call-translator",
	KindJumpRet: "ret-dualras", KindJumpInd: "jump-indirect",
	KindSetVPC: "set-vpc", KindLoadETA: "load-eta", KindSaveVRA: "save-vra",
	KindPushRAS: "push-dual-ras", KindDispatchOp: "dispatch-op",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Class categorises instructions for the paper's overhead statistics.
type Class uint8

const (
	ClassCore    Class = iota // direct translation of a V-ISA instruction
	ClassAddr                 // address-computation half of a decomposed memory op
	ClassCopy                 // copy-to/from-GPR state/spill overhead
	ClassChain                // fragment-chaining overhead (compare-and-branch, stubs, dispatch)
	ClassSpecial              // set-VPC and friends
)

var classNames = [...]string{"core", "addr", "copy", "chain", "special"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// NoFrag marks an unlinked control-transfer target; FragDispatch marks a
// transfer into the shared dispatch routine.
const (
	NoFrag       int32 = -1
	FragDispatch int32 = -2
)

// Inst is one I-ISA instruction. Instructions are represented structurally
// (not bit-encoded); EncodedSize models the 16/32-bit footprint.
type Inst struct {
	Kind Kind
	// Op carries the Alpha operation whose semantics the instruction
	// borrows: the ALU function for KindALU, the condition for
	// KindCondBranch / KindCallTransCond / KindCMOV, and the memory width
	// for KindLoad / KindStore.
	Op alpha.Op

	// Acc is the accumulator (strand) the instruction reads and/or writes.
	Acc       AccID
	WritesAcc bool

	// SrcA, SrcB are the source operands in the order of the underlying
	// Alpha operation (Ra, Rb).
	SrcA, SrcB Src

	// Dest is the architected destination GPR. In the Modified form it is
	// carried by every result-producing instruction; in the Basic form it
	// is used only by copy-to-GPR and save-VRA. RegZero means none.
	Dest alpha.Reg

	// ArchDest is the architected register whose current value this
	// instruction's result represents, in both forms (metadata for
	// precise-trap accumulator recovery; not an encoded field).
	ArchDest alpha.Reg

	// Disp is the memory displacement of straightened-Alpha loads and
	// stores (the accumulator forms perform no address arithmetic and
	// always carry 0).
	Disp int32

	// VPC is the V-ISA address of the source instruction this was
	// translated from (0 for pure overhead instructions).
	VPC uint64

	// VAddr is the embedded address of special instructions, and the
	// V-ISA target of control transfers.
	VAddr uint64

	// Frag is the translation-cache fragment ID this control transfer is
	// linked to, or NoFrag when the target is untranslated (the transfer
	// then exits to the VM). Patching a fragment link mutates this field.
	Frag int32

	Class Class

	// VCredit is the number of V-ISA instructions architecturally retired
	// when this I-ISA instruction commits. Exactly one instruction of each
	// translated group carries credit 1; code-straightened-away direct
	// branches move their credit onto the following instruction, so V-ISA
	// instruction counts (the paper's IPC basis) can be recovered from
	// translated-code execution. Removed NOPs carry no credit, matching
	// the paper's exclusion of NOPs from V-ISA program characteristics.
	VCredit uint8

	// Usage is the output-usage ("globalness") classification of the value
	// this instruction produces, for the paper's Fig. 7 statistics.
	Usage UsageClass
}

// UsageClass is the paper's §3.3 output register value usage category.
type UsageClass uint8

const (
	UsageNone         UsageClass = iota // instruction produces no classified value
	UsageNoUser                         // dead before overwrite, no exit/PEI exposure
	UsageLocal                          // used once, stays in the accumulator
	UsageTemp                           // decomposition temporary (address, CMOV condition)
	UsageLiveOut                        // live on superblock exit
	UsageComm                           // used more than once before overwrite
	UsageLocalGlobal                    // local, but saved to a GPR for an exit/PEI (Basic)
	UsageNoUserGlobal                   // dead, but saved to a GPR for an exit/PEI (Basic)
)

var usageNames = [...]string{
	"none", "no user", "local", "temp", "liveout global",
	"communication global", "local->global", "no user->global",
}

func (u UsageClass) String() string {
	if int(u) < len(usageNames) {
		return usageNames[u]
	}
	return fmt.Sprintf("usage(%d)", uint8(u))
}

// ReadsAcc reports whether the instruction structurally reads its
// accumulator (valid before accumulator assignment has run).
func (i *Inst) ReadsAcc() bool {
	switch i.Kind {
	case KindCMOV:
		return true // condition lives in the accumulator
	case KindCopyToGPR:
		return true
	}
	return i.SrcA.Kind == SrcAcc || i.SrcB.Kind == SrcAcc
}

// GPR returns the single GPR the instruction names among its sources, or
// RegZero.
func (i *Inst) GPR() alpha.Reg {
	if i.SrcA.Kind == SrcGPR && i.SrcA.Reg != alpha.RegZero {
		return i.SrcA.Reg
	}
	if i.SrcB.Kind == SrcGPR && i.SrcB.Reg != alpha.RegZero {
		return i.SrcB.Reg
	}
	return alpha.RegZero
}

// IsControl reports whether the instruction can redirect fetch.
func (i *Inst) IsControl() bool {
	switch i.Kind {
	case KindCondBranch, KindBranch, KindCallTransCond, KindCallTrans,
		KindJumpRet, KindJumpInd:
		return true
	}
	return false
}

// IsExit reports whether the instruction may leave translated code for the
// VM (translator/interpreter).
func (i *Inst) IsExit() bool {
	switch i.Kind {
	case KindCallTransCond, KindCallTrans:
		return true
	case KindCondBranch, KindBranch:
		return i.Frag == NoFrag
	}
	return false
}

// ProducesResult reports whether the instruction produces a register value
// (accumulator or GPR) that the Modified form must tag with a destination
// GPR for architected state.
func (i *Inst) ProducesResult() bool {
	switch i.Kind {
	case KindALU, KindCMOV, KindLoad, KindCopyFromGPR, KindSaveVRA, KindLoadETA:
		return true
	}
	return false
}

// Validate checks the I-ISA operand constraints: at most one GPR among the
// sources, and at most one accumulator (the instruction's own), except for
// the documented CMOV select. It returns nil if the instruction is legal.
func (i *Inst) Validate(form Form) error {
	if i.NumGPRSources() > 1 {
		return fmt.Errorf("ildp: %v names two GPR sources", i.Kind)
	}
	accs := i.NumAccSources()
	if accs > 1 && i.Kind != KindCMOV {
		return fmt.Errorf("ildp: %v names two accumulator sources", i.Kind)
	}
	if i.WritesAcc && i.Acc == NoAcc {
		return fmt.Errorf("ildp: %v writes accumulator but has none assigned", i.Kind)
	}
	if accs > 0 && i.Acc == NoAcc {
		return fmt.Errorf("ildp: %v reads accumulator but has none assigned", i.Kind)
	}
	if form == Basic && i.ProducesResult() &&
		i.Kind != KindSaveVRA && i.Kind != KindCMOV && i.Dest != alpha.RegZero {
		return fmt.Errorf("ildp: basic-form %v carries a destination GPR", i.Kind)
	}
	return nil
}

// EncodedSize returns the modelled encoded size of the instruction in
// bytes under the given ISA form: 2 for 16-bit forms (register-only ALU,
// copies, simple loads/stores), 4 for immediate and branch forms, 8 for
// specials that embed a full address. In the Modified form, 16-bit
// result-producing instructions grow to 32 bits to carry the destination
// GPR specifier (§2.3).
func (i *Inst) EncodedSize(form Form) int {
	var base int
	switch i.Kind {
	case KindALU, KindCMOV:
		if i.SrcA.Kind == SrcImm || i.SrcB.Kind == SrcImm {
			base = 4
		} else {
			base = 2
		}
	case KindLoad, KindStore:
		if i.Disp != 0 {
			base = 4 // fused displacement needs an immediate field
		} else {
			base = 2
		}
	case KindCopyToGPR, KindCopyFromGPR:
		base = 2
	case KindCondBranch, KindBranch, KindCallTransCond, KindCallTrans,
		KindJumpRet, KindJumpInd, KindDispatchOp:
		base = 4
	case KindSetVPC, KindLoadETA, KindSaveVRA, KindPushRAS:
		base = 8
	default:
		base = 4
	}
	if form == Modified && base == 2 && i.ProducesResult() && i.Dest != alpha.RegZero {
		base = 4
	}
	return base
}

// String renders the instruction in the paper's RTL-like notation, e.g.
// "R3 (A0) <- mem[R16]" for the Modified form or "A0 <- A0 xor R1" for the
// Basic form.
func (i *Inst) String() string {
	acc := func() string { return fmt.Sprintf("A%d", i.Acc) }
	dst := func() string {
		if i.Dest != alpha.RegZero {
			return fmt.Sprintf("R%d (%s)", uint8(i.Dest), acc())
		}
		return acc()
	}
	src := func(s Src) string {
		if s.Kind == SrcAcc {
			return acc()
		}
		return s.String()
	}
	switch i.Kind {
	case KindALU:
		if i.SrcB.Kind == SrcNone {
			return fmt.Sprintf("%s <- %v %s", dst(), i.Op, src(i.SrcA))
		}
		return fmt.Sprintf("%s <- %s %v %s", dst(), src(i.SrcA), i.Op, src(i.SrcB))
	case KindCMOV:
		return fmt.Sprintf("%s <- if %v(%s): %s", dst(), i.Op, acc(), src(i.SrcB))
	case KindLoad:
		return fmt.Sprintf("%s <- mem[%s]", dst(), src(i.SrcA))
	case KindStore:
		return fmt.Sprintf("mem[%s] <- %s", src(i.SrcA), src(i.SrcB))
	case KindCopyToGPR:
		return fmt.Sprintf("R%d <- %s", uint8(i.Dest), acc())
	case KindCopyFromGPR:
		return fmt.Sprintf("%s <- %s", dst(), src(i.SrcA))
	case KindCondBranch:
		return fmt.Sprintf("P <- %#x, if %v(%s) [frag %d]", i.VAddr, i.Op, src(i.SrcA), i.Frag)
	case KindBranch:
		return fmt.Sprintf("P <- %#x [frag %d]", i.VAddr, i.Frag)
	case KindCallTransCond:
		return fmt.Sprintf("call-translator %#x, if %v(%s)", i.VAddr, i.Op, src(i.SrcA))
	case KindCallTrans:
		return fmt.Sprintf("call-translator %#x", i.VAddr)
	case KindJumpRet:
		return fmt.Sprintf("ret-dualras %s", src(i.SrcA))
	case KindJumpInd:
		return fmt.Sprintf("P <- dispatch[%s]", src(i.SrcA))
	case KindSetVPC:
		return fmt.Sprintf("vpc <- %#x", i.VAddr)
	case KindLoadETA:
		return fmt.Sprintf("%s <- eta %#x", dst(), i.VAddr)
	case KindSaveVRA:
		return fmt.Sprintf("R%d <- vra %#x", uint8(i.Dest), i.VAddr)
	case KindPushRAS:
		return fmt.Sprintf("push-dual-ras %#x", i.VAddr)
	case KindDispatchOp:
		return "dispatch-op"
	}
	return "<invalid>"
}

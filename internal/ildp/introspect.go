package ildp

import "github.com/ildp/accdbt/internal/alpha"

// Operand introspection helpers. These expose the structural facts the
// I-ISA encoding constraints are stated over (§2.2: one GPR and one
// accumulator per instruction), so that validators can check them without
// re-deriving per-kind operand conventions.

// NumGPRSources counts the explicit GPR source operands the instruction
// names. Reads of RegZero do not occupy a register specifier.
func (i *Inst) NumGPRSources() int {
	n := 0
	if i.SrcA.Kind == SrcGPR && i.SrcA.Reg != alpha.RegZero {
		n++
	}
	if i.SrcB.Kind == SrcGPR && i.SrcB.Reg != alpha.RegZero {
		n++
	}
	return n
}

// NumAccSources counts the explicit accumulator source operands among
// SrcA/SrcB. The implicit accumulator reads of KindCMOV (the condition)
// and KindCopyToGPR (the copied value) are reported by ImplicitAccRead.
func (i *Inst) NumAccSources() int {
	n := 0
	if i.SrcA.Kind == SrcAcc {
		n++
	}
	if i.SrcB.Kind == SrcAcc {
		n++
	}
	return n
}

// ImplicitAccRead reports whether the instruction reads its accumulator
// through an operand that is not an explicit SrcAcc specifier: the CMOV
// select condition and the copy-to-GPR source.
func (i *Inst) ImplicitAccRead() bool {
	return i.Kind == KindCMOV || i.Kind == KindCopyToGPR
}

// GPRSources appends the instruction's explicit GPR source registers to
// dst and returns it.
func (i *Inst) GPRSources(dst []alpha.Reg) []alpha.Reg {
	if i.SrcA.Kind == SrcGPR && i.SrcA.Reg != alpha.RegZero {
		dst = append(dst, i.SrcA.Reg)
	}
	if i.SrcB.Kind == SrcGPR && i.SrcB.Reg != alpha.RegZero {
		dst = append(dst, i.SrcB.Reg)
	}
	return dst
}

// GPRWrite returns the GPR the instruction writes through its destination
// specifier, or RegZero when it writes none. A conditional move counts as
// a write (either the selected value or the re-published old value lands
// in the register file).
func (i *Inst) GPRWrite() alpha.Reg {
	switch i.Kind {
	case KindCopyToGPR, KindSaveVRA:
		return i.Dest
	}
	if i.ProducesResult() {
		return i.Dest
	}
	return alpha.RegZero
}

package alpha

import (
	"testing"
	"testing/quick"
)

func TestDecodeKnownEncodings(t *testing.T) {
	// Hand-checked encodings against the Alpha Architecture Handbook bit
	// layouts.
	tests := []struct {
		name string
		w    Word
		want Inst
	}{
		{
			// lda r16, 1(r16): opcode 0x08, ra=16, rb=16, disp=1
			name: "lda",
			w:    Word(0x08<<26 | 16<<21 | 16<<16 | 1),
			want: Inst{Op: OpLDA, Format: FormatMemory, Ra: 16, Rb: 16, Disp: 1},
		},
		{
			// ldbu r3, 0(r16)
			name: "ldbu",
			w:    Word(0x0A<<26 | 3<<21 | 16<<16),
			want: Inst{Op: OpLDBU, Format: FormatMemory, Ra: 3, Rb: 16},
		},
		{
			// stq r1, -8(r30)
			name: "stq-negdisp",
			w:    Word(0x2D<<26 | 1<<21 | 30<<16 | 0xFFF8),
			want: Inst{Op: OpSTQ, Format: FormatMemory, Ra: 1, Rb: 30, Disp: -8},
		},
		{
			// subl r17, 1, r17 (literal form): opcode 0x10 fn 0x09
			name: "subl-lit",
			w:    Word(0x10<<26 | 17<<21 | 1<<13 | 1<<12 | 0x09<<5 | 17),
			want: Inst{Op: OpSUBL, Format: FormatOperate, Ra: 17, Rc: 17, Lit: 1, UseLit: true},
		},
		{
			// xor r1, r3, r3 (register form): opcode 0x11 fn 0x40
			name: "xor-reg",
			w:    Word(0x11<<26 | 1<<21 | 3<<16 | 0x40<<5 | 3),
			want: Inst{Op: OpXOR, Format: FormatOperate, Ra: 1, Rb: 3, Rc: 3},
		},
		{
			// srl r1, 8, r1: opcode 0x12 fn 0x34 literal 8
			name: "srl-lit",
			w:    Word(0x12<<26 | 1<<21 | 8<<13 | 1<<12 | 0x34<<5 | 1),
			want: Inst{Op: OpSRL, Format: FormatOperate, Ra: 1, Rc: 1, Lit: 8, UseLit: true},
		},
		{
			// s8addq r3, r0, r3: opcode 0x10 fn 0x32
			name: "s8addq",
			w:    Word(0x10<<26 | 3<<21 | 0<<16 | 0x32<<5 | 3),
			want: Inst{Op: OpS8ADDQ, Format: FormatOperate, Ra: 3, Rb: 0, Rc: 3},
		},
		{
			// bne r17, -10 (backward branch)
			name: "bne-backward",
			w:    Word(0x3D<<26 | 17<<21 | (uint32(0xFFFFFFF6) & 0x1FFFFF)),
			want: Inst{Op: OpBNE, Format: FormatBranch, Ra: 17, Disp: -10},
		},
		{
			// br r31, +3
			name: "br",
			w:    Word(0x30<<26 | 31<<21 | 3),
			want: Inst{Op: OpBR, Format: FormatBranch, Ra: 31, Disp: 3},
		},
		{
			// ret r31, (r26): opcode 0x1A, hint type 2
			name: "ret",
			w:    Word(0x1A<<26 | 31<<21 | 26<<16 | 2<<14),
			want: Inst{Op: OpRET, Format: FormatMemJump, Ra: 31, Rb: 26},
		},
		{
			// jsr r26, (r27): hint type 1
			name: "jsr",
			w:    Word(0x1A<<26 | 26<<21 | 27<<16 | 1<<14),
			want: Inst{Op: OpJSR, Format: FormatMemJump, Ra: 26, Rb: 27},
		},
		{
			name: "call_pal-halt",
			w:    Word(0),
			want: Inst{Op: OpCallPAL, Format: FormatPAL, PALFn: PALHalt},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Decode(tt.w)
			tt.want.Raw = tt.w
			if got != tt.want {
				t.Errorf("Decode(%#x) = %+v, want %+v", uint32(tt.w), got, tt.want)
			}
		})
	}
}

func TestEncodeDecodeRoundTripMem(t *testing.T) {
	for op := range memOps {
		_ = op
	}
	ops := []Op{OpLDA, OpLDAH, OpLDBU, OpLDWU, OpLDL, OpLDQ, OpLDQU, OpSTB, OpSTW, OpSTL, OpSTQ}
	for _, op := range ops {
		w, err := EncodeMem(op, 5, 30, -256)
		if err != nil {
			t.Fatalf("EncodeMem(%v): %v", op, err)
		}
		got := Decode(w)
		if got.Op != op || got.Ra != 5 || got.Rb != 30 || got.Disp != -256 {
			t.Errorf("round trip %v: got %+v", op, got)
		}
	}
}

func TestEncodeDecodeRoundTripOperate(t *testing.T) {
	ops := []Op{OpADDQ, OpSUBQ, OpAND, OpBIS, OpXOR, OpSLL, OpSRL, OpSRA, OpMULQ,
		OpCMPEQ, OpCMPLT, OpCMPULE, OpCMOVEQ, OpZAPNOT, OpEXTBL, OpS8ADDQ, OpUMULH}
	for _, op := range ops {
		w, err := EncodeOperateR(op, 1, 2, 3)
		if err != nil {
			t.Fatalf("EncodeOperateR(%v): %v", op, err)
		}
		got := Decode(w)
		if got.Op != op || got.Ra != 1 || got.Rb != 2 || got.Rc != 3 || got.UseLit {
			t.Errorf("round trip reg %v: got %+v", op, got)
		}
		w, err = EncodeOperateL(op, 1, 200, 3)
		if err != nil {
			t.Fatalf("EncodeOperateL(%v): %v", op, err)
		}
		got = Decode(w)
		if got.Op != op || got.Ra != 1 || got.Lit != 200 || got.Rc != 3 || !got.UseLit {
			t.Errorf("round trip lit %v: got %+v", op, got)
		}
	}
}

func TestEncodeDecodeRoundTripBranch(t *testing.T) {
	ops := []Op{OpBR, OpBSR, OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE, OpBLBC, OpBLBS}
	for _, op := range ops {
		for _, disp := range []int32{0, 1, -1, 1000, -(1 << 20), (1 << 20) - 1} {
			w, err := EncodeBranch(op, 9, disp)
			if err != nil {
				t.Fatalf("EncodeBranch(%v, %d): %v", op, disp, err)
			}
			got := Decode(w)
			if got.Op != op || got.Ra != 9 || got.Disp != disp {
				t.Errorf("round trip %v disp=%d: got %+v", op, disp, got)
			}
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	if _, err := EncodeMem(OpLDQ, 0, 0, 40000); err == nil {
		t.Error("EncodeMem accepted out-of-range displacement")
	}
	if _, err := EncodeBranch(OpBR, 0, 1<<20); err == nil {
		t.Error("EncodeBranch accepted out-of-range displacement")
	}
	if _, err := EncodeMem(OpADDQ, 0, 0, 0); err == nil {
		t.Error("EncodeMem accepted operate op")
	}
	if _, err := EncodeOperateR(OpLDQ, 0, 0, 0); err == nil {
		t.Error("EncodeOperateR accepted memory op")
	}
}

// Property: every word either fails to decode (OpInvalid/OpUnsupported) or
// decodes into an instruction whose fields are within architectural ranges.
func TestDecodeTotalProperty(t *testing.T) {
	f := func(raw uint32) bool {
		inst := Decode(Word(raw))
		if inst.Op == OpInvalid || inst.Op == OpUnsupported {
			return true
		}
		if inst.Ra > 31 || inst.Rb > 31 || inst.Rc > 31 {
			return false
		}
		switch inst.Format {
		case FormatMemory:
			return inst.Disp >= -32768 && inst.Disp <= 32767
		case FormatBranch:
			return inst.Disp >= -(1<<20) && inst.Disp <= (1<<20)-1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: decode(encode(x)) == x for operate instructions over random
// fields.
func TestOperateRoundTripProperty(t *testing.T) {
	ops := []Op{OpADDL, OpADDQ, OpSUBQ, OpAND, OpBIS, OpXOR, OpSLL, OpSRA,
		OpCMPLT, OpCMOVNE, OpMULQ, OpZAP, OpEXTQL, OpMSKBL, OpINSLL}
	f := func(opIdx, ra, rb, rc uint8, lit uint8, useLit bool) bool {
		op := ops[int(opIdx)%len(ops)]
		a, b, c := Reg(ra%32), Reg(rb%32), Reg(rc%32)
		var w Word
		var err error
		if useLit {
			w, err = EncodeOperateL(op, a, lit, c)
		} else {
			w, err = EncodeOperateR(op, a, b, c)
		}
		if err != nil {
			return false
		}
		d := Decode(w)
		if d.Op != op || d.Ra != a || d.Rc != c || d.UseLit != useLit {
			return false
		}
		if useLit {
			return d.Lit == lit
		}
		return d.Rb == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPredicates(t *testing.T) {
	dec := func(w Word) Inst { return Decode(w) }
	mustEnc := func(w Word, err error) Word {
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	ldq := dec(mustEnc(EncodeMem(OpLDQ, 1, 2, 0)))
	if !ldq.IsLoad() || ldq.IsStore() || !ldq.IsMem() || !ldq.MayTrap() {
		t.Errorf("ldq predicates wrong: %+v", ldq)
	}
	if ldq.Dest() != 1 {
		t.Errorf("ldq dest = %v, want r1", ldq.Dest())
	}
	if got := ldq.Sources(nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("ldq sources = %v", got)
	}
	stq := dec(mustEnc(EncodeMem(OpSTQ, 1, 2, 8)))
	if stq.IsLoad() || !stq.IsStore() {
		t.Errorf("stq predicates wrong")
	}
	if got := stq.Sources(nil); len(got) != 2 {
		t.Errorf("stq sources = %v, want [base data]", got)
	}
	if stq.Dest() != RegZero {
		t.Errorf("stq dest = %v, want zero", stq.Dest())
	}
	bne := dec(mustEnc(EncodeBranch(OpBNE, 17, -10)))
	if !bne.IsCondBranch() || !bne.IsBranch() || bne.IsIndirect() {
		t.Errorf("bne predicates wrong")
	}
	if got := bne.BranchTarget(0x1000); got != 0x1000+4-40 {
		t.Errorf("bne target = %#x", got)
	}
	bsr := dec(mustEnc(EncodeBranch(OpBSR, 26, 5)))
	if !bsr.IsCall() || !bsr.IsDirectJump() || bsr.Dest() != RegRA {
		t.Errorf("bsr predicates wrong")
	}
	ret := dec(mustEnc(EncodeJump(OpRET, 31, 26, 0)))
	if !ret.IsReturn() || !ret.IsIndirect() || ret.IsCall() {
		t.Errorf("ret predicates wrong")
	}
	jsr := dec(mustEnc(EncodeJump(OpJSR, 26, 27, 0)))
	if !jsr.IsCall() || jsr.Dest() != RegRA {
		t.Errorf("jsr predicates wrong")
	}
	cmov := dec(mustEnc(EncodeOperateR(OpCMOVEQ, 1, 2, 3)))
	if !cmov.IsCMOV() {
		t.Errorf("cmov predicate wrong")
	}
	if got := cmov.Sources(nil); len(got) != 3 {
		t.Errorf("cmov sources = %v, want 3 (reads dest)", got)
	}
	nop := dec(NOP())
	if !nop.IsNOP() {
		t.Errorf("canonical NOP not recognised")
	}
	// Writes to r31 are NOPs.
	addToZero := dec(mustEnc(EncodeOperateR(OpADDQ, 1, 2, RegZero)))
	if !addToZero.IsNOP() {
		t.Errorf("addq ..,..,zero should be a NOP")
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Op]int{
		OpLDBU: 1, OpSTB: 1, OpLDWU: 2, OpSTW: 2,
		OpLDL: 4, OpSTL: 4, OpLDQ: 8, OpSTQ: 8, OpLDQU: 8,
		OpADDQ: 0, OpBR: 0,
	}
	for op, want := range cases {
		i := Inst{Op: op}
		if got := i.MemBytes(); got != want {
			t.Errorf("MemBytes(%v) = %d, want %d", op, got, want)
		}
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{0: "v0", 1: "t0", 16: "a0", 26: "ra", 30: "sp", 31: "zero"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestDisassembleSmoke(t *testing.T) {
	cases := []struct {
		w    Word
		pc   uint64
		want string
	}{}
	w, _ := EncodeMem(OpLDQ, 1, 30, 16)
	cases = append(cases, struct {
		w    Word
		pc   uint64
		want string
	}{w, 0, "ldq t0, 16(sp)"})
	w, _ = EncodeOperateL(OpADDQ, 1, 8, 2)
	cases = append(cases, struct {
		w    Word
		pc   uint64
		want string
	}{w, 0, "addq t0, #8, t1"})
	w, _ = EncodeBranch(OpBNE, 17, -2)
	cases = append(cases, struct {
		w    Word
		pc   uint64
		want string
	}{w, 0x100, "bne a1, 0xfc"})
	w, _ = EncodeJump(OpRET, 31, 26, 0)
	cases = append(cases, struct {
		w    Word
		pc   uint64
		want string
	}{w, 0, "ret zero, (ra)"})
	for _, c := range cases {
		if got := DisassembleWord(c.w, c.pc); got != c.want {
			t.Errorf("Disassemble(%#x) = %q, want %q", uint32(c.w), got, c.want)
		}
	}
}

func TestOpByName(t *testing.T) {
	op, ok := OpByName("s8addq")
	if !ok || op != OpS8ADDQ {
		t.Errorf("OpByName(s8addq) = %v, %v", op, ok)
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus mnemonic")
	}
	if _, ok := OpByName("<invalid>"); ok {
		t.Error("OpByName accepted <invalid>")
	}
}

// Package alpha implements the Alpha AXP (EV6 integer subset) instruction
// set used as the source (virtual) ISA of the co-designed virtual machine.
//
// The package provides faithful bit-level instruction encodings, a decoder,
// an encoder, and a disassembler. Floating-point opcodes are recognised but
// decode to OpUnsupported; the dynamic binary translator rejects them.
package alpha

import "fmt"

// Reg is an Alpha integer register number in [0,31]. R31 always reads as
// zero and writes to it are discarded.
type Reg uint8

// Architectural register constants following the standard Alpha calling
// convention names.
const (
	RegV0   Reg = 0  // function return value
	RegT0   Reg = 1  // temporaries t0..t7 = r1..r8
	RegS0   Reg = 9  // saved s0..s5 = r9..r14
	RegFP   Reg = 15 // frame pointer (s6)
	RegA0   Reg = 16 // arguments a0..a5 = r16..r21
	RegT8   Reg = 22 // temporaries t8..t11 = r22..r25
	RegRA   Reg = 26 // return address
	RegPV   Reg = 27 // procedure value (t12)
	RegAT   Reg = 28 // assembler temporary
	RegGP   Reg = 29 // global pointer
	RegSP   Reg = 30 // stack pointer
	RegZero Reg = 31 // hardwired zero
)

// NumRegs is the number of architected integer registers.
const NumRegs = 32

var regNames = [NumRegs]string{
	"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
	"t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
	"a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
	"t10", "t11", "ra", "pv", "at", "gp", "sp", "zero",
}

// String returns the conventional software name of the register (v0, t0,
// a0, sp, zero, ...).
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d?", uint8(r))
}

// GoString returns the raw architectural name rN.
func (r Reg) GoString() string { return fmt.Sprintf("r%d", uint8(r)) }

// Word is a raw 32-bit Alpha instruction word.
type Word uint32

// InstBytes is the size in bytes of every Alpha instruction.
const InstBytes = 4

// Format identifies the bit-level layout of an instruction word.
type Format uint8

// Instruction formats defined by the Alpha architecture.
const (
	FormatInvalid Format = iota
	FormatPAL            // CALL_PAL: opcode[31:26] palcode[25:0]
	FormatMemory         // opcode ra rb disp16
	FormatMemJump        // opcode 0x1A: ra rb hint (disp[15:14] selects JMP/JSR/RET/JSR_C)
	FormatMemFunc        // opcode 0x18: ra rb func16 (MB, TRAPB, RPCC, ...)
	FormatBranch         // opcode ra disp21 (longword offsets)
	FormatOperate        // opcode ra {rb|lit} func7 rc
)

// Op identifies a decoded Alpha operation: the primary opcode combined with
// the function code for operate-format instructions.
type Op uint16

// Decoded operations. The order groups operations by semantic class; use
// the Is* predicates on Inst rather than relying on Op ranges.
const (
	OpInvalid Op = iota
	OpUnsupported

	// PAL
	OpCallPAL

	// Memory: address loads
	OpLDA
	OpLDAH

	// Memory: loads
	OpLDBU
	OpLDWU
	OpLDL
	OpLDQ
	OpLDQU
	OpLDLL
	OpLDQL

	// Memory: stores
	OpSTB
	OpSTW
	OpSTL
	OpSTQ
	OpSTQU
	OpSTLC
	OpSTQC

	// Integer arithmetic (opcode 0x10)
	OpADDL
	OpS4ADDL
	OpS8ADDL
	OpSUBL
	OpS4SUBL
	OpS8SUBL
	OpADDQ
	OpS4ADDQ
	OpS8ADDQ
	OpSUBQ
	OpS4SUBQ
	OpS8SUBQ
	OpCMPEQ
	OpCMPLT
	OpCMPLE
	OpCMPULT
	OpCMPULE
	OpCMPBGE

	// Integer logical (opcode 0x11)
	OpAND
	OpBIC
	OpBIS
	OpORNOT
	OpXOR
	OpEQV
	OpCMOVEQ
	OpCMOVNE
	OpCMOVLT
	OpCMOVGE
	OpCMOVLE
	OpCMOVGT
	OpCMOVLBS
	OpCMOVLBC
	OpAMASK   // architecture mask query
	OpIMPLVER // implementation version query

	// Shifts and byte manipulation (opcode 0x12)
	OpSLL
	OpSRL
	OpSRA
	OpEXTBL
	OpEXTWL
	OpEXTLL
	OpEXTQL
	OpEXTWH
	OpEXTLH
	OpEXTQH
	OpINSBL
	OpINSWL
	OpINSLL
	OpINSQL
	OpINSWH
	OpINSLH
	OpINSQH
	OpMSKBL
	OpMSKWL
	OpMSKLL
	OpMSKQL
	OpMSKWH
	OpMSKLH
	OpMSKQH
	OpZAP
	OpZAPNOT

	// Integer multiply (opcode 0x13)
	OpMULL
	OpMULQ
	OpUMULH

	// Miscellaneous (opcode 0x18)
	OpTRAPB
	OpEXCB
	OpMB
	OpWMB
	OpRPCC
	OpFETCH // prefetch hints: no architectural effect
	OpFETCHM
	OpECB
	OpWH64

	// Unconditional branches
	OpBR
	OpBSR

	// Conditional branches
	OpBEQ
	OpBNE
	OpBLT
	OpBLE
	OpBGT
	OpBGE
	OpBLBC
	OpBLBS

	// Register-indirect jumps (opcode 0x1A)
	OpJMP
	OpJSR
	OpRET
	OpJSRCoroutine

	numOps
)

var opNames = map[Op]string{
	OpInvalid: "<invalid>", OpUnsupported: "<unsupported>",
	OpCallPAL: "call_pal",
	OpLDA:     "lda", OpLDAH: "ldah",
	OpLDBU: "ldbu", OpLDWU: "ldwu", OpLDL: "ldl", OpLDQ: "ldq",
	OpLDQU: "ldq_u", OpLDLL: "ldl_l", OpLDQL: "ldq_l",
	OpSTB: "stb", OpSTW: "stw", OpSTL: "stl", OpSTQ: "stq",
	OpSTQU: "stq_u", OpSTLC: "stl_c", OpSTQC: "stq_c",
	OpADDL: "addl", OpS4ADDL: "s4addl", OpS8ADDL: "s8addl",
	OpSUBL: "subl", OpS4SUBL: "s4subl", OpS8SUBL: "s8subl",
	OpADDQ: "addq", OpS4ADDQ: "s4addq", OpS8ADDQ: "s8addq",
	OpSUBQ: "subq", OpS4SUBQ: "s4subq", OpS8SUBQ: "s8subq",
	OpCMPEQ: "cmpeq", OpCMPLT: "cmplt", OpCMPLE: "cmple",
	OpCMPULT: "cmpult", OpCMPULE: "cmpule", OpCMPBGE: "cmpbge",
	OpAND: "and", OpBIC: "bic", OpBIS: "bis", OpORNOT: "ornot",
	OpXOR: "xor", OpEQV: "eqv",
	OpCMOVEQ: "cmoveq", OpCMOVNE: "cmovne", OpCMOVLT: "cmovlt",
	OpCMOVGE: "cmovge", OpCMOVLE: "cmovle", OpCMOVGT: "cmovgt",
	OpCMOVLBS: "cmovlbs", OpCMOVLBC: "cmovlbc",
	OpAMASK: "amask", OpIMPLVER: "implver",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra",
	OpEXTBL: "extbl", OpEXTWL: "extwl", OpEXTLL: "extll", OpEXTQL: "extql",
	OpEXTWH: "extwh", OpEXTLH: "extlh", OpEXTQH: "extqh",
	OpINSBL: "insbl", OpINSWL: "inswl", OpINSLL: "insll", OpINSQL: "insql",
	OpINSWH: "inswh", OpINSLH: "inslh", OpINSQH: "insqh",
	OpMSKBL: "mskbl", OpMSKWL: "mskwl", OpMSKLL: "mskll", OpMSKQL: "mskql",
	OpMSKWH: "mskwh", OpMSKLH: "msklh", OpMSKQH: "mskqh",
	OpZAP: "zap", OpZAPNOT: "zapnot",
	OpMULL: "mull", OpMULQ: "mulq", OpUMULH: "umulh",
	OpTRAPB: "trapb", OpEXCB: "excb", OpMB: "mb", OpWMB: "wmb", OpRPCC: "rpcc",
	OpFETCH: "fetch", OpFETCHM: "fetch_m", OpECB: "ecb", OpWH64: "wh64",
	OpBR: "br", OpBSR: "bsr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBLE: "ble",
	OpBGT: "bgt", OpBGE: "bge", OpBLBC: "blbc", OpBLBS: "blbs",
	OpJMP: "jmp", OpJSR: "jsr", OpRET: "ret", OpJSRCoroutine: "jsr_coroutine",
}

// String returns the assembler mnemonic for the operation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint16(o))
}

// NumOps reports the number of defined operations, for table sizing.
func NumOps() int { return int(numOps) }

// PAL function codes used by this VM's minimal PAL surface.
const (
	PALHalt    = 0x0000 // stop the machine
	PALBpt     = 0x0080 // breakpoint trap
	PALCallSys = 0x0083 // system call: v0 = number, a0.. = args
)

// System call numbers for PALCallSys, loosely modelled on OSF/1.
const (
	SysExit    = 1 // a0 = exit status
	SysPutChar = 2 // a0 = byte to emit on the console
	SysGetTime = 3 // returns a deterministic virtual time in v0
)

// Inst is a decoded Alpha instruction.
type Inst struct {
	Raw    Word   // original instruction word
	Op     Op     // decoded operation
	Format Format // bit-level format
	Ra     Reg    // first register field
	Rb     Reg    // second register field (memory base / operate source)
	Rc     Reg    // operate destination
	Disp   int32  // sign-extended displacement (16-bit memory, 21-bit branch)
	Lit    uint8  // 8-bit literal for operate format
	UseLit bool   // operate format uses Lit instead of Rb
	PALFn  uint32 // PAL function code (FormatPAL)
	Hint   uint16 // jump hint bits (FormatMemJump)
}

// Opcode returns the primary 6-bit opcode of the raw word.
func (w Word) Opcode() uint32 { return uint32(w) >> 26 }

// IsBranch reports whether the instruction transfers control (conditional
// or unconditional, direct or indirect, including PAL calls that trap).
func (i *Inst) IsBranch() bool {
	return i.IsCondBranch() || i.IsDirectJump() || i.IsIndirect() || i.Op == OpCallPAL
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i *Inst) IsCondBranch() bool {
	switch i.Op {
	case OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE, OpBLBC, OpBLBS:
		return true
	}
	return false
}

// IsDirectJump reports whether the instruction is an unconditional direct
// branch (BR or BSR).
func (i *Inst) IsDirectJump() bool { return i.Op == OpBR || i.Op == OpBSR }

// IsIndirect reports whether the instruction is a register-indirect jump.
func (i *Inst) IsIndirect() bool {
	switch i.Op {
	case OpJMP, OpJSR, OpRET, OpJSRCoroutine:
		return true
	}
	return false
}

// IsCall reports whether the instruction saves a return address (BSR or JSR).
func (i *Inst) IsCall() bool { return i.Op == OpBSR || i.Op == OpJSR }

// IsReturn reports whether the instruction is a subroutine return.
func (i *Inst) IsReturn() bool { return i.Op == OpRET }

// IsLoad reports whether the instruction reads memory.
func (i *Inst) IsLoad() bool {
	switch i.Op {
	case OpLDBU, OpLDWU, OpLDL, OpLDQ, OpLDQU, OpLDLL, OpLDQL:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes memory.
func (i *Inst) IsStore() bool {
	switch i.Op {
	case OpSTB, OpSTW, OpSTL, OpSTQ, OpSTQU, OpSTLC, OpSTQC:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses memory.
func (i *Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// IsCMOV reports whether the instruction is a conditional move.
func (i *Inst) IsCMOV() bool {
	switch i.Op {
	case OpCMOVEQ, OpCMOVNE, OpCMOVLT, OpCMOVGE, OpCMOVLE, OpCMOVGT, OpCMOVLBS, OpCMOVLBC:
		return true
	}
	return false
}

// IsNOP reports whether the instruction has no architectural effect. The
// canonical Alpha NOP is "bis r31,r31,r31"; "lda r31, d(rX)" and "ldq_u
// r31, d(rX)" (unop) are also treated as NOPs, as are memory barriers in
// this uniprocessor model.
func (i *Inst) IsNOP() bool {
	switch i.Op {
	case OpMB, OpWMB, OpTRAPB, OpEXCB, OpFETCH, OpFETCHM, OpECB, OpWH64:
		return true
	case OpLDA, OpLDAH, OpLDQU:
		return i.Ra == RegZero
	}
	if i.Format == FormatOperate && i.Rc == RegZero && !i.IsCMOV() {
		return true
	}
	return false
}

// MayTrap reports whether the instruction is a potentially excepting
// instruction (PEI) for the purpose of precise trap recovery: memory
// accesses (alignment / access faults) and PAL calls.
func (i *Inst) MayTrap() bool { return i.IsMem() || i.Op == OpCallPAL }

// BranchTarget returns the target address of a direct branch located at pc.
// It must only be called for conditional branches, BR, and BSR.
func (i *Inst) BranchTarget(pc uint64) uint64 {
	return pc + InstBytes + uint64(int64(i.Disp))*InstBytes
}

// Dests returns the architected destination register of the instruction,
// or RegZero if it produces no register value.
func (i *Inst) Dest() Reg {
	switch i.Format {
	case FormatOperate:
		return i.Rc
	case FormatMemory:
		if i.IsLoad() || i.Op == OpLDA || i.Op == OpLDAH {
			return i.Ra
		}
	case FormatMemJump:
		return i.Ra // JMP/JSR write the return address to Ra
	case FormatBranch:
		if i.Op == OpBSR || i.Op == OpBR {
			return i.Ra
		}
	case FormatMemFunc:
		if i.Op == OpRPCC {
			return i.Ra
		}
	}
	return RegZero
}

// Sources returns the architected source registers of the instruction.
// R31 entries are omitted (reads of R31 are free). The result is at most
// two registers appended to dst.
func (i *Inst) Sources(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RegZero {
			dst = append(dst, r)
		}
	}
	switch i.Format {
	case FormatOperate:
		add(i.Ra)
		if !i.UseLit {
			add(i.Rb)
		}
		if i.IsCMOV() {
			add(i.Rc) // CMOV also reads its destination
		}
	case FormatMemory:
		add(i.Rb) // base
		if i.IsStore() {
			add(i.Ra) // store data
		}
	case FormatMemJump:
		add(i.Rb) // jump target
	case FormatBranch:
		if i.IsCondBranch() {
			add(i.Ra)
		}
	case FormatPAL:
		// The PAL surface reads v0/a0 but those are handled by the VM.
	}
	return dst
}

// MemBytes returns the access width in bytes of a load or store, or 0.
func (i *Inst) MemBytes() int {
	switch i.Op {
	case OpLDBU, OpSTB:
		return 1
	case OpLDWU, OpSTW:
		return 2
	case OpLDL, OpSTL, OpLDLL, OpSTLC:
		return 4
	case OpLDQ, OpSTQ, OpLDQU, OpSTQU, OpLDQL, OpSTQC:
		return 8
	}
	return 0
}

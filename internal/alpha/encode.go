package alpha

import "fmt"

// encInfo records how to encode one operation.
type encInfo struct {
	opcode uint32
	fn     uint32 // function code for operate/misc formats
	format Format
}

var encTable = map[Op]encInfo{}

func init() {
	for opc, op := range memOps {
		encTable[op] = encInfo{opcode: opc, format: FormatMemory}
	}
	for opc, op := range branchOps {
		encTable[op] = encInfo{opcode: opc, format: FormatBranch}
	}
	for opc, table := range operateTables {
		for fn, op := range table {
			encTable[op] = encInfo{opcode: opc, fn: fn, format: FormatOperate}
		}
	}
	for fn, op := range miscOps {
		encTable[op] = encInfo{opcode: opcMISC, fn: fn, format: FormatMemFunc}
	}
	for i, op := range jumpOps {
		encTable[op] = encInfo{opcode: opcJSR, fn: uint32(i), format: FormatMemJump}
	}
	encTable[OpCallPAL] = encInfo{opcode: opcCallPAL, format: FormatPAL}
}

// EncodeMem encodes a memory-format instruction (loads, stores, LDA/LDAH).
// The displacement must fit in 16 signed bits.
func EncodeMem(op Op, ra, rb Reg, disp int32) (Word, error) {
	info, ok := encTable[op]
	if !ok || info.format != FormatMemory {
		return 0, fmt.Errorf("alpha: %v is not a memory-format op", op)
	}
	if disp < -32768 || disp > 32767 {
		return 0, fmt.Errorf("alpha: displacement %d out of 16-bit range for %v", disp, op)
	}
	return Word(info.opcode<<26 | uint32(ra)<<21 | uint32(rb)<<16 | uint32(uint16(disp))), nil
}

// EncodeBranch encodes a branch-format instruction. disp is in instruction
// words (target = pc + 4 + 4*disp) and must fit in 21 signed bits.
func EncodeBranch(op Op, ra Reg, disp int32) (Word, error) {
	info, ok := encTable[op]
	if !ok || info.format != FormatBranch {
		return 0, fmt.Errorf("alpha: %v is not a branch-format op", op)
	}
	if disp < -(1<<20) || disp > (1<<20)-1 {
		return 0, fmt.Errorf("alpha: branch displacement %d out of 21-bit range", disp)
	}
	return Word(info.opcode<<26 | uint32(ra)<<21 | uint32(disp)&0x1FFFFF), nil
}

// EncodeOperateR encodes a register-form operate instruction rc = ra op rb.
func EncodeOperateR(op Op, ra, rb, rc Reg) (Word, error) {
	info, ok := encTable[op]
	if !ok || info.format != FormatOperate {
		return 0, fmt.Errorf("alpha: %v is not an operate-format op", op)
	}
	return Word(info.opcode<<26 | uint32(ra)<<21 | uint32(rb)<<16 | info.fn<<5 | uint32(rc)), nil
}

// EncodeOperateL encodes a literal-form operate instruction rc = ra op #lit.
func EncodeOperateL(op Op, ra Reg, lit uint8, rc Reg) (Word, error) {
	info, ok := encTable[op]
	if !ok || info.format != FormatOperate {
		return 0, fmt.Errorf("alpha: %v is not an operate-format op", op)
	}
	return Word(info.opcode<<26 | uint32(ra)<<21 | uint32(lit)<<13 | 1<<12 | info.fn<<5 | uint32(rc)), nil
}

// EncodeJump encodes a register-indirect jump (JMP/JSR/RET/JSR_COROUTINE).
// hint is the 14-bit branch-prediction hint field.
func EncodeJump(op Op, ra, rb Reg, hint uint16) (Word, error) {
	info, ok := encTable[op]
	if !ok || info.format != FormatMemJump {
		return 0, fmt.Errorf("alpha: %v is not a jump-format op", op)
	}
	return Word(info.opcode<<26 | uint32(ra)<<21 | uint32(rb)<<16 | info.fn<<14 | uint32(hint)&0x3FFF), nil
}

// EncodePAL encodes a CALL_PAL instruction with the given function code.
func EncodePAL(fn uint32) (Word, error) {
	if fn > 0x03FFFFFF {
		return 0, fmt.Errorf("alpha: PAL function %#x out of range", fn)
	}
	return Word(uint32(opcCallPAL)<<26 | fn), nil
}

// EncodeMisc encodes an opcode-0x18 miscellaneous instruction (MB, TRAPB,
// RPCC, ...). ra is used only by RPCC.
func EncodeMisc(op Op, ra Reg) (Word, error) {
	info, ok := encTable[op]
	if !ok || info.format != FormatMemFunc {
		return 0, fmt.Errorf("alpha: %v is not a misc-format op", op)
	}
	return Word(info.opcode<<26 | uint32(ra)<<21 | uint32(RegZero)<<16 | info.fn), nil
}

// Encode re-encodes a decoded instruction into its canonical word,
// dispatching on the operation's format. Encode(Decode(w)) is the
// canonical spelling of w: it may differ from w in must-be-zero bits
// (operate-format SBZ bits, the misc-format Rb field), but always decodes
// to the same instruction and re-encodes to itself.
func Encode(inst Inst) (Word, error) {
	info, ok := encTable[inst.Op]
	if !ok {
		return 0, fmt.Errorf("alpha: %v has no encoding", inst.Op)
	}
	switch info.format {
	case FormatMemory:
		return EncodeMem(inst.Op, inst.Ra, inst.Rb, inst.Disp)
	case FormatBranch:
		return EncodeBranch(inst.Op, inst.Ra, inst.Disp)
	case FormatOperate:
		if inst.UseLit {
			return EncodeOperateL(inst.Op, inst.Ra, inst.Lit, inst.Rc)
		}
		return EncodeOperateR(inst.Op, inst.Ra, inst.Rb, inst.Rc)
	case FormatMemJump:
		return EncodeJump(inst.Op, inst.Ra, inst.Rb, inst.Hint)
	case FormatMemFunc:
		return EncodeMisc(inst.Op, inst.Ra)
	case FormatPAL:
		return EncodePAL(inst.PALFn)
	}
	return 0, fmt.Errorf("alpha: %v has no encodable format", inst.Op)
}

// NOP returns the canonical Alpha no-op encoding (bis zero,zero,zero).
func NOP() Word {
	w, err := EncodeOperateR(OpBIS, RegZero, RegZero, RegZero)
	if err != nil {
		panic(err)
	}
	return w
}

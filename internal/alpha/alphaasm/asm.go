// Package alphaasm implements a two-pass text assembler for the Alpha
// integer subset defined in package alpha. It exists so that test programs
// and synthetic workloads can be written as readable assembly rather than
// hand-encoded words.
//
// Syntax overview:
//
//	.text 0x120000000      ; switch to code emission at an address
//	.data 0x140000000      ; switch to data emission
//	.align 8
//	.quad 1, 2, label      ; 64/32/16/8-bit data
//	.space 64              ; zero fill
//	.entry start           ; program entry point
//
//	start:
//	    ldiq  a0, 4096         ; pseudo: 32-bit immediate (ldah+lda pair)
//	    lda   t0, 8(sp)
//	    ldq   t1, 0(t0)
//	    addq  t1, #1, t1       ; '#' literal or bare integer
//	    beq   t1, done
//	    jsr   (pv)
//	    ret
//	done:
//	    call_pal halt
//
// Registers accept conventional names (v0,t0..,a0..,ra,sp,zero,...) or rN.
package alphaasm

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alphaprog"
)

// Program is an assembled memory image plus entry point.
type Program = alphaprog.Program

// Segment is a contiguous run of initialised bytes.
type Segment = alphaprog.Segment

// Error describes an assembly failure with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section struct {
	addr uint64 // current emission address
	data []byte
	base uint64
}

type assembler struct {
	labels   map[string]uint64
	sections []*section
	cur      *section
	entry    string
	entrySet bool
	pass     int
	line     int
	err      error
}

// Assemble assembles the given source text.
func Assemble(src string) (*Program, error) {
	a := &assembler{labels: map[string]uint64{}}
	// Pass 1 computes label addresses; pass 2 emits bytes.
	for pass := 1; pass <= 2; pass++ {
		a.pass = pass
		a.sections = nil
		a.cur = nil
		for lineNo, raw := range strings.Split(src, "\n") {
			a.line = lineNo + 1
			if err := a.doLine(raw); err != nil {
				return nil, err
			}
		}
	}
	prog := &Program{}
	if a.entrySet {
		addr, ok := a.labels[a.entry]
		if !ok {
			return nil, fmt.Errorf("asm: undefined entry label %q", a.entry)
		}
		prog.Entry = addr
	} else if addr, ok := a.labels["start"]; ok {
		prog.Entry = addr
	} else if len(a.sections) > 0 {
		prog.Entry = a.sections[0].base
	}
	for _, s := range a.sections {
		if len(s.data) > 0 {
			prog.Segments = append(prog.Segments, Segment{Addr: s.base, Data: s.data})
		}
	}
	if !prog.Normalize() {
		return nil, fmt.Errorf("asm: overlapping segments")
	}
	return prog, nil
}

// MustAssemble is Assemble that panics on error, for tests and examples.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errorf(format string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) newSection(addr uint64) {
	s := &section{addr: addr, base: addr}
	a.sections = append(a.sections, s)
	a.cur = s
}

func (a *assembler) here() (uint64, error) {
	if a.cur == nil {
		return 0, a.errorf("no .text/.data section active")
	}
	return a.cur.addr, nil
}

func (a *assembler) emitBytes(b []byte) {
	if a.pass == 2 {
		a.cur.data = append(a.cur.data, b...)
	}
	a.cur.addr += uint64(len(b))
}

func (a *assembler) emitWord(w alpha.Word) {
	a.emitBytes([]byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)})
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ';', '#':
			// '#' only starts a comment at the beginning of a token position
			// if not an immediate: immediates are always preceded by space
			// and followed by a digit or '-'. Keep it simple: ';' and "//"
			// are comments; '#' is a comment only at line start.
			if s[i] == ';' && !inStr {
				return s[:i]
			}
		case '/':
			if !inStr && i+1 < len(s) && s[i+1] == '/' {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) doLine(raw string) error {
	line := strings.TrimSpace(stripComment(raw))
	if line == "" {
		return nil
	}
	// Labels (possibly several on one line).
	for {
		idx := strings.Index(line, ":")
		if idx < 0 {
			break
		}
		name := strings.TrimSpace(line[:idx])
		if !isIdent(name) {
			break
		}
		here, err := a.here()
		if err != nil {
			return err
		}
		if a.pass == 1 {
			if _, dup := a.labels[name]; dup {
				return a.errorf("duplicate label %q", name)
			}
			a.labels[name] = here
		}
		line = strings.TrimSpace(line[idx+1:])
		if line == "" {
			return nil
		}
	}
	if strings.HasPrefix(line, ".") {
		return a.doDirective(line)
	}
	return a.doInstruction(line)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.' || c == '$':
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitFields(s string) (string, []string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, nil
	}
	mnemonic := s[:i]
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return mnemonic, nil
	}
	parts := strings.Split(rest, ",")
	for j := range parts {
		parts[j] = strings.TrimSpace(parts[j])
	}
	return mnemonic, parts
}

func (a *assembler) doDirective(line string) error {
	dir, args := splitFields(line)
	switch dir {
	case ".text", ".data", ".org":
		if len(args) != 1 {
			return a.errorf("%s requires an address argument", dir)
		}
		v, err := a.evalExpr(args[0])
		if err != nil {
			return err
		}
		a.newSection(uint64(v))
		return nil
	case ".entry":
		if len(args) != 1 || !isIdent(args[0]) {
			return a.errorf(".entry requires a label")
		}
		a.entry = args[0]
		a.entrySet = true
		return nil
	case ".align":
		if len(args) != 1 {
			return a.errorf(".align requires an argument")
		}
		n, err := a.evalExpr(args[0])
		if err != nil {
			return err
		}
		if n <= 0 || n&(n-1) != 0 {
			return a.errorf(".align %d: not a power of two", n)
		}
		here, err := a.here()
		if err != nil {
			return err
		}
		pad := (uint64(n) - here%uint64(n)) % uint64(n)
		a.emitBytes(make([]byte, pad))
		return nil
	case ".quad", ".long", ".word", ".byte":
		size := map[string]int{".quad": 8, ".long": 4, ".word": 2, ".byte": 1}[dir]
		if _, err := a.here(); err != nil {
			return err
		}
		for _, arg := range args {
			v, err := a.evalExpr(arg)
			if err != nil {
				return err
			}
			buf := make([]byte, size)
			for i := 0; i < size; i++ {
				buf[i] = byte(uint64(v) >> (8 * i))
			}
			a.emitBytes(buf)
		}
		return nil
	case ".space":
		if len(args) < 1 || len(args) > 2 {
			return a.errorf(".space requires size [, fill]")
		}
		n, err := a.evalExpr(args[0])
		if err != nil {
			return err
		}
		if n < 0 {
			return a.errorf(".space size must be non-negative")
		}
		fill := byte(0)
		if len(args) == 2 {
			f, err := a.evalExpr(args[1])
			if err != nil {
				return err
			}
			fill = byte(f)
		}
		if _, err := a.here(); err != nil {
			return err
		}
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = fill
		}
		a.emitBytes(buf)
		return nil
	case ".ascii", ".asciz":
		rest := strings.TrimSpace(strings.TrimPrefix(line, dir))
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errorf("%s: bad string literal %s", dir, rest)
		}
		if _, err := a.here(); err != nil {
			return err
		}
		b := []byte(s)
		if dir == ".asciz" {
			b = append(b, 0)
		}
		a.emitBytes(b)
		return nil
	}
	return a.errorf("unknown directive %s", dir)
}

// evalExpr evaluates an integer expression: numbers, labels, '.', unary -,
// and left-to-right + and - chains.
func (a *assembler) evalExpr(s string) (int64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "#")
	if s == "" {
		return 0, a.errorf("empty expression")
	}
	// Tokenize into terms separated by +/- (respecting a leading sign).
	total := int64(0)
	sign := int64(1)
	term := strings.Builder{}
	flush := func() error {
		t := strings.TrimSpace(term.String())
		term.Reset()
		if t == "" {
			return a.errorf("malformed expression %q", s)
		}
		v, err := a.evalTerm(t)
		if err != nil {
			return err
		}
		total += sign * v
		return nil
	}
	started := false
	for _, c := range s {
		switch c {
		case '+', '-':
			if !started && term.Len() == 0 {
				if c == '-' {
					sign = -sign
				}
				continue
			}
			if term.Len() == 0 {
				if c == '-' {
					sign = -sign
				}
				continue
			}
			if err := flush(); err != nil {
				return 0, err
			}
			sign = 1
			if c == '-' {
				sign = -1
			}
		default:
			started = true
			term.WriteRune(c)
		}
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return total, nil
}

func (a *assembler) evalTerm(t string) (int64, error) {
	if t == "." {
		h, err := a.here()
		return int64(h), err
	}
	if v, err := strconv.ParseInt(t, 0, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseUint(t, 0, 64); err == nil {
		return int64(v), nil
	}
	if isIdent(t) {
		if v, ok := a.labels[t]; ok {
			return int64(v), nil
		}
		if a.pass == 1 {
			return 0, nil // forward reference; resolved in pass 2
		}
		return 0, a.errorf("undefined symbol %q", t)
	}
	return 0, a.errorf("cannot evaluate %q", t)
}

var regByName = func() map[string]alpha.Reg {
	m := map[string]alpha.Reg{}
	for r := 0; r < alpha.NumRegs; r++ {
		reg := alpha.Reg(r)
		m[reg.String()] = reg
		m[fmt.Sprintf("r%d", r)] = reg
	}
	m["s6"] = alpha.RegFP
	m["t12"] = alpha.RegPV
	return m
}()

func (a *assembler) parseReg(s string) (alpha.Reg, error) {
	r, ok := regByName[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, a.errorf("bad register %q", s)
	}
	return r, nil
}

// parseMemOperand parses "disp(rb)" / "(rb)" / "disp".
func (a *assembler) parseMemOperand(s string) (int64, alpha.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 {
		v, err := a.evalExpr(s)
		return v, alpha.RegZero, err
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, a.errorf("malformed memory operand %q", s)
	}
	reg, err := a.parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr == "" {
		return 0, reg, nil
	}
	v, err := a.evalExpr(dispStr)
	return v, reg, err
}

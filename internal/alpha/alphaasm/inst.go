package alphaasm

import (
	"strings"

	"github.com/ildp/accdbt/internal/alpha"
)

// doInstruction assembles one instruction line (mnemonic already known not
// to be a directive or label).
func (a *assembler) doInstruction(line string) error {
	if _, err := a.here(); err != nil {
		return err
	}
	mnemonic, args := splitFields(line)
	mnemonic = strings.ToLower(mnemonic)

	// Pseudo-instructions first.
	switch mnemonic {
	case "nop":
		a.emitWord(alpha.NOP())
		return nil
	case "unop":
		w, err := alpha.EncodeMem(alpha.OpLDQU, alpha.RegZero, alpha.RegZero, 0)
		if err != nil {
			return a.errorf("%v", err)
		}
		a.emitWord(w)
		return nil
	case "clr":
		if len(args) != 1 {
			return a.errorf("clr requires one register")
		}
		rd, err := a.parseReg(args[0])
		if err != nil {
			return err
		}
		w, err := alpha.EncodeOperateR(alpha.OpBIS, alpha.RegZero, alpha.RegZero, rd)
		if err != nil {
			return a.errorf("%v", err)
		}
		a.emitWord(w)
		return nil
	case "mov":
		if len(args) != 2 {
			return a.errorf("mov requires src, dst")
		}
		rd, err := a.parseReg(args[1])
		if err != nil {
			return err
		}
		if rs, err2 := a.parseReg(args[0]); err2 == nil {
			w, err := alpha.EncodeOperateR(alpha.OpBIS, rs, rs, rd)
			if err != nil {
				return a.errorf("%v", err)
			}
			a.emitWord(w)
			return nil
		}
		v, err := a.evalExpr(args[0])
		if err != nil {
			return err
		}
		if v >= 0 && v <= 255 {
			w, err := alpha.EncodeOperateL(alpha.OpBIS, alpha.RegZero, uint8(v), rd)
			if err != nil {
				return a.errorf("%v", err)
			}
			a.emitWord(w)
			return nil
		}
		if v >= -32768 && v <= 32767 {
			w, err := alpha.EncodeMem(alpha.OpLDA, rd, alpha.RegZero, int32(v))
			if err != nil {
				return a.errorf("%v", err)
			}
			a.emitWord(w)
			return nil
		}
		return a.errorf("mov immediate %d out of range; use ldiq", v)
	case "ldiq", "ldil":
		// Fixed two-instruction 32-bit immediate: ldah rd, hi(zero);
		// lda rd, lo(rd). Emitted unconditionally so pass-1 sizing is
		// stable even with forward label references.
		if len(args) != 2 {
			return a.errorf("%s requires rd, imm", mnemonic)
		}
		rd, err := a.parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := a.evalExpr(args[1])
		if err != nil {
			return err
		}
		lo := int64(int16(v))
		hi := (v - lo) >> 16
		if a.pass == 2 && (hi < -32768 || hi > 32767) {
			return a.errorf("%s immediate %#x out of 32-bit range", mnemonic, v)
		}
		wh, err := alpha.EncodeMem(alpha.OpLDAH, rd, alpha.RegZero, int32(int16(hi)))
		if err != nil {
			return a.errorf("%v", err)
		}
		wl, err := alpha.EncodeMem(alpha.OpLDA, rd, rd, int32(lo))
		if err != nil {
			return a.errorf("%v", err)
		}
		a.emitWord(wh)
		a.emitWord(wl)
		return nil
	case "negq":
		if len(args) != 2 {
			return a.errorf("negq requires rs, rd")
		}
		rs, err := a.parseReg(args[0])
		if err != nil {
			return err
		}
		rd, err := a.parseReg(args[1])
		if err != nil {
			return err
		}
		w, err := alpha.EncodeOperateR(alpha.OpSUBQ, alpha.RegZero, rs, rd)
		if err != nil {
			return a.errorf("%v", err)
		}
		a.emitWord(w)
		return nil
	case "not":
		if len(args) != 2 {
			return a.errorf("not requires rs, rd")
		}
		rs, err := a.parseReg(args[0])
		if err != nil {
			return err
		}
		rd, err := a.parseReg(args[1])
		if err != nil {
			return err
		}
		w, err := alpha.EncodeOperateR(alpha.OpORNOT, alpha.RegZero, rs, rd)
		if err != nil {
			return a.errorf("%v", err)
		}
		a.emitWord(w)
		return nil
	case "call_pal":
		return a.asmCallPAL(args)
	case "halt":
		return a.asmCallPAL([]string{"halt"})
	}

	op, ok := alpha.OpByName(mnemonic)
	if !ok {
		return a.errorf("unknown mnemonic %q", mnemonic)
	}
	switch alpha.EncodingFormat(op) {
	case alpha.FormatMemory:
		return a.asmMemory(op, args)
	case alpha.FormatBranch:
		return a.asmBranch(op, args)
	case alpha.FormatOperate:
		return a.asmOperate(op, args)
	case alpha.FormatMemJump:
		return a.asmJump(op, args)
	case alpha.FormatMemFunc:
		return a.asmMisc(op, args)
	}
	return a.errorf("cannot assemble %q", mnemonic)
}

func (a *assembler) asmCallPAL(args []string) error {
	if len(args) != 1 {
		return a.errorf("call_pal requires a function")
	}
	var fn uint32
	switch strings.ToLower(args[0]) {
	case "halt":
		fn = alpha.PALHalt
	case "bpt":
		fn = alpha.PALBpt
	case "callsys":
		fn = alpha.PALCallSys
	default:
		v, err := a.evalExpr(args[0])
		if err != nil {
			return err
		}
		fn = uint32(v)
	}
	w, err := alpha.EncodePAL(fn)
	if err != nil {
		return a.errorf("%v", err)
	}
	a.emitWord(w)
	return nil
}

func (a *assembler) asmMemory(op alpha.Op, args []string) error {
	if len(args) != 2 {
		return a.errorf("%v requires ra, disp(rb)", op)
	}
	ra, err := a.parseReg(args[0])
	if err != nil {
		return err
	}
	disp, rb, err := a.parseMemOperand(args[1])
	if err != nil {
		return err
	}
	if a.pass == 1 {
		disp = 0 // forward labels may be unresolved; size is fixed anyway
	}
	if disp < -32768 || disp > 32767 {
		return a.errorf("%v displacement %d out of range", op, disp)
	}
	w, err := alpha.EncodeMem(op, ra, rb, int32(disp))
	if err != nil {
		return a.errorf("%v", err)
	}
	a.emitWord(w)
	return nil
}

func (a *assembler) asmBranch(op alpha.Op, args []string) error {
	var ra alpha.Reg
	var targetExpr string
	switch {
	case len(args) == 1 && (op == alpha.OpBR || op == alpha.OpBSR):
		// br label / bsr label: BR discards, BSR saves to ra.
		ra = alpha.RegZero
		if op == alpha.OpBSR {
			ra = alpha.RegRA
		}
		targetExpr = args[0]
	case len(args) == 2:
		r, err := a.parseReg(args[0])
		if err != nil {
			return err
		}
		ra = r
		targetExpr = args[1]
	default:
		return a.errorf("%v requires [ra,] target", op)
	}
	target, err := a.evalExpr(targetExpr)
	if err != nil {
		return err
	}
	here, err := a.here()
	if err != nil {
		return err
	}
	disp := (target - int64(here) - alpha.InstBytes) / alpha.InstBytes
	if a.pass == 1 {
		disp = 0
	} else if (target-int64(here)-alpha.InstBytes)%alpha.InstBytes != 0 {
		return a.errorf("%v target %#x not instruction-aligned", op, target)
	}
	w, err := alpha.EncodeBranch(op, ra, int32(disp))
	if err != nil {
		return a.errorf("%v", err)
	}
	a.emitWord(w)
	return nil
}

func (a *assembler) asmOperate(op alpha.Op, args []string) error {
	if len(args) != 3 {
		return a.errorf("%v requires ra, rb|#lit, rc", op)
	}
	ra, err := a.parseReg(args[0])
	if err != nil {
		return err
	}
	rc, err := a.parseReg(args[2])
	if err != nil {
		return err
	}
	if rb, err2 := a.parseReg(args[1]); err2 == nil && !strings.HasPrefix(strings.TrimSpace(args[1]), "#") {
		w, err := alpha.EncodeOperateR(op, ra, rb, rc)
		if err != nil {
			return a.errorf("%v", err)
		}
		a.emitWord(w)
		return nil
	}
	v, err := a.evalExpr(args[1])
	if err != nil {
		return err
	}
	if v < 0 || v > 255 {
		return a.errorf("%v literal %d out of 8-bit range", op, v)
	}
	w, err := alpha.EncodeOperateL(op, ra, uint8(v), rc)
	if err != nil {
		return a.errorf("%v", err)
	}
	a.emitWord(w)
	return nil
}

func (a *assembler) asmJump(op alpha.Op, args []string) error {
	var ra, rb alpha.Reg
	switch {
	case len(args) == 0 && op == alpha.OpRET:
		ra, rb = alpha.RegZero, alpha.RegRA
	case len(args) == 1:
		r, err := a.parseRegOrParen(args[0])
		if err != nil {
			return err
		}
		rb = r
		switch op {
		case alpha.OpJSR, alpha.OpJSRCoroutine:
			ra = alpha.RegRA
		default:
			ra = alpha.RegZero
		}
	case len(args) == 2:
		r1, err := a.parseReg(args[0])
		if err != nil {
			return err
		}
		r2, err := a.parseRegOrParen(args[1])
		if err != nil {
			return err
		}
		ra, rb = r1, r2
	default:
		return a.errorf("%v requires [ra,] (rb)", op)
	}
	w, err := alpha.EncodeJump(op, ra, rb, 0)
	if err != nil {
		return a.errorf("%v", err)
	}
	a.emitWord(w)
	return nil
}

func (a *assembler) parseRegOrParen(s string) (alpha.Reg, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		s = s[1 : len(s)-1]
	}
	return a.parseReg(s)
}

func (a *assembler) asmMisc(op alpha.Op, args []string) error {
	ra := alpha.RegZero
	if op == alpha.OpRPCC {
		if len(args) != 1 {
			return a.errorf("rpcc requires a destination register")
		}
		r, err := a.parseReg(args[0])
		if err != nil {
			return err
		}
		ra = r
	} else if len(args) != 0 {
		return a.errorf("%v takes no operands", op)
	}
	w, err := alpha.EncodeMisc(op, ra)
	if err != nil {
		return a.errorf("%v", err)
	}
	a.emitWord(w)
	return nil
}

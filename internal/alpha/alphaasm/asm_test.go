package alphaasm

import (
	"strings"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
)

// wordsOf extracts the code words of the segment containing addr.
func wordsOf(t *testing.T, p *Program, addr uint64) []alpha.Word {
	t.Helper()
	for _, s := range p.Segments {
		if s.Addr <= addr && addr < s.Addr+uint64(len(s.Data)) {
			var words []alpha.Word
			for i := 0; i+4 <= len(s.Data); i += 4 {
				w := alpha.Word(uint32(s.Data[i]) | uint32(s.Data[i+1])<<8 |
					uint32(s.Data[i+2])<<16 | uint32(s.Data[i+3])<<24)
				words = append(words, w)
			}
			return words
		}
	}
	t.Fatalf("no segment contains %#x", addr)
	return nil
}

func TestAssembleBasicProgram(t *testing.T) {
	prog, err := Assemble(`
	.text 0x10000
start:
	lda   a0, 100(zero)
loop:
	subq  a0, #1, a0
	bne   a0, loop
	call_pal halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != 0x10000 {
		t.Errorf("entry = %#x, want 0x10000", prog.Entry)
	}
	words := wordsOf(t, prog, 0x10000)
	if len(words) != 4 {
		t.Fatalf("got %d words, want 4", len(words))
	}
	i0 := alpha.Decode(words[0])
	if i0.Op != alpha.OpLDA || i0.Ra != alpha.RegA0 || i0.Disp != 100 {
		t.Errorf("word0 = %+v", i0)
	}
	i1 := alpha.Decode(words[1])
	if i1.Op != alpha.OpSUBQ || !i1.UseLit || i1.Lit != 1 {
		t.Errorf("word1 = %+v", i1)
	}
	i2 := alpha.Decode(words[2])
	if i2.Op != alpha.OpBNE || i2.Ra != alpha.RegA0 {
		t.Errorf("word2 = %+v", i2)
	}
	// bne at 0x10008 targeting loop at 0x10004: disp = (0x10004-0x1000C)/4 = -2
	if i2.Disp != -2 {
		t.Errorf("bne disp = %d, want -2", i2.Disp)
	}
	i3 := alpha.Decode(words[3])
	if i3.Op != alpha.OpCallPAL || i3.PALFn != alpha.PALHalt {
		t.Errorf("word3 = %+v", i3)
	}
}

func TestForwardReferences(t *testing.T) {
	prog, err := Assemble(`
	.text 0x1000
	beq v0, fwd
	nop
fwd:
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	words := wordsOf(t, prog, 0x1000)
	beq := alpha.Decode(words[0])
	if beq.Disp != 1 { // skips the nop
		t.Errorf("forward beq disp = %d, want 1", beq.Disp)
	}
	ret := alpha.Decode(words[2])
	if ret.Op != alpha.OpRET || ret.Rb != alpha.RegRA {
		t.Errorf("bare ret = %+v", ret)
	}
}

func TestDataDirectives(t *testing.T) {
	prog, err := Assemble(`
	.data 0x2000
tbl:
	.quad 0x1122334455667788
	.long 0xAABBCCDD
	.word 0x0102
	.byte 0xFF, 1
	.align 8
	.quad tbl
	.asciz "hi"
	.space 3, 0xEE
	.text 0x1000
start:
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	var data []byte
	for _, s := range prog.Segments {
		if s.Addr == 0x2000 {
			data = s.Data
		}
	}
	if data == nil {
		t.Fatal("no data segment")
	}
	// little-endian quad
	if data[0] != 0x88 || data[7] != 0x11 {
		t.Errorf("quad bytes = % x", data[:8])
	}
	if data[8] != 0xDD || data[11] != 0xAA {
		t.Errorf("long bytes = % x", data[8:12])
	}
	if data[12] != 0x02 || data[13] != 0x01 {
		t.Errorf("word bytes = % x", data[12:14])
	}
	if data[14] != 0xFF || data[15] != 1 {
		t.Errorf("byte values = % x", data[14:16])
	}
	// .align 8 pads to offset 16 (already aligned), then .quad tbl
	if data[16] != 0x00 || data[17] != 0x20 {
		t.Errorf(".quad tbl = % x, want le(0x2000)", data[16:24])
	}
	if string(data[24:26]) != "hi" || data[26] != 0 {
		t.Errorf("asciz = % x", data[24:27])
	}
	if data[27] != 0xEE || data[29] != 0xEE {
		t.Errorf("space fill = % x", data[27:30])
	}
}

func TestLdiqExpansion(t *testing.T) {
	prog, err := Assemble(`
	.text 0x1000
	ldiq t0, 0x12345678
	call_pal halt
`)
	if err != nil {
		t.Fatal(err)
	}
	words := wordsOf(t, prog, 0x1000)
	ldah := alpha.Decode(words[0])
	lda := alpha.Decode(words[1])
	if ldah.Op != alpha.OpLDAH || lda.Op != alpha.OpLDA {
		t.Fatalf("ldiq expanded to %v, %v", ldah.Op, lda.Op)
	}
	// Reconstruct: value = (hi<<16) + signext(lo)
	got := int64(ldah.Disp)<<16 + int64(lda.Disp)
	if got != 0x12345678 {
		t.Errorf("ldiq reconstructs to %#x, want 0x12345678", got)
	}
}

func TestLdiqNegative(t *testing.T) {
	prog := MustAssemble(`
	.text 0x1000
	ldiq t0, -123456
`)
	words := wordsOf(t, prog, 0x1000)
	ldah := alpha.Decode(words[0])
	lda := alpha.Decode(words[1])
	got := int64(ldah.Disp)<<16 + int64(lda.Disp)
	if got != -123456 {
		t.Errorf("ldiq reconstructs to %d, want -123456", got)
	}
}

func TestPseudoOps(t *testing.T) {
	prog := MustAssemble(`
	.text 0x1000
	mov  t0, t1
	mov  42, t2
	mov  1000, t3
	clr  t4
	negq t0, t5
	not  t0, t6
	unop
`)
	words := wordsOf(t, prog, 0x1000)
	i := alpha.Decode(words[0])
	if i.Op != alpha.OpBIS || i.Ra != 1 || i.Rb != 1 || i.Rc != 2 {
		t.Errorf("mov reg = %+v", i)
	}
	i = alpha.Decode(words[1])
	if i.Op != alpha.OpBIS || !i.UseLit || i.Lit != 42 || i.Rc != 3 {
		t.Errorf("mov lit = %+v", i)
	}
	i = alpha.Decode(words[2])
	if i.Op != alpha.OpLDA || i.Disp != 1000 || i.Ra != 4 {
		t.Errorf("mov 1000 = %+v", i)
	}
	i = alpha.Decode(words[3])
	if i.Op != alpha.OpBIS || i.Ra != alpha.RegZero || i.Rc != 5 {
		t.Errorf("clr = %+v", i)
	}
	i = alpha.Decode(words[4])
	if i.Op != alpha.OpSUBQ || i.Ra != alpha.RegZero || i.Rb != 1 || i.Rc != 6 {
		t.Errorf("negq = %+v", i)
	}
	i = alpha.Decode(words[5])
	if i.Op != alpha.OpORNOT || i.Ra != alpha.RegZero {
		t.Errorf("not = %+v", i)
	}
	i = alpha.Decode(words[6])
	if !i.IsNOP() {
		t.Errorf("unop = %+v not a NOP", i)
	}
}

func TestJumpForms(t *testing.T) {
	prog := MustAssemble(`
	.text 0x1000
	jsr (pv)
	jmp (t0)
	ret
	ret zero, (ra)
	jsr ra, (pv)
`)
	words := wordsOf(t, prog, 0x1000)
	jsr := alpha.Decode(words[0])
	if jsr.Op != alpha.OpJSR || jsr.Ra != alpha.RegRA || jsr.Rb != alpha.RegPV {
		t.Errorf("jsr (pv) = %+v", jsr)
	}
	jmp := alpha.Decode(words[1])
	if jmp.Op != alpha.OpJMP || jmp.Ra != alpha.RegZero || jmp.Rb != 1 {
		t.Errorf("jmp (t0) = %+v", jmp)
	}
	for _, i := range []int{2, 3} {
		ret := alpha.Decode(words[i])
		if ret.Op != alpha.OpRET || ret.Rb != alpha.RegRA {
			t.Errorf("ret[%d] = %+v", i, ret)
		}
	}
}

func TestBsrForms(t *testing.T) {
	prog := MustAssemble(`
	.text 0x1000
	bsr  sub
	br   over
sub:
	ret
over:
	call_pal halt
`)
	words := wordsOf(t, prog, 0x1000)
	bsr := alpha.Decode(words[0])
	if bsr.Op != alpha.OpBSR || bsr.Ra != alpha.RegRA || bsr.Disp != 1 {
		t.Errorf("bsr = %+v", bsr)
	}
	br := alpha.Decode(words[1])
	if br.Op != alpha.OpBR || br.Ra != alpha.RegZero || br.Disp != 1 {
		t.Errorf("br = %+v", br)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no-section", "nop", "no .text"},
		{"bad-mnemonic", ".text 0\n frobnicate t0", "unknown mnemonic"},
		{"bad-reg", ".text 0\n addq q9, t0, t1", "bad register"},
		{"dup-label", ".text 0\nx:\nx:\n nop", "duplicate label"},
		{"undef-symbol", ".text 0\n br nowhere", "undefined symbol"},
		{"lit-range", ".text 0\n addq t0, #300, t1", "out of 8-bit range"},
		{"bad-align", ".text 0\n .align 3", "not a power of two"},
		{"overlap", ".text 0x100\n nop\n .text 0x100\n nop", "overlapping"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error = %q, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestEntryDirective(t *testing.T) {
	prog := MustAssemble(`
	.entry main
	.text 0x1000
helper:
	ret
main:
	call_pal halt
`)
	if prog.Entry != 0x1004 {
		t.Errorf("entry = %#x, want 0x1004", prog.Entry)
	}
}

func TestComments(t *testing.T) {
	prog := MustAssemble(`
	.text 0x1000        ; section comment
	nop                 // line comment
	nop ; trailing
`)
	if got := len(wordsOf(t, prog, 0x1000)); got != 2 {
		t.Errorf("got %d words, want 2", got)
	}
}

func TestTotalBytes(t *testing.T) {
	prog := MustAssemble(`
	.text 0x1000
	nop
	nop
	.data 0x2000
	.quad 1
`)
	if got := prog.TotalBytes(); got != 16 {
		t.Errorf("TotalBytes = %d, want 16", got)
	}
}

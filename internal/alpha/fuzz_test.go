package alpha

import "testing"

// FuzzDecode drives arbitrary 32-bit words through the decoder and, for
// every word that decodes to an implemented operation, requires the
// general re-encoder to produce a canonical word: it must decode back to
// the identical instruction (modulo must-be-zero bits the decoder
// ignores) and re-encode to itself as a fixed point. Words that decode to
// OpInvalid or OpUnsupported must be rejected by the encoder.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Add(uint32(NOP()))
	add := func(w Word, err error) {
		if err != nil {
			f.Fatal(err)
		}
		f.Add(uint32(w))
	}
	add(EncodeMem(OpLDQ, 3, 17, -8))
	add(EncodeBranch(OpBNE, 5, -100))
	add(EncodeOperateR(OpADDQ, 1, 2, 3))
	add(EncodeOperateL(OpCMOVNE, 4, 200, 6))
	add(EncodeJump(OpRET, 31, 26, 1))
	add(EncodeMisc(OpMB, 0))
	add(EncodePAL(PALCallSys))

	f.Fuzz(func(t *testing.T, raw uint32) {
		d := Decode(Word(raw)) // must never panic, whatever the bits
		if d.Op == OpInvalid || d.Op == OpUnsupported {
			if w, err := Encode(d); err == nil {
				t.Fatalf("%#x decodes to %v yet encodes to %#x", raw, d.Op, w)
			}
			return
		}

		w2, err := Encode(d)
		if err != nil {
			t.Fatalf("%#x decodes to %v but does not re-encode: %v", raw, d.Op, err)
		}
		d2 := Decode(w2)

		// The canonical word drops bits the decoder ignores: the decoded
		// Raw differs by construction, and the misc format discards its
		// Rb field on re-encode.
		want := d
		want.Raw = w2
		if want.Format == FormatMemFunc {
			want.Rb = RegZero
		}
		if d2 != want {
			t.Fatalf("round trip of %#x via %#x:\n got %+v\nwant %+v", raw, w2, d2, want)
		}

		// Canonical form is a fixed point.
		w3, err := Encode(d2)
		if err != nil || w3 != w2 {
			t.Fatalf("re-encode of canonical %#x gives %#x, %v", w2, w3, err)
		}
	})
}

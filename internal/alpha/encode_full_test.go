package alpha

import "testing"

// TestEveryOpRoundTrips exercises the full encode/decode table: every
// operation that the encoder knows must decode back to itself with all
// fields intact, for every format.
func TestEveryOpRoundTrips(t *testing.T) {
	for op, info := range encTable {
		op, info := op, info
		t.Run(op.String(), func(t *testing.T) {
			switch info.format {
			case FormatMemory:
				w, err := EncodeMem(op, 7, 21, -1234)
				if err != nil {
					t.Fatal(err)
				}
				d := Decode(w)
				if d.Op != op || d.Ra != 7 || d.Rb != 21 || d.Disp != -1234 {
					t.Errorf("memory round trip: %+v", d)
				}
			case FormatBranch:
				w, err := EncodeBranch(op, 13, -99)
				if err != nil {
					t.Fatal(err)
				}
				d := Decode(w)
				if d.Op != op || d.Ra != 13 || d.Disp != -99 {
					t.Errorf("branch round trip: %+v", d)
				}
			case FormatOperate:
				w, err := EncodeOperateR(op, 3, 14, 25)
				if err != nil {
					t.Fatal(err)
				}
				d := Decode(w)
				if d.Op != op || d.Ra != 3 || d.Rb != 14 || d.Rc != 25 || d.UseLit {
					t.Errorf("operate-R round trip: %+v", d)
				}
				w, err = EncodeOperateL(op, 3, 77, 25)
				if err != nil {
					t.Fatal(err)
				}
				d = Decode(w)
				if d.Op != op || !d.UseLit || d.Lit != 77 {
					t.Errorf("operate-L round trip: %+v", d)
				}
			case FormatMemJump:
				w, err := EncodeJump(op, 26, 27, 0x155)
				if err != nil {
					t.Fatal(err)
				}
				d := Decode(w)
				if d.Op != op || d.Ra != 26 || d.Rb != 27 || d.Hint != 0x155 {
					t.Errorf("jump round trip: %+v", d)
				}
			case FormatMemFunc:
				w, err := EncodeMisc(op, 9)
				if err != nil {
					t.Fatal(err)
				}
				d := Decode(w)
				if d.Op != op {
					t.Errorf("misc round trip: %+v", d)
				}
			case FormatPAL:
				w, err := EncodePAL(PALCallSys)
				if err != nil {
					t.Fatal(err)
				}
				d := Decode(w)
				if d.Op != OpCallPAL || d.PALFn != PALCallSys {
					t.Errorf("PAL round trip: %+v", d)
				}
			default:
				t.Fatalf("op %v has unknown format", op)
			}
		})
	}
}

// TestEveryOpHasName ensures the mnemonic table covers the op space.
func TestEveryOpHasName(t *testing.T) {
	for op := range encTable {
		name := op.String()
		if len(name) == 0 || name[0] == 'o' && name[1] == 'p' {
			t.Errorf("op %d has no mnemonic", op)
		}
		back, ok := OpByName(name)
		if !ok || back != op {
			t.Errorf("OpByName(%q) = %v, %v", name, back, ok)
		}
	}
}

// TestDisassembleEveryOp smoke-tests the disassembler over the whole
// encode table: output must be non-empty and never the raw-word fallback.
func TestDisassembleEveryOp(t *testing.T) {
	for op, info := range encTable {
		var w Word
		var err error
		switch info.format {
		case FormatMemory:
			w, err = EncodeMem(op, 1, 2, 4)
		case FormatBranch:
			w, err = EncodeBranch(op, 1, 2)
		case FormatOperate:
			w, err = EncodeOperateR(op, 1, 2, 3)
		case FormatMemJump:
			w, err = EncodeJump(op, 26, 27, 0)
		case FormatMemFunc:
			w, err = EncodeMisc(op, 1)
		case FormatPAL:
			w, err = EncodePAL(PALHalt)
		}
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		s := DisassembleWord(w, 0x1000)
		if len(s) == 0 || s[0] == '.' {
			t.Errorf("%v disassembles to %q", op, s)
		}
	}
}

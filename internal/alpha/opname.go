package alpha

var opsByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// OpByName returns the operation with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	if !ok || op == OpInvalid || op == OpUnsupported {
		return OpInvalid, false
	}
	return op, ok
}

// EncodingFormat returns the instruction format used to encode op.
func EncodingFormat(op Op) Format {
	if info, ok := encTable[op]; ok {
		return info.format
	}
	return FormatInvalid
}

package alpha

import (
	"fmt"
	"strings"
)

// Disassemble renders the instruction in conventional Alpha assembler
// syntax. pc is the address of the instruction; it is used to resolve
// direct branch targets to absolute addresses.
func Disassemble(i Inst, pc uint64) string {
	switch i.Format {
	case FormatPAL:
		switch i.PALFn {
		case PALHalt:
			return "call_pal halt"
		case PALBpt:
			return "call_pal bpt"
		case PALCallSys:
			return "call_pal callsys"
		}
		return fmt.Sprintf("call_pal %#x", i.PALFn)

	case FormatMemory:
		if i.IsNOP() && (i.Op == OpLDA || i.Op == OpLDQU) {
			return "unop"
		}
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Ra, i.Disp, i.Rb)

	case FormatMemJump:
		return fmt.Sprintf("%s %s, (%s)", i.Op, i.Ra, i.Rb)

	case FormatMemFunc:
		if i.Op == OpRPCC {
			return fmt.Sprintf("rpcc %s", i.Ra)
		}
		return i.Op.String()

	case FormatBranch:
		target := i.BranchTarget(pc)
		if i.Op == OpBR && i.Ra == RegZero {
			return fmt.Sprintf("br %#x", target)
		}
		return fmt.Sprintf("%s %s, %#x", i.Op, i.Ra, target)

	case FormatOperate:
		if i.IsNOP() && i.Op == OpBIS && i.Ra == RegZero {
			return "nop"
		}
		var src string
		if i.UseLit {
			src = fmt.Sprintf("#%d", i.Lit)
		} else {
			src = i.Rb.String()
		}
		// mov pseudo-ops for common idioms.
		if i.Op == OpBIS && i.Ra == RegZero {
			return fmt.Sprintf("mov %s, %s", src, i.Rc)
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Ra, src, i.Rc)
	}
	return fmt.Sprintf(".word %#08x", uint32(i.Raw))
}

// DisassembleWord decodes and disassembles a raw instruction word at pc.
func DisassembleWord(w Word, pc uint64) string {
	return Disassemble(Decode(w), pc)
}

// DumpCode disassembles a code region for debugging and tests. words[i] is
// the instruction at base + 4*i.
func DumpCode(words []Word, base uint64) string {
	var b strings.Builder
	for idx, w := range words {
		pc := base + uint64(idx)*InstBytes
		fmt.Fprintf(&b, "%#010x:  %08x  %s\n", pc, uint32(w), DisassembleWord(w, pc))
	}
	return b.String()
}

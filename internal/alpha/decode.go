package alpha

// Primary opcode values.
const (
	opcCallPAL = 0x00
	opcLDA     = 0x08
	opcLDAH    = 0x09
	opcLDBU    = 0x0A
	opcLDQU    = 0x0B
	opcLDWU    = 0x0C
	opcSTW     = 0x0D
	opcSTB     = 0x0E
	opcSTQU    = 0x0F
	opcINTA    = 0x10
	opcINTL    = 0x11
	opcINTS    = 0x12
	opcINTM    = 0x13
	opcMISC    = 0x18
	opcJSR     = 0x1A
	opcLDL     = 0x28
	opcLDQ     = 0x29
	opcLDLL    = 0x2A
	opcLDQL    = 0x2B
	opcSTL     = 0x2C
	opcSTQ     = 0x2D
	opcSTLC    = 0x2E
	opcSTQC    = 0x2F
	opcBR      = 0x30
	opcBSR     = 0x34
	opcBLBC    = 0x38
	opcBEQ     = 0x39
	opcBLT     = 0x3A
	opcBLE     = 0x3B
	opcBLBS    = 0x3C
	opcBNE     = 0x3D
	opcBGE     = 0x3E
	opcBGT     = 0x3F
)

// memOps maps memory-format primary opcodes to operations.
var memOps = map[uint32]Op{
	opcLDA: OpLDA, opcLDAH: OpLDAH,
	opcLDBU: OpLDBU, opcLDQU: OpLDQU, opcLDWU: OpLDWU,
	opcSTW: OpSTW, opcSTB: OpSTB, opcSTQU: OpSTQU,
	opcLDL: OpLDL, opcLDQ: OpLDQ, opcLDLL: OpLDLL, opcLDQL: OpLDQL,
	opcSTL: OpSTL, opcSTQ: OpSTQ, opcSTLC: OpSTLC, opcSTQC: OpSTQC,
}

// branchOps maps branch-format primary opcodes to operations.
var branchOps = map[uint32]Op{
	opcBR: OpBR, opcBSR: OpBSR,
	opcBLBC: OpBLBC, opcBEQ: OpBEQ, opcBLT: OpBLT, opcBLE: OpBLE,
	opcBLBS: OpBLBS, opcBNE: OpBNE, opcBGE: OpBGE, opcBGT: OpBGT,
}

// inta/intl/ints/intm function code tables (opcode 0x10..0x13).
var intaOps = map[uint32]Op{
	0x00: OpADDL, 0x02: OpS4ADDL, 0x12: OpS8ADDL,
	0x09: OpSUBL, 0x0B: OpS4SUBL, 0x1B: OpS8SUBL,
	0x20: OpADDQ, 0x22: OpS4ADDQ, 0x32: OpS8ADDQ,
	0x29: OpSUBQ, 0x2B: OpS4SUBQ, 0x3B: OpS8SUBQ,
	0x2D: OpCMPEQ, 0x4D: OpCMPLT, 0x6D: OpCMPLE,
	0x1D: OpCMPULT, 0x3D: OpCMPULE, 0x0F: OpCMPBGE,
}

var intlOps = map[uint32]Op{
	0x00: OpAND, 0x08: OpBIC, 0x20: OpBIS, 0x28: OpORNOT,
	0x40: OpXOR, 0x48: OpEQV,
	0x24: OpCMOVEQ, 0x26: OpCMOVNE, 0x44: OpCMOVLT, 0x46: OpCMOVGE,
	0x64: OpCMOVLE, 0x66: OpCMOVGT, 0x14: OpCMOVLBS, 0x16: OpCMOVLBC,
	0x61: OpAMASK, 0x6C: OpIMPLVER,
}

var intsOps = map[uint32]Op{
	0x39: OpSLL, 0x34: OpSRL, 0x3C: OpSRA,
	0x06: OpEXTBL, 0x16: OpEXTWL, 0x26: OpEXTLL, 0x36: OpEXTQL,
	0x5A: OpEXTWH, 0x6A: OpEXTLH, 0x7A: OpEXTQH,
	0x0B: OpINSBL, 0x1B: OpINSWL, 0x2B: OpINSLL, 0x3B: OpINSQL,
	0x57: OpINSWH, 0x67: OpINSLH, 0x77: OpINSQH,
	0x02: OpMSKBL, 0x12: OpMSKWL, 0x22: OpMSKLL, 0x32: OpMSKQL,
	0x52: OpMSKWH, 0x62: OpMSKLH, 0x72: OpMSKQH,
	0x30: OpZAP, 0x31: OpZAPNOT,
}

var intmOps = map[uint32]Op{
	0x00: OpMULL, 0x20: OpMULQ, 0x30: OpUMULH,
}

// miscOps maps opcode 0x18 function codes (held in the displacement field).
var miscOps = map[uint32]Op{
	0x0000: OpTRAPB, 0x0400: OpEXCB,
	0x4000: OpMB, 0x4400: OpWMB, 0xC000: OpRPCC,
	0x8000: OpFETCH, 0xA000: OpFETCHM, 0xE800: OpECB, 0xF800: OpWH64,
}

// operateTables indexes the function-code table for each operate opcode.
var operateTables = map[uint32]map[uint32]Op{
	opcINTA: intaOps, opcINTL: intlOps, opcINTS: intsOps, opcINTM: intmOps,
}

// jump hint type values in disp[15:14] for opcode 0x1A.
var jumpOps = [4]Op{OpJMP, OpJSR, OpRET, OpJSRCoroutine}

// signExtend returns v sign-extended from the given bit width.
func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode decodes a raw 32-bit Alpha instruction word. It never fails:
// undefined encodings decode to OpInvalid and floating-point or other
// recognised-but-unimplemented opcodes decode to OpUnsupported.
func Decode(w Word) Inst {
	inst := Inst{Raw: w}
	opc := w.Opcode()
	ra := Reg((w >> 21) & 31)
	rb := Reg((w >> 16) & 31)

	switch {
	case opc == opcCallPAL:
		inst.Op = OpCallPAL
		inst.Format = FormatPAL
		inst.PALFn = uint32(w) & 0x03FFFFFF
		return inst

	case opc == opcMISC:
		fn := uint32(w) & 0xFFFF
		op, ok := miscOps[fn]
		if !ok {
			inst.Op = OpUnsupported
			inst.Format = FormatInvalid
			return inst
		}
		inst.Op = op
		inst.Format = FormatMemFunc
		inst.Ra, inst.Rb = ra, rb
		return inst

	case opc == opcJSR:
		inst.Format = FormatMemJump
		disp := uint32(w) & 0xFFFF
		inst.Op = jumpOps[(disp>>14)&3]
		inst.Ra, inst.Rb = ra, rb
		inst.Hint = uint16(disp & 0x3FFF)
		return inst

	case opc >= 0x10 && opc <= 0x13:
		table := operateTables[opc]
		fn := (uint32(w) >> 5) & 0x7F
		op, ok := table[fn]
		if !ok {
			inst.Op = OpUnsupported
			inst.Format = FormatOperate
			return inst
		}
		inst.Op = op
		inst.Format = FormatOperate
		inst.Ra = ra
		inst.Rc = Reg(w & 31)
		if w&(1<<12) != 0 {
			inst.UseLit = true
			inst.Lit = uint8((w >> 13) & 0xFF)
		} else {
			inst.Rb = rb
		}
		return inst

	default:
		if op, ok := memOps[opc]; ok {
			inst.Op = op
			inst.Format = FormatMemory
			inst.Ra, inst.Rb = ra, rb
			inst.Disp = signExtend(uint32(w)&0xFFFF, 16)
			return inst
		}
		if op, ok := branchOps[opc]; ok {
			inst.Op = op
			inst.Format = FormatBranch
			inst.Ra = ra
			inst.Disp = signExtend(uint32(w)&0x1FFFFF, 21)
			return inst
		}
		// Floating point and everything else we know exists but do not
		// implement.
		switch opc {
		case 0x14, 0x15, 0x16, 0x17, 0x1C, // FP operate / ITFP / FPTI
			0x20, 0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27, // FP loads/stores
			0x31, 0x32, 0x33, 0x35, 0x36, 0x37, // FP branches
			0x19, 0x1B, 0x1D, 0x1E, 0x1F: // PAL-reserved (HW_*)
			inst.Op = OpUnsupported
		default:
			inst.Op = OpInvalid
		}
		inst.Format = FormatInvalid
		return inst
	}
}

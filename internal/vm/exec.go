package vm

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/trace"
)

// profEnter, profExit, and profChain forward frame transitions and
// chain-verdict events to the execution profiler. The profiler's
// methods are nil-safe, so only profEnter guards: its guard avoids
// computing StrandStats when profiling is disabled.
func (v *VM) profEnter(f *tcache.Fragment) {
	if p := v.cfg.Prof; p != nil {
		n, maxLen := f.StrandStats()
		p.FragEnter(f.ID, f.VStart, prof.FragInfo{
			Insts: len(f.Insts), SrcInsts: f.SrcCount,
			Strands: n, MaxStrand: maxLen, Straightened: f.Straightened,
		}, v.Stats.TransIInsts, v.Stats.TransVInsts)
	}
}

func (v *VM) profExit(reason prof.ExitKind) {
	v.cfg.Prof.FragExit(reason, v.Stats.TransIInsts, v.Stats.TransVInsts)
}

func (v *VM) profChain(kind prof.ChainKind) {
	v.cfg.Prof.Chain(kind)
}

// execTranslated runs translated code starting at frag, following fragment
// links, chaining code, the dual-address RAS, and the shared dispatch
// routine, until control exits back to the VM. It returns the V-ISA
// address at which interpretation (or further lookup) should continue.
func (v *VM) execTranslated(frag *tcache.Fragment) (uint64, error) {
	frag.ExecCount++
	v.Stats.FragEntries++
	v.profEnter(frag)
	idx := 0
	peiIdx := 0

	enterFrag := func(f *tcache.Fragment) {
		frag = f
		idx = 0
		peiIdx = 0
		frag.ExecCount++
		v.Stats.FragEntries++
		v.profEnter(frag)
	}

	for {
		if idx >= len(frag.Insts) {
			return 0, fmt.Errorf("vm: fell off end of fragment %d (V %#x)", frag.ID, frag.VStart)
		}
		inst := &frag.Insts[idx]
		iaddr := frag.IAddrs[idx]
		size := frag.Sizes[idx]
		isPEI := peiPoint(inst)

		v.Stats.TransIInsts++
		v.Stats.TransVInsts += uint64(inst.VCredit)
		v.Stats.ClassCounts[inst.Class]++
		if inst.Usage != ildp.UsageNone {
			v.Stats.UsageDyn[inst.Usage]++
		}
		if inst.Kind == ildp.KindCopyToGPR || inst.Kind == ildp.KindCopyFromGPR {
			v.Stats.CopiesExecuted++
		}

		rec := v.newRec(inst, iaddr, size)

		switch inst.Kind {
		case ildp.KindALU:
			val := emu.EvalOp(inst.Op, v.readSrc(inst, inst.SrcA), v.readSrc(inst, inst.SrcB))
			if inst.WritesAcc {
				v.acc[inst.Acc] = val
			}
			if inst.Dest != alpha.RegZero {
				v.writeGPR(inst.Dest, val)
			}

		case ildp.KindCMOV:
			cond := v.acc[inst.Acc&7]
			if inst.SrcA.Kind == ildp.SrcGPR {
				cond = v.readGPR(inst.SrcA.Reg)
			}
			if emu.EvalCond(inst.Op, cond) {
				v.writeGPR(inst.Dest, v.readSrc(inst, inst.SrcB))
			}

		case ildp.KindLoad:
			addr := v.readSrc(inst, inst.SrcA) + uint64(int64(inst.Disp))
			val, err := emu.LoadMem(v.mem, inst.Op, addr)
			if err != nil {
				return 0, v.preciseTrap(frag, peiIdx, inst, err)
			}
			rec.MemAddr = addr
			if inst.Op == alpha.OpLDQU {
				rec.MemAddr = addr &^ 7
			}
			if inst.WritesAcc {
				v.acc[inst.Acc] = val
			}
			if inst.Dest != alpha.RegZero {
				v.writeGPR(inst.Dest, val)
			}

		case ildp.KindStore:
			addr := v.readSrc(inst, inst.SrcA) + uint64(int64(inst.Disp))
			data := v.readSrc(inst, inst.SrcB)
			if err := emu.StoreMem(v.mem, inst.Op, addr, data); err != nil {
				return 0, v.preciseTrap(frag, peiIdx, inst, err)
			}
			rec.MemAddr = addr
			if inst.Op == alpha.OpSTQU {
				rec.MemAddr = addr &^ 7
			}

		case ildp.KindCopyToGPR:
			v.writeGPR(inst.Dest, v.acc[inst.Acc&7])

		case ildp.KindCopyFromGPR:
			v.acc[inst.Acc] = v.readSrc(inst, inst.SrcA)

		case ildp.KindSetVPC:
			// The implementation PC base for trap recovery; functionally a
			// special-register write.

		case ildp.KindLoadETA:
			v.acc[inst.Acc] = inst.VAddr

		case ildp.KindSaveVRA:
			v.writeGPR(inst.Dest, inst.VAddr)

		case ildp.KindPushRAS:
			target := ildp.NoFrag
			if f := v.tc.Lookup(inst.VAddr); f != nil {
				target = f.ID
			}
			v.ras.push(inst.VAddr, target)

		case ildp.KindCondBranch, ildp.KindCallTransCond:
			taken := emu.EvalCond(inst.Op, v.readSrc(inst, inst.SrcA))
			rec.Taken = taken
			if inst.Class == ildp.ClassChain && inst.Frag == ildp.FragDispatch {
				// Software jump prediction verdict.
				if taken {
					v.Stats.SWPredMisses++
					v.profChain(prof.ChainSWPredMiss)
				} else {
					v.Stats.SWPredHits++
					v.profChain(prof.ChainSWPredHit)
				}
			}
			if taken {
				next, exitV, err := v.takeBranch(inst, &rec)
				if err != nil {
					return 0, err
				}
				if next == nil {
					v.finishRec(&rec, true)
					v.profExit(prof.ExitVM)
					return exitV, nil
				}
				v.finishRec(&rec, false)
				if isPEI {
					peiIdx++
				}
				enterFrag(next)
				continue
			}

		case ildp.KindBranch, ildp.KindCallTrans:
			rec.Taken = true
			next, exitV, err := v.takeBranch(inst, &rec)
			if err != nil {
				return 0, err
			}
			if next == nil {
				v.finishRec(&rec, true)
				v.profExit(prof.ExitVM)
				return exitV, nil
			}
			v.finishRec(&rec, false)
			enterFrag(next)
			continue

		case ildp.KindJumpRet:
			target := v.readSrc(inst, inst.SrcA) &^ 3
			entry, ok := v.ras.pop()
			if ok && entry.v == target && entry.frag != ildp.NoFrag {
				if f := v.tc.Frag(entry.frag); f != nil && f.VStart == entry.v {
					v.Stats.RASHits++
					v.profChain(prof.ChainRASHit)
					rec.Taken = true
					rec.PredHit = true
					rec.Target = f.IAddr
					if !v.fragUsable(f) {
						v.finishRec(&rec, true)
						return entry.v, nil
					}
					v.finishRec(&rec, false)
					enterFrag(f)
					continue
				}
			}
			// Miss: latch the target for dispatch and fall through to the
			// unconditional branch that follows.
			v.Stats.RASMisses++
			v.profChain(prof.ChainRASMiss)
			v.writeGPR(ildp.RegJTarget, target)
			rec.Taken = false

		case ildp.KindDispatchOp:
			// Dispatch body work; the lookup happens at the final jump.

		case ildp.KindJumpInd:
			target := v.readGPR(ildp.RegJTarget)
			v.Stats.DispatchRuns++
			rec.Taken = true
			if f := v.tc.Lookup(target); f != nil {
				v.Stats.DispatchHits++
				v.profChain(prof.ChainDispatchHit)
				rec.Target = f.IAddr
				if !v.fragUsable(f) {
					v.finishRec(&rec, true)
					return target, nil
				}
				v.finishRec(&rec, false)
				enterFrag(f)
				continue
			}
			v.profChain(prof.ChainDispatchMiss)
			v.finishRec(&rec, true)
			v.profExit(prof.ExitVM)
			return target, nil

		default:
			return 0, fmt.Errorf("vm: cannot execute %v", inst.Kind)
		}

		v.finishRec(&rec, false)
		if isPEI {
			peiIdx++
		}
		idx++
	}
}

// takeBranch resolves a taken control transfer: into another fragment,
// into the shared dispatch routine, or out to the VM (call-translator).
// A nil fragment with err == nil means exit to the VM at exitV.
func (v *VM) takeBranch(inst *ildp.Inst, rec *trace.Rec) (*tcache.Fragment, uint64, error) {
	switch {
	case inst.Frag == ildp.FragDispatch:
		v.cfg.Prof.EnterDispatch(v.Stats.TransIInsts, v.Stats.TransVInsts)
		f, exitV, err := v.runDispatch()
		if err != nil {
			return nil, 0, err
		}
		if f != nil {
			rec.Target = dispatchEntry(v.tc)
			return f, 0, nil
		}
		rec.Target = dispatchEntry(v.tc)
		return nil, exitV, nil
	case inst.Frag >= 0:
		f := v.tc.Frag(inst.Frag)
		if f == nil || f.VStart != inst.VAddr {
			// Stale link: the target was invalidated (or its ID slot
			// reused) after this branch was patched. Recover by exiting to
			// the VM at the architected target, which the patch preserved.
			v.Stats.StaleLinks++
			v.noteRecovery("stale link", inst.VAddr)
			return nil, inst.VAddr, nil
		}
		v.profChain(prof.ChainDirect)
		rec.Target = f.IAddr
		if !v.fragUsable(f) {
			return nil, f.VStart, nil
		}
		return f, 0, nil
	default:
		// Call-translator: exit to the VM at the V-ISA target.
		return nil, inst.VAddr, nil
	}
}

// runDispatch executes the shared dispatch routine (its 20 instructions
// enter the trace) and performs the PC-translation-table lookup at its
// final indirect jump.
func (v *VM) runDispatch() (*tcache.Fragment, uint64, error) {
	insts, addrs := v.tc.Dispatch()
	for i := range insts {
		inst := &insts[i]
		v.Stats.TransIInsts++
		v.Stats.ClassCounts[inst.Class]++
		rec := v.newRec(inst, addrs[i], uint8(inst.EncodedSize(ildp.Modified)))
		if inst.Kind == ildp.KindJumpInd {
			target := v.readGPR(ildp.RegJTarget)
			v.Stats.DispatchRuns++
			rec.Taken = true
			if f := v.tc.Lookup(target); f != nil {
				v.Stats.DispatchHits++
				v.profChain(prof.ChainDispatchHit)
				rec.Target = f.IAddr
				if !v.fragUsable(f) {
					v.finishRec(&rec, true)
					return nil, target, nil
				}
				v.finishRec(&rec, false)
				return f, 0, nil
			}
			// The caller's exit-to-VM path closes the dispatch frame.
			v.profChain(prof.ChainDispatchMiss)
			v.finishRec(&rec, true)
			return nil, target, nil
		}
		v.finishRec(&rec, false)
	}
	return nil, 0, fmt.Errorf("vm: dispatch routine has no terminal jump")
}

// preciseTrap recovers the precise V-ISA state for a trap inside
// translated code: the trapping V-PC comes from the PEI table, and any
// architected registers whose current values live only in accumulators
// are materialised from the accumulator file (§2.2).
func (v *VM) preciseTrap(frag *tcache.Fragment, peiIdx int, inst *ildp.Inst, cause error) error {
	if peiIdx >= len(frag.PEI) {
		return fmt.Errorf("vm: PEI index %d out of range in fragment %d", peiIdx, frag.ID)
	}
	vpc := frag.PEI[peiIdx]
	if vpc != inst.VPC {
		return fmt.Errorf("vm: PEI table disagrees: table %#x, instruction %#x", vpc, inst.VPC)
	}
	if peiIdx < len(frag.PEIRecover) {
		for _, pair := range frag.PEIRecover[peiIdx] {
			v.cpu.WriteReg(pair.Reg, v.acc[pair.Acc&7])
		}
	}
	v.cpu.PC = vpc
	return &emu.Trap{PC: vpc, Cause: cause}
}

func peiPoint(inst *ildp.Inst) bool {
	if inst.Class != ildp.ClassCore {
		return false
	}
	switch inst.Kind {
	case ildp.KindLoad, ildp.KindStore, ildp.KindCallTransCond, ildp.KindCondBranch:
		return true
	}
	return false
}

func dispatchEntry(tc *tcache.Cache) uint64 {
	_, addrs := tc.Dispatch()
	return addrs[0]
}

// readGPR reads an I-ISA register: architected GPRs come from the
// interpreter state, the VM-private scratch registers from the VM.
func (v *VM) readGPR(r alpha.Reg) uint64 {
	if r < alpha.NumRegs {
		return v.cpu.ReadReg(r)
	}
	return v.scratch[r-alpha.NumRegs]
}

func (v *VM) writeGPR(r alpha.Reg, val uint64) {
	if r < alpha.NumRegs {
		v.cpu.WriteReg(r, val)
		return
	}
	v.scratch[r-alpha.NumRegs] = val
}

func (v *VM) readSrc(inst *ildp.Inst, s ildp.Src) uint64 {
	switch s.Kind {
	case ildp.SrcAcc:
		return v.acc[inst.Acc&7]
	case ildp.SrcGPR:
		return v.readGPR(s.Reg)
	case ildp.SrcImm:
		return uint64(s.Imm)
	}
	return 0
}

// newRec builds the timing-trace record skeleton for one I-instruction.
func (v *VM) newRec(inst *ildp.Inst, iaddr uint64, size uint8) trace.Rec {
	rec := trace.Rec{
		PC:      iaddr,
		Size:    size,
		SrcReg:  [2]uint8{trace.NoReg, trace.NoReg},
		DstReg:  trace.NoReg,
		SrcAcc:  trace.NoAcc,
		DstAcc:  trace.NoAcc,
		VCredit: inst.VCredit,
	}
	si := 0
	if inst.SrcA.Kind == ildp.SrcGPR && inst.SrcA.Reg != alpha.RegZero {
		rec.SrcReg[si] = uint8(inst.SrcA.Reg)
		si++
	}
	if inst.SrcB.Kind == ildp.SrcGPR && inst.SrcB.Reg != alpha.RegZero {
		rec.SrcReg[si] = uint8(inst.SrcB.Reg)
	}
	if inst.ReadsAcc() && inst.Acc != ildp.NoAcc {
		rec.SrcAcc = uint8(inst.Acc)
	}
	if inst.WritesAcc && inst.Acc != ildp.NoAcc {
		rec.DstAcc = uint8(inst.Acc)
	}
	if inst.Dest != alpha.RegZero {
		rec.DstReg = uint8(inst.Dest)
		rec.DstOperational = operationalWrite(inst)
	}
	rec.Class = recClass(inst)
	if inst.IsControl() {
		rec.MemWidth = 0
	} else if inst.Kind == ildp.KindLoad || inst.Kind == ildp.KindStore {
		rec.MemWidth = emu.MemWidth(inst.Op)
	}
	return rec
}

// operationalWrite reports whether the destination-GPR write must reach
// the latency-critical operational register file: inter-strand
// communication values, live-outs, explicit copies, and VM chaining
// latches — but not Modified-form architected-state-only updates (§2.3).
func operationalWrite(inst *ildp.Inst) bool {
	switch inst.Kind {
	case ildp.KindCopyToGPR, ildp.KindSaveVRA, ildp.KindCMOV:
		return true
	}
	if inst.Class == ildp.ClassChain {
		return true
	}
	switch inst.Usage {
	case ildp.UsageLiveOut, ildp.UsageComm:
		return true
	}
	return false
}

func recClass(inst *ildp.Inst) trace.Class {
	switch inst.Kind {
	case ildp.KindALU, ildp.KindCMOV, ildp.KindCopyToGPR, ildp.KindCopyFromGPR,
		ildp.KindSetVPC, ildp.KindLoadETA, ildp.KindSaveVRA, ildp.KindPushRAS,
		ildp.KindDispatchOp:
		if inst.Op == alpha.OpMULL || inst.Op == alpha.OpMULQ || inst.Op == alpha.OpUMULH {
			return trace.ClassMul
		}
		return trace.ClassALU
	case ildp.KindLoad:
		return trace.ClassLoad
	case ildp.KindStore:
		return trace.ClassStore
	case ildp.KindCondBranch, ildp.KindCallTransCond:
		return trace.ClassBranch
	case ildp.KindBranch, ildp.KindCallTrans:
		return trace.ClassJump
	case ildp.KindJumpRet:
		return trace.ClassRet
	case ildp.KindJumpInd:
		return trace.ClassInd
	}
	return trace.ClassALU
}

// finishRec completes and emits a trace record. endOfRun marks the final
// record of a translated-execution episode (the timing models drain and
// restart with an empty pipeline across mode switches, as in §4.1).
func (v *VM) finishRec(rec *trace.Rec, endOfRun bool) {
	if v.cfg.Sink == nil {
		return
	}
	if endOfRun {
		rec.Taken = true
		rec.Target = 0
	}
	v.cfg.Sink.Append(*rec)
}

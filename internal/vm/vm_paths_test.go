package vm

import (
	"errors"
	"strings"
	"testing"

	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/mem"
)

// TestMaxSuperblockEnding forces the size-limit ending condition: a long
// straight-line block larger than the superblock cap must split into
// multiple linked fragments and still compute correctly.
func TestMaxSuperblockEnding(t *testing.T) {
	var b strings.Builder
	b.WriteString("\t.text 0x10000\nstart:\n\tldiq a0, 3000\n\tclr v0\nloop:\n")
	for i := 0; i < 60; i++ {
		b.WriteString("\taddq v0, #1, v0\n")
	}
	b.WriteString("\tsubq a0, #1, a0\n\tbne a0, loop\n\tcall_pal halt\n")
	src := b.String()

	ref := refRun(t, src)
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.MaxSuperblock = 20
	v := vmRun(t, src, cfg)
	compareState(t, "max-superblock", ref, v, nil)
	if v.Stats.Fragments < 3 {
		t.Errorf("size cap 20 over a 62-inst loop should split into >=3 fragments, got %d",
			v.Stats.Fragments)
	}
}

// TestCycleEnding: a loop whose body revisits its own start mid-collection
// triggers the already-collected ending condition.
func TestCycleEnding(t *testing.T) {
	src := `
	.text 0x10000
start:
	ldiq a0, 5000
loop:
	subq a0, #1, a0
	addq v0, #2, v0
	bgt  a0, loop
	call_pal halt
`
	ref := refRun(t, src)
	cfg := DefaultConfig()
	cfg.HotThreshold = 4
	v := vmRun(t, src, cfg)
	compareState(t, "cycle", ref, v, nil)
}

// TestRPCCBarrier: RPCC ends trace collection and stays interpreted, so
// its (mode-dependent) value never gets baked into a fragment.
func TestRPCCBarrier(t *testing.T) {
	src := `
	.text 0x10000
start:
	ldiq a0, 500
loop:
	rpcc t0
	addq v0, #1, v0
	subq a0, #1, a0
	bne  a0, loop
	call_pal halt
`
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	v := vmRun(t, src, cfg)
	// The loop contains a barrier; fragments exist around it but the rpcc
	// itself is interpreted every iteration.
	if v.Stats.InterpInsts < 500 {
		t.Errorf("rpcc iterations should stay interpreted: interp=%d", v.Stats.InterpInsts)
	}
	if v.CPU().Reg[0] != 500 {
		t.Errorf("v0 = %d, want 500", v.CPU().Reg[0])
	}
}

// TestRASOverflowDeepRecursion: recursion deeper than the dual RAS wraps
// the circular stack; correctness is unaffected, the overflowed returns
// just miss.
func TestRASOverflowDeepRecursion(t *testing.T) {
	src := `
	.text 0x10000
start:
	ldiq sp, 0x80000
	lda  a0, 40(zero)     ; recursion depth >> RAS size
	bsr  down
	call_pal halt
down:
	ble  a0, base
	stq  ra, -8(sp)
	lda  sp, -8(sp)
	subq a0, #1, a0
	bsr  down
	lda  sp, 8(sp)
	ldq  ra, -8(sp)
	addq v0, #1, v0
	ret
base:
	ret
`
	ref := refRun(t, src)
	cfg := DefaultConfig()
	cfg.HotThreshold = 3
	cfg.RASSize = 8
	v := vmRun(t, src, cfg)
	compareState(t, "ras-overflow", ref, v, nil)
	if v.Stats.RASMisses == 0 {
		t.Error("deep recursion should overflow the 8-entry dual RAS")
	}
}

// TestStraightenedPreciseTrap: the code-straightening-only DBT preserves
// precise traps too (trivially, since every instruction writes GPRs).
func TestStraightenedPreciseTrap(t *testing.T) {
	src := `
	.text 0x10000
start:
	ldiq  a0, 0x20000
	ldiq  a1, 0x30000
	clr   v0
loop:
	ldq   t0, 0(a0)
	addq  v0, t0, v0
	lda   a0, 8(a0)
	subq  a1, a0, t1
	bne   t1, loop
	call_pal halt
`
	m := mem.New()
	m.Strict = true
	m.Map(0x20000, 0x1000)
	cfg := DefaultConfig()
	cfg.Straighten = true
	cfg.HotThreshold = 4
	v := New(m, cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	err := v.Run(0)
	var trap *emu.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want trap, got %v", err)
	}
	if trap.PC != 0x10000+5*4 {
		t.Errorf("trap PC = %#x", trap.PC)
	}
	if v.CPU().Reg[16] != 0x21000 {
		t.Errorf("a0 = %#x, want faulting address", v.CPU().Reg[16])
	}
}

// TestFusedMemOpsReduceExpansion: the §4.5 option must lower the executed
// I-instruction count on a displacement-heavy loop and stay correct.
func TestFusedMemOpsReduceExpansion(t *testing.T) {
	src := `
	.data 0x20000
tbl:
	.space 4096
	.text 0x10000
start:
	ldiq s0, 2000
loop:
	ldiq a0, tbl
	ldq  t0, 8(a0)
	ldq  t1, 16(a0)
	addq t0, t1, t2
	stq  t2, 24(a0)
	subq s0, #1, s0
	bne  s0, loop
	call_pal halt
`
	ref := refRun(t, src)
	base := DefaultConfig()
	base.HotThreshold = 5
	vSplit := vmRun(t, src, base)
	fusedCfg := base
	fusedCfg.FuseMemOps = true
	vFused := vmRun(t, src, fusedCfg)
	compareState(t, "fused", ref, vFused, []uint64{0x20018})
	if vFused.Stats.TransIInsts >= vSplit.Stats.TransIInsts {
		t.Errorf("fusion did not reduce I-insts: %d vs %d",
			vFused.Stats.TransIInsts, vSplit.Stats.TransIInsts)
	}
	// Three displaced memory ops per iteration: the fused version saves
	// three address adds.
	saved := vSplit.Stats.TransIInsts - vFused.Stats.TransIInsts
	if saved < 3*1500 {
		t.Errorf("expected ~3 saved instructions per iteration, saved %d total", saved)
	}
}

// TestDispatchHitPath: an indirect jump whose targets are all translated
// resolves through the dispatch table without leaving translated mode.
func TestDispatchHitPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chain = 0 // NoPred: everything goes through dispatch
	cfg.HotThreshold = 4
	v := vmRun(t, torture, cfg)
	if v.Stats.DispatchRuns == 0 {
		t.Fatal("no dispatch traffic under no_pred")
	}
	hitRate := float64(v.Stats.DispatchHits) / float64(v.Stats.DispatchRuns)
	if hitRate < 0.8 {
		t.Errorf("dispatch hit rate %.2f too low once warm", hitRate)
	}
}

// TestUsageDynamicConservation: dynamic usage-class counts cover exactly
// the producing instructions executed.
func TestUsageDynamicConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	v := vmRun(t, torture, cfg)
	var usageTotal uint64
	for c := ildp.UsageNoUser; c <= ildp.UsageNoUserGlobal; c++ {
		usageTotal += v.Stats.UsageDyn[c]
	}
	if usageTotal == 0 || usageTotal > v.Stats.TransIInsts {
		t.Errorf("usage total %d vs I-insts %d", usageTotal, v.Stats.TransIInsts)
	}
}

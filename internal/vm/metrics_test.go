package vm

import (
	"reflect"
	"testing"

	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/translate"
)

// TestMetricsDoNotChangeResults runs the torture program with and
// without a metrics registry attached and requires identical simulation
// outcomes: observability must be a pure tap.
func TestMetricsDoNotChangeResults(t *testing.T) {
	for _, form := range []ildp.Form{ildp.Basic, ildp.Modified} {
		cfg := DefaultConfig()
		cfg.Form = form
		cfg.Chain = translate.SWPredRAS
		plain := vmRun(t, torture, cfg)

		cfg.Metrics = metrics.NewRegistry()
		observed := vmRun(t, torture, cfg)

		if !reflect.DeepEqual(plain.Stats, observed.Stats) {
			t.Errorf("%v: Stats differ with metrics enabled:\nplain:    %+v\nobserved: %+v",
				form, plain.Stats, observed.Stats)
		}
		if plain.CPU().ExitStatus != observed.CPU().ExitStatus ||
			plain.CPU().ConsoleString() != observed.CPU().ConsoleString() {
			t.Errorf("%v: architectural outcome differs with metrics enabled", form)
		}
	}
}

// TestMetricsLifecycleEvents checks that a metrics-enabled run emits
// translate events matching the fragment count and publishes the VM
// counters consistently with Stats.
func TestMetricsLifecycleEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Form = ildp.Modified
	cfg.Chain = translate.SWPredRAS
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	v := vmRun(t, torture, cfg)

	var translates, installs, chains int
	for _, e := range reg.Events() {
		switch e.Kind {
		case metrics.EventTranslate:
			translates++
		case metrics.EventInstall:
			installs++
		case metrics.EventChain:
			chains++
		}
	}
	if translates != v.Stats.Fragments {
		t.Errorf("translate events = %d, want %d (fragment count)", translates, v.Stats.Fragments)
	}
	if installs != v.Stats.Fragments {
		t.Errorf("install events = %d, want %d", installs, v.Stats.Fragments)
	}
	if chains != v.TCache().Patches {
		t.Errorf("chain events = %d, want %d (patches)", chains, v.TCache().Patches)
	}

	v.Stats.Publish(reg)
	snap := reg.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["vm.fragments"] != uint64(v.Stats.Fragments) {
		t.Errorf("vm.fragments = %d, want %d", counters["vm.fragments"], v.Stats.Fragments)
	}
	if counters["vm.trans_i_insts"] != v.Stats.TransIInsts {
		t.Errorf("vm.trans_i_insts = %d, want %d", counters["vm.trans_i_insts"], v.Stats.TransIInsts)
	}
	if counters["tcache.installs"] != uint64(v.Stats.Fragments) {
		t.Errorf("tcache.installs = %d, want %d", counters["tcache.installs"], v.Stats.Fragments)
	}
}

package vm

import (
	"fmt"
	"strings"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/translate"
)

// Differential testing: generate pseudo-random but guaranteed-terminating
// Alpha programs — random ALU/memory/branch/call soup over a bounded
// arena — and require the VM to produce architected state bit-identical
// to pure interpretation under every ISA form and chaining mode. This is
// the strongest correctness statement the reproduction makes: dynamic
// binary translation is semantically invisible.

type progRNG uint64

func (r *progRNG) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 11)
}

func (r *progRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *progRNG) pick(ss []string) string { return ss[r.intn(len(ss))] }

// genRandomProgram builds a random program of `blocks` basic blocks.
// Termination: every block decrements a dedicated counter (s5) and exits
// when it reaches zero, so any branch topology terminates after at most
// `fuel` block executions.
func genRandomProgram(seed uint64, blocks, fuel int) string {
	rng := progRNG(seed)
	var b strings.Builder

	regs := []string{"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
		"a0", "a1", "a2", "a3", "s0", "s1", "s2"}
	aluOps := []string{"addq", "subq", "xor", "and", "bis", "bic", "ornot",
		"addl", "subl", "cmpeq", "cmplt", "cmple", "cmpult", "s4addq", "s8addq"}
	shiftOps := []string{"sll", "srl", "sra"}
	cmovOps := []string{"cmoveq", "cmovne", "cmovlt", "cmovge"}
	condBr := []string{"beq", "bne", "blt", "bge", "ble", "bgt", "blbc", "blbs"}

	fmt.Fprintf(&b, `
	.data 0x20000
arena:
	.space 1024
jtab:
	.quad jt0, jt1

	.text 0x10000
	.entry start
start:
	ldiq  sp, 0x7ff000
	ldiq  fp, arena
	ldiq  s5, %d
`, fuel)
	// Random register initialisation.
	for _, reg := range regs {
		fmt.Fprintf(&b, "\tldiq  %s, %d\n", reg, rng.intn(1<<30)-(1<<29))
	}

	for blk := 0; blk < blocks; blk++ {
		fmt.Fprintf(&b, "blk%d:\n", blk)
		nops := 3 + rng.intn(8)
		for i := 0; i < nops; i++ {
			switch rng.intn(12) {
			case 0, 1, 2, 3, 4: // ALU reg/reg or reg/lit
				op := rng.pick(aluOps)
				a, c := rng.pick(regs), rng.pick(regs)
				if rng.intn(2) == 0 {
					fmt.Fprintf(&b, "\t%s %s, #%d, %s\n", op, a, rng.intn(256), c)
				} else {
					fmt.Fprintf(&b, "\t%s %s, %s, %s\n", op, a, rng.pick(regs), c)
				}
			case 5: // shift by literal
				fmt.Fprintf(&b, "\t%s %s, #%d, %s\n", rng.pick(shiftOps),
					rng.pick(regs), rng.intn(64), rng.pick(regs))
			case 6: // multiply
				fmt.Fprintf(&b, "\tmulq %s, %s, %s\n", rng.pick(regs), rng.pick(regs), rng.pick(regs))
			case 7: // conditional move
				fmt.Fprintf(&b, "\t%s %s, %s, %s\n", rng.pick(cmovOps),
					rng.pick(regs), rng.pick(regs), rng.pick(regs))
			case 8: // load from the arena
				fmt.Fprintf(&b, "\tldq %s, %d(fp)\n", rng.pick(regs), rng.intn(128)*8)
			case 9: // store to the arena
				fmt.Fprintf(&b, "\tstq %s, %d(fp)\n", rng.pick(regs), rng.intn(128)*8)
			case 10: // byte load + lda
				fmt.Fprintf(&b, "\tldbu %s, %d(fp)\n", rng.pick(regs), rng.intn(1024))
				fmt.Fprintf(&b, "\tlda %s, %d(%s)\n", rng.pick(regs), rng.intn(64), rng.pick(regs))
			case 11: // call the leaf helper, or take the jump table
				if rng.intn(2) == 0 {
					fmt.Fprintf(&b, "\tbsr helper\n")
				} else {
					fmt.Fprintf(&b, "\tand %s, #1, t8\n", rng.pick(regs))
					fmt.Fprintf(&b, "\tldiq t9, jtab\n")
					fmt.Fprintf(&b, "\ts8addq t8, t9, t9\n")
					fmt.Fprintf(&b, "\tldq t9, 0(t9)\n")
					fmt.Fprintf(&b, "\tjmp (t9)\n")
					fmt.Fprintf(&b, "jret%d_%d:\n", blk, i)
					// jt0/jt1 do not return here; they re-enter at jcont.
					// The label just creates an extra superblock entry.
				}
			}
		}
		// Fuel check, then a random conditional branch, then fall through.
		fmt.Fprintf(&b, "\tsubq s5, #1, s5\n")
		fmt.Fprintf(&b, "\tble s5, done\n")
		target := rng.intn(blocks)
		fmt.Fprintf(&b, "\t%s %s, blk%d\n", rng.pick(condBr), rng.pick(regs), target)
		if blk == blocks-1 {
			fmt.Fprintf(&b, "\tbr blk%d\n", rng.intn(blocks))
		}
	}

	b.WriteString(`
helper:
	addq a0, v0, t11
	xor  t11, a1, t11
	srl  t11, #3, t11
	addq v0, t11, v0
	ret
`)
	b.WriteString(epilogueForRandom)
	return b.String()
}

// The jump-table targets mix a register and jump back via a link register
// the dispatching code sets — to keep generation simple they instead fall
// through into the fuel exit (they act as extra superblock entries).
const epilogueForRandom = `
jt0:
	addq v0, #1, v0
	subq s5, #1, s5
	bgt  s5, jt0ret
	br   done
jt0ret:
	br   jcont
jt1:
	xor  v0, #85, v0
	subq s5, #1, s5
	bgt  s5, jt1ret
	br   done
jt1ret:
	br   jcont
jcont:
	subq s5, #1, s5
	bgt  s5, blk0
done:
	call_pal halt
`

func runInterp(t *testing.T, src string) *emu.CPU {
	t.Helper()
	cpu := emu.New(mem.New())
	if err := cpu.LoadProgram(alphaasm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(20_000_000); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return cpu
}

func TestDifferentialRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is slow")
	}
	configs := []struct {
		name string
		mut  func(*Config)
	}{
		{"modified/ras", func(c *Config) {}},
		{"basic/ras", func(c *Config) { c.Form = ildp.Basic }},
		{"modified/nopred", func(c *Config) { c.Chain = translate.NoPred }},
		{"basic/swpred", func(c *Config) { c.Form = ildp.Basic; c.Chain = translate.SWPred }},
		{"straightened", func(c *Config) { c.Straighten = true }},
		{"modified/1acc", func(c *Config) { c.NumAcc = 1 }},
		{"basic/2acc", func(c *Config) { c.Form = ildp.Basic; c.NumAcc = 2 }},
		{"modified/fused", func(c *Config) { c.FuseMemOps = true }},
		{"basic/fused", func(c *Config) { c.Form = ildp.Basic; c.FuseMemOps = true }},
	}

	for seed := uint64(1); seed <= 30; seed++ {
		src := genRandomProgram(seed*0x9E3779B97F4A7C15+seed, 6+int(seed%5), 300)
		ref := runInterp(t, src)
		for _, cc := range configs {
			cfg := DefaultConfig()
			cfg.HotThreshold = 3
			cc.mut(&cfg)
			v := New(mem.New(), cfg)
			if err := v.LoadProgram(alphaasm.MustAssemble(src)); err != nil {
				t.Fatal(err)
			}
			if err := v.Run(40_000_000); err != nil {
				t.Fatalf("seed %d %s: %v", seed, cc.name, err)
			}
			for r := 0; r < alpha.NumRegs-1; r++ {
				if v.CPU().Reg[r] != ref.Reg[r] {
					t.Fatalf("seed %d %s: r%d = %#x, want %#x\nprogram:\n%s",
						seed, cc.name, r, v.CPU().Reg[r], ref.Reg[r], src)
				}
			}
			// Arena memory must match too.
			for off := uint64(0); off < 1024; off += 8 {
				got, _ := v.CPU().Mem.Read64(0x20000 + off)
				want, _ := ref.Mem.Read64(0x20000 + off)
				if got != want {
					t.Fatalf("seed %d %s: arena[%#x] = %#x, want %#x",
						seed, cc.name, off, got, want)
				}
			}
		}
	}
}

// Package vm implements the co-designed virtual machine runtime: the
// interpret / profile / translate / execute mode-switching loop of §3.1,
// the MRET hot-trace collector, the functional executor for translated
// accumulator (or straightened-Alpha) code including fragment chaining,
// the dual-address return address stack, and the shared dispatch routine.
//
// The VM produces a committed-instruction trace for the timing models and
// accumulates the dynamic statistics behind every table and figure of the
// paper's evaluation.
package vm

import (
	"errors"
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/iverify"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/semcheck"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/trace"
	"github.com/ildp/accdbt/internal/translate"
)

// Paper defaults (§4.1).
const (
	DefaultHotThreshold  = 50
	DefaultMaxSuperblock = 200
	DefaultRASSize       = 16

	// InterpCostPerInst is the modelled interpreter cost in Alpha
	// instructions per interpreted instruction (§4.1: "each interpretation
	// takes about 20 instructions").
	InterpCostPerInst = 20

	// DefaultRetryBudget bounds retranslation attempts per superblock
	// start PC before the PC is quarantined to interpret-only.
	DefaultRetryBudget = 3

	// RecoveryCostPerEvent is the modelled software cost of one recovery
	// episode in Alpha instructions — detection, invalidation, and
	// re-entering the interpreter, sized against the same §4.1 scale as
	// the 20-instruction interpretation cost. It is charged on top of the
	// per-instruction cost of the fallback interpretation itself.
	RecoveryCostPerEvent = 50
)

// Config controls the VM.
type Config struct {
	// Form and NumAcc configure the accumulator translation; ignored when
	// Straighten is set.
	Form   ildp.Form
	NumAcc int

	Chain translate.ChainMode

	// Straighten selects the code-straightening-only DBT (Alpha to
	// straightened Alpha for the conventional superscalar).
	Straighten bool

	// FuseMemOps keeps memory displacements inside load/store instructions
	// instead of splitting address computation (the §4.5 extension).
	FuseMemOps bool

	// TCacheBytes caps the translation cache; exceeding it flushes the
	// whole cache (0 = unbounded, as in the paper).
	TCacheBytes int

	// MaxPages, when > 0, caps the guest's resident memory pages
	// (mem.Memory.Limit): the access that would allocate page MaxPages+1
	// raises a precise *mem.ResourceFault trap at the faulting V-PC, on
	// both the interpreted and translated paths, counted in
	// Stats.ResourceTraps. Checkpoint restore is exempt — a resumed
	// guest gets exactly the pages its checkpoint recorded, and the cap
	// governs further growth (DESIGN.md §15).
	MaxPages int

	// Verify runs the static fragment verifier over every translation
	// before it is installed (paranoid mode): a fragment that violates the
	// I-ISA invariants aborts execution with a diagnostic report instead
	// of being run. Straightened translations are exempt (they carry no
	// accumulator invariants) but still counted as skipped.
	Verify bool

	// SemCheck runs the symbolic equivalence prover over every
	// translation before it is installed: each fragment is statically
	// proved to compute its source superblock's semantics at every exit
	// (final register state, memory effects, next V-PC; DESIGN.md §12).
	// A fragment with a counterexample aborts the run with the diverging
	// terms instead of being run. Unlike Verify, straightened
	// translations are covered too.
	SemCheck bool

	// Paranoid re-checks every fragment against an install-time pristine
	// copy on each entry (top-level and chained). A failed re-check
	// invalidates the fragment and falls back to interpretation — the
	// runtime complement to the static install-time verifier.
	Paranoid bool

	// SelfHeal converts translation and verification failures into
	// recoveries (retranslate with exponential backoff, then quarantine
	// the start PC to interpret-only) instead of aborting the run. Off by
	// default so genuine translator bugs stay loud.
	SelfHeal bool

	// RetryBudget bounds retranslation attempts per superblock start PC
	// before quarantine (default DefaultRetryBudget); only meaningful
	// with SelfHeal.
	RetryBudget int

	// Faults, when non-nil, attaches a deterministic seed-driven fault
	// injector (chaos mode). Injection only decides and corrupts; pair it
	// with Paranoid (bit-flip detection), Verify (poison rejection), and
	// SelfHeal (failure recovery) for full self-healing — the chaos
	// harness forces all three.
	Faults *faultinject.Config

	// Store, when non-nil, attaches a process-wide shared fragment
	// store (internal/fragstore): hot superblocks are content-addressed
	// by hash(superblock bytes ‖ translation config) and translated at
	// most once per process, however many VMs run concurrently; a
	// persisted store warm-starts with zero retranslation. The per-VM
	// translation cache installs a private clone of each artifact, so
	// chain patching and invalidation never touch the shared entry.
	// Verify and SemCheck still run per-VM on hits. The store is
	// bypassed entirely while a fault injector (Faults) is attached:
	// injected corruption must never enter the shared store, and store
	// hits would skip injector draws and shift the deterministic fault
	// schedule.
	Store *fragstore.Store

	// Stop, when non-nil, is the preemption hook (a context-style
	// cancellation test). It is polled only at V-instruction boundaries
	// — the top of the interpret/execute loop and every fragment entry,
	// including chained and dispatched entries inside translated code —
	// never mid-instruction, so architected state is always precise when
	// it fires. When it returns true, Run stops with a *PreemptError
	// carrying the exact V-PC; the run can be checkpointed and resumed
	// bit-identically (DESIGN.md §11).
	Stop func() bool

	// Poll, when non-nil, is the observation hook of the telemetry plane
	// (DESIGN.md §13): it is invoked at exactly the V-instruction
	// boundaries where Stop is polled — the top of the interpret/execute
	// loop and every fragment entry — so an attached observer can
	// service snapshot requests on the VM's own goroutine with the
	// architected state precise and no locks on any hot structure. Poll
	// must only read: it must not mutate VM, cache, or profiler state,
	// and it must not block unboundedly, or it delays retirement. When
	// nil (the default) the cost is one nil check per boundary and runs
	// are bit-identical with and without the build.
	Poll func()

	// WatchdogWindow, when > 0, arms the livelock watchdog: if the
	// retired V-instruction count stops advancing while the VM executes
	// this many instructions of work (translated I-instructions plus
	// interpreted instructions), the fragment being entered is presumed
	// livelocked — its start PC is quarantined to interpret-only and the
	// fragment invalidated through the recovery path, which guarantees
	// forward progress (the interpreter always retires).
	WatchdogWindow int64

	HotThreshold  int
	MaxSuperblock int
	RASSize       int

	// Sink, when non-nil, receives the committed-instruction trace of all
	// translated-code execution (the paper times translated code only).
	Sink trace.Sink

	// InterpSink, when non-nil, also receives records for interpreted
	// instructions (used by the "original" no-DBT baseline).
	InterpSink trace.Sink

	// Metrics, when non-nil, receives fragment lifecycle events
	// (translate, verify, install, chain, evict) and per-fragment
	// translation histograms as the run progresses; Stats.Publish adds
	// the aggregate counters at the end of a run. A nil registry
	// disables all collection at near-zero cost and never changes
	// simulation results.
	Metrics *metrics.Registry

	// Prof, when non-nil, receives execution-trace events (fragment
	// enter/exit, chain-transition verdicts, translations, evictions)
	// as the run progresses; attach the same profiler to the timing
	// model (SetProfiler) for cycle-exact attribution. A nil profiler
	// disables tracing at near-zero cost and never changes simulation
	// results.
	Prof *prof.Profiler
}

// DefaultConfig returns the paper's baseline: modified ISA, four
// accumulators, software prediction plus dual-address RAS.
func DefaultConfig() Config {
	return Config{
		Form:          ildp.Modified,
		NumAcc:        ildp.DefaultAccumulators,
		Chain:         translate.SWPredRAS,
		HotThreshold:  DefaultHotThreshold,
		MaxSuperblock: DefaultMaxSuperblock,
		RASSize:       DefaultRASSize,
	}
}

// Stats aggregates VM execution statistics.
type Stats struct {
	InterpInsts uint64 // V-ISA instructions interpreted
	TransVInsts uint64 // V-ISA instructions retired in translated code
	TransIInsts uint64 // I-ISA instructions executed in translated code

	ClassCounts [5]uint64 // dynamic I-instructions by ildp.Class
	UsageDyn    [8]uint64 // dynamic producing instructions by usage class

	CopiesExecuted uint64

	FragEntries  uint64
	Exits        uint64 // translated-to-VM transitions
	DispatchRuns uint64
	DispatchHits uint64
	SWPredHits   uint64
	SWPredMisses uint64
	RASHits      uint64
	RASMisses    uint64

	Fragments          int
	FragsVerified      int // fragments proven clean by the static verifier
	FragsProved        int // fragments proved equivalent by the symbolic prover
	SrcInstsTranslated int64
	NOPsRemoved        int64
	BranchElims        int64
	TranslateCost      int64
	StaticCodeBytes    int64
	StaticSrcBytes     int64
	StaticCopies       int64
	StaticChain        int64
	Spills             int64
	UsageStatic        translate.UsageCounts

	// Recovery statistics (DESIGN.md §10). All zero unless fault
	// injection or self-healing is active.
	ReverifyFails  uint64 // paranoid entry re-checks that failed
	SpuriousTraps  uint64 // spurious traps recovered at fragment entries
	ForcedEvicts   uint64 // injected full-cache flushes
	CacheShrinks   uint64 // injected capacity shrinks (pressure, not damage)
	TransFailures  uint64 // failed or verifier-rejected translations recovered
	StaleLinks     uint64 // dangling fragment links recovered at runtime
	Quarantines    uint64 // start PCs pinned to interpret-only
	Retranslations uint64 // translation attempts retried after a failure
	FallbackInsts  uint64 // instructions interpreted in recovery fallback
	RecoveryCost   int64  // modelled recovery overhead in Alpha instructions

	// Preemption statistics (DESIGN.md §11). Zero on undisturbed runs.
	Preemptions   uint64 // stop-hook or budget preemptions taken
	WatchdogTrips uint64 // livelock watchdog quarantines

	// Resource-governance statistics (DESIGN.md §15). Zero unless
	// Config.MaxPages is set and the guest hit its cap.
	ResourceTraps uint64 // precise traps raised by the page-limit governor

	// Shared-fragment-store statistics (docs/FORMAT.md). All zero
	// unless Config.Store is set. A hit reuses an existing artifact
	// without translating (TranslateCost is not charged); a shared hit
	// is the subset whose artifact was translated by a different
	// session or loaded from a persisted store; a miss means this VM
	// ran the translator and published the artifact.
	StoreHits       uint64
	StoreMisses     uint64
	StoreSharedHits uint64
}

// Recoveries returns the total recovery episodes: every event that
// abandoned translated execution (or a translation) and fell back to
// the interpreter. Cache shrinks are not counted — they apply pressure
// without abandoning anything.
func (s *Stats) Recoveries() uint64 {
	return s.ReverifyFails + s.SpuriousTraps + s.ForcedEvicts + s.TransFailures +
		s.StaleLinks + s.WatchdogTrips
}

// TotalVInsts returns all V-ISA instructions architecturally retired.
func (s *Stats) TotalVInsts() uint64 { return s.InterpInsts + s.TransVInsts }

// InterpCost returns the modelled interpretation overhead in Alpha
// instructions (§4.1's ~20 instructions per interpreted instruction).
func (s *Stats) InterpCost() int64 { return int64(s.InterpInsts) * InterpCostPerInst }

// VMOverhead returns the total modelled VM software overhead —
// interpretation plus translation plus recovery — in Alpha instructions.
func (s *Stats) VMOverhead() int64 { return s.InterpCost() + s.TranslateCost + s.RecoveryCost }

// Publish copies every aggregate statistic into the registry under the
// "vm." namespace (see DESIGN.md §8 for the metric-to-paper mapping).
// Call it once at the end of a run; it is a no-op on a nil registry.
func (s *Stats) Publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	u := func(name string, v uint64) { reg.Counter(name).Add(v) }
	i := func(name string, v int64) { reg.Counter(name).Add(uint64(v)) }
	u("vm.interp_insts", s.InterpInsts)
	u("vm.trans_v_insts", s.TransVInsts)
	u("vm.trans_i_insts", s.TransIInsts)
	u("vm.copies_executed", s.CopiesExecuted)
	u("vm.frag_entries", s.FragEntries)
	u("vm.exits", s.Exits)
	u("vm.dispatch_runs", s.DispatchRuns)
	u("vm.dispatch_hits", s.DispatchHits)
	u("vm.swpred_hits", s.SWPredHits)
	u("vm.swpred_misses", s.SWPredMisses)
	u("vm.ras_hits", s.RASHits)
	u("vm.ras_misses", s.RASMisses)
	i("vm.fragments", int64(s.Fragments))
	i("vm.frags_verified", int64(s.FragsVerified))
	// The prover counter appears only when the prover ran, so registries
	// (and reports generated from them) from non-SemCheck runs are
	// byte-identical with and without this build.
	if s.FragsProved != 0 {
		i("vm.frags_proved", int64(s.FragsProved))
	}
	i("vm.src_insts_translated", s.SrcInstsTranslated)
	i("vm.nops_removed", s.NOPsRemoved)
	i("vm.branch_elims", s.BranchElims)
	i("vm.translate_cost", s.TranslateCost)
	i("vm.static_code_bytes", s.StaticCodeBytes)
	i("vm.static_src_bytes", s.StaticSrcBytes)
	i("vm.static_copies", s.StaticCopies)
	i("vm.static_chain", s.StaticChain)
	i("vm.spills", s.Spills)
	for c, n := range s.ClassCounts {
		u("vm.class."+ildp.Class(c).String(), n)
	}
	// Metric-name slugs for ildp.UsageClass (whose String forms contain
	// spaces and arrows).
	usageSlugs := [...]string{"none", "no_user", "local", "temp", "liveout",
		"comm", "local_to_global", "no_user_to_global"}
	for uc, n := range s.UsageDyn {
		if n != 0 && uc < len(usageSlugs) {
			u("vm.usage."+usageSlugs[uc], n)
		}
	}
	// Recovery counters appear only on runs that actually recovered, so
	// fault-free registries (and the reports generated from them) are
	// byte-identical with and without this build.
	if s.Recoveries() != 0 || s.CacheShrinks != 0 || s.Quarantines != 0 {
		u("vm.recovery.total", s.Recoveries())
		u("vm.recovery.reverify_fails", s.ReverifyFails)
		u("vm.recovery.spurious_traps", s.SpuriousTraps)
		u("vm.recovery.forced_evicts", s.ForcedEvicts)
		u("vm.recovery.cache_shrinks", s.CacheShrinks)
		u("vm.recovery.trans_failures", s.TransFailures)
		u("vm.recovery.stale_links", s.StaleLinks)
		u("vm.recovery.quarantined_pcs", s.Quarantines)
		u("vm.recovery.retranslations", s.Retranslations)
		u("vm.recovery.fallback_insts", s.FallbackInsts)
		i("vm.recovery.cost", s.RecoveryCost)
	}
	// Preemption counters likewise appear only on runs that were actually
	// preempted or watchdog-tripped, so undisturbed registries stay
	// byte-identical with and without this build.
	if s.Preemptions != 0 || s.WatchdogTrips != 0 {
		u("vm.preempt.preemptions", s.Preemptions)
		u("vm.preempt.watchdog_trips", s.WatchdogTrips)
	}
	// The resource-trap counter appears only on runs the page governor
	// actually stopped, so ungoverned registries stay byte-identical
	// with and without this build.
	if s.ResourceTraps != 0 {
		u("vm.resource_traps", s.ResourceTraps)
	}
	// Store counters appear only on runs that actually consulted a
	// shared fragment store, so store-less registries stay
	// byte-identical with and without this build.
	if s.StoreHits != 0 || s.StoreMisses != 0 {
		u("vm.store.hits", s.StoreHits)
		u("vm.store.misses", s.StoreMisses)
		u("vm.store.shared_hits", s.StoreSharedHits)
	}
}

// ErrBudget is returned by Run when the V-instruction budget is exhausted.
var ErrBudget = errors.New("vm: instruction budget exhausted")

// ErrPreempted matches (via errors.Is) every *PreemptError: any run
// stopped at a V-instruction boundary by the Stop hook or the budget.
var ErrPreempted = errors.New("vm: preempted")

// PreemptError is returned by Run when execution is interrupted at a
// V-instruction boundary: the Stop hook fired, or the V-instruction
// budget ran out. PC is the precise architected V-PC at the boundary —
// the exact point a checkpoint taken now resumes from. It matches
// ErrPreempted always, and additionally ErrBudget when the budget was
// the cause, so budget exhaustion is now just a preemption.
type PreemptError struct {
	PC    uint64
	Cause error // ErrPreempted (stop hook) or ErrBudget
}

func (e *PreemptError) Error() string {
	return fmt.Sprintf("%v at V-PC %#x", e.Cause, e.PC)
}

// Unwrap exposes the cause (errors.Is(err, ErrBudget) for budget trips).
func (e *PreemptError) Unwrap() error { return e.Cause }

// Is reports every preemption as ErrPreempted regardless of cause.
func (e *PreemptError) Is(target error) bool { return target == ErrPreempted }

// VM is a co-designed virtual machine instance.
type VM struct {
	cfg Config
	cpu *emu.CPU
	mem *mem.Memory
	tc  *tcache.Cache

	scratch [ildp.NumGPR - alpha.NumRegs]uint64
	acc     [ildp.MaxAccumulators]uint64
	ras     dualRAS

	counters map[uint64]int

	recording bool
	sb        translate.Superblock
	inTrace   map[uint64]bool

	// Self-healing state: the fault injector (nil when chaos mode is
	// off), per-start-PC translation-failure counts feeding the backoff,
	// the interpret-only quarantine set, and whether the VM is currently
	// interpreting as recovery fallback.
	inj        *faultinject.Injector
	failures   map[uint64]int
	quarantine map[uint64]bool
	inFallback bool

	// Livelock-watchdog state: the retired V-instruction count and work
	// total (translated I-insts + interpreted insts) at the last time
	// retirement was observed to advance.
	wdRetired uint64
	wdWork    uint64

	// testMutateResult, when set, corrupts each translation before the
	// verifier sees it — the test hook proving paranoid mode rejects bad
	// installs.
	testMutateResult func(res *translate.Result)

	Stats Stats
}

// New creates a VM around the given memory image.
func New(m *mem.Memory, cfg Config) *VM {
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = DefaultHotThreshold
	}
	if cfg.MaxSuperblock <= 0 {
		cfg.MaxSuperblock = DefaultMaxSuperblock
	}
	if cfg.RASSize <= 0 {
		cfg.RASSize = DefaultRASSize
	}
	if cfg.NumAcc <= 0 {
		cfg.NumAcc = ildp.DefaultAccumulators
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	form := cfg.Form
	tc := tcache.New(form)
	if cfg.TCacheBytes > 0 {
		tc.SetCapacity(cfg.TCacheBytes)
	}
	tc.SetMetrics(cfg.Metrics)
	tc.SetProfiler(cfg.Prof)
	if cfg.Paranoid {
		tc.EnableShadow()
	}
	v := &VM{
		cfg:        cfg,
		cpu:        emu.New(m),
		mem:        m,
		tc:         tc,
		counters:   map[uint64]int{},
		failures:   map[uint64]int{},
		quarantine: map[uint64]bool{},
		ras:        newDualRAS(cfg.RASSize),
	}
	if cfg.Faults != nil {
		v.inj = faultinject.New(*cfg.Faults)
	}
	if cfg.MaxPages > 0 {
		m.Limit = cfg.MaxPages
	}
	return v
}

// CPU exposes the architected state (for loading programs and inspecting
// results).
func (v *VM) CPU() *emu.CPU { return v.cpu }

// TCache exposes the translation cache (for inspection and examples).
func (v *VM) TCache() *tcache.Cache { return v.tc }

// LoadProgram loads an assembled program and sets the entry point.
func (v *VM) LoadProgram(p *alphaprog.Program) error { return v.cpu.LoadProgram(p) }

// Pages returns the guest's resident page count — the gauge the serve
// scheduler's spill-pressure logic and the telemetry plane read.
func (v *VM) Pages() int { return v.mem.PageCount() }

// noteRunError classifies a terminal run error before it propagates:
// precise traps whose cause is the page-limit governor are counted in
// Stats.ResourceTraps so governance kills are visible in telemetry and
// checkpoints (the reflection flattening carries the counter).
func (v *VM) noteRunError(err error) error {
	if err == nil {
		return nil
	}
	var rf *mem.ResourceFault
	if errors.As(err, &rf) {
		v.Stats.ResourceTraps++
	}
	return err
}

// Run executes until the program halts, a trap propagates, or maxVInsts
// V-ISA instructions have retired (0 = unlimited). Out-of-domain
// semantic panics from the emulator core (*emu.SemanticsError) are
// recovered here and surfaced as ordinary errors tagged with the
// current V-PC; any other panic propagates.
func (v *VM) Run(maxVInsts int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			se, ok := r.(*emu.SemanticsError)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("vm: at V-PC %#x: %w", v.cpu.PC, se)
		}
	}()
	for !v.cpu.Halted {
		if maxVInsts > 0 && int64(v.Stats.TotalVInsts()) >= maxVInsts {
			return v.preempt(ErrBudget)
		}
		if poll := v.cfg.Poll; poll != nil {
			poll()
		}
		if stop := v.cfg.Stop; stop != nil && stop() {
			return v.preempt(ErrPreempted)
		}
		if !v.recording {
			if frag := v.tc.Lookup(v.cpu.PC); frag != nil && v.fragUsable(frag) {
				v.inFallback = false
				exitPC, err := v.execTranslated(frag)
				if err != nil {
					return v.noteRunError(err)
				}
				if v.cpu.Halted {
					return nil
				}
				v.cpu.PC = exitPC
				v.Stats.Exits++
				v.noteCandidate(exitPC)
				continue
			}
		}
		if err := v.interpStep(); err != nil {
			return v.noteRunError(err)
		}
	}
	return nil
}

// noteCandidate bumps the §3.1 trace-start counter for pc (targets of
// indirect jumps, targets of backward taken branches, exit targets of
// existing fragments) and begins recording when it crosses the
// threshold. Quarantined PCs never re-enter translation; PCs whose
// translations have failed see an exponentially backed-off threshold,
// so a transiently-failing superblock retries cheaply while a
// persistently-failing one converges to interpret-only within the
// retry budget.
func (v *VM) noteCandidate(pc uint64) {
	if v.recording || v.tc.Lookup(pc) != nil || v.quarantine[pc] {
		return
	}
	v.counters[pc]++
	threshold := v.cfg.HotThreshold
	if n := v.failures[pc]; n > 0 {
		if n > 16 {
			n = 16
		}
		threshold <<= n
	}
	if v.counters[pc] >= threshold {
		delete(v.counters, pc)
		v.recording = true
		v.sb = translate.Superblock{StartPC: pc}
		v.inTrace = map[uint64]bool{}
	}
}

// interpStep interprets one instruction, profiling and (when hot)
// recording the executed path for superblock formation.
func (v *VM) interpStep() error {
	pc := v.cpu.PC
	inst, err := v.cpu.FetchDecode()
	if err != nil {
		return err
	}

	// Trap-class instructions end superblock collection before executing
	// (§3.1); they are always interpreted.
	if v.recording && isTraceBarrier(&inst) {
		if err := v.finishRecording(translate.EndTrap, pc); err != nil {
			return err
		}
	}

	// Effective addresses must be captured before execution (the base
	// register may be overwritten).
	var memAddr uint64
	if v.cfg.InterpSink != nil && inst.IsMem() {
		memAddr = v.cpu.ReadReg(inst.Rb) + uint64(int64(inst.Disp))
		if inst.Op == alpha.OpLDQU || inst.Op == alpha.OpSTQU {
			memAddr &^= 7
		}
	}

	if err := v.cpu.Exec(inst); err != nil {
		if v.recording {
			// A trap aborts collection.
			v.recording = false
			v.inTrace = nil
		}
		return err
	}
	v.Stats.InterpInsts++
	if v.inFallback {
		v.Stats.FallbackInsts++
	}
	next := v.cpu.PC

	if v.cfg.InterpSink != nil {
		rec := alphaRec(&inst, pc, next)
		rec.MemAddr = memAddr
		v.cfg.InterpSink.Append(rec)
	}

	taken := inst.IsBranch() && next != pc+alpha.InstBytes

	if v.recording {
		rec := translate.SBInst{PC: pc, Inst: inst}
		if inst.IsCondBranch() {
			rec.Taken = taken
		}
		if inst.IsIndirect() {
			rec.PredTarget = next
		}
		v.inTrace[pc] = true
		v.sb.Insts = append(v.sb.Insts, rec)

		switch {
		case inst.IsIndirect():
			return v.finishRecording(translate.EndIndirect, 0)
		case inst.IsCondBranch() && taken && next <= pc:
			// Backward taken conditional branch ends the fragment; the
			// fall-through is the cold continuation.
			return v.finishRecording(translate.EndBackward, pc+alpha.InstBytes)
		case v.inTrace[next]:
			return v.finishRecording(translate.EndCycle, next)
		case v.tc.Lookup(next) != nil:
			// Control reached an existing fragment: stop so the exits can
			// link rather than duplicating its code.
			return v.finishRecording(translate.EndCycle, next)
		case len(v.sb.Insts) >= v.cfg.MaxSuperblock:
			return v.finishRecording(translate.EndMaxSize, next)
		}
		return nil
	}

	// Profiling: candidate program counters are targets of indirect jumps
	// and targets of backward taken conditional branches.
	if inst.IsIndirect() {
		v.noteCandidate(next)
	} else if inst.IsCondBranch() && taken && next <= pc {
		v.noteCandidate(next)
	}
	return nil
}

// isTraceBarrier reports whether the instruction must end superblock
// collection and stay interpreted (PAL calls, unimplemented opcodes, and
// RPCC, whose result is execution-mode dependent).
func isTraceBarrier(inst *alpha.Inst) bool {
	switch inst.Op {
	case alpha.OpCallPAL, alpha.OpUnsupported, alpha.OpInvalid, alpha.OpRPCC:
		return true
	}
	return false
}

// finishRecording translates and installs the collected superblock.
func (v *VM) finishRecording(end translate.EndKind, nextPC uint64) error {
	v.recording = false
	v.inTrace = nil
	sb := v.sb
	sb.End = end
	sb.NextPC = nextPC
	v.sb = translate.Superblock{}

	if v.failures[sb.StartPC] > 0 {
		v.Stats.Retranslations++
	}
	injectKind := v.inj.TranslateFault()
	if injectKind == faultinject.KindFailTranslate {
		seq := v.inj.Applied(injectKind)
		return v.translateFailed(sb.StartPC,
			&faultinject.ErrInjected{Kind: injectKind, Seq: seq})
	}

	var res *translate.Result
	var err error
	var viaStore, storeHit, storeShared bool
	var storeKey fragstore.Key
	// The shared store is bypassed whenever a fault injector or the test
	// mutation hook is active: corrupt artifacts must never enter the
	// process-wide store, and a store hit would skip injector draws and
	// shift the deterministic fault schedule. A superblock with no
	// canonical content address (KeyOf error) translates privately.
	if v.cfg.Store != nil && v.inj == nil && v.testMutateResult == nil {
		key, content, kerr := fragstore.KeyOf(&sb, v.storeConfig())
		if kerr == nil {
			viaStore, storeKey = true, key
			res, storeHit, storeShared, err = v.cfg.Store.Do(key, content, v,
				func() (*translate.Result, error) { return v.translateSB(&sb) })
		}
	}
	if !viaStore {
		res, err = v.translateSB(&sb)
	}
	if err != nil {
		if errors.Is(err, translate.ErrEmptySuperblock) {
			return nil // nothing worth translating (all NOPs)
		}
		werr := fmt.Errorf("vm: translating superblock at %#x: %w", sb.StartPC, err)
		if v.cfg.SelfHeal {
			return v.translateFailed(sb.StartPC, werr)
		}
		return werr
	}
	if injectKind == faultinject.KindPoisonTranslate && v.cfg.Verify {
		// Poison is only applied where the install-time verifier will
		// provably catch it (accumulator fragments under Verify); an
		// unapplied decision is not counted as an injected fault.
		if v.inj.CorruptResult(res) {
			v.inj.Applied(injectKind)
		}
	}
	if storeHit {
		// Reused artifact: no translation happened in this VM, so no
		// translate event, histograms, or cost — a hit's whole point is
		// that the work (and its accounting) stays un-redone.
		v.Stats.StoreHits++
		detail := "private"
		if storeShared {
			v.Stats.StoreSharedHits++
			detail = "shared"
		}
		v.cfg.Metrics.Event(metrics.Event{Kind: metrics.EventStoreHit, Frag: -1,
			VStart: res.VStart, SrcInsts: res.SrcCount, OutInsts: len(res.Insts),
			CodeBytes: res.CodeBytes, Detail: detail})
		v.cfg.Prof.StoreHit(res.VStart, storeShared)
	} else {
		if viaStore {
			v.Stats.StoreMisses++
		}
		v.cfg.Metrics.Event(metrics.Event{Kind: metrics.EventTranslate, Frag: -1,
			VStart: res.VStart, SrcInsts: res.SrcCount, OutInsts: len(res.Insts),
			CodeBytes: res.CodeBytes, Cost: res.Cost})
		v.cfg.Metrics.Histogram("translate.cost_per_fragment").Observe(float64(res.Cost))
		v.cfg.Metrics.Histogram("translate.src_insts_per_fragment").Observe(float64(res.SrcCount))
		v.cfg.Metrics.Histogram("translate.code_bytes_per_fragment").Observe(float64(res.CodeBytes))
		v.cfg.Prof.Translate(res.VStart, res.SrcCount, len(res.Insts), res.Cost)
	}
	if v.testMutateResult != nil {
		v.testMutateResult(res)
	}
	if v.cfg.Verify {
		rep := iverify.Verify(res, iverify.Config{
			Form: v.cfg.Form, NumAcc: v.cfg.NumAcc, Chain: v.cfg.Chain,
		})
		v.cfg.Metrics.Event(metrics.Event{Kind: metrics.EventVerify, Frag: -1,
			VStart: res.VStart, OK: rep.OK(), Skipped: rep.Skipped})
		if !rep.OK() {
			verr := fmt.Errorf("vm: fragment verification failed:\n%s", rep)
			if v.cfg.SelfHeal {
				return v.translateFailed(sb.StartPC, verr)
			}
			return verr
		}
		if !rep.Skipped {
			v.Stats.FragsVerified++
		}
	}
	if v.cfg.SemCheck {
		rep := semcheck.Check(&sb, res)
		v.cfg.Metrics.Event(metrics.Event{Kind: metrics.EventProve, Frag: -1,
			VStart: res.VStart, OK: rep.OK()})
		if !rep.OK() {
			perr := fmt.Errorf("vm: fragment equivalence proof failed:\n%s", rep)
			if v.cfg.SelfHeal {
				return v.translateFailed(sb.StartPC, perr)
			}
			return perr
		}
		v.Stats.FragsProved++
	}
	if viaStore {
		// The store's artifact is immutable and possibly shared with
		// other VMs; install a private clone so exit patching and
		// invalidation stay session-local. This holds on misses too —
		// the result Do returned on a miss is the entry it published.
		if _, err := v.tc.InstallShared(fragstore.CloneForInstall(res), storeKey, storeShared); err != nil {
			return err
		}
	} else if _, err := v.tc.Install(res); err != nil {
		return err
	}
	delete(v.failures, sb.StartPC)
	s := &v.Stats
	s.Fragments++
	s.SrcInstsTranslated += int64(res.SrcCount)
	s.NOPsRemoved += int64(res.NOPCount)
	s.BranchElims += int64(res.BranchElims)
	if !storeHit {
		s.TranslateCost += res.Cost
	}
	s.StaticCodeBytes += int64(res.CodeBytes)
	s.StaticSrcBytes += int64(res.SrcBytes)
	s.StaticCopies += int64(res.CopyCount)
	s.StaticChain += int64(res.ChainCount)
	s.Spills += int64(res.SpillCount)
	s.UsageStatic.Add(res.Usage)
	return nil
}

// translateSB runs the configured translator over one superblock — the
// pure function the shared fragment store memoizes.
func (v *VM) translateSB(sb *translate.Superblock) (*translate.Result, error) {
	if v.cfg.Straighten {
		return translate.Straighten(sb, v.cfg.Chain)
	}
	return translate.Translate(sb, translate.Config{
		Form: v.cfg.Form, NumAcc: v.cfg.NumAcc, Chain: v.cfg.Chain,
		FuseMemOps: v.cfg.FuseMemOps,
	})
}

// storeConfig returns this VM's translation configuration as the
// fragment store addresses it.
func (v *VM) storeConfig() fragstore.Config {
	return fragstore.Config{
		Straighten: v.cfg.Straighten,
		Translate: translate.Config{
			Form: v.cfg.Form, NumAcc: v.cfg.NumAcc, Chain: v.cfg.Chain,
			FuseMemOps: v.cfg.FuseMemOps,
		},
	}
}

// alphaRec builds a trace record for one interpreted Alpha instruction.
func alphaRec(inst *alpha.Inst, pc, next uint64) trace.Rec {
	rec := trace.Rec{
		PC:     pc,
		Size:   alpha.InstBytes,
		SrcReg: [2]uint8{trace.NoReg, trace.NoReg},
		DstReg: trace.NoReg,
		SrcAcc: trace.NoAcc,
		DstAcc: trace.NoAcc,
	}
	var srcs []alpha.Reg
	srcs = inst.Sources(srcs)
	for i, r := range srcs {
		if i >= 2 {
			break
		}
		rec.SrcReg[i] = uint8(r)
	}
	if d := inst.Dest(); d != alpha.RegZero {
		rec.DstReg = uint8(d)
		rec.DstOperational = true
	}
	switch {
	case inst.IsNOP():
		rec.Class = trace.ClassNop
	case inst.Op == alpha.OpMULL || inst.Op == alpha.OpMULQ || inst.Op == alpha.OpUMULH:
		rec.Class = trace.ClassMul
	case inst.IsLoad():
		rec.Class = trace.ClassLoad
		rec.MemWidth = emu.MemWidth(inst.Op)
	case inst.IsStore():
		rec.Class = trace.ClassStore
		rec.MemWidth = emu.MemWidth(inst.Op)
	case inst.IsCondBranch():
		rec.Class = trace.ClassBranch
	case inst.Op == alpha.OpBSR:
		rec.Class = trace.ClassCall
	case inst.Op == alpha.OpJSR || inst.Op == alpha.OpJSRCoroutine:
		rec.Class = trace.ClassCall
		rec.Indirect = true
	case inst.Op == alpha.OpBR:
		rec.Class = trace.ClassJump
	case inst.Op == alpha.OpRET:
		rec.Class = trace.ClassRet
	case inst.Op == alpha.OpJMP:
		rec.Class = trace.ClassInd
		rec.Indirect = true
	default:
		rec.Class = trace.ClassALU
	}
	rec.VCredit = 1
	if inst.IsBranch() {
		rec.Taken = next != pc+alpha.InstBytes
		rec.Target = next
	}
	return rec
}

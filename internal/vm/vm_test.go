package vm

import (
	"errors"
	"fmt"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/trace"
	"github.com/ildp/accdbt/internal/translate"
)

// torture exercises loops, recursion (BSR/RET), register-indirect jumps
// through a jump table, conditional moves, byte loads, and stores.
const torture = `
	.data 0x20000
table:
	.quad 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8
bytes:
	.asciz "hello, vm world!"
	.align 8
results:
	.space 64
	.data 0x21000
jtab:
	.quad jt0, jt1, jt2, jt3

	.text 0x10000
start:
	ldiq  sp, 0x80000
	; ---- table sum
	ldiq  a0, table
	lda   a1, 12(zero)
	clr   v0
sumloop:
	ldq   t0, 0(a0)
	addq  v0, t0, v0
	lda   a0, 8(a0)
	subq  a1, #1, a1
	bne   a1, sumloop
	ldiq  t5, results
	stq   v0, 0(t5)
	; ---- hot byte-checksum loop (the Fig. 2 flavour)
	ldiq  s0, 200
outer:
	ldiq  a0, bytes
	lda   a1, 16(zero)
	clr   t0
	clr   v0
inner:
	ldbu  t2, 0(a0)
	subl  a1, #1, a1
	lda   a0, 1(a0)
	xor   t0, t2, t2
	srl   t0, #8, t0
	and   t2, #255, t2
	addq  v0, t2, v0
	bne   a1, inner
	subq  s0, #1, s0
	bne   s0, outer
	ldiq  t5, results
	stq   v0, 8(t5)
	; ---- recursion
	lda   a0, 10(zero)
	bsr   fib
	ldiq  t5, results
	stq   v0, 16(t5)
	; ---- cmov max scan
	ldiq  a0, table
	lda   a1, 12(zero)
	clr   v0
maxloop:
	ldq   t0, 0(a0)
	cmplt v0, t0, t1
	cmovne t1, t0, v0
	lda   a0, 8(a0)
	subq  a1, #1, a1
	bne   a1, maxloop
	stq   v0, 24(t5)
	; ---- indirect jump table
	ldiq  s1, 150
	clr   s2
igloop:
	and   s1, #3, t0
	ldiq  t1, jtab
	s8addq t0, t1, t1
	ldq   t2, 0(t1)
	jmp   (t2)
jt0:
	addq  s2, #1, s2
	br    igdone
jt1:
	addq  s2, #2, s2
	br    igdone
jt2:
	addq  s2, #3, s2
	br    igdone
jt3:
	addq  s2, #5, s2
igdone:
	subq  s1, #1, s1
	bne   s1, igloop
	stq   s2, 32(t5)
	; ---- console + exit
	lda   v0, 2(zero)
	lda   a0, 79(zero)
	call_pal callsys
	lda   a0, 75(zero)
	call_pal callsys
	lda   v0, 1(zero)
	lda   a0, 0(zero)
	call_pal callsys

fib:
	cmplt a0, #2, t0
	beq   t0, fibrec
	mov   a0, v0
	ret
fibrec:
	stq   ra, -8(sp)
	stq   a0, -16(sp)
	lda   sp, -16(sp)
	subq  a0, #1, a0
	bsr   fib
	ldq   a0, 0(sp)
	stq   v0, 0(sp)
	subq  a0, #2, a0
	bsr   fib
	ldq   t0, 0(sp)
	addq  v0, t0, v0
	lda   sp, 16(sp)
	ldq   ra, -8(sp)
	ret
`

// refRun interprets the program to completion on a bare CPU.
func refRun(t *testing.T, src string) *emu.CPU {
	t.Helper()
	cpu := emu.New(mem.New())
	if err := cpu.LoadProgram(alphaasm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(50_000_000); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return cpu
}

func vmRun(t *testing.T, src string, cfg Config) *VM {
	t.Helper()
	v := New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(50_000_000); err != nil {
		t.Fatalf("vm run (%+v): %v", cfg, err)
	}
	return v
}

func compareState(t *testing.T, label string, ref *emu.CPU, v *VM, dataAddrs []uint64) {
	t.Helper()
	got := v.CPU()
	for r := 0; r < alpha.NumRegs-1; r++ { // r31 always zero
		if got.Reg[r] != ref.Reg[r] {
			t.Errorf("%s: r%d = %#x, want %#x", label, r, got.Reg[r], ref.Reg[r])
		}
	}
	if got.ConsoleString() != ref.ConsoleString() {
		t.Errorf("%s: console = %q, want %q", label, got.ConsoleString(), ref.ConsoleString())
	}
	if got.ExitStatus != ref.ExitStatus || !got.Halted {
		t.Errorf("%s: exit = %d halted=%v", label, got.ExitStatus, got.Halted)
	}
	for _, addr := range dataAddrs {
		w, err1 := v.CPU().Mem.Read64(addr)
		r, err2 := ref.Mem.Read64(addr)
		if err1 != nil || err2 != nil || w != r {
			t.Errorf("%s: mem[%#x] = %#x, want %#x", label, addr, w, r)
		}
	}
}

// resultsAddrs are the torture program's output slots: results = table (96
// bytes) + asciz (17 bytes) aligned up to 8 = 0x20078.
func resultsAddrs() []uint64 {
	const results = 0x20078
	return []uint64{results + 0, results + 8, results + 16, results + 24, results + 32}
}

func TestDBTEquivalenceAllConfigs(t *testing.T) {
	ref := refRun(t, torture)
	// The torture program's stores are to unaligned-but-consistent
	// addresses (results is byte-addressed); Read64 on both sides uses the
	// same addresses, so alignment is consistent. Verify the reference
	// actually computed interesting values.
	if ref.ConsoleString() != "OK" {
		t.Fatalf("reference console = %q", ref.ConsoleString())
	}

	forms := []struct {
		name       string
		form       ildp.Form
		straighten bool
	}{
		{"basic", ildp.Basic, false},
		{"modified", ildp.Modified, false},
		{"straightened", 0, true},
	}
	chains := []translate.ChainMode{translate.NoPred, translate.SWPred, translate.SWPredRAS}

	for _, f := range forms {
		for _, ch := range chains {
			label := fmt.Sprintf("%s/%s", f.name, ch)
			t.Run(label, func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Form = f.form
				cfg.Straighten = f.straighten
				cfg.Chain = ch
				cfg.HotThreshold = 5
				v := vmRun(t, torture, cfg)
				compareState(t, label, ref, v, resultsAddrs())
				if v.Stats.Fragments == 0 {
					t.Error("no fragments were translated")
				}
				if v.Stats.TransVInsts == 0 {
					t.Error("no V-instructions retired in translated mode")
				}
				// Most of the execution must run translated with a low
				// threshold.
				frac := float64(v.Stats.TransVInsts) / float64(v.Stats.TotalVInsts())
				if frac < 0.5 {
					t.Errorf("translated fraction = %.2f, want > 0.5", frac)
				}
			})
		}
	}
}

func TestDBTEquivalenceSmallThresholds(t *testing.T) {
	ref := refRun(t, torture)
	for _, thr := range []int{1, 2, 17} {
		cfg := DefaultConfig()
		cfg.HotThreshold = thr
		v := vmRun(t, torture, cfg)
		compareState(t, fmt.Sprintf("thr=%d", thr), ref, v, resultsAddrs())
	}
}

func TestAccumulatorCountEquivalence(t *testing.T) {
	ref := refRun(t, torture)
	for _, n := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.NumAcc = n
		cfg.HotThreshold = 5
		v := vmRun(t, torture, cfg)
		compareState(t, fmt.Sprintf("acc=%d", n), ref, v, resultsAddrs())
	}
}

func TestRASHitsOnCallReturn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 3
	v := vmRun(t, torture, cfg)
	if v.Stats.RASHits == 0 {
		t.Errorf("dual RAS never hit (hits=%d misses=%d)", v.Stats.RASHits, v.Stats.RASMisses)
	}
	// Recursion returns are highly predictable; most should hit once warm.
	total := v.Stats.RASHits + v.Stats.RASMisses
	if total > 0 && float64(v.Stats.RASHits)/float64(total) < 0.5 {
		t.Errorf("RAS hit rate %.2f too low (hits=%d misses=%d)",
			float64(v.Stats.RASHits)/float64(total), v.Stats.RASHits, v.Stats.RASMisses)
	}
}

func TestChainModeDynamicCounts(t *testing.T) {
	// no_pred must execute more dispatch runs than sw_pred, which must
	// execute more than sw_pred.ras (Fig. 4/5 mechanism).
	runs := map[translate.ChainMode]uint64{}
	iinsts := map[translate.ChainMode]uint64{}
	for _, ch := range []translate.ChainMode{translate.NoPred, translate.SWPred, translate.SWPredRAS} {
		cfg := DefaultConfig()
		cfg.Chain = ch
		cfg.HotThreshold = 5
		v := vmRun(t, torture, cfg)
		runs[ch] = v.Stats.DispatchRuns
		iinsts[ch] = v.Stats.TransIInsts
	}
	if !(runs[translate.NoPred] > runs[translate.SWPred]) {
		t.Errorf("dispatch runs: no_pred=%d should exceed sw_pred=%d",
			runs[translate.NoPred], runs[translate.SWPred])
	}
	if !(runs[translate.SWPred] >= runs[translate.SWPredRAS]) {
		t.Errorf("dispatch runs: sw_pred=%d should be >= sw_pred.ras=%d",
			runs[translate.SWPred], runs[translate.SWPredRAS])
	}
	if !(iinsts[translate.NoPred] > iinsts[translate.SWPredRAS]) {
		t.Errorf("I-instructions: no_pred=%d should exceed sw_pred.ras=%d",
			iinsts[translate.NoPred], iinsts[translate.SWPredRAS])
	}
}

func TestBasicExpandsMoreThanModified(t *testing.T) {
	counts := map[ildp.Form]uint64{}
	copies := map[ildp.Form]uint64{}
	for _, form := range []ildp.Form{ildp.Basic, ildp.Modified} {
		cfg := DefaultConfig()
		cfg.Form = form
		cfg.HotThreshold = 5
		v := vmRun(t, torture, cfg)
		counts[form] = v.Stats.TransIInsts
		copies[form] = v.Stats.CopiesExecuted
	}
	if counts[ildp.Basic] <= counts[ildp.Modified] {
		t.Errorf("basic executed %d I-insts, modified %d; basic should expand more",
			counts[ildp.Basic], counts[ildp.Modified])
	}
	if copies[ildp.Basic] <= copies[ildp.Modified] {
		t.Errorf("basic copies %d, modified %d; basic should copy more",
			copies[ildp.Basic], copies[ildp.Modified])
	}
}

func TestTraceSinkReceivesRecords(t *testing.T) {
	var buf trace.Counter
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.Sink = &buf
	v := vmRun(t, torture, cfg)
	if buf.Recs != v.Stats.TransIInsts {
		t.Errorf("sink saw %d records, executor counted %d", buf.Recs, v.Stats.TransIInsts)
	}
	if buf.VCredit != v.Stats.TransVInsts {
		t.Errorf("sink V-credit %d, executor %d", buf.VCredit, v.Stats.TransVInsts)
	}
}

func TestPreciseTrapInTranslatedCode(t *testing.T) {
	// A hot loop walks an array and eventually crosses into unmapped
	// memory (strict mode): the trap must be precise — correct V-PC and
	// correct architected register values — in both ISA forms.
	src := `
	.text 0x10000
start:
	ldiq  a0, 0x20000
	ldiq  a1, 0x30000      ; limit far beyond the mapped page
	clr   v0
loop:
	ldq   t0, 0(a0)
	addq  v0, t0, v0
	lda   a0, 8(a0)
	subq  a1, a0, t1
	bne   t1, loop
	call_pal halt
`
	for _, form := range []ildp.Form{ildp.Basic, ildp.Modified} {
		t.Run(form.String(), func(t *testing.T) {
			m := mem.New()
			m.Strict = true
			m.Map(0x20000, 0x1000) // one mapped page; 0x21000.. faults
			cfg := DefaultConfig()
			cfg.Form = form
			cfg.HotThreshold = 4
			v := New(m, cfg)
			if err := v.LoadProgram(alphaasm.MustAssemble(src)); err != nil {
				t.Fatal(err)
			}
			err := v.Run(10_000_000)
			var trap *emu.Trap
			if !errors.As(err, &trap) {
				t.Fatalf("expected trap, got %v", err)
			}
			// The ldq at loop head is the faulting instruction.
			wantPC := uint64(0x10000 + 5*4) // after 2 ldiq (2 words each) + clr
			if trap.PC != wantPC {
				t.Errorf("trap PC = %#x, want %#x", trap.PC, wantPC)
			}
			var af *mem.AccessFault
			if !errors.As(trap, &af) || af.Addr != 0x21000 {
				t.Errorf("fault = %v, want access fault at 0x21000", trap.Cause)
			}
			// Architected state: a0 must equal the faulting address, and
			// v0 must hold the sum of the mapped page (512 zeros = 0 here,
			// but a0/a1 prove the point).
			if got := v.CPU().Reg[16]; got != 0x21000 {
				t.Errorf("a0 = %#x, want 0x21000", got)
			}
			if got := v.CPU().Reg[17]; got != 0x30000 {
				t.Errorf("a1 = %#x, want 0x30000", got)
			}
			if v.Stats.FragEntries == 0 {
				t.Error("trap did not occur in translated code")
			}
		})
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	v := vmRun(t, torture, cfg)
	s := &v.Stats
	if s.Fragments == 0 || s.SrcInstsTranslated == 0 || s.TranslateCost == 0 {
		t.Errorf("translation stats empty: %+v", s)
	}
	per := float64(s.TranslateCost) / float64(s.SrcInstsTranslated)
	if per < 300 || per > 3000 {
		t.Errorf("translation cost per inst = %.0f, want O(1000)", per)
	}
	var classTotal uint64
	for _, c := range s.ClassCounts {
		classTotal += c
	}
	if classTotal != s.TransIInsts {
		t.Errorf("class counts %d != executed %d", classTotal, s.TransIInsts)
	}
}

func TestFragmentChainingAvoidsDispatchWhenDirect(t *testing.T) {
	// A simple hot loop with no indirect jumps never needs dispatch.
	src := `
	.text 0x10000
start:
	ldiq a0, 100000
loop:
	subq a0, #1, a0
	bne  a0, loop
	call_pal halt
`
	cfg := DefaultConfig()
	cfg.HotThreshold = 10
	v := vmRun(t, src, cfg)
	if v.Stats.DispatchRuns != 0 {
		t.Errorf("dispatch ran %d times for a direct loop", v.Stats.DispatchRuns)
	}
	if v.Stats.FragEntries == 0 {
		t.Error("loop never entered translated code")
	}
	// The loop fragment must link to itself: entries into translated mode
	// should be tiny compared with iterations.
	if v.Stats.Exits > 100 {
		t.Errorf("too many VM exits (%d): self-link not working", v.Stats.Exits)
	}
}

func TestTinyTranslationCacheEquivalence(t *testing.T) {
	// A translation cache far too small for the working set forces
	// constant flushing and retranslation; results must stay identical.
	ref := refRun(t, torture)
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.TCacheBytes = 256 // a fragment or two at most
	v := vmRun(t, torture, cfg)
	compareState(t, "tiny-tcache", ref, v, resultsAddrs())
	if v.TCache().Flushes == 0 {
		t.Error("tiny cache never flushed")
	}
	if v.Stats.Fragments < 10 {
		t.Errorf("expected heavy retranslation, got %d fragments", v.Stats.Fragments)
	}
}

package vm

import (
	"errors"
	"testing"

	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/workload"
)

// runMembomb runs the membomb guest under the given config and returns
// the VM and its terminal error.
func runMembomb(t *testing.T, cfg Config) (*VM, error) {
	t.Helper()
	spec, err := workload.ByName("membomb", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	v := New(m, cfg)
	if err := v.LoadProgram(spec.MustProgram()); err != nil {
		t.Fatal(err)
	}
	return v, v.Run(50_000_000)
}

// TestResourceTrapInterpreted checks the governed interpreter path: the
// memory bomb dies with a typed, precise *mem.ResourceFault trap and the
// trap is counted in Stats.ResourceTraps.
func TestResourceTrapInterpreted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 64
	cfg.HotThreshold = 1 << 30 // never translate: pure interpreter
	v, err := runMembomb(t, cfg)
	var trap *emu.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want precise trap, got %v", err)
	}
	var rf *mem.ResourceFault
	if !errors.As(err, &rf) {
		t.Fatalf("trap cause = %v, want *mem.ResourceFault", trap.Cause)
	}
	if rf.Limit != 64 {
		t.Errorf("fault limit = %d, want 64", rf.Limit)
	}
	if v.CPU().PC != trap.PC {
		t.Errorf("architected PC %#x != trap PC %#x (imprecise)", v.CPU().PC, trap.PC)
	}
	if v.Stats.ResourceTraps != 1 {
		t.Errorf("ResourceTraps = %d, want 1", v.Stats.ResourceTraps)
	}
	if v.Pages() != 64 {
		t.Errorf("resident pages = %d, want exactly the cap (64)", v.Pages())
	}
}

// TestResourceTrapTranslated checks the governed translated path: with a
// hot threshold low enough that the bomb loop runs as a fragment, the
// resource trap is still typed and bit-identical to the interpreter's —
// same V-PC, same architected registers, same memory image.
func TestResourceTrapTranslated(t *testing.T) {
	interp := DefaultConfig()
	interp.MaxPages = 128
	interp.HotThreshold = 1 << 30
	vi, erri := runMembomb(t, interp)

	trans := DefaultConfig()
	trans.MaxPages = 128
	trans.HotThreshold = 4
	vt, errt := runMembomb(t, trans)

	if vt.Stats.TransVInsts == 0 {
		t.Fatal("bomb loop never ran translated; test is vacuous")
	}
	var ti, tt *emu.Trap
	if !errors.As(erri, &ti) || !errors.As(errt, &tt) {
		t.Fatalf("want traps on both paths, got interp=%v translated=%v", erri, errt)
	}
	var rf *mem.ResourceFault
	if !errors.As(errt, &rf) {
		t.Fatalf("translated trap cause = %v, want *mem.ResourceFault", tt.Cause)
	}
	if ti.PC != tt.PC {
		t.Errorf("trap V-PC diverges: interp %#x, translated %#x", ti.PC, tt.PC)
	}
	if vt.Stats.ResourceTraps != 1 {
		t.Errorf("translated ResourceTraps = %d, want 1", vt.Stats.ResourceTraps)
	}
	for r := 0; r < 32; r++ {
		if vi.CPU().Reg[r] != vt.CPU().Reg[r] {
			t.Errorf("reg %d diverges: interp %#x, translated %#x", r, vi.CPU().Reg[r], vt.CPU().Reg[r])
		}
	}
	if ok, addr := mem.Equal(vi.CPU().Mem, vt.CPU().Mem); !ok {
		t.Errorf("memory diverges at %#x", addr)
	}
}

// TestUngovernedMembombHalts checks the bomb is bounded without a limit,
// so differential harnesses can run it to completion.
func TestUngovernedMembombHalts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 4
	v, err := runMembomb(t, cfg)
	if err != nil {
		t.Fatalf("ungoverned membomb: %v", err)
	}
	if !v.CPU().Halted {
		t.Fatal("not halted")
	}
	if v.Pages() < 512 {
		t.Errorf("resident pages = %d, want >= 512", v.Pages())
	}
	if v.Stats.ResourceTraps != 0 {
		t.Errorf("ResourceTraps = %d on ungoverned run", v.Stats.ResourceTraps)
	}
}

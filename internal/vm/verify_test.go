package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/iverify"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// lintInstalled re-verifies every fragment in the VM's translation cache
// with links resolved against the cache — the state the executor actually
// runs, including exits the patcher has since rewritten into direct
// branches.
func lintInstalled(t *testing.T, label string, v *VM) int {
	t.Helper()
	tc := v.TCache()
	cfg := iverify.Config{
		Form: v.cfg.Form, NumAcc: v.cfg.NumAcc, Chain: v.cfg.Chain,
		ResolveFrag: func(id int32) (uint64, bool) {
			f := tc.Frag(id)
			if f == nil {
				return 0, false
			}
			return f.VStart, true
		},
	}
	n := 0
	for id := int32(0); int(id) < tc.Len(); id++ {
		rep := iverify.Check(iverify.FromFragment(tc.Frag(id)), cfg)
		if !rep.OK() {
			t.Errorf("%s: installed fragment %d:\n%s", label, id, rep)
		}
		if !rep.Skipped {
			n++
		}
	}
	return n
}

// TestVerifySweepAllWorkloads runs every workload under every ISA form,
// chain mode, and accumulator-file size with the paranoid verifier
// enabled: 12 x 2 x 3 x 2 = 144 configurations. The VM aborts the run if
// any freshly translated fragment fails verification; afterwards the
// whole installed cache is linted again with links resolved. -short keeps
// one workload per letter bucket to stay fast.
func TestVerifySweepAllWorkloads(t *testing.T) {
	names := workload.Names()
	if len(names) != 12 {
		t.Fatalf("expected the paper's 12 workloads, have %d", len(names))
	}
	if testing.Short() {
		names = []string{"gzip", "mcf", "perlbmk"}
	}
	forms := []ildp.Form{ildp.Basic, ildp.Modified}
	chains := []translate.ChainMode{translate.NoPred, translate.SWPred, translate.SWPredRAS}
	accs := []int{ildp.DefaultAccumulators, ildp.MaxAccumulators}

	for _, name := range names {
		spec, err := workload.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		prog := spec.MustProgram()
		for _, form := range forms {
			for _, chain := range chains {
				for _, acc := range accs {
					label := fmt.Sprintf("%s/%v/%v/acc%d", name, form, chain, acc)
					t.Run(label, func(t *testing.T) {
						cfg := DefaultConfig()
						cfg.Form, cfg.Chain, cfg.NumAcc = form, chain, acc
						cfg.HotThreshold = 10
						cfg.Verify = true
						v := New(mem.New(), cfg)
						if err := v.LoadProgram(prog); err != nil {
							t.Fatal(err)
						}
						if err := v.Run(150_000); err != nil && !errors.Is(err, ErrBudget) {
							t.Fatalf("run aborted: %v", err)
						}
						if v.Stats.Fragments == 0 {
							t.Fatal("no fragments were translated")
						}
						if v.Stats.FragsVerified != v.Stats.Fragments {
							t.Errorf("verified %d of %d fragments",
								v.Stats.FragsVerified, v.Stats.Fragments)
						}
						lintInstalled(t, label, v)
					})
				}
			}
		}
	}
}

// TestVerifyTortureEquivalence checks the paranoid mode is not just
// silent but harmless: with Verify on, the torture program still runs to
// the same architected state.
func TestVerifyTortureEquivalence(t *testing.T) {
	ref := refRun(t, torture)
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.Verify = true
	v := vmRun(t, torture, cfg)
	compareState(t, "verify-on", ref, v, resultsAddrs())
	if v.Stats.FragsVerified != v.Stats.Fragments {
		t.Errorf("verified %d of %d fragments", v.Stats.FragsVerified, v.Stats.Fragments)
	}
}

// TestVerifyAfterEviction forces constant cache flushing, so the same
// superblocks are re-translated many times over; every re-translation
// must verify, and the surviving cache generation must lint clean with
// its links resolved.
func TestVerifyAfterEviction(t *testing.T) {
	ref := refRun(t, torture)
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.TCacheBytes = 512
	cfg.Verify = true
	v := vmRun(t, torture, cfg)
	compareState(t, "evict-verify", ref, v, resultsAddrs())
	if v.TCache().Flushes == 0 {
		t.Fatal("cache never flushed; eviction path untested")
	}
	if v.Stats.FragsVerified != v.Stats.Fragments {
		t.Errorf("verified %d of %d fragments (including re-translations)",
			v.Stats.FragsVerified, v.Stats.Fragments)
	}
	if n := lintInstalled(t, "evict-verify", v); n == 0 {
		t.Error("final cache generation is empty")
	}
}

// TestVerifyRejectsCorruptInstall proves the paranoid mode actually stops
// the VM: a fragment corrupted between translation and install must abort
// the run with the verifier's diagnostic.
func TestVerifyRejectsCorruptInstall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.Verify = true
	v := New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
		t.Fatal(err)
	}
	v.testMutateResult = func(res *translate.Result) {
		if len(res.PEI) > 0 {
			res.PEI = res.PEI[:len(res.PEI)-1]
		}
	}
	err := v.Run(50_000_000)
	if err == nil {
		t.Fatal("corrupted translation installed without complaint")
	}
	if want := "fragment verification failed"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
	if !strings.Contains(err.Error(), "[P1 pei-table") {
		t.Fatalf("diagnostic lacks the P1 tag:\n%v", err)
	}
}

package vm

import (
	"errors"
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/translate"
)

// TestSelfHealQuarantine proves the retranslate-with-backoff / quarantine
// policy converges: with every translation permanently poisoned (a
// size-accounting corruption the install-time verifier always rejects),
// a self-healing run must still complete with the reference architected
// state, never install a fragment, and never attempt any superblock
// start PC more often than the retry budget allows.
func TestSelfHealQuarantine(t *testing.T) {
	ref := refRun(t, torture)
	reg := metrics.NewRegistry()
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.Verify = true
	cfg.SelfHeal = true
	cfg.RetryBudget = 3
	cfg.Metrics = reg
	v := New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
		t.Fatal(err)
	}
	v.testMutateResult = func(res *translate.Result) { res.CodeBytes += 2 }
	if err := v.Run(50_000_000); err != nil {
		t.Fatalf("self-healing run aborted: %v", err)
	}
	compareState(t, "quarantine", ref, v, resultsAddrs())

	st := &v.Stats
	if st.Fragments != 0 {
		t.Errorf("%d poisoned fragments were installed", st.Fragments)
	}
	if st.Quarantines == 0 {
		t.Error("no start PC was quarantined")
	}
	if st.TransIInsts != 0 {
		t.Errorf("%d I-instructions executed with an empty cache", st.TransIInsts)
	}
	if st.FallbackInsts == 0 {
		t.Error("no instructions were attributed to recovery fallback")
	}
	if want := int64(st.Recoveries()) * RecoveryCostPerEvent; st.RecoveryCost != want {
		t.Errorf("recovery cost %d, want %d (%d episodes)",
			st.RecoveryCost, want, st.Recoveries())
	}

	// Attempt accounting from the metrics event stream: every translation
	// emits one EventTranslate before the verifier rejects it, so per-PC
	// event counts are exactly the retranslation attempts.
	attempts := map[uint64]int{}
	for _, e := range reg.Events() {
		if e.Kind == metrics.EventTranslate {
			attempts[e.VStart]++
		}
	}
	if len(attempts) == 0 {
		t.Fatal("no translations were attempted")
	}
	var total uint64
	for pc, n := range attempts {
		total += uint64(n)
		if n > cfg.RetryBudget {
			t.Errorf("pc %#x translated %d times, budget %d", pc, n, cfg.RetryBudget)
		}
	}
	if st.TransFailures != total {
		t.Errorf("TransFailures = %d, want %d (one per attempt)", st.TransFailures, total)
	}
	if want := total - uint64(len(attempts)); st.Retranslations != want {
		t.Errorf("Retranslations = %d, want %d (attempts beyond each PC's first)",
			st.Retranslations, want)
	}
}

// TestSelfHealGenuineFailureBackoff checks the backoff actually delays
// retranslation: with the budget at its default, the failure count per
// PC shifts the hot threshold left, so the second attempt needs twice
// the profile count of the first. Observable consequence: a poisoned
// run interprets strictly more instructions than a verify-only run of
// the same program that installs its fragments.
func TestSelfHealGenuineFailureBackoff(t *testing.T) {
	base := DefaultConfig()
	base.HotThreshold = 5
	base.Verify = true
	clean := vmRun(t, torture, base)

	cfg := base
	cfg.SelfHeal = true
	cfg.Metrics = metrics.NewRegistry()
	v := New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
		t.Fatal(err)
	}
	v.testMutateResult = func(res *translate.Result) { res.CodeBytes += 2 }
	if err := v.Run(50_000_000); err != nil {
		t.Fatalf("self-healing run aborted: %v", err)
	}
	if v.Stats.InterpInsts <= clean.Stats.InterpInsts {
		t.Errorf("poisoned run interpreted %d insts, clean run %d — quarantine never bit",
			v.Stats.InterpInsts, clean.Stats.InterpInsts)
	}
	if v.Stats.VMOverhead() <= clean.Stats.VMOverhead() {
		t.Errorf("poisoned overhead %d not above clean overhead %d",
			v.Stats.VMOverhead(), clean.Stats.VMOverhead())
	}
}

// TestSemanticsPanicSurfacedAtRun proves the emulator core's typed
// out-of-domain panics are recovered at the VM boundary: corrupting an
// installed ALU instruction's opcode into a non-ALU op (with the static
// verifier off, so it installs) must surface as an *emu.SemanticsError
// from Run, not a raw panic.
func TestSemanticsPanicSurfacedAtRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	v := New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
		t.Fatal(err)
	}
	mutated := false
	v.testMutateResult = func(res *translate.Result) {
		if mutated {
			return
		}
		for i := range res.Insts {
			inst := &res.Insts[i]
			if inst.Kind == ildp.KindALU {
				inst.Op = alpha.OpCallPAL
				mutated = true
				return
			}
		}
	}
	err := v.Run(50_000_000)
	if !mutated {
		t.Skip("torture program produced no mutable ALU instruction")
	}
	if err == nil {
		t.Fatal("out-of-domain op executed without error")
	}
	var se *emu.SemanticsError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) is not an *emu.SemanticsError", err, err)
	}
	if se.Func != "EvalOp" {
		t.Errorf("SemanticsError.Func = %q, want EvalOp", se.Func)
	}
}

package vm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/translate"
)

func storeCfg(store *fragstore.Store) Config {
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.Store = store
	return cfg
}

// TestStoreConcurrentSharing runs N goroutine-VMs of the same workload
// against one shared store: every unique superblock is translated
// exactly once in the whole process, every other VM shares the
// artifact, and every VM still computes the oracle's result.
func TestStoreConcurrentSharing(t *testing.T) {
	ref := refRun(t, torture)
	store := fragstore.New()

	const vms = 8
	got := make([]*VM, vms)
	var wg sync.WaitGroup
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := New(mem.New(), storeCfg(store))
			if err := v.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
				t.Error(err)
				return
			}
			if err := v.Run(50_000_000); err != nil {
				t.Errorf("vm %d: %v", i, err)
				return
			}
			got[i] = v
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var hits, misses, shared, frags uint64
	for i, v := range got {
		compareState(t, fmt.Sprintf("vm%d", i), ref, v, resultsAddrs())
		hits += v.Stats.StoreHits
		misses += v.Stats.StoreMisses
		shared += v.Stats.StoreSharedHits
		frags += uint64(v.Stats.Fragments)
	}

	// Exactly one translation per unique superblock, process-wide.
	st := store.Stats()
	if int(st.Misses) != store.Len() {
		t.Errorf("store: %d misses for %d entries — some superblock translated twice",
			st.Misses, store.Len())
	}
	if misses != st.Misses || hits != st.Hits {
		t.Errorf("VM counters (%d misses, %d hits) disagree with store (%d, %d)",
			misses, hits, st.Misses, st.Hits)
	}
	if hits+misses != frags {
		t.Errorf("%d store lookups installed %d fragments", hits+misses, frags)
	}
	// The VMs run the same deterministic workload, so all but the first
	// translation of each superblock must be shared hits.
	if shared == 0 {
		t.Error("no shared hits across 8 VMs of the same workload")
	}
	if misses == 0 || hits == 0 {
		t.Errorf("degenerate run: %d misses, %d hits", misses, hits)
	}
}

// TestStoreResultsUnchanged pins that attaching a store changes no
// architected or translation statistics of a single run — only where
// the artifacts live.
func TestStoreResultsUnchanged(t *testing.T) {
	ref := refRun(t, torture)
	plain := vmRun(t, torture, func() Config { c := storeCfg(nil); return c }())
	stored := vmRun(t, torture, storeCfg(fragstore.New()))
	compareState(t, "store", ref, stored, resultsAddrs())

	if plain.Stats.Fragments != stored.Stats.Fragments ||
		plain.Stats.SrcInstsTranslated != stored.Stats.SrcInstsTranslated ||
		plain.Stats.TransVInsts != stored.Stats.TransVInsts ||
		plain.Stats.TranslateCost != stored.Stats.TranslateCost {
		t.Errorf("store changed run statistics: %+v vs %+v", plain.Stats, stored.Stats)
	}
	if stored.Stats.StoreMisses != uint64(stored.Stats.Fragments) {
		t.Errorf("cold run: %d misses for %d fragments — some translations bypassed the store",
			stored.Stats.StoreMisses, stored.Stats.Fragments)
	}
	// Every fragment carries its artifact's content address.
	tc := stored.TCache()
	for id := int32(0); int(id) < tc.Len(); id++ {
		f := tc.Frag(id)
		if f == nil {
			continue
		}
		if f.StoreKey == ([32]byte{}) {
			t.Errorf("fragment %d at %#x has no store provenance", id, f.VStart)
		}
		if f.Shared {
			t.Errorf("fragment %d marked shared in a single-VM cold run", id)
		}
	}
}

// TestStoreWarmStart is the acceptance criterion: save a store, load it
// into a fresh process-equivalent store (forcing the full codec and
// re-verification path), and run the same workload warm — zero
// retranslations, zero translate cost, every fragment a shared hit.
func TestStoreWarmStart(t *testing.T) {
	ref := refRun(t, torture)
	cold := fragstore.New()
	first := vmRun(t, torture, storeCfg(cold))
	if first.Stats.StoreMisses == 0 {
		t.Fatal("cold run translated nothing through the store")
	}

	enc := cold.Encode()
	warm, rep, err := fragstore.Decode(enc, fragstore.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped() != 0 || rep.Loaded != cold.Len() {
		t.Fatalf("load report %v, want all %d entries", rep, cold.Len())
	}
	// Patching in the first VM must not have leaked into the artifacts:
	// a stored fragment referencing a session-private fragment ID would
	// have been dropped as malformed above, and the saved bytes must
	// round-trip exactly.
	if !bytes.Equal(warm.Encode(), enc) {
		t.Fatal("persisted store does not round-trip")
	}

	reg := metrics.NewRegistry()
	cfg := storeCfg(warm)
	cfg.Metrics = reg
	v := vmRun(t, torture, cfg)
	compareState(t, "warm", ref, v, resultsAddrs())

	if v.Stats.StoreMisses != 0 {
		t.Errorf("warm start ran %d translations, want 0", v.Stats.StoreMisses)
	}
	if v.Stats.TranslateCost != 0 {
		t.Errorf("warm start charged translate cost %d, want 0", v.Stats.TranslateCost)
	}
	if v.Stats.StoreHits == 0 || v.Stats.StoreHits != uint64(v.Stats.Fragments) {
		t.Errorf("warm start: %d hits for %d fragments", v.Stats.StoreHits, v.Stats.Fragments)
	}
	if v.Stats.StoreSharedHits != v.Stats.StoreHits {
		t.Errorf("warm start: %d of %d hits shared, want all (loaded artifacts)",
			v.Stats.StoreSharedHits, v.Stats.StoreHits)
	}
	for id := int32(0); int(id) < v.TCache().Len(); id++ {
		if f := v.TCache().Frag(id); f != nil && !f.Shared {
			t.Errorf("warm fragment %d at %#x not marked shared", id, f.VStart)
		}
	}

	v.Stats.Publish(reg)
	if reg.Counter("vm.store.hits").Load() != v.Stats.StoreHits {
		t.Error("vm.store.hits not published")
	}
	hitEvents := 0
	for _, e := range reg.Events() {
		if e.Kind == metrics.EventStoreHit {
			hitEvents++
			if e.Detail != "shared" {
				t.Errorf("store-hit event detail %q, want shared", e.Detail)
			}
		}
	}
	if hitEvents != int(v.Stats.StoreHits) {
		t.Errorf("%d store-hit events for %d hits", hitEvents, v.Stats.StoreHits)
	}
}

// TestStoreWarmResume runs a kill-and-resume schedule twice: pass 1
// cold against a fresh store, pass 2 replaying the identical schedule
// against the persisted (encode→decode) pass-1 store. Superblock
// formation is deterministic given the same execution and profile
// history, so every translation in pass 2 — in both the killed segment
// and the resumed one — must be a store hit: zero retranslations and
// zero translate cost across the preemption boundary.
func TestStoreWarmResume(t *testing.T) {
	ref := refRun(t, torture)

	runSchedule := func(store *fragstore.Store) *VM {
		v1 := New(mem.New(), storeCfg(store))
		if err := v1.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
			t.Fatal(err)
		}
		err := v1.Run(int64(ref.InstCount / 2))
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("first segment: %v, want budget preemption", err)
		}
		v2 := New(mem.New(), storeCfg(store))
		v2.Restore(v1.Checkpoint())
		if err := v2.Run(0); err != nil {
			t.Fatalf("resumed segment: %v", err)
		}
		return v2
	}

	cold := fragstore.New()
	first := runSchedule(cold)
	compareState(t, "cold resume", ref, first, resultsAddrs())
	// Stats survive the checkpoint, so the resumed VM's counters cover
	// the whole schedule.
	if first.Stats.StoreMisses == 0 || first.Stats.StoreHits != 0 {
		t.Fatalf("cold pass: %d misses, %d hits — schedule should translate everything once",
			first.Stats.StoreMisses, first.Stats.StoreHits)
	}

	warm, rep, err := fragstore.Decode(cold.Encode(), fragstore.LoadOptions{SemCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped() != 0 {
		t.Fatalf("persisted kill-resume store dropped entries on load: %v", rep)
	}

	second := runSchedule(warm)
	compareState(t, "warm resume", ref, second, resultsAddrs())
	if second.Stats.StoreMisses != 0 {
		t.Errorf("warm replay ran %d translations, want 0", second.Stats.StoreMisses)
	}
	if second.Stats.TranslateCost != 0 {
		t.Errorf("warm replay charged translate cost %d, want 0", second.Stats.TranslateCost)
	}
	if second.Stats.StoreHits != first.Stats.StoreMisses {
		t.Errorf("warm replay: %d hits for %d cold translations",
			second.Stats.StoreHits, first.Stats.StoreMisses)
	}
	if got := warm.Stats().Misses; got != 0 {
		t.Errorf("warm store recorded %d misses", got)
	}
}

// TestStoreAcrossConfigs pins that differently-configured VMs sharing
// one store never share artifacts: every (form, chain, straighten)
// combination addresses disjoint entries, and each still matches the
// oracle.
func TestStoreAcrossConfigs(t *testing.T) {
	ref := refRun(t, torture)
	store := fragstore.New()

	entriesBefore := 0
	for _, c := range []struct {
		name       string
		form       ildp.Form
		straighten bool
		chain      translate.ChainMode
	}{
		{"modified/ras", ildp.Modified, false, translate.SWPredRAS},
		{"basic/nopred", ildp.Basic, false, translate.NoPred},
		{"straightened", 0, true, translate.SWPredRAS},
	} {
		cfg := storeCfg(store)
		cfg.Form = c.form
		cfg.Straighten = c.straighten
		cfg.Chain = c.chain
		v := vmRun(t, torture, cfg)
		compareState(t, c.name, ref, v, resultsAddrs())
		if v.Stats.StoreHits != 0 {
			t.Errorf("%s: %d cross-config store hits, want 0", c.name, v.Stats.StoreHits)
		}
		if store.Len() <= entriesBefore {
			t.Errorf("%s: added no store entries", c.name)
		}
		entriesBefore = store.Len()
	}
}

// TestStoreBypassedUnderInjection pins the chaos contract: a VM with a
// fault injector attached never consults the store — the injector's
// draw sequence (and thus every chaos suite) is bit-identical with and
// without a store, and corrupt artifacts cannot become visible to
// other sessions.
func TestStoreBypassedUnderInjection(t *testing.T) {
	store := fragstore.New()
	cfg := storeCfg(store)
	cfg.Verify = true
	cfg.Paranoid = true
	cfg.SelfHeal = true
	cfg.Faults = &faultinject.Config{Seed: 7}

	v := vmRun(t, torture, cfg)
	if v.Stats.StoreHits != 0 || v.Stats.StoreMisses != 0 {
		t.Errorf("injected VM consulted the store: %d hits, %d misses",
			v.Stats.StoreHits, v.Stats.StoreMisses)
	}
	if store.Len() != 0 {
		t.Errorf("injected VM published %d artifacts into the shared store", store.Len())
	}
}

package vm

import (
	"fmt"

	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/tcache"
)

// This file is the VM's self-healing layer: the per-entry integrity
// re-check and fault-injection decision point (fragUsable), the recovery
// bookkeeping shared by every recovery path (noteRecovery), the
// retranslate-with-backoff / quarantine policy for failed translations
// (translateFailed), and the injected cache-capacity shrink. The design
// invariant throughout is that a recovery never loses architected state:
// translated code is entered only after it passes the entry check, so
// every recovery action happens at a V-ISA instruction boundary where
// falling back to the interpreter is always correct.

// shrinkFloor is the smallest capacity an injected shrink can impose.
const shrinkFloor = 4 << 10

// fragUsable runs the entry-time fault-injection draw and the paranoid
// integrity re-check for a fragment about to be entered (from the VM
// top level or from a chained transfer inside translated code). It
// returns false when the fragment must not run this time; the caller
// falls back to interpretation at the fragment's V-start, which
// guarantees forward progress — the next entry attempt redraws.
func (v *VM) fragUsable(f *tcache.Fragment) bool {
	// Preemption poll: a chained hot loop can stay inside translated code
	// indefinitely, so the stop hook must also be visible at chained and
	// dispatched entries, not just at the Run loop top. Refusing the
	// entry exits to the VM at this fragment's V-start — a precise
	// V-instruction boundary — where the loop-top check converts the
	// request into a *PreemptError.
	if poll := v.cfg.Poll; poll != nil {
		// Observation hook: like Stop below, it must fire at chained and
		// dispatched entries too, or a chained hot loop could starve the
		// telemetry plane for the whole loop's lifetime.
		poll()
	}
	if stop := v.cfg.Stop; stop != nil && stop() {
		return false
	}
	// Livelock watchdog: translated code retiring no V-instructions
	// (e.g. a corrupted fragment chained into a cycle of pure overhead)
	// never returns to the interpreter on its own. Every fragment entry
	// checks whether retirement advanced since the last observation; if
	// the VM has burned a full window of work without retiring anything,
	// the fragment being entered is quarantined and invalidated through
	// the recovery path, and the refused entry falls back to the
	// interpreter, which always makes progress.
	if w := v.cfg.WatchdogWindow; w > 0 {
		retired := v.Stats.TotalVInsts()
		work := v.Stats.TransIInsts + v.Stats.InterpInsts
		if retired != v.wdRetired {
			v.wdRetired, v.wdWork = retired, work
		} else if int64(work-v.wdWork) >= w {
			v.wdWork = work
			v.Stats.WatchdogTrips++
			v.quarantinePC(f.VStart, fmt.Errorf("vm: watchdog: no V-instruction retired in %d work units", w))
			v.tc.Invalidate(f.ID)
			v.noteRecovery("watchdog livelock", f.VStart)
			return false
		}
	}
	if v.inj != nil {
		switch k := v.inj.EntryFault(); k {
		case faultinject.KindBitFlip:
			// Corrupt the fragment being entered, so detection (below) is
			// exercised on this very entry and the applied-fault count
			// stays in lockstep with the reverify-failure count.
			if v.inj.CorruptFragment(f) {
				v.inj.Applied(k)
			}
		case faultinject.KindEvict:
			v.inj.Applied(k)
			v.Stats.ForcedEvicts++
			v.tc.Flush()
			v.noteRecovery("forced evict", f.VStart)
			return false
		case faultinject.KindSpuriousTrap:
			v.inj.Applied(k)
			v.Stats.SpuriousTraps++
			v.noteRecovery("spurious trap", f.VStart)
			return false
		case faultinject.KindShrinkCache:
			v.inj.Applied(k)
			v.Stats.CacheShrinks++
			v.shrinkCache()
			// Shrinking is pressure, not damage: the entry proceeds and the
			// next install flushes under the reduced capacity.
		}
	}
	if v.cfg.Paranoid && !f.IntegrityOK() {
		v.Stats.ReverifyFails++
		v.tc.Invalidate(f.ID)
		v.noteRecovery("integrity recheck failed", f.VStart)
		return false
	}
	return true
}

// noteRecovery charges one recovery episode: the modelled software
// overhead (RecoveryCostPerEvent Alpha instructions, on top of the
// per-instruction interpretation cost of the fallback itself), the
// metrics event, and the profiler's recovery pseudo-frame. It also arms
// fallback accounting so interpreted instructions are attributed to
// recovery until translated execution resumes.
func (v *VM) noteRecovery(detail string, vpc uint64) {
	v.Stats.RecoveryCost += RecoveryCostPerEvent
	v.inFallback = true
	v.cfg.Metrics.Event(metrics.Event{Kind: metrics.EventRecover, Frag: -1,
		VStart: vpc, Detail: detail})
	v.cfg.Metrics.Counter("vm.recovery.episodes").Inc()
	v.cfg.Prof.EnterRecovery(v.Stats.TransIInsts, v.Stats.TransVInsts)
}

// translateFailed handles a failed (or verifier-rejected) translation of
// the superblock starting at pc. With self-healing enabled the failure
// becomes a recovery: the PC's failure count feeds the exponential
// retranslation backoff in noteCandidate, and once it reaches the retry
// budget the PC is quarantined to interpret-only forever. Without
// self-healing the error is returned fatal, preserving the strict
// abort-on-bad-translation semantics the verifier sweep relies on.
func (v *VM) translateFailed(pc uint64, cause error) error {
	if !v.cfg.SelfHeal {
		return cause
	}
	v.Stats.TransFailures++
	v.failures[pc]++
	v.noteRecovery("translation failed", pc)
	if v.failures[pc] >= v.cfg.RetryBudget {
		v.quarantinePC(pc, cause)
	}
	return nil
}

// quarantinePC pins pc to interpret-only forever: it is never again
// proposed as a superblock start. Shared by the retry-budget path and
// the livelock watchdog. Idempotent per PC.
func (v *VM) quarantinePC(pc uint64, cause error) {
	if v.quarantine[pc] {
		return
	}
	v.quarantine[pc] = true
	v.Stats.Quarantines++
	v.cfg.Metrics.Event(metrics.Event{Kind: metrics.EventQuarantine, Frag: -1,
		VStart: pc, Detail: cause.Error()})
	v.cfg.Metrics.Counter("vm.recovery.quarantines").Inc()
}

// preempt stops the run at the current (precise) V-PC: accounting, the
// metrics event, and the profiler's preempt pseudo-frame, then the
// typed error the caller returns. cause is ErrPreempted (stop hook) or
// ErrBudget.
func (v *VM) preempt(cause error) error {
	v.Stats.Preemptions++
	v.cfg.Metrics.Event(metrics.Event{Kind: metrics.EventPreempt, Frag: -1,
		VStart: v.cpu.PC, Detail: cause.Error()})
	v.cfg.Metrics.Counter("vm.preempt.events").Inc()
	v.cfg.Prof.Preempt(v.Stats.TransIInsts, v.Stats.TransVInsts)
	return &PreemptError{PC: v.cpu.PC, Cause: cause}
}

// shrinkCache halves the translation-cache capacity, floored at
// shrinkFloor. An unbounded cache is first pinned at its current
// occupancy so the halving bites. Only the capacity changes here; the
// flush happens at the next install, which always runs between
// fragments, so no stale code is ever mid-execution.
func (v *VM) shrinkCache() {
	c := v.tc.Capacity()
	if c <= 0 {
		c = v.tc.CodeBytes()
	}
	c /= 2
	if c < shrinkFloor {
		c = shrinkFloor
	}
	v.tc.SetCapacity(c)
}

// Injector exposes the attached fault injector (nil when chaos mode is
// off) so harnesses can reconcile applied-fault counts against the
// VM's recovery statistics.
func (v *VM) Injector() *faultinject.Injector { return v.inj }

package vm

import "github.com/ildp/accdbt/internal/ildp"

// rasEntry is one dual-address return address stack pair: the V-ISA return
// address and the translated fragment holding the return point (§3.2).
type rasEntry struct {
	v    uint64
	frag int32
}

// dualRAS is the specialised hardware return address stack of the
// co-designed VM. It is architecturally visible: the translated return
// instruction jumps to the popped I-ISA address when the popped V-ISA
// address matches its register value, and falls through to dispatch
// otherwise. The stack is circular; overflow silently overwrites the
// oldest entry, as hardware RAS implementations do.
type dualRAS struct {
	buf []rasEntry
	top int // next push position
	n   int // live entries
}

func newDualRAS(size int) dualRAS {
	return dualRAS{buf: make([]rasEntry, size)}
}

func (r *dualRAS) push(v uint64, frag int32) {
	r.buf[r.top] = rasEntry{v: v, frag: frag}
	r.top = (r.top + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// pop removes and returns the newest entry; ok is false when empty.
func (r *dualRAS) pop() (rasEntry, bool) {
	if r.n == 0 {
		return rasEntry{frag: ildp.NoFrag}, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.n--
	return r.buf[r.top], true
}

// depth returns the number of live entries.
func (r *dualRAS) depth() int { return r.n }

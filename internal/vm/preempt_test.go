package vm

import (
	"errors"
	"testing"

	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

// TestStopHookPreciselyPreempts proves the Stop hook halts the run at a
// V-instruction boundary with a *PreemptError whose PC is the exact
// architected PC, matching ErrPreempted but not ErrBudget.
func TestStopHookPreciselyPreempts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	var v *VM
	cfg.Stop = func() bool { return v.Stats.TotalVInsts() >= 5_000 }
	v = New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
		t.Fatal(err)
	}
	err := v.Run(0)
	var pe *PreemptError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v (%T), want *PreemptError", err, err)
	}
	if !errors.Is(err, ErrPreempted) {
		t.Error("stop-hook preemption does not match ErrPreempted")
	}
	if errors.Is(err, ErrBudget) {
		t.Error("stop-hook preemption wrongly matches ErrBudget")
	}
	if pe.PC != v.CPU().PC {
		t.Errorf("PreemptError.PC = %#x, architected PC = %#x", pe.PC, v.CPU().PC)
	}
	if v.CPU().Halted {
		t.Error("preempted run reports Halted")
	}
	if v.Stats.Preemptions != 1 {
		t.Errorf("Stats.Preemptions = %d, want 1", v.Stats.Preemptions)
	}
	if v.Stats.TotalVInsts() < 5_000 {
		t.Errorf("preempted before the hook could have fired (%d V-insts)", v.Stats.TotalVInsts())
	}
}

// TestBudgetIsPreemption proves budget exhaustion surfaces as a
// *PreemptError matching BOTH ErrBudget (the cause, for existing
// callers) and ErrPreempted, with the precise V-PC attached.
func TestBudgetIsPreemption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	v := New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
		t.Fatal(err)
	}
	err := v.Run(10_000)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Run returned %v, want ErrBudget match", err)
	}
	if !errors.Is(err, ErrPreempted) {
		t.Error("budget exhaustion does not match ErrPreempted")
	}
	var pe *PreemptError
	if !errors.As(err, &pe) {
		t.Fatalf("budget error %T is not a *PreemptError", err)
	}
	if pe.PC != v.CPU().PC {
		t.Errorf("PreemptError.PC = %#x, architected PC = %#x", pe.PC, v.CPU().PC)
	}
}

// TestResumeFromBudgetMatchesUninterrupted is the satellite fix's
// regression test: a run stopped by ErrBudget, checkpointed through the
// full encode/decode path, and resumed in a completely fresh VM (cold
// translation cache) must finish with the reference architected state
// and with cumulative instruction accounting intact.
func TestResumeFromBudgetMatchesUninterrupted(t *testing.T) {
	ref := refRun(t, torture)

	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	v1 := New(mem.New(), cfg)
	if err := v1.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
		t.Fatal(err)
	}
	err := v1.Run(20_000)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("first segment: %v, want budget preemption", err)
	}

	st, derr := checkpoint.Decode(checkpoint.Encode(v1.Checkpoint()))
	if derr != nil {
		t.Fatalf("decoding own checkpoint: %v", derr)
	}
	v2 := New(mem.New(), cfg)
	v2.Restore(st)
	if v2.TCache().Len() != 0 {
		t.Errorf("restored VM has %d fragments; the cache must be cold", v2.TCache().Len())
	}
	if err := v2.Run(0); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	compareState(t, "resume", ref, v2, resultsAddrs())
	if got, want := v2.Stats.TotalVInsts(), ref.InstCount; got != want {
		t.Errorf("cumulative V-insts = %d, want %d (uninterrupted)", got, want)
	}
	if v2.Stats.Preemptions != 1 {
		t.Errorf("restored Stats.Preemptions = %d, want 1", v2.Stats.Preemptions)
	}
}

// TestWatchdogBreaksLivelock corrupts every translation so translated
// code retires zero V-instructions (VCredit stripped): a hot
// self-chaining loop then spins forever inside the cache. The livelock
// watchdog must detect the stalled retirement, quarantine and
// invalidate the spinning fragment, and let the interpreter finish the
// program with the reference state.
func TestWatchdogBreaksLivelock(t *testing.T) {
	ref := refRun(t, torture)
	cfg := DefaultConfig()
	cfg.HotThreshold = 5
	cfg.WatchdogWindow = 20_000
	v := New(mem.New(), cfg)
	if err := v.LoadProgram(alphaasm.MustAssemble(torture)); err != nil {
		t.Fatal(err)
	}
	v.testMutateResult = func(res *translate.Result) {
		for i := range res.Insts {
			res.Insts[i].VCredit = 0
		}
	}
	if err := v.Run(0); err != nil {
		t.Fatalf("watchdogged run aborted: %v", err)
	}
	if v.Stats.WatchdogTrips == 0 {
		t.Fatal("livelock never tripped the watchdog")
	}
	if v.Stats.Quarantines == 0 {
		t.Error("watchdog tripped but quarantined nothing")
	}
	if want := int64(v.Stats.Recoveries()) * RecoveryCostPerEvent; v.Stats.RecoveryCost != want {
		t.Errorf("recovery cost %d, want %d (%d episodes incl. watchdog)",
			v.Stats.RecoveryCost, want, v.Stats.Recoveries())
	}
	compareState(t, "watchdog", ref, v, resultsAddrs())
}

// TestStatsCountersRoundTrip pins the reflection-based Stats flattening:
// a Stats with every field (including array elements) set to a distinct
// value must survive statsToCounters/statsFromCounters exactly,
// including negative signed values.
func TestStatsCountersRoundTrip(t *testing.T) {
	var s Stats
	s.InterpInsts = 1
	s.TransVInsts = 2
	s.Fragments = -3
	s.RecoveryCost = -1 << 40
	s.ClassCounts = [5]uint64{10, 11, 12, 13, 14}
	s.UsageDyn = [8]uint64{20, 0, 22, 0, 24, 0, 26, 0}
	s.UsageStatic = translate.UsageCounts{-1, 2, -3, 4, -5, 6, -7, 8}
	s.Preemptions = 7
	s.WatchdogTrips = 9

	var back Stats
	statsFromCounters(&back, statsToCounters(&s))
	if back != s {
		t.Errorf("Stats did not round-trip:\n got %+v\nwant %+v", back, s)
	}
}

// benchPreemptedVM runs gzip to a budget preemption, leaving a VM with
// a populated memory image and live Stats to checkpoint.
func benchPreemptedVM(b *testing.B) *VM {
	b.Helper()
	wl, err := workload.ByName("gzip", 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := wl.Program()
	if err != nil {
		b.Fatal(err)
	}
	v := New(mem.New(), DefaultConfig())
	if err := v.LoadProgram(prog); err != nil {
		b.Fatal(err)
	}
	if err := v.Run(100_000); !errors.Is(err, ErrBudget) {
		b.Fatalf("want budget preemption, got %v", err)
	}
	return v
}

// BenchmarkCheckpointSave measures the full save path: snapshotting the
// architected state and encoding it to the canonical binary form.
func BenchmarkCheckpointSave(b *testing.B) {
	v := benchPreemptedVM(b)
	data := checkpoint.Encode(v.Checkpoint())
	b.SetBytes(int64(len(data)))
	b.ReportMetric(float64(len(data)), "ckpt-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checkpoint.Encode(v.Checkpoint())
	}
}

// BenchmarkCheckpointRestore measures the full restore path: decoding
// the canonical bytes and applying them to a fresh VM (cold cache).
func BenchmarkCheckpointRestore(b *testing.B) {
	v := benchPreemptedVM(b)
	data := checkpoint.Encode(v.Checkpoint())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := checkpoint.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		v2 := New(mem.New(), DefaultConfig())
		v2.Restore(st)
	}
}

package vm

import (
	"reflect"
	"strconv"

	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/translate"
)

// This file connects the VM to the checkpoint package: Checkpoint
// captures the complete architected state (plus the flattened Stats, so
// accounting reconciles across kill/resume segments), and Restore
// applies a decoded state to a VM while discarding every piece of
// concealed state — translation cache, trace counters, RAS,
// accumulators — which is rebuilt by re-translation, exactly as the
// co-designed-VM contract requires (DESIGN.md §11).

// Checkpoint captures the VM's architected state. It is only precise at
// a V-instruction boundary — call it after Run returns (halt, trap, or
// *PreemptError), never concurrently with Run.
func (v *VM) Checkpoint() *checkpoint.State {
	lockFlag, lockAddr := v.cpu.LockState()
	return &checkpoint.State{
		PC:         v.cpu.PC,
		Reg:        v.cpu.Reg,
		Halted:     v.cpu.Halted,
		ExitStatus: v.cpu.ExitStatus,
		InstCount:  v.cpu.InstCount,
		LockFlag:   lockFlag,
		LockAddr:   lockAddr,
		MemStrict:  v.mem.Strict,
		Console:    append([]byte(nil), v.cpu.Console...),
		Counters:   statsToCounters(&v.Stats),
		Pages:      v.mem.Snapshot(),
	}
}

// Restore applies a checkpointed state to the VM. All concealed state
// is reset cold: the translation cache is emptied, trace counters and
// quarantine/failure records are cleared, the RAS and accumulator file
// are zeroed, and any in-flight superblock recording is abandoned.
// Translated code is rebuilt on demand after resume; because
// translation is a pure function of V-ISA memory (which the checkpoint
// restores exactly), the rebuilt fragments compute the same results as
// the discarded ones. The VM's Stats are restored from the checkpoint's
// flattened counters, so cumulative accounting spans segments.
func (v *VM) Restore(st *checkpoint.State) {
	v.cpu.PC = st.PC
	v.cpu.Reg = st.Reg
	v.cpu.Halted = st.Halted
	v.cpu.ExitStatus = st.ExitStatus
	v.cpu.InstCount = st.InstCount
	v.cpu.SetLockState(st.LockFlag, st.LockAddr)
	v.cpu.Console = append([]byte(nil), st.Console...)
	v.mem.Strict = st.MemStrict
	v.mem.LoadSnapshot(st.Pages)

	v.Stats = Stats{}
	statsFromCounters(&v.Stats, st.Counters)

	// Concealed state: discard and rebuild.
	v.tc.Reset()
	v.counters = map[uint64]int{}
	v.failures = map[uint64]int{}
	v.quarantine = map[uint64]bool{}
	v.recording = false
	v.sb = translate.Superblock{}
	v.inTrace = nil
	v.ras = newDualRAS(v.cfg.RASSize)
	v.scratch = [len(v.scratch)]uint64{}
	v.acc = [len(v.acc)]uint64{}
	v.inFallback = false
	v.wdRetired = v.Stats.TotalVInsts()
	v.wdWork = v.Stats.TransIInsts + v.Stats.InterpInsts

	v.cfg.Metrics.Event(metrics.Event{Kind: metrics.EventResume, Frag: -1, VStart: st.PC})
	v.cfg.Metrics.Counter("vm.preempt.resumes").Inc()
	v.cfg.Prof.Resume(v.Stats.TransIInsts, v.Stats.TransVInsts)
}

// statsToCounters flattens Stats into named values by reflection:
// scalar fields become "stats.<Field>", array fields (ClassCounts,
// UsageDyn, UsageStatic) become "stats.<Field>.<i>". Signed fields are
// bit-cast, which round-trips exactly through statsFromCounters.
// Reflection keeps the checkpoint format decoupled from the Stats
// layout: adding a field extends the counter set automatically.
func statsToCounters(s *Stats) map[string]uint64 {
	out := map[string]uint64{}
	rv := reflect.ValueOf(s).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		name := "stats." + rt.Field(i).Name
		f := rv.Field(i)
		if f.Kind() == reflect.Array {
			for j := 0; j < f.Len(); j++ {
				out[name+"."+strconv.Itoa(j)] = scalarBits(f.Index(j))
			}
			continue
		}
		out[name] = scalarBits(f)
	}
	return out
}

// statsFromCounters is the inverse of statsToCounters: fields whose
// names are absent (e.g. zero-valued entries dropped by the canonical
// encoding, or fields added after the checkpoint was written) stay
// zero.
func statsFromCounters(s *Stats, counters map[string]uint64) {
	rv := reflect.ValueOf(s).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		name := "stats." + rt.Field(i).Name
		f := rv.Field(i)
		if f.Kind() == reflect.Array {
			for j := 0; j < f.Len(); j++ {
				setScalarBits(f.Index(j), counters[name+"."+strconv.Itoa(j)])
			}
			continue
		}
		setScalarBits(f, counters[name])
	}
}

func scalarBits(f reflect.Value) uint64 {
	switch f.Kind() {
	case reflect.Uint64:
		return f.Uint()
	case reflect.Int, reflect.Int64:
		return uint64(f.Int())
	}
	panic("vm: unsupported Stats field kind " + f.Kind().String())
}

func setScalarBits(f reflect.Value, bits uint64) {
	switch f.Kind() {
	case reflect.Uint64:
		f.SetUint(bits)
	case reflect.Int, reflect.Int64:
		f.SetInt(int64(bits))
	default:
		panic("vm: unsupported Stats field kind " + f.Kind().String())
	}
}

package iofs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestAtomicWriteFileReplacesWhole(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "data.bin")
	if err := AtomicWriteFile(OS{}, name, []byte("old contents"), 0o644); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := AtomicWriteFile(OS{}, name, []byte("new"), 0o644); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("contents = %q, want %q", got, "new")
	}
	if _, err := os.Stat(name + TempSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: stat err = %v", err)
	}
}

// TestAtomicWriteFilePreservesOldOnFault drives AtomicWriteFile with a
// schedule that faults every write, and checks the destination keeps its
// previous good contents for every fault kind — the anti-clobber
// guarantee the cachefile and spill paths rely on.
func TestAtomicWriteFilePreservesOldOnFault(t *testing.T) {
	for _, kind := range []Kind{KindNoSpace, KindEIO, KindTornWrite, KindRenameFail} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			name := filepath.Join(dir, "data.bin")
			old := []byte("good old contents that must survive")
			if err := AtomicWriteFile(OS{}, name, old, 0o644); err != nil {
				t.Fatal(err)
			}
			fsys := NewFaulty(OS{}, Config{Seed: 1, Rate: 1, Kinds: []Kind{kind}})
			err := AtomicWriteFile(fsys, name, []byte("replacement"), 0o644)
			if err == nil {
				t.Fatal("want injected fault, got nil")
			}
			var fault *Fault
			if !errors.As(err, &fault) {
				t.Fatalf("error %v is not a *Fault", err)
			}
			if fault.Kind != kind {
				t.Fatalf("fault kind = %v, want %v", fault.Kind, kind)
			}
			got, rerr := os.ReadFile(name)
			if rerr != nil {
				t.Fatalf("destination unreadable after fault: %v", rerr)
			}
			if !bytes.Equal(got, old) {
				t.Fatalf("destination clobbered: %q", got)
			}
			if _, serr := os.Stat(name + TempSuffix); !errors.Is(serr, os.ErrNotExist) {
				t.Fatalf("temp file left behind: stat err = %v", serr)
			}
		})
	}
}

func TestFaultSentinels(t *testing.T) {
	cases := []struct {
		kind Kind
		want error
	}{
		{KindNoSpace, ErrNoSpace},
		{KindEIO, ErrIO},
		{KindTornWrite, ErrTorn},
		{KindRenameFail, ErrRename},
	}
	for _, c := range cases {
		f := &Fault{Op: "write", Path: "x", Kind: c.kind, Seq: 1}
		if !errors.Is(f, c.want) {
			t.Errorf("fault %v does not unwrap to %v", c.kind, c.want)
		}
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := KindByName(k.String())
		if err != nil {
			t.Fatalf("KindByName(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("KindByName(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Fatal("KindByName(bogus) succeeded")
	}
	kinds, err := KindsByNames("enospc, torn_write")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 2 || kinds[0] != KindNoSpace || kinds[1] != KindTornWrite {
		t.Fatalf("KindsByNames = %v", kinds)
	}
	if kinds, err := KindsByNames(""); err != nil || kinds != nil {
		t.Fatalf("KindsByNames(\"\") = %v, %v", kinds, err)
	}
}

// TestFaultyDeterministic proves a fault schedule is a pure function of
// the seed: two walks of the same operation sequence apply identical
// faults at identical decision points.
func TestFaultyDeterministic(t *testing.T) {
	walk := func(seed uint64) ([]string, Counts) {
		dir := t.TempDir()
		fsys := NewFaulty(OS{}, Config{Seed: seed, Rate: 3})
		var outcomes []string
		for i := 0; i < 200; i++ {
			name := filepath.Join(dir, "f.bin")
			werr := fsys.WriteFile(name, []byte("payload payload payload"), 0o644)
			data, rerr := fsys.ReadFile(name)
			outcomes = append(outcomes,
				errString(werr), errString(rerr), string(data))
		}
		return outcomes, fsys.Counts()
	}
	a, ca := walk(42)
	b, cb := walk(42)
	if ca != cb {
		t.Fatalf("counts diverge: %v vs %v", ca, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverges: %q vs %q", i, a[i], b[i])
		}
	}
	c, _ := walk(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
	if ca.Total() == 0 {
		t.Fatal("rate-3 schedule applied no faults in 400 decisions")
	}
}

// errString renders an outcome independent of the temp-dir path.
func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	var fault *Fault
	if errors.As(err, &fault) {
		return fmt.Sprintf("%s#%d:%s", fault.Kind, fault.Seq, fault.Op)
	}
	return err.Error()
}

// TestTornWriteIsStrictPrefix checks the torn-write model: the bytes on
// disk after the fault are a strict prefix of the intended data.
func TestTornWriteIsStrictPrefix(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "torn.bin")
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 512)
	fsys := NewFaulty(OS{}, Config{Seed: 7, Rate: 1, Kinds: []Kind{KindTornWrite}})
	err := fsys.WriteFile(name, payload, 0o644)
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("want torn write, got %v", err)
	}
	got, rerr := os.ReadFile(name)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) >= len(payload) {
		t.Fatalf("torn write wrote %d bytes, want < %d", len(got), len(payload))
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatal("torn bytes are not a prefix of the payload")
	}
}

// TestPartialReadSilent checks the partial-read model: truncated data,
// nil error.
func TestPartialReadSilent(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "p.bin")
	payload := bytes.Repeat([]byte{0x5A}, 1024)
	if err := os.WriteFile(name, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewFaulty(OS{}, Config{Seed: 9, Rate: 1, Kinds: []Kind{KindPartialRead}})
	got, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatalf("partial read must be silent, got %v", err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("partial read returned %d bytes, want < %d", len(got), len(payload))
	}
}

// TestMaxFaults checks the fault cap.
func TestMaxFaults(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS{}, Config{Seed: 3, Rate: 1, MaxFaults: 2})
	for i := 0; i < 50; i++ {
		fsys.WriteFile(filepath.Join(dir, "f"), []byte("x"), 0o644)
	}
	if got := fsys.Counts().Total(); got != 2 {
		t.Fatalf("applied %d faults, want 2", got)
	}
}

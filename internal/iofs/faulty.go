package iofs

import (
	"fmt"
	"io/fs"
	"strings"
	"sync"
)

// Kind is one injectable I/O fault class.
type Kind uint8

const (
	// KindNone is the no-fault decision.
	KindNone Kind = iota
	// KindNoSpace refuses a write with ENOSPC before any byte is
	// written; the destination file is untouched.
	KindNoSpace
	// KindEIO fails a read or write with an I/O error. A failed write
	// leaves the destination truncated to zero bytes (the open with
	// O_TRUNC succeeded, the write did not).
	KindEIO
	// KindTornWrite writes a strict prefix of the data and then errors —
	// the model of a crash mid-write. A reader that later opens the file
	// sees the torn prefix, which is exactly what the atomic-write
	// protocol and the CRC-guarded codecs must defend against.
	KindTornWrite
	// KindPartialRead returns a truncated prefix of the file with a nil
	// error — silent short data, catchable only by a content checksum.
	KindPartialRead
	// KindRenameFail fails a rename, leaving both paths as they were.
	KindRenameFail

	numKinds
)

// NumKinds is the number of injectable fault kinds (excluding KindNone).
const NumKinds = int(numKinds) - 1

var kindNames = [numKinds]string{
	"none", "enospc", "eio", "torn_write", "partial_read", "rename_fail",
}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName parses a kind name as printed by String.
func KindByName(name string) (Kind, error) {
	for k := Kind(1); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, nil
		}
	}
	return KindNone, fmt.Errorf("iofs: unknown fault kind %q", name)
}

// KindsByNames parses a comma-separated kind list ("" = all kinds).
func KindsByNames(list string) ([]Kind, error) {
	if list == "" {
		return nil, nil
	}
	var out []Kind
	for _, name := range strings.Split(list, ",") {
		k, err := KindByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// AllKinds returns every injectable kind.
func AllKinds() []Kind {
	out := make([]Kind, 0, NumKinds)
	for k := Kind(1); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// writeKinds and readKinds partition the kinds by the operation they can
// fire at; renames have their own single-kind pool.
var (
	writeKinds  = []Kind{KindNoSpace, KindEIO, KindTornWrite}
	readKinds   = []Kind{KindEIO, KindPartialRead}
	renameKinds = []Kind{KindRenameFail}
)

// Counts is the number of faults applied, by kind.
type Counts [numKinds]uint64

// Total returns the total applied faults.
func (c Counts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// String renders the non-zero counts, e.g. "enospc=3 torn_write=1".
func (c Counts) String() string {
	var parts []string
	for k := Kind(1); k < numKinds; k++ {
		if c[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, c[k]))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Fault is the typed error attached to injected I/O failures. It wraps
// the kind's sentinel (ErrNoSpace, ErrIO, ErrTorn, ErrRename), so both
// errors.As(*Fault) and errors.Is(sentinel) classify it.
type Fault struct {
	Op   string // "read", "write", "rename"
	Path string
	Kind Kind
	Seq  uint64 // fault sequence number within the schedule
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("iofs: injected %s fault #%d: %s %s", f.Kind, f.Seq, f.Op, f.Path)
}

// Unwrap returns the sentinel for the fault's kind.
func (f *Fault) Unwrap() error {
	switch f.Kind {
	case KindNoSpace:
		return ErrNoSpace
	case KindEIO:
		return ErrIO
	case KindTornWrite:
		return ErrTorn
	case KindRenameFail:
		return ErrRename
	default:
		return nil
	}
}

// Config parameterises a fault schedule.
type Config struct {
	// Seed selects the schedule; equal seeds produce equal schedules.
	Seed uint64
	// Rate is the mean operations between faults (fire with probability
	// 1/Rate per eligible operation). Default 8.
	Rate int
	// Kinds restricts the schedule to the listed kinds (nil = all).
	Kinds []Kind
	// MaxFaults caps the number of faults applied (0 = unlimited).
	MaxFaults int
}

// Faulty wraps an FS with a deterministic fault schedule. It is safe
// for concurrent use: an internal mutex serialises operations, so the
// fault stream stays a pure function of the seed and the operation
// order (concurrent callers — e.g. serve workers — interleave
// nondeterministically, but each single-threaded harness replays
// exactly). A nil *Faulty is not valid; use Default/OS for "no faults".
type Faulty struct {
	inner   FS
	cfg     Config
	enabled [numKinds]bool

	mu        sync.Mutex
	rng       uint64
	decisions uint64
	applied   Counts
}

// NewFaulty wraps inner (nil = OS) with the given fault schedule.
func NewFaulty(inner FS, cfg Config) *Faulty {
	if cfg.Rate <= 0 {
		cfg.Rate = 8
	}
	f := &Faulty{inner: Default(inner), cfg: cfg, rng: cfg.Seed}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	for _, k := range kinds {
		if k > KindNone && k < numKinds {
			f.enabled[k] = true
		}
	}
	return f
}

// next advances the splitmix64 stream.
func (f *Faulty) next() uint64 {
	f.rng += 0x9E3779B97F4A7C15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// decide draws one decision: fire with probability 1/Rate, choosing
// uniformly among the enabled members of pool.
func (f *Faulty) decide(pool []Kind) Kind {
	f.decisions++
	if f.cfg.MaxFaults > 0 && f.applied.Total() >= uint64(f.cfg.MaxFaults) {
		return KindNone
	}
	draw := f.next()
	if draw%uint64(f.cfg.Rate) != 0 {
		return KindNone
	}
	var candidates []Kind
	for _, k := range pool {
		if f.enabled[k] {
			candidates = append(candidates, k)
		}
	}
	if len(candidates) == 0 {
		return KindNone
	}
	return candidates[f.next()%uint64(len(candidates))]
}

// fault records an applied fault and returns its typed error.
func (f *Faulty) fault(op, path string, k Kind) *Fault {
	f.applied[k]++
	return &Fault{Op: op, Path: path, Kind: k, Seq: f.applied.Total()}
}

// Counts returns the faults applied so far, by kind.
func (f *Faulty) Counts() Counts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Decisions returns the number of decision points consulted.
func (f *Faulty) Decisions() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.decisions
}

// ReadFile implements FS; it may fail with EIO or silently return a
// truncated prefix (partial read).
func (f *Faulty) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch k := f.decide(readKinds); k {
	case KindEIO:
		return nil, f.fault("read", name, k)
	case KindPartialRead:
		data, err := f.inner.ReadFile(name)
		if err != nil {
			return data, err
		}
		f.fault("read", name, k)
		// Return a strict prefix: at least zero, at most len-1 bytes.
		if len(data) > 0 {
			data = data[:f.next()%uint64(len(data))]
		}
		return data, nil
	}
	return f.inner.ReadFile(name)
}

// WriteFile implements FS; it may fail with ENOSPC (destination
// untouched), EIO (destination truncated), or a torn write (a strict
// prefix of data reaches the destination before the error).
func (f *Faulty) WriteFile(name string, data []byte, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch k := f.decide(writeKinds); k {
	case KindNoSpace:
		return f.fault("write", name, k)
	case KindEIO:
		f.inner.WriteFile(name, nil, perm)
		return f.fault("write", name, k)
	case KindTornWrite:
		n := 0
		if len(data) > 0 {
			n = int(f.next() % uint64(len(data)))
		}
		f.inner.WriteFile(name, data[:n], perm)
		return f.fault("write", name, k)
	}
	return f.inner.WriteFile(name, data, perm)
}

// Rename implements FS; it may fail leaving both paths untouched.
func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k := f.decide(renameKinds); k == KindRenameFail {
		return f.fault("rename", oldpath, k)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS (never faulted: removing is how error paths clean
// up, and faulting cleanup would only mask the primary fault).
func (f *Faulty) Remove(name string) error { return f.inner.Remove(name) }

// MkdirAll implements FS (never faulted).
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// Glob implements FS (never faulted).
func (f *Faulty) Glob(pattern string) ([]string, error) { return f.inner.Glob(pattern) }

// Package iofs is the durability layer every persistent artifact in the
// system goes through: fragstore cache files, serve spill checkpoints
// and sidecars, ildpvm -cachefile/-checkpoint saves, and flight-recorder
// bundles. It provides two things.
//
// First, an FS interface over the handful of filesystem operations those
// paths need, with an OS implementation whose WriteFile fsyncs before
// close, and an AtomicWriteFile helper implementing the
// write-temp-fsync-rename protocol: the destination is either the old
// bytes or the new bytes, never a torn mixture, and a failure partway
// never clobbers a good existing file.
//
// Second, Faulty, a deterministic seed-driven fault-injecting FS in the
// style of internal/faultinject: a splitmix64 stream seeded by
// Config.Seed decides, at every filesystem operation, whether to fail it
// with ENOSPC, EIO, a torn write (a prefix reaches the disk and the call
// errors — the crash-mid-write model), a partial read (truncated bytes
// returned with a nil error — only a content checksum can catch it), or
// a rename failure. A fault schedule is a pure function of the seed, so
// a disk-chaos run is replayable, which is what lets the serve chaos
// soak demand typed degradation rather than "something broke".
package iofs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the persistence paths use. All paths are
// host paths (absolute or cwd-relative), not fs.FS-rooted.
type FS interface {
	// ReadFile reads the named file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to the named file, creating it with perm if
	// needed, and durably flushes it before returning.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove removes the named file.
	Remove(name string) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Glob returns the names matching pattern, as filepath.Glob.
	Glob(pattern string) ([]string, error)
}

// OS is the real filesystem. Its WriteFile differs from os.WriteFile in
// one way: it fsyncs the file before closing, so a successful return
// means the bytes are durable, not merely in the page cache.
type OS struct{}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS with an fsync before close.
func (OS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// Glob implements FS.
func (OS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// Default returns fsys, or OS when fsys is nil — the idiom callers use
// to make an FS field optional.
func Default(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}

// TempSuffix is appended to a destination name to form AtomicWriteFile's
// scratch file, which lives in the same directory so the final rename
// stays within one filesystem.
const TempSuffix = ".tmp"

// AtomicWriteFile writes data to name via the write-temp-fsync-rename
// protocol: the bytes land in name+TempSuffix first (durably, via
// fsys.WriteFile), then replace name in a single rename. On any error
// the temp file is removed (best effort) and the previous contents of
// name — if it existed — are untouched. Readers therefore observe
// either the complete old file or the complete new file, never a torn
// prefix, even across a crash or an injected fault.
func AtomicWriteFile(fsys FS, name string, data []byte, perm fs.FileMode) error {
	fsys = Default(fsys)
	tmp := name + TempSuffix
	if err := fsys.WriteFile(tmp, data, perm); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("iofs: atomic write %s: %w", name, err)
	}
	if err := fsys.Rename(tmp, name); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("iofs: atomic write %s: %w", name, err)
	}
	return nil
}

// Sentinel errors for the injectable fault kinds. Injected faults wrap
// these (and *Fault), so callers classify with errors.Is/errors.As.
var (
	// ErrNoSpace is the injected ENOSPC: the write is refused before any
	// byte reaches the disk.
	ErrNoSpace = errors.New("iofs: no space left on device (injected)")
	// ErrIO is the injected EIO on a read or write.
	ErrIO = errors.New("iofs: input/output error (injected)")
	// ErrTorn is the injected torn write: a prefix of the data reached
	// the disk before the error — the crash-mid-write model.
	ErrTorn = errors.New("iofs: torn write (injected)")
	// ErrRename is the injected rename failure.
	ErrRename = errors.New("iofs: rename failed (injected)")
)

// Package trace defines the dynamic instruction records exchanged between
// the co-designed VM's functional execution and the trace-driven timing
// models. One record stream format serves all four simulated machines:
// native Alpha on the superscalar ("original"), code-straightened Alpha on
// the superscalar, and Basic/Modified accumulator code on the ILDP
// microarchitecture.
package trace

// Class is the execution class of a dynamic instruction.
type Class uint8

const (
	ClassALU Class = iota
	ClassMul       // long-latency integer op
	ClassLoad
	ClassStore
	ClassBranch // conditional branch
	ClassJump   // unconditional direct branch
	ClassCall   // direct call (pushes a return address)
	ClassRet    // return (pops a return address)
	ClassInd    // other indirect jump
	ClassNop
)

var classNames = [...]string{
	"alu", "mul", "load", "store", "branch", "jump", "call", "ret", "ind", "nop",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// NoReg marks an absent register operand; NoAcc an absent accumulator.
const (
	NoReg uint8 = 0xFF
	NoAcc uint8 = 0xFF
)

// Rec is one committed dynamic instruction.
type Rec struct {
	// PC is the fetch address: the Alpha PC for native traces, the
	// translation-cache I-address for translated traces.
	PC   uint64
	Size uint8 // encoded bytes at PC (4 for Alpha; 2/4/8 for I-ISA)

	Class Class

	// Register operands (GPR numbers; NoReg when absent). SrcAcc/DstAcc
	// carry the accumulator (strand) for ILDP traces.
	SrcReg [2]uint8
	DstReg uint8
	SrcAcc uint8
	DstAcc uint8

	// DstOperational marks a GPR write that must reach the
	// latency-critical operational register file (inter-strand
	// communication); architected-state-only writes in the Modified form
	// go off the critical path.
	DstOperational bool

	// Memory access (loads/stores).
	MemAddr  uint64
	MemWidth uint8

	// Control flow.
	Taken  bool
	Target uint64 // actual next fetch address when Taken
	// Indirect marks control transfers whose target is not encoded in the
	// instruction (JSR/JMP): a wrong BTB target is discovered at execute,
	// not decode.
	Indirect bool

	// RASPush carries the predicted return target pushed by a call; for
	// ClassRet records under the dual-address RAS, PredHit reports whether
	// the functional RAS supplied the correct target.
	PredHit bool

	// VCredit is the number of V-ISA instructions retired at this record.
	VCredit uint8
}

// IsBranch reports whether the record can redirect fetch.
func (r *Rec) IsBranch() bool {
	switch r.Class {
	case ClassBranch, ClassJump, ClassCall, ClassRet, ClassInd:
		return true
	}
	return false
}

// Sink consumes a committed-instruction stream.
type Sink interface {
	Append(Rec)
}

// Multi fans a record stream out to several sinks.
type Multi []Sink

// Append implements Sink.
func (m Multi) Append(r Rec) {
	for _, s := range m {
		s.Append(r)
	}
}

// Counter is a Sink that just counts records and V-credits.
type Counter struct {
	Recs    uint64
	VCredit uint64
}

// Append implements Sink.
func (c *Counter) Append(r Rec) {
	c.Recs++
	c.VCredit += uint64(r.VCredit)
}

// Buffer is a Sink that retains all records, for tests.
type Buffer struct {
	Recs []Rec
}

// Append implements Sink.
func (b *Buffer) Append(r Rec) { b.Recs = append(b.Recs, r) }

package trace

import "testing"

func TestIsBranch(t *testing.T) {
	branchy := []Class{ClassBranch, ClassJump, ClassCall, ClassRet, ClassInd}
	for _, c := range branchy {
		r := Rec{Class: c}
		if !r.IsBranch() {
			t.Errorf("%v should be a branch", c)
		}
	}
	for _, c := range []Class{ClassALU, ClassMul, ClassLoad, ClassStore, ClassNop} {
		r := Rec{Class: c}
		if r.IsBranch() {
			t.Errorf("%v should not be a branch", c)
		}
	}
}

func TestCounterSink(t *testing.T) {
	var c Counter
	c.Append(Rec{VCredit: 1})
	c.Append(Rec{VCredit: 0})
	c.Append(Rec{VCredit: 2})
	if c.Recs != 3 || c.VCredit != 3 {
		t.Errorf("counter = %d recs, %d credit", c.Recs, c.VCredit)
	}
}

func TestMultiSink(t *testing.T) {
	var a, b Counter
	m := Multi{&a, &b}
	m.Append(Rec{VCredit: 1})
	if a.Recs != 1 || b.Recs != 1 {
		t.Error("multi sink did not fan out")
	}
}

func TestBufferSink(t *testing.T) {
	var b Buffer
	b.Append(Rec{PC: 1})
	b.Append(Rec{PC: 2})
	if len(b.Recs) != 2 || b.Recs[1].PC != 2 {
		t.Errorf("buffer = %+v", b.Recs)
	}
}

func TestClassString(t *testing.T) {
	if ClassLoad.String() != "load" || ClassRet.String() != "ret" {
		t.Error("class names wrong")
	}
	if Class(200).String() != "class?" {
		t.Error("out-of-range class name")
	}
}

package telemetry

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// TestCheckpointConcurrentProbe exercises the exact interleaving the
// serve scheduler hits on every quantum: scrapers keep the Config.Poll
// probe armed (calling State from other goroutines, which flips the
// want flag at arbitrary points) while the owner goroutine preempts the
// VM, publishes a boundary snapshot, parks the session, checkpoints,
// round-trips the encoding, and restores into a fresh VM for the next
// quantum. Run under -race this proves vm.Checkpoint never overlaps a
// probe execution — the probe only ever runs on the VM goroutine, and
// the parked fast path keeps scrapers off the descheduled VM. The run
// must also finish bit-identical to an uninterrupted interpreter.
func TestCheckpointConcurrentProbe(t *testing.T) {
	spec, err := workload.ByName("gzip", 1)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Program()
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	pl := New(Options{})
	defer pl.Close()
	sess := pl.Register(SessionConfig{Name: "ckpt-race", Workload: "gzip", Registry: reg})

	// The scraper: hammer State with a tiny wait so the want flag arms
	// and times out continuously, racing every phase transition below.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sess.State(time.Millisecond)
		}
	}()

	const quantum = 10_000
	var st *checkpoint.State
	for seg := 0; ; seg++ {
		if seg > 500 {
			t.Fatal("run never completed; preemption wedged")
		}
		cfg := vm.DefaultConfig()
		cfg.Metrics = reg
		cfg.Poll = sess.Poll
		var vv *vm.VM
		var target uint64
		cfg.Stop = func() bool { return vv.Stats.TotalVInsts() >= target }
		vv = vm.New(mem.New(), cfg)
		if st == nil {
			if err := vv.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
		} else {
			vv.Restore(st)
		}
		target = vv.Stats.TotalVInsts() + quantum

		probe := ProbeVM(vv, nil)
		sess.SetProbe(probe)
		sess.Unpark()
		runErr := vv.Run(0)

		// Deschedule: push the boundary state, park, then checkpoint —
		// all while the scraper keeps arming the probe.
		sess.Publish(probe())
		sess.Park()
		ck := vv.Checkpoint()
		dec, derr := checkpoint.Decode(checkpoint.Encode(ck))
		if derr != nil {
			t.Fatalf("segment %d: checkpoint round-trip: %v", seg, derr)
		}
		st = dec

		if runErr == nil {
			break
		}
		if !errors.Is(runErr, vm.ErrPreempted) {
			t.Fatalf("segment %d: %v", seg, runErr)
		}
	}
	close(stop)
	wg.Wait()
	sess.Finish()

	// The chopped-up run must match the uninterrupted interpreter.
	oracle := emu.New(mem.New())
	if err := oracle.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if !st.Halted || st.ExitStatus != oracle.ExitStatus || st.PC != oracle.PC {
		t.Fatalf("final state halted/exit/pc = %v/%d/%#x, want %v/%d/%#x",
			st.Halted, st.ExitStatus, st.PC, oracle.Halted, oracle.ExitStatus, oracle.PC)
	}
	if string(st.Console) != oracle.ConsoleString() {
		t.Fatalf("console %q, want %q", st.Console, oracle.ConsoleString())
	}
	m := mem.New()
	m.LoadSnapshot(st.Pages)
	if ok, addr := mem.Equal(m, oracle.Mem); !ok {
		t.Fatalf("memory differs at %#x", addr)
	}
}

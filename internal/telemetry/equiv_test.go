package telemetry_test

import (
	"bufio"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/telemetry"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// discardLogger silences the plane in tests.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// gzipSpec builds the reference run every test here uses.
func gzipSpec(t testing.TB) experiments.RunSpec {
	t.Helper()
	wl, err := workload.ByName("gzip", 1)
	if err != nil {
		t.Fatal(err)
	}
	return experiments.RunSpec{
		Workload: wl, Machine: experiments.ILDPModified,
		Chain: translate.SWPredRAS, Timing: true,
	}
}

// TestTelemetryEquivalence is the zero-perturbation acceptance
// criterion: a run with the full plane attached — session registered,
// Poll hook installed, an SSE consumer streaming, and /metrics being
// scraped concurrently — must produce bit-identical architected state
// and identical Stats, timing, and PE distribution to an unattached
// run of the same program.
func TestTelemetryEquivalence(t *testing.T) {
	// Unattached reference run.
	baseSpec := gzipSpec(t)
	var baseCPU *emu.CPU
	baseSpec.Attach = func(v *vm.VM) { baseCPU = v.CPU() }
	base, err := experiments.Run(baseSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Attached run: plane + session + live consumers.
	reg := metrics.NewRegistry()
	plane := telemetry.New(telemetry.Options{Logger: discardLogger()})
	defer plane.Close()
	sess := plane.Register(telemetry.SessionConfig{
		Name: "equiv", Workload: "gzip", Machine: "ildp-modified", Registry: reg,
	})
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	// One SSE consumer draining for the whole run.
	streamed := new(atomic.Int64)
	sseDone := make(chan struct{})
	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(sseDone)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				streamed.Add(1)
			}
		}
	}()

	// A concurrent scraper exercising the probe protocol mid-run.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			r, err := http.Get(srv.URL + "/metrics?wait=5")
			if err != nil {
				return
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	}()

	attSpec := gzipSpec(t)
	attSpec.Metrics = reg
	attSpec.Tune = func(cfg *vm.Config) { cfg.Poll = sess.Poll }
	var attCPU *emu.CPU
	attSpec.Attach = func(v *vm.VM) {
		attCPU = v.CPU()
		sess.Attach(v, nil)
	}
	att, err := experiments.Run(attSpec)
	if err != nil {
		t.Fatal(err)
	}
	sess.Finish()
	close(stopScrape)
	<-scrapeDone
	resp.Body.Close()
	<-sseDone

	// Bit-identical architected state.
	if baseCPU.PC != attCPU.PC || baseCPU.Halted != attCPU.Halted ||
		baseCPU.ExitStatus != attCPU.ExitStatus {
		t.Errorf("CPU state differs: base pc=%#x halted=%v status=%d, attached pc=%#x halted=%v status=%d",
			baseCPU.PC, baseCPU.Halted, baseCPU.ExitStatus,
			attCPU.PC, attCPU.Halted, attCPU.ExitStatus)
	}
	if baseCPU.Reg != attCPU.Reg {
		t.Error("register files differ with telemetry attached")
	}
	if baseCPU.ConsoleString() != attCPU.ConsoleString() {
		t.Error("console output differs with telemetry attached")
	}
	if ok, addr := mem.Equal(baseCPU.Mem, attCPU.Mem); !ok {
		t.Errorf("memory differs at %#x with telemetry attached", addr)
	}

	// Identical statistics and timing.
	if !reflect.DeepEqual(base.VM, att.VM) {
		t.Errorf("VM stats differ with telemetry attached:\n%+v\n%+v", base.VM, att.VM)
	}
	if base.Timing != att.Timing {
		t.Errorf("timing differs with telemetry attached:\n%+v\n%+v", base.Timing, att.Timing)
	}
	if !reflect.DeepEqual(base.PEDist, att.PEDist) {
		t.Error("PE distribution differs with telemetry attached")
	}

	// The attachment was real: the consumer streamed events and the
	// final exposition carries live vm.* samples.
	if streamed.Load() == 0 {
		t.Error("SSE consumer saw no events during the run")
	}
	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(body), `vm_interp_insts{session="1"`) {
		t.Errorf("final exposition missing live vm samples:\n%.2000s", body)
	}
}

// BenchmarkTelemetryOverhead measures the cost of attaching the plane:
// the same gzip run detached, attached-but-idle (Poll installed,
// nobody scraping), and attached with a streaming SSE consumer. The
// attached-idle delta is the price of one atomic load per poll
// boundary; the streaming delta adds the registry tap and broadcast
// publish per lifecycle event.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("detached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Run(gzipSpec(b)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("attached-idle", func(b *testing.B) {
		plane := telemetry.New(telemetry.Options{Logger: discardLogger()})
		defer plane.Close()
		for i := 0; i < b.N; i++ {
			reg := metrics.NewRegistry()
			sess := plane.Register(telemetry.SessionConfig{
				Name: "bench", Workload: "gzip", Registry: reg,
			})
			spec := gzipSpec(b)
			spec.Metrics = reg
			spec.Tune = func(cfg *vm.Config) { cfg.Poll = sess.Poll }
			spec.Attach = func(v *vm.VM) { sess.Attach(v, nil) }
			if _, err := experiments.Run(spec); err != nil {
				b.Fatal(err)
			}
			sess.Finish()
			plane.Deregister(sess)
		}
	})
	b.Run("attached-streaming", func(b *testing.B) {
		plane := telemetry.New(telemetry.Options{Logger: discardLogger()})
		defer plane.Close()
		srv := httptest.NewServer(plane.Handler())
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/events")
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		go io.Copy(io.Discard, resp.Body)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg := metrics.NewRegistry()
			sess := plane.Register(telemetry.SessionConfig{
				Name: "bench", Workload: "gzip", Registry: reg,
			})
			spec := gzipSpec(b)
			spec.Metrics = reg
			spec.Tune = func(cfg *vm.Config) { cfg.Poll = sess.Poll }
			spec.Attach = func(v *vm.VM) { sess.Attach(v, nil) }
			if _, err := experiments.Run(spec); err != nil {
				b.Fatal(err)
			}
			sess.Finish()
			plane.Deregister(sess)
		}
	})
}

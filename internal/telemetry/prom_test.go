package telemetry

import (
	"strings"
	"testing"

	"github.com/ildp/accdbt/internal/metrics"
)

// TestExpositionGolden pins the Prometheus text rendering byte for
// byte: family ordering is sorted and stable, each family gets exactly
// one # TYPE line even when several sessions contribute samples,
// histograms render cumulative buckets with a closing +Inf plus sum,
// count, and a companion quantile family, label values are escaped,
// and the event ring's drop counter is surfaced (nonzero here — the
// first registry records past the ring capacity; the second records no
// events at all, so its event families are gated off entirely).
func TestExpositionGolden(t *testing.T) {
	reg1 := metrics.NewRegistry()
	reg1.Counter("vm.interp_insts").Add(7)
	for i := 0; i < 4; i++ {
		reg1.Histogram("translate.cost").Observe(2)
	}
	// 8200 events into an 8192-slot ring: 8 dropped.
	for i := 0; i < 8200; i++ {
		reg1.Event(metrics.Event{Kind: metrics.EventInstall, Frag: int32(i)})
	}

	reg2 := metrics.NewRegistry()
	reg2.Counter("vm.interp_insts").Add(9)
	reg2.Gauge("tcache.bytes").Set(2.5)
	// One observation past the top bucket bound lands in the overflow
	// bucket, whose exposition upper bound is +Inf.
	reg2.Histogram("span.cycles").Observe(1e9)

	exp := NewExposition()
	exp.AddRegistry(reg1, Label{Name: "session", Value: "1"})
	exp.AddRegistry(reg2, Label{Name: "session", Value: "2"})
	exp.Add("telemetry.weird", "gauge", 1,
		Label{Name: "path", Value: "a\\b\"c\nd"})

	var sb strings.Builder
	if err := exp.Write(&sb); err != nil {
		t.Fatal(err)
	}

	golden := `# TYPE metrics_events_dropped counter
metrics_events_dropped{session="1"} 8
# TYPE metrics_events_recorded counter
metrics_events_recorded{session="1"} 8200
# TYPE span_cycles histogram
span_cycles_bucket{session="2",le="+Inf"} 1
span_cycles_sum{session="2"} 1000000000
span_cycles_count{session="2"} 1
# TYPE span_cycles_quantile gauge
span_cycles_quantile{session="2",q="0.5"} 1000000000
span_cycles_quantile{session="2",q="0.95"} 1000000000
span_cycles_quantile{session="2",q="0.99"} 1000000000
# TYPE tcache_bytes gauge
tcache_bytes{session="2"} 2.5
# TYPE telemetry_weird gauge
telemetry_weird{path="a\\b\"c\nd"} 1
# TYPE translate_cost histogram
translate_cost_bucket{session="1",le="2"} 4
translate_cost_bucket{session="1",le="+Inf"} 4
translate_cost_sum{session="1"} 8
translate_cost_count{session="1"} 4
# TYPE translate_cost_quantile gauge
translate_cost_quantile{session="1",q="0.5"} 2
translate_cost_quantile{session="1",q="0.95"} 2
translate_cost_quantile{session="1",q="0.99"} 2
# TYPE vm_interp_insts counter
vm_interp_insts{session="1"} 7
vm_interp_insts{session="2"} 9
`
	if got := sb.String(); got != golden {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestExpositionDeterministic renders the same registry twice and
// requires byte-identical output (map iteration must never leak into
// the ordering).
func TestExpositionDeterministic(t *testing.T) {
	reg := metrics.NewRegistry()
	for _, name := range []string{"b.two", "a.one", "c.three", "a.zero"} {
		reg.Counter(name).Inc()
		reg.Gauge(name + ".g").Set(1)
	}
	render := func() string {
		exp := NewExposition()
		exp.AddRegistry(reg, Label{Name: "session", Value: "1"})
		var sb strings.Builder
		if err := exp.Write(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestSanitizeName covers the name-mangling corners.
func TestSanitizeName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"vm.store.hits", "vm_store_hits"},
		{"already_fine", "already_fine"},
		{"9lives", "_9lives"},
		{"a-b/c d", "a_b_c_d"},
		{"ns:sub.metric", "ns:sub_metric"},
	} {
		if got := SanitizeName(tc.in); got != tc.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestFormatValue pins the numeric rendering used for both sample
// values and le/q label values.
func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{4, "4"},
		{2.5, "2.5"},
		{0.95, "0.95"},
		{1e9, "1000000000"},
		{1e16, "1e+16"},
	} {
		if got := formatValue(tc.in); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

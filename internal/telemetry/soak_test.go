package telemetry_test

import (
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/telemetry"
	"github.com/ildp/accdbt/internal/vm"
)

// TestSlowConsumerSoak pins the isolation guarantee under a hostile
// consumer: an SSE client that connects and never reads must (a) not
// delay VM retirement beyond a generous wall-time bound relative to an
// unattached baseline, and (b) show a nonzero drop count — the plane
// sheds its events instead of applying backpressure. With a single
// subscriber the broadcaster's SubsDropped aggregate is exactly that
// client's per-client drop count.
func TestSlowConsumerSoak(t *testing.T) {
	const runs = 3

	// Unattached baseline.
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := experiments.Run(gzipSpec(t)); err != nil {
			t.Fatal(err)
		}
	}
	baseline := time.Since(start)

	// Plane with a deliberately small per-client buffer and a stalled
	// raw-socket client on /events.
	reg := metrics.NewRegistry()
	plane := telemetry.New(telemetry.Options{Logger: discardLogger(), ClientBuf: 8})
	defer plane.Close()
	sess := plane.Register(telemetry.SessionConfig{
		Name: "soak", Workload: "gzip", Machine: "ildp-modified", Registry: reg,
	})
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	raw, err := net.Dial("tcp", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("GET /events HTTP/1.1\r\nHost: t\r\nAccept: text/event-stream\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for plane.Broadcaster().Subscribers() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled client never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Saturate the stalled client so the drop policy is engaged the
	// whole time the VM runs: pump synthetic events until its buffer
	// overflows. Publishing is non-blocking by contract, so this loop
	// cannot wedge even though nobody is reading.
	deadline = time.Now().Add(15 * time.Second)
	var pumped int32
	for plane.Broadcaster().SubsDropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled client never dropped an event")
		}
		reg.Event(metrics.Event{Kind: metrics.EventChain, Frag: pumped})
		pumped++
	}

	// Timed attached runs against the saturated, stalled consumer.
	start = time.Now()
	for i := 0; i < runs; i++ {
		spec := gzipSpec(t)
		spec.Metrics = reg
		spec.Tune = func(cfg *vm.Config) { cfg.Poll = sess.Poll }
		spec.Attach = func(v *vm.VM) { sess.Attach(v, nil) }
		if _, err := experiments.Run(spec); err != nil {
			t.Fatal(err)
		}
	}
	attached := time.Since(start)
	sess.Finish()

	drops := plane.Broadcaster().SubsDropped()
	if drops == 0 {
		t.Error("per-client drop count is zero under a stalled consumer")
	}
	// The bound is deliberately loose — it only has to catch the
	// pathological case where the stalled client's backpressure reaches
	// the VM (which would multiply wall time by orders of magnitude,
	// not constants).
	bound := baseline*5 + 2*time.Second
	if attached > bound {
		t.Errorf("attached runs took %v with a stalled consumer (baseline %v, bound %v)",
			attached, baseline, bound)
	}
	t.Logf("baseline=%v attached=%v pumped=%d drops=%d", baseline, attached, pumped, drops)
}

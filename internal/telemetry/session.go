package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/vm"
)

// Live is one introspection snapshot of a VM session, captured on the
// VM goroutine at a V-instruction boundary, so every field is a
// consistent copy: no lock is shared with the run loop and no field
// aliases memory the VM still writes.
type Live struct {
	// Stats is a copy of the VM's execution statistics.
	Stats vm.Stats `json:"stats"`
	// VPC is the V-ISA program counter at the snapshot boundary.
	VPC uint64 `json:"vpc"`
	// Halted reports whether the guest executed its exit call;
	// ExitStatus is its exit value (meaningful only when Halted).
	Halted bool `json:"halted"`
	// ExitStatus is the guest's exit value.
	ExitStatus uint64 `json:"exit_status"`
	// TCache is the translation-cache occupancy at the boundary.
	TCache tcache.Occupancy `json:"tcache"`
	// Pages is the guest-resident page count at the boundary, the
	// quantity governed by vm.Config.MaxPages (DESIGN.md §15).
	Pages int `json:"pages"`
	// Hot is the live hot-fragment profile, nil when the session runs
	// without a profiler.
	Hot *prof.Profile `json:"-"`
}

// SessionConfig describes a VM session being registered with a Plane.
type SessionConfig struct {
	// Name is a human-readable session name ("gzip/ildp-mod seed=3").
	Name string
	// Workload and Machine label the session's metric samples.
	Workload string
	Machine  string
	// Registry is the session's metrics registry; the plane taps its
	// event stream and renders it on /metrics. May be nil.
	Registry *metrics.Registry
	// Store is the fragment store the session translates through, for
	// shard occupancy reporting. May be nil.
	Store *fragstore.Store
}

// Session is one registered VM run. The introspection protocol is
// pull-based and runs entirely on the VM goroutine: an HTTP handler
// calls State, which arms the want flag and waits; the VM's Config.Poll
// hook (Session.Poll) observes the flag at the next V-instruction
// boundary, runs the probe there, caches the result, and wakes every
// waiter. The attached-but-idle cost is therefore one atomic load per
// poll site, and the VM's state is only ever read by the VM goroutine.
type Session struct {
	id       int
	name     string
	workload string
	machine  string
	started  time.Time
	reg      *metrics.Registry
	store    *fragstore.Store

	// cancelTap detaches the plane's registry subscription; set by
	// Plane.Register, called on deregistration.
	cancelTap func()

	// want is armed by State and cleared by the probe service; it is
	// the only word the VM goroutine reads when nobody is looking.
	want atomic.Bool

	// parked marks a session whose VM is not currently executing (a
	// scheduler descheduled it between quanta): no goroutine will reach
	// a poll boundary, so State serves the cached snapshot immediately
	// instead of waiting out its probe timeout. The owner publishes a
	// final snapshot with Publish before parking.
	parked atomic.Bool

	mu      sync.Mutex
	probe   func() Live
	last    Live
	lastAt  time.Time
	hasLast bool
	done    bool
	waiters []chan struct{}
}

// ID returns the plane-assigned session identifier.
func (s *Session) ID() string { return strconv.Itoa(s.id) }

// Name returns the session's human-readable name.
func (s *Session) Name() string { return s.name }

// Workload returns the workload label.
func (s *Session) Workload() string { return s.workload }

// Machine returns the machine-model label.
func (s *Session) Machine() string { return s.machine }

// Started returns the registration time.
func (s *Session) Started() time.Time { return s.started }

// Registry returns the session's metrics registry (may be nil).
func (s *Session) Registry() *metrics.Registry { return s.reg }

// Store returns the session's fragment store (may be nil).
func (s *Session) Store() *fragstore.Store { return s.store }

// Done reports whether the session has finished.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Poll is the session's vm.Config.Poll hook: a single atomic load when
// no snapshot is wanted, and a probe run at the current V-instruction
// boundary when one is. Install it with cfg.Poll = sess.Poll before
// constructing the VM.
func (s *Session) Poll() {
	if !s.want.Load() {
		return
	}
	s.service()
}

// service runs the probe on the calling (VM) goroutine, caches the
// snapshot, and wakes every waiter. Split from Poll so the fast path
// stays inlineable.
func (s *Session) service() {
	s.mu.Lock()
	probe := s.probe
	s.mu.Unlock()
	if probe == nil {
		// Armed before Attach (e.g. between segments of a kill-resume
		// soak): leave want set; waiters fall back to the cached state.
		return
	}
	live := probe()
	s.mu.Lock()
	s.last, s.lastAt, s.hasLast = live, time.Now(), true
	waiters := s.waiters
	s.waiters = nil
	s.want.Store(false)
	s.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// Attach installs the standard VM probe for v (and p, which may be nil
// to skip the hot table) and seeds the cached state with an immediate
// probe. Call it from the goroutine that will run the VM, after the
// program is loaded and before Run.
func (s *Session) Attach(v *vm.VM, p *prof.Profiler) {
	s.SetProbe(ProbeVM(v, p))
	s.service0()
}

// SetProbe installs a custom probe. The probe is only ever invoked on
// the goroutine that calls Poll, Attach, or Finish, so it may read VM
// state without synchronization; it must return copies, not aliases.
func (s *Session) SetProbe(probe func() Live) {
	s.mu.Lock()
	s.probe = probe
	s.mu.Unlock()
}

// service0 runs the probe once unconditionally to seed or refresh the
// cached state.
func (s *Session) service0() {
	s.want.Store(true)
	s.service()
}

// Publish caches a snapshot captured by the session's owner (a
// scheduler that just checkpointed the VM at a quantum boundary) and
// wakes every State waiter. It is the push-mode complement to the
// pull probe: between scheduler quanta no goroutine reaches a poll
// boundary, so the owner pushes the descheduled state instead.
func (s *Session) Publish(live Live) {
	s.mu.Lock()
	s.last, s.lastAt, s.hasLast = live, time.Now(), true
	waiters := s.waiters
	s.waiters = nil
	s.want.Store(false)
	s.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// Park marks the session descheduled: until Unpark, State returns the
// cached snapshot immediately rather than arming the probe and waiting
// for a poll boundary that cannot arrive. Call Publish first so the
// cache holds the state the session was descheduled with.
func (s *Session) Park() { s.parked.Store(true) }

// Unpark re-enables the pull probe; the scheduler calls it when the
// session's next quantum starts executing (with Poll installed).
func (s *Session) Unpark() { s.parked.Store(false) }

// Parked reports whether the session is currently parked.
func (s *Session) Parked() bool { return s.parked.Load() }

// Finish captures a final snapshot via the current probe (on the
// caller's goroutine, which must be the VM goroutine) and marks the
// session done. Waiters are woken; later State calls return the final
// state immediately. Safe to call more than once.
func (s *Session) Finish() {
	s.mu.Lock()
	probe := s.probe
	s.mu.Unlock()
	var live Live
	captured := false
	if probe != nil {
		live = probe()
		captured = true
	}
	s.mu.Lock()
	if captured {
		s.last, s.lastAt, s.hasLast = live, time.Now(), true
	}
	s.done = true
	waiters := s.waiters
	s.waiters = nil
	s.want.Store(false)
	s.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// State returns the session's introspection snapshot. For a live
// session it requests a fresh probe and waits up to wait for the VM to
// reach a poll boundary, falling back to the cached snapshot on
// timeout; for a finished session it returns the final state
// immediately. fresh reports whether the returned state was captured by
// this request (or is final); at is its capture time; ok is false when
// no snapshot has ever been captured.
func (s *Session) State(wait time.Duration) (live Live, at time.Time, fresh, ok bool) {
	s.mu.Lock()
	if s.done {
		live, at, ok = s.last, s.lastAt, s.hasLast
		s.mu.Unlock()
		return live, at, true, ok
	}
	if s.parked.Load() {
		// Descheduled: no VM goroutine will service a probe, so waiting
		// would only stall the scrape. The cached snapshot is exactly the
		// state the session was parked with.
		live, at, ok = s.last, s.lastAt, s.hasLast
		s.mu.Unlock()
		return live, at, false, ok
	}
	w := make(chan struct{})
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	s.want.Store(true)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w:
		fresh = true
	case <-timer.C:
	}
	s.mu.Lock()
	live, at, ok = s.last, s.lastAt, s.hasLast
	s.mu.Unlock()
	return live, at, fresh, ok
}

// ProbeVM returns the standard probe for a VM: Stats, the precise V-PC,
// halt state, translation-cache occupancy, and (when p is a live
// profiler) the hot-fragment profile. The returned closure must only
// run on the VM goroutine; every field it returns is a copy.
func ProbeVM(v *vm.VM, p *prof.Profiler) func() Live {
	return func() Live {
		cpu := v.CPU()
		live := Live{
			Stats:      v.Stats,
			VPC:        cpu.PC,
			Halted:     cpu.Halted,
			ExitStatus: cpu.ExitStatus,
			TCache:     v.TCache().Occupancy(),
			Pages:      v.Pages(),
		}
		if p.Enabled() {
			live.Hot = p.LiveProfile()
		}
		return live
	}
}

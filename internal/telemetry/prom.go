package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/ildp/accdbt/internal/metrics"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one exposition label pair. Values are escaped on output;
// names must already be valid label names ([a-zA-Z_][a-zA-Z0-9_]*).
type Label struct {
	Name  string
	Value string
}

// sample is one exposition line: an optional family-name suffix
// (_bucket, _sum, _count), its labels, and the value.
type sample struct {
	suffix string
	labels []Label
	value  float64
}

// family is one metric family: every sample sharing a base name and a
// single # TYPE line.
type family struct {
	name    string
	typ     string
	samples []sample
}

// Exposition accumulates metric samples grouped into families and
// renders them in the Prometheus text exposition format (version
// 0.0.4). Families are emitted sorted by name, each with exactly one
// `# TYPE` line; samples within a family keep insertion order, so
// callers that add sessions in a stable order get byte-stable output.
// An Exposition is built and written by one goroutine per scrape; it is
// not safe for concurrent use.
type Exposition struct {
	families map[string]*family
}

// NewExposition returns an empty exposition.
func NewExposition() *Exposition {
	return &Exposition{families: map[string]*family{}}
}

// promQuantiles are the quantile points exposed for every histogram,
// matching the profiler's span summaries.
var promQuantiles = [...]float64{0.5, 0.95, 0.99}

// SanitizeName maps a dotted instrument name ("vm.store.hits") to a
// valid Prometheus metric name ("vm_store_hits"): every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed
// with '_'.
func SanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// formatValue renders a sample value: integral values print without an
// exponent or decimal point, +Inf as "+Inf", everything else in Go's
// shortest 'g' form.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// add appends one sample to the named family, creating the family (and
// pinning its type) on first use.
func (e *Exposition) add(name, typ, suffix string, value float64, labels []Label) {
	f := e.families[name]
	if f == nil {
		f = &family{name: name, typ: typ}
		e.families[name] = f
	}
	f.samples = append(f.samples, sample{suffix: suffix, labels: labels, value: value})
}

// Add appends one sample to the family named name (sanitized), typed
// typ ("counter" or "gauge"), with the given labels. It is the escape
// hatch for self-metrics that do not live in a metrics.Registry.
func (e *Exposition) Add(name, typ string, value float64, labels ...Label) {
	e.add(SanitizeName(name), typ, "", value, labels)
}

// AddRegistry renders a registry snapshot into the exposition, tagging
// every sample with the given labels: counters and gauges one sample
// each, histograms as cumulative `_bucket{le=...}` series plus `_sum`
// and `_count` plus a companion `<name>_quantile{q=...}` gauge family
// interpolated by metrics.Histogram.Quantile, and the event ring's
// recorded/dropped totals as the `metrics_events_recorded` /
// `metrics_events_dropped` counters. The event families follow the
// repo's nonzero-gating convention — they appear only once the ring
// has recorded something — so a throwaway registry used to render a
// Stats snapshot never emits duplicate event series.
func (e *Exposition) AddRegistry(reg *metrics.Registry, labels ...Label) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		e.add(SanitizeName(c.Name), "counter", "", float64(c.Value), labels)
	}
	for _, g := range snap.Gauges {
		e.add(SanitizeName(g.Name), "gauge", "", g.Value, labels)
	}
	for _, h := range snap.Histograms {
		name := SanitizeName(h.Name)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := Label{Name: "le", Value: formatValue(b.UpperBound)}
			e.add(name, "histogram", "_bucket", float64(cum), append(append([]Label(nil), labels...), le))
		}
		// The exposition format requires the +Inf bucket to close the
		// series even when the overflow bucket is empty.
		if len(h.Buckets) == 0 || !math.IsInf(h.Buckets[len(h.Buckets)-1].UpperBound, 1) {
			le := Label{Name: "le", Value: "+Inf"}
			e.add(name, "histogram", "_bucket", float64(cum), append(append([]Label(nil), labels...), le))
		}
		e.add(name, "histogram", "_sum", h.Sum, labels)
		e.add(name, "histogram", "_count", float64(h.Count), labels)
		for _, q := range promQuantiles {
			ql := Label{Name: "q", Value: formatValue(q)}
			e.add(name+"_quantile", "gauge", "",
				reg.Histogram(h.Name).Quantile(q),
				append(append([]Label(nil), labels...), ql))
		}
	}
	if rec := reg.EventsRecorded(); rec > 0 {
		e.add("metrics_events_recorded", "counter", "", float64(rec), labels)
		e.add("metrics_events_dropped", "counter", "", float64(reg.EventsDropped()), labels)
	}
}

// Write renders the exposition: families sorted by name, one # TYPE
// line each, samples in insertion order.
func (e *Exposition) Write(w io.Writer) error {
	names := make([]string, 0, len(e.families))
	for name := range e.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := e.families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if err := writeSample(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample renders one exposition line.
func writeSample(w io.Writer, name string, s sample) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(s.suffix)
	if len(s.labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(s.value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a level name ("debug", "info", "warn", "error",
// case-insensitive) to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the commands' structured logger: leveled slog
// records written to w as text ("text", the default) or JSON ("json").
// level and format take the string forms of the -log-level and
// -log-format flags.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("telemetry: unknown log format %q (want text|json)", format)
}

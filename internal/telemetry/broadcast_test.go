package telemetry

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/ildp/accdbt/internal/metrics"
)

// collect drains a subscriber until n events arrive or the deadline
// passes, returning what it got.
func collect(t *testing.T, sub *Subscriber, n int, deadline time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for len(out) < n {
		select {
		case payload, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, payload)
		case <-timer.C:
			return out
		}
	}
	return out
}

// TestBroadcastFanout delivers every published event, in order, to two
// concurrent subscribers.
func TestBroadcastFanout(t *testing.T) {
	b := NewBroadcaster(16, 16)
	defer b.Close()
	s1, s2 := b.Subscribe(), b.Subscribe()
	defer s1.Close()
	defer s2.Close()

	const n = 5
	for i := 0; i < n; i++ {
		b.Publish(StreamEvent{Session: "1",
			Event: metrics.Event{Kind: metrics.EventInstall, Seq: i}})
	}
	for _, sub := range []*Subscriber{s1, s2} {
		got := collect(t, sub, n, 2*time.Second)
		if len(got) != n {
			t.Fatalf("subscriber %d: got %d events, want %d", sub.ID(), len(got), n)
		}
		for i, payload := range got {
			var e StreamEvent
			if err := json.Unmarshal(payload, &e); err != nil {
				t.Fatalf("subscriber %d event %d: %v", sub.ID(), i, err)
			}
			if e.Session != "1" || e.Event.Seq != i {
				t.Errorf("subscriber %d event %d: got session=%q seq=%d",
					sub.ID(), i, e.Session, e.Event.Seq)
			}
		}
		if d := sub.Dropped(); d != 0 {
			t.Errorf("subscriber %d: %d drops on an uncontended stream", sub.ID(), d)
		}
	}
	if b.Delivered() != 2*n {
		t.Errorf("delivered = %d, want %d", b.Delivered(), 2*n)
	}
}

// TestBroadcastSlowConsumer pins the drop policy: a subscriber that
// never drains loses exactly the events past its buffer — counted on
// the subscriber and on the broadcaster — while a concurrent healthy
// subscriber still receives everything.
func TestBroadcastSlowConsumer(t *testing.T) {
	const n, stallBuf = 100, 4
	b := NewBroadcaster(n, n)
	defer b.Close()
	healthy := b.SubscribeBuf(n)
	defer healthy.Close()
	stalled := b.SubscribeBuf(stallBuf)
	defer stalled.Close()

	for i := 0; i < n; i++ {
		b.Publish(StreamEvent{Session: "1",
			Event: metrics.Event{Kind: metrics.EventTranslate, Seq: i}})
	}
	// Wait for the dispatcher to finish every delivery attempt: n
	// events times two subscribers, each either delivered or dropped.
	deadline := time.Now().Add(5 * time.Second)
	for b.Delivered()+b.SubsDropped() < 2*n {
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher stalled: delivered=%d dropped=%d",
				b.Delivered(), b.SubsDropped())
		}
		time.Sleep(time.Millisecond)
	}

	got := collect(t, healthy, n, 2*time.Second)
	if len(got) != n {
		t.Fatalf("healthy subscriber: got %d events, want %d", len(got), n)
	}
	if d := healthy.Dropped(); d != 0 {
		t.Errorf("healthy subscriber dropped %d events", d)
	}
	if d := stalled.Dropped(); d != n-stallBuf {
		t.Errorf("stalled subscriber dropped %d, want %d", d, n-stallBuf)
	}
	if d := b.SubsDropped(); d != n-stallBuf {
		t.Errorf("broadcaster SubsDropped = %d, want %d", d, n-stallBuf)
	}
}

// TestBroadcastPublishNeverBlocks: with the dispatcher gone (Close)
// nothing drains the intake ring, so Publish must fill it and then
// return immediately, counting the overflow.
func TestBroadcastPublishNeverBlocks(t *testing.T) {
	const buf, extra = 8, 10
	b := NewBroadcaster(buf, 1)
	b.Close()
	start := time.Now()
	for i := 0; i < buf+extra; i++ {
		b.Publish(StreamEvent{Session: "1", Event: metrics.Event{Seq: i}})
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("publishing into a dead broadcaster took %v", el)
	}
	if d := b.InDropped(); d < extra {
		t.Errorf("intake drops = %d, want at least %d", d, extra)
	}
}

// TestBroadcastCloseSemantics: subscribing after Close yields a closed
// channel, Close is idempotent, and subscriber Close is idempotent and
// safe after broadcaster Close.
func TestBroadcastCloseSemantics(t *testing.T) {
	b := NewBroadcaster(4, 4)
	s := b.Subscribe()
	b.Close()
	b.Close()
	if _, ok := <-s.Events(); ok {
		t.Error("subscriber channel open after broadcaster Close")
	}
	s.Close()
	s.Close()
	late := b.Subscribe()
	if _, ok := <-late.Events(); ok {
		t.Error("post-Close subscriber channel not closed")
	}
}

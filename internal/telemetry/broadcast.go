package telemetry

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"github.com/ildp/accdbt/internal/metrics"
)

// StreamEvent is one broadcast unit on the live event stream: a metrics
// lifecycle event tagged with the session it came from.
type StreamEvent struct {
	// Session is the plane-assigned session ID the event belongs to.
	Session string `json:"session"`
	// Event is the fragment lifecycle event as recorded by the
	// session's metrics registry.
	Event metrics.Event `json:"event"`
}

// Broadcaster fans StreamEvents out to any number of subscribers with a
// strict never-block-the-publisher contract. Publish is a non-blocking
// send into a bounded intake ring serviced by one dispatcher goroutine;
// when the ring is full the event is dropped and counted. The
// dispatcher marshals each event once and offers it to every
// subscriber's bounded buffer with another non-blocking send, so one
// stalled consumer only loses its own events — it can never delay the
// dispatcher, other subscribers, or (transitively) the VM goroutine
// publishing into the ring.
type Broadcaster struct {
	in   chan StreamEvent
	quit chan struct{}
	done chan struct{}

	// clientBuf is the buffer size given to each new subscriber; fixed
	// at construction.
	clientBuf int

	mu     sync.Mutex
	subs   map[int]*Subscriber
	nextID int
	closed bool

	published   atomic.Uint64
	inDropped   atomic.Uint64
	delivered   atomic.Uint64
	subsDropped atomic.Uint64
}

// Subscriber is one consumer of the broadcast stream. Events arrive as
// pre-marshalled JSON on the channel returned by Events; events the
// subscriber was too slow to drain are dropped and counted in Dropped.
type Subscriber struct {
	id int
	b  *Broadcaster
	ch chan []byte

	dropped   atomic.Uint64
	delivered atomic.Uint64
	closeOnce sync.Once
}

// defaultInBuf and defaultClientBuf size the intake ring and each
// subscriber's buffer when the caller passes a non-positive value.
const (
	defaultInBuf     = 1024
	defaultClientBuf = 256
)

// NewBroadcaster starts a broadcaster whose intake ring holds inBuf
// pending events and whose subscribers each buffer clientBuf marshalled
// events; non-positive sizes take the package defaults.
func NewBroadcaster(inBuf, clientBuf int) *Broadcaster {
	if inBuf <= 0 {
		inBuf = defaultInBuf
	}
	if clientBuf <= 0 {
		clientBuf = defaultClientBuf
	}
	b := &Broadcaster{
		in:        make(chan StreamEvent, inBuf),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		subs:      map[int]*Subscriber{},
		clientBuf: clientBuf,
	}
	go b.dispatch()
	return b
}

// dispatch is the broadcaster's single service goroutine: it drains the
// intake ring, marshals each event once, and offers it to every live
// subscriber without blocking.
func (b *Broadcaster) dispatch() {
	defer close(b.done)
	for {
		select {
		case e := <-b.in:
			b.deliver(e)
		case <-b.quit:
			// Drain what was already accepted so a Close immediately after
			// the final Publish still delivers the tail.
			for {
				select {
				case e := <-b.in:
					b.deliver(e)
				default:
					return
				}
			}
		}
	}
}

// deliver marshals one event and offers it to every subscriber.
func (b *Broadcaster) deliver(e StreamEvent) {
	payload, err := json.Marshal(e)
	if err != nil {
		// metrics.Event marshals from plain fields; an error here would be
		// a programming bug, and losing the event is the only safe move.
		return
	}
	b.mu.Lock()
	subs := make([]*Subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		select {
		case s.ch <- payload:
			s.delivered.Add(1)
			b.delivered.Add(1)
		default:
			s.dropped.Add(1)
			b.subsDropped.Add(1)
		}
	}
}

// Publish offers an event to the broadcast stream and returns
// immediately. When the intake ring is full the event is dropped and
// counted; the caller is never blocked, so Publish is safe to invoke
// from a metrics.Registry tap on the VM goroutine.
func (b *Broadcaster) Publish(e StreamEvent) {
	select {
	case b.in <- e:
		b.published.Add(1)
	default:
		b.inDropped.Add(1)
	}
}

// Subscribe registers a new consumer with the broadcaster's default
// buffer and returns its subscriber handle. The caller must eventually
// call Subscriber.Close. Subscribing to a closed broadcaster returns a
// subscriber whose channel is already closed.
func (b *Broadcaster) Subscribe() *Subscriber { return b.SubscribeBuf(0) }

// SubscribeBuf is Subscribe with an explicit per-subscriber buffer
// size; non-positive takes the broadcaster default.
func (b *Broadcaster) SubscribeBuf(buf int) *Subscriber {
	if buf <= 0 {
		buf = b.clientBuf
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	s := &Subscriber{id: b.nextID, b: b, ch: make(chan []byte, buf)}
	if b.closed {
		close(s.ch)
		return s
	}
	b.subs[s.id] = s
	return s
}

// Close stops the dispatcher after draining already-accepted events and
// closes every subscriber channel. Publish after Close counts the event
// as an intake drop.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.quit)
	<-b.done
	b.mu.Lock()
	for id, s := range b.subs {
		close(s.ch)
		delete(b.subs, id)
	}
	b.mu.Unlock()
}

// Subscribers returns the current number of live subscribers.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Published returns the number of events accepted into the intake ring.
func (b *Broadcaster) Published() uint64 { return b.published.Load() }

// InDropped returns the number of events dropped at the intake ring
// because the dispatcher was behind.
func (b *Broadcaster) InDropped() uint64 { return b.inDropped.Load() }

// Delivered returns the total number of event deliveries across all
// subscribers (one event delivered to three subscribers counts three).
func (b *Broadcaster) Delivered() uint64 { return b.delivered.Load() }

// SubsDropped returns the total number of per-subscriber drops: events
// a slow consumer's buffer had no room for.
func (b *Broadcaster) SubsDropped() uint64 { return b.subsDropped.Load() }

// Events returns the subscriber's delivery channel. It is closed when
// the subscriber or the broadcaster closes.
func (s *Subscriber) Events() <-chan []byte { return s.ch }

// ID returns the broadcaster-assigned subscriber ID (1-based, in
// subscription order).
func (s *Subscriber) ID() int { return s.id }

// Dropped returns how many events this subscriber lost to its full
// buffer.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Delivered returns how many events were buffered for this subscriber.
func (s *Subscriber) Delivered() uint64 { return s.delivered.Load() }

// Close deregisters the subscriber and closes its channel. Safe to call
// more than once and after the broadcaster itself closed.
func (s *Subscriber) Close() {
	s.closeOnce.Do(func() {
		s.b.mu.Lock()
		if _, live := s.b.subs[s.id]; live {
			delete(s.b.subs, s.id)
			close(s.ch)
		}
		s.b.mu.Unlock()
	})
}

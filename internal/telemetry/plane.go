// Package telemetry is the embeddable live-introspection plane for
// VM-hosting processes (DESIGN.md §13). A Plane serves, over plain
// net/http:
//
//   - /metrics — Prometheus text exposition of every registered
//     session's counters, gauges, histograms (with quantiles), live
//     vm.* statistics, and event-ring drop totals;
//   - /events — a server-sent-events stream of fragment lifecycle
//     events fanned out through a never-blocks-the-publisher
//     broadcaster with per-client drop accounting;
//   - /vms and /vms/{id} — JSON session introspection: live Stats,
//     recovery/preemption counters, translation-cache occupancy,
//     fragment-store shard statistics, and the on-demand hot-fragment
//     table;
//   - /healthz and /readyz — liveness and readiness.
//
// The design invariant is zero perturbation of the translation loop:
// all VM state is captured on the VM goroutine at the same
// V-instruction boundaries where the stop hook is polled (vm.Config's
// Poll), so attaching the plane adds one atomic load per boundary and
// no shared locks, and a stalled HTTP consumer can only ever lose its
// own events.
package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
)

// Options configures a Plane. The zero value is usable.
type Options struct {
	// Logger receives the plane's structured diagnostics; nil uses
	// slog.Default.
	Logger *slog.Logger
	// EventBuf is the broadcaster intake ring size (default 1024).
	EventBuf int
	// ClientBuf is the per-SSE-client buffer size (default 256). A
	// client that falls more than ClientBuf events behind starts losing
	// events (counted, never blocking).
	ClientBuf int
	// ProbeWait bounds how long a scrape waits for the VM to reach a
	// poll boundary before serving the cached snapshot (default 100ms).
	ProbeWait time.Duration
}

// defaultProbeWait bounds a scrape's wait for a fresh VM snapshot.
const defaultProbeWait = 100 * time.Millisecond

// Plane is the introspection server: a session registry, an SSE
// broadcaster, and the HTTP handlers tying them together. All methods
// are safe for concurrent use.
type Plane struct {
	log       *slog.Logger
	bc        *Broadcaster
	probeWait time.Duration
	ready     atomic.Bool
	scrapes   atomic.Uint64

	mu       sync.Mutex
	sessions map[int]*Session
	nextID   int
	closed   bool

	mux *http.ServeMux
}

// New constructs a Plane and its HTTP handler tree.
func New(opts Options) *Plane {
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	wait := opts.ProbeWait
	if wait <= 0 {
		wait = defaultProbeWait
	}
	p := &Plane{
		log:       log,
		bc:        NewBroadcaster(opts.EventBuf, opts.ClientBuf),
		probeWait: wait,
		sessions:  map[int]*Session{},
		mux:       http.NewServeMux(),
	}
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)
	p.mux.HandleFunc("GET /events", p.handleEvents)
	p.mux.HandleFunc("GET /vms", p.handleVMs)
	p.mux.HandleFunc("GET /vms/{id}", p.handleVM)
	p.mux.HandleFunc("GET /healthz", p.handleHealthz)
	p.mux.HandleFunc("GET /readyz", p.handleReadyz)
	return p
}

// Handler returns the plane's HTTP handler, mountable on any server.
func (p *Plane) Handler() http.Handler { return p.mux }

// SetReady flips the /readyz verdict. Owners call SetReady(true) once
// their sessions are registered and the listener is up.
func (p *Plane) SetReady(ready bool) { p.ready.Store(ready) }

// Broadcaster returns the plane's event broadcaster, for owners that
// want to publish synthetic events or read drop counters.
func (p *Plane) Broadcaster() *Broadcaster { return p.bc }

// Register adds a session to the plane, taps its metrics registry so
// every recorded event is broadcast on /events (tagged with the session
// ID), and returns the session handle. The tap publishes without
// blocking, so the VM goroutine is never delayed by a slow or stalled
// stream consumer.
func (p *Plane) Register(cfg SessionConfig) *Session {
	p.mu.Lock()
	p.nextID++
	s := &Session{
		id:       p.nextID,
		name:     cfg.Name,
		workload: cfg.Workload,
		machine:  cfg.Machine,
		started:  time.Now(),
		reg:      cfg.Registry,
		store:    cfg.Store,
	}
	p.sessions[s.id] = s
	closed := p.closed
	p.mu.Unlock()
	id := s.ID()
	// A closed plane's broadcaster only counts drops, so registering
	// after Close skips the tap rather than subscribing to a dead
	// stream. Re-check under the lock before publishing the cancel:
	// a Close racing this registration must not leave a live tap
	// behind.
	if !closed {
		cancel := cfg.Registry.Subscribe(func(e metrics.Event) {
			p.bc.Publish(StreamEvent{Session: id, Event: e})
		})
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			cancel()
		} else {
			s.cancelTap = cancel
			p.mu.Unlock()
		}
	}
	p.log.Info("session registered", "session", id, "name", cfg.Name,
		"workload", cfg.Workload, "machine", cfg.Machine)
	return s
}

// Deregister detaches the session's event tap and removes it from the
// registry. Finished sessions may be kept registered indefinitely;
// deregistration exists for long-lived owners (soak monitors) that
// bound their session list.
func (p *Plane) Deregister(s *Session) {
	if s == nil {
		return
	}
	p.mu.Lock()
	cancel := s.cancelTap
	s.cancelTap = nil
	delete(p.sessions, s.id)
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	p.log.Info("session deregistered", "session", s.ID())
}

// Sessions returns the registered sessions sorted by ID.
func (p *Plane) Sessions() []*Session {
	p.mu.Lock()
	out := make([]*Session, 0, len(p.sessions))
	for _, s := range p.sessions {
		out = append(out, s)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Close shuts the plane down: it detaches every session's registry tap
// (so session registries stop feeding a dead stream and the closures
// they hold become collectable), then closes the broadcaster, which
// stops the dispatcher goroutine and closes every /events client
// channel, releasing their buffers. Close is idempotent; sessions
// registered afterwards are tracked but not tapped.
func (p *Plane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	taps := make([]func(), 0, len(p.sessions))
	for _, s := range p.sessions {
		if s.cancelTap != nil {
			taps = append(taps, s.cancelTap)
			s.cancelTap = nil
		}
	}
	p.mu.Unlock()
	for _, cancel := range taps {
		cancel()
	}
	p.bc.Close()
}

// sessionLabels builds the label set identifying a session's samples.
func sessionLabels(s *Session) []Label {
	labels := []Label{{Name: "session", Value: s.ID()}}
	if s.workload != "" {
		labels = append(labels, Label{Name: "workload", Value: s.workload})
	}
	if s.machine != "" {
		labels = append(labels, Label{Name: "machine", Value: s.machine})
	}
	return labels
}

// handleMetrics renders the Prometheus exposition: per session, the
// live vm.* statistics (captured through the poll protocol and
// published into a throwaway registry), the session's own registry
// (translation/cache/recovery instruments, histogram quantiles, event
// ring totals), and store shard aggregates; plus the plane's own
// stream-health series.
func (p *Plane) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p.scrapes.Add(1)
	wait := p.probeWait
	if ms, err := strconv.Atoi(r.URL.Query().Get("wait")); err == nil && ms >= 0 {
		wait = time.Duration(ms) * time.Millisecond
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
	}
	exp := NewExposition()
	for _, s := range p.Sessions() {
		labels := sessionLabels(s)
		live, _, fresh, ok := s.State(wait)
		if ok {
			// Live vm.* samples: Stats.Publish renders the snapshot copy
			// into a scrape-local registry, reusing the exact counter
			// naming of end-of-run reports. Skipped when the owner already
			// published final stats into the session registry (the
			// -metrics report path), which would duplicate every series.
			if !hasVMCounters(s.reg) {
				tmp := metrics.NewRegistry()
				live.Stats.Publish(tmp)
				exp.AddRegistry(tmp, labels...)
			}
			exp.Add("vm.vpc", "gauge", float64(live.VPC), labels...)
			exp.Add("vm.halted", "gauge", b2f(live.Halted), labels...)
			exp.Add("vm.tcache.slots", "gauge", float64(live.TCache.Slots), labels...)
			exp.Add("vm.tcache.live", "gauge", float64(live.TCache.Live), labels...)
			exp.Add("vm.tcache.code_bytes", "gauge", float64(live.TCache.CodeBytes), labels...)
		}
		exp.Add("telemetry.session_fresh", "gauge", b2f(fresh), labels...)
		exp.Add("telemetry.session_done", "gauge", b2f(s.Done()), labels...)
		exp.AddRegistry(s.reg, labels...)
		if s.store != nil {
			st := s.store.Stats()
			exp.Add("fragstore.entries", "gauge", float64(st.Entries), labels...)
			exp.Add("fragstore.hits", "counter", float64(st.Hits), labels...)
			exp.Add("fragstore.misses", "counter", float64(st.Misses), labels...)
			exp.Add("fragstore.shared_hits", "counter", float64(st.SharedHits), labels...)
		}
	}
	exp.Add("telemetry.sessions", "gauge", float64(len(p.Sessions())))
	exp.Add("telemetry.scrapes", "counter", float64(p.scrapes.Load()))
	exp.Add("telemetry.sse.clients", "gauge", float64(p.bc.Subscribers()))
	exp.Add("telemetry.sse.published", "counter", float64(p.bc.Published()))
	exp.Add("telemetry.sse.delivered", "counter", float64(p.bc.Delivered()))
	exp.Add("telemetry.sse.dropped_intake", "counter", float64(p.bc.InDropped()))
	exp.Add("telemetry.sse.dropped_clients", "counter", float64(p.bc.SubsDropped()))
	w.Header().Set("Content-Type", PromContentType)
	if err := exp.Write(w); err != nil {
		p.log.Warn("metrics write failed", "err", err)
	}
}

// hasVMCounters reports whether the registry already holds the
// published vm.* aggregates (an owner that called Stats.Publish on
// it). The sentinel is vm.interp_insts, which only Stats.Publish
// emits — live instruments like vm.recovery.episodes must not trip
// this, or chaos sessions would lose their live samples.
func hasVMCounters(reg *metrics.Registry) bool {
	if reg == nil {
		return false
	}
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "vm.interp_insts" {
			return true
		}
	}
	return false
}

// b2f renders a bool as a 0/1 gauge value.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// handleEvents serves the SSE stream. Query parameters: session=ID
// filters to one session; replay=N first replays up to N retained
// events per session from the registries' event rings (oldest first),
// which makes the stream useful even after a run has completed.
func (p *Plane) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, okF := w.(http.Flusher)
	if !okF {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	q := r.URL.Query()
	only := q.Get("session")
	replay := 0
	if n, err := strconv.Atoi(q.Get("replay")); err == nil && n > 0 {
		replay = n
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe before replaying so no event falls between the replayed
	// tail and the live stream (duplicates are possible, gaps are not —
	// consumers can dedup on (session, event.seq)).
	sub := p.bc.Subscribe()
	defer sub.Close()
	p.log.Info("sse client connected", "client", sub.ID(), "remote", r.RemoteAddr,
		"replay", replay, "session", only)
	defer func() {
		p.log.Info("sse client disconnected", "client", sub.ID(),
			"delivered", sub.Delivered(), "dropped", sub.Dropped())
	}()

	fmt.Fprintf(w, "event: hello\ndata: {\"client\":%d,\"sessions\":%d}\n\n",
		sub.ID(), len(p.Sessions()))
	if replay > 0 {
		for _, s := range p.Sessions() {
			if only != "" && s.ID() != only {
				continue
			}
			evs := s.reg.Events()
			if len(evs) > replay {
				evs = evs[len(evs)-replay:]
			}
			for _, e := range evs {
				payload, err := json.Marshal(StreamEvent{Session: s.ID(), Event: e})
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: metrics\ndata: %s\n\n", payload)
			}
		}
	}
	flusher.Flush()

	ctx := r.Context()
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case payload, okC := <-sub.Events():
			if !okC {
				return
			}
			if only != "" && !sessionMatches(payload, only) {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: metrics\ndata: %s\n\n", payload); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// sessionMatches reports whether a marshalled StreamEvent belongs to
// the given session, without unmarshalling: the session field is always
// first in the payload.
func sessionMatches(payload []byte, session string) bool {
	return strings.HasPrefix(string(payload), `{"session":"`+session+`"`)
}

// vmSummary is the /vms list row.
type vmSummary struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Workload   string    `json:"workload,omitempty"`
	Machine    string    `json:"machine,omitempty"`
	Started    time.Time `json:"started"`
	Done       bool      `json:"done"`
	Fresh      bool      `json:"fresh"`
	AgeMS      int64     `json:"age_ms"`
	VPC        uint64    `json:"vpc"`
	Halted     bool      `json:"halted"`
	VInsts     uint64    `json:"v_insts"`
	Fragments  int       `json:"fragments"`
	Recoveries uint64    `json:"recoveries"`
	Preempts   uint64    `json:"preemptions"`
	StoreHits  uint64    `json:"store_hits,omitempty"`
}

// handleVMs lists every registered session with headline numbers.
func (p *Plane) handleVMs(w http.ResponseWriter, r *http.Request) {
	out := []vmSummary{}
	for _, s := range p.Sessions() {
		live, at, fresh, ok := s.State(p.probeWait)
		row := vmSummary{
			ID: s.ID(), Name: s.name, Workload: s.workload, Machine: s.machine,
			Started: s.started, Done: s.Done(), Fresh: fresh,
		}
		if ok {
			row.AgeMS = time.Since(at).Milliseconds()
			row.VPC = live.VPC
			row.Halted = live.Halted
			row.VInsts = live.Stats.TotalVInsts()
			row.Fragments = live.Stats.Fragments
			row.Recoveries = live.Stats.Recoveries()
			row.Preempts = live.Stats.Preemptions
			row.StoreHits = live.Stats.StoreHits
		}
		out = append(out, row)
	}
	writeJSON(w, p.log, out)
}

// hotRow is one /vms/{id} hot-table entry.
type hotRow struct {
	VStart  uint64 `json:"vstart"`
	Entries uint64 `json:"entries"`
	Cycles  int64  `json:"cycles"`
	IInsts  uint64 `json:"i_insts"`
	VInsts  uint64 `json:"v_insts"`
}

// vmDetail is the /vms/{id} response.
type vmDetail struct {
	vmSummary
	ExitStatus uint64                `json:"exit_status"`
	Stats      any                   `json:"stats"`
	TCache     any                   `json:"tcache"`
	Recovery   recoveryDetail        `json:"recovery"`
	Store      *storeDetail          `json:"store,omitempty"`
	Hot        []hotRow              `json:"hot,omitempty"`
	HotTotals  *hotTotals            `json:"hot_totals,omitempty"`
	Shards     []fragstore.ShardStat `json:"shards,omitempty"`
}

// recoveryDetail groups the self-healing and preemption counters.
type recoveryDetail struct {
	Total         uint64 `json:"total"`
	ReverifyFails uint64 `json:"reverify_fails"`
	SpuriousTraps uint64 `json:"spurious_traps"`
	ForcedEvicts  uint64 `json:"forced_evicts"`
	CacheShrinks  uint64 `json:"cache_shrinks"`
	TransFailures uint64 `json:"trans_failures"`
	StaleLinks    uint64 `json:"stale_links"`
	Quarantines   uint64 `json:"quarantines"`
	WatchdogTrips uint64 `json:"watchdog_trips"`
	Preemptions   uint64 `json:"preemptions"`
	RecoveryCost  int64  `json:"recovery_cost"`
}

// storeDetail is the fragment-store section of /vms/{id}.
type storeDetail struct {
	Entries    int    `json:"entries"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	SharedHits uint64 `json:"shared_hits"`
	Loaded     uint64 `json:"loaded"`
	Dropped    uint64 `json:"dropped"`
}

// hotTotals summarises the live profile accompanying the hot table.
type hotTotals struct {
	TotalCycles    int64   `json:"total_cycles"`
	DispatchCycles int64   `json:"dispatch_cycles"`
	VMCycles       int64   `json:"vm_cycles"`
	Activations    uint64  `json:"activations"`
	SpanP50        float64 `json:"span_p50"`
	SpanP95        float64 `json:"span_p95"`
	SpanP99        float64 `json:"span_p99"`
}

// handleVM serves one session's full introspection state. ?hot=N
// includes the top-N hot-fragment rows from the live profile.
func (p *Plane) handleVM(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var sess *Session
	for _, s := range p.Sessions() {
		if s.ID() == id {
			sess = s
			break
		}
	}
	if sess == nil {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	hotN := 0
	if n, err := strconv.Atoi(r.URL.Query().Get("hot")); err == nil && n > 0 {
		hotN = n
	}
	live, at, fresh, ok := sess.State(p.probeWait)
	d := vmDetail{vmSummary: vmSummary{
		ID: sess.ID(), Name: sess.name, Workload: sess.workload,
		Machine: sess.machine, Started: sess.started, Done: sess.Done(),
		Fresh: fresh,
	}}
	if ok {
		d.AgeMS = time.Since(at).Milliseconds()
		d.VPC = live.VPC
		d.Halted = live.Halted
		d.ExitStatus = live.ExitStatus
		d.VInsts = live.Stats.TotalVInsts()
		d.Fragments = live.Stats.Fragments
		d.Recoveries = live.Stats.Recoveries()
		d.Preempts = live.Stats.Preemptions
		d.StoreHits = live.Stats.StoreHits
		d.Stats = live.Stats
		d.TCache = live.TCache
		d.Recovery = recoveryDetail{
			Total:         live.Stats.Recoveries(),
			ReverifyFails: live.Stats.ReverifyFails,
			SpuriousTraps: live.Stats.SpuriousTraps,
			ForcedEvicts:  live.Stats.ForcedEvicts,
			CacheShrinks:  live.Stats.CacheShrinks,
			TransFailures: live.Stats.TransFailures,
			StaleLinks:    live.Stats.StaleLinks,
			Quarantines:   live.Stats.Quarantines,
			WatchdogTrips: live.Stats.WatchdogTrips,
			Preemptions:   live.Stats.Preemptions,
			RecoveryCost:  live.Stats.RecoveryCost,
		}
		if hotN > 0 && live.Hot != nil {
			d.Hot, d.HotTotals = hotTable(live.Hot, hotN)
		}
	}
	if sess.store != nil {
		st := sess.store.Stats()
		d.Store = &storeDetail{
			Entries: st.Entries, Hits: st.Hits, Misses: st.Misses,
			SharedHits: st.SharedHits, Loaded: st.Loaded, Dropped: st.Dropped,
		}
		for _, sh := range sess.store.ShardStats() {
			if sh.Entries != 0 || sh.Hits != 0 || sh.Misses != 0 {
				d.Shards = append(d.Shards, sh)
			}
		}
	}
	writeJSON(w, p.log, d)
}

// hotTable extracts the top-n rows (by cycles, the profile's order) and
// the frame totals from a live profile.
func hotTable(lp *prof.Profile, n int) ([]hotRow, *hotTotals) {
	rows := make([]hotRow, 0, n)
	for i, f := range lp.Frags {
		if i >= n {
			break
		}
		rows = append(rows, hotRow{
			VStart: f.VStart, Entries: f.Entries, Cycles: f.Cycles,
			IInsts: f.IInsts, VInsts: f.VInsts,
		})
	}
	return rows, &hotTotals{
		TotalCycles:    lp.TotalCycles,
		DispatchCycles: lp.DispatchCycles,
		VMCycles:       lp.VMCycles,
		Activations:    lp.Activations,
		SpanP50:        lp.SpanP50,
		SpanP95:        lp.SpanP95,
		SpanP99:        lp.SpanP99,
	}
}

// handleHealthz reports process liveness.
func (p *Plane) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 200 once the owner called
// SetReady(true), 503 before.
func (p *Plane) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !p.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

// writeJSON marshals v with indentation and writes it, logging (not
// masking) encode failures.
func writeJSON(w http.ResponseWriter, log *slog.Logger, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Warn("json encode failed", "err", err)
	}
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/vm"
)

// fakeSession registers a synthetic finished session: a registry with a
// few instruments plus a probe returning fixed Stats, so handler tests
// need no real VM.
func fakeSession(p *Plane) *Session {
	reg := metrics.NewRegistry()
	reg.Counter("tcache.installs").Add(3)
	reg.Histogram("translate.cost").Observe(2)
	reg.Event(metrics.Event{Kind: metrics.EventTranslate, Frag: 1, VStart: 0x100})
	reg.Event(metrics.Event{Kind: metrics.EventInstall, Frag: 1, VStart: 0x100})
	s := p.Register(SessionConfig{
		Name: "fake", Workload: "gzip", Machine: "ildp-modified", Registry: reg,
	})
	s.SetProbe(func() Live {
		return Live{
			Stats: vm.Stats{InterpInsts: 100, TransVInsts: 900, Fragments: 7},
			VPC:   0x2a0, Halted: true, ExitStatus: 0,
			Hot: &prof.Profile{
				Frags:       []prof.FragAgg{{VStart: 0x100, Entries: 5, Cycles: 1234}},
				TotalCycles: 2000, Activations: 5,
			},
		}
	})
	s.Finish()
	return s
}

// TestPlaneHealthReady covers /healthz and the ready flip on /readyz.
func TestPlaneHealthReady(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before SetReady: %d, want 503", code)
	}
	p.SetReady(true)
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz after SetReady: %d, want 200", code)
	}
}

// TestPlaneMetrics checks the /metrics exposition of a registered
// session: live vm.* samples from the probe, the session registry's
// instruments with session labels, and the plane's own series.
func TestPlaneMetrics(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	fakeSession(p)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("content type %q, want %q", ct, PromContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE vm_interp_insts counter",
		`vm_interp_insts{session="1",workload="gzip",machine="ildp-modified"} 100`,
		`vm_trans_v_insts{session="1",workload="gzip",machine="ildp-modified"} 900`,
		`vm_vpc{session="1",workload="gzip",machine="ildp-modified"} 672`,
		`tcache_installs{session="1",workload="gzip",machine="ildp-modified"} 3`,
		"# TYPE translate_cost histogram",
		`translate_cost_quantile{session="1",workload="gzip",machine="ildp-modified",q="0.5"} 2`,
		`metrics_events_recorded{session="1",workload="gzip",machine="ildp-modified"} 2`,
		"telemetry_sessions 1",
		"telemetry_sse_dropped_clients 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestPlaneVMs covers the /vms list and /vms/{id} detail, including
// the on-demand hot table and the 404 path.
func TestPlaneVMs(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	fakeSession(p)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/vms")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0]["id"] != "1" || list[0]["done"] != true {
		t.Fatalf("/vms = %+v", list)
	}
	if list[0]["v_insts"].(float64) != 1000 {
		t.Errorf("v_insts = %v, want 1000", list[0]["v_insts"])
	}

	resp, err = http.Get(srv.URL + "/vms/1?hot=10")
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		ID  string `json:"id"`
		Hot []struct {
			VStart float64 `json:"vstart"`
			Cycles float64 `json:"cycles"`
		} `json:"hot"`
		HotTotals *struct {
			TotalCycles float64 `json:"total_cycles"`
		} `json:"hot_totals"`
		Recovery map[string]any `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if detail.ID != "1" {
		t.Errorf("detail id = %q", detail.ID)
	}
	if len(detail.Hot) != 1 || detail.Hot[0].VStart != 0x100 || detail.Hot[0].Cycles != 1234 {
		t.Errorf("hot table = %+v", detail.Hot)
	}
	if detail.HotTotals == nil || detail.HotTotals.TotalCycles != 2000 {
		t.Errorf("hot totals = %+v", detail.HotTotals)
	}
	if detail.Recovery == nil {
		t.Error("recovery section missing")
	}

	resp, err = http.Get(srv.URL + "/vms/99")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/vms/99 status = %d, want 404", resp.StatusCode)
	}
}

// sseClient opens /events and returns a line scanner over the stream
// plus a closer.
func sseClient(t *testing.T, url string) (*bufio.Scanner, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	return bufio.NewScanner(resp.Body), func() { resp.Body.Close() }
}

// readSSEData returns the next n `data:` payloads of `metrics` frames,
// skipping the hello frame and keepalive comments.
func readSSEData(t *testing.T, sc *bufio.Scanner, n int) []string {
	t.Helper()
	var out []string
	event := ""
	for len(out) < n && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "metrics":
			out = append(out, strings.TrimPrefix(line, "data: "))
		}
	}
	return out
}

// TestPlaneSSE is the acceptance scenario: two concurrent SSE clients
// both receive live events while a third, stalled client (connected
// but never reading) is shed through the per-client drop policy — and
// the publisher (standing in for the VM goroutine) is never blocked.
func TestPlaneSSE(t *testing.T) {
	reg := metrics.NewRegistry()
	p := New(Options{ClientBuf: 8})
	defer p.Close()
	sess := p.Register(SessionConfig{Name: "sse", Workload: "w", Registry: reg})
	_ = sess
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Client 3: connects and stalls — a raw socket that sends the
	// request and never reads the response.
	raw, err := net.Dial("tcp", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("GET /events HTTP/1.1\r\nHost: t\r\nAccept: text/event-stream\r\n\r\n")); err != nil {
		t.Fatal(err)
	}

	sc1, close1 := sseClient(t, srv.URL+"/events")
	defer close1()
	sc2, close2 := sseClient(t, srv.URL+"/events")
	defer close2()

	// Wait until all three subscribers are attached.
	deadline := time.Now().Add(5 * time.Second)
	for p.Broadcaster().Subscribers() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d SSE clients attached", p.Broadcaster().Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A few live events: both healthy clients must see every one.
	for i := 0; i < 5; i++ {
		reg.Event(metrics.Event{Kind: metrics.EventInstall, Frag: int32(i), VStart: uint64(i)})
	}
	for name, sc := range map[string]*bufio.Scanner{"client1": sc1, "client2": sc2} {
		got := readSSEData(t, sc, 5)
		if len(got) != 5 {
			t.Fatalf("%s: got %d events, want 5", name, len(got))
		}
		var e StreamEvent
		if err := json.Unmarshal([]byte(got[4]), &e); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Session != "1" || e.Event.Frag != 4 {
			t.Errorf("%s: last event = %+v", name, e)
		}
	}

	// Shed the stalled client: keep publishing (never blocking) until
	// its socket backpressure fills the per-client buffer and drops
	// start counting. Healthy clients drain concurrently so they lose
	// nothing.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc1.Scan() && sc2.Scan() {
			if p.Broadcaster().SubsDropped() > 0 {
				return
			}
		}
	}()
	start := time.Now()
	var published int
	for p.Broadcaster().SubsDropped() == 0 && time.Since(start) < 20*time.Second {
		reg.Event(metrics.Event{Kind: metrics.EventChain, Frag: int32(published)})
		published++
		if published%256 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if p.Broadcaster().SubsDropped() == 0 {
		t.Fatalf("stalled client never dropped after %d events", published)
	}
	t.Logf("stalled client shed after %d events (%v), per-client drops=%d",
		published, time.Since(start), p.Broadcaster().SubsDropped())
	close1()
	close2()
	<-drained
}

// TestPlaneSSEReplay checks that ?replay=N replays the tail of the
// session's retained event ring to a late-attaching client — the
// mechanism the CI smoke uses to read events after the run completed.
func TestPlaneSSEReplay(t *testing.T) {
	reg := metrics.NewRegistry()
	for i := 0; i < 10; i++ {
		reg.Event(metrics.Event{Kind: metrics.EventInstall, Frag: int32(i)})
	}
	p := New(Options{})
	defer p.Close()
	p.Register(SessionConfig{Name: "replay", Registry: reg})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	sc, closeFn := sseClient(t, srv.URL+"/events?replay=4")
	defer closeFn()
	got := readSSEData(t, sc, 4)
	if len(got) != 4 {
		t.Fatalf("replayed %d events, want 4", len(got))
	}
	var first StreamEvent
	if err := json.Unmarshal([]byte(got[0]), &first); err != nil {
		t.Fatal(err)
	}
	// Ten events recorded, the last four replayed: frags 6..9.
	if first.Event.Frag != 6 {
		t.Errorf("first replayed frag = %d, want 6", first.Event.Frag)
	}
}

// TestPlaneCloseGoroutineLeak proves Close is a full shutdown: the SSE
// dispatcher goroutine stops, every client buffer is released, and
// every session's registry tap is detached — so a long-lived owner (the
// serve scheduler) can open and close planes without accreting
// goroutines. The assertion is before/after runtime.NumGoroutine with a
// settle loop, since HTTP connection goroutines exit asynchronously.
func TestPlaneCloseGoroutineLeak(t *testing.T) {
	// Let goroutines from earlier tests in the package finish exiting
	// before taking the baseline.
	settle := func() int {
		n := runtime.NumGoroutine()
		for i := 0; i < 50; i++ {
			time.Sleep(10 * time.Millisecond)
			if m := runtime.NumGoroutine(); m >= n {
				return n
			} else {
				n = m
			}
		}
		return n
	}
	before := settle()

	reg := metrics.NewRegistry()
	p := New(Options{ClientBuf: 8})
	p.Register(SessionConfig{Name: "leak", Workload: "w", Registry: reg})
	srv := httptest.NewServer(p.Handler())

	var closers []func()
	for i := 0; i < 3; i++ {
		sc, closeFn := sseClient(t, srv.URL+"/events")
		closers = append(closers, closeFn)
		_ = sc
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Broadcaster().Subscribers() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d SSE clients attached", p.Broadcaster().Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	reg.Event(metrics.Event{Kind: metrics.EventInstall, Frag: 1})

	p.Close()
	p.Close() // idempotent

	// The session tap must be detached: an event published after Close
	// never reaches the broadcaster, not even as an intake drop.
	pub, inDrop := p.Broadcaster().Published(), p.Broadcaster().InDropped()
	reg.Event(metrics.Event{Kind: metrics.EventInstall, Frag: 2})
	if got := p.Broadcaster().Published(); got != pub {
		t.Errorf("published after Close: %d -> %d, tap still live", pub, got)
	}
	if got := p.Broadcaster().InDropped(); got != inDrop {
		t.Errorf("intake drops after Close: %d -> %d, tap still live", inDrop, got)
	}

	// Closing the plane closes every subscriber channel, so the three
	// streaming handlers return and srv.Close can join them.
	for _, closeFn := range closers {
		closeFn()
	}
	srv.Close()

	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// runExportedDocOn parses src with comments and returns the
// diagnostics ExportedDoc reports on it.
func runExportedDocOn(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src,
		parser.SkipObjectResolution|parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var got []Diagnostic
	pass := &Pass{
		Analyzer: ExportedDoc,
		Fset:     fset,
		Files:    []*ast.File{f},
		Report:   func(d Diagnostic) { got = append(got, d) },
	}
	if err := ExportedDoc.Run(pass); err != nil {
		t.Fatal(err)
	}
	return got
}

func wantMessages(t *testing.T, got []Diagnostic, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if !strings.Contains(got[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want mention of %q", i, got[i].Message, w)
		}
	}
}

func TestExportedDocFlagsUndocumented(t *testing.T) {
	got := runExportedDocOn(t, `package p

func Exported() {}

type Widget struct{}

func (w *Widget) Spin() {}

const Limit = 4

var Registry = 1
`)
	wantMessages(t, got, "Exported", "Widget", "Widget.Spin", "Limit", "Registry")
}

func TestExportedDocAcceptsDocumented(t *testing.T) {
	got := runExportedDocOn(t, `package p

// Exported does things.
func Exported() {}

// Widget is a thing.
type Widget struct{}

// Spin spins.
func (w *Widget) Spin() {}

// Limit bounds things.
const Limit = 4

// Group docs cover every spec inside.
var (
	Registry = 1
	Backup   = 2
)

// Kind enumerates widget kinds; iota continuations inherit this doc.
const (
	KindA int = iota
	KindB
	KindC
)
`)
	wantMessages(t, got)
}

func TestExportedDocSkipsUnexportedAndPrivateReceivers(t *testing.T) {
	got := runExportedDocOn(t, `package p

func internal() {}

type widget struct{}

// Methods on unexported types are invisible in godoc.
func (w widget) Spin() {}

var registry = 1
`)
	wantMessages(t, got)
}

func TestExportedDocSkipsMainAndTestPackages(t *testing.T) {
	got := runExportedDocOn(t, `package main

func Exported() {}
`)
	wantMessages(t, got)
}

func TestSelect(t *testing.T) {
	def, err := Select(nil)
	if err != nil || len(def) != len(Analyzers()) {
		t.Fatalf("Select(nil) = %v, %v", def, err)
	}
	one, err := Select([]string{"exporteddoc"})
	if err != nil || len(one) != 1 || one[0] != ExportedDoc {
		t.Fatalf("Select(exporteddoc) = %v, %v", one, err)
	}
	if _, err := Select([]string{"nope"}); err == nil {
		t.Fatal("Select(nope) succeeded")
	}
	// The opt-in analyzer stays out of the default suite.
	for _, a := range Analyzers() {
		if a == ExportedDoc {
			t.Fatal("ExportedDoc leaked into the default suite")
		}
	}
}
